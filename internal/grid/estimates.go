package grid

import "math"

// MeanServiceTime returns the analytic mean job service time under the
// configured workload and service rate: the mean of the log-uniform
// runtime distribution, (max-min)/ln(max/min), divided by mu. The
// superscheduler models use it to turn queue lengths into approximate
// waiting times (AWT).
func (e *Engine) MeanServiceTime() float64 {
	w := e.Cfg.Workload
	var mean float64
	if w.RuntimeMax == w.RuntimeMin {
		mean = w.RuntimeMin
	} else {
		mean = (w.RuntimeMax - w.RuntimeMin) / math.Log(w.RuntimeMax/w.RuntimeMin)
	}
	return mean / e.Cfg.ServiceRate
}

// AWT approximates the waiting time a new job would see at cluster c:
// the believed load of the least loaded resource times the mean service
// time.
func (e *Engine) AWT(s *Scheduler) float64 {
	_, load, ok := s.LeastLoadedLocal()
	if !ok {
		return math.Inf(1)
	}
	return load * e.MeanServiceTime()
}

// ERT is the expected run time of the job at this grid's service rate,
// using the user's requested time as the estimate (its upper bound).
func (e *Engine) ERT(req float64) float64 {
	return req / e.Cfg.ServiceRate
}
