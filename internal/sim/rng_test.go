package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewSource(42).Stream("jobs")
	b := NewSource(42).Stream("jobs")
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed+name diverged at draw %d", i)
		}
	}
}

func TestStreamIndependenceByName(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("jobs")
	c := src.Stream("net")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look identical (%d/1000 equal draws)", same)
	}
}

func TestStreamIndependenceBySeed(t *testing.T) {
	a := NewSource(1).Stream("jobs")
	b := NewSource(2).Stream("jobs")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds look identical (%d/1000)", same)
	}
}

func TestUniformRange(t *testing.T) {
	st := NewSource(7).Stream("u")
	for i := 0; i < 10000; i++ {
		v := st.Uniform(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Uniform(3,9) = %v out of range", v)
		}
	}
}

func TestIntRangeInclusive(t *testing.T) {
	st := NewSource(7).Stream("i")
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := st.IntRange(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntRange(2,5) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Fatalf("IntRange never produced %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	st := NewSource(11).Stream("e")
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += st.Exp(50)
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Fatalf("Exp(50) sample mean = %v, want ~50", mean)
	}
}

func TestExpDisabled(t *testing.T) {
	st := NewSource(11).Stream("e")
	if st.Exp(0) != 0 || st.Exp(-3) != 0 {
		t.Fatal("Exp with non-positive mean should return 0")
	}
}

func TestLogUniformBoundsAndMean(t *testing.T) {
	st := NewSource(13).Stream("lu")
	const lo, hi = 10.0, 3000.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := st.LogUniform(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("LogUniform out of bounds: %v", v)
		}
		sum += v
	}
	want := (hi - lo) / math.Log(hi/lo) // analytic mean of log-uniform
	mean := sum / n
	if math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("LogUniform mean = %v, want ~%v", mean, want)
	}
}

func TestLogUniformPanicsOnBadRange(t *testing.T) {
	st := NewSource(1).Stream("x")
	for _, c := range []struct{ lo, hi float64 }{{0, 5}, {-1, 5}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("LogUniform(%v,%v) did not panic", c.lo, c.hi)
				}
			}()
			st.LogUniform(c.lo, c.hi)
		}()
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	st := NewSource(17).Stream("w")
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += st.Weibull(1, 20)
	}
	mean := sum / n
	if math.Abs(mean-20) > 0.5 {
		t.Fatalf("Weibull(1,20) mean = %v, want ~20 (exponential)", mean)
	}
}

func TestWeibullPanicsOnBadParams(t *testing.T) {
	st := NewSource(1).Stream("w")
	defer func() {
		if recover() == nil {
			t.Fatal("Weibull(0, 1) did not panic")
		}
	}()
	st.Weibull(0, 1)
}

func TestSampleDistinct(t *testing.T) {
	st := NewSource(19).Stream("s")
	for trial := 0; trial < 100; trial++ {
		got := st.Sample(20, 5)
		if len(got) != 5 {
			t.Fatalf("Sample(20,5) returned %d values", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 20 {
				t.Fatalf("Sample value %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("Sample returned duplicate %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleAllWhenKTooLarge(t *testing.T) {
	st := NewSource(19).Stream("s")
	got := st.Sample(4, 10)
	if len(got) != 4 {
		t.Fatalf("Sample(4,10) returned %d values, want 4", len(got))
	}
}

func TestBoolProbability(t *testing.T) {
	st := NewSource(23).Stream("b")
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if st.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
}

// Property: LogUniform stays within bounds for arbitrary valid ranges.
func TestLogUniformBoundsProperty(t *testing.T) {
	st := NewSource(29).Stream("p")
	f := func(a, b uint16) bool {
		lo := float64(a%500) + 1
		hi := lo + float64(b%5000) + 1
		v := st.LogUniform(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	k := NewKernel()
	var fires []Time
	NewTicker(k, 10, func() { fires = append(fires, k.Now()) })
	k.Run(55)
	want := []Time{10, 20, 30, 40, 50}
	if len(fires) != len(want) {
		t.Fatalf("ticker fired %d times (%v), want %d", len(fires), fires, len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	k := NewKernel()
	count := 0
	var tk *Ticker
	tk = NewTicker(k, 5, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	k.Run(1000)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", count)
	}
	if !tk.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestTickerDisabledOnNonPositivePeriod(t *testing.T) {
	k := NewKernel()
	tk := NewTicker(k, 0, func() { t.Fatal("disabled ticker fired") })
	if !tk.Stopped() {
		t.Fatal("zero-period ticker not stopped")
	}
	k.Run(100)
}

func TestTickerReset(t *testing.T) {
	k := NewKernel()
	var fires []Time
	tk := NewTicker(k, 10, func() { fires = append(fires, k.Now()) })
	k.Run(25) // fires at 10, 20
	tk.Reset(100)
	k.Run(200) // fires at 125
	if len(fires) != 3 || fires[2] != 125 {
		t.Fatalf("after Reset fires = %v, want [10 20 125]", fires)
	}
}
