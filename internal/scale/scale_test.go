package scale

import (
	"math"
	"testing"

	"rmscale/internal/anneal"
)

func TestLinearVariable(t *testing.T) {
	v := Linear("nodes", 100)
	if v.Value(1) != 100 || v.Value(6) != 600 {
		t.Fatalf("Linear variable wrong: %v, %v", v.Value(1), v.Value(6))
	}
	if v.Name != "nodes" {
		t.Fatal("name lost")
	}
}

func TestEnablerValidate(t *testing.T) {
	bad := []Enabler{
		{Name: "a", Min: 5, Max: 1, Init: 3},
		{Name: "b", Min: 0, Max: 10, Init: 11},
		{Name: "c", Min: 0, Max: 10, Init: -1},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("enabler %+v accepted", e)
		}
	}
	ok := Enabler{Name: "tau", Min: 1, Max: 100, Init: 40}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBand(t *testing.T) {
	b := PaperBand()
	if b.Lo != 0.38 || b.Hi != 0.42 {
		t.Fatalf("paper band wrong: %+v", b)
	}
	if !b.Contains(0.40) || b.Contains(0.37) || b.Contains(0.43) {
		t.Fatal("Contains wrong")
	}
	if !b.Feasible(0.43) || b.Feasible(0.37) {
		t.Fatal("Feasible must bind only below the floor")
	}
	if b.Penalty(0.40) != 0 {
		t.Fatal("no penalty expected inside band")
	}
	if p := b.Penalty(0.33); math.Abs(p-0.05) > 1e-12 {
		t.Fatalf("penalty = %v, want 0.05", p)
	}
	if err := (Band{Lo: 0, Hi: 0.5}).Validate(); err == nil {
		t.Error("zero floor accepted")
	}
	if err := (Band{Lo: 0.5, Hi: 0.4}).Validate(); err == nil {
		t.Error("inverted band accepted")
	}
	if err := (Band{Lo: 0.5, Hi: 1.0}).Validate(); err == nil {
		t.Error("band reaching 1 accepted")
	}
}

func TestIsoAnalysisConstants(t *testing.T) {
	base := Observation{F: 100, G: 30, H: 20, Efficiency: 100.0 / 150}
	a, err := NewIsoAnalysis(base, 0.4) // alpha = 2.5
	if err != nil {
		t.Fatal(err)
	}
	// c = O_RMS/((alpha-1)W) = 30/(1.5*100) = 0.2
	if math.Abs(a.C-0.2) > 1e-12 {
		t.Fatalf("c = %v, want 0.2", a.C)
	}
	// c' = 20/150
	if math.Abs(a.CPrime-20.0/150) > 1e-12 {
		t.Fatalf("c' = %v", a.CPrime)
	}
	// Equation 1 consistency: f = c*g + c'*h at the base (f=g=h=1)
	// means (alpha-1)W = O_RMS + O_RP, which holds only when the base
	// efficiency is exactly 1/alpha; here it is not, so just check the
	// formula is linear as written.
	if got := a.RequiredWork(2, 1); math.Abs(got-(0.4+20.0/150)) > 1e-12 {
		t.Fatalf("RequiredWork = %v", got)
	}
}

func TestIsoAnalysisExactBase(t *testing.T) {
	// When E0 equals the base efficiency, Equation 1 must hold exactly
	// at the base point: f(1)=g(1)=h(1)=1 and 1 = c + c'.
	base := Observation{F: 100, G: 100, H: 50}
	base.Efficiency = base.F / (base.F + base.G + base.H) // 0.4
	a, err := NewIsoAnalysis(base, base.Efficiency)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.C+a.CPrime-1) > 1e-9 {
		t.Fatalf("c + c' = %v, want 1 at exact base", a.C+a.CPrime)
	}
	if e := a.Efficiency(1, 1, 1); math.Abs(e-0.4) > 1e-12 {
		t.Fatalf("Efficiency(1,1,1) = %v, want 0.4", e)
	}
}

func TestIsoCondition(t *testing.T) {
	base := Observation{F: 100, G: 100, H: 50, Efficiency: 0.4}
	a, err := NewIsoAnalysis(base, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Condition(2.0, 1.5) { // work grew faster than overhead
		t.Error("condition should hold when f outgrows c*g")
	}
	if a.Condition(1.0, 3.0) { // overhead exploded
		t.Error("condition should fail when overhead outgrows work")
	}
}

func TestIsoAnalysisErrors(t *testing.T) {
	if _, err := NewIsoAnalysis(Observation{F: 100}, 0); err == nil {
		t.Error("e0=0 accepted")
	}
	if _, err := NewIsoAnalysis(Observation{F: 100}, 1); err == nil {
		t.Error("e0=1 accepted")
	}
	if _, err := NewIsoAnalysis(Observation{F: 0}, 0.4); err == nil {
		t.Error("zero base work accepted")
	}
}

func TestMeasurementDerivedCurves(t *testing.T) {
	m := &Measurement{
		RMS: "TEST",
		Points: []Point{
			{K: 1, G: 100, Obs: Observation{F: 1000, H: 10, Throughput: 5, MeanResponse: 50}},
			{K: 2, G: 300, Obs: Observation{F: 2000, H: 20, Throughput: 9, MeanResponse: 60}},
			{K: 4, G: 500, Obs: Observation{F: 4000, H: 40, Throughput: 16, MeanResponse: 80}},
		},
	}
	ks := m.Ks()
	if ks[2] != 4 {
		t.Fatalf("Ks = %v", ks)
	}
	g := m.NormalizedG()
	if g[0] != 1 || g[1] != 3 || g[2] != 5 {
		t.Fatalf("normalized G = %v", g)
	}
	f := m.NormalizedF()
	if f[2] != 4 {
		t.Fatalf("normalized F = %v", f)
	}
	slopes := m.Slopes()
	if slopes[0] != 200 || slopes[1] != 100 {
		t.Fatalf("raw slopes = %v", slopes)
	}
	nslopes := m.NormalizedSlopes()
	if nslopes[0] != 2 || nslopes[1] != 1 {
		t.Fatalf("normalized slopes = %v", nslopes)
	}
	ns := m.NormalizedSeries()
	if ns.Y[1] != 3 {
		t.Fatalf("normalized series = %v", ns.Y)
	}
	// Segment 0: g grows 2x/k, f grows 1x/k: overhead outgrows work.
	if m.ScalableAt(0) {
		t.Error("segment 0 should be unscalable")
	}
	// Segment 1: g slope 1, f slope 1: marginally scalable.
	if !m.ScalableAt(1) {
		t.Error("segment 1 should be scalable")
	}
	if m.ScalableAt(5) || m.ScalableAt(-1) {
		t.Error("out-of-range segment must report false")
	}
	s := m.Series()
	if s.Name != "TEST" || len(s.Y) != 3 {
		t.Fatalf("Series = %+v", s)
	}
	if th := m.Throughputs(); th[1] != 9 {
		t.Fatalf("Throughputs = %v", th)
	}
	if rt := m.ResponseTimes(); rt[2] != 80 {
		t.Fatalf("ResponseTimes = %v", rt)
	}
}

func TestConditionReport(t *testing.T) {
	mk := func(g2, g3 float64) *Measurement {
		return &Measurement{
			Points: []Point{
				{K: 1, G: 100, Obs: Observation{F: 1000, G: 100, H: 50, Efficiency: 1000.0 / 1150}},
				{K: 2, G: g2, Obs: Observation{F: 2000}},
				{K: 3, G: g3, Obs: Observation{F: 3000}},
			},
		}
	}
	// Overhead linear with work: condition holds everywhere.
	m := mk(200, 300)
	at, err := ConditionReport(m)
	if err != nil {
		t.Fatal(err)
	}
	if at != -1 {
		t.Fatalf("condition should hold, failed at %d", at)
	}
	// Overhead exploding at k=3.
	m = mk(200, 100000)
	at, err = ConditionReport(m)
	if err != nil {
		t.Fatal(err)
	}
	if at != 3 {
		t.Fatalf("condition should fail at 3, got %d", at)
	}
	if _, err := ConditionReport(&Measurement{}); err == nil {
		t.Error("empty measurement accepted")
	}
}

// fakeEvaluator implements a closed-form system whose minimal overhead
// is known: G = tau_cost(x) and efficiency rises with spend.
type fakeEvaluator struct{ evals int }

func (f *fakeEvaluator) Evaluate(k int, x []float64) (Observation, error) {
	f.evals++
	// x[0] in [1,100] is an "update interval": overhead falls with x,
	// efficiency falls with x. Efficiency crosses 0.38 at x = 60.
	spend := 100.0 / x[0] * float64(k)
	eff := 0.44 - 0.001*x[0]
	return Observation{
		F:          1000 * float64(k),
		G:          spend,
		H:          10,
		Efficiency: eff,
	}, nil
}

func TestMeasureFindsConstrainedMinimum(t *testing.T) {
	spec := MeasureSpec{
		RMS:      "FAKE",
		Ks:       []int{1, 2, 3},
		Enablers: []Enabler{{Name: "tau", Min: 1, Max: 100, Init: 10}},
		Band:     PaperBand(),
		Anneal:   anneal.Options{Iters: 80, Restarts: 2, Seed: 11},
	}
	m, err := Measure(&fakeEvaluator{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 3 {
		t.Fatalf("points = %d", len(m.Points))
	}
	for _, p := range m.Points {
		if !p.Feasible {
			t.Fatalf("k=%d infeasible", p.K)
		}
		// The constrained optimum sits near tau=60 (eff=0.38), where
		// G = 100/60*k ~ 1.67k.
		if p.Enablers[0] < 45 || p.Enablers[0] > 61 {
			t.Fatalf("k=%d tuned tau=%v, want near 60", p.K, p.Enablers[0])
		}
		if p.Obs.Efficiency < 0.38 {
			t.Fatalf("k=%d efficiency %v below band", p.K, p.Obs.Efficiency)
		}
	}
	// Normalized curve should be ~linear in k.
	g := m.NormalizedG()
	if math.Abs(g[1]-2) > 0.35 || math.Abs(g[2]-3) > 0.55 {
		t.Fatalf("normalized G = %v, want ~[1,2,3]", g)
	}
}

func TestMeasureWarmStart(t *testing.T) {
	spec := MeasureSpec{
		RMS:       "FAKE",
		Ks:        []int{1, 2},
		Enablers:  []Enabler{{Name: "tau", Min: 1, Max: 100, Init: 10}},
		Band:      PaperBand(),
		Anneal:    anneal.Options{Iters: 40, Restarts: 1, Seed: 5},
		WarmStart: true,
	}
	if _, err := Measure(&fakeEvaluator{}, spec); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureProgressCallback(t *testing.T) {
	var seen []int
	spec := MeasureSpec{
		RMS:      "FAKE",
		Ks:       []int{1, 3},
		Enablers: []Enabler{{Name: "tau", Min: 1, Max: 100, Init: 10}},
		Band:     PaperBand(),
		Anneal:   anneal.Options{Iters: 20, Restarts: 1, Seed: 5},
		Progress: nil,
	}
	spec.Progress = func(p Point) { seen = append(seen, p.K) }
	if _, err := Measure(&fakeEvaluator{}, spec); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("progress saw %v", seen)
	}
}

func TestMeasureSpecValidation(t *testing.T) {
	good := MeasureSpec{
		Ks:       []int{1, 2},
		Enablers: []Enabler{{Name: "x", Min: 0, Max: 1, Init: 0.5}},
		Band:     PaperBand(),
	}
	bad := []func(*MeasureSpec){
		func(s *MeasureSpec) { s.Ks = nil },
		func(s *MeasureSpec) { s.Ks = []int{0, 1} },
		func(s *MeasureSpec) { s.Ks = []int{2, 2} },
		func(s *MeasureSpec) { s.Ks = []int{3, 1} },
		func(s *MeasureSpec) { s.Enablers = nil },
		func(s *MeasureSpec) { s.Enablers[0].Init = 9 },
		func(s *MeasureSpec) { s.Band = Band{} },
	}
	for i, mut := range bad {
		s := good
		s.Enablers = append([]Enabler(nil), good.Enablers...)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(nil, good); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestEvaluatorFunc(t *testing.T) {
	f := EvaluatorFunc(func(k int, x []float64) (Observation, error) {
		return Observation{F: float64(k)}, nil
	})
	obs, err := f.Evaluate(3, nil)
	if err != nil || obs.F != 3 {
		t.Fatalf("EvaluatorFunc broken: %v %v", obs, err)
	}
}

// TestMeasureResumeAdoptsPrefix checks checkpoint adoption: a
// measurement resumed with the first points of a prior run re-tunes
// only the remaining scale factors and reproduces the full run
// exactly.
func TestMeasureResumeAdoptsPrefix(t *testing.T) {
	spec := MeasureSpec{
		RMS:       "FAKE",
		Ks:        []int{1, 2, 3},
		Enablers:  []Enabler{{Name: "tau", Min: 1, Max: 100, Init: 10}},
		Band:      PaperBand(),
		Anneal:    anneal.Options{Iters: 30, Restarts: 1, Seed: 11},
		WarmStart: true,
	}
	full, err := Measure(&fakeEvaluator{}, spec)
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	counting := EvaluatorFunc(func(k int, x []float64) (Observation, error) {
		if k < 3 {
			t.Fatalf("resumed measurement re-evaluated k=%d", k)
		}
		calls++
		return (&fakeEvaluator{}).Evaluate(k, x)
	})
	spec.Resume = full.Points[:2]
	var progressed []int
	spec.Progress = func(p Point) { progressed = append(progressed, p.K) }
	resumed, err := Measure(counting, spec)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("resumed measurement evaluated nothing")
	}
	if len(resumed.Points) != 3 {
		t.Fatalf("resumed points = %d", len(resumed.Points))
	}
	for i := range resumed.Points {
		if resumed.Points[i].G != full.Points[i].G ||
			resumed.Points[i].Enablers[0] != full.Points[i].Enablers[0] {
			t.Fatalf("point %d diverged: %+v vs %+v", i, resumed.Points[i], full.Points[i])
		}
	}
	if len(progressed) != 3 || progressed[0] != 1 || progressed[2] != 3 {
		t.Fatalf("progress skipped adopted points: %v", progressed)
	}
}

func TestMeasureResumeValidation(t *testing.T) {
	spec := MeasureSpec{
		RMS:      "FAKE",
		Ks:       []int{1, 2},
		Enablers: []Enabler{{Name: "tau", Min: 1, Max: 100, Init: 10}},
		Band:     PaperBand(),
		Anneal:   anneal.Options{Iters: 10, Restarts: 1, Seed: 1},
	}
	spec.Resume = []Point{{K: 2}}
	if _, err := Measure(&fakeEvaluator{}, spec); err == nil {
		t.Fatal("misaligned resume points accepted")
	}
	spec.Resume = []Point{{K: 1}, {K: 2}, {K: 3}}
	if _, err := Measure(&fakeEvaluator{}, spec); err == nil {
		t.Fatal("too many resume points accepted")
	}
}
