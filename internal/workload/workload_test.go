package workload

import (
	"math"
	"testing"
	"testing/quick"

	"rmscale/internal/sim"
)

func stream(name string) *sim.Stream { return sim.NewSource(2025).Stream(name) }

func genDefault(t *testing.T) []*Job {
	t.Helper()
	p := DefaultParams()
	p.ArrivalRate = 2
	p.Clusters = 4
	jobs, err := Generate(p, stream("jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	return jobs
}

func TestGenerateCountMatchesRate(t *testing.T) {
	p := DefaultParams()
	p.ArrivalRate = 2
	p.Horizon = 10000
	jobs, err := Generate(p, stream("count"))
	if err != nil {
		t.Fatal(err)
	}
	want := p.ArrivalRate * p.Horizon
	got := float64(len(jobs))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("generated %v jobs, want ~%v", got, want)
	}
}

func TestGenerateInvariants(t *testing.T) {
	jobs := genDefault(t)
	p := DefaultParams()
	last := sim.Time(-1)
	for _, j := range jobs {
		if j.Arrival < last {
			t.Fatal("arrivals out of order")
		}
		last = j.Arrival
		if j.Runtime < p.RuntimeMin || j.Runtime > p.RuntimeMax {
			t.Fatalf("runtime %v out of range", j.Runtime)
		}
		if j.Requested < j.Runtime || j.Requested > p.OverestimateMax*j.Runtime {
			t.Fatalf("requested %v vs runtime %v", j.Requested, j.Runtime)
		}
		if j.Benefit < 2 || j.Benefit > 5 {
			t.Fatalf("benefit %v outside [2,5]", j.Benefit)
		}
		if j.Partition != 1 {
			t.Fatalf("partition %d, want 1", j.Partition)
		}
		if (j.Runtime <= p.TCPU) != (j.Class == Local) {
			t.Fatalf("class %v inconsistent with runtime %v", j.Class, j.Runtime)
		}
		if j.Cluster < 0 || j.Cluster >= 4 {
			t.Fatalf("cluster %d out of range", j.Cluster)
		}
	}
}

func TestDeadline(t *testing.T) {
	j := &Job{Arrival: 100, Runtime: 50, Benefit: 3}
	if j.Deadline() != 250 {
		t.Fatalf("Deadline = %v, want 250", j.Deadline())
	}
}

func TestClassString(t *testing.T) {
	if Local.String() != "LOCAL" || Remote.String() != "REMOTE" {
		t.Fatal("class strings wrong")
	}
}

func TestClassMixMatchesTCPU(t *testing.T) {
	p := DefaultParams()
	p.ArrivalRate = 5
	p.Horizon = 20000
	jobs, err := Generate(p, stream("mix"))
	if err != nil {
		t.Fatal(err)
	}
	local, remote := Count(jobs)
	frac := float64(local) / float64(local+remote)
	// Log-uniform on [10,3000] with threshold 700:
	// P(LOCAL) = ln(700/10)/ln(3000/10) ≈ 0.745.
	want := math.Log(700.0/10) / math.Log(3000.0/10)
	if math.Abs(frac-want) > 0.02 {
		t.Fatalf("LOCAL fraction = %v, want ~%v", frac, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	a, err := Generate(p, stream("det"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, stream("det"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("job %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScale(t *testing.T) {
	p := DefaultParams()
	s := p.Scale(3)
	if s.ArrivalRate != 3*p.ArrivalRate {
		t.Fatalf("scaled rate = %v", s.ArrivalRate)
	}
	if p.ArrivalRate != DefaultParams().ArrivalRate {
		t.Fatal("Scale mutated the receiver")
	}
}

func TestWeibullArrivalsKeepMeanRate(t *testing.T) {
	p := DefaultParams()
	p.ArrivalRate = 2
	p.Horizon = 20000
	p.WeibullShape = 0.7
	jobs, err := Generate(p, stream("weib"))
	if err != nil {
		t.Fatal(err)
	}
	want := p.ArrivalRate * p.Horizon
	got := float64(len(jobs))
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("Weibull arrivals: %v jobs, want ~%v", got, want)
	}
}

func TestValidateRejects(t *testing.T) {
	base := DefaultParams()
	mutations := []func(*Params){
		func(p *Params) { p.ArrivalRate = 0 },
		func(p *Params) { p.Horizon = 0 },
		func(p *Params) { p.RuntimeMin = 0 },
		func(p *Params) { p.RuntimeMax = p.RuntimeMin - 1 },
		func(p *Params) { p.TCPU = 0 },
		func(p *Params) { p.BenefitMin = 0.5 },
		func(p *Params) { p.BenefitMax = 1 },
		func(p *Params) { p.OverestimateMax = 0.9 },
		func(p *Params) { p.Clusters = 0 },
		func(p *Params) { p.WeibullShape = 2 },
		func(p *Params) { p.CancelProb = 0.1 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, p)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
}

func TestTotalAndCount(t *testing.T) {
	jobs := []*Job{
		{Runtime: 100, Class: Local},
		{Runtime: 900, Class: Remote},
		{Runtime: 50, Class: Local},
	}
	if Total(jobs) != 1050 {
		t.Fatalf("Total = %v", Total(jobs))
	}
	l, r := Count(jobs)
	if l != 2 || r != 1 {
		t.Fatalf("Count = %d,%d", l, r)
	}
}

func TestGammaApprox(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 1}, {2, 1}, {3, 2}, {4, 6}, {5, 24},
		{1.5, math.Sqrt(math.Pi) / 2},
		{2.428571, 1.26583}, // Gamma(1 + 1/0.7), used by the Weibull mean fix
	}
	for _, c := range cases {
		if got := gammaApprox(c.x); math.Abs(got-c.want)/c.want > 1e-4 {
			t.Errorf("Gamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Property: arbitrary valid rates and horizons always give sorted,
// classified, in-range jobs.
func TestGenerateInvariantProperty(t *testing.T) {
	src := sim.NewSource(31)
	f := func(rate, horizon uint8) bool {
		p := DefaultParams()
		p.ArrivalRate = 0.2 + float64(rate%40)/10
		p.Horizon = 200 + sim.Time(horizon)*10
		p.Clusters = 3
		jobs, err := Generate(p, src.Stream("prop"))
		if err != nil {
			return false
		}
		tr := Trace{Params: p, Jobs: jobs}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalArrivalsKeepMeanRate(t *testing.T) {
	p := DefaultParams()
	p.ArrivalRate = 2
	p.Horizon = 40000
	p.DiurnalAmplitude = 0.8
	p.DiurnalPeriod = 2000
	jobs, err := Generate(p, stream("diurnal"))
	if err != nil {
		t.Fatal(err)
	}
	want := p.ArrivalRate * p.Horizon
	got := float64(len(jobs))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("diurnal arrivals: %v jobs, want ~%v", got, want)
	}
}

func TestDiurnalArrivalsActuallyCycle(t *testing.T) {
	p := DefaultParams()
	p.ArrivalRate = 4
	p.Horizon = 8000
	p.DiurnalAmplitude = 0.9
	p.DiurnalPeriod = 8000 // one full cycle: first half peak, second trough
	jobs, err := Generate(p, stream("cycle"))
	if err != nil {
		t.Fatal(err)
	}
	first, second := 0, 0
	for _, j := range jobs {
		if j.Arrival < 4000 {
			first++
		} else {
			second++
		}
	}
	if float64(first) < 1.5*float64(second) {
		t.Fatalf("no visible cycle: first half %d, second half %d", first, second)
	}
}

func TestDiurnalValidation(t *testing.T) {
	p := DefaultParams()
	p.DiurnalAmplitude = 1.0
	if err := p.Validate(); err == nil {
		t.Error("amplitude 1.0 accepted")
	}
	p = DefaultParams()
	p.DiurnalAmplitude = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative amplitude accepted")
	}
	p = DefaultParams()
	p.DiurnalPeriod = -5
	if err := p.Validate(); err == nil {
		t.Error("negative period accepted")
	}
}
