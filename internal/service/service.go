// Package service is rmscaled, the long-lived experiment service: it
// wraps the repository's execution substrate — the runner's
// content-addressed caching and checkpoint journal, the audited
// simulation engines, the experiment drivers — behind a daemon that
// serves many concurrent clients.
//
// The contract is content addressing end to end. A client submits an
// ExperimentSpec; the daemon derives its deterministic content address
// (the experiment ID), and that ID is the whole coordination story:
//
//   - identical specs from any number of clients dedupe to one
//     execution, sharing one stored, byte-identical result;
//   - the result store is immutable and shareable — an ID's payload
//     never changes once written;
//   - a restart resumes from the submission journal: accepted-but-
//     unfinished experiments re-queue, finished ones are served from
//     the store.
//
// Production concerns are layered on top: a bounded job queue with
// admission control (saturation is refused, not buffered), per-client
// round-robin fairness, a configurable number of worker shards over
// the executor, graceful drain on SIGTERM with journal checkpointing,
// and structured request logging. The architectural precedent is
// Nimrod/G's persistent experiment service; the qualification story
// (thousands of objects per iteration, latency and dedup gates) lives
// in the loadgen subpackage and internal/perfbench.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	//lint:allow nokernelgoroutines the daemon's shard pool, state mutex and condition variable are the service layer's concurrency; simulations it runs stay single-threaded underneath
	"sync"
	"time"

	"rmscale/internal/fsutil"
	"rmscale/internal/runner"
)

// journalFingerprint guards the daemon's journal format.
const journalFingerprint = "rmscaled/v1"

// expPrefix prefixes submission records in the journal.
const expPrefix = "exp/"

// State is an experiment's lifecycle position.
type State string

// Experiment states. Queued and Running are transient; Done and
// Failed are terminal.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Experiment is the daemon's record of one distinct submitted spec.
type Experiment struct {
	ID     string
	Spec   ExperimentSpec
	Client string // client that first submitted it
	State  State
	Err    string // non-empty iff State == StateFailed
}

// Status is the client-visible snapshot of an experiment.
type Status struct {
	ID    string         `json:"id"`
	State State          `json:"state"`
	Spec  ExperimentSpec `json:"spec"`
	Error string         `json:"error,omitempty"`
	// Dedup marks a submission that joined existing work (in-flight or
	// already stored) instead of queueing a new execution.
	Dedup bool `json:"dedup,omitempty"`
	// Progress carries the runner's runstate.json for a running
	// case/churn experiment, when available.
	Progress *runner.Snapshot `json:"progress,omitempty"`
}

// Stats is the daemon-wide accounting surface (the /v1/stats payload
// and the source of the load harness's gated metrics).
type Stats struct {
	Submitted     int64 `json:"submitted"`      // accepted submissions, dedup joins included
	Executions    int64 `json:"executions"`     // executions started (distinct work)
	Completed     int64 `json:"completed"`      // executions finished successfully
	Failed        int64 `json:"failed"`         // executions finished in error
	DedupInflight int64 `json:"dedup_inflight"` // submissions joined to queued/running work
	DedupStore    int64 `json:"dedup_store"`    // submissions answered from the result store
	Rejected      int64 `json:"rejected"`       // submissions refused with ErrSaturated
	Resumed       int64 `json:"resumed"`        // experiments re-queued from the journal at startup
	QueueDepth    int   `json:"queue_depth"`
	MaxQueueDepth int   `json:"max_queue_depth"`
	Running       int   `json:"running"`
	StoreLen      int   `json:"store_len"`
	Draining      bool  `json:"draining"`

	// Supervision and integrity accounting (the self-healing surface).
	Retries         int64  `json:"retries"`                    // supervised re-attempts after a failed execution try
	ExecPanics      int64  `json:"exec_panics"`                // executor panics converted to failures
	ExecTimeouts    int64  `json:"exec_timeouts"`              // executions cancelled at their deadline
	BreakerTrips    int64  `json:"breaker_trips"`              // times the circuit breaker opened
	BreakerOpen     bool   `json:"breaker_open"`               // breaker currently shedding
	Shed            int64  `json:"shed"`                       // submissions shed by the open breaker
	Reexecuted      int64  `json:"reexecuted"`                 // done experiments re-queued after their result was lost (corrupt or evicted)
	CorruptResults  int64  `json:"corrupt_results"`            // store entries that failed checksum verification (quarantined)
	EvictedResults  int64  `json:"evicted_results"`            // store entries evicted by GC
	QuarantineLen   int    `json:"quarantine_len"`             // corrupt pairs currently held in quarantine
	QuarantineGC    int64  `json:"quarantine_evicted"`         // quarantined pairs dropped by the quarantine bound
	StoreBytes      int64  `json:"store_bytes"`                // memory-tier payload bytes
	JournalDropped  int    `json:"journal_dropped"`            // corrupt journal tail lines dropped at startup
	JournalSkipped  int    `json:"journal_skipped"`            // malformed journal records skipped at startup
	StoreDegraded   string `json:"store_degraded,omitempty"`   // non-empty: store fell back to memory-only (why)
	JournalDegraded string `json:"journal_degraded,omitempty"` // non-empty: submissions no longer journaled (why)
	Degraded        bool   `json:"degraded"`                   // any degradation condition active
}

// DedupHits is the total number of submissions that shared an existing
// execution or stored result.
func (s Stats) DedupHits() int64 { return s.DedupInflight + s.DedupStore }

// Config parameterizes a Daemon.
type Config struct {
	// Dir is the service directory: submission journal, result store
	// and per-experiment run directories live under it. Empty runs the
	// daemon ephemerally (memory only, no resume).
	Dir string
	// Shards is the number of worker shards executing experiments
	// concurrently; <= 0 picks 2.
	Shards int
	// QueueCap bounds the admission queue; <= 0 picks 256. A full
	// queue refuses new submissions with ErrSaturated (HTTP 429).
	QueueCap int
	// CaseWorkers sizes the runner pool inside one case/churn
	// execution; <= 0 picks 1 so shards do not oversubscribe each
	// other.
	CaseWorkers int
	// Log, when non-nil, receives one structured JSON line per daemon
	// event and HTTP request.
	Log io.Writer
	// Exec overrides the executor (tests); nil uses the production
	// Executor.
	Exec ExecFunc
	// Clock overrides the time source (tests); nil uses the wall
	// clock.
	Clock Clock
	// FS overrides the durable-write seam (fault injection); nil uses
	// the real filesystem.
	FS fsutil.FS

	// MaxAttempts bounds how many times one experiment executes before
	// its failure is final; <= 0 picks 1 (no retries). Retries back off
	// exponentially with deterministic jitter on the Clock.
	MaxAttempts int
	// RetryBackoff is the first retry's backoff; <= 0 picks 100ms.
	RetryBackoff time.Duration
	// ExecTimeout is the execution deadline for one sim attempt
	// (case/churn runs get 8x); <= 0 disables deadlines.
	ExecTimeout time.Duration
	// BreakerThreshold opens the circuit breaker after that many
	// consecutive supervised failures; <= 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds submissions
	// before probing half-open; <= 0 picks 30s.
	BreakerCooldown time.Duration

	// StoreMaxResults / StoreMaxBytes / StoreMaxAge bound the result
	// store (LRU eviction; evicted IDs re-execute on resubmission).
	// Zero values leave the store unbounded.
	StoreMaxResults int
	StoreMaxBytes   int64
	StoreMaxAge     time.Duration
	// StoreMaxQuarantine bounds the quarantine directory (oldest pairs
	// evicted first); <= 0 picks DefaultMaxQuarantine.
	StoreMaxQuarantine int
}

// Daemon is a running rmscaled instance.
type Daemon struct {
	cfg     Config
	store   *Store
	journal *runner.Journal // nil when cfg.Dir is empty
	exec    ExecFunc
	clock   Clock

	mu       sync.Mutex
	cond     *sync.Cond
	exps     map[string]*Experiment
	queue    *fairQueue
	stats    Stats
	brk      breaker
	jDegrade string // non-empty: journaling lost to an IO error (why)
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// submitRecord is the journaled form of one accepted submission.
type submitRecord struct {
	Spec   ExperimentSpec `json:"spec"`
	Client string         `json:"client,omitempty"`
}

// New opens the service state under cfg.Dir (journal + result store),
// re-queues journaled experiments that have no stored result, and
// starts the worker shards.
func New(cfg Config) (*Daemon, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	store, err := NewStore(StoreConfig{
		Dir:           cfg.Dir,
		MaxResults:    cfg.StoreMaxResults,
		MaxBytes:      cfg.StoreMaxBytes,
		MaxAge:        cfg.StoreMaxAge,
		MaxQuarantine: cfg.StoreMaxQuarantine,
		Clock:         cfg.Clock,
		FS:            cfg.FS,
	})
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:   cfg,
		store: store,
		exec:  cfg.Exec,
		clock: cfg.Clock,
		exps:  make(map[string]*Experiment),
		queue: newFairQueue(cfg.QueueCap),
		brk:   breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
	}
	if d.exec == nil {
		d.exec = Executor{CaseWorkers: cfg.CaseWorkers}.Run
	}
	d.cond = sync.NewCond(&d.mu)
	if cfg.Dir != "" {
		// Audit the disk tier before replaying the journal: corrupt
		// entries are quarantined and orphaned temp files swept now, so
		// resume sees the healed disk and the recovery summary below
		// reports what a crash actually cost.
		audit := store.Audit()
		j, _, err := runner.OpenJournalFS(cfg.Dir, journalFingerprint, cfg.FS)
		if err != nil {
			return nil, err
		}
		d.journal = j
		if dropped := j.Dropped(); dropped > 0 {
			d.stats.JournalDropped = dropped
			d.logEvent("journal_tail_dropped", map[string]any{"lines": dropped})
		}
		if err := d.resume(); err != nil {
			j.Close()
			return nil, err
		}
		d.logEvent("recovery", map[string]any{
			"journal_kept":      j.Len(),
			"journal_dropped":   j.Dropped(),
			"journal_skipped":   d.stats.JournalSkipped,
			"resumed":           d.stats.Resumed,
			"store_verified":    audit.Verified,
			"store_quarantined": audit.Quarantined,
			"store_backfilled":  audit.Backfilled,
			"temps_cleaned":     audit.TempsCleaned,
		})
	}
	d.logEvent("start", map[string]any{
		"dir": cfg.Dir, "shards": cfg.Shards, "queue_cap": cfg.QueueCap,
		"resumed": d.stats.Resumed,
	})
	d.wg.Add(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		//lint:allow nokernelgoroutines worker shards parallelize whole experiments, the same layering as internal/runner; each shard's simulation remains single-threaded
		go d.shard(i)
	}
	return d, nil
}

// resume replays the submission journal: every accepted experiment
// without a committed, checksum-valid result re-enters the queue
// (bypassing admission control — it was admitted by the daemon
// incarnation that journaled it), and finished ones are registered as
// done so status and result queries keep answering across restarts.
// Store.Has verifies disk checksums, so an experiment whose stored
// result was corrupted re-executes instead of serving damaged bytes.
//
// Malformed records — valid JSON lines that are not this daemon's
// submissions, or whose spec no longer hashes to its own ID — are
// skipped with a log line rather than refusing to start: one damaged
// record must not hold the rest of the backlog hostage.
//
//lint:allow locksafe resume runs inside New, before any shard goroutine or HTTP handler exists; nothing can race the fields it touches
func (d *Daemon) resume() error {
	skip := func(id string, reason string) {
		d.stats.JournalSkipped++
		d.logEvent("journal_skip", map[string]any{"id": id, "reason": reason})
	}
	return d.journal.Each(func(id string, data json.RawMessage) error {
		if len(id) <= len(expPrefix) || id[:len(expPrefix)] != expPrefix {
			skip(id, "foreign record")
			return nil
		}
		eid := id[len(expPrefix):]
		var rec submitRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			skip(id, err.Error())
			return nil
		}
		if specID, err := rec.Spec.ID(); err != nil {
			skip(id, err.Error())
			return nil
		} else if specID != eid {
			skip(id, fmt.Sprintf("record does not address its own spec %s (hashes to %s)", rec.Spec, specID))
			return nil
		}
		e := &Experiment{ID: eid, Spec: rec.Spec, Client: rec.Client}
		if d.store.Has(eid) {
			e.State = StateDone
			d.exps[eid] = e
			return nil
		}
		e.State = StateQueued
		d.exps[eid] = e
		if err := d.queue.push(rec.Client, e, true); err != nil {
			return err
		}
		d.stats.Resumed++
		d.logEvent("resume", map[string]any{"id": eid, "spec": rec.Spec.String()})
		return nil
	})
}

// Submit accepts one experiment submission from client. Identical
// specs dedupe: the returned status reports Dedup when the submission
// joined in-flight work or an already stored result. Saturation
// returns ErrSaturated; a draining daemon returns ErrDraining for new
// work (dedup reads still succeed).
func (d *Daemon) Submit(spec ExperimentSpec, client string) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	id, err := spec.ID()
	if err != nil {
		return Status{}, err
	}
	//lint:allow locksafe admission is atomic end to end: the dedup check, store probe, journal append and enqueue must decide as one unit, and the IO involved is one bounded read plus one appended line
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.exps[id]; ok && e.State != StateFailed {
		return d.dedupLocked(e), nil
	}
	if d.store.Has(id) {
		// Stored by a previous daemon incarnation (or a sibling sharing
		// the directory) that we have no in-process record of.
		e := &Experiment{ID: id, Spec: spec, Client: client, State: StateDone}
		d.exps[id] = e
		return d.dedupLocked(e), nil
	}
	if d.draining || d.closed {
		return Status{}, ErrDraining
	}
	// Circuit breaker: consecutive executor failures shed new work
	// (dedup reads above still answer) until the cooldown passes.
	if !d.brk.allow(d.clock.Now()) {
		d.stats.Shed++
		d.logEvent("shed", map[string]any{"id": id, "client": client, "consec_failures": d.brk.consec})
		return Status{}, fmt.Errorf("%w after %d consecutive execution failures", ErrShedding, d.brk.consec)
	}
	// Admission control: check capacity first so a refused submission
	// leaves no trace in the journal.
	if d.queue.depth() >= d.queue.cap {
		d.stats.Rejected++
		d.logEvent("reject", map[string]any{"id": id, "client": client, "queue_depth": d.queue.depth()})
		return Status{}, fmt.Errorf("%w: %d queued (capacity %d)", ErrSaturated, d.queue.depth(), d.queue.cap)
	}
	retry := false
	if e, ok := d.exps[id]; ok && e.State == StateFailed {
		// Resubmitting a failed spec retries it; the journal entry from
		// the first acceptance still stands.
		e.State = StateQueued
		e.Err = ""
		retry = true
		if err := d.queue.push(client, e, false); err != nil {
			e.State = StateFailed
			return Status{}, err
		}
		d.stats.Submitted++
		d.afterEnqueueLocked(e, client, retry)
		return d.statusLocked(e), nil
	}
	if d.journal != nil && d.jDegrade == "" {
		if err := d.journal.Record(expPrefix+id, submitRecord{Spec: spec, Client: client}); err != nil {
			// Journal IO failure (disk full, device gone): degrade to
			// unjournaled operation instead of refusing work. Accepted
			// experiments lose restart durability — surfaced through
			// /healthz and /v1/stats — but the daemon keeps serving.
			d.jDegrade = err.Error()
			d.logEvent("journal_degraded", map[string]any{"error": err.Error()})
		}
	}
	e := &Experiment{ID: id, Spec: spec, Client: client, State: StateQueued}
	if err := d.queue.push(client, e, false); err != nil {
		// Unreachable after the capacity check above, but keep the
		// journal honest if it ever fires: the entry will simply resume
		// on restart.
		return Status{}, err
	}
	d.exps[id] = e
	d.stats.Submitted++
	d.afterEnqueueLocked(e, client, retry)
	return d.statusLocked(e), nil
}

// dedupLocked answers a submission that matched an existing
// experiment or a stored result: bump the dedup accounting and
// snapshot the status without executing anything. Callers hold d.mu.
//
//lint:hotpath service/dedup_hit/allocs gates this fast path; a dedup hit must answer within its allocation budget
func (d *Daemon) dedupLocked(e *Experiment) Status {
	d.stats.Submitted++
	if e.State == StateDone {
		d.stats.DedupStore++
	} else {
		d.stats.DedupInflight++
	}
	st := d.statusLocked(e)
	st.Dedup = true
	return st
}

// afterEnqueueLocked finishes bookkeeping common to fresh and retried
// enqueues. Callers hold d.mu.
func (d *Daemon) afterEnqueueLocked(e *Experiment, client string, retry bool) {
	if depth := d.queue.depth(); depth > d.stats.MaxQueueDepth {
		d.stats.MaxQueueDepth = depth
	}
	event := "submit"
	if retry {
		event = "retry"
	}
	d.logEvent(event, map[string]any{
		"id": e.ID, "client": client, "spec": e.Spec.String(), "queue_depth": d.queue.depth(),
	})
	d.cond.Broadcast()
}

// Status returns the experiment's current snapshot.
func (d *Daemon) Status(id string) (Status, bool) {
	//lint:allow locksafe the progress snapshot is one bounded runstate.json read; unlocking around it would let the experiment transition mid-snapshot
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.exps[id]
	if !ok {
		return Status{}, false
	}
	return d.statusLocked(e), true
}

// statusLocked snapshots e; callers hold d.mu.
func (d *Daemon) statusLocked(e *Experiment) Status {
	st := Status{ID: e.ID, State: e.State, Spec: e.Spec, Error: e.Err}
	if e.State == StateRunning && d.cfg.Dir != "" {
		//lint:allow hotalloc progress enrichment runs only for a live disk-backed run and already pays a file read; the dedup_hit gate measures the in-memory answer
		if b, err := os.ReadFile(filepath.Join(d.expDir(e.ID), "runstate.json")); err == nil {
			var snap runner.Snapshot
			//lint:allow hotalloc decoding the snapshot is part of the same slow enrichment branch, dwarfed by the read above it
			if json.Unmarshal(b, &snap) == nil {
				st.Progress = &snap
			}
		}
	}
	return st
}

// Result returns the stored result payload for a done experiment.
//
// Self-healing: a done experiment whose payload is no longer servable
// — quarantined after failing checksum verification, or evicted by
// store GC — is re-queued for execution on the spot (bypassing
// admission control: it was admitted once already). The caller sees a
// miss now and the byte-identical recomputed result after the re-run,
// because the payload is a pure function of the content address.
func (d *Daemon) Result(id string) ([]byte, bool) {
	if b, ok := d.store.Get(id); ok {
		return b, true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.exps[id]
	if !ok || e.State != StateDone || d.draining || d.closed {
		return nil, false
	}
	e.State = StateQueued
	e.Err = ""
	if err := d.queue.push(e.Client, e, true); err != nil {
		e.State = StateDone
		return nil, false
	}
	d.stats.Reexecuted++
	d.logEvent("reexec", map[string]any{"id": id, "spec": e.Spec.String()})
	d.cond.Broadcast()
	return nil, false
}

// Await blocks until the experiment's state differs from last, is
// terminal, or the daemon shuts down, and returns the then-current
// snapshot. It reports false when the ID is unknown. Callers drive
// streaming with it: write each returned status and stop once it is
// terminal, or unchanged from last (which means the daemon closed and
// no further transition can come).
func (d *Daemon) Await(id string, last State) (Status, bool) {
	return d.AwaitCtx(context.Background(), id, last)
}

// AwaitCtx is Await bounded by a context: when ctx is cancelled — a
// streaming client hung up — the wait unblocks and reports false
// instead of parking a goroutine on the condition variable until the
// next unrelated state change.
func (d *Daemon) AwaitCtx(ctx context.Context, id string, last State) (Status, bool) {
	if done := ctx.Done(); done != nil {
		// Wake every cond waiter on cancellation; the mutex ensures the
		// broadcast cannot fall between a waiter's ctx check and its
		// cond.Wait.
		stop := context.AfterFunc(ctx, func() {
			d.mu.Lock()
			d.cond.Broadcast()
			d.mu.Unlock()
		})
		defer stop()
	}
	//lint:allow locksafe the wake-up snapshot reads one bounded runstate.json under the lock; the state it reports must match the transition that woke the waiter
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return Status{}, false
		}
		e, ok := d.exps[id]
		if !ok {
			return Status{}, false
		}
		if e.State != last || e.State.Terminal() || d.closed {
			return d.statusLocked(e), true
		}
		d.cond.Wait()
	}
}

// Stats snapshots the daemon-wide accounting, folding in the store's
// integrity counters and every active degradation condition.
func (d *Daemon) Stats() Stats {
	ss := d.store.Stats()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.QueueDepth = d.queue.depth()
	s.Draining = d.draining
	s.StoreLen = ss.Len
	s.StoreBytes = ss.Bytes
	s.EvictedResults = ss.Evicted
	s.CorruptResults = ss.Corrupt
	s.QuarantineLen = ss.QuarantineLen
	s.QuarantineGC = ss.QuarantineEvicted
	s.StoreDegraded = ss.Degraded
	s.JournalDegraded = d.jDegrade
	s.BreakerOpen = d.brk.open && d.clock.Now().Before(d.brk.openUntil)
	s.Degraded = s.StoreDegraded != "" || s.JournalDegraded != "" || s.BreakerOpen
	return s
}

// Health is the /v1/healthz payload: liveness plus every degradation
// the daemon is currently operating under. The daemon answers it even
// while degraded — a breaker shedding load or a store fallen back to
// memory-only is alive, just honest about it.
type Health struct {
	Status          string `json:"status"` // "ok" or "degraded"
	Draining        bool   `json:"draining,omitempty"`
	BreakerOpen     bool   `json:"breaker_open,omitempty"`
	RetryAfterSec   int    `json:"retry_after_sec,omitempty"` // when the breaker is open: the shed hint
	StoreDegraded   string `json:"store_degraded,omitempty"`
	JournalDegraded string `json:"journal_degraded,omitempty"`
}

// Health snapshots the daemon's degradation surface.
func (d *Daemon) Health() Health {
	sd, _ := d.store.Degraded()
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock.Now()
	h := Health{
		Status:          "ok",
		Draining:        d.draining,
		BreakerOpen:     d.brk.open && now.Before(d.brk.openUntil),
		StoreDegraded:   sd,
		JournalDegraded: d.jDegrade,
	}
	if h.BreakerOpen {
		h.RetryAfterSec = d.brk.retryAfter(now)
	}
	if h.BreakerOpen || h.StoreDegraded != "" || h.JournalDegraded != "" {
		h.Status = "degraded"
	}
	return h
}

// retryAfterHint is the Retry-After seconds for a shed submission.
func (d *Daemon) retryAfterHint() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.brk.retryAfter(d.clock.Now())
}

// expDir is the experiment's private run directory (runner journal,
// disk cache, runstate.json for case/churn kinds).
func (d *Daemon) expDir(id string) string {
	if d.cfg.Dir == "" {
		return ""
	}
	//lint:allow hotalloc path assembly happens only in the disk-backed progress branch, never on the in-memory dedup answer
	return filepath.Join(d.cfg.Dir, "exps", id)
}

// nextQueued blocks until an experiment is available and marks it
// running, or returns nil when the daemon is draining or closed.
func (d *Daemon) nextQueued() *Experiment {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed || d.draining {
			return nil
		}
		if e, ok := d.queue.pop(); ok {
			e.State = StateRunning
			d.stats.Executions++
			d.stats.Running++
			d.cond.Broadcast()
			return e
		}
		d.cond.Wait()
	}
}

// shard is one worker loop: pop, execute under supervision (panic
// isolation, deadline, bounded retries), commit to the store, mark
// terminal, feed the breaker. On drain it finishes its current
// experiment and exits; queued work stays journaled for the next
// incarnation.
func (d *Daemon) shard(i int) {
	defer d.wg.Done()
	for {
		e := d.nextQueued()
		if e == nil {
			return
		}
		d.logEvent("exec", map[string]any{"shard": i, "id": e.ID, "spec": e.Spec.String()})
		b, err := d.supervisedExec(i, e)
		if err == nil {
			d.store.Put(e.ID, b)
		}
		d.mu.Lock()
		d.stats.Running--
		d.brk.record(err == nil, d.clock.Now())
		if d.brk.open && d.brk.trips > d.stats.BreakerTrips {
			d.stats.BreakerTrips = d.brk.trips
			d.logEvent("breaker_open", map[string]any{
				"consec_failures": d.brk.consec, "cooldown_sec": d.cfg.BreakerCooldown.Seconds(),
			})
		}
		if err != nil {
			e.State = StateFailed
			e.Err = err.Error()
			d.stats.Failed++
			d.logEvent("fail", map[string]any{"shard": i, "id": e.ID, "error": err.Error()})
		} else {
			e.State = StateDone
			d.stats.Completed++
			d.logEvent("done", map[string]any{"shard": i, "id": e.ID, "bytes": len(b)})
		}
		d.cond.Broadcast()
		d.mu.Unlock()
	}
}

// Drain begins a graceful shutdown: new work is refused (dedup reads
// still answer), shards finish their current experiments and stop, and
// everything still queued stays checkpointed in the journal for the
// next start. Drain blocks until the shards have exited.
func (d *Daemon) Drain() {
	d.mu.Lock()
	already := d.draining
	d.draining = true
	d.cond.Broadcast()
	queued := d.queue.depth()
	d.mu.Unlock()
	if !already {
		d.logEvent("drain", map[string]any{"queued": queued})
	}
	d.wg.Wait()
}

// Close drains the daemon and releases the journal. Safe to call more
// than once.
func (d *Daemon) Close() error {
	d.Drain()
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	j := d.journal
	d.journal = nil
	d.mu.Unlock()
	d.logEvent("close", nil)
	if j != nil {
		return j.Close()
	}
	return nil
}

// logEvent writes one structured JSON log line. Field maps marshal
// with sorted keys, so log output is stable for tests.
func (d *Daemon) logEvent(event string, fields map[string]any) {
	if d.cfg.Log == nil {
		return
	}
	line := map[string]any{
		"ts":    d.clock.Now().UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		"event": event,
	}
	for k, v := range fields { //lint:orderindependent both maps marshal below with sorted keys
		line[k] = v
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	fmt.Fprintf(d.cfg.Log, "%s\n", b)
}
