package grid

import (
	"fmt"
	"sync" //lint:allow nokernelgoroutines the mutex guards the cross-run substrate memo shared by parallel tuner workers; substrates are immutable once built and carry no sim-time state

	"rmscale/internal/routing"
	"rmscale/internal/sim"
	"rmscale/internal/topology"
)

// Substrate is the expensive, enabler-independent part of a simulation
// build: the topology graph, the grid role mapping, and the all-pairs
// routing tables. The scaling enablers (update interval, neighbourhood
// size, link delay scale, volunteering interval) do not affect it, so a
// tuner evaluating many enabler settings at the same scale factor can
// build the substrate once and share it across evaluations.
type Substrate struct {
	Graph *topology.Graph
	Map   *topology.Mapping
	Net   *routing.Matrix

	seed  int64
	nodes int
	m     int
	spec  topology.GridSpec
	links topology.LinkParams
}

// BuildSubstrate constructs the substrate for a config. It is
// deterministic in cfg.Seed and the structural fields of cfg.
func BuildSubstrate(cfg Config) (*Substrate, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	nodes := cfg.TopoNodes
	if nodes == 0 {
		nodes = cfg.Spec.Nodes() + cfg.Spec.Nodes()/5
	}
	m := cfg.TopoM
	if m == 0 {
		m = 2
	}
	src := sim.NewSource(cfg.Seed)
	g, err := topology.PowerLaw(nodes, m, cfg.Links, src.Stream("topo"))
	if err != nil {
		return nil, err
	}
	mp, err := topology.MapGrid(g, cfg.Spec, src.Stream("map"))
	if err != nil {
		return nil, err
	}
	endpoints := append([]int(nil), mp.SchedulerNode...)
	endpoints = append(endpoints, mp.ResourceNode...)
	endpoints = append(endpoints, mp.EstimatorNode...)
	net, err := routing.AllPairs(g, endpoints)
	if err != nil {
		return nil, err
	}
	return &Substrate{
		Graph: g, Map: mp, Net: net,
		seed: cfg.Seed, nodes: nodes, m: m, spec: cfg.Spec, links: cfg.Links,
	}, nil
}

// Matches reports whether the substrate was built for the structural
// part of cfg (after any central-policy collapse).
func (s *Substrate) Matches(cfg Config) bool {
	nodes := cfg.TopoNodes
	if nodes == 0 {
		nodes = cfg.Spec.Nodes() + cfg.Spec.Nodes()/5
	}
	m := cfg.TopoM
	if m == 0 {
		m = 2
	}
	return s.seed == cfg.Seed && s.nodes == nodes && s.m == m &&
		s.spec == cfg.Spec && s.links == cfg.Links
}

// SubstrateCache memoizes substrates keyed by their structural
// parameters. It is safe for concurrent use by parallel tuners.
type SubstrateCache struct {
	mu sync.Mutex
	m  map[string]*Substrate
}

// NewSubstrateCache returns an empty cache.
func NewSubstrateCache() *SubstrateCache {
	return &SubstrateCache{m: make(map[string]*Substrate)}
}

// Get returns the substrate for cfg, building it on first use.
func (c *SubstrateCache) Get(cfg Config) (*Substrate, error) {
	key := fmt.Sprintf("%d|%d|%d|%+v|%+v", cfg.Seed, cfg.TopoNodes, cfg.TopoM, cfg.Spec, cfg.Links)
	c.mu.Lock()
	s, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		return s, nil
	}
	s, err := BuildSubstrate(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = s
	c.mu.Unlock()
	return s, nil
}

// Len reports how many substrates are cached.
func (c *SubstrateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
