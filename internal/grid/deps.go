package grid

import (
	"rmscale/internal/workload"
)

// Precedence support (the paper's future-work item (b)): a job with
// Deps is held by the engine until every parent job has terminated
// (completed or been lost); only then does it enter scheduling, at its
// arrival time or at the moment of release, whichever is later.

// depTracker holds dependent jobs until their parents terminate.
type depTracker struct {
	// outstanding[jobID] is how many parents are still running.
	outstanding map[int]int
	// waiters[parentID] lists jobs waiting on that parent.
	waiters map[int][]*workload.Job
	// done records terminated job ids (for deps on jobs that finish
	// before the dependent is even examined).
	done map[int]bool
	// arrived records held jobs whose arrival time already passed.
	arrived map[int]bool
}

func newDepTracker() *depTracker {
	return &depTracker{
		outstanding: make(map[int]int),
		waiters:     make(map[int][]*workload.Job),
		done:        make(map[int]bool),
		arrived:     make(map[int]bool),
	}
}

// register examines a job's dependencies before the run starts and
// returns whether the job must be held.
func (d *depTracker) register(j *workload.Job) (held bool) {
	n := 0
	for _, parent := range j.Deps {
		if d.done[parent] {
			continue
		}
		d.waiters[parent] = append(d.waiters[parent], j)
		n++
	}
	if n == 0 {
		return false
	}
	d.outstanding[j.ID] = n
	return true
}

// terminate marks a job terminated and returns the dependents that
// became released by it.
func (d *depTracker) terminate(jobID int) []*workload.Job {
	if d.done[jobID] {
		return nil
	}
	d.done[jobID] = true
	var released []*workload.Job
	for _, w := range d.waiters[jobID] {
		d.outstanding[w.ID]--
		if d.outstanding[w.ID] == 0 {
			delete(d.outstanding, w.ID)
			released = append(released, w)
		}
	}
	delete(d.waiters, jobID)
	return released
}

// Held reports how many jobs are currently waiting on parents.
func (d *depTracker) Held() int { return len(d.outstanding) }

// startWithDeps wires arrivals for a workload containing precedence
// constraints. Independent jobs arrive normally; dependent jobs arrive
// at max(arrival, release time).
func (e *Engine) startWithDeps() {
	e.depsT = newDepTracker()
	for _, j := range e.jobs {
		j := j
		if len(j.Deps) == 0 || !e.depsT.register(j) {
			e.K.Schedule(j.Arrival, func() { e.admitJob(j) })
			continue
		}
		// Held: record when its arrival time passes so a later
		// release admits it immediately.
		e.K.Schedule(j.Arrival, func() {
			if e.depsT.outstanding[j.ID] > 0 {
				e.depsT.arrived[j.ID] = true
			}
		})
	}
}

// admitJob delivers a job to its submission scheduler. With faults
// armed the admission goes through the fault-aware path: a down
// scheduler parks the submission until its repair, and the engine
// starts tracking which scheduler is responsible for the job.
func (e *Engine) admitJob(j *workload.Job) {
	s := e.Schedulers[j.Cluster]
	e.Metrics.JobsAdmitted++
	if e.Tracer.On() {
		e.Tracer.Tracef("arrival", "job %d at cluster %d (%v)", j.ID, j.Cluster, j.Class)
	}
	//lint:allow hotalloc one envelope per job, allocated at admission and carried to termination: a per-job cost, not a per-event one
	ctx := &JobCtx{Job: j, Origin: j.Cluster}
	if e.fs != nil {
		e.deliverToScheduler(s, ctx)
		return
	}
	e.policy.OnJob(s, ctx)
}

// jobTerminated releases dependents of a finished (or lost) job.
func (e *Engine) jobTerminated(jobID int) {
	if e.depsT == nil {
		return
	}
	for _, w := range e.depsT.terminate(jobID) {
		w := w
		if e.K.Now() >= w.Arrival || e.depsT.arrived[w.ID] {
			if e.Tracer.On() {
				e.Tracer.Tracef("release", "job %d released by job %d", w.ID, jobID)
			}
			e.admitJob(w)
			continue
		}
		//lint:allow hotalloc deferred admission of a not-yet-arrived dependent: once per held job, only in workloads with precedence constraints
		e.K.Schedule(w.Arrival, func() { e.admitJob(w) })
	}
}

// HeldJobs reports how many jobs are still waiting on precedence
// constraints (0 when the workload has none).
func (e *Engine) HeldJobs() int {
	if e.depsT == nil {
		return 0
	}
	return e.depsT.Held()
}
