// Cluster partitioning for in-run parallelism. The conservative
// executor in internal/sim/par runs partitioned models concurrently in
// lookahead-sized windows; this file is the grid side of that contract:
// it derives the partition map and the lookahead bound from the built
// topology, and — just as importantly — enumerates the couplings that
// make today's engine observably serial, so RunPar can prove rather
// than assume that falling back to the serial kernel is the only
// byte-identical execution (see DESIGN.md §6.5).

package grid

import (
	"fmt"

	"rmscale/internal/sim"
)

// Plan is a partitioning decision for one built engine: which shard
// each cluster would run on, the lookahead the topology supports, and
// the census of couplings that force serial execution. A Plan is a pure
// function of the engine's configuration and substrate; computing it
// never disturbs the simulation.
type Plan struct {
	// Partitions maps cluster -> shard. The decomposition is the
	// GridSim one — each scheduler cluster with its resources is one
	// logical process — so the map is identity.
	Partitions []int
	// Lookahead is the minimum routed inter-scheduler network latency
	// (scaled by the LinkDelayScale enabler): no cross-cluster message
	// can take effect sooner, so windows of this length are safe. Zero
	// when the grid has a single cluster.
	Lookahead sim.Time
	// CrossPairs counts ordered cluster pairs that exchange messages in
	// the worst case (every pair: volunteering and transfers may touch
	// any remote cluster).
	CrossPairs int
	// Couplings lists, in a stable order, every engine feature that
	// makes event execution order observable across clusters — each one
	// a reason byte-identical parallel execution is impossible without
	// restructuring. Empty means the plan is safe to execute in
	// parallel.
	Couplings []string
}

// Parallelizable reports whether the engine could execute this plan's
// shards concurrently and still produce byte-identical results.
func (p *Plan) Parallelizable() bool { return len(p.Couplings) == 0 }

// PlanPartitions derives the cluster partition map, the topology's
// lookahead bound, and the serial-coupling census for this engine.
func (e *Engine) PlanPartitions() (*Plan, error) {
	p := &Plan{Partitions: make([]int, e.Clusters())}
	for c := range p.Partitions {
		p.Partitions[c] = c
	}
	p.CrossPairs = e.Clusters() * (e.Clusters() - 1)

	// Lookahead: the minimum routed scheduler-to-scheduler latency.
	// Resource-to-scheduler and estimator paths stay inside a shard (or
	// are themselves couplings, censused below), so the inter-scheduler
	// fabric is what bounds cross-shard causality.
	for a := 0; a < e.Clusters(); a++ {
		for b := a + 1; b < e.Clusters(); b++ {
			lat, _, _, err := e.Net.Between(e.Map.SchedulerNode[a], e.Map.SchedulerNode[b])
			if err != nil {
				return nil, fmt.Errorf("grid: plan: no route between schedulers %d and %d: %w", a, b, err)
			}
			d := lat * e.Cfg.Enablers.LinkDelayScale
			if p.Lookahead == 0 || d < p.Lookahead {
				p.Lookahead = d
			}
		}
	}

	// Coupling census, most fundamental first. The order is fixed so
	// plans are comparable across runs and the docs can cite entries.
	if e.Clusters() < 2 {
		p.Couplings = append(p.Couplings,
			"single cluster: there is nothing to partition")
	}
	p.Couplings = append(p.Couplings,
		"order-sensitive global accumulators: Metrics sums float work and response times in event-execution order, so any cross-cluster reordering changes the Summary")
	if len(e.Estimators) > 0 {
		p.Couplings = append(p.Couplings,
			"shared estimator layer: estimators aggregate updates from every cluster (resource id modulo estimator count), so their state orders cross-cluster traffic")
	}
	if e.mw != nil {
		p.Couplings = append(p.Couplings,
			"global middleware FIFO: scheduler-initiated messages serialize through one queue whose order is the global event order")
	}
	if e.Cfg.Faults.UpdateLossProb > 0 || e.Cfg.Faults.ResourceMTBF > 0 || e.fs != nil {
		p.Couplings = append(p.Couplings,
			"shared fault stream: probabilistic faults draw from one RNG stream in global event order, so every cluster's faults depend on every other's event count")
	}
	return p, nil
}

// RunPar executes the simulation with up to workers-way in-run
// parallelism wherever that provably preserves byte-identical results,
// and serially everywhere it would not. Today the coupling census is
// never empty — the global metric accumulators alone pin the serial
// event interleaving that the committed goldens encode — so every plan
// degrades to the serial kernel and RunPar is exactly Run. The method
// still computes and retains the plan (see LastPlan): it is the
// qualification gate that decides, per engine, when the conservative
// executor in internal/sim/par may take over, and the equivalence suite
// pins RunPar == Run at every worker count so the contract cannot
// silently drift when a coupling is removed.
func (e *Engine) RunPar(workers int) Summary {
	if workers < 0 {
		panic(fmt.Sprintf("grid: RunPar with %d workers", workers))
	}
	if workers > 1 {
		plan, err := e.PlanPartitions()
		if err == nil {
			e.LastPlan = plan
		}
		// plan.Parallelizable() is the future dispatch point for a
		// sharded engine over internal/sim/par; no engine build reaches
		// it today (the census proves why), so there is no speculative
		// sharding code behind it.
	}
	return e.Run()
}
