// Customrms shows how to plug a new resource management system into
// the framework and measure it against the paper's models: the Policy
// interface is the only contract. The example implements RANDOM — a
// deliberately naive scheduler that sends every REMOTE job to a random
// remote cluster without asking anything first — and compares its
// overhead and efficiency against LOWEST on the same grid.
//
//	go run ./examples/customrms
package main

import (
	"fmt"
	"log"

	"rmscale"
)

// Random is the custom RMS: no status machinery beyond the default
// periodic updates, no polling — REMOTE jobs are transferred blind.
// Cheap, but placement quality is whatever luck provides.
type Random struct{}

// Name implements rmscale.Policy.
func (*Random) Name() string { return "RANDOM" }

// Central implements rmscale.Policy.
func (*Random) Central() bool { return false }

// UsesMiddleware implements rmscale.Policy.
func (*Random) UsesMiddleware() bool { return false }

// Attach implements rmscale.Policy.
func (*Random) Attach(*rmscale.Engine) {}

// OnJob places LOCAL jobs on the least loaded local resource and ships
// REMOTE jobs to a uniformly random peer, blind.
func (*Random) OnJob(s *rmscale.Scheduler, ctx *rmscale.JobCtx) {
	if ctx.Hops > 0 || ctx.Attempts > 0 || ctx.Job.Runtime <= 700 || len(s.Peers()) == 0 {
		s.DispatchLeastLoaded(ctx)
		return
	}
	peers := s.RandomPeers(1)
	s.TransferJob(ctx, peers[0])
}

// OnMessage implements rmscale.Policy; RANDOM exchanges no messages.
func (*Random) OnMessage(*rmscale.Scheduler, *rmscale.Message) {}

// OnStatus implements rmscale.Policy.
func (*Random) OnStatus(*rmscale.Scheduler, []int) {}

// OnTick implements rmscale.Policy.
func (*Random) OnTick(*rmscale.Scheduler) {}

func main() {
	cfg := rmscale.DefaultConfig()

	run := func(p rmscale.Policy) rmscale.Summary {
		eng, err := rmscale.NewEngine(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		return eng.Run()
	}

	random := run(&Random{})
	lowest := run(rmscale.NewLowest())

	fmt.Println("model    G (overhead)  efficiency  success")
	fmt.Printf("RANDOM   %-13.0f %-11.3f %.3f\n", random.G, random.Efficiency, random.SuccessRate)
	fmt.Printf("LOWEST   %-13.0f %-11.3f %.3f\n", lowest.G, lowest.Efficiency, lowest.SuccessRate)
	fmt.Println()
	fmt.Printf("deadline-missed work: RANDOM %.0f, LOWEST %.0f\n", random.Wasted, lowest.Wasted)
	fmt.Println("A single run at one scale cannot rank schedulers — overhead and")
	fmt.Println("delivered work trade off differently as the system grows, which is")
	fmt.Println("exactly what the isoefficiency measurement (examples/measure) exposes.")
}
