package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type fakePoint struct {
	K        int
	G        float64
	Enablers []float64
}

func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, resumed, err := OpenJournal(dir, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("fresh journal reported resumed")
	}
	want := fakePoint{K: 2, G: 10.5, Enablers: []float64{40, 8, 1}}
	if err := j.Record("case1/CENTRAL/k=2", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, resumed, err := OpenJournal(dir, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !resumed {
		t.Fatal("existing journal not resumed")
	}
	var got fakePoint
	ok, err := j2.Lookup("case1/CENTRAL/k=2", &got)
	if err != nil || !ok {
		t.Fatalf("lookup: %v, %v", ok, err)
	}
	if got.K != want.K || got.G != want.G || len(got.Enablers) != 3 {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if ok, _ := j2.Lookup("missing", &got); ok {
		t.Fatal("lookup of missing id succeeded")
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, "fid=smoke seed=1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := OpenJournal(dir, "fid=smoke seed=2"); err == nil {
		t.Fatal("journal resumed under a different fingerprint")
	} else if !strings.Contains(err.Error(), "different run") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestJournalTruncatedTail simulates a writer killed mid-append: the
// partial final line must be dropped while every committed record
// survives, and the journal must accept new records afterwards.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Record(pointName(i), fakePoint{K: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, journalName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the last record's line.
	cut := len(b) - 10
	if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, resumed, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !resumed {
		t.Fatal("truncated journal not resumed")
	}
	if j2.Len() != 2 {
		t.Fatalf("journal holds %d records after truncation, want 2", j2.Len())
	}
	var p fakePoint
	if ok, _ := j2.Lookup(pointName(3), &p); ok {
		t.Fatal("truncated record resurrected")
	}
	if err := j2.Record(pointName(3), fakePoint{K: 3}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := j2.Lookup(pointName(3), &p); !ok || p.K != 3 {
		t.Fatalf("re-recorded point missing: %+v, %v", p, ok)
	}
}

func TestJournalRecordIdempotent(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("id", fakePoint{K: 1, G: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("id", fakePoint{K: 1, G: 999}); err != nil {
		t.Fatal(err)
	}
	var p fakePoint
	if ok, _ := j.Lookup("id", &p); !ok || p.G != 1 {
		t.Fatalf("re-record overwrote the committed value: %+v", p)
	}
	if j.Len() != 1 {
		t.Fatalf("duplicate record changed length: %d", j.Len())
	}
}

func TestJournalRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte("not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dir, "fp"); err == nil {
		t.Fatal("garbage journal accepted")
	}
}

func pointName(i int) string {
	return "case1/LOWEST/k=" + string(rune('0'+i))
}

func TestJournalEach(t *testing.T) {
	j, _, err := OpenJournal(t.TempDir(), "fp-each")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// Record out of lexicographic order; Each must iterate sorted.
	for _, id := range []string{"exp/bb", "exp/aa", "exp/cc"} {
		if err := j.Record(id, fakePoint{K: len(id)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := j.Each(func(id string, data json.RawMessage) error {
		if len(data) == 0 {
			t.Errorf("entry %s has empty payload", id)
		}
		got = append(got, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"exp/aa", "exp/bb", "exp/cc"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Each order %v, want %v", got, want)
	}
	// An fn error aborts the walk and propagates.
	calls := 0
	err = j.Each(func(id string, data json.RawMessage) error {
		calls++
		return os.ErrClosed
	})
	if err != os.ErrClosed || calls != 1 {
		t.Fatalf("Each error propagation: err=%v calls=%d", err, calls)
	}
}
