package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"rmscale/internal/lint/analysis"
)

// MapIterOrder flags `range` over a map whose body lets Go's
// randomized iteration order escape: appending to an outer slice,
// accumulating floats or strings (neither is order-associative),
// calling out to arbitrary functions, or returning a value picked
// from the iteration. Two shapes are accepted without annotation:
//
//   - key-addressed effects (writes into another map, integer
//     counters, max/min tracking via plain assignment), which are
//     order-independent by construction; and
//   - the collect-keys-then-sort idiom, where the loop only appends
//     to a slice that a later statement in the same block passes to
//     sort.* or slices.Sort*.
//
// Anything else needs `//lint:orderindependent <reason>` on the loop.
func MapIterOrder() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "mapiterorder",
		Doc:  "flag order-dependent effects inside range-over-map loops; sort keys first or annotate //lint:orderindependent",
	}
	a.Run = func(p *analysis.Pass) error {
		for _, f := range p.Files {
			parents := buildParents(f)
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(p, rs, parents)
				return true
			})
		}
		return nil
	}
	return a
}

// buildParents records each node's parent so a range statement can
// find the block it lives in.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func checkMapRange(p *analysis.Pass, rs *ast.RangeStmt, parents map[ast.Node]ast.Node) {
	// outer reports whether an identifier resolves to something
	// declared outside the range statement (and outside package scope
	// for functions — package-level funcs are handled by the call
	// rule, not the write rule).
	outerObj := func(id *ast.Ident) types.Object {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil || obj.Pos() == token.NoPos {
			return nil
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return nil // declared by or inside the loop
		}
		return obj
	}

	report := func(pos token.Pos, format string, args ...any) {
		p.ReportfAnchored(rs.Pos(), pos, format, args...)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				checkWrite(p, rs, parents, n, i, lhs, outerObj, report)
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				if obj := outerObj(id); obj != nil && !orderFreeKind(obj.Type()) {
					report(n.Pos(), "range over map %s %s, an outer %s; iteration order leaks into the result",
						n.Tok, id.Name, obj.Type())
				}
			}
		case *ast.CallExpr:
			checkCall(p, n, report)
		case *ast.SendStmt:
			report(n.Pos(), "range over map sends on a channel; delivery order follows map iteration order")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesVar(p, res, rs.Key) || usesVar(p, res, rs.Value) {
					report(n.Pos(), "range over map returns an iteration-dependent value; which element wins depends on map order")
					break
				}
			}
		}
		return true
	})
}

// checkWrite examines one assignment target inside the loop body.
func checkWrite(p *analysis.Pass, rs *ast.RangeStmt, parents map[ast.Node]ast.Node,
	as *ast.AssignStmt, i int, lhs ast.Expr, outerObj func(*ast.Ident) types.Object,
	report func(token.Pos, string, ...any)) {

	id, ok := lhs.(*ast.Ident)
	if !ok {
		// Index or field writes (m2[k] = v, s.f = v) are
		// key-addressed or struct-addressed: order-independent.
		return
	}
	obj := outerObj(id)
	if obj == nil {
		return
	}
	switch {
	case as.Tok == token.ASSIGN || as.Tok == token.DEFINE:
		// `x = append(x, ...)` grows an outer slice in iteration
		// order — unless a later sibling statement sorts it.
		if len(as.Rhs) == len(as.Lhs) {
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "append") {
				if !sortedLater(p, rs, parents, obj) {
					report(as.Pos(),
						"range over map appends to %s in iteration order; sort it afterwards in this block or range over sorted keys", id.Name)
				}
			}
		}
		// Other plain assignments (max/min tracking, last-write) are
		// accepted: the common idioms are order-independent and the
		// pathological ones are caught by review and goldens.
	default:
		// Compound assignment: commutative on integers and bit
		// patterns, order-dependent on floats and strings.
		if !orderFreeKind(obj.Type()) || !commutativeOp(as.Tok) {
			report(as.Pos(), "range over map accumulates into %s (%s) with %s; %s accumulation is iteration-order dependent",
				id.Name, obj.Type(), as.Tok, obj.Type())
		}
	}
}

// checkCall flags calls that leave the loop: anything that is not a
// builtin or a type conversion can observe iteration order (writers,
// loggers, even error construction with the current key).
func checkCall(p *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[fun]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return
			}
			if _, isType := obj.(*types.TypeName); isType {
				return
			}
		}
		report(call.Pos(), "range over map calls %s; calls out of a map loop observe iteration order — iterate sorted keys instead", fun.Name)
	case *ast.SelectorExpr:
		// In a chain like a.B(x).C(), report only the innermost call;
		// the outer links add no information.
		if containsCall(fun.X) {
			return
		}
		report(call.Pos(), "range over map calls %s; calls out of a map loop observe iteration order — iterate sorted keys instead",
			exprString(fun))
	case *ast.FuncLit:
		// An immediately invoked literal is still in-loop code; its
		// body was already inspected.
	default:
		report(call.Pos(), "range over map calls out; calls out of a map loop observe iteration order — iterate sorted keys instead")
	}
}

// containsCall reports whether any call expression appears under e.
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// sortedLater reports whether a statement after the range loop in the
// same block sorts the slice obj (sort.* or slices.Sort*).
func sortedLater(p *analysis.Pass, rs *ast.RangeStmt, parents map[ast.Node]ast.Node, obj types.Object) bool {
	block, ok := parents[rs].(*ast.BlockStmt)
	if !ok {
		return false
	}
	past := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rs) {
			past = true
			continue
		}
		if !past {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, _, ok := p.SelectorOf(call.Fun)
			if !ok || path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// orderFreeKind reports whether compound accumulation into this type
// is order-independent: integers and booleans yes, floats, strings
// and everything else no.
func orderFreeKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean|types.IsUnsigned) != 0
}

// commutativeOp reports whether a compound-assign token commutes.
func commutativeOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

// usesVar reports whether expr references the range variable v.
func usesVar(p *analysis.Pass, expr, v ast.Expr) bool {
	vid, ok := v.(*ast.Ident)
	if !ok || vid.Name == "_" {
		return false
	}
	vobj := p.Info.Defs[vid]
	if vobj == nil {
		vobj = p.Info.Uses[vid]
	}
	if vobj == nil {
		return false
	}
	used := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == vobj {
			used = true
		}
		return !used
	})
	return used
}

func isBuiltin(p *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.Info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}

// exprString renders a selector chain for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expr"
}
