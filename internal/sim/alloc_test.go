package sim

import (
	"testing"
)

// Allocation-regression tests: the kernel's hot paths are contractually
// allocation-free in steady state (DESIGN.md, "Kernel performance").
// These pin the contract with testing.AllocsPerRun so a regression
// fails `go test`, machine-independently, instead of waiting for
// someone to read a benchmark.

// TestScheduleFireZeroAlloc: once the free list is warm, one
// schedule→fire cycle performs zero heap allocations.
func TestScheduleFireZeroAlloc(t *testing.T) {
	k := NewKernel()
	var fn func()
	fn = func() { k.After(1, fn) }
	k.After(1, fn)
	for k.Processed() < 64 { // warm the free list
		k.Step()
	}
	if allocs := testing.AllocsPerRun(200, func() { k.Step() }); allocs != 0 {
		t.Errorf("steady-state schedule->fire cycle allocates %.1f times, want 0", allocs)
	}
}

// TestCancelRecycleZeroAlloc: the cancel-and-replace churn pattern
// (every protocol timeout does this) is also allocation-free once warm,
// including lazy-deletion bookkeeping.
func TestCancelRecycleZeroAlloc(t *testing.T) {
	k := NewKernel()
	var pending *Event
	var fn func()
	fn = func() {
		k.Cancel(pending)
		pending = k.After(2, func() {})
		k.After(1, fn)
	}
	k.After(1, fn)
	for k.Processed() < 256 {
		k.Step()
	}
	if allocs := testing.AllocsPerRun(200, func() { k.Step() }); allocs != 0 {
		t.Errorf("steady-state cancel/replace cycle allocates %.1f times, want 0", allocs)
	}
}

// TestTickerRearmZeroAlloc: a ticker tick (fire + rearm) allocates
// nothing once warm — the rearm closure is built once at NewTicker.
func TestTickerRearmZeroAlloc(t *testing.T) {
	k := NewKernel()
	n := 0
	NewTicker(k, 1, func() { n++ })
	for k.Processed() < 64 {
		k.Step()
	}
	if allocs := testing.AllocsPerRun(200, func() { k.Step() }); allocs != 0 {
		t.Errorf("ticker rearm cycle allocates %.1f times, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}

// TestDisabledTracerZeroAlloc: an event whose callback traces through
// the guarded pattern (`if tr.On() { tr.Tracef(...) }`) allocates
// nothing when the tracer is nil. The unguarded call would box the
// variadic arguments before Tracef's nil check could run; On() exists
// precisely to keep disabled-tracer runs allocation-free.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	k := NewKernel()
	var tr *Tracer
	load := 0
	var fn func()
	fn = func() {
		load++
		if tr.On() {
			tr.Tracef("update", "resource %d load %d", 7, load)
		}
		k.After(1, fn)
	}
	k.After(1, fn)
	for k.Processed() < 64 {
		k.Step()
	}
	if allocs := testing.AllocsPerRun(200, func() { k.Step() }); allocs != 0 {
		t.Errorf("disabled-tracer event allocates %.1f times, want 0", allocs)
	}
	if tr.On() {
		t.Fatal("nil tracer reports On")
	}
}
