package grid

// Message is a protocol message between schedulers. Kind values are
// policy-defined; exactly one policy runs per simulation, so kinds need
// only be unique within a policy.
type Message struct {
	Kind    int
	From    int // sending cluster
	To      int // receiving cluster
	Payload any
}

// Policy is a resource management system model. The grid engine owns
// mechanism (entities, messaging, cost accounting); the policy owns the
// protocol: what happens on job arrivals, on protocol messages, on
// fresh status information, and on the periodic volunteering tick.
//
// Implementations live in the rms package: CENTRAL, LOWEST, RESERVE,
// AUCTION, S-I, R-I and Sy-I.
type Policy interface {
	// Name returns the paper's model name, e.g. "LOWEST".
	Name() string
	// Central reports whether the model uses a single scheduler for
	// the whole pool; the engine then collapses the cluster layout.
	Central() bool
	// UsesMiddleware reports whether inter-scheduler messages pass
	// through the grid middleware queue (the S-I/R-I/Sy-I models).
	UsesMiddleware() bool
	// Attach is called once, after entities exist and before any
	// event runs; policies initialize per-scheduler State here.
	Attach(e *Engine)
	// OnJob handles a job at a scheduler: fresh arrivals (Hops == 0),
	// transferred jobs (Hops > 0), and bounced dispatches
	// (Attempts > 0). The policy must eventually Dispatch the job or
	// the engine counts it unfinished.
	OnJob(s *Scheduler, ctx *JobCtx)
	// OnMessage handles a protocol message addressed to s.
	OnMessage(s *Scheduler, m *Message)
	// OnStatus runs after fresh status information merged into s's
	// view; updated lists the resource ids that changed. Push-style
	// models use it to detect idle/underloaded resources.
	OnStatus(s *Scheduler, updated []int)
	// OnTick runs every VolunteerInterval on each scheduler.
	OnTick(s *Scheduler)
}
