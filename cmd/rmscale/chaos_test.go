package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rmscale"
)

func TestChaosSweepCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-chaos", "4", "-seed", "1", "-j", "2"}, &buf); err != nil {
		t.Fatalf("fault-only chaos sweep failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "4 schedules swept, no invariant violations") {
		t.Fatalf("unexpected sweep output:\n%s", buf.String())
	}
}

func TestChaosFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chaos", "2", "case1"}, &buf); err == nil {
		t.Fatal("-chaos with a command accepted")
	}
	if err := run([]string{"-chaos-replay", "nope.json", "all"}, &buf); err == nil {
		t.Fatal("-chaos-replay with a command accepted")
	}
	if err := run([]string{"-chaos-replay", filepath.Join(t.TempDir(), "missing.json")}, &buf); err == nil {
		t.Fatal("missing reproducer accepted")
	}
}

func TestChaosReplayCommand(t *testing.T) {
	// A violating reproducer (seeded corruption) must replay with a
	// non-zero exit and print its violations; writing it exercises the
	// same JSON format the sweep emits.
	dir := t.TempDir()
	s := rmscale.ChaosSchedule{
		Name:        "cli-repro",
		Model:       "LOWEST",
		Seed:        11,
		Clusters:    2,
		ClusterSize: 4,
		Horizon:     400,
		Drain:       200,
		Util:        0.7,
		Corruptions: []rmscale.ChaosCorruption{{Kind: "negative-overhead", At: 150}},
	}
	path := filepath.Join(dir, "repro.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-chaos-replay", path}, &buf)
	if err == nil {
		t.Fatal("violating reproducer replayed with a clean exit")
	}
	out := buf.String()
	for _, want := range []string{"cli-repro", "violation", "accounting", "fingerprint"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replay output missing %q:\n%s", want, out)
		}
	}

	// A fault-only schedule replays clean.
	s.Corruptions = nil
	s.SchedCrashes = []rmscale.ChaosCrash{{Target: 0, At: 100, Repair: 80}}
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-chaos-replay", path}, &buf); err != nil {
		t.Fatalf("clean reproducer failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "0 violation(s)") {
		t.Fatalf("unexpected replay output:\n%s", buf.String())
	}
}
