package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Series is a named curve y(x), the unit the experiment harness emits for
// every figure in the paper (e.g. the G(k) curve of one RMS model).
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Normalized returns a copy of the series with Y divided by Y[0],
// matching the paper's normalized overhead curves g(k).
func (s *Series) Normalized() Series {
	return Series{Name: s.Name, X: append([]float64(nil), s.X...), Y: Normalize(s.Y)}
}

// Slopes returns the per-segment slopes of the curve.
func (s *Series) Slopes() []float64 { return Slopes(s.X, s.Y) }

// SeriesSet is a group of curves sharing an X axis — one figure.
type SeriesSet struct {
	Title  string   `json:"title"`
	XLabel string   `json:"xlabel"`
	YLabel string   `json:"ylabel"`
	Series []Series `json:"series"`
}

// Add appends a curve to the set.
func (ss *SeriesSet) Add(s Series) { ss.Series = append(ss.Series, s) }

// Get returns the curve with the given name, or nil.
func (ss *SeriesSet) Get(name string) *Series {
	for i := range ss.Series {
		if ss.Series[i].Name == name {
			return &ss.Series[i]
		}
	}
	return nil
}

// Names returns the curve names in insertion order.
func (ss *SeriesSet) Names() []string {
	out := make([]string, len(ss.Series))
	for i := range ss.Series {
		out[i] = ss.Series[i].Name
	}
	return out
}

// WriteTable renders the set as an aligned text table with one row per X
// value and one column per series, the way the paper's figures read.
func (ss *SeriesSet) WriteTable(w io.Writer) error {
	if len(ss.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no series)\n", ss.Title)
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", ss.Title)
	fmt.Fprintf(&b, "%-8s", ss.XLabel)
	for _, s := range ss.Series {
		fmt.Fprintf(&b, " %12s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range ss.Series[0].X {
		fmt.Fprintf(&b, "%-8.3g", x)
		for _, s := range ss.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %12.4g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the set as CSV: header x,<name>,... then rows.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{ss.XLabel}, ss.Names()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(ss.Series) > 0 {
		for i, x := range ss.Series[0].X {
			row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
			for _, s := range ss.Series {
				if i < len(s.Y) {
					row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the set as indented JSON.
func (ss *SeriesSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ss)
}

// ReadSeriesSetJSON parses a set previously written with WriteJSON.
func ReadSeriesSetJSON(r io.Reader) (*SeriesSet, error) {
	var ss SeriesSet
	if err := json.NewDecoder(r).Decode(&ss); err != nil {
		return nil, fmt.Errorf("stats: decode series set: %w", err)
	}
	return &ss, nil
}

// RankByFinalY returns series names ordered by their final Y value,
// smallest first. For normalized G(k) curves this ranks models from most
// to least scalable, the comparison the paper draws from each figure.
func (ss *SeriesSet) RankByFinalY() []string {
	type kv struct {
		name string
		y    float64
	}
	var items []kv
	for _, s := range ss.Series {
		if len(s.Y) == 0 {
			continue
		}
		items = append(items, kv{s.Name, s.Y[len(s.Y)-1]})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].y < items[j].y })
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.name
	}
	return out
}
