package service

import (
	"fmt"
	"os"
	"path/filepath"
	//lint:allow nokernelgoroutines the result store is shared by HTTP handler goroutines and daemon shards; a mutex over the memory tier is the service layer's concurrency, not the sim kernel's
	"sync"

	"rmscale/internal/fsutil"
)

// Store is the shared result store: a content-addressed map from
// experiment ID to result payload, with a memory tier and an optional
// disk tier under dir/results. Because IDs are content addresses,
// a payload is immutable once written — Put never changes the bytes
// under an existing ID — so clients may cache fetched results forever
// and two daemons pointed at one directory serve identical bytes.
type Store struct {
	mu  sync.Mutex
	mem map[string][]byte
	dir string // "" = memory only
}

// NewStore returns a store persisting under dir/results, or a purely
// in-memory store when dir is empty.
func NewStore(dir string) (*Store, error) {
	s := &Store{mem: make(map[string][]byte)}
	if dir != "" {
		s.dir = filepath.Join(dir, "results")
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: result store dir: %w", err)
		}
	}
	return s, nil
}

// Get returns the payload stored under id. Disk hits are promoted into
// the memory tier.
func (s *Store) Get(id string) ([]byte, bool) {
	s.mu.Lock()
	b, ok := s.mem[id]
	s.mu.Unlock()
	if ok {
		return b, true
	}
	if s.dir != "" {
		if b, err := os.ReadFile(filepath.Join(s.dir, id+".json")); err == nil {
			s.mu.Lock()
			s.mem[id] = b
			s.mu.Unlock()
			return b, true
		}
	}
	return nil, false
}

// Has reports whether a result is stored under id without reading it
// into memory.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	_, ok := s.mem[id]
	s.mu.Unlock()
	if ok {
		return true
	}
	if s.dir != "" {
		if _, err := os.Stat(filepath.Join(s.dir, id+".json")); err == nil {
			return true
		}
	}
	return false
}

// Put stores the payload under id in memory and, when disk-backed,
// atomically on disk (temp file + fsync + rename via fsutil), so a
// crash mid-write never leaves a truncated result for another client
// to fetch. The caller must not mutate b after the call.
func (s *Store) Put(id string, b []byte) error {
	s.mu.Lock()
	s.mem[id] = b
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	return fsutil.WriteFileAtomic(filepath.Join(s.dir, id+".json"), b, 0o644)
}

// Len reports how many payloads the memory tier holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}
