package topology

import (
	"testing"
	"testing/quick"

	"rmscale/internal/sim"
)

func testGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := PowerLaw(n, 2, DefaultLinkParams(), stream("mapgraph"))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMapGridBasic(t *testing.T) {
	g := testGraph(t, 200)
	spec := GridSpec{Clusters: 8, ClusterSize: 12, Estimators: 4}
	m, err := MapGrid(g, spec, stream("map"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if m.Resources() != 96 {
		t.Fatalf("Resources() = %d, want 96", m.Resources())
	}
	routers := 0
	for _, r := range m.Roles {
		if r == RoleRouter {
			routers++
		}
	}
	if routers != 200-spec.Nodes() {
		t.Fatalf("routers = %d, want %d", routers, 200-spec.Nodes())
	}
}

func TestMapGridNoEstimators(t *testing.T) {
	g := testGraph(t, 100)
	m, err := MapGrid(g, GridSpec{Clusters: 5, ClusterSize: 10}, stream("map0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.EstimatorNode) != 0 {
		t.Fatalf("unexpected estimators: %v", m.EstimatorNode)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMapGridExactFit(t *testing.T) {
	// Every node is claimed: 4 schedulers + 4*5 resources + 2 estimators = 26.
	g := testGraph(t, 26)
	spec := GridSpec{Clusters: 4, ClusterSize: 5, Estimators: 2}
	m, err := MapGrid(g, spec, stream("fit"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	for u, r := range m.Roles {
		if r == RoleRouter {
			t.Fatalf("node %d left as router in exact-fit mapping", u)
		}
	}
}

func TestMapGridTooSmall(t *testing.T) {
	g := testGraph(t, 10)
	if _, err := MapGrid(g, GridSpec{Clusters: 4, ClusterSize: 5}, stream("x")); err == nil {
		t.Fatal("over-full spec accepted")
	}
}

func TestMapGridRejectsDisconnected(t *testing.T) {
	g := NewGraph(10)
	mustEdge(t, g, 0, 1)
	if _, err := MapGrid(g, GridSpec{Clusters: 1, ClusterSize: 1}, stream("x")); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestGridSpecValidate(t *testing.T) {
	cases := []GridSpec{
		{Clusters: 0, ClusterSize: 1},
		{Clusters: 1, ClusterSize: 0},
		{Clusters: 1, ClusterSize: 1, Estimators: -1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("spec %+v accepted", c)
		}
	}
	if err := (GridSpec{Clusters: 2, ClusterSize: 3}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestGridSpecNodes(t *testing.T) {
	s := GridSpec{Clusters: 3, ClusterSize: 4, Estimators: 2}
	if s.Nodes() != 3+12+2 {
		t.Fatalf("Nodes() = %d", s.Nodes())
	}
}

func TestRoleString(t *testing.T) {
	if RoleRouter.String() != "router" || RoleScheduler.String() != "scheduler" ||
		RoleResource.String() != "resource" || RoleEstimator.String() != "estimator" {
		t.Fatal("role names wrong")
	}
	if Role(99).String() == "" {
		t.Fatal("unknown role should still render")
	}
}

func TestMapGridDeterministic(t *testing.T) {
	spec := GridSpec{Clusters: 6, ClusterSize: 8, Estimators: 3}
	g := testGraph(t, 120)
	a, err := MapGrid(g, spec, stream("det"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MapGrid(g, spec, stream("det"))
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.SchedulerNode {
		if a.SchedulerNode[c] != b.SchedulerNode[c] {
			t.Fatalf("scheduler placement differs at cluster %d", c)
		}
	}
	for r := range a.ResourceNode {
		if a.ResourceNode[r] != b.ResourceNode[r] {
			t.Fatalf("resource placement differs at %d", r)
		}
	}
}

// Property: for arbitrary feasible specs the mapping validates and roles
// partition the node set.
func TestMapGridProperty(t *testing.T) {
	src := sim.NewSource(99)
	g, err := PowerLaw(150, 2, DefaultLinkParams(), src.Stream("g"))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	f := func(c, s, e uint8) bool {
		i++
		spec := GridSpec{
			Clusters:    1 + int(c%8),
			ClusterSize: 1 + int(s%12),
			Estimators:  int(e % 5),
		}
		if spec.Nodes() > g.N {
			return true
		}
		m, err := MapGrid(g, spec, src.Stream("m"))
		if err != nil {
			t.Logf("iteration %d spec %+v: %v", i, spec, err)
			return false
		}
		return m.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
