package loadgen

import (
	"testing"

	"rmscale/internal/service"
)

// TestRunInProcessSmoke runs a scaled-down load iteration against a
// real daemon (real executor, disk-backed store) and checks the
// harness's own audit plus its reported metrics.
func TestRunInProcessSmoke(t *testing.T) {
	opts := Options{Objects: 120, Distinct: 15, Clients: 4, Horizon: 200}
	m, err := RunInProcess(opts, service.Config{Dir: t.TempDir(), Shards: 2, QueueCap: 64})
	if err != nil {
		t.Fatalf("RunInProcess: %v", err)
	}
	if m.Executions != 15 {
		t.Fatalf("executions = %d, want 15", m.Executions)
	}
	if m.DedupHits != 105 {
		t.Fatalf("dedup hits = %d, want 105", m.DedupHits)
	}
	if m.StoreLen != 15 {
		t.Fatalf("store len = %d, want 15", m.StoreLen)
	}
	if m.ObjectsPerSec <= 0 || m.WallSec <= 0 {
		t.Fatalf("throughput not measured: %+v", m)
	}
	if m.SubmitP99Ms < m.SubmitP50Ms {
		t.Fatalf("p99 %.3f < p50 %.3f", m.SubmitP99Ms, m.SubmitP50Ms)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}
	if o.Objects != 1000 || o.Distinct != 125 || o.Clients != 8 || o.Seed != 1 || o.Horizon != 250 {
		t.Fatalf("defaults = %+v", o)
	}
	bad := Options{Objects: 10, Distinct: 20}
	if err := bad.defaults(); err == nil {
		t.Fatal("Distinct > Objects accepted")
	}
}
