package grid

import (
	"testing"
)

func estimatorEngine(t *testing.T, estimators int) (*Engine, *stubPolicy) {
	t.Helper()
	cfg := testConfig()
	cfg.Spec.Estimators = estimators
	p := &stubPolicy{}
	e, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return e, p
}

func TestEstimatorHeartbeatIndependentOfUpdates(t *testing.T) {
	// Even with a huge update interval (almost no updates), the
	// estimator layer keeps broadcasting digests at its own cadence —
	// the property that makes Figure 4's effect non-tunable.
	cfg := testConfig()
	cfg.Spec.Estimators = 2
	cfg.Enablers.UpdateInterval = 100000 // effectively never
	e, err := New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	window := cfg.Horizon + cfg.Drain
	// Two estimators, one broadcast each per EstimatorInterval, to
	// every one of the 4 schedulers.
	expected := int(window/cfg.Protocol.EstimatorInterval) * 2 * e.Clusters()
	got := e.Metrics.DigestsSent
	if got < expected/2 || got > expected+2*e.Clusters() {
		t.Fatalf("digests = %d, want ~%d (heartbeats must not depend on tau)", got, expected)
	}
}

func TestEstimatorDigestCarriesFreshLoads(t *testing.T) {
	e, p := estimatorEngine(t, 2)
	_ = p
	e.Run()
	// After a full run, schedulers' views must reflect resource state
	// that travelled through the estimator layer (nonzero timestamps).
	seen := false
	for _, s := range e.Schedulers {
		for _, rid := range s.LocalResources() {
			if _, at := s.View(rid); at > 0 {
				seen = true
			}
		}
	}
	if !seen {
		t.Fatal("no status information reached schedulers through estimators")
	}
}

func TestEstimatorCostsAccrueToG(t *testing.T) {
	e, _ := estimatorEngine(t, 3)
	e.Run()
	total := 0.0
	for _, b := range e.Metrics.EstimatorBusy {
		total += b
	}
	if total <= 0 {
		t.Fatal("estimator work not accounted")
	}
}

func TestSortStatusItems(t *testing.T) {
	items := []statusItem{
		{rid: 3, at: 1}, {rid: 1, at: 5}, {rid: 1, at: 2}, {rid: 2, at: 0},
	}
	sortStatusItems(items)
	want := []statusItem{{rid: 1, at: 2}, {rid: 1, at: 5}, {rid: 2, at: 0}, {rid: 3, at: 1}}
	for i := range want {
		if items[i].rid != want[i].rid || items[i].at != want[i].at {
			t.Fatalf("sorted = %v", items)
		}
	}
}

func TestEstimatorLayerVsDirectEquivalentInformation(t *testing.T) {
	// The estimator layer adds latency and cost but must not lose
	// information: success rates with and without the layer should be
	// in the same ballpark on the same workload.
	direct, _ := estimatorEngine(t, 0)
	layered, _ := estimatorEngine(t, 3)
	a := direct.Run()
	b := layered.Run()
	if b.SuccessRate < a.SuccessRate-0.15 {
		t.Fatalf("estimator layer destroyed placement quality: %v vs %v",
			b.SuccessRate, a.SuccessRate)
	}
}
