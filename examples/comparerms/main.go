// Comparerms runs all seven RMS models of the paper on an identical
// grid and workload, then ranks them by overhead and by delivered
// efficiency — the comparison a grid operator would run before
// committing to a scheduler architecture.
//
//	go run ./examples/comparerms
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"rmscale"
)

func main() {
	cfg := rmscale.DefaultConfig()
	// A moderately stressed medium grid.
	cfg.Spec = rmscale.GridSpec{Clusters: 12, ClusterSize: 10}
	cfg.Workload.Clusters = 12
	cfg.Workload.ArrivalRate = 0.9 * 120 / 524.2

	type row struct {
		name string
		sum  rmscale.Summary
	}
	var rows []row
	for _, p := range rmscale.Models() {
		eng, err := rmscale.NewEngine(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name: p.Name(), sum: eng.Run()})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].sum.G < rows[j].sum.G })

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\tG (RMS overhead)\tefficiency\tsuccess\tmean response")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.3f\t%.3f\t%.1f\n",
			r.name, r.sum.G, r.sum.Efficiency, r.sum.SuccessRate, r.sum.MeanResponse)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nNote: low overhead at one scale does not mean scalable —")
	fmt.Println("run the isoefficiency measurement (examples/measure) to see growth.")
}
