package rmscale_test

import (
	"bytes"
	"strings"
	"testing"

	"rmscale"
)

func TestModelsRoster(t *testing.T) {
	names := rmscale.ModelNames()
	want := []string{"CENTRAL", "LOWEST", "RESERVE", "AUCTION", "S-I", "R-I", "Sy-I"}
	if len(names) != len(want) {
		t.Fatalf("models = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("model %d = %q, want %q", i, names[i], want[i])
		}
	}
	for _, n := range want {
		p, err := rmscale.ModelByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Fatalf("ModelByName(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := rmscale.ModelByName("NOPE"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestModelConstructors(t *testing.T) {
	cases := map[string]rmscale.Policy{
		"CENTRAL": rmscale.NewCentral(),
		"LOWEST":  rmscale.NewLowest(),
		"RESERVE": rmscale.NewReserve(),
		"AUCTION": rmscale.NewAuction(),
		"S-I":     rmscale.NewSenderInitiated(),
		"R-I":     rmscale.NewReceiverInitiated(),
		"Sy-I":    rmscale.NewSymmetric(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("constructor for %q returned %q", want, p.Name())
		}
	}
	if !rmscale.NewCentral().Central() {
		t.Error("CENTRAL must report Central()")
	}
	if rmscale.NewLowest().Central() {
		t.Error("LOWEST must not report Central()")
	}
	for _, n := range []string{"S-I", "R-I", "Sy-I"} {
		if !cases[n].UsesMiddleware() {
			t.Errorf("%s must use the grid middleware", n)
		}
	}
}

func TestEngineEndToEnd(t *testing.T) {
	cfg := rmscale.DefaultConfig()
	cfg.Horizon = 1500
	cfg.Workload.Horizon = 1500
	cfg.Drain = 2000
	eng, err := rmscale.NewEngine(cfg, rmscale.NewLowest())
	if err != nil {
		t.Fatal(err)
	}
	sum := eng.Run()
	if sum.Jobs == 0 || sum.F <= 0 || sum.G <= 0 {
		t.Fatalf("empty run: %+v", sum)
	}
	if sum.Efficiency <= 0 || sum.Efficiency >= 1 {
		t.Fatalf("efficiency %v", sum.Efficiency)
	}
}

func TestPaperBand(t *testing.T) {
	b := rmscale.PaperBand()
	if b.Lo != 0.38 || b.Hi != 0.42 {
		t.Fatalf("band = %+v", b)
	}
}

func TestMeasureViaFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement is slow")
	}
	cache := rmscale.NewSubstrateCache()
	ev := rmscale.EvaluatorFunc(func(k int, x []float64) (rmscale.Observation, error) {
		cfg := rmscale.DefaultConfig()
		cfg.Spec.Clusters = 4 * k
		cfg.Spec.ClusterSize = 5
		cfg.Workload.Clusters = cfg.Spec.Clusters
		cfg.Workload.ArrivalRate = 0.9 * float64(20*k) / 524.2
		cfg.Workload.Horizon = 1000
		cfg.Horizon = 1000
		cfg.Drain = 1500
		cfg.Enablers.UpdateInterval = x[0]
		sub, err := cache.Get(cfg)
		if err != nil {
			return rmscale.Observation{}, err
		}
		eng, err := rmscale.NewEngineWith(cfg, rmscale.NewLowest(), sub)
		if err != nil {
			return rmscale.Observation{}, err
		}
		s := eng.Run()
		return rmscale.Observation{
			F: s.F, G: s.G, H: s.H, Efficiency: s.Efficiency,
		}, nil
	})
	spec := rmscale.MeasureSpec{
		RMS:      "LOWEST",
		Ks:       []int{1, 2},
		Enablers: []rmscale.Enabler{{Name: "tau", Min: 5, Max: 400, Init: 40}},
		Band:     rmscale.PaperBand(),
	}
	spec.Anneal.Iters = 6
	m, err := rmscale.Measure(ev, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 2 {
		t.Fatalf("points = %d", len(m.Points))
	}
	if g := m.NormalizedG(); g[0] != 1 {
		t.Fatalf("normalized base %v", g[0])
	}
	iso, err := rmscale.NewIsoAnalysis(m.Points[0].Obs, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if iso.C <= 0 {
		t.Fatalf("iso constant c = %v", iso.C)
	}
	if _, err := rmscale.ConditionReport(m); err != nil {
		t.Fatal(err)
	}
}

func TestTablesViaFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := rmscale.PaperConstantsTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "700") {
		t.Fatal("Table 1 missing T_CPU value")
	}
	buf.Reset()
	if err := rmscale.ScalingTables(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 5") {
		t.Fatal("scaling tables incomplete")
	}
}

func TestParseFidelityFacade(t *testing.T) {
	f, err := rmscale.ParseFidelity("quick")
	if err != nil || f != rmscale.Quick {
		t.Fatalf("ParseFidelity: %v %v", f, err)
	}
}

func TestRPOverheadFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	r, err := rmscale.RunCase1(rmscale.Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := rmscale.RPOverheadFigure(r)
	if len(ss.Series) != 7 {
		t.Fatalf("series = %d", len(ss.Series))
	}
}

func TestCaseResultFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	r, err := rmscale.RunCase3(rmscale.Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ss := range []*rmscale.SeriesSet{
		r.Figure(), r.NormalizedFigure(), r.ThroughputFigure(), r.ResponseFigure(),
	} {
		if len(ss.Series) != 7 {
			t.Fatalf("%q has %d series", ss.Title, len(ss.Series))
		}
		var buf bytes.Buffer
		if err := ss.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if len(buf.String()) == 0 {
			t.Fatal("empty CSV")
		}
	}
}

func TestHierarchyViaFacade(t *testing.T) {
	p := rmscale.NewHierarchy()
	if p.Name() != "HIERARCHY" || p.Central() {
		t.Fatalf("hierarchy surface wrong: %s central=%v", p.Name(), p.Central())
	}
	// Reachable by name (extension roster) but not in Models().
	byName, err := rmscale.ModelByName("HIERARCHY")
	if err != nil || byName.Name() != "HIERARCHY" {
		t.Fatalf("ModelByName(HIERARCHY): %v %v", byName, err)
	}
	for _, m := range rmscale.Models() {
		if m.Name() == "HIERARCHY" {
			t.Fatal("HIERARCHY leaked into the paper roster")
		}
	}
}

func TestWorkloadFacade(t *testing.T) {
	p := rmscale.DefaultConfig().Workload
	p.Clusters = 1
	jobs, err := rmscale.GenerateWorkload(p, 3)
	if err != nil || len(jobs) == 0 {
		t.Fatalf("GenerateWorkload: %d jobs, %v", len(jobs), err)
	}
	var buf bytes.Buffer
	if err := rmscale.WriteSWF(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := rmscale.ReadSWF(&buf, rmscale.SWFOptions{Clusters: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("SWF round trip: %d vs %d", len(got), len(jobs))
	}
}

func TestJWViaFacade(t *testing.T) {
	m := &rmscale.Measurement{
		RMS: "X",
		Points: []rmscale.Point{
			{K: 1, Obs: rmscale.Observation{Throughput: 5, MeanResponse: 10}},
			{K: 2, Obs: rmscale.Observation{Throughput: 10, MeanResponse: 10}},
		},
	}
	r, err := rmscale.JogalekarWoodside(m, rmscale.JWParams{TargetResponse: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Psi) != 2 || r.Psi[0] != 1 {
		t.Fatalf("psi = %v", r.Psi)
	}
}

func TestPathSearchViaFacade(t *testing.T) {
	spec := rmscale.PathSpec{
		Vars: []rmscale.PathVar{{Name: "n", Min: 1, Max: 50, Integer: true, CostWeight: 1}},
		Ks:   []int{1, 2},
		Band: rmscale.PaperBand(),
		Demand: func(k int, obs rmscale.Observation) bool {
			return obs.Throughput >= float64(k)
		},
	}
	spec.Anneal.Iters = 60
	ev := rmscale.PathEvaluatorFunc(func(k int, vars []float64) (rmscale.Observation, error) {
		return rmscale.Observation{Throughput: vars[0], Efficiency: 0.40}, nil
	})
	p, err := rmscale.FindScalingPath(ev, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible() {
		t.Fatal("trivially feasible path not found")
	}
}

func TestChartViaFacade(t *testing.T) {
	ss := &rmscale.SeriesSet{Title: "t", XLabel: "k", YLabel: "y"}
	ss.Add(rmscale.Series{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}})
	var buf bytes.Buffer
	if err := ss.WriteChart(&buf, rmscale.ChartOptions{Width: 20, Height: 6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend") {
		t.Fatal("chart missing legend")
	}
}
