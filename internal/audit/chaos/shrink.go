package chaos

// Shrink reduces a violating schedule to a minimal reproducer by
// classic delta debugging: greedily drop each scripted event, then
// bisect the surviving outage/loss durations downward, re-running the
// full audited simulation after every candidate edit and keeping it
// only when the violation reproduces. "The violation" means any
// violation of the same check kind as the original's first finding —
// shrinking may legitimately reorder secondary findings. The process
// repeats to a fixpoint or until maxEvals runs are spent.
func Shrink(s Schedule, r Report, maxEvals int) (Schedule, Report, int) {
	if !r.Violating() || maxEvals <= 0 {
		return s, r, 0
	}
	target := r.Kinds[0]
	best, bestR := s.clone(), r
	evals := 0
	try := func(cand Schedule) bool {
		if evals >= maxEvals {
			return false
		}
		evals++
		cr, err := Run(cand)
		if err != nil || !cr.HasKind(target) {
			return false
		}
		best, bestR = cand, cr
		return true
	}
	for improved := true; improved && evals < maxEvals; {
		improved = false
		// Drop passes: remove one scripted event at a time.
		for i := 0; i < len(best.SchedCrashes); {
			cand := best.clone()
			cand.SchedCrashes = append(cand.SchedCrashes[:i], cand.SchedCrashes[i+1:]...)
			if try(cand) {
				improved = true
			} else {
				i++
			}
		}
		for i := 0; i < len(best.EstCrashes); {
			cand := best.clone()
			cand.EstCrashes = append(cand.EstCrashes[:i], cand.EstCrashes[i+1:]...)
			if try(cand) {
				improved = true
			} else {
				i++
			}
		}
		for i := 0; i < len(best.LossWindows); {
			cand := best.clone()
			cand.LossWindows = append(cand.LossWindows[:i], cand.LossWindows[i+1:]...)
			if try(cand) {
				improved = true
			} else {
				i++
			}
		}
		for i := 0; i < len(best.Corruptions); {
			cand := best.clone()
			cand.Corruptions = append(cand.Corruptions[:i], cand.Corruptions[i+1:]...)
			if try(cand) {
				improved = true
			} else {
				i++
			}
		}
		// Bisect passes: halve surviving outage and loss durations.
		for i := range best.SchedCrashes {
			if best.SchedCrashes[i].Repair <= 2 {
				continue
			}
			cand := best.clone()
			cand.SchedCrashes[i].Repair /= 2
			if try(cand) {
				improved = true
			}
		}
		for i := range best.EstCrashes {
			if best.EstCrashes[i].Repair <= 2 {
				continue
			}
			cand := best.clone()
			cand.EstCrashes[i].Repair /= 2
			if try(cand) {
				improved = true
			}
		}
		for i := range best.LossWindows {
			if best.LossWindows[i].Duration <= 2 {
				continue
			}
			cand := best.clone()
			cand.LossWindows[i].Duration /= 2
			if try(cand) {
				improved = true
			}
		}
	}
	return best, bestR, evals
}
