package routing

import (
	"testing"

	"rmscale/internal/sim"
)

func TestPlanOutagesDeterministic(t *testing.T) {
	nodes := []int{5, 1, 9, 1, 3}
	a, err := PlanOutages(nodes, 100, 20, 1000, sim.NewSource(7).Stream("faults:links"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanOutages([]int{1, 1, 3, 5, 9}, 100, 20, 1000, sim.NewSource(7).Stream("faults:links"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Windows() == 0 {
		t.Fatal("expected some outage windows with mtbf 100 over horizon 1000")
	}
	if a.Windows() != b.Windows() {
		t.Fatalf("window counts differ: %d vs %d", a.Windows(), b.Windows())
	}
	for _, n := range nodes {
		for x := 0.0; x < 1000; x += 7.3 {
			if a.Severed(n, x) != b.Severed(n, x) {
				t.Fatalf("schedules diverge at node %d, t=%v", n, x)
			}
		}
	}
}

func TestOutagesSeveredWindows(t *testing.T) {
	o, err := PlanOutages([]int{1}, 50, 10, 500, sim.NewSource(3).Stream("links"))
	if err != nil {
		t.Fatal(err)
	}
	ws := o.windows[1]
	if len(ws) == 0 {
		t.Fatal("no windows planned")
	}
	w := ws[0]
	if !o.Severed(1, w.start) || !o.Severed(1, (w.start+w.end)/2) {
		t.Fatal("inside the window must read severed")
	}
	if o.Severed(1, w.end) {
		t.Fatal("window end is exclusive")
	}
	if w.start > 0 && o.Severed(1, w.start/2) {
		t.Fatal("before the first window must read up")
	}
	if o.Severed(2, w.start) {
		t.Fatal("unknown node must never be severed")
	}
	if !o.SeveredPath(1, 2, w.start) || !o.SeveredPath(2, 1, w.start) {
		t.Fatal("a path touching a severed endpoint must be severed")
	}
}

func TestPlanOutagesDisabled(t *testing.T) {
	o, err := PlanOutages([]int{1, 2}, 0, 10, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Windows() != 0 || o.Severed(1, 5) {
		t.Fatal("disabled plan must be empty")
	}
	var nilPlan *Outages
	if nilPlan.Severed(1, 0) || nilPlan.SeveredPath(1, 2, 0) || nilPlan.Windows() != 0 {
		t.Fatal("nil plan must read fault-free")
	}
	if _, err := PlanOutages([]int{1}, 10, 10, 500, nil); err == nil {
		t.Fatal("enabled plan without a source must error")
	}
}
