package grid

import (
	"fmt"

	"rmscale/internal/sim"
)

// This file is the engine's scripted fault-injection API: explicit
// crashes and loss windows at exact simulated times, as opposed to the
// random fault processes FaultModel drives. The chaos harness
// (internal/audit/chaos) uses it to turn a JSON fault schedule into a
// deterministic, replayable run. Scripted injections require ArmFaults
// first and must be registered before Run.

// ArmFaults arms the protocol-fault machinery (ownership tracking,
// timeout/retry sends, parking) even when the random FaultModel is
// all-zero, so scripted injections find it in place. It is idempotent
// and a no-op when the config already armed faults. It must be called
// before Run.
func (e *Engine) ArmFaults() error {
	if e.fs != nil {
		return nil
	}
	if e.K.Processed() != 0 {
		return fmt.Errorf("grid: ArmFaults after the simulation started")
	}
	return e.setupFaults()
}

// HasFaultScript reports whether any explicit fault injection was
// registered on the engine. The auditor uses it: with a zero FaultModel
// and no script, every fault counter must stay zero.
func (e *Engine) HasFaultScript() bool {
	return e.fs != nil && e.fs.scripted
}

// scriptable validates the common preconditions of an injection.
func (e *Engine) scriptable(at sim.Time) error {
	if e.fs == nil {
		return fmt.Errorf("grid: fault injection requires ArmFaults first")
	}
	if e.K.Processed() != 0 {
		return fmt.Errorf("grid: fault injection after the simulation started")
	}
	if at < 0 {
		return fmt.Errorf("grid: fault injection at negative time %v", at)
	}
	return nil
}

// InjectSchedulerCrash scripts a crash of cluster's scheduler at time
// at, repaired after repair time units. Scripted crash windows on one
// target must not overlap each other (or the random crash process): a
// crash landing on an already-down scheduler is skipped, but its repair
// would then cut a concurrent outage short.
func (e *Engine) InjectSchedulerCrash(cluster int, at, repair sim.Time) error {
	if err := e.scriptable(at); err != nil {
		return err
	}
	if cluster < 0 || cluster >= len(e.Schedulers) {
		return fmt.Errorf("grid: scheduler crash targets cluster %d of %d", cluster, len(e.Schedulers))
	}
	if repair <= 0 {
		return fmt.Errorf("grid: scheduler crash with non-positive repair %v", repair)
	}
	e.fs.scripted = true
	s := e.Schedulers[cluster]
	e.K.Schedule(at, func() {
		e.crashScheduler(s, repair)
		e.K.After(repair, func() { e.repairScheduler(s) })
	})
	return nil
}

// InjectEstimatorCrash scripts a crash of estimator i at time at,
// repaired after repair time units. The same non-overlap rule as
// InjectSchedulerCrash applies.
func (e *Engine) InjectEstimatorCrash(i int, at, repair sim.Time) error {
	if err := e.scriptable(at); err != nil {
		return err
	}
	if i < 0 || i >= len(e.Estimators) {
		return fmt.Errorf("grid: estimator crash targets estimator %d of %d", i, len(e.Estimators))
	}
	if repair <= 0 {
		return fmt.Errorf("grid: estimator crash with non-positive repair %v", repair)
	}
	e.fs.scripted = true
	est := e.Estimators[i]
	e.K.Schedule(at, func() {
		e.crashEstimator(est, repair)
		e.K.After(repair, func() { e.repairEstimator(est) })
	})
	return nil
}

// InjectLossWindow scripts a total protocol-message blackout over
// [start, start+duration): every protoSend during the window is lost
// and enters the timeout/retry path. Status updates and digests are
// unaffected (they have no retry protocol to exercise).
func (e *Engine) InjectLossWindow(start, duration sim.Time) error {
	if err := e.scriptable(start); err != nil {
		return err
	}
	if duration <= 0 {
		return fmt.Errorf("grid: loss window with non-positive duration %v", duration)
	}
	e.fs.scripted = true
	e.fs.lossWindows = append(e.fs.lossWindows, lossWindow{start: start, end: start + duration})
	return nil
}
