package service

import (
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	valid := []ExperimentSpec{
		{Kind: KindSim, Model: "LOWEST", Seed: 1},
		{Kind: KindSim, Model: "CENTRAL", Seed: 7, Horizon: 250},
		{Kind: KindCase, Case: 1, Fidelity: "smoke", Seed: 1},
		{Kind: KindChurn, Case: 4, Fidelity: "quick", Seed: 3},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", s, err)
		}
	}

	// Every rejection must carry the offending value so the submission
	// can be fixed from the error alone.
	invalid := []struct {
		spec ExperimentSpec
		want string // substring that is the offending value
	}{
		{ExperimentSpec{Kind: "batch"}, `"batch"`},
		{ExperimentSpec{Kind: KindSim, Model: "NOPE"}, `"NOPE"`},
		{ExperimentSpec{Kind: KindSim, Model: "LOWEST", Horizon: -5}, "-5"},
		{ExperimentSpec{Kind: KindSim, Model: "LOWEST", Case: 2}, "case=2"},
		{ExperimentSpec{Kind: KindSim, Model: "LOWEST", Fidelity: "smoke"}, `fidelity="smoke"`},
		{ExperimentSpec{Kind: KindCase, Case: 0, Fidelity: "smoke"}, "case 0"},
		{ExperimentSpec{Kind: KindCase, Case: 5, Fidelity: "smoke"}, "case 5"},
		{ExperimentSpec{Kind: KindCase, Case: 2, Fidelity: "huge"}, `"huge"`},
		{ExperimentSpec{Kind: KindCase, Case: 2, Fidelity: "smoke", Model: "RR"}, `model="RR"`},
		{ExperimentSpec{Kind: KindChurn, Case: 2, Fidelity: "smoke", Horizon: 9}, "horizon=9"},
	}
	for _, tc := range invalid {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %q, want it to name the offending value %q", tc.spec, err, tc.want)
		}
	}
}

func TestSpecString(t *testing.T) {
	cases := []struct {
		spec ExperimentSpec
		want string
	}{
		{ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "spec{kind=sim seed=1 model=LOWEST}"},
		{ExperimentSpec{Kind: KindSim, Model: "RESERVE", Seed: 2, Horizon: 250}, "spec{kind=sim seed=2 model=RESERVE horizon=250}"},
		{ExperimentSpec{Kind: KindChurn, Seed: 3, Case: 4, Fidelity: "smoke"}, "spec{kind=churn seed=3 case=4 fidelity=smoke}"},
	}
	for _, tc := range cases {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestSpecID(t *testing.T) {
	a := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}
	b := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}
	idA, err := a.ID()
	if err != nil {
		t.Fatalf("ID: %v", err)
	}
	idB, _ := b.ID()
	if idA != idB {
		t.Errorf("identical specs hash differently: %s vs %s", idA, idB)
	}
	if len(idA) != 64 {
		t.Errorf("ID %q: want 64 hex chars", idA)
	}
	c := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 2}
	if idC, _ := c.ID(); idC == idA {
		t.Errorf("distinct specs collide on %s", idA)
	}
}
