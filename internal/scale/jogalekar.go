package scale

import (
	"fmt"

	"rmscale/internal/stats"
)

// The paper positions its overhead-based metric against Jogalekar &
// Woodside's throughput-based scalability metric for distributed
// systems (IEEE TPDS 11(6), 2000) — the only prior quantitative-direct
// metric applicable to general distributed systems. This file
// implements the J&W metric over the same measurements so the two can
// be compared side by side, as the paper's related-work section
// discusses.
//
// J&W define productivity at scale k as
//
//	P(k) = lambda(k) * f(k) / C(k)
//
// where lambda is delivered throughput, f is the value of each response
// given its mean response time (1 when instantaneous, decaying past a
// target), and C is the cost of running the configuration. Scalability
// between scales is the productivity ratio psi(k) = P(k)/P(k0); a
// system is scalable while psi stays near or above 1.

// JWParams configures the Jogalekar-Woodside evaluation.
type JWParams struct {
	// TargetResponse is the response time at which a response has
	// lost half its value; the value function is
	// f = 1 / (1 + (T/Target)^2), J&W's suggested form.
	TargetResponse float64
	// Cost returns the cost of operating the configuration at scale
	// k. Nil means cost proportional to k (linear infrastructure).
	Cost func(k int) float64
}

// Validate reports the first bad parameter.
func (p JWParams) Validate() error {
	if p.TargetResponse <= 0 {
		return fmt.Errorf("scale: TargetResponse must be positive, got %v", p.TargetResponse)
	}
	return nil
}

// JWResult is the metric evaluated over one measurement.
type JWResult struct {
	RMS          string
	Ks           []float64
	Productivity []float64
	// Psi is productivity normalized to the base scale: J&W's
	// scalability metric.
	Psi []float64
}

// Scalable reports J&W's reading at index i: the system scaled to
// K[i] is considered scalable when psi stays above the threshold
// (J&W use values near 0.8 in practice).
func (r *JWResult) Scalable(i int, threshold float64) bool {
	if i < 0 || i >= len(r.Psi) {
		return false
	}
	return r.Psi[i] >= threshold
}

// JogalekarWoodside evaluates the J&W productivity metric over a tuned
// measurement, enabling the paper's side-by-side comparison of the two
// scalability formulations.
func JogalekarWoodside(m *Measurement, p JWParams) (*JWResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(m.Points) == 0 {
		return nil, fmt.Errorf("scale: empty measurement")
	}
	cost := p.Cost
	if cost == nil {
		cost = func(k int) float64 { return float64(k) }
	}
	r := &JWResult{RMS: m.RMS, Ks: m.Ks()}
	for _, pt := range m.Points {
		c := cost(pt.K)
		if c <= 0 {
			return nil, fmt.Errorf("scale: non-positive cost %v at k=%d", c, pt.K)
		}
		t := pt.Obs.MeanResponse / p.TargetResponse
		value := 1 / (1 + t*t)
		r.Productivity = append(r.Productivity, pt.Obs.Throughput*value/c)
	}
	r.Psi = stats.Normalize(r.Productivity)
	return r, nil
}

// JWSeries renders psi(k) as a named series for figure assembly.
func (r *JWResult) JWSeries() stats.Series {
	return stats.Series{Name: r.RMS, X: r.Ks, Y: r.Psi}
}
