package scale

import (
	"fmt"

	"rmscale/internal/anneal"
)

// Step 2 of the paper's measurement procedure (the Figure 1 flowchart):
// before the RMS can be tuned, the resource pool itself must be scaled
// along a feasible scaling path — "when scaling the RP, a simulated
// annealing type of search can be used for this search. If a scalable
// RP cannot be found, then the base system is considered unscalable."
// This file implements that search: at each scale factor it finds the
// cheapest assignment of the scaling variables (e.g. node count versus
// per-node service rate) that meets the demand placed on the scaled
// system while keeping efficiency feasible.

// PathVar is one scaling variable the RP search may adjust.
type PathVar struct {
	Name     string
	Min, Max float64
	Integer  bool
	// CostWeight converts the variable's value into infrastructure
	// cost; the search minimizes the weighted sum.
	CostWeight float64
}

// PathEvaluator runs the managed system at scale factor k with the
// given scaling-variable assignment.
type PathEvaluator interface {
	Evaluate(k int, vars []float64) (Observation, error)
}

// PathEvaluatorFunc adapts a function.
type PathEvaluatorFunc func(k int, vars []float64) (Observation, error)

// Evaluate implements PathEvaluator.
func (f PathEvaluatorFunc) Evaluate(k int, vars []float64) (Observation, error) {
	return f(k, vars)
}

// PathSpec configures the scaling-path search.
type PathSpec struct {
	Vars []PathVar
	Ks   []int
	Band Band
	// Demand reports whether the observed system meets the load placed
	// on it at scale k (e.g. throughput at least k times the base).
	Demand func(k int, obs Observation) bool
	Anneal anneal.Options
}

// Validate reports the first specification error.
func (s PathSpec) Validate() error {
	if len(s.Vars) == 0 {
		return fmt.Errorf("scale: no scaling variables")
	}
	for _, v := range s.Vars {
		if v.Max < v.Min {
			return fmt.Errorf("scale: variable %q has Max < Min", v.Name)
		}
		if v.CostWeight < 0 {
			return fmt.Errorf("scale: variable %q has negative cost weight", v.Name)
		}
	}
	if len(s.Ks) == 0 {
		return fmt.Errorf("scale: no scale factors")
	}
	if s.Demand == nil {
		return fmt.Errorf("scale: nil demand predicate")
	}
	return s.Band.Validate()
}

// PathPoint is the chosen configuration at one scale factor.
type PathPoint struct {
	K        int
	Vars     []float64
	Cost     float64
	Obs      Observation
	Feasible bool
}

// Path is the search result: the evolution of the scaling variables
// the paper calls the scaling path.
type Path struct {
	Vars   []PathVar
	Points []PathPoint
}

// Feasible reports whether every point met demand inside the band — the
// flowchart's "scalable RP found" branch.
func (p *Path) Feasible() bool {
	for _, pt := range p.Points {
		if !pt.Feasible {
			return false
		}
	}
	return len(p.Points) > 0
}

// FindScalingPath searches, at each scale factor, for the cheapest
// scaling-variable assignment that meets demand with feasible
// efficiency, warm-starting each factor from the previous one.
func FindScalingPath(ev PathEvaluator, spec PathSpec) (*Path, error) {
	if ev == nil {
		return nil, fmt.Errorf("scale: nil evaluator")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dims := make([]anneal.Dim, len(spec.Vars))
	var start []float64
	for i, v := range spec.Vars {
		dims[i] = anneal.Dim{Name: v.Name, Min: v.Min, Max: v.Max, Integer: v.Integer}
	}
	path := &Path{Vars: spec.Vars}
	for _, k := range spec.Ks {
		k := k
		var evalErr error
		obj := func(x []float64) anneal.Result {
			obs, err := ev.Evaluate(k, x)
			if err != nil {
				evalErr = err
				return anneal.Result{Penalty: 1e18}
			}
			cost := 0.0
			for i, v := range spec.Vars {
				cost += v.CostWeight * x[i]
			}
			feasible := spec.Band.Feasible(obs.Efficiency) && spec.Demand(k, obs)
			pen := spec.Band.Penalty(obs.Efficiency) * 100 * (cost + 1)
			if !spec.Demand(k, obs) {
				pen += cost + 1 // unmet demand dominates any saving
			}
			return anneal.Result{Cost: cost, Penalty: pen, Feasible: feasible, Aux: obs}
		}
		o := spec.Anneal
		o.Seed = spec.Anneal.Seed + int64(k)*104729
		out, err := anneal.Minimize(dims, start, obj, o)
		if err != nil {
			return nil, fmt.Errorf("scale: path search at k=%d: %w", k, err)
		}
		if evalErr != nil {
			return nil, fmt.Errorf("scale: path evaluation at k=%d: %w", k, evalErr)
		}
		cost := 0.0
		for i, v := range spec.Vars {
			cost += v.CostWeight * out.X[i]
		}
		path.Points = append(path.Points, PathPoint{
			K:        k,
			Vars:     out.X,
			Cost:     cost,
			Obs:      out.Result.Aux.(Observation),
			Feasible: out.Result.Feasible,
		})
		start = append([]float64(nil), out.X...)
	}
	return path, nil
}
