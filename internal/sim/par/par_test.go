package par

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"rmscale/internal/sim"
)

func TestNewValidation(t *testing.T) {
	mustPanic(t, "zero shards", func() { New(0, 1, 1) })
	mustPanic(t, "zero lookahead", func() { New(2, 0, 1) })
	mustPanic(t, "negative lookahead", func() { New(2, -1, 1) })
	if w := New(2, 1, 0).Workers(); w != 1 {
		t.Fatalf("workers 0 collapsed to %d, want 1", w)
	}
	if w := New(2, 1, -3).Workers(); w != 1 {
		t.Fatalf("workers -3 collapsed to %d, want 1", w)
	}
	x := New(3, 2.5, 4)
	if x.Shards() != 3 || x.Lookahead() != 2.5 || x.Workers() != 4 {
		t.Fatalf("accessors = (%d, %v, %d), want (3, 2.5, 4)", x.Shards(), x.Lookahead(), x.Workers())
	}
}

func TestLocalSendIsOrdinarySchedule(t *testing.T) {
	x := New(2, 4, 1)
	var at sim.Time = -1
	x.Shard(0).Send(0, 3, func() { at = x.Shard(0).K.Now() })
	if len(x.Shard(0).outbox) != 0 {
		t.Fatalf("local send went to the outbox")
	}
	x.Run(10)
	if at != 3 {
		t.Fatalf("local send fired at %v, want 3", at)
	}
}

func TestCrossSendDeliversAtTimestamp(t *testing.T) {
	x := New(2, 4, 1)
	var at sim.Time = -1
	x.Shard(0).K.Schedule(1, func() {
		x.Shard(0).Send(1, 5, func() { at = x.Shard(1).K.Now() })
	})
	x.Run(10)
	if at != 5 {
		t.Fatalf("cross send fired at %v on shard 1, want 5", at)
	}
	if got := x.Stats().Delivered; got != 1 {
		t.Fatalf("Delivered = %d, want 1", got)
	}
}

func TestSendValidation(t *testing.T) {
	x := New(2, 4, 1)
	mustPanic(t, "bad dst", func() { x.Shard(0).Send(2, 10, func() {}) })
	mustPanic(t, "negative dst", func() { x.Shard(0).Send(-1, 10, func() {}) })
	mustPanic(t, "nil fn", func() { x.Shard(0).Send(1, 10, nil) })
	// At exactly now+lookahead the send is safe; one tick earlier it is not.
	x.Shard(0).Send(1, 4, func() {})
	mustPanic(t, "sub-lookahead send", func() { x.Shard(0).Send(1, 3.5, func() {}) })
}

// TestDeliveryOrderIsCanonical crosses several shards' sends to one
// destination at one timestamp and asserts the arrival order is the
// (time, source, sequence) order regardless of which shard sent first
// in wall-clock terms.
func TestDeliveryOrderIsCanonical(t *testing.T) {
	x := New(4, 4, 1)
	var got []string
	for _, src := range []int{2, 0, 3} {
		src := src
		s := x.Shard(src)
		s.K.Schedule(0, func() {
			// Two sends per source, same arrival time: sequence must break
			// the tie within a source, source ID across sources.
			for n := 0; n < 2; n++ {
				n := n
				s.Send(1, 6, func() { got = append(got, fmt.Sprintf("s%dn%d", src, n)) })
			}
		})
	}
	x.Run(10)
	want := []string{"s0n0", "s0n1", "s2n0", "s2n1", "s3n0", "s3n1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivery order %v, want %v", got, want)
	}
}

func TestRunAdvancesEveryClockToHorizon(t *testing.T) {
	x := New(3, 4, 1)
	x.Shard(0).K.Schedule(1, func() {})
	// Shard 2 has no events at all; its clock must still end at the horizon.
	x.Run(50)
	for i := 0; i < 3; i++ {
		if now := x.Shard(i).K.Now(); now != 50 {
			t.Fatalf("shard %d clock = %v after Run(50), want 50", i, now)
		}
	}
}

func TestMessageBeyondHorizonStaysPending(t *testing.T) {
	x := New(2, 4, 1)
	var fired bool
	x.Shard(0).K.Schedule(1, func() {
		x.Shard(0).Send(1, 20, func() { fired = true })
	})
	x.Run(10)
	if fired {
		t.Fatalf("message for t=20 fired inside Run(10)")
	}
	if len(x.pending) != 1 {
		t.Fatalf("pending = %d after Run(10), want 1", len(x.pending))
	}
	x.Run(30)
	if !fired {
		t.Fatalf("pending message not delivered by the second Run")
	}
}

func TestEventAtExactHorizonRuns(t *testing.T) {
	// The serial kernel's Run(until) is inclusive of until; the windowed
	// executor must match it at the final window.
	x := New(2, 4, 1)
	var fired bool
	x.Shard(1).K.Schedule(10, func() { fired = true })
	x.Run(10)
	if !fired {
		t.Fatalf("event at the exact horizon did not run")
	}
}

func TestWindowCountAndStats(t *testing.T) {
	x := New(2, 5, 1)
	for i := 0; i < 4; i++ {
		at := sim.Time(i * 10)
		x.Shard(0).K.Schedule(at, func() {})
	}
	x.Run(100)
	// Events at 0,10,20,30 with lookahead 5: each is alone in its window.
	if got := x.Stats().Windows; got != 4 {
		t.Fatalf("Windows = %d, want 4", got)
	}
}

func TestPanicPropagatesWithShardIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		x := New(4, 4, workers)
		x.Shard(2).K.Schedule(1, func() { panic("model bug") })
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: shard panic did not propagate", workers)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "shard 2") || !strings.Contains(msg, "model bug") {
					t.Fatalf("workers=%d: panic %q does not identify shard 2 and the cause", workers, msg)
				}
			}()
			x.Run(10)
		}()
	}
}

func TestPanicChoosesLowestShardDeterministically(t *testing.T) {
	// With several shards panicking in one window the coordinator must
	// re-raise the lowest shard index, whatever the worker interleaving.
	for rep := 0; rep < 20; rep++ {
		x := New(8, 4, 8)
		for _, id := range []int{6, 1, 3} {
			id := id
			x.Shard(id).K.Schedule(1, func() { panic(fmt.Sprintf("boom %d", id)) })
		}
		func() {
			defer func() {
				msg := fmt.Sprint(recover())
				if !strings.Contains(msg, "shard 1") || !strings.Contains(msg, "boom 1") {
					t.Fatalf("rep %d: coordinator re-raised %q, want shard 1", rep, msg)
				}
			}()
			x.Run(10)
		}()
	}
}

func TestKernelErrSurfacesAsPanic(t *testing.T) {
	x := New(2, 4, 1)
	x.Shard(1).K.StallEvents = 8
	x.Shard(1).K.Schedule(1, func() {
		var spin func()
		spin = func() { x.Shard(1).K.After(0, spin) }
		spin()
	})
	defer func() {
		msg := fmt.Sprint(recover())
		if !strings.Contains(msg, "shard 1") || !strings.Contains(msg, "no progress") {
			t.Fatalf("kernel watchdog surfaced as %q", msg)
		}
	}()
	x.Run(10)
}

// TestLookaheadNeverAdmitsUnsafeEvent is the safety property test: for
// random shard counts, lookaheads, horizons and send patterns, every
// cross-shard delivery must land at or after the destination clock —
// the destination kernel itself panics on a past schedule, and this
// test additionally checks the window invariant directly.
func TestLookaheadNeverAdmitsUnsafeEvent(t *testing.T) {
	prop := func(shardSeed uint64, laSeed uint64, sendSeed uint64) bool {
		n := int(2 + shardSeed%6)
		la := sim.Time(1+laSeed%7) / 2
		x := New(n, la, 1)
		rng := sendSeed | 1
		for i := 0; i < n; i++ {
			i := i
			s := x.Shard(i)
			var pump func()
			pump = func() {
				rng = rng*6364136223846793005 + 1442695040888963407
				dst := int(rng>>33) % n
				if dst < 0 {
					dst = -dst
				}
				// Send exactly at the lookahead bound — the tightest legal
				// timestamp, and the one most likely to expose an off-by-one
				// in the window math.
				at := s.K.Now() + la
				s.Send(dst, at, func() {
					if x.Shard(dst).K.Now() > at {
						t.Fatalf("delivery at %v landed in shard %d's past (now %v)", at, dst, x.Shard(dst).K.Now())
					}
				})
				if s.K.Now()+1 <= 40 {
					s.K.After(1, pump)
				}
			}
			s.K.Schedule(sim.Time(i)/2, pump)
		}
		x.Run(40)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}
