package stats

import (
	"bytes"
	"strings"
	"testing"
)

func sampleSet() *SeriesSet {
	ss := &SeriesSet{Title: "Figure X", XLabel: "k", YLabel: "g(k)"}
	ss.Add(Series{Name: "CENTRAL", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}})
	ss.Add(Series{Name: "LOWEST", X: []float64{1, 2, 3}, Y: []float64{1, 1.5, 2}})
	return ss
}

func TestSeriesAppendAndLen(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 || s.X[1] != 2 || s.Y[1] != 20 {
		t.Fatalf("unexpected series state: %+v", s)
	}
}

func TestSeriesNormalized(t *testing.T) {
	s := Series{Name: "m", X: []float64{1, 2}, Y: []float64{5, 15}}
	n := s.Normalized()
	if n.Y[0] != 1 || n.Y[1] != 3 {
		t.Fatalf("Normalized Y = %v", n.Y)
	}
	if s.Y[0] != 5 {
		t.Fatal("Normalized mutated the original")
	}
}

func TestSeriesSlopes(t *testing.T) {
	s := Series{X: []float64{1, 2, 3}, Y: []float64{0, 2, 6}}
	sl := s.Slopes()
	if len(sl) != 2 || sl[0] != 2 || sl[1] != 4 {
		t.Fatalf("Slopes = %v", sl)
	}
}

func TestSeriesSetGetAndNames(t *testing.T) {
	ss := sampleSet()
	if ss.Get("CENTRAL") == nil || ss.Get("nope") != nil {
		t.Fatal("Get misbehaved")
	}
	names := ss.Names()
	if len(names) != 2 || names[0] != "CENTRAL" || names[1] != "LOWEST" {
		t.Fatalf("Names = %v", names)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSet().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure X", "CENTRAL", "LOWEST", "k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 rows
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestWriteTableEmpty(t *testing.T) {
	var buf bytes.Buffer
	ss := &SeriesSet{Title: "empty"}
	if err := ss.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no series") {
		t.Fatalf("empty table output: %q", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSet().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "k,CENTRAL,LOWEST" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "1,1,1" {
		t.Fatalf("CSV row = %q", lines[1])
	}
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4", len(lines))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ss := sampleSet()
	if err := ss.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesSetJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != ss.Title || len(got.Series) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Series[0].Y[2] != 9 {
		t.Fatalf("round trip Y = %v", got.Series[0].Y)
	}
}

func TestReadSeriesSetJSONError(t *testing.T) {
	if _, err := ReadSeriesSetJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestRankByFinalY(t *testing.T) {
	ss := sampleSet()
	ss.Add(Series{Name: "EMPTY"})
	rank := ss.RankByFinalY()
	if len(rank) != 2 || rank[0] != "LOWEST" || rank[1] != "CENTRAL" {
		t.Fatalf("RankByFinalY = %v", rank)
	}
}
