package experiments

import (
	"os"
	"strings"
	"testing"

	"rmscale/internal/scale"
)

// TestProbeQuickCase runs one case at Quick fidelity and prints the
// figure, for calibration inspection. Enabled only via RMSCALE_PROBE so
// normal test runs stay fast: RMSCALE_PROBE=1|2|3|4 selects the case.
func TestProbeQuickCase(t *testing.T) {
	which := os.Getenv("RMSCALE_PROBE")
	if which == "" {
		t.Skip("set RMSCALE_PROBE=<case> to run the calibration probe")
	}
	runs := map[string]func(Fidelity, int64, func(string, scale.Point)) (*Result, error){
		"1": RunCase1, "2": RunCase2, "3": RunCase3, "4": RunCase4,
	}
	run, ok := runs[which]
	if !ok {
		t.Fatalf("RMSCALE_PROBE=%q invalid", which)
	}
	r, err := run(Quick, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := r.Figure().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
	if which == "3" {
		buf.Reset()
		if err := r.ThroughputFigure().WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", buf.String())
		buf.Reset()
		if err := r.ResponseFigure().WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", buf.String())
	}
	for name, m := range r.Measurements {
		var feas []bool
		var effs []float64
		for _, p := range m.Points {
			feas = append(feas, p.Feasible)
			effs = append(effs, p.Obs.Efficiency)
		}
		t.Logf("%-8s feasible=%v eff=%.3v", name, feas, effs)
	}
}
