package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rmscale"
)

func TestTablesCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"tables"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T_CPU", "Table 2", "Table 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables output missing %q", want)
		}
	}
}

func TestCase1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "case1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "CENTRAL", "LOWEST", "most to least scalable"} {
		if !strings.Contains(out, want) {
			t.Fatalf("case1 output missing %q:\n%s", want, out)
		}
	}
}

func TestCase3EmitsThreeFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "case3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "Throughput", "response"} {
		if !strings.Contains(out, want) {
			t.Fatalf("case3 output missing %q", want)
		}
	}
}

func TestCSVFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "-format", "csv", "case2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k,CENTRAL,LOWEST") {
		t.Fatalf("CSV header missing:\n%s", buf.String())
	}
}

func TestJSONFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "-format", "json", "case4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"series\"") {
		t.Fatal("JSON output missing series")
	}
}

func TestAblationCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "ablation"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"suppression", "estimator", "middleware", "anneal", "grid"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("missing command accepted")
	}
	if err := run([]string{"frobnicate"}, &buf); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"-fidelity", "bogus", "case1"}, &buf); err == nil {
		t.Error("bad fidelity accepted")
	}
	if err := run([]string{"-format", "bogus", "-fidelity", "smoke", "case1"}, &buf); err == nil {
		t.Error("bad format accepted")
	}
}

func TestSaveFigure(t *testing.T) {
	dir := t.TempDir()
	ss := &rmscale.SeriesSet{Title: "Figure 9: Test / Case (x)", XLabel: "k"}
	ss.Add(rmscale.Series{Name: "m", X: []float64{1}, Y: []float64{2}})
	if err := saveFigure(dir, ss); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure-9-test-case-x.csv", "figure-9-test-case-x.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

func TestChartFormatSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "-format", "chart", "case4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend:") {
		t.Fatal("chart output missing legend")
	}
}

func TestWorkerAndResumeFlagParsing(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-j", "-1", "-fidelity", "smoke", "case4"}, &buf); err == nil {
		t.Error("negative -j accepted")
	}
	if err := run([]string{"-j", "bogus", "-fidelity", "smoke", "case4"}, &buf); err == nil {
		t.Error("non-numeric -j accepted")
	}
	if err := run([]string{"-par-workers", "-1", "-fidelity", "smoke", "case4"}, &buf); err == nil {
		t.Error("negative -par-workers accepted")
	}
	// -j and -resume parse and thread through on the tables command
	// path too (they are simply unused there).
	if err := run([]string{"-j", "2", "-resume", t.TempDir(), "tables"}, &buf); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenFaultFreeOutput pins the smoke output of case 1 and case 4
// against goldens captured before the fault-tolerance layer existed:
// with a zero-valued FaultModel the experiment tables must stay
// byte-identical — the fault machinery may only change runs that
// actually arm it.
func TestGoldenFaultFreeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	for _, c := range []string{"case1", "case4"} {
		c := c
		t.Run(c, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", c+"_smoke_seed1.golden"))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := run([]string{"-fidelity", "smoke", "-seed", "1", "-format", "csv", c}, &buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("fault-free %s output diverged from the pre-fault golden:\n--- got ---\n%s\n--- want ---\n%s",
					c, buf.Bytes(), want)
			}
		})
	}
}

// TestChurnCommand runs the degraded-mode experiment at smoke fidelity
// and checks the churn table renders a row for all seven models.
func TestChurnCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run is slow (two full case runs)")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "-faults", "case4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Scalability under churn") {
		t.Fatalf("churn output missing title:\n%s", out)
	}
	for _, model := range rmscale.ModelNames() {
		if !strings.Contains(out, model+"*") {
			t.Errorf("churn psi figure missing degraded series for %s", model)
		}
	}
	if !strings.Contains(out, "psi*(k)") || !strings.Contains(out, "retry*") {
		t.Fatalf("churn comparison table missing:\n%s", out)
	}
}

// TestFaultFlagValidation: the gridsim-parity fault knobs only make
// sense as extensions of the degraded-mode fault load.
func TestFaultFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mtbf", "500", "tables"}, &buf); err == nil {
		t.Error("-mtbf without -faults accepted")
	}
	if err := run([]string{"-loss", "0.1", "tables"}, &buf); err == nil {
		t.Error("-loss without -faults accepted")
	}
}

// TestSmokeResume runs a case into a checkpoint directory, then reruns
// with -resume and checks the second pass adopts the journal and emits
// byte-identical output.
func TestSmokeResume(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	dir := t.TempDir()
	var first bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "-j", "2", "-resume", dir, "case4"}, &first); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"journal.jsonl", "runstate.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("checkpoint artifact missing: %v", err)
		}
	}
	var second bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "-j", "2", "-resume", dir, "case4"}, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("resumed output differs:\n--- first ---\n%s\n--- second ---\n%s", &first, &second)
	}
	// Resuming under different parameters must refuse.
	var third bytes.Buffer
	if err := run([]string{"-fidelity", "smoke", "-seed", "2", "-resume", dir, "case4"}, &third); err == nil {
		t.Error("resume with a different seed accepted")
	}
}
