// Package experiments reproduces the paper's evaluation: the four
// scaling cases of Tables 2-5 and the six result figures.
//
//	Case 1 (Table 2, Figure 2): scale the RP by network size.
//	Case 2 (Table 3, Figure 3): scale the RP by resource service rate.
//	Case 3 (Table 4, Figures 4, 6, 7): scale the RMS by status
//	        estimator count.
//	Case 4 (Table 5, Figure 5): scale the RMS by L_p, the number of
//	        neighbour schedulers probed.
//
// In every case the workload scales in the same proportion as the
// scaling variable, the efficiency band is the paper's [0.38, 0.42],
// and a simulated annealing search re-tunes the case's scaling enablers
// at each scale factor to minimize the RMS overhead G(k).
package experiments

import (
	"context"
	"fmt"

	"rmscale/internal/anneal"
	"rmscale/internal/audit"
	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/runner"
	"rmscale/internal/scale"
	"rmscale/internal/stats"
)

// Fidelity trades runtime for statistical quality.
type Fidelity int

const (
	// Smoke is for unit tests: tiny grid, three scale factors.
	Smoke Fidelity = iota
	// Quick produces recognizable curves in minutes on one core.
	Quick
	// Full is the paper-shaped configuration (1000-node cases).
	Full
)

// String names the fidelity level.
func (f Fidelity) String() string {
	switch f {
	case Smoke:
		return "smoke"
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("fidelity(%d)", int(f))
	}
}

// ParseFidelity converts a CLI string.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("experiments: unknown fidelity %q (want smoke, quick or full)", s)
}

// tuning returns the annealing budget per fidelity.
func (f Fidelity) tuning() anneal.Options {
	switch f {
	case Smoke:
		return anneal.Options{Iters: 5, Restarts: 1}
	case Quick:
		return anneal.Options{Iters: 16, Restarts: 1}
	default:
		return anneal.Options{Iters: 24, Restarts: 1}
	}
}

// replicas returns how many independent seeds each evaluation averages
// over; replication smooths the tuner's objective surface.
func (f Fidelity) replicas() int {
	switch f {
	case Smoke:
		return 1
	case Quick:
		return 2
	default:
		return 2
	}
}

// ks returns the scale factors per fidelity.
func (f Fidelity) ks() []int {
	if f == Smoke {
		return []int{1, 2, 3}
	}
	return []int{1, 2, 3, 4, 5, 6}
}

// Result is the outcome of one case for every model.
type Result struct {
	Case     int
	Title    string
	Variant  string // "" for the plain case; "churn" under the fault load
	Fidelity Fidelity
	// Measurements maps model name to its tuned G(k) measurement.
	Measurements map[string]*scale.Measurement
	// Order lists model names in the paper's order.
	Order []string
}

// Figure assembles the case's raw overhead curves (the paper's
// "Variation in G(k)" figures).
func (r *Result) Figure() *stats.SeriesSet {
	ss := &stats.SeriesSet{Title: r.Title, XLabel: "k", YLabel: "G(k)"}
	for _, name := range r.Order {
		if m, ok := r.Measurements[name]; ok {
			ss.Add(m.Series())
		}
	}
	return ss
}

// NormalizedFigure assembles g(k) = G(k)/G(1) curves, which compare
// growth factors independent of each model's base overhead.
func (r *Result) NormalizedFigure() *stats.SeriesSet {
	ss := &stats.SeriesSet{
		Title:  r.Title + " (normalized)",
		XLabel: "k", YLabel: "g(k) = G(k)/G(1)",
	}
	for _, name := range r.Order {
		if m, ok := r.Measurements[name]; ok {
			ss.Add(m.NormalizedSeries())
		}
	}
	return ss
}

// ThroughputFigure assembles throughput curves (Figure 6 for Case 3).
func (r *Result) ThroughputFigure() *stats.SeriesSet {
	ss := &stats.SeriesSet{
		Title:  fmt.Sprintf("Throughput, case %d", r.Case),
		XLabel: "k", YLabel: "jobs completed per time unit",
	}
	for _, name := range r.Order {
		if m, ok := r.Measurements[name]; ok {
			ss.Add(stats.Series{Name: name, X: m.Ks(), Y: m.Throughputs()})
		}
	}
	return ss
}

// ResponseFigure assembles mean response time curves (Figure 7).
func (r *Result) ResponseFigure() *stats.SeriesSet {
	ss := &stats.SeriesSet{
		Title:  fmt.Sprintf("Average response time, case %d", r.Case),
		XLabel: "k", YLabel: "mean response time",
	}
	for _, name := range r.Order {
		if m, ok := r.Measurements[name]; ok {
			ss.Add(stats.Series{Name: name, X: m.Ks(), Y: m.ResponseTimes()})
		}
	}
	return ss
}

// caseDef describes one scaling case: how to build the grid config at a
// scale factor and which enablers the tuner may adjust (the case's
// Table).
type caseDef struct {
	id       int
	title    string
	enablers []scale.Enabler
	// variant distinguishes re-runs of the same case under modified
	// conditions (e.g. "churn" for the degraded-mode experiment). It is
	// folded into journal IDs and cache scopes only when non-empty, so
	// plain cases keep their original journal format.
	variant string
	// config builds the grid configuration at scale k with the
	// enablers applied.
	config func(fid Fidelity, seed int64, k int, x []float64) grid.Config
}

// name labels the case definition in runner task IDs.
func (d caseDef) name() string {
	if d.variant == "" {
		return fmt.Sprintf("case%d", d.id)
	}
	return fmt.Sprintf("case%d+%s", d.id, d.variant)
}

// simResult is the cached outcome of one engine run: the summary plus
// the event-budget flag the evaluator checks. It is the payload stored
// under the runner's content-addressed key.
type simResult struct {
	Sum        grid.Summary
	Overflowed bool
}

// simulate runs one engine for cfg under the model p, memoized through
// the run's content-addressed cache: the key is a canonical hash of
// (fidelity, model, full grid config), and the config embeds the seed
// and the applied enabler vector, so a cache hit is exactly a re-run.
func simulate(run *runner.Run, substrates *grid.SubstrateCache, fid Fidelity,
	par int, p grid.Policy, cfg grid.Config) (simResult, error) {

	key, err := runner.KeyOf("sim/v1", fid.String(), p.Name(), cfg)
	if err != nil {
		return simResult{}, err
	}
	if b, ok := run.Cache.Get(key); ok {
		var sr simResult
		if err := decodeCached(b, &sr); err == nil {
			return sr, nil
		}
		// A corrupt payload falls through to recompute and overwrite.
	}
	// The substrate cache key uses the post-collapse spec, so apply
	// the engine's collapse rule before the lookup.
	lookup := cfg
	if p.Central() {
		lookup.Spec.ClusterSize = lookup.Spec.Clusters * lookup.Spec.ClusterSize
		lookup.Spec.Clusters = 1
		lookup.Workload.Clusters = 1
	}
	sub, err := substrates.Get(lookup)
	if err != nil {
		return simResult{}, err
	}
	fresh, err := rms.ByName(p.Name()) // engines are single-use; state must be fresh
	if err != nil {
		return simResult{}, err
	}
	e, err := grid.NewWith(cfg, fresh, sub)
	if err != nil {
		return simResult{}, err
	}
	// Every experiment run self-checks its conservation laws; a
	// violated invariant is an error, never a silently wrong data
	// point, and it is detected before the result can enter the cache.
	aud, err := audit.Attach(e, audit.Config{Mode: audit.Record})
	if err != nil {
		return simResult{}, err
	}
	// RunPar consults the engine's partition plan and uses in-run
	// parallelism only where it is provably byte-identical to the
	// serial kernel — which is why par is absent from the cache key: a
	// cached serial result answers a parallel request exactly.
	sr := simResult{Sum: e.RunPar(par), Overflowed: e.K.Overflowed}
	if e.K.Stalled {
		return simResult{}, e.K.Err()
	}
	if err := aud.Err(); err != nil {
		return simResult{}, err
	}
	if b, err := encodeCached(sr); err == nil {
		if err := run.Cache.Put(key, b); err != nil {
			return simResult{}, err
		}
	}
	return sr, nil
}

// measureModel runs the scalability measurement procedure for a single
// model over the case definition: the per-(model, k) tuning chain that
// is one job of the runner's pool. Completed points are journaled as
// they land, and journaled points from an interrupted prior run are
// adopted without re-tuning.
func measureModel(ctx context.Context, run *runner.Run, def caseDef, fid Fidelity,
	seed int64, par int, p grid.Policy, substrates *grid.SubstrateCache,
	progress func(string, scale.Point)) (*scale.Measurement, error) {

	name := p.Name()
	replicas := fid.replicas()
	ev := scale.EvaluatorFunc(func(k int, x []float64) (scale.Observation, error) {
		if err := ctx.Err(); err != nil {
			return scale.Observation{}, err
		}
		var acc scale.Observation
		for r := 0; r < replicas; r++ {
			cfg := def.config(fid, seed+int64(r)*101, k, x)
			sr, err := simulate(run, substrates, fid, par, p, cfg)
			if err != nil {
				return scale.Observation{}, err
			}
			sum := sr.Sum
			if sr.Overflowed {
				return scale.Observation{}, fmt.Errorf("event budget exceeded at k=%d", k)
			}
			acc.F += sum.F
			acc.G += sum.G
			acc.H += sum.H
			acc.Throughput += sum.Throughput
			acc.MeanResponse += sum.MeanResponse
			acc.SuccessRate += sum.SuccessRate
			acc.JobsLost += float64(sum.JobsLost)
			acc.Crashes += float64(sum.Crashes)
			acc.MsgsLost += float64(sum.MsgsLost)
			acc.Retries += float64(sum.Retries)
			acc.Failovers += float64(sum.Failovers)
			// A node is saturated when its busy fraction pins at 1 or
			// its work queue built a backlog long enough to matter
			// against job deadlines (runtimes are hundreds of units).
			if sum.MaxSchedulerUtil > 0.98 || sum.MaxSchedDelay > 25 {
				acc.Saturated = true
			}
		}
		n := float64(replicas)
		acc.F /= n
		acc.G /= n
		acc.H /= n
		acc.Throughput /= n
		acc.MeanResponse /= n
		acc.SuccessRate /= n
		acc.JobsLost /= n
		acc.Crashes /= n
		acc.MsgsLost /= n
		acc.Retries /= n
		acc.Failovers /= n
		// Efficiency from the averaged accounting terms, not the
		// average of ratios.
		if total := acc.F + acc.G + acc.H; total > 0 {
			acc.Efficiency = acc.F / total
		}
		return acc, nil
	})

	opts := fid.tuning()
	opts.Seed = seed
	spec := scale.MeasureSpec{
		RMS:       name,
		Ks:        fid.ks(),
		Enablers:  def.enablers,
		Band:      scale.PaperBand(),
		Anneal:    opts,
		WarmStart: true,
	}
	jid := func(k int) string { return pointID(def, name, k) }
	spec.EvalCache = func(k int) anneal.EvalCache {
		scope := fmt.Sprintf("case=%d|fid=%s|seed=%d|rms=%s|k=%d", def.id, fid, seed, name, k)
		if def.variant != "" {
			scope += "|variant=" + def.variant
		}
		return &annealCache{cache: run.Cache, scope: scope}
	}

	// Adopt the journaled prefix of the k-chain, if any.
	var journalErr error
	if run.Journal != nil {
		for _, k := range spec.Ks {
			var pt scale.Point
			ok, err := run.Journal.Lookup(jid(k), &pt)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			spec.Resume = append(spec.Resume, pt)
		}
		if len(spec.Resume) == len(spec.Ks) {
			run.Report.JobResumed()
		}
	}
	spec.Progress = func(pt scale.Point) {
		if run.Journal != nil {
			if err := run.Journal.Record(jid(pt.K), pt); err != nil && journalErr == nil {
				journalErr = err
			}
		}
		run.Report.PointDone()
		if progress != nil {
			progress(name, pt)
		}
	}

	m, err := scale.Measure(ev, spec)
	if err != nil {
		return nil, err
	}
	if journalErr != nil {
		return nil, journalErr
	}
	return m, nil
}

// pointID is the journal ID of one completed (case, model, k) point.
// Variant-tagged definitions journal under a distinct prefix; plain
// cases keep the original format, so old journals still resume.
func pointID(def caseDef, rms string, k int) string {
	return fmt.Sprintf("%s/%s/k=%d", def.name(), rms, k)
}
