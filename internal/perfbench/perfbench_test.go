package perfbench

import (
	"bytes"
	"strings"
	"testing"
)

func report(ms ...Metric) Report {
	return Report{Go: "gotest", Seed: 1, Metrics: ms}
}

func TestCompareExactGate(t *testing.T) {
	base := report(Metric{Name: "engine/X/events", Value: 1000, Unit: "events", Gate: GateExact})
	if bad := Compare(base, base, 0.1); len(bad) != 0 {
		t.Fatalf("identical reports flagged: %v", bad)
	}
	cur := report(Metric{Name: "engine/X/events", Value: 1001, Unit: "events", Gate: GateExact})
	bad := Compare(base, cur, 0.1)
	if len(bad) != 1 || !strings.Contains(bad[0], "engine/X/events") {
		t.Fatalf("exact drift not flagged: %v", bad)
	}
}

func TestCompareMaxGate(t *testing.T) {
	base := report(Metric{Name: "kernel/steady/allocs_per_event", Value: 10, Unit: "allocs", Gate: GateMax})
	within := report(Metric{Name: "kernel/steady/allocs_per_event", Value: 10.9, Unit: "allocs", Gate: GateMax})
	if bad := Compare(base, within, 0.1); len(bad) != 0 {
		t.Fatalf("within-tolerance value flagged: %v", bad)
	}
	// Improvement never fails the gate.
	better := report(Metric{Name: "kernel/steady/allocs_per_event", Value: 0, Unit: "allocs", Gate: GateMax})
	if bad := Compare(base, better, 0.1); len(bad) != 0 {
		t.Fatalf("improvement flagged: %v", bad)
	}
	worse := report(Metric{Name: "kernel/steady/allocs_per_event", Value: 11.5, Unit: "allocs", Gate: GateMax})
	if bad := Compare(base, worse, 0.1); len(bad) != 1 {
		t.Fatalf("regression not flagged: %v", bad)
	}
}

func TestCompareMinGate(t *testing.T) {
	base := report(Metric{Name: "sim/par/speedup_4w", Value: 1.5, Unit: "x", Gate: GateMin})
	within := report(Metric{Name: "sim/par/speedup_4w", Value: 1.36, Unit: "x", Gate: GateMin})
	if bad := Compare(base, within, 0.1); len(bad) != 0 {
		t.Fatalf("within-tolerance value flagged: %v", bad)
	}
	// Improvement never fails the gate.
	better := report(Metric{Name: "sim/par/speedup_4w", Value: 3.9, Unit: "x", Gate: GateMin})
	if bad := Compare(base, better, 0.1); len(bad) != 0 {
		t.Fatalf("improvement flagged: %v", bad)
	}
	worse := report(Metric{Name: "sim/par/speedup_4w", Value: 1.2, Unit: "x", Gate: GateMin})
	bad := Compare(base, worse, 0.1)
	if len(bad) != 1 || !strings.Contains(bad[0], "falls below") {
		t.Fatalf("speedup regression not flagged: %v", bad)
	}
}

func TestCompareIgnoresTimeMetrics(t *testing.T) {
	base := report(Metric{Name: "kernel/steady/ns_per_event", Value: 100, Unit: "ns", Gate: GateNone})
	cur := report(Metric{Name: "kernel/steady/ns_per_event", Value: 10000, Unit: "ns", Gate: GateNone})
	if bad := Compare(base, cur, 0.1); len(bad) != 0 {
		t.Fatalf("ungated metric flagged: %v", bad)
	}
}

func TestCompareMissingGatedMetric(t *testing.T) {
	base := report(Metric{Name: "engine/X/events", Value: 1000, Unit: "events", Gate: GateExact})
	if bad := Compare(base, report(), 0.1); len(bad) != 1 {
		t.Fatalf("missing gated metric not flagged: %v", bad)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := report(
		Metric{Name: "b", Value: 2.5, Unit: "allocs", Gate: GateMax},
		Metric{Name: "a", Value: 3, Unit: "events", Gate: GateExact},
	)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Go != r.Go || got.Seed != r.Seed || len(got.Metrics) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Metrics[0] != r.Metrics[0] || got.Metrics[1] != r.Metrics[1] {
		t.Fatalf("metrics mismatch: %+v", got.Metrics)
	}
	if bad := Compare(r, got, 0); len(bad) != 0 {
		t.Fatalf("round-tripped report fails its own gate: %v", bad)
	}
}

// TestHarnessSmoke runs the real harness once in -short-skipped mode:
// it is the integration check that every metric the baseline gates on
// is still produced.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runs kernel benchmarks; skipped in -short")
	}
	rep, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"kernel/steady/allocs_per_event",
		"kernel/cancel/allocs_per_event",
		"kernel/ticker/allocs_per_event",
		"engine/CENTRAL/events",
		"engine/LOWEST/allocs_per_event",
		"service/loadgen/executions",
		"service/loadgen/dedup_hits",
		"service/dedup_hit/allocs",
		"sim/par/events",
		"sim/par/fingerprint48",
		"sim/par/speedup_4w",
	}
	have := make(map[string]bool, len(rep.Metrics))
	for _, m := range rep.Metrics {
		have[m.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("harness report missing metric %s", name)
		}
	}
	if bad := Compare(rep, rep, 0); len(bad) != 0 {
		t.Errorf("report fails self-comparison: %v", bad)
	}
}
