package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"rmscale/internal/anneal"
	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/runner"
	"rmscale/internal/scale"
)

// RunSpec configures experiment execution through the runner
// subsystem. The zero values of the execution fields reproduce the
// legacy behaviour: GOMAXPROCS workers, in-memory caching only, no
// checkpointing.
type RunSpec struct {
	// Fidelity selects the runtime budget.
	Fidelity Fidelity
	// Seed is the master random seed; results are deterministic in it
	// regardless of Workers or cache warmth.
	Seed int64
	// Workers sizes the work-stealing pool; <= 0 picks GOMAXPROCS.
	Workers int
	// ParWorkers caps in-run parallelism: each simulation consults its
	// engine's partition plan and runs event windows on up to this many
	// workers wherever the plan proves that byte-identical to serial
	// execution (grid.Engine.RunPar). 0 or 1 means serial in-run
	// execution. The knob composes with Workers — Workers spreads
	// independent simulations across the pool, ParWorkers spreads one
	// simulation's partitions — and, because results are identical by
	// contract, it is an execution field: absent from the journal
	// fingerprint and the cache keys.
	ParWorkers int
	// Dir, when non-empty, is the run directory: completed (model, k)
	// points are journaled there, simulation results are cached on
	// disk, runstate.json tracks progress, and a rerun with the same
	// Fidelity and Seed resumes from whatever the journal holds.
	Dir string
	// Progress, when non-nil, receives each tuned (model, point) as it
	// lands (including points adopted from a resumed journal).
	Progress func(string, scale.Point)
	// Log, when non-nil, receives the runner's per-job progress lines.
	Log io.Writer
	// Context cancels the run early; nil means Background.
	Context context.Context
}

// fingerprint identifies the run parameters a journal is only allowed
// to resume into.
func (s RunSpec) fingerprint() string {
	return fmt.Sprintf("rmscale/v1 fid=%s seed=%d", s.Fidelity, s.Seed)
}

// Validate reports the first nonsensical execution parameter. Every
// Run*Spec entry point validates up front, so a bad spec fails before
// any journal or cache state is touched. Every message carries the
// offending value and the spec it came from, so a rejected spec can be
// fixed from the error alone.
func (s RunSpec) Validate() error {
	switch s.Fidelity {
	case Smoke, Quick, Full:
	default:
		return fmt.Errorf("experiments: %s: fidelity %d is not one of %s (%d), %s (%d) or %s (%d)",
			s, int(s.Fidelity), Smoke, int(Smoke), Quick, int(Quick), Full, int(Full))
	}
	if s.Workers < 0 {
		return fmt.Errorf("experiments: %s: Workers %d is negative; use 0 for GOMAXPROCS", s, s.Workers)
	}
	if s.ParWorkers < 0 {
		return fmt.Errorf("experiments: %s: ParWorkers %d is negative; use 0 or 1 for serial in-run execution", s, s.ParWorkers)
	}
	if s.Seed < 0 {
		return fmt.Errorf("experiments: %s: Seed %d is negative; seeds are non-negative so journal fingerprints stay canonical", s, s.Seed)
	}
	return nil
}

// String renders the spec's identity fields — the ones that feed the
// journal fingerprint and the simulation cache keys — in declaration
// order. It is the human-readable twin of fingerprint(), for log lines
// and hash-mismatch diagnostics; execution-only fields (Workers, Dir,
// callbacks) are deliberately absent, exactly as they are absent from
// the fingerprint.
func (s RunSpec) String() string {
	return fmt.Sprintf("runspec{fidelity=%s seed=%d}", s.Fidelity, s.Seed)
}

// caseByID maps a case number to its definition.
func caseByID(id int, fid Fidelity) (caseDef, error) {
	switch id {
	case 1:
		return Case1(fid), nil
	case 2:
		return Case2(fid), nil
	case 3:
		return Case3(fid), nil
	case 4:
		return Case4(fid), nil
	}
	return caseDef{}, fmt.Errorf("experiments: unknown case %d", id)
}

// RunCaseSpec executes one experiment case under the spec.
func RunCaseSpec(id int, spec RunSpec) (*Result, error) {
	rs, err := RunCasesSpec([]int{id}, spec)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunAllSpec executes all four cases in one runner pool, so the cases'
// 4 x 7 model jobs shard across the workers together instead of
// draining case by case.
func RunAllSpec(spec RunSpec) ([]*Result, error) {
	return RunCasesSpec([]int{1, 2, 3, 4}, spec)
}

// RunCasesSpec executes the given cases on a shared work-stealing
// pool. Each case submits one parent task that spawns a tuning task
// per RMS model onto the submitting worker's deque; sibling workers
// steal the models as they go idle.
func RunCasesSpec(ids []int, spec RunSpec) ([]*Result, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("experiments: no cases given")
	}
	seen := make(map[int]bool, len(ids))
	defs := make([]caseDef, len(ids))
	for i, id := range ids {
		if seen[id] {
			// Duplicate IDs would share journal point IDs and silently
			// overwrite each other's results.
			return nil, fmt.Errorf("experiments: duplicate case %d", id)
		}
		seen[id] = true
		def, err := caseByID(id, spec.Fidelity)
		if err != nil {
			return nil, err
		}
		defs[i] = def
	}
	return runDefs(defs, spec)
}

// runDefs executes arbitrary case definitions (including variant-tagged
// ones, as the churn experiment submits) on one shared pool.
func runDefs(defs []caseDef, spec RunSpec) ([]*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	run, err := runner.Start(runner.Options{
		Workers:     spec.Workers,
		Dir:         spec.Dir,
		Fingerprint: spec.fingerprint(),
		Log:         spec.Log,
		Context:     spec.Context,
		// One bad (model, k) point must not void a long sweep: the
		// remaining models finish (and journal, when Dir is set) and the
		// failure comes back joined from Wait.
		KeepGoing: true,
	})
	if err != nil {
		return nil, err
	}

	models := rms.All()
	run.Report.AddTotal(len(defs) * (1 + len(models)))
	results := make([]*Result, len(defs))
	var mu sync.Mutex
	for i, def := range defs {
		i, def := i, def
		results[i] = &Result{
			Case:         def.id,
			Title:        def.title,
			Variant:      def.variant,
			Fidelity:     spec.Fidelity,
			Measurements: make(map[string]*scale.Measurement),
			Order:        rms.Names(),
		}
		// One substrate cache per case: models at the same (k, x)
		// share the expensive topology+routing build.
		substrates := grid.NewSubstrateCache()
		run.Pool.Submit(runner.Task{
			ID: def.name(),
			Run: func(tc *runner.TaskCtx) error {
				for _, p := range rms.All() {
					p := p
					tc.Spawn(runner.Task{
						ID: fmt.Sprintf("%s/%s", def.name(), p.Name()),
						Run: func(tc *runner.TaskCtx) error {
							m, err := measureModel(tc, run, def, spec.Fidelity,
								spec.Seed, spec.ParWorkers, p, substrates, spec.Progress)
							if err != nil {
								return fmt.Errorf("experiments: %s, model %s: %w",
									def.name(), p.Name(), err)
							}
							mu.Lock()
							results[i].Measurements[p.Name()] = m
							mu.Unlock()
							return nil
						},
					})
				}
				return nil
			},
		})
	}
	if err := run.Wait(); err != nil {
		return nil, err
	}
	return results, nil
}

// encodeCached and decodeCached fix the cache payload codec. JSON
// round-trips float64 exactly (shortest representation that parses
// back to the same bits), which is what lets a cache hit be
// byte-identical to a fresh simulation.
func encodeCached(v any) ([]byte, error) { return json.Marshal(v) }

func decodeCached(b []byte, v any) error { return json.Unmarshal(b, v) }

// annealEntry is the persisted form of one tuner evaluation.
type annealEntry struct {
	Cost     float64
	Penalty  float64
	Feasible bool
	Obs      scale.Observation
}

// annealCache adapts the runner's content-addressed store to the
// annealer's EvalCache hook. The scope string carries everything that
// determines the objective besides the candidate point itself (case,
// fidelity, seed, model, k); the annealer's quantized point key
// completes the address. Error sentinels (whose Aux is not an
// Observation) are never stored, so a transient failure cannot poison
// the cache.
type annealCache struct {
	cache *runner.Cache
	scope string
}

func (c *annealCache) key(pointKey string) (runner.Key, error) {
	return runner.KeyOf("anneal/v1", c.scope, pointKey)
}

// Get implements anneal.EvalCache.
func (c *annealCache) Get(pointKey string) (anneal.Result, bool) {
	k, err := c.key(pointKey)
	if err != nil {
		return anneal.Result{}, false
	}
	b, ok := c.cache.Get(k)
	if !ok {
		return anneal.Result{}, false
	}
	var e annealEntry
	if err := decodeCached(b, &e); err != nil {
		return anneal.Result{}, false
	}
	return anneal.Result{Cost: e.Cost, Penalty: e.Penalty, Feasible: e.Feasible, Aux: e.Obs}, true
}

// Put implements anneal.EvalCache.
func (c *annealCache) Put(pointKey string, r anneal.Result) {
	obs, ok := r.Aux.(scale.Observation)
	if !ok {
		return
	}
	k, err := c.key(pointKey)
	if err != nil {
		return
	}
	b, err := encodeCached(annealEntry{Cost: r.Cost, Penalty: r.Penalty, Feasible: r.Feasible, Obs: obs})
	if err != nil {
		return
	}
	_ = c.cache.Put(k, b)
}
