package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"rmscale/internal/lint/analysis"
)

// A directive is rmslint's escape hatch: a //lint: comment that
// suppresses one analyzer on one line, with a mandatory reason so the
// justification lives next to the exception.
//
//	//lint:allow <analyzer> <reason>   suppress <analyzer> here
//	//lint:orderindependent <reason>   shorthand for allow mapiterorder
//	//lint:hotpath <reason>            mark a function as a hot root (hotalloc)
//	//lint:coordinator <reason>        mark an audited concurrency site (coorddiscipline)
//
// A directive on its own line covers the next line; a trailing
// directive covers its own line. Either way, when the covered line
// starts a simple statement that spans several lines (a wrapped call,
// a multi-line literal), the suppression covers the whole statement
// span — block-bearing statements (if, for, func) are deliberately
// excluded so one directive can never blanket a body. A directive
// without a reason is itself a violation — an unexplained exception
// is exactly the kind of rot the suite exists to prevent.
type directive struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// suppressions maps "analyzer\x00file:line" to the directive that
// covers it.
type suppressions map[string]*directive

func suppressionKey(analyzer, file string, line int) string {
	return fmt.Sprintf("%s\x00%s:%d", analyzer, file, line)
}

// parseDirectives scans the files' comments for //lint: markers.
// known names the valid analyzer identifiers; malformed or unknown
// directives come back as diagnostics under the pseudo-analyzer
// "lintdirective".
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (suppressions, []analysis.Diagnostic) {
	sup := suppressions{}
	var bad []analysis.Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, analysis.Diagnostic{Pos: pos, Message: msg, Analyzer: "lintdirective"})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, rest, ok := cutDirective(c.Text)
				if !ok {
					continue
				}
				var d directive
				switch verb {
				case "allow":
					name, reason, _ := strings.Cut(rest, " ")
					d = directive{analyzer: name, reason: strings.TrimSpace(reason), pos: c.Pos()}
				case "orderindependent":
					d = directive{analyzer: "mapiterorder", reason: rest, pos: c.Pos()}
				case "hotpath", "coordinator":
					// Not suppressions: hotalloc and coorddiscipline read the
					// marks off the doc comment. Only the mandatory reason is
					// enforced here.
					if rest == "" {
						report(c.Pos(), "//lint: directive for "+verb+" needs a reason")
					}
					continue
				default:
					report(c.Pos(), "unknown //lint: directive "+verb+" (want allow, orderindependent, hotpath or coordinator)")
					continue
				}
				if !known[d.analyzer] {
					report(c.Pos(), "//lint: directive names unknown analyzer "+d.analyzer)
					continue
				}
				if d.reason == "" {
					report(c.Pos(), "//lint: directive for "+d.analyzer+" needs a reason")
					continue
				}
				p := fset.Position(c.Pos())
				sup[suppressionKey(d.analyzer, p.Filename, p.Line)] = &d
				// A directive alone on its line covers the next line; either
				// anchor line extends over the full span of a multi-line
				// simple statement starting there.
				anchor := p.Line
				if standalone(fset, f, c) {
					anchor = p.Line + 1
					sup[suppressionKey(d.analyzer, p.Filename, anchor)] = &d
				}
				for l := anchor + 1; l <= statementSpan(fset, f, anchor); l++ {
					sup[suppressionKey(d.analyzer, p.Filename, l)] = &d
				}
			}
		}
	}
	return sup, bad
}

// cutDirective splits a //lint: comment into its verb and argument
// text; ok reports whether the comment is a lint directive at all.
func cutDirective(text string) (verb, rest string, ok bool) {
	t, ok := strings.CutPrefix(text, "//lint:")
	if !ok {
		return "", "", false
	}
	verb, rest, _ = strings.Cut(strings.TrimSpace(t), " ")
	return verb, strings.TrimSpace(rest), true
}

// statementSpan returns the last line of a multi-line simple
// statement (or spec/field) beginning on line, or line itself when
// none does. Block-bearing nodes are excluded on purpose: a directive
// anchored on an if/for/func line must not suppress the whole body.
func statementSpan(fset *token.FileSet, f *ast.File, line int) int {
	end := line
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
			*ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt,
			*ast.ValueSpec, *ast.Field:
		default:
			return true
		}
		if fset.Position(n.Pos()).Line != line {
			return true
		}
		// A statement carrying a func literal (go func(){...}(), a
		// stored closure) spans its body; extending the suppression
		// there would blanket every line of the literal.
		if containsFuncLit(n) {
			return true
		}
		if e := fset.Position(n.End()).Line; e > end {
			end = e
		}
		return true
	})
	return end
}

func containsFuncLit(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			found = true
		}
		return !found
	})
	return found
}

// standalone reports whether comment c is the only thing on its line.
func standalone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		// Any non-comment node whose span covers the comment's line
		// and starts on it means the comment trails code.
		if _, isFile := n.(*ast.File); isFile {
			return true
		}
		if fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
			found = true
			return false
		}
		return n.Pos() < c.Pos() // no need to descend past the comment
	})
	return !found
}

// suppressed reports whether d is covered by a directive, either at
// its own position or at its suppression anchor (the loop header for
// body diagnostics).
func (s suppressions) suppressed(fset *token.FileSet, d analysis.Diagnostic) bool {
	p := fset.Position(d.Pos)
	if _, ok := s[suppressionKey(d.Analyzer, p.Filename, p.Line)]; ok {
		return true
	}
	if d.SuppressPos != token.NoPos {
		a := fset.Position(d.SuppressPos)
		if _, ok := s[suppressionKey(d.Analyzer, a.Filename, a.Line)]; ok {
			return true
		}
	}
	return false
}
