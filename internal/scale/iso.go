package scale

import "fmt"

// IsoAnalysis carries the closed-form isoefficiency quantities of the
// paper's Section 2.3. With base useful work W = F(k0), base RMS
// overhead O_RMS = G(k0), base RP overhead O_RP = H(k0) and target
// efficiency E0 = 1/alpha, the isoefficiency requirement
//
//	E(k) = E(k0)
//
// reduces (Equation 1) to
//
//	f(k) = c*g(k) + c'*h(k),   c = O_RMS/((alpha-1)W),  c' = O_RP/((alpha-1)W)
//
// and, because the RP always incurs some non-zero cost, to the
// necessary condition (Equation 2)
//
//	f(k) > c*g(k):
//
// useful work must grow at least as fast as RMS overhead, in these
// normalized units, for efficiency to stay constant.
type IsoAnalysis struct {
	W, ORMS, ORP float64
	E0           float64
	Alpha        float64
	C, CPrime    float64
}

// NewIsoAnalysis derives the constants from the base observation and
// the target efficiency.
func NewIsoAnalysis(base Observation, e0 float64) (IsoAnalysis, error) {
	if e0 <= 0 || e0 >= 1 {
		return IsoAnalysis{}, fmt.Errorf("scale: target efficiency %v outside (0,1)", e0)
	}
	if base.F <= 0 {
		return IsoAnalysis{}, fmt.Errorf("scale: base useful work must be positive, got %v", base.F)
	}
	alpha := 1 / e0
	den := (alpha - 1) * base.F
	return IsoAnalysis{
		W:      base.F,
		ORMS:   base.G,
		ORP:    base.H,
		E0:     e0,
		Alpha:  alpha,
		C:      base.G / den,
		CPrime: base.H / den,
	}, nil
}

// RequiredWork returns the normalized useful work f(k) needed to hold
// efficiency at E0 given normalized overheads g(k) and h(k)
// (Equation 1).
func (a IsoAnalysis) RequiredWork(g, h float64) float64 {
	return a.C*g + a.CPrime*h
}

// Condition reports Equation 2: f(k) > c*g(k). When it fails, the RMS
// overhead outgrew the useful work and the configuration cannot stay at
// the target efficiency.
func (a IsoAnalysis) Condition(f, g float64) bool {
	return f > a.C*g
}

// Efficiency computes E(k) from normalized curves, inverting the
// normalization against the base terms (the identity the derivation
// starts from).
func (a IsoAnalysis) Efficiency(f, g, h float64) float64 {
	num := f * a.W
	den := f*a.W + g*a.ORMS + h*a.ORP
	if den == 0 {
		return 0
	}
	return num / den
}

// ConditionReport evaluates Equation 2 across a measurement and reports
// the first scale factor at which the condition fails, or -1 when it
// holds everywhere.
func ConditionReport(m *Measurement) (failsAt int, err error) {
	if len(m.Points) == 0 {
		return -1, fmt.Errorf("scale: empty measurement")
	}
	base := m.Points[0].Obs
	a, err := NewIsoAnalysis(base, base.Efficiency)
	if err != nil {
		return -1, err
	}
	f := m.NormalizedF()
	g := m.NormalizedG()
	for i := range m.Points {
		if i == 0 {
			continue // the base holds trivially
		}
		if !a.Condition(f[i], g[i]) {
			return m.Points[i].K, nil
		}
	}
	return -1, nil
}
