// Package lint is rmslint: a suite of analyzers that mechanically
// enforce the determinism and model-coverage invariants the
// reproduction's byte-identical results depend on. The isoefficiency
// numbers and the fault goldens are only meaningful because no
// wall-clock reads, global RNG draws, map-iteration order or stray
// goroutines can leak into the event-level grid model; before this
// package those invariants lived in comments and were caught — after
// the fact — by golden files. Now they fail the build.
//
// The suite has two tiers. Six analyzers are call-site local
// (nowallclock, noglobalrand, mapiterorder, nokernelgoroutines,
// coorddiscipline, rmsexhaustive): cheap, precise, package-scoped.
// Three are interprocedural (detertaint, hotalloc, locksafe): they run
// over a module-wide call graph (internal/lint/callgraph) the driver
// builds once per run and shares across every (analyzer, package)
// pass.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"

	"rmscale/internal/lint/analysis"
	"rmscale/internal/lint/callgraph"
	"rmscale/internal/lint/load"
)

// Suite returns the nine analyzers in their fixed reporting order:
// the local fast passes first, then the call-graph tier.
func Suite(cfg Config) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoWallClock(),
		NoGlobalRand(),
		MapIterOrder(),
		NoKernelGoroutines(),
		CoordDiscipline(),
		RMSExhaustive(EnumSpec{
			PkgPath:   cfg.EnumPkg,
			TypeName:  cfg.EnumType,
			Constants: cfg.EnumConstants,
		}),
		DeterTaint(),
		HotAlloc(),
		LockSafe(),
	}
}

// packagesFor returns the config entry list governing one analyzer.
func (cfg Config) packagesFor(name string) []string {
	switch name {
	case "nowallclock", "noglobalrand":
		return cfg.SimVisible
	case "mapiterorder":
		return cfg.MapOrder
	case "nokernelgoroutines":
		return cfg.Kernel
	case "coorddiscipline":
		return cfg.Coordinator
	case "rmsexhaustive":
		return cfg.Exhaustive
	case "detertaint":
		// The taint analyzer reports at simulation-visible entry
		// points; the chains it follows may pass through any package.
		return cfg.SimVisible
	case "hotalloc":
		return cfg.HotAlloc
	case "locksafe":
		return cfg.LockSafe
	default:
		panic("lint: unknown analyzer " + name)
	}
}

// KnownAnalyzers is the set of names //lint: directives may target.
func KnownAnalyzers(cfg Config) map[string]bool {
	known := map[string]bool{}
	for _, a := range Suite(cfg) {
		known[a.Name] = true
	}
	return known
}

// Finding is one diagnostic with its positions resolved — the
// machine-readable shape behind both the vet-format text output and
// cmd/rmslint's -json report.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`

	// AnchorFile/AnchorLine locate the suppression anchor when it
	// differs from the diagnostic position (the loop header, the Lock
	// statement, the method declaration).
	AnchorFile string `json:"anchor_file,omitempty"`
	AnchorLine int    `json:"anchor_line,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Run loads the packages matched by patterns in the module rooted at
// dir, builds the shared call graph once, applies the suite per the
// config, and returns the surviving findings in report order.
func Run(dir string, patterns []string, cfg Config) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := load.Module(fset, dir, patterns...)
	if err != nil {
		return nil, err
	}
	cgPkgs := make([]*callgraph.Package, len(pkgs))
	for i, p := range pkgs {
		cgPkgs[i] = &callgraph.Package{Path: p.Path, Files: p.Files, Pkg: p.Pkg, Info: p.Info}
	}
	graph := callgraph.Build(fset, cgPkgs)

	suite := Suite(cfg)
	known := KnownAnalyzers(cfg)
	var out []Finding
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range suite {
			if !appliesTo(cfg.packagesFor(a.Name), pkg.Path) {
				continue
			}
			pass := &analysis.Pass{Analyzer: a, Fset: fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, Shared: graph}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		// ApplyDirectives also surfaces malformed //lint: markers, so it
		// runs even when the analyzers found nothing.
		for _, d := range ApplyDirectives(fset, pkg.Files, known, diags) {
			out = append(out, findingOf(fset, d))
		}
	}
	return out, nil
}

func findingOf(fset *token.FileSet, d analysis.Diagnostic) Finding {
	p := fset.Position(d.Pos)
	f := Finding{File: p.Filename, Line: p.Line, Col: p.Column, Analyzer: d.Analyzer, Message: d.Message}
	if d.SuppressPos != token.NoPos {
		a := fset.Position(d.SuppressPos)
		if a.Filename != p.Filename || a.Line != p.Line {
			f.AnchorFile, f.AnchorLine = a.Filename, a.Line
		}
	}
	return f
}

// RunDir is the vet-format entry point: it runs the suite and writes
// one line per finding to w, returning the finding count.
func RunDir(dir string, patterns []string, cfg Config, w io.Writer) (int, error) {
	findings, err := Run(dir, patterns, cfg)
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
	return len(findings), err
}

// ApplyDirectives filters diagnostics through the files' //lint:
// markers and appends diagnostics for malformed markers. Shared by
// the CLI driver and the analysistest harness so fixtures exercise
// the same suppression path production uses.
func ApplyDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, diags []analysis.Diagnostic) []analysis.Diagnostic {
	sup, bad := parseDirectives(fset, files, known)
	kept := make([]analysis.Diagnostic, 0, len(diags)+len(bad))
	for _, d := range diags {
		if !sup.suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	return append(kept, bad...)
}

// passGraph returns the run-wide call graph the driver cached on the
// pass, building a single-package graph as a fallback for callers
// that drive an analyzer directly.
func passGraph(p *analysis.Pass) *callgraph.Graph {
	if g, ok := p.Shared.(*callgraph.Graph); ok && g != nil {
		return g
	}
	return callgraph.Build(p.Fset, []*callgraph.Package{{Path: p.Pkg.Path(), Files: p.Files, Pkg: p.Pkg, Info: p.Info}})
}
