package rms

import (
	"fmt"

	"rmscale/internal/grid"
)

// ID enumerates the paper's seven RMS models as a closed enum. The
// string names ("CENTRAL", "S-I", ...) remain the wire/CLI currency;
// the enum exists so that dispatch, failover and rendering code can
// switch over models and have rmslint's rmsexhaustive analyzer prove
// the switch covers the whole roster — adding a model then fails the
// lint gate instead of silently no-opping in a forgotten branch.
type ID int

const (
	IDCentral ID = iota
	IDLowest
	IDReserve
	IDAuction
	IDSenderInit
	IDReceiverInit
	IDSymmetric
)

// IDs returns the seven models in the paper's order.
func IDs() []ID {
	return []ID{IDCentral, IDLowest, IDReserve, IDAuction, IDSenderInit, IDReceiverInit, IDSymmetric}
}

// String returns the paper's name for the model.
func (id ID) String() string {
	switch id {
	case IDCentral:
		return "CENTRAL"
	case IDLowest:
		return "LOWEST"
	case IDReserve:
		return "RESERVE"
	case IDAuction:
		return "AUCTION"
	case IDSenderInit:
		return "S-I"
	case IDReceiverInit:
		return "R-I"
	case IDSymmetric:
		return "Sy-I"
	default:
		panic(fmt.Sprintf("rms: unknown model ID %d", int(id)))
	}
}

// Describe returns the one-line protocol description the CLI's model
// roster prints (the paper's Section 3.3 taxonomy).
func (id ID) Describe() string {
	switch id {
	case IDCentral:
		return "one scheduler decides for the whole pool"
	case IDLowest:
		return "poll-on-arrival load balancing (Zhou)"
	case IDReserve:
		return "underloaded clusters register reservations ahead of time"
	case IDAuction:
		return "underloaded clusters auction capacity; loaded clusters bid"
	case IDSenderInit:
		return "sender-initiated superscheduler over grid middleware"
	case IDReceiverInit:
		return "receiver-initiated volunteering over grid middleware"
	case IDSymmetric:
		return "symmetric combination of S-I and R-I"
	default:
		panic(fmt.Sprintf("rms: unknown model ID %d", int(id)))
	}
}

// New returns a fresh policy instance for the model: the one dispatch
// point from enum to implementation.
func New(id ID) grid.Policy {
	switch id {
	case IDCentral:
		return NewCentral()
	case IDLowest:
		return NewLowest()
	case IDReserve:
		return NewReserve()
	case IDAuction:
		return NewAuction()
	case IDSenderInit:
		return NewSenderInitiated()
	case IDReceiverInit:
		return NewReceiverInitiated()
	case IDSymmetric:
		return NewSymmetric()
	default:
		panic(fmt.Sprintf("rms: unknown model ID %d", int(id)))
	}
}

// ParseID resolves a paper model name to its ID. Extension models
// (the hierarchical RMS) are not part of the enum; resolve those
// through ByName.
func ParseID(name string) (ID, bool) {
	for _, id := range IDs() {
		if id.String() == name {
			return id, true
		}
	}
	return 0, false
}
