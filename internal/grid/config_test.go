package grid

import (
	"math"
	"strings"
	"testing"
)

// TestFaultModelValidateNonFinite: range checks like f.ResourceMTBF < 0
// are false for NaN, so NaN (and the infinities) used to slip through
// validation and poison every downstream computation. Every float field
// must reject non-finite values explicitly.
func TestFaultModelValidateNonFinite(t *testing.T) {
	bads := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	set := []func(*FaultModel, float64){
		func(f *FaultModel, v float64) { f.ResourceMTBF = v },
		func(f *FaultModel, v float64) { f.RepairTime = v },
		func(f *FaultModel, v float64) { f.UpdateLossProb = v },
		func(f *FaultModel, v float64) { f.SchedulerMTBF = v },
		func(f *FaultModel, v float64) { f.SchedulerRepair = v },
		func(f *FaultModel, v float64) { f.EstimatorMTBF = v },
		func(f *FaultModel, v float64) { f.EstimatorRepair = v },
		func(f *FaultModel, v float64) { f.MsgLossProb = v },
		func(f *FaultModel, v float64) { f.LinkOutageMTBF = v },
		func(f *FaultModel, v float64) { f.LinkOutageDuration = v },
		func(f *FaultModel, v float64) { f.RetryTimeout = v },
	}
	for i, s := range set {
		for _, bad := range bads {
			var f FaultModel
			s(&f, bad)
			if err := f.Validate(); err == nil {
				t.Errorf("field %d: non-finite %v accepted", i, bad)
			} else if !strings.Contains(err.Error(), "finite") {
				t.Errorf("field %d: wrong error for %v: %v", i, bad, err)
			}
		}
	}
}

// TestEnablersValidateNonFinite covers the same hole in Enablers.
func TestEnablersValidateNonFinite(t *testing.T) {
	for _, mut := range []func(*Enablers){
		func(e *Enablers) { e.UpdateInterval = math.NaN() },
		func(e *Enablers) { e.LinkDelayScale = math.Inf(1) },
		func(e *Enablers) { e.VolunteerInterval = math.NaN() },
	} {
		e := DefaultEnablers()
		mut(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("non-finite enabler accepted: %+v", e)
		}
	}
}

// TestFaultModelValidateRanges spot-checks the range rules on the new
// fault classes.
func TestFaultModelValidateRanges(t *testing.T) {
	for name, f := range map[string]FaultModel{
		"negative scheduler MTBF":  {SchedulerMTBF: -1},
		"crash without repair":     {SchedulerMTBF: 100},
		"estimator without repair": {EstimatorMTBF: 100},
		"loss prob of one":         {MsgLossProb: 1},
		"outage without duration":  {LinkOutageMTBF: 100},
		"negative retry timeout":   {RetryTimeout: -1},
		"negative retries":         {MaxRetries: -1},
		"huge retry budget":        {MaxRetries: 64},
	} {
		if err := f.Validate(); err == nil {
			t.Errorf("%s accepted: %+v", name, f)
		}
	}
	ok := FaultModel{
		SchedulerMTBF: 500, SchedulerRepair: 50,
		EstimatorMTBF: 500, EstimatorRepair: 50,
		MsgLossProb:    0.1,
		LinkOutageMTBF: 300, LinkOutageDuration: 20,
		RetryTimeout: 30, MaxRetries: 3,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid fault model rejected: %v", err)
	}
	if !ok.Enabled() || !ok.protocolFaults() {
		t.Error("fully loaded fault model must report enabled")
	}
	var zero FaultModel
	if zero.Enabled() || zero.protocolFaults() {
		t.Error("zero fault model must report disabled")
	}
}
