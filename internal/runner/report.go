package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// runstateName is the machine-readable progress file inside a run
// directory.
const runstateName = "runstate.json"

// WorkerStatus is one worker's current occupation.
type WorkerStatus struct {
	Worker   int     `json:"worker"`
	Job      string  `json:"job"`
	SinceSec float64 `json:"since_sec"`
}

// Snapshot is a machine-readable progress report. It is what -v prints
// from and what runstate.json contains.
type Snapshot struct {
	JobsTotal    int            `json:"jobs_total"`
	JobsDone     int            `json:"jobs_done"`
	JobsResumed  int            `json:"jobs_resumed"`
	Points       int            `json:"points_done"`
	CacheHits    int64          `json:"cache_hits"`
	CacheMisses  int64          `json:"cache_misses"`
	CacheHitRate float64        `json:"cache_hit_rate"`
	ElapsedSec   float64        `json:"elapsed_sec"`
	ETASec       float64        `json:"eta_sec"`
	Workers      []WorkerStatus `json:"workers"`
	Done         bool           `json:"done"`
}

// String renders the one-line human progress summary.
func (s Snapshot) String() string {
	eta := "?"
	if s.ETASec >= 0 {
		eta = fmt.Sprintf("%ds", int(s.ETASec+0.5))
	}
	return fmt.Sprintf("jobs %d/%d, cache %.0f%% (%d/%d), elapsed %ds, eta %s",
		s.JobsDone, s.JobsTotal, 100*s.CacheHitRate, s.CacheHits,
		s.CacheHits+s.CacheMisses, int(s.ElapsedSec), eta)
}

// Reporter tracks run progress: jobs done versus total, cache hit
// rate, per-worker current job, and an elapsed-time ETA. Every state
// change rewrites runstate.json atomically (when the run has a
// directory) so an external observer — or a human with cat — can watch
// a long run without attaching to the process.
type Reporter struct {
	mu      sync.Mutex
	total   int
	done    int
	resumed int
	points  int
	started time.Time
	active  map[int]time.Time // worker -> task start
	jobs    map[int]string    // worker -> task id
	cache   *Cache
	dir     string    // "" = no runstate.json
	log     io.Writer // nil = silent
}

// NewReporter returns a reporter writing runstate.json under dir (when
// non-empty) and human progress lines to log (when non-nil).
func NewReporter(cache *Cache, dir string, log io.Writer) *Reporter {
	return &Reporter{
		started: time.Now(), //lint:allow detertaint progress-report start time; feeds ETA lines and runstate.json, never simulation results
		active:  make(map[int]time.Time),
		jobs:    make(map[int]string),
		cache:   cache,
		dir:     dir,
		log:     log,
	}
}

// AddTotal registers n more expected jobs.
func (r *Reporter) AddTotal(n int) {
	r.mu.Lock()
	r.total += n
	r.mu.Unlock()
	r.flush(false)
}

// JobResumed counts a job that was satisfied from the checkpoint
// journal without re-running.
func (r *Reporter) JobResumed() {
	r.mu.Lock()
	r.resumed++
	r.mu.Unlock()
}

// PointDone counts one completed (model, k) tuning point.
func (r *Reporter) PointDone() {
	r.mu.Lock()
	r.points++
	r.mu.Unlock()
}

// TaskStart implements PoolObserver.
func (r *Reporter) TaskStart(worker int, id string) {
	r.mu.Lock()
	r.active[worker] = time.Now() //lint:allow detertaint per-task wall time for progress display only
	r.jobs[worker] = id
	r.mu.Unlock()
	r.flush(false)
}

// TaskDone implements PoolObserver.
func (r *Reporter) TaskDone(worker int, id string, err error) {
	r.mu.Lock()
	delete(r.active, worker)
	delete(r.jobs, worker)
	r.done++
	r.mu.Unlock()
	if r.log != nil {
		status := "done"
		if err != nil {
			status = "failed: " + err.Error()
		}
		fmt.Fprintf(r.log, "runner: %-24s %s [%s]\n", id, status, r.Snapshot().String())
	}
	r.flush(false)
}

// Snapshot captures the current progress.
func (r *Reporter) Snapshot() Snapshot {
	return r.snapshot(false)
}

func (r *Reporter) snapshot(done bool) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now() //lint:allow detertaint elapsed/ETA fields of the progress snapshot; results carry no wall time
	s := Snapshot{
		JobsTotal:   r.total,
		JobsDone:    r.done,
		JobsResumed: r.resumed,
		Points:      r.points,
		ElapsedSec:  now.Sub(r.started).Seconds(),
		ETASec:      -1,
		Done:        done,
	}
	if r.cache != nil {
		s.CacheHits, s.CacheMisses = r.cache.Stats()
		s.CacheHitRate = r.cache.HitRate()
	}
	if r.done > 0 && r.total > r.done {
		perJob := s.ElapsedSec / float64(r.done)
		s.ETASec = perJob * float64(r.total-r.done)
	} else if r.total == r.done {
		s.ETASec = 0
	}
	//lint:orderindependent now.Sub is a pure computation and the worker list is re-sorted by id on the next line
	for w, since := range r.active {
		s.Workers = append(s.Workers, WorkerStatus{
			Worker:   w,
			Job:      r.jobs[w],
			SinceSec: now.Sub(since).Seconds(),
		})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	return s
}

// Finish marks the run complete and writes the final runstate.
func (r *Reporter) Finish() {
	r.flush(true)
	if r.log != nil {
		fmt.Fprintf(r.log, "runner: finished [%s]\n", r.snapshot(true).String())
	}
}

// flush rewrites runstate.json; failures are deliberately ignored — a
// progress file must never abort the experiment it describes.
func (r *Reporter) flush(done bool) {
	if r.dir == "" {
		return
	}
	b, err := json.MarshalIndent(r.snapshot(done), "", "  ")
	if err != nil {
		return
	}
	_ = WriteFileAtomic(filepath.Join(r.dir, runstateName), append(b, '\n'), 0o644)
}
