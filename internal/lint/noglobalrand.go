package lint

import (
	"go/ast"
	"go/types"

	"rmscale/internal/lint/analysis"
)

// randConstructors are the math/rand and math/rand/v2 identifiers
// that build a new generator rather than touching the shared global
// one. They are still flagged — every RNG in sim-visible code must
// descend from a sim.Source named stream — but with a message that
// points at the sanctioned construction site, which carries a
// //lint:allow annotation.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true,
}

// NoGlobalRand forbids the process-global math/rand state and ad-hoc
// generator construction in simulation-visible packages. Every draw
// must come from a sim.Source named stream, so that components
// consume independent deterministic sequences regardless of the order
// other components draw in.
func NoGlobalRand() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "noglobalrand",
		Doc:  "forbid global math/rand functions and ad-hoc rand.New in sim-visible packages; randomness comes from sim.RNG named streams",
	}
	a.Run = func(p *analysis.Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path, name, ok := p.SelectorOf(sel)
				if !ok || path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				// Referring to the types (rand.Rand, rand.Source) is
				// fine: the stream wrappers store them.
				if obj := p.Info.Uses[sel.Sel]; obj != nil {
					if _, isType := obj.(*types.TypeName); isType {
						return true
					}
				}
				if randConstructors[name] {
					p.Reportf(sel.Pos(),
						"rand.%s builds an RNG outside the named-stream factory; draw from sim.RNG streams (or annotate the factory with //lint:allow noglobalrand <why>)", name)
				} else {
					p.Reportf(sel.Pos(),
						"rand.%s uses the process-global RNG; sim-visible code must draw from sim.RNG named streams", name)
				}
				return true
			})
		}
		return nil
	}
	return a
}
