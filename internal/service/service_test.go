package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
)

// fakeExec returns a deterministic payload derived from the spec.
func fakeExec(_ context.Context, spec ExperimentSpec, _ string) ([]byte, error) {
	return []byte(fmt.Sprintf("{\"ran\":%q}\n", spec.String())), nil
}

// waitTerminal blocks (condition-variable driven, no polling) until the
// experiment reaches a terminal state.
func waitTerminal(t *testing.T, d *Daemon, id string) Status {
	t.Helper()
	st, ok := d.Status(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	for !st.State.Terminal() {
		next, ok := d.Await(id, st.State)
		if !ok {
			t.Fatalf("experiment %s vanished while waiting", id)
		}
		if next.State == st.State {
			t.Fatalf("daemon closed with %s still %s", id, st.State)
		}
		st = next
	}
	return st
}

func TestDaemonSubmitValidates(t *testing.T) {
	d, err := New(Config{Exec: fakeExec})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Submit(ExperimentSpec{Kind: "bogus"}, "c"); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestDaemonDedupInflight pins the core dedup contract: identical
// specs from different clients share one execution and one stored,
// byte-identical result.
func TestDaemonDedupInflight(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		started <- struct{}{}
		<-release
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	spec := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}
	st1, err := d.Submit(spec, "alice")
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if st1.Dedup {
		t.Fatal("first submission flagged dedup")
	}
	<-started // the shard is now blocked inside the execution

	st2, err := d.Submit(spec, "bob")
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if !st2.Dedup {
		t.Fatal("identical in-flight submission not flagged dedup")
	}
	if st2.ID != st1.ID {
		t.Fatalf("identical specs got different IDs: %s vs %s", st1.ID, st2.ID)
	}
	close(release)

	fin := waitTerminal(t, d, st1.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s), want done", fin.State, fin.Error)
	}
	// A third, post-completion submission dedupes against the store.
	st3, err := d.Submit(spec, "carol")
	if err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	if !st3.Dedup || st3.State != StateDone {
		t.Fatalf("post-completion submission: dedup=%v state=%s, want dedup done", st3.Dedup, st3.State)
	}

	b1, ok := d.Result(st1.ID)
	if !ok {
		t.Fatal("result missing")
	}
	b2, _ := d.Result(st1.ID)
	if string(b1) != string(b2) {
		t.Fatal("repeated fetches returned different bytes")
	}

	s := d.Stats()
	if s.Submitted != 3 || s.Executions != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v, want submitted=3 executions=1 completed=1", s)
	}
	if s.DedupInflight != 1 || s.DedupStore != 1 || s.DedupHits() != 2 {
		t.Fatalf("stats = %+v, want dedup_inflight=1 dedup_store=1", s)
	}
}

// TestDaemonAdmissionControl pins saturation behavior: a full queue
// refuses new work with ErrSaturated and counts the rejection.
func TestDaemonAdmissionControl(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		started <- struct{}{}
		<-release
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, QueueCap: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	mk := func(seed int64) ExperimentSpec {
		return ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: seed}
	}
	if _, err := d.Submit(mk(1), "a"); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started // shard busy; the queue is empty again
	st2, err := d.Submit(mk(2), "b")
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	_, err = d.Submit(mk(3), "c")
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit at capacity = %v, want ErrSaturated", err)
	}
	// Dedup reads still succeed at capacity: resubmitting queued work
	// joins it rather than bouncing.
	stDup, err := d.Submit(mk(2), "c")
	if err != nil || !stDup.Dedup {
		t.Fatalf("dedup at capacity: st=%+v err=%v, want dedup join", stDup, err)
	}

	close(release)
	if fin := waitTerminal(t, d, st2.ID); fin.State != StateDone {
		t.Fatalf("state = %s, want done", fin.State)
	}
	s := d.Stats()
	if s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
	if s.MaxQueueDepth != 1 {
		t.Fatalf("max queue depth = %d, want 1", s.MaxQueueDepth)
	}
}

// TestDaemonFailedRetry pins that a failed spec may be resubmitted and
// retried rather than being dedup-joined to the failure forever.
func TestDaemonFailedRetry(t *testing.T) {
	calls := 0
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient blowup")
		}
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	spec := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}
	st, err := d.Submit(spec, "a")
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, d, st.ID)
	if fin.State != StateFailed || fin.Error == "" {
		t.Fatalf("state = %s (%q), want failed with error", fin.State, fin.Error)
	}
	st2, err := d.Submit(spec, "a")
	if err != nil {
		t.Fatalf("resubmit after failure: %v", err)
	}
	if st2.Dedup {
		t.Fatal("resubmission of a failed spec dedup-joined the failure")
	}
	if fin := waitTerminal(t, d, st.ID); fin.State != StateDone {
		t.Fatalf("retry state = %s (%s), want done", fin.State, fin.Error)
	}
	s := d.Stats()
	if s.Executions != 2 || s.Failed != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v, want executions=2 failed=1 completed=1", s)
	}
	_ = st2
}

// TestDaemonDrainResume is the kill/restart story: SIGTERM drain
// finishes in-flight work, leaves the backlog checkpointed in the
// journal, and a fresh daemon over the same directory resumes exactly
// the unfinished experiments.
func TestDaemonDrainResume(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		started <- struct{}{}
		<-release
		return fakeExec(ctx, spec, dir)
	}
	d1, err := New(Config{Dir: dir, Shards: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) ExperimentSpec {
		return ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: seed}
	}
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		st, err := d1.Submit(mk(seed), "a")
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		ids = append(ids, st.ID)
	}
	<-started // seed 1 is executing; seeds 2 and 3 are queued

	drained := make(chan struct{})
	go func() {
		d1.Drain()
		close(drained)
	}()
	// Drain flips the flag before blocking on the shards; wait for it so
	// the release below cannot let the shard grab seed 2 first.
	for !d1.Stats().Draining {
		runtime.Gosched()
	}
	close(release)
	<-drained
	if st, _ := d1.Status(ids[0]); st.State != StateDone {
		t.Fatalf("in-flight experiment after drain = %s, want done", st.State)
	}
	for _, id := range ids[1:] {
		if st, _ := d1.Status(id); st.State != StateQueued {
			t.Fatalf("backlog experiment after drain = %s, want queued", st.State)
		}
	}
	// New work is refused while draining; dedup reads still answer.
	if _, err := d1.Submit(mk(9), "a"); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	if st, err := d1.Submit(mk(1), "b"); err != nil || !st.Dedup {
		t.Fatalf("dedup read while draining: st=%+v err=%v", st, err)
	}
	if err := d1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Restart over the same directory with an unblocked executor.
	d2, err := New(Config{Dir: dir, Shards: 1, Exec: fakeExec})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer d2.Close()
	if got := d2.Stats().Resumed; got != 2 {
		t.Fatalf("resumed = %d, want 2 (the drained backlog)", got)
	}
	for _, id := range ids {
		if fin := waitTerminal(t, d2, id); fin.State != StateDone {
			t.Fatalf("experiment %s after restart = %s (%s), want done", id, fin.State, fin.Error)
		}
		if _, ok := d2.Result(id); !ok {
			t.Fatalf("result %s missing after restart", id)
		}
	}
	// The finished experiment's result came from the store, not a rerun.
	if ex := d2.Stats().Executions; ex != 2 {
		t.Fatalf("executions after restart = %d, want 2 (done work must not rerun)", ex)
	}
}
