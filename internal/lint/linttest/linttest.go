// Package linttest is an analysistest-style harness for rmslint's
// analyzers: it loads fixture packages from a testdata/src tree,
// type-checks them against the real standard library, runs one
// analyzer through the same directive-suppression path production
// uses, and compares the diagnostics against `// want "regex"`
// comments in the fixtures.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rmscale/internal/lint"
	"rmscale/internal/lint/analysis"
	"rmscale/internal/lint/callgraph"
	"rmscale/internal/lint/load"
)

// expectation is one `// want` clause: a line that must produce a
// diagnostic matching each regexp.
type expectation struct {
	file     string
	line     int
	patterns []*regexp.Regexp
	matched  []bool
}

// Run loads the named fixture packages (directories under
// testdata/src, loaded in order so later fixtures can import earlier
// ones by their directory path) and checks a's diagnostics against
// the fixtures' // want comments. Fixtures with intentional
// violations live under testdata so the module build never sees them.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()

	// Pass 1: collect each fixture's files and external imports.
	fixturePaths := map[string]bool{}
	for _, p := range pkgs {
		fixturePaths[p] = true
	}
	files := map[string][]string{}
	externals := map[string]bool{}
	for _, p := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(p))
		names, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(names) == 0 {
			t.Fatalf("fixture %s: no Go files in %s (%v)", p, dir, err)
		}
		sort.Strings(names)
		files[p] = names
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("fixture %s: %v", p, err)
			}
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if !fixturePaths[path] {
					externals[path] = true
				}
			}
		}
	}

	// Load the real standard-library dependencies, then type-check the
	// fixtures on top of them.
	var extList []string
	for p := range externals {
		extList = append(extList, p)
	}
	sort.Strings(extList)
	typed, err := load.Deps(fset, ".", extList...)
	if err != nil {
		t.Fatalf("loading fixture dependencies: %v", err)
	}

	// Type-check every fixture first, then build the shared call graph
	// over all of them — the same priming the production driver does —
	// so interprocedural analyzers see cross-package fixture chains.
	var checked []*load.Package
	for _, p := range pkgs {
		pkg, err := load.Check(fset, p, files[p], load.Importer(typed))
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", p, err)
		}
		typed[p] = pkg.Pkg
		checked = append(checked, pkg)
	}
	cgPkgs := make([]*callgraph.Package, len(checked))
	for i, pkg := range checked {
		cgPkgs[i] = &callgraph.Package{Path: pkg.Path, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
	}
	graph := callgraph.Build(fset, cgPkgs)

	known := map[string]bool{a.Name: true}
	var diags []analysis.Diagnostic
	var expects []*expectation
	for _, pkg := range checked {
		pass := &analysis.Pass{Analyzer: a, Fset: fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, Shared: graph}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on fixture %s: %v", a.Name, pkg.Path, err)
		}
		diags = append(diags, lint.ApplyDirectives(fset, pkg.Files, known, pass.Diagnostics())...)
		for _, f := range pkg.Files {
			exp, err := wantComments(fset, f)
			if err != nil {
				t.Fatal(err)
			}
			expects = append(expects, exp...)
		}
	}

	// Match diagnostics against expectations.
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !consume(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic %s:%d: %s (%s)", pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		for i, ok := range e.matched {
			if !ok {
				t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.patterns[i])
			}
		}
	}
}

// consume marks the first unmatched expectation pattern on the
// diagnostic's line that matches its message.
func consume(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.file != file || e.line != line {
			continue
		}
		for i, re := range e.patterns {
			if !e.matched[i] && re.MatchString(msg) {
				e.matched[i] = true
				return true
			}
		}
	}
	return false
}

// wantComments extracts `// want "re" ["re" ...]` clauses from a
// file's comments. The clause expects one matching diagnostic per
// quoted regexp on the comment's own line.
func wantComments(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			e := &expectation{file: pos.Filename, line: pos.Line}
			rest := strings.TrimSpace(text)
			for rest != "" {
				if rest[0] != '"' {
					return nil, fmt.Errorf("%s:%d: malformed want clause near %q", e.file, e.line, rest)
				}
				lit, err := nextStringLit(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", e.file, e.line, err)
				}
				pat, err := strconv.Unquote(lit)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", e.file, e.line, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", e.file, e.line, err)
				}
				e.patterns = append(e.patterns, re)
				rest = strings.TrimSpace(rest[len(lit):])
			}
			if len(e.patterns) == 0 {
				return nil, fmt.Errorf("%s:%d: want clause with no patterns", e.file, e.line)
			}
			e.matched = make([]bool, len(e.patterns))
			out = append(out, e)
		}
	}
	return out, nil
}

// nextStringLit returns the leading double-quoted Go string literal
// of s, including its quotes.
func nextStringLit(s string) (string, error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string in want clause %q", s)
}
