package lint

import (
	"go/ast"
	"strconv"

	"rmscale/internal/lint/analysis"
)

// NoKernelGoroutines forbids concurrency in the deterministic kernel
// packages: no goroutines, no channels, no sync primitives. The event
// loop owns all interleaving; parallelism lives one layer up, in
// internal/runner, which runs whole single-threaded simulations side
// by side. A mutex inside the kernel is either dead weight or a sign
// that sim-time state is being shared across goroutines — both are
// bugs here.
func NoKernelGoroutines() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "nokernelgoroutines",
		Doc:  "forbid go statements, channels and sync imports in deterministic-kernel packages; concurrency belongs to internal/runner",
	}
	a.Run = func(p *analysis.Pass) error {
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "sync" || path == "sync/atomic" {
					p.Reportf(imp.Pos(),
						"kernel package imports %q; the deterministic kernel is single-threaded — move concurrency to internal/runner", path)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					p.Reportf(n.Pos(), "go statement in a deterministic-kernel package; the event loop owns all interleaving")
				case *ast.SelectStmt:
					p.Reportf(n.Pos(), "select statement in a deterministic-kernel package")
				case *ast.SendStmt:
					p.Reportf(n.Pos(), "channel send in a deterministic-kernel package")
				case *ast.ChanType:
					p.Reportf(n.Pos(), "channel type in a deterministic-kernel package; kernel code communicates through the event queue")
				}
				return true
			})
		}
		return nil
	}
	return a
}
