package grid

import (
	"testing"

	"rmscale/internal/sim"
	"rmscale/internal/workload"
)

// depJobs builds a small chained workload: 0 <- 1 <- 2 and independent 3.
func depJobs() []*workload.Job {
	mk := func(id int, arrival float64, deps ...int) *workload.Job {
		return &workload.Job{
			ID: id, Arrival: arrival, Runtime: 50, Requested: 60,
			Benefit: 5, Partition: 1, Cluster: 0, Class: workload.Local, Deps: deps,
		}
	}
	return []*workload.Job{
		mk(0, 0),
		mk(1, 1, 0),
		mk(2, 2, 1),
		mk(3, 3),
	}
}

func TestPrecedenceHoldsDependents(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UseJobs(depJobs()); err != nil {
		t.Fatal(err)
	}
	e.Tracer = sim.NewTracer(e.K, 0)
	sum := e.Run()
	if e.Metrics.JobsCompleted != 4 {
		t.Fatalf("completed %d of 4", e.Metrics.JobsCompleted)
	}
	if e.HeldJobs() != 0 {
		t.Fatalf("%d jobs still held after drain", e.HeldJobs())
	}
	// Start order must respect the chain: the engine admits 1 only
	// after 0 completes (t>=50), 2 only after 1 (t>=100).
	var starts []sim.TraceEvent
	for _, ev := range e.Tracer.Events() {
		if ev.Kind == "arrival" {
			starts = append(starts, ev)
		}
	}
	if len(starts) != 4 {
		t.Fatalf("arrivals = %d", len(starts))
	}
	at := map[string]sim.Time{}
	for _, ev := range starts {
		at[ev.Detail] = ev.At
	}
	_ = at
	// Events are coarse; assert via times: job 1 admitted at >= 50.
	var t1, t2 sim.Time = -1, -1
	for _, ev := range starts {
		switch ev.Detail[:5] {
		case "job 1":
			t1 = ev.At
		case "job 2":
			t2 = ev.At
		}
	}
	if t1 < 50 {
		t.Fatalf("job 1 admitted at %v, before its parent finished (50)", t1)
	}
	if t2 < t1+50 {
		t.Fatalf("job 2 admitted at %v, before job 1 finished (%v)", t2, t1+50)
	}
	if sum.Jobs != 4 {
		t.Fatalf("jobs = %d", sum.Jobs)
	}
}

func TestPrecedenceWithDAGWorkload(t *testing.T) {
	cfg := testConfig()
	e, err := New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	p := workload.DefaultDAGParams()
	// Run lighter than the stressed default so dependency chains can
	// drain inside the window.
	p.ArrivalRate = cfg.Workload.ArrivalRate * 0.7
	p.Horizon = cfg.Workload.Horizon
	p.Clusters = cfg.Workload.Clusters
	jobs, err := workload.GenerateDAG(p, sim.NewSource(5).Stream("dag"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UseJobs(jobs); err != nil {
		t.Fatal(err)
	}
	e.Run()
	m := e.Metrics
	if m.JobsCompleted+m.JobsLost+e.Unfinished() != m.JobsArrived {
		t.Fatalf("conservation broken with precedence: %d+%d+%d != %d",
			m.JobsCompleted, m.JobsLost, e.Unfinished(), m.JobsArrived)
	}
	if m.JobsCompleted == 0 {
		t.Fatal("nothing completed")
	}
	// Chains whose parents are still running at the cutoff legitimately
	// stay held, but they must be a small tail, and every held job must
	// be accounted as unfinished.
	if e.HeldJobs() > e.Unfinished() {
		t.Fatalf("held (%d) exceeds unfinished (%d)", e.HeldJobs(), e.Unfinished())
	}
	if frac := float64(m.JobsCompleted) / float64(m.JobsArrived); frac < 0.9 {
		t.Fatalf("only %.2f of the DAG workload completed", frac)
	}
}

func TestPrecedenceReleasedOnLoss(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := depJobs()
	if err := e.UseJobs(jobs); err != nil {
		t.Fatal(err)
	}
	// Simulate job 0 being dropped before running: its dependent must
	// still be released.
	e.Metrics.JobsArrived = len(jobs)
	e.startWithDeps()
	e.dropJob(&JobCtx{Job: jobs[0]})
	e.K.Run(5000)
	if e.HeldJobs() != 0 {
		t.Fatalf("dependents not released after parent loss: %d held", e.HeldJobs())
	}
}

func TestDepTrackerUnit(t *testing.T) {
	d := newDepTracker()
	j1 := &workload.Job{ID: 1, Deps: []int{0}}
	j2 := &workload.Job{ID: 2, Deps: []int{0, 1}}
	if !d.register(j1) || !d.register(j2) {
		t.Fatal("jobs with live parents must be held")
	}
	if d.Held() != 2 {
		t.Fatalf("held = %d", d.Held())
	}
	rel := d.terminate(0)
	if len(rel) != 1 || rel[0].ID != 1 {
		t.Fatalf("terminate(0) released %v", rel)
	}
	rel = d.terminate(1)
	if len(rel) != 1 || rel[0].ID != 2 {
		t.Fatalf("terminate(1) released %v", rel)
	}
	if d.Held() != 0 {
		t.Fatal("tracker not drained")
	}
	// Terminating twice is harmless.
	if d.terminate(0) != nil {
		t.Fatal("double terminate released jobs")
	}
	// A job whose parents already finished is not held.
	j3 := &workload.Job{ID: 3, Deps: []int{0, 1}}
	if d.register(j3) {
		t.Fatal("job with finished parents was held")
	}
}
