// Package chaos is the invariant-hunting harness on top of
// internal/audit: it generates random but fully deterministic fault
// schedules (scheduler/estimator crashes, protocol-loss windows —
// optionally metric corruptions for self-tests), runs each against an
// audited engine, replays violations to confirm deterministic
// reproduction, and shrinks failing schedules to minimal reproducers
// serialized as runnable JSON.
package chaos

import (
	"fmt"
	"math"

	"rmscale/internal/audit"
	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/topology"
)

// meanJobRuntime mirrors the workload model's mean job runtime (see
// internal/experiments); Util*resources/meanJobRuntime is the arrival
// rate that loads the pool to Util.
const meanJobRuntime = 524.2

// Crash scripts one RMS-node outage.
type Crash struct {
	// Target is the cluster (scheduler crash) or estimator index; it is
	// clamped modulo the live entity count, so schedules stay valid
	// across the central-policy collapse to one cluster.
	Target int
	At     float64
	Repair float64
}

// Window scripts one total protocol-loss interval.
type Window struct {
	Start    float64
	Duration float64
}

// Corruption kinds deliberately falsify one metric mid-run; they exist
// to prove the auditor detects, replays and shrinks real violations.
const (
	// CorruptNegativeOverhead drives G negative.
	CorruptNegativeOverhead = "negative-overhead"
	// CorruptPhantomComplete inflates JobsCompleted past admission.
	CorruptPhantomComplete = "phantom-complete"
	// CorruptPhantomRetry inflates MsgRetries, breaking the
	// lost = retried + abandoned identity.
	CorruptPhantomRetry = "phantom-retry"
)

// Corruption scripts one metric falsification at a simulated time.
type Corruption struct {
	Kind string
	At   float64
}

// Schedule is one complete, runnable chaos scenario: a compact grid, a
// model, a seed, and a scripted fault (and optionally corruption)
// timeline. It round-trips through JSON as the reproducer format.
type Schedule struct {
	Name  string
	Model string
	Seed  int64

	Clusters    int
	ClusterSize int
	Estimators  int
	Horizon     float64
	Drain       float64
	// Util is the offered load as a fraction of pool capacity.
	Util float64

	SchedCrashes []Crash      `json:",omitempty"`
	EstCrashes   []Crash      `json:",omitempty"`
	LossWindows  []Window     `json:",omitempty"`
	Corruptions  []Corruption `json:",omitempty"`
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Validate reports the first nonsensical schedule field.
func (s Schedule) Validate() error {
	if _, err := rms.ByName(s.Model); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	switch {
	case s.Clusters < 1:
		return fmt.Errorf("chaos: Clusters must be >= 1, got %d", s.Clusters)
	case s.ClusterSize < 1:
		return fmt.Errorf("chaos: ClusterSize must be >= 1, got %d", s.ClusterSize)
	case s.Estimators < 0:
		return fmt.Errorf("chaos: negative Estimators %d", s.Estimators)
	case !finite(s.Horizon) || s.Horizon <= 0:
		return fmt.Errorf("chaos: Horizon must be positive and finite, got %v", s.Horizon)
	case !finite(s.Drain) || s.Drain < 0:
		return fmt.Errorf("chaos: Drain must be non-negative and finite, got %v", s.Drain)
	case !finite(s.Util) || s.Util <= 0 || s.Util > 2:
		return fmt.Errorf("chaos: Util must be in (0,2], got %v", s.Util)
	}
	window := s.Horizon + s.Drain
	for i, c := range append(append([]Crash{}, s.SchedCrashes...), s.EstCrashes...) {
		switch {
		case c.Target < 0:
			return fmt.Errorf("chaos: crash %d has negative target %d", i, c.Target)
		case !finite(c.At) || c.At < 0 || c.At >= window:
			return fmt.Errorf("chaos: crash %d at %v outside [0,%v)", i, c.At, window)
		case !finite(c.Repair) || c.Repair <= 0:
			return fmt.Errorf("chaos: crash %d has non-positive repair %v", i, c.Repair)
		}
	}
	for i, w := range s.LossWindows {
		switch {
		case !finite(w.Start) || w.Start < 0 || w.Start >= window:
			return fmt.Errorf("chaos: loss window %d starts at %v outside [0,%v)", i, w.Start, window)
		case !finite(w.Duration) || w.Duration <= 0:
			return fmt.Errorf("chaos: loss window %d has non-positive duration %v", i, w.Duration)
		}
	}
	for i, c := range s.Corruptions {
		switch c.Kind {
		case CorruptNegativeOverhead, CorruptPhantomComplete, CorruptPhantomRetry:
		default:
			return fmt.Errorf("chaos: corruption %d has unknown kind %q", i, c.Kind)
		}
		if !finite(c.At) || c.At < 0 || c.At >= window {
			return fmt.Errorf("chaos: corruption %d at %v outside [0,%v)", i, c.At, window)
		}
	}
	return nil
}

// clone deep-copies the schedule so the shrinker can mutate candidates
// without aliasing the incumbent's slices.
func (s Schedule) clone() Schedule {
	c := s
	c.SchedCrashes = append([]Crash(nil), s.SchedCrashes...)
	c.EstCrashes = append([]Crash(nil), s.EstCrashes...)
	c.LossWindows = append([]Window(nil), s.LossWindows...)
	c.Corruptions = append([]Corruption(nil), s.Corruptions...)
	return c
}

// Events counts the scripted events in the schedule (the shrinker's
// size measure).
func (s Schedule) Events() int {
	return len(s.SchedCrashes) + len(s.EstCrashes) + len(s.LossWindows) + len(s.Corruptions)
}

// config translates the schedule into a grid configuration. The random
// FaultModel stays disabled — every fault is scripted — but the retry
// protocol is armed so losses exercise the timeout path.
func (s Schedule) config() grid.Config {
	cfg := grid.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Spec = topology.GridSpec{
		Clusters:    s.Clusters,
		ClusterSize: s.ClusterSize,
		Estimators:  s.Estimators,
	}
	cfg.Horizon = s.Horizon
	cfg.Drain = s.Drain
	cfg.Workload.Clusters = s.Clusters
	cfg.Workload.Horizon = s.Horizon
	cfg.Workload.ArrivalRate = s.Util * float64(s.Clusters*s.ClusterSize) / meanJobRuntime
	cfg.Faults.RetryTimeout = 25
	cfg.Faults.MaxRetries = 3
	cfg.MaxEvents = 5_000_000
	return cfg
}

// Report is the outcome of one schedule run.
type Report struct {
	Summary grid.Summary
	// Violations are the auditor's findings verbatim; Kinds the
	// distinct check names in first-seen order.
	Violations []string
	Kinds      []string
	Checks     int
	// Fingerprint identifies the violation set; "" when clean.
	Fingerprint string
}

// Violating reports whether the run broke any invariant.
func (r Report) Violating() bool { return len(r.Violations) > 0 }

// Run executes the schedule against an audited engine and reports the
// audit outcome. Identical schedules produce identical reports — the
// whole pipeline is deterministic in the schedule alone.
func Run(s Schedule) (Report, error) {
	return RunWorkers(s, 1)
}

// RunWorkers is Run with an in-run parallelism cap: the engine executes
// through RunPar, which may only use parallel event windows where its
// partition plan proves them byte-identical to serial execution. The
// determinism contract therefore extends across worker counts —
// RunWorkers(s, n) reports exactly Run(s) for every n — and the
// parallel equivalence suite pins chaos fingerprints on it.
func RunWorkers(s Schedule, workers int) (Report, error) {
	if err := s.Validate(); err != nil {
		return Report{}, err
	}
	p, err := rms.ByName(s.Model)
	if err != nil {
		return Report{}, err
	}
	e, err := grid.New(s.config(), p)
	if err != nil {
		return Report{}, fmt.Errorf("chaos: building %s: %w", s.Name, err)
	}
	if err := e.ArmFaults(); err != nil {
		return Report{}, err
	}
	// Clamp targets to the live entity counts (a central policy
	// collapses to one cluster) and keep at most one crash per target:
	// overlapping outage windows on one node are undefined.
	seenSched := map[int]bool{}
	for _, c := range s.SchedCrashes {
		t := c.Target % e.Clusters()
		if seenSched[t] {
			continue
		}
		seenSched[t] = true
		if err := e.InjectSchedulerCrash(t, c.At, c.Repair); err != nil {
			return Report{}, err
		}
	}
	seenEst := map[int]bool{}
	for _, c := range s.EstCrashes {
		if len(e.Estimators) == 0 {
			break
		}
		t := c.Target % len(e.Estimators)
		if seenEst[t] {
			continue
		}
		seenEst[t] = true
		if err := e.InjectEstimatorCrash(t, c.At, c.Repair); err != nil {
			return Report{}, err
		}
	}
	for _, w := range s.LossWindows {
		if err := e.InjectLossWindow(w.Start, w.Duration); err != nil {
			return Report{}, err
		}
	}
	m := e.Metrics
	for _, c := range s.Corruptions {
		kind := c.Kind
		e.K.Schedule(c.At, func() { corrupt(m, kind) })
	}
	a, err := audit.Attach(e, audit.Config{Mode: audit.Record})
	if err != nil {
		return Report{}, err
	}
	sum := e.RunPar(workers)
	r := Report{
		Summary:     sum,
		Violations:  a.ViolationStrings(),
		Checks:      a.Checks(),
		Fingerprint: a.Fingerprint(),
	}
	seen := map[string]bool{}
	for _, v := range a.Violations() {
		if !seen[v.Check] {
			seen[v.Check] = true
			r.Kinds = append(r.Kinds, v.Check)
		}
	}
	return r, nil
}

// corrupt falsifies one metric; each kind decisively violates a
// distinct invariant no matter where in the run it fires.
func corrupt(m *grid.Metrics, kind string) {
	switch kind {
	case CorruptNegativeOverhead:
		m.RMSOverhead = -1e6
	case CorruptPhantomComplete:
		m.JobsCompleted += m.JobsArrived + 1
	case CorruptPhantomRetry:
		m.MsgRetries += 7
	}
}

// HasKind reports whether the run violated the named check.
func (r Report) HasKind(kind string) bool {
	for _, k := range r.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}
