// Package rmscale is a library for measuring the scalability of
// resource management systems (RMSs) in managed distributed systems,
// reproducing Mitra, Maheswaran & Ali, "Measuring Scalability of
// Resource Management Systems" (IPDPS 2005).
//
// The package exposes three layers:
//
//   - A grid simulator: a discrete-event model of a managed distributed
//     system (resource pool in clusters, schedulers, status estimators,
//     routed network) that accounts useful work F, RMS overhead G and
//     RP overhead H.
//   - Seven RMS models from the paper: CENTRAL, LOWEST, RESERVE,
//     AUCTION, S-I, R-I and Sy-I, all implementing the Policy
//     interface; custom policies plug in the same way.
//   - The scalability measurement framework: the isoefficiency metric,
//     the simulated-annealing enabler tuner, and the four-step
//     measurement procedure producing minimal-overhead curves G(k).
//
// Quick start:
//
//	cfg := rmscale.DefaultConfig()
//	eng, err := rmscale.NewEngine(cfg, rmscale.NewLowest())
//	if err != nil { ... }
//	fmt.Println(eng.Run())
//
// To measure scalability, implement or reuse an Evaluator and call
// Measure, or run one of the paper's experiment cases with RunCase1
// through RunCase4.
package rmscale

import (
	"io"
	"os"

	"rmscale/internal/audit"
	"rmscale/internal/audit/chaos"
	"rmscale/internal/experiments"
	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/runner"
	"rmscale/internal/scale"
	"rmscale/internal/sim"
	"rmscale/internal/stats"
	"rmscale/internal/topology"
	"rmscale/internal/workload"
)

// Simulation layer.
type (
	// Config describes one grid simulation run.
	Config = grid.Config
	// CostModel fixes per-operation RMS costs.
	CostModel = grid.CostModel
	// Enablers are the tunable scaling enablers y(k).
	Enablers = grid.Enablers
	// Protocol fixes the RMS protocol constants (Table 1 and friends).
	Protocol = grid.Protocol
	// FaultModel injects resource crashes and update loss.
	FaultModel = grid.FaultModel
	// GridSpec lays out clusters, cluster size and estimators.
	GridSpec = topology.GridSpec
	// Engine is a runnable simulation.
	Engine = grid.Engine
	// Summary condenses a run into the paper's accounting terms.
	Summary = grid.Summary
	// Metrics is the full in-run accounting.
	Metrics = grid.Metrics
	// Policy is the RMS model interface.
	Policy = grid.Policy
	// Scheduler is the per-cluster decision maker handed to policies.
	Scheduler = grid.Scheduler
	// Message is an inter-scheduler protocol message.
	Message = grid.Message
	// JobCtx is the envelope a job travels in.
	JobCtx = grid.JobCtx
	// Substrate is the shareable topology+routing build.
	Substrate = grid.Substrate
	// SubstrateCache memoizes substrates for tuners.
	SubstrateCache = grid.SubstrateCache
)

// Measurement layer.
type (
	// Band is the isoefficiency band.
	Band = scale.Band
	// Enabler is one tunable dimension of the measurement.
	Enabler = scale.Enabler
	// Evaluator runs the system at scale k with given enabler values.
	Evaluator = scale.Evaluator
	// EvaluatorFunc adapts a function to Evaluator.
	EvaluatorFunc = scale.EvaluatorFunc
	// Observation is one evaluation's accounting.
	Observation = scale.Observation
	// MeasureSpec configures the measurement procedure.
	MeasureSpec = scale.MeasureSpec
	// Measurement is the tuned G(k) curve with derived quantities.
	Measurement = scale.Measurement
	// Point is the tuned result at one scale factor.
	Point = scale.Point
	// IsoAnalysis carries the closed-form isoefficiency constants.
	IsoAnalysis = scale.IsoAnalysis
	// Variable is a named scaling variable x(k).
	Variable = scale.Variable
)

// Reporting layer.
type (
	// Series is one named curve.
	Series = stats.Series
	// SeriesSet is one figure (a set of curves over a shared axis).
	SeriesSet = stats.SeriesSet
	// ChartOptions sizes the terminal rendering of a figure.
	ChartOptions = stats.ChartOptions
	// Fidelity selects experiment runtime cost.
	Fidelity = experiments.Fidelity
	// CaseResult is the outcome of one experiment case.
	CaseResult = experiments.Result
	// ChurnResult pairs a case's fault-free and degraded measurements.
	ChurnResult = experiments.ChurnResult
)

// Execution layer (the runner subsystem): parallel, cached,
// checkpoint/resumable experiment execution.
type (
	// RunSpec configures experiment execution: worker count, run
	// directory (disk cache + checkpoint journal + runstate.json),
	// progress sinks and cancellation.
	RunSpec = experiments.RunSpec
	// RunSnapshot is the machine-readable progress state the runner
	// writes to runstate.json.
	RunSnapshot = runner.Snapshot
)

// Robustness layer (the audit subsystem): runtime invariant auditing
// and the chaos harness that hunts for schedules breaking it.
type (
	// AuditMode selects off / record / fail-fast enforcement.
	AuditMode = audit.Mode
	// AuditConfig parameterizes an attached auditor.
	AuditConfig = audit.Config
	// Auditor checks the engine's conservation laws at runtime.
	Auditor = audit.Auditor
	// AuditViolation is one invariant breach observed at a checkpoint.
	AuditViolation = audit.Violation
	// ChaosSchedule is one runnable fault scenario (the reproducer
	// JSON format).
	ChaosSchedule = chaos.Schedule
	// ChaosCrash scripts one RMS-node outage.
	ChaosCrash = chaos.Crash
	// ChaosWindow scripts one protocol-loss interval.
	ChaosWindow = chaos.Window
	// ChaosCorruption scripts one metric falsification (self-test).
	ChaosCorruption = chaos.Corruption
	// ChaosReport is the audit outcome of one schedule run.
	ChaosReport = chaos.Report
	// ChaosOptions configures a chaos sweep.
	ChaosOptions = chaos.Options
	// ChaosFinding is one violating schedule with replay and shrink
	// evidence.
	ChaosFinding = chaos.Finding
	// ChaosResult summarizes a chaos sweep.
	ChaosResult = chaos.Result
)

// Audit enforcement modes.
const (
	AuditOff      = audit.Off
	AuditRecord   = audit.Record
	AuditFailFast = audit.FailFast
)

// AttachAuditor wires a runtime invariant auditor into an engine. Call
// it after NewEngine (and any scripted fault injection) and before Run.
func AttachAuditor(e *Engine, cfg AuditConfig) (*Auditor, error) {
	return audit.Attach(e, cfg)
}

// ChaosSweep generates random fault schedules, runs each against an
// audited engine on the runner pool, replays every violation to
// confirm deterministic reproduction, and shrinks failing schedules to
// minimal JSON reproducers.
func ChaosSweep(opts ChaosOptions) (ChaosResult, error) { return chaos.Sweep(opts) }

// RunChaosSchedule executes one chaos schedule (for example a loaded
// reproducer) against an audited engine.
func RunChaosSchedule(s ChaosSchedule) (ChaosReport, error) { return chaos.Run(s) }

// ReadChaosSchedule loads and validates a chaos reproducer file.
func ReadChaosSchedule(path string) (ChaosSchedule, error) { return chaos.ReadJSON(path) }

// RunCaseSpec runs one experiment case under full execution control.
func RunCaseSpec(id int, spec RunSpec) (*CaseResult, error) {
	return experiments.RunCaseSpec(id, spec)
}

// RunAllSpec runs all four cases on one shared work-stealing pool.
func RunAllSpec(spec RunSpec) ([]*CaseResult, error) {
	return experiments.RunAllSpec(spec)
}

// ChurnFaults returns the fixed fault load of the degraded-mode
// experiment: scheduler and estimator crash/repair cycles, protocol
// message loss and access-link outages with timeout/retry armed.
func ChurnFaults() FaultModel { return experiments.ChurnFaults() }

// RunChurnSpec runs one case fault-free and again under the fault
// load, re-tuning the scaling enablers per model in both, and returns
// the paired measurements for the scalability-under-churn comparison.
func RunChurnSpec(id int, fm FaultModel, spec RunSpec) (*ChurnResult, error) {
	return experiments.RunChurnSpec(id, fm, spec)
}

// WriteFileAtomic writes data to path via a same-directory temp file
// and rename, so an interrupted writer never leaves a truncated file.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return runner.WriteFileAtomic(path, data, perm)
}

// Fidelity levels for the experiment drivers.
const (
	Smoke = experiments.Smoke
	Quick = experiments.Quick
	Full  = experiments.Full
)

// DefaultConfig returns the base (k=1) stressed-grid configuration.
func DefaultConfig() Config { return grid.DefaultConfig() }

// DefaultCosts returns the calibrated per-operation cost model.
func DefaultCosts() CostModel { return grid.DefaultCosts() }

// DefaultEnablers returns a sane enabler starting point.
func DefaultEnablers() Enablers { return grid.DefaultEnablers() }

// DefaultProtocol returns the paper's protocol constants.
func DefaultProtocol() Protocol { return grid.DefaultProtocol() }

// NewEngine builds a runnable simulation for the config and policy.
func NewEngine(cfg Config, p Policy) (*Engine, error) { return grid.New(cfg, p) }

// NewEngineWith is NewEngine sharing a pre-built substrate.
func NewEngineWith(cfg Config, p Policy, s *Substrate) (*Engine, error) {
	return grid.NewWith(cfg, p, s)
}

// BuildSubstrate constructs the topology+routing substrate for a config.
func BuildSubstrate(cfg Config) (*Substrate, error) { return grid.BuildSubstrate(cfg) }

// NewSubstrateCache returns an empty substrate cache.
func NewSubstrateCache() *SubstrateCache { return grid.NewSubstrateCache() }

// Models returns fresh instances of the paper's seven RMS models.
func Models() []Policy { return rms.All() }

// ModelNames lists the models in the paper's order.
func ModelNames() []string { return rms.Names() }

// ModelByName returns a fresh instance of the named model.
func ModelByName(name string) (Policy, error) { return rms.ByName(name) }

// NewCentral returns the CENTRAL model.
func NewCentral() Policy { return rms.NewCentral() }

// NewLowest returns the LOWEST model.
func NewLowest() Policy { return rms.NewLowest() }

// NewReserve returns the RESERVE model.
func NewReserve() Policy { return rms.NewReserve() }

// NewAuction returns the AUCTION model.
func NewAuction() Policy { return rms.NewAuction() }

// NewSenderInitiated returns the S-I model.
func NewSenderInitiated() Policy { return rms.NewSenderInitiated() }

// NewReceiverInitiated returns the R-I model.
func NewReceiverInitiated() Policy { return rms.NewReceiverInitiated() }

// NewSymmetric returns the Sy-I model.
func NewSymmetric() Policy { return rms.NewSymmetric() }

// NewHierarchy returns the two-level hierarchical RMS — an extension
// beyond the paper's seven models implementing its future-work item on
// complex RMS architectures. It is not part of Models().
func NewHierarchy() Policy { return rms.NewHierarchy() }

// PaperBand returns the paper's isoefficiency band [0.38, 0.42].
func PaperBand() Band { return scale.PaperBand() }

// Measure runs the paper's four-step scalability measurement procedure.
func Measure(ev Evaluator, spec MeasureSpec) (*Measurement, error) {
	return scale.Measure(ev, spec)
}

// NewIsoAnalysis derives the isoefficiency constants c and c' from a
// base observation and a target efficiency.
func NewIsoAnalysis(base Observation, e0 float64) (IsoAnalysis, error) {
	return scale.NewIsoAnalysis(base, e0)
}

// ConditionReport finds the first scale factor violating the
// isoefficiency condition f(k) > c*g(k), or -1.
func ConditionReport(m *Measurement) (int, error) { return scale.ConditionReport(m) }

// ParseFidelity converts "smoke", "quick" or "full".
func ParseFidelity(s string) (Fidelity, error) { return experiments.ParseFidelity(s) }

// RunCase1 reproduces Figure 2 (scaling the RP by network size).
func RunCase1(f Fidelity, seed int64, progress func(string, Point)) (*CaseResult, error) {
	return experiments.RunCase1(f, seed, progress)
}

// RunCase2 reproduces Figure 3 (scaling the RP by service rate).
func RunCase2(f Fidelity, seed int64, progress func(string, Point)) (*CaseResult, error) {
	return experiments.RunCase2(f, seed, progress)
}

// RunCase3 reproduces Figures 4, 6 and 7 (scaling the RMS by estimator
// count).
func RunCase3(f Fidelity, seed int64, progress func(string, Point)) (*CaseResult, error) {
	return experiments.RunCase3(f, seed, progress)
}

// RunCase4 reproduces Figure 5 (scaling the RMS by L_p).
func RunCase4(f Fidelity, seed int64, progress func(string, Point)) (*CaseResult, error) {
	return experiments.RunCase4(f, seed, progress)
}

// RunAll runs all four cases.
func RunAll(f Fidelity, seed int64, progress func(string, Point)) ([]*CaseResult, error) {
	return experiments.RunAll(f, seed, progress)
}

// Workload layer.
type (
	// Job is one unit of user work.
	Job = workload.Job
	// WorkloadParams configures the synthetic generator.
	WorkloadParams = workload.Params
	// Trace bundles generated jobs with their parameters.
	Trace = workload.Trace
	// SWFOptions configures Standard Workload Format import.
	SWFOptions = workload.SWFOptions
	// JWParams configures the Jogalekar-Woodside comparison metric.
	JWParams = scale.JWParams
	// JWResult is the Jogalekar-Woodside metric over a measurement.
	JWResult = scale.JWResult
)

// GenerateWorkload produces the synthetic job stream for the params,
// deterministic in seed.
func GenerateWorkload(p WorkloadParams, seed int64) ([]*Job, error) {
	return workload.Generate(p, sim.NewSource(seed).Stream("workload"))
}

// ReadSWF imports a Standard Workload Format trace; benefit factors
// are drawn deterministically from seed.
func ReadSWF(r io.Reader, opts SWFOptions, seed int64) ([]*Job, error) {
	return workload.ReadSWF(r, opts, sim.NewSource(seed).Stream("swf"))
}

// WriteSWF exports jobs in the Standard Workload Format.
func WriteSWF(w io.Writer, jobs []*Job) error { return workload.WriteSWF(w, jobs) }

// Scaling-path search (the measurement procedure's Step 2).
type (
	// PathVar is one scaling variable the RP search may adjust.
	PathVar = scale.PathVar
	// PathSpec configures the scaling-path search.
	PathSpec = scale.PathSpec
	// PathEvaluatorFunc adapts a function to the path evaluator.
	PathEvaluatorFunc = scale.PathEvaluatorFunc
	// Path is a found scaling path.
	Path = scale.Path
)

// FindScalingPath searches for the cheapest feasible evolution of the
// scaling variables — the paper's "identify the scaling path over
// which the system functions profitably".
func FindScalingPath(ev scale.PathEvaluator, spec PathSpec) (*Path, error) {
	return scale.FindScalingPath(ev, spec)
}

// JogalekarWoodside evaluates the throughput-based scalability metric
// of Jogalekar & Woodside (the paper's related-work comparator) over a
// measurement, for side-by-side comparison with the overhead-based
// isoefficiency metric.
func JogalekarWoodside(m *Measurement, p JWParams) (*JWResult, error) {
	return scale.JogalekarWoodside(m, p)
}

// AblationResult is one ablation study's comparison table.
type AblationResult = experiments.AblationResult

// Tuner selects the optimizer for Measure: TunerAnneal (the paper's
// simulated annealing) or TunerGrid (the exhaustive baseline).
type Tuner = scale.Tuner

// Tuner values.
const (
	TunerAnneal = scale.TunerAnneal
	TunerGrid   = scale.TunerGrid
)

// RunAblations executes every ablation study (update suppression,
// estimator layer, middleware provisioning, tuner choice, fault
// injection).
func RunAblations(f Fidelity, seed int64) ([]*AblationResult, error) {
	return experiments.AllAblations(f, seed)
}

// RPOverheadFigure derives the future-work h(k) curves from a case
// result: scalability measured on the RP overhead instead of the RMS
// overhead.
func RPOverheadFigure(r *CaseResult) *SeriesSet {
	return experiments.MeasureRPOverhead(r)
}

// PaperConstantsTable renders Table 1 (the common experiment
// constants).
func PaperConstantsTable(w io.Writer) error {
	return experiments.PaperConstants().WriteTable1(w)
}

// ScalingTables renders Tables 2-5 (scaling variables and enablers per
// case).
func ScalingTables(w io.Writer) error { return experiments.WriteScalingTables(w) }

// ModelRoster renders the seven evaluated models with their protocol
// descriptions (the paper's Section 3.3 taxonomy).
func ModelRoster(w io.Writer) error { return experiments.WriteModelRoster(w) }
