package rms

import (
	"rmscale/internal/grid"
	"rmscale/internal/sim"
)

// advertisement records a received R-I style capacity advertisement.
type advertisement struct {
	from int
	at   sim.Time
}

// syiState combines S-I poll bookkeeping with an advertisement book.
type syiState struct {
	siState
	ads []advertisement
}

// Symmetric is the paper's Sy-I model, combining S-I and R-I: each
// scheduler advertises its own underutilized resources periodically, as
// in R-I; a scheduler holding a new REMOTE job sends it to an
// advertiser when it holds a fresh advertisement, and falls back to the
// S-I polling approach when no advertisements are on hand.
type Symmetric struct{}

// NewSymmetric returns the Sy-I model.
func NewSymmetric() *Symmetric { return &Symmetric{} }

// Name implements grid.Policy.
func (*Symmetric) Name() string { return "Sy-I" }

// Central implements grid.Policy.
func (*Symmetric) Central() bool { return false }

// UsesMiddleware implements grid.Policy.
func (*Symmetric) UsesMiddleware() bool { return true }

// Attach initializes the combined state.
func (*Symmetric) Attach(e *grid.Engine) {
	for c := 0; c < e.Clusters(); c++ {
		e.Scheduler(c).State = &syiState{
			siState: siState{sessions: make(map[int]*siSession)},
		}
	}
}

// OnTick advertises underutilized capacity: Sy-I advertises whenever
// any of its resources is underutilized (an idle or near-idle resource
// exists in the believed view), which keeps its push machinery active
// across load regimes — part of why the paper finds it the least
// scalable model.
func (*Symmetric) OnTick(s *grid.Scheduler) {
	proto := s.Engine().Cfg.Protocol
	s.ExecDecision(len(s.LocalResources()), func() {
		if _, least, ok := s.LeastLoadedLocal(); !ok || least >= proto.ThresholdLoad {
			return
		}
		for _, p := range s.RandomPeers(proto.Lp) {
			s.SendPolicy(p, msgRIVolunteer, nil)
		}
	})
}

// OnJob consumes a fresh advertisement when one is on hand, else falls
// back to S-I polling.
func (*Symmetric) OnJob(s *grid.Scheduler, ctx *grid.JobCtx) {
	if mustPlaceLocally(s, ctx) {
		placeLocally(s, ctx)
		return
	}
	st := s.State.(*syiState)
	proto := s.Engine().Cfg.Protocol
	now := s.Now()
	// Drop stale advertisements.
	fresh := st.ads[:0]
	for _, ad := range st.ads {
		if now-ad.at <= proto.ReservationTTL {
			fresh = append(fresh, ad)
		}
	}
	st.ads = fresh
	if len(st.ads) > 0 {
		// Use the most recent advertisement: schedule locally or send
		// to the advertiser, whichever looks cheaper.
		ad := st.ads[len(st.ads)-1]
		st.ads = st.ads[:len(st.ads)-1]
		s.ExecDecision(len(s.LocalResources()), func() {
			e := s.Engine()
			if s.AvgLocalLoad() < proto.ThresholdLoad && e.AWT(s) <= e.MeanServiceTime() {
				placeLocally(s, ctx)
				return
			}
			s.TransferJob(ctx, ad.from)
		})
		return
	}
	siPoll(s, &st.siState, ctx)
}

// OnMessage records advertisements and delegates the rest to the S-I
// protocol.
func (*Symmetric) OnMessage(s *grid.Scheduler, m *grid.Message) {
	st := s.State.(*syiState)
	if m.Kind == msgRIVolunteer {
		st.ads = append(st.ads, advertisement{from: m.From, at: s.Now()})
		const maxAds = 64
		if len(st.ads) > maxAds {
			st.ads = st.ads[len(st.ads)-maxAds:]
		}
		return
	}
	siHandle(s, &st.siState, m)
}

// OnStatus charges the PUSH-side trigger evaluation: Sy-I consumes
// status information for both its advertising decision and its S-I
// estimates, so every fresh batch costs a check — the property that
// makes the PUSH+PULL hybrids sensitive to the estimator count.
func (*Symmetric) OnStatus(s *grid.Scheduler, updated []int) {
	s.Exec(s.Engine().Cfg.Costs.TriggerCheck, func() {})
}
