// Quickstart: run one grid simulation with the LOWEST resource
// management system and print the paper's accounting terms.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rmscale"
)

func main() {
	// The default configuration is the paper's stressed base grid:
	// 8 clusters of 10 resources at ~0.9 utilization, jobs classified
	// LOCAL/REMOTE by T_CPU = 700, benefit factors in [2,5].
	cfg := rmscale.DefaultConfig()

	eng, err := rmscale.NewEngine(cfg, rmscale.NewLowest())
	if err != nil {
		log.Fatal(err)
	}
	sum := eng.Run()

	fmt.Println("LOWEST on the base grid:")
	fmt.Printf("  useful work F     %.0f\n", sum.F)
	fmt.Printf("  RMS overhead G    %.0f\n", sum.G)
	fmt.Printf("  RP overhead H     %.0f\n", sum.H)
	fmt.Printf("  efficiency E      %.3f   (paper band: 0.38 - 0.42)\n", sum.Efficiency)
	fmt.Printf("  throughput        %.4f jobs per time unit\n", sum.Throughput)
	fmt.Printf("  mean response     %.1f time units\n", sum.MeanResponse)
	fmt.Printf("  success rate      %.3f\n", sum.SuccessRate)

	// The same configuration under the centralized scheduler: one
	// decision maker for the whole pool, so the RMS overhead is lower
	// at this small scale — the paper's base-scale observation.
	ceng, err := rmscale.NewEngine(cfg, rmscale.NewCentral())
	if err != nil {
		log.Fatal(err)
	}
	csum := ceng.Run()
	fmt.Printf("\nCENTRAL on the same grid: G = %.0f (vs LOWEST's %.0f)\n", csum.G, sum.G)
}
