// Package helper plays the laundering utility package: it is outside
// the SimVisible list, so the direct nowallclock/noglobalrand
// analyzers never see it, and only the transitive taint analyzer can
// follow a wall-clock read back out of it. Never built by the module.
package helper

import "time"

// now is the raw source two hops below the boundary.
func now() int64 { return time.Now().UnixNano() }

// Stamp launders the wall clock through one local hop; its own call
// is already reported here, inside the helper package.
func Stamp() int64 {
	return now() // want "reaches time\\.Now"
}

// Sanctioned cuts the chain at the source: one annotation on the
// time.Now line serves nowallclock, noglobalrand and detertaint
// alike, so callers of Sanctioned stay clean.
func Sanctioned() int64 {
	//lint:allow detertaint fixture: sanctioned wall-clock read for a report timestamp
	return time.Now().UnixNano()
}
