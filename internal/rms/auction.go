package rms

import (
	"math"

	"rmscale/internal/grid"
	"rmscale/internal/sim"
)

// Message kinds for AUCTION (it reuses the LOWEST poll kinds for its
// initial scheduling, so auction kinds start above them).
const (
	msgAuctionInvite = iota + 100
	msgAuctionBid
	msgAuctionAward
)

// auctionBid carries a bid and its auction id.
type auctionBid struct {
	id   int
	load float64 // bidder's most loaded resource
}

// openAuction tracks the best bid of one running auction.
type openAuction struct {
	bestLoad float64
	bestFrom int
}

// auctionState is the per-scheduler state of the AUCTION model; it
// embeds the LOWEST poll state because initial scheduling follows
// LOWEST.
type auctionState struct {
	lowestState
	nextAuction int
	open        map[int]*openAuction // auction id -> best bid so far
	lastAuction sim.Time
}

// Auction is the paper's AUCTION model (after Leland & Ott): initial
// scheduling follows LOWEST; additionally, when a scheduler finds a
// resource in its cluster idle or below the threshold load, it invites
// L_p neighbouring schedulers to an auction. Schedulers with a resource
// loaded above the threshold bid; after a small accumulation window the
// auctioneer awards to the highest-loaded bidder, which migrates one
// waiting job to the auctioneer's cluster.
type Auction struct {
	lowest Lowest // reused for initial scheduling
}

// NewAuction returns the AUCTION model.
func NewAuction() *Auction { return &Auction{} }

// Name implements grid.Policy.
func (*Auction) Name() string { return "AUCTION" }

// Central implements grid.Policy.
func (*Auction) Central() bool { return false }

// UsesMiddleware implements grid.Policy.
func (*Auction) UsesMiddleware() bool { return false }

// Attach initializes the combined LOWEST + auction state.
func (*Auction) Attach(e *grid.Engine) {
	for c := 0; c < e.Clusters(); c++ {
		e.Scheduler(c).State = &auctionState{
			lowestState: lowestState{sessions: make(map[int]*lowestSession)},
			open:        make(map[int]*openAuction),
			lastAuction: -math.MaxFloat64,
		}
	}
}

// OnJob delegates to LOWEST's arrival handling.
func (a *Auction) OnJob(s *grid.Scheduler, ctx *grid.JobCtx) {
	a.lowest.OnJob(s, ctx)
}

// OnStatus evaluates the auction trigger against every batch of fresh
// status information — the paper's "when a scheduler S_a finds a
// resource in its cluster is idle or has load below threshold T_l".
// Each batch costs a trigger check, so the model's overhead grows with
// the rate status arrives: direct updates without estimators, digest
// heartbeats with them — the Figure 4 coupling.
func (a *Auction) OnStatus(s *grid.Scheduler, updated []int) {
	st := auctionStateOf(s)
	proto := s.Engine().Cfg.Protocol
	cooldown := proto.BidWindow
	if vi := s.Engine().Cfg.Enablers.VolunteerInterval; vi > cooldown {
		cooldown = vi
	}
	s.Exec(s.Engine().Cfg.Costs.TriggerCheck, func() {
		if s.Now()-st.lastAuction < cooldown {
			return
		}
		// Trigger on a believed-idle resource; T_l bounds how loaded a
		// "near idle" resource may look before it stops counting.
		_, least, ok := s.LeastLoadedLocal()
		if !ok || least > 0 || least >= proto.ThresholdLoad {
			return
		}
		st.lastAuction = s.Now()
		id := st.nextAuction
		st.nextAuction++
		st.open[id] = &openAuction{bestLoad: -1, bestFrom: -1}
		// Opening the auction costs a scan plus the invitations.
		s.ExecDecision(len(s.LocalResources()), func() {
			for _, p := range s.RandomPeers(proto.Lp) {
				s.SendPolicy(p, msgAuctionInvite, id)
			}
			s.Engine().K.After(proto.BidWindow, func() { a.closeAuction(s, id) })
		})
	})
}

// OnTick implements grid.Policy; auctions are status-triggered.
func (*Auction) OnTick(*grid.Scheduler) {}

// closeAuction awards the accumulated best bid.
func (*Auction) closeAuction(s *grid.Scheduler, id int) {
	st := auctionStateOf(s)
	best, ok := st.open[id]
	if !ok {
		return
	}
	delete(st.open, id)
	if best.bestFrom < 0 {
		return // no bids
	}
	s.ExecMsg(func() {
		s.SendPolicy(best.bestFrom, msgAuctionAward, id)
	})
}

// OnMessage handles invitations, bids and awards, delegating poll kinds
// to LOWEST.
func (a *Auction) OnMessage(s *grid.Scheduler, m *grid.Message) {
	switch m.Kind {
	case msgAuctionInvite:
		id := m.Payload.(int)
		proto := s.Engine().Cfg.Protocol
		s.ExecDecision(len(s.LocalResources()), func() {
			if load := s.MaxLocalLoad(); load > proto.ThresholdLoad {
				s.SendPolicy(m.From, msgAuctionBid, auctionBid{id: id, load: load})
			}
		})
	case msgAuctionBid:
		bid := m.Payload.(auctionBid)
		st := auctionStateOf(s)
		best, ok := st.open[bid.id]
		if !ok {
			return // auction already closed
		}
		if bid.load > best.bestLoad {
			best.bestLoad = bid.load
			best.bestFrom = m.From
		}
	case msgAuctionAward:
		// We won: migrate one waiting job to the auctioneer.
		if ctx := s.Engine().StealQueuedJob(s.Cluster()); ctx != nil {
			s.TransferJob(ctx, m.From)
		}
	default:
		a.lowest.OnMessage(s, m)
	}
}

// auctionStateOf extracts the auction state.
func auctionStateOf(s *grid.Scheduler) *auctionState { return s.State.(*auctionState) }
