package nokernelgoroutines

import sync2 "sync" //lint:allow nokernelgoroutines fixture stand-in for a justified cross-run cache mutex

// cache shows the annotated-import escape hatch: the one sync import
// this file declares is covered by the directive above.
type cache struct {
	mu sync2.Mutex
	m  map[string]int
}
