// Package grid simulates the paper's managed distributed system: a
// resource pool (the managee) partitioned into non-overlapping clusters,
// coordinated by schedulers and optional status estimators (the manager,
// i.e. the RMS), connected by a routed network. It accounts useful work
// F, RMS overhead G and RP overhead H exactly as the paper defines them:
// G is the overall time spent by schedulers (and estimators) scheduling,
// receiving, and processing updates; F is the useful work delivered to
// clients (runtime of jobs that complete within their benefit bound);
// H is the job-control overhead of the resource pool.
package grid

import (
	"fmt"
	"math"

	"rmscale/internal/sim"
	"rmscale/internal/topology"
	"rmscale/internal/workload"
)

// CostModel fixes the CPU cost, in simulated time units of RMS-node
// work, of each management operation. These constants calibrate the
// absolute magnitude of G; the scalability metric normalizes them away,
// but their ratios determine which protocol is heavier.
type CostModel struct {
	// UpdateBatchBase is the fixed cost of processing one status
	// update batch (a digest, or a lone update).
	UpdateBatchBase float64
	// UpdatePer is the marginal cost per update inside a batch.
	UpdatePer float64
	// DecisionBase is the fixed cost of one scheduling decision.
	DecisionBase float64
	// DecisionPer is the marginal cost per candidate scanned during a
	// decision (the term that makes a naive central scan expensive).
	DecisionPer float64
	// Message is the cost of sending or processing one protocol
	// message (poll, reply, bid, reservation, advertisement, ...).
	Message float64
	// EstimatorPer is the estimator-side cost per update relayed.
	EstimatorPer float64
	// TriggerCheck is the cost a push-style model (AUCTION, Sy-I) pays
	// to evaluate its trigger condition against each batch of fresh
	// status information — the PUSH side of "both PUSH and PULL
	// techniques for status estimations" that makes those models
	// sensitive to the number of status estimators (Figure 4).
	TriggerCheck float64
	// JobControl is the per-job RP overhead (dispatch, start, cleanup)
	// accounted into H.
	JobControl float64
	// SchedulerSpeed is how many cost units a scheduler or estimator
	// retires per simulated time unit; it bounds RMS throughput and is
	// what saturates a central scheduler at scale.
	SchedulerSpeed float64
}

// DefaultCosts returns the calibration used by the paper reproduction.
// Costs are in simulated time units of RMS-node work with unit speed, so
// one cost unit is one time unit of scheduler busy time; the constants
// are chosen so a stressed base configuration lands in the paper's
// efficiency band E in [0.38, 0.42] once the enablers are tuned, and so
// a central scheduler saturates at the scale factors the paper reports.
func DefaultCosts() CostModel {
	return CostModel{
		UpdateBatchBase: 0.005,
		UpdatePer:       0.05,
		DecisionBase:    0.1,
		DecisionPer:     0.001,
		Message:         0.12,
		EstimatorPer:    0.01,
		TriggerCheck:    0.04,
		// JobControl models the grid-era job control and data staging
		// overhead per job — the paper's dominant H component. It is
		// calibrated against the ~524-unit mean job runtime so that
		// E = F/(F+G+H) has a ceiling just above 0.42: the paper's
		// efficiency band [0.38, 0.42] is then exactly the region
		// where the RMS keeps nearly all work useful, which couples
		// the band to information freshness without degenerating.
		JobControl:     700,
		SchedulerSpeed: 4,
	}
}

// Validate reports the first nonsensical cost.
func (c CostModel) Validate() error {
	switch {
	case c.UpdateBatchBase < 0 || c.UpdatePer < 0 || c.DecisionBase < 0 ||
		c.DecisionPer < 0 || c.Message < 0 || c.EstimatorPer < 0 ||
		c.TriggerCheck < 0 || c.JobControl < 0:
		return fmt.Errorf("grid: negative cost in %+v", c)
	case c.SchedulerSpeed <= 0:
		return fmt.Errorf("grid: SchedulerSpeed must be positive, got %v", c.SchedulerSpeed)
	}
	return nil
}

// Enablers are the paper's "scaling enablers" y(k): the tunable knobs
// the simulated annealing search adjusts at each scale factor to keep
// efficiency constant at minimum overhead (Tables 2-5).
type Enablers struct {
	// UpdateInterval is the status update period tau.
	UpdateInterval float64
	// NeighborhoodSize is how many remote schedulers each scheduler
	// keeps in its candidate set (>= Lp for polling to work).
	NeighborhoodSize int
	// LinkDelayScale multiplies every network path latency.
	LinkDelayScale float64
	// VolunteerInterval is the period of the push-side checks
	// (reservations, auctions, R-I advertisements); Table 5 calls it
	// the "interval for resource volunteering".
	VolunteerInterval float64
}

// DefaultEnablers returns a sane starting point for tuning.
func DefaultEnablers() Enablers {
	return Enablers{
		UpdateInterval:    40,
		NeighborhoodSize:  8,
		LinkDelayScale:    1,
		VolunteerInterval: 80,
	}
}

// Validate reports the first out-of-range enabler.
func (e Enablers) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"UpdateInterval", e.UpdateInterval},
		{"LinkDelayScale", e.LinkDelayScale},
		{"VolunteerInterval", e.VolunteerInterval},
	} {
		if !finite(v.val) {
			return fmt.Errorf("grid: %s must be finite, got %v", v.name, v.val)
		}
	}
	switch {
	case e.UpdateInterval <= 0:
		return fmt.Errorf("grid: UpdateInterval must be positive, got %v", e.UpdateInterval)
	case e.NeighborhoodSize < 1:
		return fmt.Errorf("grid: NeighborhoodSize must be >= 1, got %d", e.NeighborhoodSize)
	case e.LinkDelayScale <= 0:
		return fmt.Errorf("grid: LinkDelayScale must be positive, got %v", e.LinkDelayScale)
	case e.VolunteerInterval <= 0:
		return fmt.Errorf("grid: VolunteerInterval must be positive, got %v", e.VolunteerInterval)
	}
	return nil
}

// Protocol fixes the non-tunable protocol constants shared by the RMS
// models (Table 1 of the paper, plus the model-specific constants the
// paper states inline).
type Protocol struct {
	// Lp is the number of remote schedulers probed/polled (the Case 4
	// scaling variable).
	Lp int
	// ThresholdLoad is T_l, the threshold load at a scheduler (0.5).
	ThresholdLoad float64
	// RUSDelta is the R-I underutilization threshold delta.
	RUSDelta float64
	// Psi is the S-I turnaround-time tie tolerance.
	Psi float64
	// SuppressDelta is the minimum load change (in queue-length units)
	// for a periodic update to be sent rather than suppressed.
	SuppressDelta float64
	// BidWindow is how long an auctioning scheduler accumulates bids.
	BidWindow float64
	// ReservationTTL is how long a reservation stays valid.
	ReservationTTL float64
	// MiddlewareTime is the service time of the grid middleware queue
	// the S-I/R-I/Sy-I models communicate through.
	MiddlewareTime float64
	// EstimatorInterval is the fixed cadence at which status
	// estimators broadcast digests to the scheduling decision makers.
	// It is infrastructure cadence, not a tunable enabler: scaling the
	// estimator layer multiplies this traffic no matter how the RMS is
	// tuned, which is the Figure 4 effect.
	EstimatorInterval float64
}

// DefaultProtocol returns the paper's constants where stated and
// reasonable values where the paper is silent.
func DefaultProtocol() Protocol {
	return Protocol{
		Lp:                3,
		ThresholdLoad:     0.5,
		RUSDelta:          0.25,
		Psi:               50,
		SuppressDelta:     0.5,
		BidWindow:         10,
		ReservationTTL:    400,
		MiddlewareTime:    0.5,
		EstimatorInterval: 20,
	}
}

// Validate reports the first out-of-range protocol constant.
func (p Protocol) Validate() error {
	switch {
	case p.Lp < 1:
		return fmt.Errorf("grid: Lp must be >= 1, got %d", p.Lp)
	case p.ThresholdLoad <= 0:
		return fmt.Errorf("grid: ThresholdLoad must be positive, got %v", p.ThresholdLoad)
	case p.RUSDelta < 0:
		return fmt.Errorf("grid: negative RUSDelta %v", p.RUSDelta)
	case p.Psi < 0:
		return fmt.Errorf("grid: negative Psi %v", p.Psi)
	case p.SuppressDelta < 0:
		return fmt.Errorf("grid: negative SuppressDelta %v", p.SuppressDelta)
	case p.BidWindow <= 0:
		return fmt.Errorf("grid: BidWindow must be positive, got %v", p.BidWindow)
	case p.ReservationTTL <= 0:
		return fmt.Errorf("grid: ReservationTTL must be positive, got %v", p.ReservationTTL)
	case p.MiddlewareTime < 0:
		return fmt.Errorf("grid: negative MiddlewareTime %v", p.MiddlewareTime)
	case p.EstimatorInterval <= 0:
		return fmt.Errorf("grid: EstimatorInterval must be positive, got %v", p.EstimatorInterval)
	}
	return nil
}

// FaultModel injects failures for robustness studies; the zero value
// disables all of it (the paper's experiments run fault-free). Every
// fault process draws from its own dedicated named RNG stream, so a
// fault-free configuration is byte-identical to a run built before the
// fault layer existed, and enabling one fault class never perturbs the
// workload, topology or any other fault class.
type FaultModel struct {
	// ResourceMTBF is the mean time between resource crashes; 0
	// disables crashes. Queued jobs on a crashed resource are lost.
	ResourceMTBF float64
	// RepairTime is how long a crashed resource stays down.
	RepairTime float64
	// UpdateLossProb drops each status update/digest message with this
	// probability (protocol messages are governed by MsgLossProb).
	UpdateLossProb float64

	// SchedulerMTBF is the mean time between scheduler crashes; 0
	// disables them. A crashed scheduler loses its queued CPU work and
	// the jobs it holds are re-homed to the first live cluster in its
	// peer list (or parked until repair when no peer is alive).
	SchedulerMTBF float64
	// SchedulerRepair is how long a crashed scheduler stays down.
	SchedulerRepair float64
	// EstimatorMTBF is the mean time between estimator crashes; 0
	// disables them. While an estimator is down its resources fall back
	// to direct scheduler updates.
	EstimatorMTBF float64
	// EstimatorRepair is how long a crashed estimator stays down.
	EstimatorRepair float64
	// MsgLossProb drops each protocol message (poll, bid, reservation,
	// job transfer, ...) with this probability.
	MsgLossProb float64
	// LinkOutageMTBF is the mean time between access-link outages per
	// grid endpoint; 0 disables them. During an outage window every
	// message to or from the severed endpoint is lost.
	LinkOutageMTBF float64
	// LinkOutageDuration is how long each outage window lasts.
	LinkOutageDuration float64
	// RetryTimeout is the sender-side timeout before a lost protocol
	// request is retransmitted; it doubles on each attempt (binary
	// backoff). Zero retransmits immediately.
	RetryTimeout float64
	// MaxRetries bounds retransmissions per protocol message; 0
	// disables the retry path entirely (a lost message stays lost).
	MaxRetries int
}

// finite reports whether x is a usable parameter value (neither NaN nor
// an infinity). Validation rejects non-finite values explicitly:
// comparisons like f.ResourceMTBF < 0 are false for NaN, which would
// otherwise let NaN slip through range checks.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Enabled reports whether any fault process is active.
func (f FaultModel) Enabled() bool {
	return f.ResourceMTBF > 0 || f.UpdateLossProb > 0 || f.protocolFaults()
}

// protocolFaults reports whether any fault class that can destroy a
// protocol message or an RMS node is active — the condition under which
// the engine arms its timeout/retry and failover machinery.
func (f FaultModel) protocolFaults() bool {
	return f.SchedulerMTBF > 0 || f.EstimatorMTBF > 0 ||
		f.MsgLossProb > 0 || f.LinkOutageMTBF > 0
}

// Validate reports the first nonsensical fault parameter.
func (f FaultModel) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"ResourceMTBF", f.ResourceMTBF},
		{"RepairTime", f.RepairTime},
		{"UpdateLossProb", f.UpdateLossProb},
		{"SchedulerMTBF", f.SchedulerMTBF},
		{"SchedulerRepair", f.SchedulerRepair},
		{"EstimatorMTBF", f.EstimatorMTBF},
		{"EstimatorRepair", f.EstimatorRepair},
		{"MsgLossProb", f.MsgLossProb},
		{"LinkOutageMTBF", f.LinkOutageMTBF},
		{"LinkOutageDuration", f.LinkOutageDuration},
		{"RetryTimeout", f.RetryTimeout},
	} {
		if !finite(v.val) {
			return fmt.Errorf("grid: %s must be finite, got %v", v.name, v.val)
		}
	}
	switch {
	case f.ResourceMTBF < 0:
		return fmt.Errorf("grid: negative ResourceMTBF %v", f.ResourceMTBF)
	case f.ResourceMTBF > 0 && f.RepairTime <= 0:
		return fmt.Errorf("grid: crashes enabled but RepairTime %v", f.RepairTime)
	case f.UpdateLossProb < 0 || f.UpdateLossProb >= 1:
		return fmt.Errorf("grid: UpdateLossProb %v outside [0,1)", f.UpdateLossProb)
	case f.SchedulerMTBF < 0:
		return fmt.Errorf("grid: negative SchedulerMTBF %v", f.SchedulerMTBF)
	case f.SchedulerMTBF > 0 && f.SchedulerRepair <= 0:
		return fmt.Errorf("grid: scheduler crashes enabled but SchedulerRepair %v", f.SchedulerRepair)
	case f.EstimatorMTBF < 0:
		return fmt.Errorf("grid: negative EstimatorMTBF %v", f.EstimatorMTBF)
	case f.EstimatorMTBF > 0 && f.EstimatorRepair <= 0:
		return fmt.Errorf("grid: estimator crashes enabled but EstimatorRepair %v", f.EstimatorRepair)
	case f.MsgLossProb < 0 || f.MsgLossProb >= 1:
		return fmt.Errorf("grid: MsgLossProb %v outside [0,1)", f.MsgLossProb)
	case f.LinkOutageMTBF < 0:
		return fmt.Errorf("grid: negative LinkOutageMTBF %v", f.LinkOutageMTBF)
	case f.LinkOutageMTBF > 0 && f.LinkOutageDuration <= 0:
		return fmt.Errorf("grid: link outages enabled but LinkOutageDuration %v", f.LinkOutageDuration)
	case f.RetryTimeout < 0:
		return fmt.Errorf("grid: negative RetryTimeout %v", f.RetryTimeout)
	case f.MaxRetries < 0:
		return fmt.Errorf("grid: negative MaxRetries %d", f.MaxRetries)
	case f.MaxRetries > 16:
		return fmt.Errorf("grid: MaxRetries %d above the backoff bound 16", f.MaxRetries)
	}
	return nil
}

// Config describes one complete simulation run.
type Config struct {
	Seed int64
	// Spec is the grid layout (clusters, cluster size, estimators).
	Spec topology.GridSpec
	// TopoNodes is the total topology size including pure routers; it
	// must be at least Spec.Nodes(). Zero means "exactly Spec.Nodes()
	// plus 20% routers".
	TopoNodes int
	// TopoM is the preferential-attachment edge count (default 2).
	TopoM int
	// Links parameterizes link latency/bandwidth generation.
	Links topology.LinkParams
	// ServiceRate is the resource service rate mu (Case 2's scaling
	// variable): a job of runtime r occupies a resource r/mu.
	ServiceRate float64
	// Workload generates the job stream.
	Workload workload.Params
	// Horizon is the simulated duration; jobs still in flight at the
	// horizon are accounted as unfinished.
	Horizon sim.Time
	// Drain lets in-flight jobs finish for this long after the last
	// arrival before the run is cut off.
	Drain sim.Time

	Enablers Enablers
	Protocol Protocol
	Costs    CostModel
	Faults   FaultModel

	// MsgBytes and UpdateBytes size protocol and update messages for
	// the bandwidth term of the delay model. JobBytes sizes a job
	// transfer.
	MsgBytes, UpdateBytes, JobBytes float64

	// MaxEvents guards against runaway runs; zero means the engine
	// default of 50 million events.
	MaxEvents uint64
	// StallEvents arms the kernel's no-progress watchdog: a run aborts
	// if this many consecutive events execute without the clock
	// advancing. Zero means the engine default of one million.
	StallEvents uint64
}

// DefaultConfig returns the base (scale k=1) configuration of the Case 1
// experiment family: a stressed grid whose tuned efficiency lands in the
// paper's band.
func DefaultConfig() Config {
	wl := workload.DefaultParams()
	wl.Clusters = 8
	wl.ArrivalRate = 0.1374 // ~0.9 utilization on 80 unit-rate resources
	wl.Horizon = 4000
	return Config{
		Seed:        1,
		Spec:        topology.GridSpec{Clusters: 8, ClusterSize: 10},
		TopoM:       2,
		Links:       topology.DefaultLinkParams(),
		ServiceRate: 1,
		Workload:    wl,
		Horizon:     4000,
		Drain:       1500,
		Enablers:    DefaultEnablers(),
		Protocol:    DefaultProtocol(),
		Costs:       DefaultCosts(),
		MsgBytes:    1,
		UpdateBytes: 1,
		JobBytes:    10,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.TopoNodes != 0 && c.TopoNodes < c.Spec.Nodes() {
		return fmt.Errorf("grid: TopoNodes %d below spec minimum %d", c.TopoNodes, c.Spec.Nodes())
	}
	if c.ServiceRate <= 0 {
		return fmt.Errorf("grid: ServiceRate must be positive, got %v", c.ServiceRate)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("grid: Horizon must be positive, got %v", c.Horizon)
	}
	if c.Drain < 0 {
		return fmt.Errorf("grid: negative Drain %v", c.Drain)
	}
	if c.Workload.Clusters != c.Spec.Clusters {
		return fmt.Errorf("grid: workload spans %d clusters, grid has %d", c.Workload.Clusters, c.Spec.Clusters)
	}
	if c.MsgBytes < 0 || c.UpdateBytes < 0 || c.JobBytes < 0 {
		return fmt.Errorf("grid: negative message sizes")
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Enablers.Validate(); err != nil {
		return err
	}
	if err := c.Protocol.Validate(); err != nil {
		return err
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	return c.Faults.Validate()
}
