package service

import (
	"context"
	"encoding/json"
	"fmt"

	"rmscale/internal/audit"
	"rmscale/internal/experiments"
	"rmscale/internal/grid"
	"rmscale/internal/rms"
)

// ExecFunc turns a validated spec into its result payload. dir, when
// non-empty, is the experiment's private run directory (the runner
// journals there and writes runstate.json for progress streaming).
// The contract that makes the shared store sound: the payload must be
// a pure function of the spec — byte-identical on every execution —
// which the default executor guarantees by running seeded simulations
// and encoding with the deterministic JSON codec.
type ExecFunc func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error)

// Result is the stored payload envelope: the spec that produced it
// plus exactly one kind-specific body. Fetching a result is therefore
// self-describing — a client can recover what was run without keeping
// its own submission log.
type Result struct {
	Spec    ExperimentSpec           `json:"spec"`
	Summary *grid.Summary            `json:"summary,omitempty"` // sim
	Case    *experiments.Result      `json:"case,omitempty"`    // case
	Churn   *experiments.ChurnResult `json:"churn,omitempty"`   // churn
}

// Executor is the production ExecFunc: it runs the spec against the
// real simulation and experiment layers.
type Executor struct {
	// CaseWorkers sizes the runner pool inside one case/churn
	// execution; <= 0 picks 1, so concurrent experiments shard over
	// daemon shards rather than oversubscribing each other.
	CaseWorkers int
}

// Run executes spec and encodes its Result envelope.
func (x Executor) Run(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res := Result{Spec: spec}
	switch spec.Kind {
	case KindSim:
		sum, err := runSim(spec)
		if err != nil {
			return nil, err
		}
		res.Summary = &sum
	case KindCase, KindChurn:
		fid, err := experiments.ParseFidelity(spec.Fidelity)
		if err != nil {
			return nil, err
		}
		workers := x.CaseWorkers
		if workers <= 0 {
			workers = 1
		}
		rs := experiments.RunSpec{
			Fidelity: fid,
			Seed:     spec.Seed,
			Workers:  workers,
			Dir:      dir,
			Context:  ctx,
		}
		if spec.Kind == KindCase {
			r, err := experiments.RunCaseSpec(spec.Case, rs)
			if err != nil {
				return nil, err
			}
			res.Case = r
		} else {
			r, err := experiments.RunChurnSpec(spec.Case, experiments.ChurnFaults(), rs)
			if err != nil {
				return nil, err
			}
			res.Churn = r
		}
	default:
		return nil, fmt.Errorf("service: executor: unknown spec kind %q", spec.Kind)
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("service: encoding result of %s: %w", spec, err)
	}
	return append(b, '\n'), nil
}

// runSim is one audited engine run: the same simulate discipline the
// experiment layer uses (fresh policy, Record-mode auditor, stall
// check), without the tuning loop around it.
func runSim(spec ExperimentSpec) (grid.Summary, error) {
	p, err := rms.ByName(spec.Model)
	if err != nil {
		return grid.Summary{}, err
	}
	cfg := grid.DefaultConfig()
	cfg.Seed = spec.Seed
	if spec.Horizon > 0 {
		cfg.Horizon = spec.Horizon
		cfg.Drain = spec.Horizon / 4
		cfg.Workload.Horizon = spec.Horizon
	}
	e, err := grid.New(cfg, p)
	if err != nil {
		return grid.Summary{}, err
	}
	aud, err := audit.Attach(e, audit.Config{Mode: audit.Record})
	if err != nil {
		return grid.Summary{}, err
	}
	sum := e.Run()
	if e.K.Stalled {
		return grid.Summary{}, e.K.Err()
	}
	if e.K.Overflowed {
		return grid.Summary{}, fmt.Errorf("service: %s exceeded its event budget", spec)
	}
	if err := aud.Err(); err != nil {
		return grid.Summary{}, err
	}
	return sum, nil
}
