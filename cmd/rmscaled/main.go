// Command rmscaled is the long-lived experiment service: a daemon
// serving the repository's simulations and experiment cases to many
// concurrent clients over HTTP/JSON, with content-addressed dedup, a
// shared result store, admission control and journal-checkpointed
// restart. The client subcommands talk to a running daemon.
//
// Usage:
//
//	rmscaled serve   [-addr :8080] [-dir DIR] [-shards N] [-queue N] [-quiet]
//	                 [-attempts N] [-exec-timeout D] [-breaker-threshold N]
//	                 [-breaker-cooldown D] [-store-max-results N]
//	                 [-store-max-bytes N] [-store-max-age D]
//	                 [-store-max-quarantine N]
//	rmscaled submit  [-addr HOST] [-wait] -kind sim -model M [-seed N] [-horizon F]
//	rmscaled submit  [-addr HOST] [-wait] -kind case|churn -case 1..4 -fidelity F [-seed N]
//	rmscaled status  [-addr HOST] ID
//	rmscaled fetch   [-addr HOST] ID
//	rmscaled loadtest [-objects N] [-distinct N] [-clients N] [-seed N]
//	rmscaled chaos   [-dir DIR] [-specs N] [-clients N] [-seed N] [-report FILE]
//	rmscaled crashtest [-sector N] [-max-torn N] [-workload NAME] [-report FILE]
//
// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully:
// in-flight experiments finish, the queued backlog stays checkpointed
// in -dir's journal, and the next serve over the same -dir resumes it.
// The supervision flags bound execution (deadline, bounded retries)
// and shedding (circuit breaker); the store flags bound the result
// store with LRU eviction.
//
// submit posts one experiment spec and prints the daemon's status
// response — the experiment ID is the spec's deterministic content
// address, so resubmitting an already-known spec joins the existing
// work instead of rerunning it. With -wait, submit streams status
// updates until the experiment is terminal and then fetches the
// result; a 429 or 503 refusal (saturated queue, draining daemon,
// open circuit breaker) is retried with capped jittered backoff
// honoring the server's Retry-After hint.
//
// loadtest needs no daemon: it starts an in-process one and drives the
// scale-qualifying load iteration from internal/service/loadgen
// against it, printing the metrics as JSON.
//
// chaos runs the service chaos harness (internal/service/chaos):
// scripted executor panics, hangs, transient failures, client
// disconnects, store corruption, journal tears and flaky disk writes
// against in-process daemons, verifying every result byte-identical
// to a fault-free reference. It writes the report as JSON and exits
// non-zero if any assertion failed.
//
// crashtest runs the crash-consistency harness (internal/service/crash)
// entirely in memory: canonical journal/store workloads execute on a
// simulated filesystem, the harness enumerates a power cut at every
// recorded filesystem op — plus torn- and garbled-tail variants of
// the final append — and restarts the persistence layer on each
// materialized disk image, asserting that recovery never fails, never
// serves wrong bytes, and never loses an acknowledged durable result.
// It prints the report as JSON and exits non-zero on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rmscale/internal/service"
	"rmscale/internal/service/chaos"
	"rmscale/internal/service/crash"
	"rmscale/internal/service/loadgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = serveCmd(args)
	case "submit":
		err = submitCmd(args)
	case "status":
		err = queryCmd(args, "")
	case "fetch":
		err = queryCmd(args, "/result")
	case "loadtest":
		err = loadtestCmd(args)
	case "chaos":
		err = chaosCmd(args)
	case "crashtest":
		err = crashtestCmd(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmscaled:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rmscaled <serve|submit|status|fetch|loadtest|chaos|crashtest> [flags]
  serve     run the daemon (SIGTERM drains gracefully; -dir resumes)
  submit    submit an experiment spec to a running daemon
  status    print an experiment's status
  fetch     print an experiment's stored result
  loadtest  run the in-process load iteration and print its metrics
  chaos     run the service chaos harness and print its report
  crashtest enumerate crash points of the persistence layer and print the report
run 'rmscaled <command> -h' for the command's flags`)
}

// serveCmd runs the daemon until SIGINT/SIGTERM, then drains.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dir := fs.String("dir", "", "service directory (journal, result store, run dirs); empty = ephemeral")
	shards := fs.Int("shards", 2, "worker shards executing experiments concurrently")
	queue := fs.Int("queue", 256, "admission queue capacity (full = HTTP 429)")
	workers := fs.Int("j", 1, "runner workers inside one case/churn experiment")
	quiet := fs.Bool("quiet", false, "suppress the structured event/request log")
	attempts := fs.Int("attempts", 1, "execution attempts per experiment before its failure is final")
	execTimeout := fs.Duration("exec-timeout", 0, "per-sim execution deadline, case/churn get 8x (0 = none)")
	brkThreshold := fs.Int("breaker-threshold", 0, "consecutive execution failures that open the circuit breaker (0 = disabled)")
	brkCooldown := fs.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker sheds submissions before probing")
	storeMaxResults := fs.Int("store-max-results", 0, "result store GC: max retained payloads, LRU-evicted beyond (0 = unbounded)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "result store GC: max memory-tier payload bytes (0 = unbounded)")
	storeMaxAge := fs.Duration("store-max-age", 0, "result store GC: evict payloads untouched this long (0 = unbounded)")
	storeMaxQuarantine := fs.Int("store-max-quarantine", 0, "max quarantined corrupt payloads kept for forensics, oldest evicted beyond (0 = default 64)")
	fs.Parse(args)

	var logw io.Writer = os.Stderr
	if *quiet {
		logw = nil
	}
	d, err := service.New(service.Config{
		Dir: *dir, Shards: *shards, QueueCap: *queue, CaseWorkers: *workers, Log: logw,
		MaxAttempts: *attempts, ExecTimeout: *execTimeout,
		BreakerThreshold: *brkThreshold, BreakerCooldown: *brkCooldown,
		StoreMaxResults: *storeMaxResults, StoreMaxBytes: *storeMaxBytes, StoreMaxAge: *storeMaxAge,
		StoreMaxQuarantine: *storeMaxQuarantine,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		d.Close()
		return err
	}
	srv := &http.Server{Handler: service.NewServer(d).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "rmscaled: serving on %s (dir=%q shards=%d queue=%d)\n",
		ln.Addr(), *dir, *shards, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "rmscaled: %v: draining (in-flight work finishes, backlog stays journaled)\n", sig)
		srv.Close() // stop accepting requests, then drain the daemon
		d.Drain()
		return d.Close()
	case err := <-errc:
		d.Close()
		return err
	}
}

// submitCmd builds a spec from flags, posts it, and optionally waits.
func submitCmd(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	kind := fs.String("kind", "sim", "spec kind: sim, case or churn")
	model := fs.String("model", "", "sim: RMS model name")
	seed := fs.Int64("seed", 1, "master random seed")
	horizon := fs.Float64("horizon", 0, "sim: simulated duration override (0 = default)")
	caseN := fs.Int("case", 0, "case/churn: experiment case 1..4")
	fidelity := fs.String("fidelity", "", "case/churn: smoke, quick or full")
	wait := fs.Bool("wait", false, "stream status until terminal, then fetch the result")
	client := fs.String("client", "rmscaled-cli", "client identity for fairness accounting")
	retryFor := fs.Duration("retry-for", 2*time.Minute, "with -wait: how long to retry 429/503 refusals before giving up")
	fs.Parse(args)

	spec := service.ExperimentSpec{
		Kind: *kind, Seed: *seed, Model: *model, Horizon: *horizon,
		Case: *caseN, Fidelity: *fidelity,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	body, err := postWithBackoff(strings.TrimRight(*addr, "/")+"/v1/experiments",
		payload, *client, spec.String(), *wait, *retryFor)
	if err != nil {
		return err
	}
	var st service.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("decoding status: %w", err)
	}
	if !*wait {
		os.Stdout.Write(body)
		return nil
	}
	if err := streamUntilDone(*addr, st.ID, os.Stderr); err != nil {
		return err
	}
	return fetchTo(*addr, st.ID, os.Stdout)
}

// postWithBackoff POSTs the submission. When retry is set (-wait), a
// 429 or 503 refusal — saturated queue, draining daemon, open circuit
// breaker — backs off and retries until the budget runs out, honoring
// the server's Retry-After hint capped at maxSubmitBackoff, with
// deterministic jitter so a herd of waiting clients spreads out.
func postWithBackoff(url string, payload []byte, client, spec string, retry bool, budget time.Duration) ([]byte, error) {
	deadline := time.Now().Add(budget)
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(payload)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Rmscale-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			return body, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if !retry {
				return nil, fmt.Errorf("submit: HTTP %d: %s (rerun with -wait to back off and retry)",
					resp.StatusCode, strings.TrimSpace(string(body)))
			}
			d := submitBackoff(spec, attempt, resp.Header.Get("Retry-After"))
			if time.Now().Add(d).After(deadline) {
				return nil, fmt.Errorf("submit: still refused after %v (last: HTTP %d: %s)",
					budget, resp.StatusCode, strings.TrimSpace(string(body)))
			}
			fmt.Fprintf(os.Stderr, "rmscaled: submit refused (HTTP %d), retrying in %v\n", resp.StatusCode, d.Round(time.Millisecond))
			time.Sleep(d)
		default:
			return nil, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
	}
}

// maxSubmitBackoff caps one refusal backoff regardless of the
// server's Retry-After hint.
const maxSubmitBackoff = 5 * time.Second

// submitBackoff sizes one refusal backoff: the server's Retry-After
// when sent (else a linear ramp), capped, plus deterministic jitter
// hashed from (spec, attempt) — no global RNG, reproducible, and
// distinct clients de-synchronize because their specs differ.
func submitBackoff(spec string, attempt int, retryAfter string) time.Duration {
	d := time.Duration(attempt) * 250 * time.Millisecond
	if sec, err := strconv.Atoi(retryAfter); err == nil && sec > 0 {
		d = time.Duration(sec) * time.Second
	}
	if d > maxSubmitBackoff {
		d = maxSubmitBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", spec, attempt)
	return d + time.Duration(h.Sum64()%uint64(d/4+1))
}

// streamUntilDone follows the experiment's stream, echoing each status
// line, and fails if the experiment does.
func streamUntilDone(addr, id string, w io.Writer) error {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/v1/experiments/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: HTTP %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var st service.Status
	for {
		if err := dec.Decode(&st); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		b, _ := json.Marshal(st)
		fmt.Fprintf(w, "%s\n", b)
		if st.State.Terminal() {
			break
		}
	}
	if st.State != service.StateDone {
		return fmt.Errorf("experiment %s failed: %s", id, st.Error)
	}
	return nil
}

func fetchTo(addr, id string, w io.Writer) error {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/v1/experiments/" + id + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("fetch %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// queryCmd implements status (path "") and fetch (path "/result").
func queryCmd(args []string, path string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one experiment ID, got %d args", fs.NArg())
	}
	id := fs.Arg(0)
	if path == "/result" {
		return fetchTo(*addr, id, os.Stdout)
	}
	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/v1/experiments/" + id)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)
	return nil
}

// loadtestCmd runs one in-process load iteration and prints Metrics.
func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	objects := fs.Int("objects", 1000, "experiment objects submitted per iteration")
	distinct := fs.Int("distinct", 0, "distinct specs among the objects (0 = objects/8)")
	clients := fs.Int("clients", 8, "concurrent load clients")
	seed := fs.Int64("seed", 1, "spec seed base")
	horizon := fs.Float64("horizon", 250, "sim horizon per object")
	shards := fs.Int("shards", 2, "daemon worker shards")
	queue := fs.Int("queue", 256, "daemon queue capacity")
	dir := fs.String("dir", "", "daemon service directory (empty = temp dir)")
	verbose := fs.Bool("v", false, "print the harness progress line to stderr")
	fs.Parse(args)

	sdir := *dir
	if sdir == "" {
		tmp, err := os.MkdirTemp("", "rmscaled-loadtest-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		sdir = tmp
	}
	opts := loadgen.Options{
		Objects: *objects, Distinct: *distinct, Clients: *clients,
		Seed: *seed, Horizon: *horizon,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	m, err := loadgen.RunInProcess(opts, service.Config{
		Dir: sdir, Shards: *shards, QueueCap: *queue,
	})
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// chaosCmd runs the service chaos harness and prints (and optionally
// writes) its report; any failed assertion exits non-zero.
func chaosCmd(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	dir := fs.String("dir", "", "harness working directory (empty = temp dir)")
	specs := fs.Int("specs", 12, "distinct experiment specs driven through every phase")
	clients := fs.Int("clients", 3, "concurrent chaos clients")
	seed := fs.Int64("seed", 1, "spec and fault-schedule seed")
	report := fs.String("report", "", "also write the report JSON to this file")
	verbose := fs.Bool("v", false, "print phase progress to stderr")
	fs.Parse(args)

	cdir := *dir
	if cdir == "" {
		tmp, err := os.MkdirTemp("", "rmscaled-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		cdir = tmp
	}
	opts := chaos.Options{Dir: cdir, Specs: *specs, Clients: *clients, Seed: *seed}
	if *verbose {
		opts.Log = os.Stderr
	}
	rep, err := chaos.Run(opts)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	if *report != "" {
		if err := os.WriteFile(*report, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !rep.OK {
		return fmt.Errorf("chaos: %d assertion(s) failed", len(rep.Failures))
	}
	return nil
}

// crashtestCmd runs the crash-consistency harness and prints (and
// optionally writes) its report; any invariant violation exits
// non-zero.
func crashtestCmd(args []string) error {
	fs := flag.NewFlagSet("crashtest", flag.ExitOnError)
	sector := fs.Int("sector", 64, "torn-append granularity in bytes")
	maxTorn := fs.Int("max-torn", 3, "torn-tail prefixes materialized per crash point")
	workload := fs.String("workload", "", "run only this workload (comma-separated names; empty = all)")
	report := fs.String("report", "", "also write the report JSON to this file")
	verbose := fs.Bool("v", false, "print per-workload progress to stderr")
	fs.Parse(args)

	opts := crash.Options{Sector: *sector, MaxTorn: *maxTorn}
	if *workload != "" {
		opts.Workloads = strings.Split(*workload, ",")
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	rep, err := crash.Run(opts)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	if *report != "" {
		if err := os.WriteFile(*report, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !rep.OK {
		return fmt.Errorf("crashtest: %d invariant violation(s) across %d crash states", rep.FailureCount, rep.States)
	}
	return nil
}
