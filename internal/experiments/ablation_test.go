package experiments

import (
	"strings"
	"testing"
)

func TestAblateSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	r, err := AblateSuppression(Smoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base, none, aggressive := r.Rows[0], r.Rows[1], r.Rows[2]
	if none.Updates <= base.Updates {
		t.Errorf("disabling suppression should send more updates: %d vs %d",
			none.Updates, base.Updates)
	}
	if none.Suppressed != 0 {
		t.Errorf("no-suppression variant suppressed %d updates", none.Suppressed)
	}
	if aggressive.Updates >= base.Updates {
		t.Errorf("aggressive suppression should send fewer updates: %d vs %d",
			aggressive.Updates, base.Updates)
	}
	if none.G <= aggressive.G {
		t.Errorf("more updates should cost more overhead: %v vs %v", none.G, aggressive.G)
	}
	if !strings.Contains(r.Table(), "suppression") {
		t.Error("table missing title")
	}
}

func TestAblateEstimators(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	r, err := AblateEstimators(Smoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Digests != 0 {
		t.Error("direct-update variant produced digests")
	}
	for _, row := range r.Rows[1:] {
		if row.Digests == 0 {
			t.Errorf("estimator variant %q produced no digests", row.Variant)
		}
	}
	// More estimators means more heartbeat digests.
	if r.Rows[3].Digests <= r.Rows[1].Digests {
		t.Errorf("digest count should grow with estimators: %d vs %d",
			r.Rows[3].Digests, r.Rows[1].Digests)
	}
}

func TestAblateMiddleware(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	r, err := AblateMiddleware(Smoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// A catastrophic middleware must not improve efficiency.
	if r.Rows[2].Efficiency > r.Rows[0].Efficiency+0.02 {
		t.Errorf("slow middleware improved efficiency: %v vs %v",
			r.Rows[2].Efficiency, r.Rows[0].Efficiency)
	}
}

func TestAblateTuner(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	r, err := AblateTuner(Smoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Evals == 0 {
			t.Errorf("%s recorded no evaluations", row.Variant)
		}
		if row.G <= 0 {
			t.Errorf("%s found no overhead", row.Variant)
		}
	}
}

func TestAblateFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	r, err := AblateFaults(Smoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	healthy, crashes := r.Rows[0], r.Rows[1]
	if crashes.Success > healthy.Success+0.02 {
		t.Errorf("crashes should not improve success: %v vs %v",
			crashes.Success, healthy.Success)
	}
}

func TestMeasureRPOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	r, err := RunCase1(Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := MeasureRPOverhead(r)
	if len(ss.Series) != 7 {
		t.Fatalf("series = %d", len(ss.Series))
	}
	for _, s := range ss.Series {
		if s.Y[0] != 1 {
			t.Fatalf("%s h(1) = %v, want 1", s.Name, s.Y[0])
		}
		// The RP is scalable in Case 1: h(k) must grow roughly with
		// the workload, not explode.
		last := s.Y[len(s.Y)-1]
		if last <= 0 {
			t.Fatalf("%s h(final) = %v", s.Name, last)
		}
	}
}
