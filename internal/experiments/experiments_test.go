package experiments

import (
	"bytes"
	"strings"
	"testing"

	"rmscale/internal/scale"
)

func TestFidelityParse(t *testing.T) {
	for _, s := range []string{"smoke", "quick", "full"} {
		f, err := ParseFidelity(s)
		if err != nil {
			t.Fatal(err)
		}
		if f.String() != s {
			t.Fatalf("round trip %q -> %v", s, f)
		}
	}
	if _, err := ParseFidelity("nope"); err == nil {
		t.Fatal("bad fidelity accepted")
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	c := PaperConstants()
	if c.TCPU != 700 || c.ThresholdLoad != 0.5 || c.BenefitMin != 2 || c.BenefitMax != 5 {
		t.Fatalf("paper constants wrong: %+v", c)
	}
	if err := c.WriteTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "T_CPU") {
		t.Fatal("Table 1 missing T_CPU")
	}
	buf.Reset()
	if err := WriteScalingTables(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "Table 5", "volunteering"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("scaling tables missing %q", want)
		}
	}
}

// checkResult asserts structural properties every case result must have.
func checkResult(t *testing.T, r *Result, wantModels int) {
	t.Helper()
	if len(r.Measurements) != wantModels {
		t.Fatalf("measured %d models, want %d", len(r.Measurements), wantModels)
	}
	ks := Smoke.ks()
	for name, m := range r.Measurements {
		if len(m.Points) != len(ks) {
			t.Fatalf("%s: %d points, want %d", name, len(m.Points), len(ks))
		}
		for i, p := range m.Points {
			if p.K != ks[i] {
				t.Fatalf("%s: point %d at k=%d, want %d", name, i, p.K, ks[i])
			}
			if p.G <= 0 {
				t.Fatalf("%s: non-positive overhead at k=%d", name, p.K)
			}
			if p.Obs.F <= 0 {
				t.Fatalf("%s: no useful work at k=%d", name, p.K)
			}
		}
		g := m.NormalizedG()
		if g[0] != 1 {
			t.Fatalf("%s: normalized base %v != 1", name, g[0])
		}
	}
	fig := r.Figure()
	if len(fig.Series) != wantModels {
		t.Fatalf("figure has %d series", len(fig.Series))
	}
	var buf bytes.Buffer
	if err := fig.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CENTRAL") {
		t.Fatal("figure table missing CENTRAL")
	}
}

func TestRunCase1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	var progressed int
	r, err := RunCase1(Smoke, 1, func(string, scale.Point) { progressed++ })
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, 7)
	if progressed != 7*len(Smoke.ks()) {
		t.Fatalf("progress fired %d times, want %d", progressed, 7*len(Smoke.ks()))
	}
	for name, m := range r.Measurements {
		t.Logf("%-8s g(k)=%v slopes=%v", name, m.NormalizedG(), m.Slopes())
	}
}

func TestRunCase2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	r, err := RunCase2(Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, 7)
}

func TestRunCase3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	r, err := RunCase3(Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, 7)
	// Case 3 also yields Figures 6 and 7.
	th := r.ThroughputFigure()
	rt := r.ResponseFigure()
	if len(th.Series) != 7 || len(rt.Series) != 7 {
		t.Fatalf("throughput/response figures incomplete: %d, %d", len(th.Series), len(rt.Series))
	}
	for _, s := range th.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s throughput[%d] = %v", s.Name, i, y)
			}
		}
	}
}

func TestRunCase4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	r, err := RunCase4(Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r, 7)
}

// TestCaseDeterminism: the entire measurement pipeline (topology,
// workload, simulation, annealing) must reproduce bit-identically for
// the same seed.
func TestCaseDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	a, err := RunCase4(Smoke, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCase4(Smoke, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, ma := range a.Measurements {
		mb := b.Measurements[name]
		if mb == nil {
			t.Fatalf("%s missing from second run", name)
		}
		ga, gb := ma.GCurve(), mb.GCurve()
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("%s: G(%d) differs: %v vs %v", name, i, ga[i], gb[i])
			}
		}
	}
}
