package lint

import (
	"go/ast"

	"rmscale/internal/lint/analysis"
)

// wallClockNames are the package time identifiers that read the real
// clock or arm real timers. Types, constants and pure-arithmetic
// helpers (Duration, Unix, Date construction from literals) are fine;
// anything that observes "now" or schedules against it is not.
var wallClockNames = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallClock forbids wall-clock reads in simulation-visible
// packages: virtual time must come from the kernel (sim.Kernel.Now),
// never from package time, or identical seeds stop producing
// identical runs.
func NoWallClock() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "nowallclock",
		Doc:  "forbid time.Now/Since/Sleep and timer construction in sim-visible packages; virtual time comes from the kernel",
	}
	a.Run = func(p *analysis.Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// Matching the selector rather than a call also
				// catches indirection like f := time.Now; f().
				path, name, ok := p.SelectorOf(sel)
				if ok && path == "time" && wallClockNames[name] {
					p.Reportf(sel.Pos(),
						"time.%s reads the wall clock; sim-visible code must take virtual time from the simulation kernel", name)
				}
				return true
			})
		}
		return nil
	}
	return a
}
