package rms

import (
	"math"

	"rmscale/internal/grid"
)

// Message kinds for the S-I / R-I / Sy-I superscheduler family.
const (
	msgSIQuery = iota + 200
	msgSIReply
	msgRIVolunteer
	msgRIDemand
	msgRIInfo
)

// siQuery asks a remote scheduler for its AWT/ERT/RUS for a job.
type siQuery struct {
	id  int
	req float64 // the job's requested time
}

// siReply returns the remote estimate.
type siReply struct {
	id  int
	att float64 // AWT + ERT at the replier
	rus float64 // resource utilization status
}

// siSession tracks one outstanding S-I poll.
type siSession struct {
	ctx      *grid.JobCtx
	expected int
	replies  []siReply
	from     []int
}

// siState is the per-scheduler S-I state.
type siState struct {
	nextID   int
	sessions map[int]*siSession
}

// SenderInitiated is the paper's S-I model (after Shan, Oliker &
// Biswas's job superscheduler): autonomous per-cluster schedulers
// communicating through a grid middleware queue. On a REMOTE job
// arrival the scheduler polls L_p remote schedulers, which respond with
// approximate waiting time (AWT), expected run time (ERT) and resource
// utilization status (RUS); the poller computes the turnaround cost
// everywhere, and when several approximate turnaround times tie within
// the tolerance psi, the smallest RUS wins.
type SenderInitiated struct{}

// NewSenderInitiated returns the S-I model.
func NewSenderInitiated() *SenderInitiated { return &SenderInitiated{} }

// Name implements grid.Policy.
func (*SenderInitiated) Name() string { return "S-I" }

// Central implements grid.Policy.
func (*SenderInitiated) Central() bool { return false }

// UsesMiddleware implements grid.Policy: the S-I family talks through
// the grid middleware.
func (*SenderInitiated) UsesMiddleware() bool { return true }

// Attach initializes poll bookkeeping.
func (*SenderInitiated) Attach(e *grid.Engine) {
	for c := 0; c < e.Clusters(); c++ {
		e.Scheduler(c).State = &siState{sessions: make(map[int]*siSession)}
	}
}

// OnJob polls remote schedulers for REMOTE jobs.
func (p *SenderInitiated) OnJob(s *grid.Scheduler, ctx *grid.JobCtx) {
	if mustPlaceLocally(s, ctx) {
		placeLocally(s, ctx)
		return
	}
	siPoll(s, s.State.(*siState), ctx)
}

// siPoll starts an S-I poll for ctx; shared with Sy-I's fallback path.
func siPoll(s *grid.Scheduler, st *siState, ctx *grid.JobCtx) {
	peers := s.RandomPeers(s.Engine().Cfg.Protocol.Lp)
	if len(peers) == 0 {
		placeLocally(s, ctx)
		return
	}
	id := st.nextID
	st.nextID++
	st.sessions[id] = &siSession{ctx: ctx, expected: len(peers)}
	for _, peer := range peers {
		s.SendPolicy(peer, msgSIQuery, siQuery{id: id, req: ctx.Job.Requested})
	}
}

// OnMessage answers queries and resolves completed polls.
func (p *SenderInitiated) OnMessage(s *grid.Scheduler, m *grid.Message) {
	siHandle(s, s.State.(*siState), m)
}

// siHandle implements the shared S-I message protocol.
func siHandle(s *grid.Scheduler, st *siState, m *grid.Message) {
	e := s.Engine()
	switch m.Kind {
	case msgSIQuery:
		q := m.Payload.(siQuery)
		s.ExecDecision(len(s.LocalResources()), func() {
			s.SendPolicy(m.From, msgSIReply, siReply{
				id:  q.id,
				att: e.AWT(s) + e.ERT(q.req),
				rus: s.Utilization(),
			})
		})
	case msgSIReply:
		r := m.Payload.(siReply)
		sess, ok := st.sessions[r.id]
		if !ok {
			return
		}
		sess.replies = append(sess.replies, r)
		sess.from = append(sess.from, m.From)
		if len(sess.replies) < sess.expected {
			return
		}
		delete(st.sessions, r.id)
		s.ExecDecision(sess.expected+len(s.LocalResources()), func() {
			siDecide(s, sess)
		})
	}
}

// siDecide computes turnaround costs and places the job: minimum ATT
// wins; ties within psi go to the smallest RUS; the local cluster is a
// candidate like any other.
func siDecide(s *grid.Scheduler, sess *siSession) {
	e := s.Engine()
	psi := e.Cfg.Protocol.Psi
	// Candidate 0 is local (cluster = -1 marks local).
	bestATT := e.AWT(s) + e.ERT(sess.ctx.Job.Requested)
	bestRUS := s.Utilization()
	bestCluster := -1
	for i, r := range sess.replies {
		switch {
		case r.att < bestATT-psi:
			bestATT, bestRUS, bestCluster = r.att, r.rus, sess.from[i]
		case math.Abs(r.att-bestATT) <= psi && r.rus < bestRUS:
			// ATT tie within tolerance: smallest RUS accepts the job.
			bestATT, bestRUS, bestCluster = math.Min(r.att, bestATT), r.rus, sess.from[i]
		}
	}
	if bestCluster < 0 {
		placeLocally(s, sess.ctx)
		return
	}
	s.TransferJob(sess.ctx, bestCluster)
}

// OnStatus implements grid.Policy.
func (*SenderInitiated) OnStatus(*grid.Scheduler, []int) {}

// OnTick implements grid.Policy; S-I has no periodic behaviour.
func (*SenderInitiated) OnTick(*grid.Scheduler) {}
