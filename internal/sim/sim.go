// Package sim provides a deterministic discrete-event simulation kernel.
//
// It replaces the Parsec simulation environment used by the paper: a
// single-threaded event loop with an implicit 4-ary-heap future event
// list, a simulated clock, cancellable events, and named deterministic
// random number streams. Determinism is total: two runs with the same
// seed and the same schedule of calls produce identical event orders,
// because ties in event time are broken by a monotonically increasing
// sequence number.
//
// The kernel is the cost center of the whole reproduction (every figure
// re-runs the grid simulation hundreds of times inside the annealing
// tuner), so its hot path is allocation-free in steady state: Event
// structs are recycled through a free list once they fire or their
// cancellation is collected, and the future event list is an implicit
// heap with no interface boxing (see fel.go and DESIGN.md, "Kernel
// performance").
package sim

import (
	"fmt"
	"math"
)

// Time is a point on the simulated clock, in abstract "time units"
// (the paper's unit; e.g. T_CPU = 700 time units).
type Time = float64

// Infinity is a time later than any event the kernel will ever fire.
const Infinity Time = math.MaxFloat64

// Event is a scheduled callback. The zero value is not useful; events
// are created through Kernel.Schedule or Kernel.After and may be
// cancelled through their handle.
//
// Handle lifetime: a handle is valid until its event fires (or, for a
// cancelled event, until the kernel collects it). The kernel recycles
// retired Event structs, so retaining a handle past that point and
// cancelling it later may cancel an unrelated future event — a model
// bug, just like scheduling in the past. Every in-tree holder (the
// Ticker, protocol sessions) refreshes its handle on each reschedule.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	inFEL    bool // currently linked into the future event list
}

// At reports the simulated time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Kernel is a discrete-event simulation engine. A Kernel is not safe for
// concurrent use; one simulation runs on one goroutine. Run many Kernels
// in parallel for parameter sweeps.
type Kernel struct {
	now       Time
	seq       uint64
	fel       fel // future event list (fel.go)
	free      []*Event
	processed uint64
	stopped   bool

	// MaxEvents, when non-zero, bounds the number of events a single
	// Run may process; exceeding it stops the run and sets Overflowed.
	MaxEvents  uint64
	Overflowed bool

	// StallEvents, when non-zero, is the no-progress watchdog: if that
	// many consecutive events execute without the clock advancing, the
	// run stops and Stalled is set. A model bug that schedules work in
	// a zero-delay cycle then fails immediately with a precise trigger
	// instead of spinning to MaxEvents.
	StallEvents uint64
	Stalled     bool

	stallAt  Time   // timestamp the current same-time streak runs at
	stallRun uint64 // events executed at stallAt so far
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of live (non-cancelled) events in the
// future event list.
func (k *Kernel) Pending() int { return k.fel.live() }

// Schedule arranges for fn to run at absolute simulated time at.
// Scheduling in the past panics: it is always a model bug.
//
//lint:hotpath kernel/steady gates Schedule at zero allocations per event in steady state
func (k *Kernel) Schedule(at Time, fn func()) *Event {
	if at < k.now {
		//lint:allow hotalloc panic path: fires once on a model bug, never in a measured run
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if fn == nil {
		//lint:allow hotalloc panic path: fires once on a model bug, never in a measured run
		panic("sim: schedule nil func")
	}
	e := k.newEvent(at, fn)
	k.fel.push(e)
	return e
}

// After arranges for fn to run d time units from now. Negative delays
// panic.
//
//lint:hotpath every periodic process reschedules through After; kernel/steady gates it at zero allocations
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		//lint:allow hotalloc panic path: fires once on a model bug, never in a measured run
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.Schedule(k.now+d, fn)
}

// Cancel marks the event so it will not fire. Cancelling an event that
// already fired or was already cancelled is a no-op (but see the handle
// lifetime note on Event). The event stays in the future event list
// until it surfaces or a compaction sweep collects it; either way its
// struct returns to the free list.
//
//lint:hotpath kernel/cancel gates the cancel-heavy regime at zero allocations per event
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.inFEL {
		k.fel.dead++
		k.maybeCompact()
	}
}

// Stop makes the current Run return after the event being processed
// completes. It may be called from inside an event callback.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the earliest pending event. It returns false when the
// future event list is empty.
//
//lint:hotpath the dispatch loop body; every simulated event passes through it
func (k *Kernel) Step() bool {
	for len(k.fel.ev) > 0 {
		e := k.fel.pop()
		if e.canceled {
			k.fel.dead--
			k.recycle(e)
			continue
		}
		k.now = e.at
		k.processed++
		k.noteProgress(e.at)
		e.fn()
		k.recycle(e)
		return true
	}
	return false
}

// noteProgress feeds the no-progress watchdog: it counts consecutive
// events executed at the same timestamp and trips Stalled when the
// streak exceeds StallEvents.
func (k *Kernel) noteProgress(at Time) {
	if k.StallEvents == 0 {
		return
	}
	if at != k.stallAt || k.stallRun == 0 {
		k.stallAt = at
		k.stallRun = 1
		return
	}
	k.stallRun++
	if k.stallRun >= k.StallEvents {
		k.Stalled = true
		k.stopped = true
	}
}

// Run executes events in time order until the future event list is
// empty, until the next event would fire strictly after the until time,
// until Stop is called, or until MaxEvents is exceeded. It returns the
// number of events executed during this call.
//
//lint:hotpath the bounded dispatch loop; kernel/steady and every engine bench run inside it
func (k *Kernel) Run(until Time) uint64 {
	n := k.runLimit(until, false)
	if k.Stalled {
		return n
	}
	if k.now < until && (len(k.fel.ev) == 0 || k.fel.ev[0].at > until) {
		// Advance the clock to the horizon so rate-style metrics
		// (work per unit time) are computed over the full window.
		k.now = until
	}
	return n
}

// RunBefore executes events strictly before horizon: it is the window
// primitive of the conservative parallel executor (internal/sim/par),
// which derives horizon from the partition lookahead. Unlike Run it
// never advances the clock to the horizon itself — the clock stays at
// the last executed event, so barrier-time message deliveries with
// at >= horizon are always in this kernel's future.
func (k *Kernel) RunBefore(horizon Time) uint64 {
	return k.runLimit(horizon, true)
}

// runLimit is the shared dispatch loop of Run and RunBefore; strict
// excludes events at exactly the limit.
//
//lint:hotpath the bounded dispatch loop body shared by Run and RunBefore; kernel/steady runs inside it
func (k *Kernel) runLimit(limit Time, strict bool) uint64 {
	k.stopped = false
	var n uint64
	for len(k.fel.ev) > 0 && !k.stopped {
		if k.MaxEvents != 0 && k.processed >= k.MaxEvents {
			k.Overflowed = true
			break
		}
		next := k.fel.ev[0]
		if next.canceled {
			k.fel.pop()
			k.fel.dead--
			k.recycle(next)
			continue
		}
		if next.at > limit || (strict && next.at == limit) {
			break
		}
		k.fel.pop()
		k.now = next.at
		k.noteProgress(next.at)
		if k.Stalled {
			// Watchdog tripped: leave the offending event pending so a
			// diagnostic dump (NextEventTimes) still shows the work the
			// model was spinning on, and do not count it as processed.
			k.fel.push(next)
			break
		}
		k.processed++
		n++
		next.fn()
		k.recycle(next)
	}
	return n
}

// NextTime reports the firing time of the earliest live pending event.
// Cancelled events surfacing at the heap root are collected on the way,
// exactly as the dispatch loop would collect them, so peeking is
// behaviour-invisible.
func (k *Kernel) NextTime() (Time, bool) {
	for len(k.fel.ev) > 0 {
		e := k.fel.ev[0]
		if !e.canceled {
			return e.at, true
		}
		k.fel.pop()
		k.fel.dead--
		k.recycle(e)
	}
	return 0, false
}

// AdvanceTo moves the clock forward to t without executing anything.
// The parallel executor uses it at the end of a run so every partition
// observes the same horizon Run would have left on a serial kernel.
// Moving backwards or jumping over a pending live event panics: both
// are coordination bugs.
func (k *Kernel) AdvanceTo(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before now %v", t, k.now))
	}
	if nt, ok := k.NextTime(); ok && nt < t {
		panic(fmt.Sprintf("sim: AdvanceTo %v past pending event at %v", t, nt))
	}
	k.now = t
}

// RunAll executes every pending event regardless of time. Intended for
// tests and drain scenarios; production runs should bound time with Run.
func (k *Kernel) RunAll() uint64 {
	var n uint64
	for k.Step() {
		n++
		if k.Stalled {
			break
		}
		if k.MaxEvents != 0 && k.processed >= k.MaxEvents {
			k.Overflowed = true
			break
		}
	}
	return n
}

// Err reports why the kernel refused to make further progress: a
// tripped no-progress watchdog or an exceeded MaxEvents budget. It
// returns nil after a healthy run.
func (k *Kernel) Err() error {
	switch {
	case k.Stalled:
		return fmt.Errorf("sim: no progress: %d consecutive events at t=%v without the clock advancing (StallEvents=%d)",
			k.stallRun, k.stallAt, k.StallEvents)
	case k.Overflowed:
		return fmt.Errorf("sim: event budget exceeded: %d events processed (MaxEvents=%d)", k.processed, k.MaxEvents)
	}
	return nil
}

// NextEventTimes returns the firing times of up to n earliest pending
// live events, in order. It is a diagnostic accessor for post-mortem
// dumps and does not disturb the future event list.
func (k *Kernel) NextEventTimes(n int) []Time {
	times := make([]Time, 0, n)
	for _, e := range k.fel.ev {
		if !e.canceled {
			times = append(times, e.at)
		}
	}
	sortTimes(times)
	if len(times) > n {
		times = times[:n]
	}
	return times
}

// sortTimes is a small insertion sort; diagnostic-path only, and it
// keeps the kernel free of a sort import on the hot path.
func sortTimes(ts []Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
