package rms

import (
	"math"

	"rmscale/internal/grid"
)

// Message kinds for LOWEST.
const (
	msgLowestPoll = iota
	msgLowestReply
)

// lowestPoll is the payload of a poll and its reply.
type lowestPoll struct {
	id      int
	minLoad float64 // reply: polled cluster's least believed load
}

// lowestSession tracks one outstanding REMOTE-job poll.
type lowestSession struct {
	ctx      *grid.JobCtx
	expected int
	bestFrom int
	bestLoad float64
	replies  int
}

// lowestState is the per-scheduler state of the LOWEST model.
type lowestState struct {
	nextID   int
	sessions map[int]*lowestSession
}

// lowest lets composite states (AUCTION embeds lowestState) expose the
// LOWEST portion to the shared handlers.
func (st *lowestState) lowest() *lowestState { return st }

// hasLowestState is satisfied by lowestState and anything embedding it.
type hasLowestState interface{ lowest() *lowestState }

// Lowest is the paper's LOWEST model (after Zhou's trace-driven study):
// per-cluster schedulers with periodic updates; a LOCAL job goes to the
// least loaded local resource; a REMOTE job polls L_p randomly selected
// remote schedulers and is transferred to the one with the least loaded
// resources, if that beats staying local.
type Lowest struct{}

// NewLowest returns the LOWEST model.
func NewLowest() *Lowest { return &Lowest{} }

// Name implements grid.Policy.
func (*Lowest) Name() string { return "LOWEST" }

// Central implements grid.Policy.
func (*Lowest) Central() bool { return false }

// UsesMiddleware implements grid.Policy.
func (*Lowest) UsesMiddleware() bool { return false }

// Attach initializes per-scheduler poll bookkeeping.
func (*Lowest) Attach(e *grid.Engine) {
	for c := 0; c < e.Clusters(); c++ {
		e.Scheduler(c).State = &lowestState{sessions: make(map[int]*lowestSession)}
	}
}

// OnJob places LOCAL jobs locally and polls for REMOTE jobs.
func (*Lowest) OnJob(s *grid.Scheduler, ctx *grid.JobCtx) {
	if mustPlaceLocally(s, ctx) {
		placeLocally(s, ctx)
		return
	}
	st := s.State.(hasLowestState).lowest()
	peers := s.RandomPeers(s.Engine().Cfg.Protocol.Lp)
	if len(peers) == 0 {
		placeLocally(s, ctx)
		return
	}
	id := st.nextID
	st.nextID++
	st.sessions[id] = &lowestSession{
		ctx:      ctx,
		expected: len(peers),
		bestFrom: -1,
		bestLoad: math.Inf(1),
	}
	for _, p := range peers {
		s.SendPolicy(p, msgLowestPoll, lowestPoll{id: id})
	}
}

// OnMessage answers polls and resolves completed poll sessions.
func (*Lowest) OnMessage(s *grid.Scheduler, m *grid.Message) {
	switch m.Kind {
	case msgLowestPoll:
		p := m.Payload.(lowestPoll)
		// Answering a poll is cheap: Zhou's scheme replies with the
		// cached lowest load, no cluster rescan.
		s.Exec(s.Engine().Cfg.Costs.DecisionBase, func() {
			_, load, ok := s.LeastLoadedLocal()
			if !ok {
				load = math.Inf(1)
			}
			s.SendPolicy(m.From, msgLowestReply, lowestPoll{id: p.id, minLoad: load})
		})
	case msgLowestReply:
		p := m.Payload.(lowestPoll)
		st := s.State.(hasLowestState).lowest()
		sess, ok := st.sessions[p.id]
		if !ok {
			return
		}
		sess.replies++
		if p.minLoad < sess.bestLoad {
			sess.bestLoad, sess.bestFrom = p.minLoad, m.From
		}
		if sess.replies < sess.expected {
			return
		}
		delete(st.sessions, p.id)
		// Final decision: a cheap min-compare of the L_p replies
		// against the cached local minimum.
		s.ExecDecision(sess.expected, func() {
			_, localLoad, ok := s.LeastLoadedLocal()
			if ok && localLoad <= sess.bestLoad || sess.bestFrom < 0 {
				placeLocally(s, sess.ctx)
				return
			}
			s.TransferJob(sess.ctx, sess.bestFrom)
		})
	}
}

// OnStatus implements grid.Policy; LOWEST is purely pull-based.
func (*Lowest) OnStatus(*grid.Scheduler, []int) {}

// OnTick implements grid.Policy.
func (*Lowest) OnTick(*grid.Scheduler) {}
