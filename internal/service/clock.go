package service

import "time"

// Clock is the daemon's injectable time source. Production uses the
// wall clock (request timestamps, latency accounting, Retry-After);
// tests inject a fixed clock so log output and status timestamps are
// reproducible. Nothing simulation-visible ever flows from it — sim
// results depend only on the spec — which is why the single wall-clock
// read below is a sanctioned, annotated exception to the module's
// nowallclock rule.
type Clock func() time.Time

// wallClock is the one real wall-clock read site in the service layer.
func wallClock() time.Time {
	//lint:allow nowallclock the daemon timestamps logs and measures request latency; simulation results never depend on wall time
	return time.Now()
}
