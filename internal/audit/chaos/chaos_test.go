package chaos

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"rmscale/internal/audit"
	"rmscale/internal/rms"
)

// The checked-in corpus of shrunken reproducers must keep violating
// deterministically: two independent runs of each file produce the
// identical violation fingerprint.
func TestCorpusReplayDeterminism(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("corpus has %d reproducers, want >= 3", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			s, err := ReadJSON(file)
			if err != nil {
				t.Fatal(err)
			}
			first, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !first.Violating() {
				t.Fatalf("corpus reproducer no longer violates; update or remove it")
			}
			second, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if first.Fingerprint == "" || first.Fingerprint != second.Fingerprint {
				t.Fatalf("replay fingerprints differ: %q vs %q", first.Fingerprint, second.Fingerprint)
			}
			if !reflect.DeepEqual(first.Violations, second.Violations) {
				t.Fatalf("replay violations differ:\n%v\n%v", first.Violations, second.Violations)
			}
		})
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Generate(1, 3)
	s.Corruptions = []Corruption{{Kind: CorruptPhantomRetry, At: 50}}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed the schedule:\n%+v\n%+v", s, got)
	}
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadJSONValidates(t *testing.T) {
	s := Generate(1, 0)
	s.Model = "NOSUCH"
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(path); err == nil {
		t.Fatal("schedule with unknown model accepted")
	}
}

func TestGenerateIsDeterministicAndCoversModels(t *testing.T) {
	names := rms.Names()
	seen := map[string]bool{}
	for i := 0; i < len(names); i++ {
		a, b := Generate(42, i), Generate(42, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Generate(42, %d) not deterministic", i)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Generate(42, %d) invalid: %v", i, err)
		}
		seen[a.Model] = true
	}
	if len(seen) != len(names) {
		t.Fatalf("first %d schedules cover %d models, want all %d", len(names), len(seen), len(names))
	}
}

// The tentpole's end-to-end proof: an intentionally seeded violation is
// detected by the auditor, replays deterministically, and shrinks to a
// minimal reproducer that still triggers the same check.
func TestSeededViolationDetectReplayShrink(t *testing.T) {
	s := Schedule{
		Name:        "seeded",
		Model:       "R-I",
		Seed:        9,
		Clusters:    3,
		ClusterSize: 4,
		Estimators:  1,
		Horizon:     400,
		Drain:       200,
		Util:        0.7,
		SchedCrashes: []Crash{
			{Target: 0, At: 50, Repair: 80},
			{Target: 2, At: 220, Repair: 120},
		},
		EstCrashes:  []Crash{{Target: 0, At: 90, Repair: 100}},
		LossWindows: []Window{{Start: 150, Duration: 60}, {Start: 300, Duration: 40}},
		Corruptions: []Corruption{{Kind: CorruptNegativeOverhead, At: 250}},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Violating() || !r.HasKind(audit.CheckAccounting) {
		t.Fatalf("seeded corruption undetected: kinds=%v", r.Kinds)
	}
	replay, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Fingerprint != r.Fingerprint {
		t.Fatalf("replay fingerprint %q != original %q", replay.Fingerprint, r.Fingerprint)
	}
	shrunk, sr, evals := Shrink(s, r, 200)
	if evals == 0 {
		t.Fatal("shrinker spent no evaluations")
	}
	if !sr.HasKind(audit.CheckAccounting) {
		t.Fatalf("shrunk schedule lost the violation: kinds=%v", sr.Kinds)
	}
	// All six fault events are noise; only the corruption is needed.
	if shrunk.Events() != 1 || len(shrunk.Corruptions) != 1 {
		t.Fatalf("shrunk to %d events (%+v), want just the corruption", shrunk.Events(), shrunk)
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk schedule invalid: %v", err)
	}
}

// A sweep over fault-only schedules (the CI configuration) must come
// back clean: scripted crashes and loss windows may degrade the grid
// but must never break its conservation laws.
func TestSweepFaultOnlySchedulesAreClean(t *testing.T) {
	var logbuf bytes.Buffer
	res, err := Sweep(Options{Schedules: 8, Seed: 5, Workers: 2, Log: &logbuf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ran != 8 {
		t.Fatalf("ran %d schedules, want 8", res.Ran)
	}
	if !res.Clean() {
		t.Fatalf("fault-only sweep violated invariants:\n%s", logbuf.String())
	}
}

func TestSweepRejectsBadOptions(t *testing.T) {
	if _, err := Sweep(Options{Schedules: 0}); err == nil {
		t.Fatal("zero schedules accepted")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	base := Generate(1, 0)
	cases := []func(*Schedule){
		func(s *Schedule) { s.Model = "NOSUCH" },
		func(s *Schedule) { s.Clusters = 0 },
		func(s *Schedule) { s.ClusterSize = 0 },
		func(s *Schedule) { s.Estimators = -1 },
		func(s *Schedule) { s.Horizon = 0 },
		func(s *Schedule) { s.Drain = -1 },
		func(s *Schedule) { s.Util = 0 },
		func(s *Schedule) { s.Util = 3 },
		func(s *Schedule) { s.SchedCrashes = []Crash{{Target: -1, At: 10, Repair: 5}} },
		func(s *Schedule) { s.SchedCrashes = []Crash{{Target: 0, At: 1e9, Repair: 5}} },
		func(s *Schedule) { s.EstCrashes = []Crash{{Target: 0, At: 10, Repair: 0}} },
		func(s *Schedule) { s.LossWindows = []Window{{Start: -1, Duration: 5}} },
		func(s *Schedule) { s.LossWindows = []Window{{Start: 10, Duration: 0}} },
		func(s *Schedule) { s.Corruptions = []Corruption{{Kind: "nosuch", At: 10}} },
		func(s *Schedule) { s.Corruptions = []Corruption{{Kind: CorruptPhantomRetry, At: -1}} },
	}
	for i, mutate := range cases {
		s := base.clone()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: invalid schedule accepted: %+v", i, s)
		}
	}
}
