package rms

import (
	"testing"

	"rmscale/internal/grid"
)

// churnConfig is smallConfig with a heavy manager-side fault load:
// scheduler and estimator crashes, protocol message loss and access
// link outages, with the timeout/retry path armed.
func churnConfig() grid.Config {
	cfg := smallConfig()
	cfg.Spec.Estimators = 2
	cfg.Faults = grid.FaultModel{
		SchedulerMTBF: 800, SchedulerRepair: 120,
		EstimatorMTBF: 800, EstimatorRepair: 120,
		MsgLossProb:    0.05,
		LinkOutageMTBF: 1500, LinkOutageDuration: 60,
		RetryTimeout: 20, MaxRetries: 3,
	}
	return cfg
}

// TestAllModelsSurviveChurn: with the full fault load, every model must
// finish its run with a bounded job-loss fraction and job conservation
// intact — one crashed manager must not take the workload with it.
func TestAllModelsSurviveChurn(t *testing.T) {
	sawFailover, sawRetry := false, false
	for _, p := range append(All(), Extensions()...) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			cfg := churnConfig()
			e, err := grid.New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			sum := e.Run()
			m := e.Metrics
			t.Logf("%s: %v parked=%d stale=%d abandoned=%d fallbacks=%d unfinished=%d",
				p.Name(), sum, m.JobsParked, m.StaleActions, m.MsgsAbandoned,
				m.EstimatorFallbacks, e.Unfinished())
			if m.JobsCompleted == 0 {
				t.Fatal("no jobs completed under churn")
			}
			if m.JobsCompleted+m.JobsLost+e.Unfinished() != m.JobsArrived {
				t.Fatalf("job conservation violated: %d completed + %d lost + %d unfinished != %d arrived",
					m.JobsCompleted, m.JobsLost, e.Unfinished(), m.JobsArrived)
			}
			// Bounded loss: crashes may destroy running jobs, but the
			// failover path must keep the vast majority alive.
			if frac := float64(m.JobsLost) / float64(m.JobsArrived); frac > 0.25 {
				t.Fatalf("lost %.2f of jobs (%d/%d)", frac, m.JobsLost, m.JobsArrived)
			}
			if sum.Crashes == 0 {
				t.Fatal("fault load armed but nothing crashed")
			}
			if sum.Downtime <= 0 {
				t.Fatal("crashes recorded but no downtime accounted")
			}
			sawFailover = sawFailover || sum.Failovers > 0 || m.JobsParked > 0
			sawRetry = sawRetry || sum.Retries > 0
		})
	}
	if !sawFailover {
		t.Error("no model ever re-homed or parked a job")
	}
	if !sawRetry {
		t.Error("no model ever retransmitted a protocol message")
	}
}

// TestSchedulerCrashFailover: scheduler crashes alone (no message loss)
// must produce nonzero failover and retry counters on a distributed
// model — jobs re-home over the peer list and in-flight messages to the
// dead scheduler hit the timeout path.
func TestSchedulerCrashFailover(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults = grid.FaultModel{
		SchedulerMTBF: 600, SchedulerRepair: 150,
		RetryTimeout: 20, MaxRetries: 3,
	}
	e, err := grid.New(cfg, NewLowest())
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Run()
	if sum.Crashes == 0 {
		t.Fatal("no scheduler ever crashed")
	}
	if sum.Failovers == 0 {
		t.Fatal("crashes happened but no job failed over")
	}
	if sum.Retries == 0 {
		t.Fatal("crashes happened but no message was retried")
	}
	if float64(sum.JobsLost) > 0.25*float64(sum.Jobs) {
		t.Fatalf("unbounded job loss: %d of %d", sum.JobsLost, sum.Jobs)
	}
}

// TestCentralSurvivesSchedulerCrash: the central scheduler has no peer
// to fail over to, so its jobs park through the outage and drain at
// repair. The model must still complete most of its work.
func TestCentralSurvivesSchedulerCrash(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults = grid.FaultModel{
		SchedulerMTBF: 1000, SchedulerRepair: 100,
		RetryTimeout: 20, MaxRetries: 3,
	}
	e, err := grid.New(cfg, NewCentral())
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Run()
	m := e.Metrics
	if sum.Crashes == 0 {
		t.Skip("central scheduler never crashed at this seed")
	}
	if m.JobsParked == 0 {
		t.Fatal("central crash must park submissions, not lose them")
	}
	if sum.Failovers != 0 {
		t.Fatal("central has no peers; failover is impossible")
	}
	if frac := float64(m.JobsCompleted) / float64(m.JobsArrived); frac < 0.8 {
		t.Fatalf("only %.2f of jobs completed", frac)
	}
}

// TestEstimatorCrashFallback: estimator death must reroute status
// updates directly to the schedulers instead of silently dropping them.
func TestEstimatorCrashFallback(t *testing.T) {
	cfg := smallConfig()
	cfg.Spec.Estimators = 2
	cfg.Faults = grid.FaultModel{
		EstimatorMTBF: 500, EstimatorRepair: 200,
	}
	e, err := grid.New(cfg, NewSymmetric())
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if e.Metrics.EstimatorCrashes == 0 {
		t.Fatal("no estimator ever crashed")
	}
	if e.Metrics.EstimatorFallbacks == 0 {
		t.Fatal("estimator down but no update fell back to direct delivery")
	}
}

// TestChurnDeterminism: the fault machinery must be exactly as
// reproducible as the rest of the engine — same seed, same fault load,
// identical summary.
func TestChurnDeterminism(t *testing.T) {
	for _, name := range []string{"CENTRAL", "LOWEST", "AUCTION", "Sy-I"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := churnConfig()
			p1, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p2, _ := ByName(name)
			a := runModel(t, p1, cfg)
			b := runModel(t, p2, cfg)
			if a != b {
				t.Fatalf("same seed diverged under churn:\n a=%v\n b=%v", a, b)
			}
		})
	}
}

// TestFaultStreamsIndependent: enabling faults must not perturb the
// workload or topology streams — the generated job list and the
// substrate are identical with and without the fault load.
func TestFaultStreamsIndependent(t *testing.T) {
	cleanCfg := churnConfig()
	cleanCfg.Faults = grid.FaultModel{}
	clean, err := grid.New(cleanCfg, NewLowest())
	if err != nil {
		t.Fatal(err)
	}
	churn, err := grid.New(churnConfig(), NewLowest())
	if err != nil {
		t.Fatal(err)
	}
	cj, fj := clean.Jobs(), churn.Jobs()
	if len(cj) != len(fj) {
		t.Fatalf("workload changed under faults: %d vs %d jobs", len(cj), len(fj))
	}
	for i := range cj {
		if cj[i].Arrival != fj[i].Arrival || cj[i].Runtime != fj[i].Runtime ||
			cj[i].Cluster != fj[i].Cluster || cj[i].Class != fj[i].Class {
			t.Fatalf("job %d differs under faults: %+v vs %+v", i, cj[i], fj[i])
		}
	}
	if clean.Graph.N != churn.Graph.N {
		t.Fatalf("topology changed under faults: %d vs %d nodes", clean.Graph.N, churn.Graph.N)
	}
	for c := 0; c < clean.Clusters(); c++ {
		a, b := clean.Scheduler(c).Peers(), churn.Scheduler(c).Peers()
		if len(a) != len(b) {
			t.Fatalf("cluster %d peer list changed under faults", c)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cluster %d peer list changed under faults: %v vs %v", c, a, b)
			}
		}
	}
}

// TestRetryKnobsAloneAreFaultFree: retry knobs without any fault class
// enabled must leave the run byte-identical to a zero fault model —
// the machinery only arms when something can actually fail.
func TestRetryKnobsAloneAreFaultFree(t *testing.T) {
	cfg := smallConfig()
	a := runModel(t, NewLowest(), cfg)
	cfg.Faults.RetryTimeout = 30
	cfg.Faults.MaxRetries = 5
	b := runModel(t, NewLowest(), cfg)
	if a != b {
		t.Fatalf("retry knobs alone changed the run:\n a=%v\n b=%v", a, b)
	}
}
