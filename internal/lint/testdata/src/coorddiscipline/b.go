package coorddiscipline

import "sync" // want "coordinator package file imports \"sync\" but marks no //lint:coordinator function"

// lockHolder lives in a file with no marked coordinator: the import
// itself is the finding, before any primitive is even used.
type lockHolder struct {
	mu sync.Mutex
}
