// Package load type-checks Go packages from source using only the
// standard library, so rmslint needs neither network access nor
// golang.org/x/tools. It shells out to `go list -deps -json` for
// package discovery (which applies build constraints and module
// resolution exactly as the build does) and then runs go/types over
// the whole dependency graph — standard library included — in
// dependency order, so every analyzer sees fully resolved types.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package.
type Package struct {
	Path     string
	Dir      string
	Standard bool // part of the Go standard library

	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// Module loads the packages matched by patterns (typically "./...")
// in the module rooted at dir, plus their entire dependency graph,
// and returns only the matched module packages, fully type-checked,
// in `go list` order. Test files are not loaded: the determinism
// invariants govern production code, while tests legitimately use
// wall-clock timeouts and goroutines.
func Module(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	pkgs, _, err := graph(fset, dir, patterns)
	return pkgs, err
}

// Deps type-checks the named import paths (typically the standard
// library packages test fixtures import) together with their
// dependency graphs and returns a path -> package map usable as a
// types.Importer backing store.
func Deps(fset *token.FileSet, dir string, paths ...string) (map[string]*types.Package, error) {
	if len(paths) == 0 {
		return map[string]*types.Package{"unsafe": types.Unsafe}, nil
	}
	_, typed, err := graph(fset, dir, paths)
	return typed, err
}

// graph lists patterns with -deps, type-checks the whole graph from
// source in dependency order, and returns the non-standard packages
// in list order plus the full path -> types map.
func graph(fset *token.FileSet, dir string, patterns []string) ([]*Package, map[string]*types.Package, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO_ENABLED=0 keeps every listed package pure Go, so the whole
	// graph — net, os, runtime — type-checks from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, p)
	}

	typed := map[string]*types.Package{"unsafe": types.Unsafe}
	imp := mapImporter(typed)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		p, err := Check(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		typed[lp.ImportPath] = p.Pkg
		if !lp.Standard {
			p.Dir = lp.Dir
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, typed, nil
}

// Check parses and type-checks one package from the named files,
// resolving imports through imp. The first type error aborts: the
// analyzers depend on complete type information, so a partially
// checked package would silently weaken them.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Files: files, Pkg: pkg, Info: info}, nil
}

// Importer wraps a path -> package map as a types.Importer, for
// callers (like the analysistest harness) that assemble their own
// package graphs around Check.
func Importer(m map[string]*types.Package) types.Importer { return mapImporter(m) }

// mapImporter resolves imports against an accumulating path -> package
// map; dependency-ordered loading guarantees the entry exists by the
// time an importer asks for it.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	// Standard-library packages import their vendored dependencies by
	// the unvendored path (net -> golang.org/x/net/dns/dnsmessage), but
	// `go list` reports those packages under the GOROOT vendor prefix.
	if p, ok := m["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not loaded", path)
}
