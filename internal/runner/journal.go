package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rmscale/internal/fsutil"
)

// journalName is the journal file inside a run directory.
const journalName = "journal.jsonl"

// journalVersion guards the on-disk format.
const journalVersion = 1

// Journal is the checkpoint log of a run: an append-only JSON-lines
// file in which every completed unit of work is recorded under a
// stable ID. Each record is written with a single append write, so an
// interrupted run leaves at most one truncated final line, which the
// loader discards; everything before it survives and seeds the resumed
// run.
//
// The first line is a header carrying a fingerprint of the run
// parameters (fidelity, seed, ...). Resuming with a different
// fingerprint is refused: a journal only ever replays into the exact
// run shape that wrote it.
type Journal struct {
	mu      sync.Mutex
	f       fsutil.File
	fs      fsutil.FS
	entries map[string]json.RawMessage
	dropped int
}

type journalHeader struct {
	Header struct {
		Version     int    `json:"version"`
		Fingerprint string `json:"fingerprint"`
	} `json:"header"`
}

type journalRecord struct {
	ID   string          `json:"id"`
	Data json.RawMessage `json:"data"`
}

// OpenJournal opens (or creates) the journal in dir. When a journal
// with a matching fingerprint already exists its records are loaded
// and resumed reports true; a fingerprint or version mismatch is an
// error so stale checkpoints cannot silently corrupt a run.
func OpenJournal(dir, fingerprint string) (j *Journal, resumed bool, err error) {
	return OpenJournalFS(dir, fingerprint, fsutil.RealFS{})
}

// OpenJournalFS is OpenJournal with an injectable filesystem seam
// (fault-injection harnesses script append failures through it, the
// crash harness enumerates power cuts; nil means the real
// filesystem).
//
// Tail recovery: a journal whose file ends in a truncated or garbled
// line — the signature of a killed or faulty writer — is recovered to
// its longest valid prefix. The records of that prefix load normally,
// the file is truncated back to the prefix boundary (and the cut
// synced, so a second crash cannot resurrect the garbage under a
// later append), and Dropped reports how many lines were discarded.
// A file whose header line itself never became valid — a crash
// between journal creation and the header's fsync — recovers as a
// fresh journal with every damaged line counted in Dropped; only a
// VALID header naming the wrong fingerprint or version is refused,
// because that is a caller error, not crash damage.
func OpenJournalFS(dir, fingerprint string, fs fsutil.FS) (j *Journal, resumed bool, err error) {
	if fs == nil {
		fs = fsutil.RealFS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("runner: run dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	entries := make(map[string]json.RawMessage)
	dropped, validEnd := 0, int64(-1)
	if b, err := fs.ReadFile(path); err == nil && len(b) > 0 {
		hdr, recs, goodBytes, badLines, headerless := parseJournal(b)
		if headerless {
			dropped = badLines
			validEnd = 0
		} else {
			if hdr.Header.Version != journalVersion {
				return nil, false, fmt.Errorf("runner: journal %s has version %d, want %d",
					path, hdr.Header.Version, journalVersion)
			}
			if hdr.Header.Fingerprint != fingerprint {
				return nil, false, fmt.Errorf("runner: journal %s was written by a different run "+
					"(journal %q, this run %q); pass a fresh -resume directory or rerun with the "+
					"original parameters", path, hdr.Header.Fingerprint, fingerprint)
			}
			entries = recs
			resumed = true
			if badLines > 0 {
				dropped = badLines
				validEnd = int64(goodBytes)
			}
		}
	}
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, false, fmt.Errorf("runner: journal: %w", err)
	}
	if validEnd >= 0 {
		// Cut the garbage tail before the first append lands after it;
		// otherwise the next record would concatenate onto a partial
		// line and corrupt itself too. The sync commits the cut: an
		// unsynced truncation could resurrect the garbage tail after
		// the next power loss.
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("runner: journal %s: truncating corrupt tail: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("runner: journal %s: syncing truncated tail: %w", path, err)
		}
	}
	j = &Journal{f: f, fs: fs, entries: entries, dropped: dropped}
	if !resumed {
		var hdr journalHeader
		hdr.Header.Version = journalVersion
		hdr.Header.Fingerprint = fingerprint
		if err := j.appendLine(hdr); err != nil {
			f.Close()
			return nil, false, err
		}
		// A fresh journal's directory entry must be durable before the
		// first record is acknowledged, or a power cut could drop the
		// whole file while its records count as committed.
		if err := fs.SyncDir(dir); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("runner: journal %s: syncing dir: %w", path, err)
		}
	}
	return j, resumed, nil
}

// parseJournal splits the file into header and records. Recovery is
// valid-prefix semantics: parsing stops at the first malformed record
// line (truncated tail or garbled bytes), goodBytes reports how far
// the valid prefix extends into b, and badLines counts the discarded
// remainder. Records past a garbled line are deliberately not trusted
// — a writer that corrupted one line may have corrupted what follows,
// and the caller truncates the file back to goodBytes anyway.
// A first line that is not a valid, terminated header reports
// headerless: the whole file is a dropped tail (badLines counts every
// non-empty line) and the caller starts the journal over.
func parseJournal(b []byte) (hdr journalHeader, recs map[string]json.RawMessage, goodBytes, badLines int, headerless bool) {
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	recs = make(map[string]json.RawMessage)
	first := true
	offset := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineEnd := offset + len(line)
		if lineEnd < len(b) && b[lineEnd] == '\n' {
			lineEnd++
		}
		if len(line) == 0 {
			offset = lineEnd
			continue
		}
		// A line whose newline never landed was not durably committed,
		// even if its JSON happens to parse; keeping it would let the
		// next append concatenate onto it.
		unterminated := lineEnd == len(b) && b[len(b)-1] != '\n'
		if first {
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.Header.Version == 0 || unterminated {
				badLines++
				for sc.Scan() {
					if len(sc.Bytes()) > 0 {
						badLines++
					}
				}
				return journalHeader{}, nil, 0, badLines, true
			}
			first = false
			offset = lineEnd
			goodBytes = offset
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" || unterminated {
			// Invalid record: everything from here on is the dropped
			// tail. Count its lines and stop trusting the file.
			badLines++
			for sc.Scan() {
				if len(sc.Bytes()) > 0 {
					badLines++
				}
			}
			return hdr, recs, goodBytes, badLines, false
		}
		recs[rec.ID] = rec.Data
		offset = lineEnd
		goodBytes = offset
	}
	if first {
		// Only whitespace: treat as headerless with nothing to drop.
		return journalHeader{}, nil, 0, 0, true
	}
	return hdr, recs, goodBytes, badLines, false
}

// Dropped reports how many journal lines were discarded as a corrupt
// tail when the journal was opened (0 for a clean journal).
func (j *Journal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// appendLine writes one JSON line with a single write followed by an
// fsync, which is what makes each record an atomic commit point.
func (j *Journal) appendLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: journal encode: %w", err)
	}
	if err := j.fs.AppendSync(j.f, append(b, '\n')); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	return nil
}

// Record journals v as the completion of the work unit id. Recording an
// id that is already journaled is a no-op, which makes checkpointing
// idempotent across resumed runs.
func (j *Journal) Record(id string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: journal encode %s: %w", id, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[id]; ok {
		return nil
	}
	if err := j.appendLine(journalRecord{ID: id, Data: data}); err != nil {
		return err
	}
	j.entries[id] = data
	return nil
}

// Lookup decodes the journaled payload for id into out, reporting
// whether id was found.
func (j *Journal) Lookup(id string, out any) (bool, error) {
	j.mu.Lock()
	data, ok := j.entries[id]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return false, fmt.Errorf("runner: journal decode %s: %w", id, err)
	}
	return true, nil
}

// Each calls fn for every journaled record, in lexicographic ID order
// so iteration is deterministic regardless of append order. It is how
// a service restart discovers work that was accepted but not finished:
// the daemon replays the journal and re-queues every entry without a
// committed result. fn must not call back into the journal.
func (j *Journal) Each(fn func(id string, data json.RawMessage) error) error {
	j.mu.Lock()
	ids := make([]string, 0, len(j.entries))
	for id := range j.entries { //lint:orderindependent ids are re-sorted below before use
		ids = append(ids, id)
	}
	sort.Strings(ids)
	snapshot := make([]json.RawMessage, len(ids))
	for i, id := range ids {
		snapshot[i] = j.entries[id]
	}
	j.mu.Unlock()
	for i, id := range ids {
		if err := fn(id, snapshot[i]); err != nil {
			return err
		}
	}
	return nil
}

// Len reports how many completed work units the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
