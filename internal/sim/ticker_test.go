package sim

import (
	"reflect"
	"testing"
)

func TestTickerFiresEveryPeriod(t *testing.T) {
	k := NewKernel()
	var got []Time
	NewTicker(k, 3, func() { got = append(got, k.Now()) })
	k.Run(10)
	if !reflect.DeepEqual(got, []Time{3, 6, 9}) {
		t.Fatalf("ticks at %v, want [3 6 9]", got)
	}
}

func TestTickerNonPositivePeriodIsDisabled(t *testing.T) {
	k := NewKernel()
	fired := false
	tk := NewTicker(k, 0, func() { fired = true })
	if !tk.Stopped() {
		t.Fatalf("period-0 ticker not stopped")
	}
	k.Run(100)
	if fired {
		t.Fatalf("disabled ticker fired")
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	k := NewKernel()
	var tk *Ticker
	ticks := 0
	tk = NewTicker(k, 2, func() {
		ticks++
		if ticks == 2 {
			tk.Stop()
		}
	})
	k.Run(100)
	if ticks != 2 {
		t.Fatalf("%d ticks after in-callback Stop at 2", ticks)
	}
	if !tk.Stopped() {
		t.Fatalf("ticker not stopped")
	}
}

// TestTickerStopRacingPendingRearm is the handle-lifetime contract
// under fire: a sibling event at the same timestamp as a tick stops the
// ticker while its rearm event is pending in the FEL. The cancelled
// rearm's struct is recycled by the free list and handed to an
// unrelated event; a second (stale) Stop must not cancel that
// successor. This is exactly the interleaving the parallel executor's
// barrier makes routine — cross-shard deliveries land between a tick
// and its sibling events — so the contract is pinned here at kernel
// level.
func TestTickerStopRacingPendingRearm(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	tk := NewTicker(k, 5, func() { ticks = append(ticks, k.Now()) })

	// The tick at t=5 fires first (FIFO among same-time events: the
	// ticker armed at t=0, this sibling is scheduled after it exists but
	// at the same timestamp) and rearms for t=10; then the sibling stops
	// the ticker, cancelling the pending rearm.
	k.Schedule(5, func() { tk.Stop() })
	k.Run(7)
	if !reflect.DeepEqual(ticks, []Time{5}) {
		t.Fatalf("ticks = %v, want [5]", ticks)
	}

	// Run past t=10 so the cancelled rearm surfaces and its struct goes
	// back to the free list...
	k.Run(12)
	// ...then hand that struct to an unrelated event. A stale Stop on
	// the ticker must not reach through the recycled handle and cancel
	// it.
	fired := false
	k.Schedule(20, func() { fired = true })
	tk.Stop()
	k.Run(25)
	if !fired {
		t.Fatalf("stale Ticker.Stop cancelled an unrelated recycled event")
	}
	if got := len(ticks); got != 1 {
		t.Fatalf("ticker fired %d times after Stop", got)
	}
}

// TestTickerStopInCallbackThenStaleStop covers the other rearm race:
// fn itself stops the ticker mid-tick, so the rearm never happens and
// the firing event's struct retires when the callback returns. The
// ticker must drop its handle (the firing event is already being
// recycled) so a later Stop cannot cancel whatever event next reuses
// the struct.
func TestTickerStopInCallbackThenStaleStop(t *testing.T) {
	k := NewKernel()
	var tk *Ticker
	tk = NewTicker(k, 5, func() { tk.Stop() })
	k.Run(6)
	if tk.ev != nil {
		t.Fatalf("ticker retained its event handle after an in-callback Stop")
	}

	// The retired tick event's struct is on the free list; the next
	// schedule reuses it.
	fired := false
	k.Schedule(8, func() { fired = true })
	tk.Stop()
	k.Run(10)
	if !fired {
		t.Fatalf("stale Ticker.Stop cancelled the event that reused its struct")
	}
}

func TestTickerResetAfterStop(t *testing.T) {
	k := NewKernel()
	var got []Time
	tk := NewTicker(k, 4, func() { got = append(got, k.Now()) })
	k.Run(5) // one tick at 4
	tk.Stop()
	tk.Reset(2) // restart from t=5: ticks at 7, 9, ...
	k.Run(9)
	if !reflect.DeepEqual(got, []Time{4, 7, 9}) {
		t.Fatalf("ticks = %v, want [4 7 9]", got)
	}
	tk.Reset(0)
	if !tk.Stopped() {
		t.Fatalf("Reset(0) left the ticker running")
	}
	k.Run(50)
	if len(got) != 3 {
		t.Fatalf("ticks after Reset(0): %v", got)
	}
}
