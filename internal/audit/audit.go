// Package audit is a runtime invariant auditor for the grid engine: it
// rides the simulation as a periodic checkpoint event plus a final
// drain hook and verifies the conservation laws the paper's accounting
// identity E = F/(F+G+H) depends on. Every check is a pure read of
// engine state — an attached auditor draws no random numbers, mutates
// no model state and schedules nothing the model can observe, so a
// fault-free run with auditing enabled is byte-identical to one
// without.
//
// Invariants checked at every checkpoint and at drain:
//
//   - virtual time is monotonic and within the run window;
//   - the kernel is making progress (no stall, no event overflow);
//   - the accounting terms F, G, H and wasted work are finite,
//     non-negative and non-decreasing;
//   - job conservation: completed + lost <= admitted <= arrived, with
//     every counter non-decreasing and succeeded <= completed;
//   - job census: jobs resident at resources plus jobs parked on down
//     schedulers never exceed the jobs in flight;
//   - scheduler and estimator work queues are bounded;
//   - retry/failover counters are consistent with message-loss
//     counters (lost = retried + abandoned), and with faults neither
//     configured nor scripted every fault counter is exactly zero.
//
// Three enforcement modes: Off (never attached), Record (violations
// accumulate into Metrics/Summary), FailFast (first violation stops
// the kernel and captures a diagnostic dump of the pending event queue
// and per-node state).
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"rmscale/internal/grid"
	"rmscale/internal/sim"
)

// Mode selects how an attached auditor enforces its invariants.
type Mode int

const (
	// Off disables auditing entirely; Attach installs nothing.
	Off Mode = iota
	// Record accumulates violations into Metrics.AuditViolations (and
	// the Summary's count) while letting the run finish.
	Record
	// FailFast stops the kernel at the first violation and captures a
	// diagnostic dump (pending events, per-node state, metrics).
	FailFast
)

// String names the mode for flags and logs.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Record:
		return "record"
	case FailFast:
		return "failfast"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a mode name as printed by String.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "record":
		return Record, nil
	case "failfast":
		return FailFast, nil
	}
	return Off, fmt.Errorf("audit: unknown mode %q (off|record|failfast)", s)
}

// Check names identify which invariant a violation belongs to; the
// shrinker preserves the first-failing check kind while minimizing.
const (
	CheckTime          = "monotonic-time"
	CheckProgress      = "progress"
	CheckAccounting    = "accounting"
	CheckConservation  = "job-conservation"
	CheckCensus        = "job-census"
	CheckQueueBound    = "queue-bound"
	CheckFaultCounters = "fault-counters"
	CheckDrain         = "drain"
)

// Config parameterizes an auditor. The zero value of every field picks
// a default derived from the run window.
type Config struct {
	Mode Mode
	// Interval between checkpoints; default window/64.
	Interval sim.Time
	// QueueBound is the largest tolerated scheduler/estimator work
	// backlog; default 64x the window, generous enough that a
	// legitimately saturated configuration (the tuner probes many)
	// never trips it while a runaway feedback loop still does.
	QueueBound sim.Time
	// MaxViolations caps recorded violations per run; default 64.
	MaxViolations int
}

// Violation is one invariant breach observed at a checkpoint.
type Violation struct {
	Time   sim.Time
	Check  string
	Detail string
}

// String renders the violation the way it lands in Metrics.
func (v Violation) String() string {
	return fmt.Sprintf("t=%.1f %s: %s", v.Time, v.Check, v.Detail)
}

// counters is the monotone slice of Metrics an auditor snapshots at
// each checkpoint to verify non-decreasing accumulation.
type counters struct {
	f, g, h, wasted              float64
	admitted, completed, lost    int
	succeeded                    int
	msgsLost, retries, abandoned int
	schedCrashes, estCrashes     int
	failovers, parked, stale     int
	updatesSent, policyMsgs      int
}

func snapshot(m *grid.Metrics) counters {
	return counters{
		f: m.UsefulWork, g: m.RMSOverhead, h: m.RPOverhead, wasted: m.WastedWork,
		admitted: m.JobsAdmitted, completed: m.JobsCompleted, lost: m.JobsLost,
		succeeded: m.JobsSucceeded,
		msgsLost:  m.MsgsLost, retries: m.MsgRetries, abandoned: m.MsgsAbandoned,
		schedCrashes: m.SchedulerCrashes, estCrashes: m.EstimatorCrashes,
		failovers: m.Failovers, parked: m.JobsParked, stale: m.StaleActions,
		updatesSent: m.UpdatesSent, policyMsgs: m.PolicyMsgs,
	}
}

// Auditor holds the check state for one engine run. Obtain one through
// Attach; the zero value is inert.
type Auditor struct {
	e   *grid.Engine
	cfg Config

	window sim.Time

	checks     int
	violations []Violation
	truncated  int
	lastNow    sim.Time
	prev       counters
	halted     bool
	finished   bool
	dump       string
}

// Attach wires an auditor into the engine: a periodic checkpoint event
// plus the engine's AuditHook for the final drain check. It must be
// called after NewWith/New (and any scripted fault injection setup)
// and before Run. Mode Off attaches nothing and returns an inert
// auditor. Attach fails if the run already started or another auditor
// claimed the hook.
func Attach(e *grid.Engine, cfg Config) (*Auditor, error) {
	if e == nil {
		return nil, fmt.Errorf("audit: nil engine")
	}
	window := e.Cfg.Horizon + e.Cfg.Drain
	if cfg.Interval <= 0 {
		cfg.Interval = window / 64
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 64 * window
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	a := &Auditor{e: e, cfg: cfg, window: window}
	if cfg.Mode == Off {
		return a, nil
	}
	if e.K.Processed() != 0 {
		return nil, fmt.Errorf("audit: attach after the simulation started")
	}
	if e.AuditHook != nil {
		return nil, fmt.Errorf("audit: engine already has an audit hook")
	}
	e.AuditHook = a.finish
	sim.NewTicker(e.K, cfg.Interval, a.checkpoint)
	return a, nil
}

// violationf records one violation (subject to the MaxViolations cap).
func (a *Auditor) violationf(check, format string, args ...any) {
	if len(a.violations) >= a.cfg.MaxViolations {
		a.truncated++
		return
	}
	a.violations = append(a.violations, Violation{
		Time:   a.e.K.Now(),
		Check:  check,
		Detail: fmt.Sprintf(format, args...),
	})
}

// checkpoint runs every invariant against the current engine state.
func (a *Auditor) checkpoint() {
	if a.halted || a.finished {
		return
	}
	before := len(a.violations)
	a.checks++
	a.checkTime()
	a.checkProgress()
	a.checkAccounting()
	a.checkConservation()
	a.checkCensus()
	a.checkQueueBound()
	a.checkFaultCounters()
	a.prev = snapshot(a.e.Metrics)
	a.publish()
	if a.cfg.Mode == FailFast && len(a.violations) > before {
		a.failFast()
	}
}

// finish is the engine's AuditHook: the drain-time pass after the
// event loop ends and before the summary is derived.
func (a *Auditor) finish() {
	if a.finished {
		return
	}
	a.finished = true
	if !a.halted {
		a.checks++
		a.checkProgress()
		a.checkAccounting()
		a.checkConservation()
		a.checkCensus()
		a.checkFaultCounters()
		a.checkDrain()
	}
	if a.truncated > 0 && len(a.violations) == a.cfg.MaxViolations {
		a.violations[len(a.violations)-1].Detail += fmt.Sprintf(" (+%d more suppressed)", a.truncated)
	}
	a.publish()
}

func (a *Auditor) checkTime() {
	now := a.e.K.Now()
	if now < a.lastNow {
		a.violationf(CheckTime, "clock moved backwards: %v -> %v", a.lastNow, now)
	}
	if now > a.window {
		a.violationf(CheckTime, "clock %v beyond run window %v", now, a.window)
	}
	a.lastNow = now
}

func (a *Auditor) checkProgress() {
	if err := a.e.K.Err(); err != nil {
		a.violationf(CheckProgress, "%v", err)
	}
}

func (a *Auditor) checkAccounting() {
	m := a.e.Metrics
	cur := snapshot(m)
	terms := []struct {
		name      string
		val, prev float64
	}{
		{"F", cur.f, a.prev.f},
		{"G", cur.g, a.prev.g},
		{"H", cur.h, a.prev.h},
		{"wasted", cur.wasted, a.prev.wasted},
	}
	for _, t := range terms {
		if math.IsNaN(t.val) || math.IsInf(t.val, 0) {
			a.violationf(CheckAccounting, "%s is not finite: %v", t.name, t.val)
			continue
		}
		if t.val < 0 {
			a.violationf(CheckAccounting, "%s is negative: %v", t.name, t.val)
		}
		if t.val < t.prev {
			a.violationf(CheckAccounting, "%s decreased: %v -> %v", t.name, t.prev, t.val)
		}
	}
}

func (a *Auditor) checkConservation() {
	m := a.e.Metrics
	if m.JobsCompleted+m.JobsLost > m.JobsAdmitted {
		a.violationf(CheckConservation, "completed %d + lost %d exceeds admitted %d",
			m.JobsCompleted, m.JobsLost, m.JobsAdmitted)
	}
	if m.JobsAdmitted > m.JobsArrived {
		a.violationf(CheckConservation, "admitted %d exceeds arrived %d", m.JobsAdmitted, m.JobsArrived)
	}
	if m.JobsSucceeded > m.JobsCompleted {
		a.violationf(CheckConservation, "succeeded %d exceeds completed %d", m.JobsSucceeded, m.JobsCompleted)
	}
	ints := []struct {
		name      string
		val, prev int
	}{
		{"admitted", m.JobsAdmitted, a.prev.admitted},
		{"completed", m.JobsCompleted, a.prev.completed},
		{"lost", m.JobsLost, a.prev.lost},
		{"succeeded", m.JobsSucceeded, a.prev.succeeded},
		{"updatesSent", m.UpdatesSent, a.prev.updatesSent},
		{"policyMsgs", m.PolicyMsgs, a.prev.policyMsgs},
	}
	for _, c := range ints {
		if c.val < c.prev {
			a.violationf(CheckConservation, "counter %s decreased: %d -> %d", c.name, c.prev, c.val)
		}
	}
}

func (a *Auditor) checkCensus() {
	m := a.e.Metrics
	inflight := m.JobsAdmitted - m.JobsCompleted - m.JobsLost
	resident := 0
	for _, r := range a.e.Resources {
		resident += int(r.Load())
	}
	parked := 0
	for _, s := range a.e.Schedulers {
		parked += s.ParkedCount()
	}
	if resident+parked > inflight {
		a.violationf(CheckCensus, "%d jobs at resources + %d parked exceed %d in flight",
			resident, parked, inflight)
	}
}

func (a *Auditor) checkQueueBound() {
	for _, s := range a.e.Schedulers {
		if d := s.QueueDelay(); d > a.cfg.QueueBound {
			a.violationf(CheckQueueBound, "scheduler %d backlog %v exceeds bound %v",
				s.Cluster(), d, a.cfg.QueueBound)
		}
	}
	for _, est := range a.e.Estimators {
		if d := est.QueueDelay(); d > a.cfg.QueueBound {
			a.violationf(CheckQueueBound, "estimator %d backlog %v exceeds bound %v",
				est.ID(), d, a.cfg.QueueBound)
		}
	}
}

func (a *Auditor) checkFaultCounters() {
	m := a.e.Metrics
	neg := []struct {
		name string
		val  int
	}{
		{"msgsLost", m.MsgsLost}, {"retries", m.MsgRetries}, {"abandoned", m.MsgsAbandoned},
		{"schedulerCrashes", m.SchedulerCrashes}, {"estimatorCrashes", m.EstimatorCrashes},
		{"failovers", m.Failovers}, {"jobsParked", m.JobsParked}, {"staleActions", m.StaleActions},
		{"estimatorFallbacks", m.EstimatorFallbacks}, {"updatesLost", m.UpdatesLost},
	}
	for _, c := range neg {
		if c.val < 0 {
			a.violationf(CheckFaultCounters, "%s is negative: %d", c.name, c.val)
		}
	}
	// A lost protocol message is always either retried or abandoned in
	// the same event, so the identity holds at every event boundary.
	if m.MsgsLost != m.MsgRetries+m.MsgsAbandoned {
		a.violationf(CheckFaultCounters, "msgsLost %d != retries %d + abandoned %d",
			m.MsgsLost, m.MsgRetries, m.MsgsAbandoned)
	}
	if !a.e.Cfg.Faults.Enabled() && !a.e.HasFaultScript() {
		for _, c := range neg {
			if c.val > 0 {
				a.violationf(CheckFaultCounters, "fault-free run but %s = %d", c.name, c.val)
			}
		}
	}
}

// checkDrain verifies the end-of-run identities: every arrived job was
// either admitted to scheduling or is still held on an unsatisfied
// precedence constraint (a release past the cutoff leaves a gap, hence
// the inequality).
func (a *Auditor) checkDrain() {
	m := a.e.Metrics
	if m.JobsAdmitted+a.e.HeldJobs() > m.JobsArrived {
		a.violationf(CheckDrain, "admitted %d + held %d exceeds arrived %d",
			m.JobsAdmitted, a.e.HeldJobs(), m.JobsArrived)
	}
	if a.e.Unfinished() < 0 {
		a.violationf(CheckDrain, "negative unfinished count %d", a.e.Unfinished())
	}
}

// publish mirrors the audit state into the engine metrics so the
// Summary carries it.
func (a *Auditor) publish() {
	a.e.Metrics.AuditChecks = a.checks
	if len(a.violations) == 0 {
		a.e.Metrics.AuditViolations = nil
		return
	}
	out := make([]string, len(a.violations))
	for i, v := range a.violations {
		out[i] = v.String()
	}
	a.e.Metrics.AuditViolations = out
}

// failFast stops the kernel and captures the diagnostic dump.
func (a *Auditor) failFast() {
	a.halted = true
	a.dump = a.buildDump()
	a.e.K.Stop()
}

// maxDumpNodes bounds per-node sections of a diagnostic dump.
const maxDumpNodes = 32

// buildDump renders the pending event queue and per-node state at the
// moment of a fail-fast stop.
func (a *Auditor) buildDump() string {
	var b strings.Builder
	k := a.e.K
	fmt.Fprintf(&b, "audit fail-fast at t=%.2f (checkpoint %d)\n", k.Now(), a.checks)
	for _, v := range a.violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	fmt.Fprintf(&b, "kernel: processed=%d pending=%d", k.Processed(), k.Pending())
	if err := k.Err(); err != nil {
		fmt.Fprintf(&b, " err=%q", err)
	}
	next := k.NextEventTimes(8)
	fmt.Fprintf(&b, " next=%.2f\n", next)
	fmt.Fprintf(&b, "schedulers (%d):\n", len(a.e.Schedulers))
	for i, s := range a.e.Schedulers {
		if i >= maxDumpNodes {
			fmt.Fprintf(&b, "  ... %d more\n", len(a.e.Schedulers)-i)
			break
		}
		fmt.Fprintf(&b, "  [%d] down=%v backlog=%.2f owned=%d parked=%d\n",
			s.Cluster(), s.Down(), s.QueueDelay(), s.OwnedCount(), s.ParkedCount())
	}
	if n := len(a.e.Estimators); n > 0 {
		fmt.Fprintf(&b, "estimators (%d):\n", n)
		for i, est := range a.e.Estimators {
			if i >= maxDumpNodes {
				fmt.Fprintf(&b, "  ... %d more\n", n-i)
				break
			}
			fmt.Fprintf(&b, "  [%d] down=%v backlog=%.2f\n", est.ID(), est.Down(), est.QueueDelay())
		}
	}
	m := a.e.Metrics
	fmt.Fprintf(&b, "metrics: arrived=%d admitted=%d completed=%d lost=%d F=%.1f G=%.1f H=%.1f wasted=%.1f\n",
		m.JobsArrived, m.JobsAdmitted, m.JobsCompleted, m.JobsLost,
		m.UsefulWork, m.RMSOverhead, m.RPOverhead, m.WastedWork)
	fmt.Fprintf(&b, "fault counters: msgsLost=%d retries=%d abandoned=%d crashes=%d/%d failovers=%d parked=%d stale=%d\n",
		m.MsgsLost, m.MsgRetries, m.MsgsAbandoned, m.SchedulerCrashes, m.EstimatorCrashes,
		m.Failovers, m.JobsParked, m.StaleActions)
	return b.String()
}

// Checks reports how many checkpoints ran.
func (a *Auditor) Checks() int { return a.checks }

// Violations returns the recorded violations.
func (a *Auditor) Violations() []Violation { return a.violations }

// ViolationStrings returns the violations rendered as they appear in
// Metrics.AuditViolations.
func (a *Auditor) ViolationStrings() []string {
	out := make([]string, len(a.violations))
	for i, v := range a.violations {
		out[i] = v.String()
	}
	return out
}

// OK reports whether no invariant was violated.
func (a *Auditor) OK() bool { return len(a.violations) == 0 }

// Halted reports whether a FailFast auditor stopped the run.
func (a *Auditor) Halted() bool { return a.halted }

// Dump returns the fail-fast diagnostic dump ("" unless FailFast
// tripped).
func (a *Auditor) Dump() string { return a.dump }

// Err summarizes the audit outcome as an error, nil when clean.
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d invariant violation(s), first: %s", len(a.violations), a.violations[0])
}

// Fingerprint hashes the violation list into a short stable id; two
// deterministic replays of the same schedule must produce the same
// fingerprint. A clean run fingerprints to "".
func (a *Auditor) Fingerprint() string { return Fingerprint(a.ViolationStrings()) }

// Fingerprint hashes a violation string list into a short stable id.
func Fingerprint(violations []string) string {
	if len(violations) == 0 {
		return ""
	}
	h := sha256.New()
	for _, v := range violations {
		_, _ = h.Write([]byte(v))
		_, _ = h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
