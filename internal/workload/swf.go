package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rmscale/internal/sim"
)

// The Cirne-Berman model the paper builds on was fitted to
// supercomputer traces distributed in the Standard Workload Format
// (SWF) of the Parallel Workloads Archive. This file lets real SWF
// traces drive the simulator directly, as an alternative to the
// synthetic generator: submit time becomes the arrival instant, run
// time the execution time, requested time the user estimate. The paper
// fixes partition size to 1 and cancellation probability to 0, so
// multi-processor entries are treated as unit-partition jobs and
// cancelled entries are skipped.
//
// SWF lines hold 18 whitespace-separated fields; lines starting with
// ';' are header comments. The fields used here are:
//
//	1: job number     2: submit time    4: run time
//	9: requested time 11: status (0 failed, 1 completed, 5 cancelled)

// SWFOptions configures the import.
type SWFOptions struct {
	// TCPU classifies LOCAL/REMOTE; zero uses the paper's 700.
	TCPU float64
	// Clusters spreads jobs across submission clusters by job number;
	// zero means 1.
	Clusters int
	// BenefitMin/BenefitMax bound the benefit factor drawn per job
	// (SWF has no deadline notion); zeros use the paper's [2,5].
	BenefitMin, BenefitMax float64
	// MaxJobs caps the import; zero means no cap.
	MaxJobs int
	// IncludeFailed keeps status-0 entries (they consumed resources);
	// cancelled entries are always skipped per the paper's model.
	IncludeFailed bool
}

func (o SWFOptions) withDefaults() SWFOptions {
	if o.TCPU == 0 {
		o.TCPU = 700
	}
	if o.Clusters == 0 {
		o.Clusters = 1
	}
	if o.BenefitMin == 0 {
		o.BenefitMin = 2
	}
	if o.BenefitMax == 0 {
		o.BenefitMax = 5
	}
	return o
}

// swfStatusCancelled is the SWF status code for cancelled jobs.
const swfStatusCancelled = 5

// ReadSWF parses a Standard Workload Format trace into the simulator's
// job model. Benefit factors are drawn deterministically from st.
// Malformed lines produce errors (with their line number); comment and
// blank lines are skipped.
func ReadSWF(r io.Reader, opts SWFOptions, st *sim.Stream) ([]*Job, error) {
	opts = opts.withDefaults()
	if opts.Clusters < 1 {
		return nil, fmt.Errorf("workload: SWF Clusters must be >= 1, got %d", opts.Clusters)
	}
	if opts.BenefitMin < 1 || opts.BenefitMax < opts.BenefitMin {
		return nil, fmt.Errorf("workload: bad SWF benefit range [%v,%v]", opts.BenefitMin, opts.BenefitMax)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var jobs []*Job
	line := 0
	id := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 11 {
			return nil, fmt.Errorf("workload: SWF line %d has %d fields, want >= 11", line, len(fields))
		}
		parse := func(idx int, name string) (float64, error) {
			v, err := strconv.ParseFloat(fields[idx], 64)
			if err != nil {
				return 0, fmt.Errorf("workload: SWF line %d: bad %s %q", line, name, fields[idx])
			}
			return v, nil
		}
		submit, err := parse(1, "submit time")
		if err != nil {
			return nil, err
		}
		runtime, err := parse(3, "run time")
		if err != nil {
			return nil, err
		}
		requested, err := parse(8, "requested time")
		if err != nil {
			return nil, err
		}
		status, err := parse(10, "status")
		if err != nil {
			return nil, err
		}
		if int(status) == swfStatusCancelled {
			continue // the paper's model has zero cancellation probability
		}
		if int(status) == 0 && !opts.IncludeFailed {
			continue
		}
		if runtime <= 0 || submit < 0 {
			continue // unusable entry (missing data markers are -1)
		}
		if requested < runtime {
			requested = runtime
		}
		class := Local
		if runtime > opts.TCPU {
			class = Remote
		}
		jobs = append(jobs, &Job{
			ID:        id,
			Arrival:   submit,
			Runtime:   runtime,
			Requested: requested,
			Benefit:   st.Uniform(opts.BenefitMin, opts.BenefitMax),
			Partition: 1,
			Cluster:   id % opts.Clusters,
			Class:     class,
		})
		id++
		if opts.MaxJobs > 0 && len(jobs) >= opts.MaxJobs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading SWF: %w", err)
	}
	return jobs, nil
}

// WriteSWF serializes jobs back to the Standard Workload Format (the
// fields this model does not track are emitted as -1, per SWF
// convention). Round-tripping through ReadSWF reproduces the jobs'
// timing fields.
func WriteSWF(w io.Writer, jobs []*Job) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "; SWF trace exported by rmscale"); err != nil {
		return err
	}
	for _, j := range jobs {
		// job submit wait run procs cpu mem reqprocs reqtime reqmem
		// status uid gid exe queue partition preceding think
		_, err := fmt.Fprintf(bw, "%d %g -1 %g 1 -1 -1 1 %g -1 1 -1 -1 -1 -1 -1 -1 -1\n",
			j.ID+1, j.Arrival, j.Runtime, j.Requested)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
