package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type fakePoint struct {
	K        int
	G        float64
	Enablers []float64
}

func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, resumed, err := OpenJournal(dir, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("fresh journal reported resumed")
	}
	want := fakePoint{K: 2, G: 10.5, Enablers: []float64{40, 8, 1}}
	if err := j.Record("case1/CENTRAL/k=2", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, resumed, err := OpenJournal(dir, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !resumed {
		t.Fatal("existing journal not resumed")
	}
	var got fakePoint
	ok, err := j2.Lookup("case1/CENTRAL/k=2", &got)
	if err != nil || !ok {
		t.Fatalf("lookup: %v, %v", ok, err)
	}
	if got.K != want.K || got.G != want.G || len(got.Enablers) != 3 {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if ok, _ := j2.Lookup("missing", &got); ok {
		t.Fatal("lookup of missing id succeeded")
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, "fid=smoke seed=1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := OpenJournal(dir, "fid=smoke seed=2"); err == nil {
		t.Fatal("journal resumed under a different fingerprint")
	} else if !strings.Contains(err.Error(), "different run") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestJournalTruncatedTail simulates a writer killed mid-append: the
// partial final line must be dropped while every committed record
// survives, and the journal must accept new records afterwards.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Record(pointName(i), fakePoint{K: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, journalName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the last record's line.
	cut := len(b) - 10
	if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, resumed, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !resumed {
		t.Fatal("truncated journal not resumed")
	}
	if j2.Len() != 2 {
		t.Fatalf("journal holds %d records after truncation, want 2", j2.Len())
	}
	var p fakePoint
	if ok, _ := j2.Lookup(pointName(3), &p); ok {
		t.Fatal("truncated record resurrected")
	}
	if err := j2.Record(pointName(3), fakePoint{K: 3}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := j2.Lookup(pointName(3), &p); !ok || p.K != 3 {
		t.Fatalf("re-recorded point missing: %+v, %v", p, ok)
	}
}

func TestJournalRecordIdempotent(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("id", fakePoint{K: 1, G: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("id", fakePoint{K: 1, G: 999}); err != nil {
		t.Fatal(err)
	}
	var p fakePoint
	if ok, _ := j.Lookup("id", &p); !ok || p.G != 1 {
		t.Fatalf("re-record overwrote the committed value: %+v", p)
	}
	if j.Len() != 1 {
		t.Fatalf("duplicate record changed length: %d", j.Len())
	}
}

// TestJournalRecoversHeaderlessGarbage pins the crash-recovery
// contract for a file whose header never became valid — a power cut
// between journal creation and the header fsync, or whole-file
// damage. No record of such a file was ever acknowledged, so open
// must succeed with a fresh journal, report the damaged lines as
// dropped, and leave the file usable for new records.
func TestJournalRecoversHeaderlessGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte("not json at all\nmore garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, resumed, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatalf("headerless journal not recovered: %v", err)
	}
	defer j.Close()
	if resumed {
		t.Fatal("garbage journal reported as resumed")
	}
	if j.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2 damaged lines", j.Dropped())
	}
	if err := j.Record("id", fakePoint{G: 1}); err != nil {
		t.Fatal(err)
	}
	// The rewritten file must reopen cleanly with the record intact.
	j.Close()
	j2, resumed, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !resumed || j2.Len() != 1 || j2.Dropped() != 0 {
		t.Fatalf("reopen after recovery: resumed=%v len=%d dropped=%d", resumed, j2.Len(), j2.Dropped())
	}
}

func pointName(i int) string {
	return "case1/LOWEST/k=" + string(rune('0'+i))
}

func TestJournalEach(t *testing.T) {
	j, _, err := OpenJournal(t.TempDir(), "fp-each")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// Record out of lexicographic order; Each must iterate sorted.
	for _, id := range []string{"exp/bb", "exp/aa", "exp/cc"} {
		if err := j.Record(id, fakePoint{K: len(id)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := j.Each(func(id string, data json.RawMessage) error {
		if len(data) == 0 {
			t.Errorf("entry %s has empty payload", id)
		}
		got = append(got, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"exp/aa", "exp/bb", "exp/cc"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Each order %v, want %v", got, want)
	}
	// An fn error aborts the walk and propagates.
	calls := 0
	err = j.Each(func(id string, data json.RawMessage) error {
		calls++
		return os.ErrClosed
	})
	if err != os.ErrClosed || calls != 1 {
		t.Fatalf("Each error propagation: err=%v calls=%d", err, calls)
	}
}

// TestJournalGarbledTailRecovery pins the valid-prefix recovery
// contract: a journal whose tail is garbage (not merely chopped) is
// recovered to the records before the garbage, the file is truncated
// back to that prefix so later appends stay parseable, and Dropped
// reports the discarded lines.
func TestJournalGarbledTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Record(pointName(i), fakePoint{K: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, journalName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the last record's line with garbage and append one more
	// garbage line: two dropped lines, records 1-2 intact.
	lines := strings.SplitAfter(strings.TrimRight(string(b), "\n"), "\n")
	keep := strings.Join(lines[:len(lines)-1], "")
	garbled := keep + "{\"id\":\"x\", CORRUPT@@@\nnot json either\n"
	if err := os.WriteFile(path, []byte(garbled), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, resumed, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("garbled journal not resumed")
	}
	if j2.Len() != 2 {
		t.Fatalf("journal holds %d records after garbled tail, want 2", j2.Len())
	}
	if j2.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", j2.Dropped())
	}
	// Appending after recovery must land on a clean boundary: record 3
	// again, close, reopen, and everything must be there.
	if err := j2.Record(pointName(3), fakePoint{K: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 3 || j3.Dropped() != 0 {
		t.Fatalf("after re-append: len=%d dropped=%d, want 3 and 0", j3.Len(), j3.Dropped())
	}
}

// TestJournalUnterminatedTail pins that a final record whose newline
// never landed is treated as uncommitted even when its JSON parses:
// keeping it would let the next append concatenate onto it.
func TestJournalUnterminatedTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := j.Record(pointName(i), fakePoint{K: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, journalName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-1], 0o644); err != nil { // drop only the final '\n'
		t.Fatal(err)
	}
	j2, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 || j2.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 1 and 1 (unterminated record is uncommitted)", j2.Len(), j2.Dropped())
	}
	// Re-recording it must produce a journal that reopens clean.
	if err := j2.Record(pointName(2), fakePoint{K: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, _, err := OpenJournal(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 || j3.Dropped() != 0 {
		t.Fatalf("after re-append: len=%d dropped=%d, want 2 and 0", j3.Len(), j3.Dropped())
	}
}
