package routing

import (
	"math"
	"testing"
	"testing/quick"

	"rmscale/internal/sim"
	"rmscale/internal/topology"
)

// lineGraph builds 0-1-2-...-n-1 with unit latencies and bandwidth 100.
func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 1, 100); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSPFLine(t *testing.T) {
	g := lineGraph(t, 5)
	tab, err := SPF(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if tab.Latency[v] != float64(v) {
			t.Errorf("latency to %d = %v, want %d", v, tab.Latency[v], v)
		}
		if tab.Hops[v] != v {
			t.Errorf("hops to %d = %d, want %d", v, tab.Hops[v], v)
		}
	}
	if tab.NextHop[4] != 1 {
		t.Errorf("next hop to 4 = %d, want 1", tab.NextHop[4])
	}
	if tab.NextHop[0] != 0 || tab.Latency[0] != 0 {
		t.Error("self route wrong")
	}
}

func TestSPFPrefersLowLatencyOverFewHops(t *testing.T) {
	// 0-1-2 with latency 1 each, plus direct 0-2 with latency 5.
	g := topology.NewGraph(3)
	for _, e := range []struct {
		u, v int
		lat  float64
	}{{0, 1, 1}, {1, 2, 1}, {0, 2, 5}} {
		if err := g.AddEdge(e.u, e.v, e.lat, 100); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := SPF(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Latency[2] != 2 || tab.Hops[2] != 2 || tab.NextHop[2] != 1 {
		t.Fatalf("route to 2: latency=%v hops=%d next=%d, want 2/2/1",
			tab.Latency[2], tab.Hops[2], tab.NextHop[2])
	}
}

func TestSPFBottleneckBandwidth(t *testing.T) {
	g := topology.NewGraph(3)
	if err := g.AddEdge(0, 1, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1, 10); err != nil {
		t.Fatal(err)
	}
	tab, err := SPF(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Bandwidth[2] != 10 {
		t.Fatalf("bottleneck to 2 = %v, want 10", tab.Bandwidth[2])
	}
	if tab.Bandwidth[1] != 100 {
		t.Fatalf("bottleneck to 1 = %v, want 100", tab.Bandwidth[1])
	}
}

func TestSPFUnreachable(t *testing.T) {
	g := topology.NewGraph(3)
	if err := g.AddEdge(0, 1, 1, 100); err != nil {
		t.Fatal(err)
	}
	tab, err := SPF(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tab.Latency[2], 1) || tab.Hops[2] != -1 || tab.NextHop[2] != -1 {
		t.Fatalf("unreachable node not marked: %v/%d/%d",
			tab.Latency[2], tab.Hops[2], tab.NextHop[2])
	}
}

func TestSPFBadSource(t *testing.T) {
	g := lineGraph(t, 3)
	if _, err := SPF(g, -1); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := SPF(g, 3); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestPathReconstruction(t *testing.T) {
	g := lineGraph(t, 5)
	tab, err := SPF(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := tab.Path(g, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestPathUnreachableNil(t *testing.T) {
	g := topology.NewGraph(2)
	tab, err := SPF(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Path(g, 1) != nil {
		t.Fatal("unreachable path should be nil")
	}
	if tab.Path(g, 7) != nil {
		t.Fatal("out-of-range path should be nil")
	}
}

func TestAllPairs(t *testing.T) {
	g := lineGraph(t, 6)
	m, err := AllPairs(g, []int{0, 3, 5, 3}) // duplicate 3 must dedup
	if err != nil {
		t.Fatal(err)
	}
	if len(m.IDs) != 3 {
		t.Fatalf("IDs = %v, want 3 distinct", m.IDs)
	}
	lat, hops, _, err := m.Between(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 5 || hops != 5 {
		t.Fatalf("Between(0,5) = %v,%d", lat, hops)
	}
	lat, _, _, err = m.Between(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 3 {
		t.Fatalf("Between(3,0) = %v", lat)
	}
	if _, _, _, err := m.Between(0, 2); err == nil {
		t.Fatal("non-endpoint accepted")
	}
	if _, _, _, err := m.Between(2, 0); err == nil {
		t.Fatal("non-endpoint accepted")
	}
}

func TestAllPairsBadEndpoint(t *testing.T) {
	g := lineGraph(t, 3)
	if _, err := AllPairs(g, []int{0, 9}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

// Property: SPF distances satisfy the triangle inequality over edges
// (relaxation fixpoint) and symmetry on undirected graphs.
func TestSPFOptimalityProperty(t *testing.T) {
	src := sim.NewSource(4242)
	g, err := topology.PowerLaw(80, 2, topology.DefaultLinkParams(), src.Stream("g"))
	if err != nil {
		t.Fatal(err)
	}
	tables := make([]*Table, g.N)
	for u := 0; u < g.N; u++ {
		tables[u], err = SPF(g, u)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Fixpoint: no edge can relax any distance further.
	for u := 0; u < g.N; u++ {
		for _, e := range g.Adj[u] {
			for s := 0; s < g.N; s++ {
				if tables[s].Latency[e.To] > tables[s].Latency[u]+e.Latency+1e-9 {
					t.Fatalf("edge %d-%d relaxes distance from %d", u, e.To, s)
				}
			}
		}
	}
	// Symmetry: d(u,v) == d(v,u).
	f := func(a, b uint8) bool {
		u, v := int(a)%g.N, int(b)%g.N
		return math.Abs(tables[u].Latency[v]-tables[v].Latency[u]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: hop counts along reconstructed paths match the table.
func TestPathLengthMatchesHops(t *testing.T) {
	src := sim.NewSource(777)
	g, err := topology.PowerLaw(40, 2, topology.DefaultLinkParams(), src.Stream("g"))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := SPF(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		p := tab.Path(g, v)
		if p == nil {
			t.Fatalf("no path to %d in connected graph", v)
		}
		if len(p)-1 != tab.Hops[v] {
			t.Fatalf("path to %d has %d hops, table says %d", v, len(p)-1, tab.Hops[v])
		}
	}
}

func BenchmarkSPF1000(b *testing.B) {
	src := sim.NewSource(5)
	g, err := topology.PowerLaw(1000, 2, topology.DefaultLinkParams(), src.Stream("g"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SPF(g, i%g.N); err != nil {
			b.Fatal(err)
		}
	}
}
