// Scalingpath demonstrates Step 2 of the paper's measurement procedure
// (Figure 1's flowchart): before tuning the RMS, find a feasible — and
// cheapest — scaling path for the resource pool itself. The demand
// doubles and quadruples; the search decides how to buy the capacity:
// more clusters of cheap unit-speed resources, or fewer, faster ones.
//
//	go run ./examples/scalingpath
package main

import (
	"fmt"
	"log"

	"rmscale"
)

func main() {
	const baseDemand = 0.04 // offered jobs per time unit at k=1
	// Throughput is measured over the full window (arrivals + drain),
	// so the absorbed-demand threshold scales by the window ratio.
	const demandPerK = baseDemand * 1200 / 3000

	cache := rmscale.NewSubstrateCache()
	ev := rmscale.PathEvaluatorFunc(func(k int, vars []float64) (rmscale.Observation, error) {
		clusters := int(vars[0])
		mu := vars[1]
		cfg := rmscale.DefaultConfig()
		cfg.Spec = rmscale.GridSpec{Clusters: clusters, ClusterSize: 6}
		cfg.ServiceRate = mu
		cfg.Workload.Clusters = clusters
		// Offered load tracks demand, not capacity: the pool must
		// absorb k times the base workload.
		cfg.Workload.ArrivalRate = baseDemand * float64(k)
		cfg.Workload.Horizon = 1200
		cfg.Horizon = 1200
		cfg.Drain = 1800
		sub, err := cache.Get(cfg)
		if err != nil {
			return rmscale.Observation{}, err
		}
		eng, err := rmscale.NewEngineWith(cfg, rmscale.NewLowest(), sub)
		if err != nil {
			return rmscale.Observation{}, err
		}
		s := eng.Run()
		return rmscale.Observation{
			F: s.F, G: s.G, H: s.H,
			Efficiency: s.Efficiency,
			Throughput: s.Throughput,
		}, nil
	})

	spec := rmscale.PathSpec{
		Vars: []rmscale.PathVar{
			// A cluster of 6 resources costs 6 units; faster resources
			// cost a premium per speed step across the whole pool.
			{Name: "clusters", Min: 2, Max: 24, Integer: true, CostWeight: 6},
			{Name: "service-rate", Min: 1, Max: 3, CostWeight: 20},
		},
		Ks:   []int{1, 2, 4},
		Band: rmscale.Band{Lo: 0.30, Hi: 0.45},
		Demand: func(k int, obs rmscale.Observation) bool {
			// Met when ~95% of the offered jobs completed in-window.
			return obs.Throughput >= 0.95*demandPerK*float64(k)
		},
	}
	spec.Anneal.Iters = 14
	spec.Anneal.Seed = 3

	fmt.Println("searching the scaling path (demand doubles per step)...")
	path, err := rmscale.FindScalingPath(ev, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-4s %-9s %-13s %-8s %-11s %s\n",
		"k", "clusters", "service-rate", "cost", "throughput", "feasible")
	for _, pt := range path.Points {
		fmt.Printf("%-4d %-9.0f %-13.2f %-8.0f %-11.4f %v\n",
			pt.K, pt.Vars[0], pt.Vars[1], pt.Cost, pt.Obs.Throughput, pt.Feasible)
	}
	if path.Feasible() {
		fmt.Println("\na scalable RP exists along this path — the RMS measurement (Step 3) may proceed")
	} else {
		fmt.Println("\nno scalable RP found: per the paper's flowchart, the base system is unscalable")
	}
}
