package lint_test

import (
	"go/token"
	"go/types"
	"os/exec"
	"strings"
	"testing"

	"rmscale/internal/lint"
	"rmscale/internal/lint/load"
)

// TestConfigMatchesModule keeps DefaultConfig honest: every concrete
// package it names must exist in the module (no stale entries rotting
// as packages move), and the enum it describes must actually declare
// the constants every switch is required to cover.
func TestConfigMatchesModule(t *testing.T) {
	out, err := exec.Command("go", "list", "rmscale/...").Output()
	if err != nil {
		t.Fatal(err)
	}
	exists := map[string]bool{}
	for _, p := range strings.Fields(string(out)) {
		exists[p] = true
	}

	cfg := lint.DefaultConfig
	check := func(list []string, name string) {
		t.Helper()
		if len(list) == 0 {
			t.Errorf("config %s is empty", name)
		}
		for _, e := range list {
			if strings.HasSuffix(e, "/...") {
				root := strings.TrimSuffix(e, "/...")
				found := exists[root]
				for p := range exists {
					if strings.HasPrefix(p, root+"/") {
						found = true
					}
				}
				if !found {
					t.Errorf("config %s entry %q matches no module package", name, e)
				}
				continue
			}
			if !exists[e] {
				t.Errorf("config %s entry %q is stale: no such package", name, e)
			}
		}
	}
	check(cfg.SimVisible, "SimVisible")
	check(cfg.Kernel, "Kernel")
	check(cfg.MapOrder, "MapOrder")
	check(cfg.Exhaustive, "Exhaustive")

	if !exists[cfg.EnumPkg] {
		t.Fatalf("config EnumPkg %q is stale: no such package", cfg.EnumPkg)
	}
	if len(cfg.EnumConstants) != 7 {
		t.Errorf("the paper evaluates seven models; config lists %d enum constants", len(cfg.EnumConstants))
	}

	// Type-check the enum package and verify the configured constants
	// really are constants of the configured type.
	fset := token.NewFileSet()
	pkgs, err := load.Module(fset, "../..", cfg.EnumPkg)
	if err != nil {
		t.Fatal(err)
	}
	var enumPkg *types.Package
	for _, p := range pkgs {
		if p.Path == cfg.EnumPkg {
			enumPkg = p.Pkg
		}
	}
	if enumPkg == nil {
		t.Fatalf("load.Module did not return %s", cfg.EnumPkg)
	}
	tobj := enumPkg.Scope().Lookup(cfg.EnumType)
	if tobj == nil {
		t.Fatalf("config EnumType %s.%s does not exist", cfg.EnumPkg, cfg.EnumType)
	}
	if _, ok := tobj.(*types.TypeName); !ok {
		t.Fatalf("%s.%s is not a type", cfg.EnumPkg, cfg.EnumType)
	}
	declared := map[string]bool{}
	for _, name := range enumPkg.Scope().Names() {
		obj := enumPkg.Scope().Lookup(name)
		c, ok := obj.(*types.Const)
		if !ok {
			continue
		}
		if named, ok := types.Unalias(c.Type()).(*types.Named); ok && named.Obj() == tobj {
			declared[name] = true
		}
	}
	for _, want := range cfg.EnumConstants {
		if !declared[want] {
			t.Errorf("config enum constant %q is not declared as a %s.%s constant",
				want, cfg.EnumPkg, cfg.EnumType)
		}
	}
	// And the reverse: a constant added to the enum must be added to
	// the config (and therefore to every switch) too.
	for name := range declared {
		found := false
		for _, c := range cfg.EnumConstants {
			if c == name {
				found = true
			}
		}
		if !found {
			t.Errorf("enum constant %s.%s is missing from config EnumConstants", cfg.EnumPkg, name)
		}
	}
}
