package topology

import (
	"fmt"
	"math"

	"rmscale/internal/sim"
)

// LinkParams bounds the random latency and bandwidth assigned to
// generated links.
type LinkParams struct {
	MinLatency, MaxLatency     float64
	MinBandwidth, MaxBandwidth float64
}

// DefaultLinkParams matches the paper's "finite bandwidth and non-zero
// latencies": latencies of a fraction of a time unit (jobs run for
// hundreds of units), generous but finite bandwidth.
func DefaultLinkParams() LinkParams {
	return LinkParams{MinLatency: 0.2, MaxLatency: 2.0, MinBandwidth: 50, MaxBandwidth: 200}
}

func (p LinkParams) validate() error {
	if p.MinLatency <= 0 || p.MaxLatency < p.MinLatency {
		return fmt.Errorf("topology: bad latency range [%v,%v]", p.MinLatency, p.MaxLatency)
	}
	if p.MinBandwidth <= 0 || p.MaxBandwidth < p.MinBandwidth {
		return fmt.Errorf("topology: bad bandwidth range [%v,%v]", p.MinBandwidth, p.MaxBandwidth)
	}
	return nil
}

func (p LinkParams) draw(st *sim.Stream) (latency, bandwidth float64) {
	return st.Uniform(p.MinLatency, p.MaxLatency), st.Uniform(p.MinBandwidth, p.MaxBandwidth)
}

// PowerLaw generates an Internet-like graph by preferential attachment
// (Barabási–Albert): each new node attaches to m existing nodes chosen
// with probability proportional to degree. The result is connected and
// has the heavy-tailed degree distribution the Mercator maps exhibit.
func PowerLaw(n, m int, lp LinkParams, st *sim.Stream) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: PowerLaw needs n >= 2, got %d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("topology: PowerLaw needs m >= 1, got %d", m)
	}
	if err := lp.validate(); err != nil {
		return nil, err
	}
	g := NewGraph(n)
	// Seed clique of size min(m+1, n).
	seed := m + 1
	if seed > n {
		seed = n
	}
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			lat, bw := lp.draw(st)
			if err := g.AddEdge(u, v, lat, bw); err != nil {
				return nil, err
			}
		}
	}
	// targets holds one entry per degree endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	var targets []int
	for u := 0; u < seed; u++ {
		for i := 0; i < g.Degree(u); i++ {
			targets = append(targets, u)
		}
	}
	for u := seed; u < n; u++ {
		seen := map[int]bool{}
		var attached []int // kept in draw order for determinism
		for len(attached) < m && len(attached) < u {
			v := targets[st.Intn(len(targets))]
			if v == u || seen[v] {
				continue
			}
			seen[v] = true
			attached = append(attached, v)
		}
		for _, v := range attached {
			lat, bw := lp.draw(st)
			if err := g.AddEdge(u, v, lat, bw); err != nil {
				return nil, err
			}
			targets = append(targets, u, v)
		}
	}
	return g, nil
}

// Waxman generates a random geometric graph on the unit square with edge
// probability alpha*exp(-d/(beta*L)) where d is Euclidean distance and L
// the maximum distance. Connectivity is repaired by chaining each
// stranded component to its nearest placed neighbour, so the result is
// always connected. Latency is proportional to distance.
func Waxman(n int, alpha, beta float64, lp LinkParams, st *sim.Stream) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: Waxman needs n >= 2, got %d", n)
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("topology: Waxman needs alpha,beta in (0,1], got %v,%v", alpha, beta)
	}
	if err := lp.validate(); err != nil {
		return nil, err
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{st.Float64(), st.Float64()}
	}
	dist := func(a, b int) float64 {
		dx, dy := pts[a].x-pts[b].x, pts[a].y-pts[b].y
		return math.Hypot(dx, dy)
	}
	const maxDist = math.Sqrt2
	g := NewGraph(n)
	latFor := func(d float64) float64 {
		return lp.MinLatency + (lp.MaxLatency-lp.MinLatency)*d/maxDist
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := dist(u, v)
			if st.Float64() < alpha*math.Exp(-d/(beta*maxDist)) {
				_, bw := lp.draw(st)
				if err := g.AddEdge(u, v, latFor(d), bw); err != nil {
					return nil, err
				}
			}
		}
	}
	// Repair connectivity: union-find over components, connect each
	// extra component to its geometrically nearest node outside it.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for u := 0; u < n; u++ {
		for _, e := range g.Adj[u] {
			union(u, e.To)
		}
	}
	for u := 1; u < n; u++ {
		if find(u) == find(0) {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if find(v) != find(u) {
				if d := dist(u, v); d < bestD {
					best, bestD = v, d
				}
			}
		}
		_, bw := lp.draw(st)
		if err := g.AddEdge(u, best, latFor(bestD), bw); err != nil {
			return nil, err
		}
		union(u, best)
	}
	return g, nil
}

// RingOfCliques builds cliques of size cliqueSize whose first members are
// joined in a ring. It is a deliberately regular topology used as a
// contrast case to the power-law generator in ablation studies.
func RingOfCliques(cliques, cliqueSize int, lp LinkParams, st *sim.Stream) (*Graph, error) {
	if cliques < 1 || cliqueSize < 1 {
		return nil, fmt.Errorf("topology: RingOfCliques needs positive sizes, got %d,%d", cliques, cliqueSize)
	}
	if err := lp.validate(); err != nil {
		return nil, err
	}
	n := cliques * cliqueSize
	g := NewGraph(n)
	for c := 0; c < cliques; c++ {
		base := c * cliqueSize
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				lat, bw := lp.draw(st)
				if err := g.AddEdge(base+i, base+j, lat, bw); err != nil {
					return nil, err
				}
			}
		}
	}
	if cliques > 1 {
		for c := 0; c < cliques; c++ {
			u := c * cliqueSize
			v := ((c + 1) % cliques) * cliqueSize
			if u == v || g.HasEdge(u, v) {
				continue
			}
			lat, bw := lp.draw(st)
			if err := g.AddEdge(u, v, lat, bw); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
