package rms

import (
	"rmscale/internal/grid"
)

// riDemand describes the stolen waiting job S_y offers to the
// volunteering scheduler S_x.
type riDemand struct {
	id  int
	req float64
}

// riInfo is S_x's answer: its ATT for the offered job and its RUS.
type riInfo struct {
	id  int
	att float64
	rus float64
}

// riState is the per-scheduler R-I state.
type riState struct {
	nextID  int
	pending map[int]*grid.JobCtx // demand id -> job held for negotiation
}

// ReceiverInitiated is the paper's R-I model: periodically, each
// scheduler checks the resource utilization status (RUS) of its
// cluster; when it falls below delta, it volunteers to at most L_p
// remote schedulers. A loaded scheduler receiving the offer sends the
// resource demands of the first job in its (virtual) wait queue; the
// volunteer replies with its ATT and RUS, and the owner computes the
// turnaround cost at both sites and schedules the job accordingly.
type ReceiverInitiated struct{}

// NewReceiverInitiated returns the R-I model.
func NewReceiverInitiated() *ReceiverInitiated { return &ReceiverInitiated{} }

// Name implements grid.Policy.
func (*ReceiverInitiated) Name() string { return "R-I" }

// Central implements grid.Policy.
func (*ReceiverInitiated) Central() bool { return false }

// UsesMiddleware implements grid.Policy.
func (*ReceiverInitiated) UsesMiddleware() bool { return true }

// Attach initializes negotiation bookkeeping.
func (*ReceiverInitiated) Attach(e *grid.Engine) {
	for c := 0; c < e.Clusters(); c++ {
		e.Scheduler(c).State = &riState{pending: make(map[int]*grid.JobCtx)}
	}
}

// OnJob places jobs locally; load moves only through volunteering.
func (*ReceiverInitiated) OnJob(s *grid.Scheduler, ctx *grid.JobCtx) {
	placeLocally(s, ctx)
}

// OnTick volunteers when the cluster's resource utilization status
// falls below the delta threshold, per the paper's R-I description.
func (*ReceiverInitiated) OnTick(s *grid.Scheduler) {
	proto := s.Engine().Cfg.Protocol
	s.ExecDecision(len(s.LocalResources()), func() {
		if s.Utilization() >= proto.RUSDelta {
			return
		}
		for _, p := range s.RandomPeers(proto.Lp) {
			s.SendPolicy(p, msgRIVolunteer, nil)
		}
	})
}

// OnMessage runs the three-step negotiation.
func (*ReceiverInitiated) OnMessage(s *grid.Scheduler, m *grid.Message) {
	st := s.State.(*riState)
	e := s.Engine()
	proto := e.Cfg.Protocol
	switch m.Kind {
	case msgRIVolunteer:
		// A remote cluster has free capacity. If we are loaded, offer
		// the demands of one waiting job.
		s.ExecDecision(len(s.LocalResources()), func() {
			if s.AvgLocalLoad() <= proto.ThresholdLoad {
				return
			}
			ctx := e.StealQueuedJob(s.Cluster())
			if ctx == nil {
				return
			}
			id := st.nextID
			st.nextID++
			st.pending[id] = ctx
			s.SendPolicy(m.From, msgRIDemand, riDemand{id: id, req: ctx.Job.Requested})
		})
	case msgRIDemand:
		d := m.Payload.(riDemand)
		s.ExecDecision(len(s.LocalResources()), func() {
			s.SendPolicy(m.From, msgRIInfo, riInfo{
				id:  d.id,
				att: e.AWT(s) + e.ERT(d.req),
				rus: s.Utilization(),
			})
		})
	case msgRIInfo:
		info := m.Payload.(riInfo)
		ctx, ok := st.pending[info.id]
		if !ok {
			return
		}
		delete(st.pending, info.id)
		s.ExecDecision(len(s.LocalResources()), func() {
			localATT := e.AWT(s) + e.ERT(ctx.Job.Requested)
			if info.att < localATT {
				s.TransferJob(ctx, m.From)
				return
			}
			placeLocally(s, ctx)
		})
	}
}

// OnStatus implements grid.Policy.
func (*ReceiverInitiated) OnStatus(*grid.Scheduler, []int) {}
