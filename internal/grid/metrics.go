package grid

import (
	"fmt"

	"rmscale/internal/sim"
	"rmscale/internal/stats"
)

// Metrics accumulates the paper's accounting terms during a run and
// derives the summary the scalability analysis consumes.
type Metrics struct {
	// UsefulWork is F: summed runtime of jobs that completed within
	// their benefit bound U_b.
	UsefulWork float64
	// RMSOverhead is G: total scheduler + estimator busy time spent
	// scheduling, receiving and processing updates.
	RMSOverhead float64
	// RPOverhead is H: job-control and data-management overhead at the
	// resource pool.
	RPOverhead float64
	// WastedWork is the runtime of jobs that executed but missed their
	// deadline; tracked separately (the paper folds neither into F).
	WastedWork float64

	JobsArrived   int
	JobsCompleted int
	JobsSucceeded int
	JobsLost      int // destroyed by resource crashes

	ResponseTimes stats.Accumulator // completion - arrival, all completed jobs
	WaitTimes     stats.Accumulator // start - arrival

	// Message accounting by category.
	UpdatesSent       int
	UpdatesSuppressed int
	UpdatesLost       int
	DigestsSent       int
	PolicyMsgs        int
	JobTransfers      int // REMOTE jobs moved between clusters

	// SchedulerBusy[c] is the busy time of cluster c's scheduler, used
	// to locate bottlenecks. EstimatorBusy likewise.
	SchedulerBusy []float64
	EstimatorBusy []float64
	// MiddlewareBusy is the grid middleware queue's busy time (S-I
	// family only); its utilization is a scalability bottleneck
	// indicator.
	MiddlewareBusy float64
	// MaxSchedDelay is the worst backlog any scheduler's work queue
	// reached: the sharpest saturation signal, since averages dilute
	// transient overload over the drain window.
	MaxSchedDelay float64
}

// Summary condenses a run into the numbers the scalability metric and
// the figures need.
type Summary struct {
	F, G, H          float64
	Efficiency       float64
	Throughput       float64 // jobs completed per time unit
	MeanResponse     float64
	SuccessRate      float64 // succeeded / completed
	Jobs             int
	Wasted           float64
	MaxSchedulerUtil float64 // busiest RMS node busy fraction, saturation flag
	MaxSchedDelay    float64 // worst RMS work-queue backlog, saturation flag
	MiddlewareUtil   float64 // middleware queue busy fraction
}

// Summarize derives the summary over an observation window of the given
// length.
func (m *Metrics) Summarize(window sim.Time) Summary {
	s := Summary{
		F:      m.UsefulWork,
		G:      m.RMSOverhead,
		H:      m.RPOverhead,
		Jobs:   m.JobsArrived,
		Wasted: m.WastedWork,
	}
	total := s.F + s.G + s.H
	if total > 0 {
		s.Efficiency = s.F / total
	}
	if window > 0 {
		s.Throughput = float64(m.JobsCompleted) / window
	}
	s.MeanResponse = m.ResponseTimes.Mean()
	if m.JobsCompleted > 0 {
		s.SuccessRate = float64(m.JobsSucceeded) / float64(m.JobsCompleted)
	}
	if window > 0 {
		max := 0.0
		for _, b := range m.SchedulerBusy {
			if u := b / float64(window); u > max {
				max = u
			}
		}
		for _, b := range m.EstimatorBusy {
			if u := b / float64(window); u > max {
				max = u
			}
		}
		s.MaxSchedulerUtil = max
		s.MiddlewareUtil = m.MiddlewareBusy / float64(window)
	}
	s.MaxSchedDelay = m.MaxSchedDelay
	return s
}

// String renders the summary compactly for logs and CLIs.
func (s Summary) String() string {
	return fmt.Sprintf(
		"F=%.0f G=%.0f H=%.0f E=%.3f thpt=%.4f resp=%.1f success=%.3f jobs=%d maxRMSutil=%.2f maxRMSdelay=%.1f mwUtil=%.2f",
		s.F, s.G, s.H, s.Efficiency, s.Throughput, s.MeanResponse, s.SuccessRate, s.Jobs,
		s.MaxSchedulerUtil, s.MaxSchedDelay, s.MiddlewareUtil)
}

// chargeScheduler adds cost to G and busy wall time (cost divided by
// the node speed) to cluster c's scheduler.
func (m *Metrics) chargeScheduler(c int, cost, busy float64) {
	m.RMSOverhead += cost
	if c >= 0 && c < len(m.SchedulerBusy) {
		m.SchedulerBusy[c] += busy
	}
}

// chargeEstimator adds cost to G and busy wall time to estimator e.
func (m *Metrics) chargeEstimator(e int, cost, busy float64) {
	m.RMSOverhead += cost
	if e >= 0 && e < len(m.EstimatorBusy) {
		m.EstimatorBusy[e] += busy
	}
}
