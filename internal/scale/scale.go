// Package scale implements the paper's primary contribution: a
// quantitative scalability measurement framework for resource
// management systems.
//
// The framework (Section 2 of the paper):
//
//   - A scaling strategy grows the system from a base configuration
//     along scaling variables x(k); after each step, a set of scaling
//     enablers y(k) is re-tuned so the system operates optimally.
//   - The isoefficiency metric holds overall efficiency
//     E(k) = F(k) / (F(k)+G(k)+H(k)) at a chosen level while a
//     simulated annealing search finds the enabler setting minimizing
//     the RMS overhead G(k).
//   - The scalability of the RMS at scale k is the slope of the
//     minimal-cost curve G(k); the isoefficiency condition
//     f(k) > c*g(k) must hold for the configuration to remain
//     economically deployable.
package scale

import (
	"fmt"

	"rmscale/internal/anneal"
	"rmscale/internal/stats"
)

// Variable is one scaling variable x_i(k): a named dimension of growth
// with its value at every scale factor (e.g. network size, service
// rate, estimator count, L_p).
type Variable struct {
	Name string
	// Value returns the variable's setting at scale factor k >= 1.
	Value func(k int) float64
}

// Linear returns a variable growing proportionally: base * k.
func Linear(name string, base float64) Variable {
	return Variable{Name: name, Value: func(k int) float64 { return base * float64(k) }}
}

// Enabler is one tunable scaling enabler y_i: a bounded search
// dimension with a starting value.
type Enabler struct {
	Name     string
	Min, Max float64
	Integer  bool
	Init     float64
}

// dim converts to the annealer's dimension type.
func (e Enabler) dim() anneal.Dim {
	return anneal.Dim{Name: e.Name, Min: e.Min, Max: e.Max, Integer: e.Integer}
}

// Validate reports the first bad bound.
func (e Enabler) Validate() error {
	if e.Max < e.Min {
		return fmt.Errorf("scale: enabler %q has Max < Min", e.Name)
	}
	if e.Init < e.Min || e.Init > e.Max {
		return fmt.Errorf("scale: enabler %q Init %v outside [%v,%v]", e.Name, e.Init, e.Min, e.Max)
	}
	return nil
}

// Observation is what one evaluation of the managed system yields; the
// evaluator is typically a full grid simulation.
type Observation struct {
	F, G, H      float64
	Efficiency   float64
	Throughput   float64
	MeanResponse float64
	SuccessRate  float64
	// Saturated reports whether any RMS node ran at its capacity
	// limit (a scalability bottleneck indicator).
	Saturated bool

	// Fault accounting for degraded-mode evaluations, averaged over
	// replicas like the terms above; all zero in a fault-free run.
	JobsLost  float64 // jobs destroyed by crashes or dropped
	Crashes   float64 // RMS-node (scheduler + estimator) crashes
	MsgsLost  float64 // protocol messages lost to faults
	Retries   float64 // protocol retransmissions issued
	Failovers float64 // jobs re-homed off a crashed scheduler
}

// Evaluator runs the managed distributed system at scale factor k with
// the given enabler values (ordered as the Enablers slice passed to
// Measure) and reports the resulting accounting terms.
type Evaluator interface {
	Evaluate(k int, enablers []float64) (Observation, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(k int, enablers []float64) (Observation, error)

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(k int, enablers []float64) (Observation, error) {
	return f(k, enablers)
}

// Band is the isoefficiency band the tuner must keep E(k) in. The lower
// edge is the binding constraint: efficiency below Lo marks a
// configuration infeasible. Efficiency above Hi is recorded (InBand =
// false) but not penalized — burning overhead to force efficiency DOWN
// into the band would reward waste, so the framework treats the band's
// upper edge as informational, and the paper's stressed configurations
// keep tuned points inside the band anyway.
type Band struct {
	Lo, Hi float64
}

// PaperBand is the band used throughout the paper's evaluation.
func PaperBand() Band { return Band{Lo: 0.38, Hi: 0.42} }

// Contains reports whether e lies inside the band.
func (b Band) Contains(e float64) bool { return e >= b.Lo && e <= b.Hi }

// Feasible reports whether e satisfies the binding (lower) constraint.
func (b Band) Feasible(e float64) bool { return e >= b.Lo }

// Penalty returns the constraint violation magnitude for the annealer.
func (b Band) Penalty(e float64) float64 {
	if e >= b.Lo {
		return 0
	}
	return b.Lo - e
}

// Validate reports a malformed band.
func (b Band) Validate() error {
	if b.Lo <= 0 || b.Hi >= 1 || b.Hi < b.Lo {
		return fmt.Errorf("scale: band [%v,%v] must satisfy 0 < Lo <= Hi < 1", b.Lo, b.Hi)
	}
	return nil
}

// Point is the tuned result at one scale factor.
type Point struct {
	K        int
	G        float64   // minimal RMS overhead subject to the band
	Enablers []float64 // the tuned enabler setting
	Obs      Observation
	Feasible bool // efficiency >= band floor was achievable
	InBand   bool // efficiency inside [Lo, Hi]
	Evals    int  // simulator runs spent tuning this point
}

// Measurement is the output of the paper's measurement procedure for
// one RMS: the tuned minimal-overhead curve G(k) and its derived
// scalability quantities.
type Measurement struct {
	RMS      string
	Enablers []Enabler
	Band     Band
	Points   []Point
}

// Ks returns the scale factors as floats (the X axis).
func (m *Measurement) Ks() []float64 {
	out := make([]float64, len(m.Points))
	for i, p := range m.Points {
		out[i] = float64(p.K)
	}
	return out
}

// GCurve returns the raw minimal-overhead curve G(k).
func (m *Measurement) GCurve() []float64 {
	out := make([]float64, len(m.Points))
	for i, p := range m.Points {
		out[i] = p.G
	}
	return out
}

// NormalizedG returns g(k) = G(k)/G(k0), the curve the paper plots.
func (m *Measurement) NormalizedG() []float64 { return stats.Normalize(m.GCurve()) }

// NormalizedF returns f(k) = F(k)/F(k0).
func (m *Measurement) NormalizedF() []float64 {
	raw := make([]float64, len(m.Points))
	for i, p := range m.Points {
		raw[i] = p.Obs.F
	}
	return stats.Normalize(raw)
}

// NormalizedH returns h(k) = H(k)/H(k0).
func (m *Measurement) NormalizedH() []float64 {
	raw := make([]float64, len(m.Points))
	for i, p := range m.Points {
		raw[i] = p.Obs.H
	}
	return stats.Normalize(raw)
}

// Slopes returns the per-segment slopes of the raw overhead curve
// G(k) — the paper's scalability measure ("the scalability of the RMS
// at scale k is measured by the slope of G(k)"). A decreasing slope
// sequence means the RMS needs less additional work at each new scale:
// it is scaling well.
func (m *Measurement) Slopes() []float64 {
	return stats.Slopes(m.Ks(), m.GCurve())
}

// NormalizedSlopes returns per-segment slopes of g(k) = G(k)/G(1),
// comparing growth factors independent of each model's base cost.
func (m *Measurement) NormalizedSlopes() []float64 {
	return stats.Slopes(m.Ks(), m.NormalizedG())
}

// ScalableAt reports the paper's reading of the curve at segment i
// (between k_i and k_{i+1}): the RMS is considered scalable over the
// segment when the normalized overhead grows no faster than the
// normalized useful work, i.e. the isoefficiency condition holds
// directionally.
func (m *Measurement) ScalableAt(i int) bool {
	gs := m.NormalizedSlopes()
	fs := stats.Slopes(m.Ks(), m.NormalizedF())
	if i < 0 || i >= len(gs) {
		return false
	}
	return gs[i] <= fs[i]+1e-9
}

// Series renders the raw overhead curve G(k) as a named series — the
// paper's figures plot raw overhead, which is why the distributed
// models visibly start higher than CENTRAL at the base scale.
func (m *Measurement) Series() stats.Series {
	return stats.Series{Name: m.RMS, X: m.Ks(), Y: m.GCurve()}
}

// NormalizedSeries renders g(k) = G(k)/G(1).
func (m *Measurement) NormalizedSeries() stats.Series {
	return stats.Series{Name: m.RMS, X: m.Ks(), Y: m.NormalizedG()}
}

// Throughputs returns throughput per scale factor (Figure 6's Y axis).
func (m *Measurement) Throughputs() []float64 {
	out := make([]float64, len(m.Points))
	for i, p := range m.Points {
		out[i] = p.Obs.Throughput
	}
	return out
}

// ResponseTimes returns mean response time per scale factor (Figure 7).
func (m *Measurement) ResponseTimes() []float64 {
	out := make([]float64, len(m.Points))
	for i, p := range m.Points {
		out[i] = p.Obs.MeanResponse
	}
	return out
}
