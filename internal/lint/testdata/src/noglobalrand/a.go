// Package noglobalrand seeds global-RNG violations for the
// analyzer's analysistest case. Never built by the module.
package noglobalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func violations() {
	_ = rand.Intn(7)                      // want "rand.Intn uses the process-global RNG"
	_ = rand.Float64()                    // want "rand.Float64 uses the process-global RNG"
	rand.Shuffle(3, func(i, j int) {})    // want "rand.Shuffle uses the process-global RNG"
	_ = randv2.Int()                      // want "rand.Int uses the process-global RNG"
	_ = rand.New(rand.NewSource(1))       // want "rand.New builds an RNG" "rand.NewSource builds an RNG"
	_ = randv2.New(randv2.NewPCG(1, 2))   // want "rand.New builds an RNG" "rand.NewPCG builds an RNG"
	f := rand.ExpFloat64                  // want "rand.ExpFloat64 uses the process-global RNG"
	_ = f
}

// typeRefsAllowed shows that naming the types is fine: stream
// wrappers store them.
func typeRefsAllowed(r *rand.Rand, s rand.Source) *rand.Rand {
	_ = s
	return r
}

func sanctionedFactory(seed int64) *rand.Rand {
	//lint:allow noglobalrand fixture stand-in for the sim.Source named-stream factory
	return rand.New(rand.NewSource(seed))
}
