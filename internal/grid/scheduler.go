package grid

import (
	"math"

	"rmscale/internal/sim"
	"rmscale/internal/workload"
)

// JobCtx is the envelope a job travels in while the RMS routes it.
type JobCtx struct {
	Job *workload.Job
	// Origin is the submission cluster.
	Origin int
	// Hops counts inter-scheduler transfers; the paper's models
	// transfer a job at most once, so policies place jobs locally once
	// Hops > 0.
	Hops int
	// Attempts counts dispatch attempts (bounces off crashed
	// resources re-enter scheduling with Attempts incremented).
	Attempts int
}

// resourceView is a scheduler's last known state of one resource.
type resourceView struct {
	load float64
	at   sim.Time
}

// Scheduler is one RMS decision maker coordinating a cluster. It is
// itself a server: every management operation costs CPU, queues FCFS,
// and accumulates into G.
type Scheduler struct {
	cluster int
	node    int
	eng     *Engine

	busyUntil sim.Time
	// views holds the believed state of the cluster's local resources,
	// dense by local index (Engine.localIdx maps a resource id to its
	// slot). Every decision scan walks this array; keeping it a flat
	// slice instead of a map removes hashing and per-entry allocation
	// from the scheduler's hottest loop.
	views []resourceView
	peers []int // neighborhood of remote clusters
	rand  *sim.Stream

	// Preallocated protocol scratch. permScratch/peerScratch back
	// RandomPeers (valid until its next call); oneRid backs the
	// single-resource OnStatus list of a direct status update.
	permScratch []int
	peerScratch []int
	oneRid      [1]int

	// Fault state (see faults.go). epoch invalidates queued Exec work
	// when a crash destroys the scheduler's CPU state; owned tracks the
	// jobs this scheduler is responsible for so a crash can re-home
	// them; parked holds jobs waiting out this scheduler's downtime.
	down   bool
	epoch  int
	owned  map[int]*JobCtx
	parked []*JobCtx

	// State lets a policy hang per-scheduler protocol state here
	// (reservations, received advertisements, open auctions, ...).
	State any
}

// Cluster returns the cluster this scheduler coordinates.
func (s *Scheduler) Cluster() int { return s.cluster }

// Node returns the scheduler's topology node.
func (s *Scheduler) Node() int { return s.node }

// Engine returns the owning engine.
func (s *Scheduler) Engine() *Engine { return s.eng }

// Now returns the simulated time.
func (s *Scheduler) Now() sim.Time { return s.eng.K.Now() }

// Rand returns this scheduler's deterministic random stream.
func (s *Scheduler) Rand() *sim.Stream { return s.rand }

// Peers returns the scheduler's neighborhood: the remote clusters it
// may probe, sized by the NeighborhoodSize enabler.
func (s *Scheduler) Peers() []int { return s.peers }

// RandomPeers returns up to n distinct random clusters from the
// neighborhood. The returned slice is backed by per-scheduler scratch
// and stays valid until the next RandomPeers call on this scheduler;
// every protocol consumes it immediately (probe fan-out loops), so the
// per-poll allocations are gone from the hot path.
func (s *Scheduler) RandomPeers(n int) []int {
	if n >= len(s.peers) {
		out := s.peerScratch[:len(s.peers)]
		copy(out, s.peers)
		return out
	}
	idx := s.rand.SampleInto(s.permScratch, len(s.peers), n)
	out := s.peerScratch[:n]
	for i, j := range idx {
		out[i] = s.peers[j]
	}
	return out
}

// LocalResources returns the resource ids of this scheduler's cluster.
func (s *Scheduler) LocalResources() []int {
	return s.eng.Map.ClusterResources[s.cluster]
}

// View returns the last known load of a local resource and the time the
// information was received. Resources outside the cluster (and local
// ones never heard from) read as load 0 at t=0.
func (s *Scheduler) View(rid int) (load float64, at sim.Time) {
	if s.eng.Map.ResourceCluster[rid] != s.cluster {
		return 0, 0
	}
	v := s.views[s.eng.localIdx[rid]]
	return v.load, v.at
}

// mergeView installs fresh status information. Status for a resource
// outside the cluster is dropped (the update machinery never routes
// any, so this only defends the public InjectView).
func (s *Scheduler) mergeView(rid int, load float64, at sim.Time) {
	if s.eng.Map.ResourceCluster[rid] != s.cluster {
		return
	}
	v := &s.views[s.eng.localIdx[rid]]
	if at >= v.at {
		v.load, v.at = load, at
	}
}

// InjectView installs status information directly, bypassing the
// update machinery. It exists for policy tests and interactive
// exploration: production information flows arrive through updates and
// digests.
func (s *Scheduler) InjectView(rid int, load float64, at sim.Time) {
	s.mergeView(rid, load, at)
}

// bumpView optimistically increments the believed load after a local
// dispatch so back-to-back decisions do not herd onto one resource.
func (s *Scheduler) bumpView(rid int) {
	if s.eng.Map.ResourceCluster[rid] != s.cluster {
		return
	}
	s.views[s.eng.localIdx[rid]].load++
}

// LeastLoadedLocal returns the local resource with the lowest believed
// load. The boolean is false for an empty cluster (cannot happen in
// valid configurations, but policies stay defensive). The scan walks
// the dense view array in local-index order, which matches the
// LocalResources order the map-based implementation scanned, so the
// first-minimum choice is unchanged.
func (s *Scheduler) LeastLoadedLocal() (rid int, load float64, ok bool) {
	best, bestLoad := -1, math.Inf(1)
	for i := range s.views {
		if l := s.views[i].load; l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return s.LocalResources()[best], bestLoad, true
}

// AvgLocalLoad returns the mean believed load over the cluster.
func (s *Scheduler) AvgLocalLoad() float64 {
	if len(s.views) == 0 {
		return 0
	}
	sum := 0.0
	for i := range s.views {
		sum += s.views[i].load
	}
	return sum / float64(len(s.views))
}

// MaxLocalLoad returns the highest believed load over the cluster.
func (s *Scheduler) MaxLocalLoad() float64 {
	max := 0.0
	for i := range s.views {
		if l := s.views[i].load; l > max {
			max = l
		}
	}
	return max
}

// Utilization estimates the cluster's resource utilization status (RUS
// in the paper's S-I/R-I models): the fraction of resources with any
// believed load.
func (s *Scheduler) Utilization() float64 {
	if len(s.views) == 0 {
		return 0
	}
	busy := 0
	for i := range s.views {
		if s.views[i].load > 0 {
			busy++
		}
	}
	return float64(busy) / float64(len(s.views))
}

// Exec serializes cost units of work through the scheduler's CPU and
// runs fn when the work retires. The cost accrues to G immediately (it
// is committed work); queueing delay emerges from the busyUntil chain,
// which is what saturates a central scheduler at scale.
func (s *Scheduler) Exec(cost float64, fn func()) {
	if cost < 0 {
		//lint:allow hotalloc panic path: fires once on a caller bug, never in a measured run
		panic("grid: negative exec cost")
	}
	if s.down {
		// A dead scheduler retires no work; the message or decision
		// evaporates. Jobs survive through ownership tracking, not
		// through queued closures.
		return
	}
	busy := cost / s.eng.Cfg.Costs.SchedulerSpeed
	s.eng.Metrics.chargeScheduler(s.cluster, cost, busy)
	now := s.eng.K.Now()
	start := s.busyUntil
	if start < now {
		start = now
	} else if d := float64(start - now); d > s.eng.Metrics.MaxSchedDelay {
		s.eng.Metrics.MaxSchedDelay = d
	}
	finish := start + busy
	s.busyUntil = finish
	// Work queued before a crash dies with it: the closure only runs
	// while the epoch it was scheduled under is still current.
	epoch := s.epoch
	//lint:allow hotalloc the queued work item with its epoch guard is the scheduler CPU's budgeted allocation (engine allocs_per_event gate)
	s.eng.K.Schedule(finish, func() {
		if s.epoch != epoch {
			return
		}
		fn()
	})
}

// QueueDelay reports how far behind the scheduler's CPU currently is.
func (s *Scheduler) QueueDelay() sim.Time {
	d := s.busyUntil - s.eng.K.Now()
	if d < 0 {
		return 0
	}
	return d
}

// ExecDecision runs fn after charging one scheduling decision that
// scanned the given number of candidates.
func (s *Scheduler) ExecDecision(candidates int, fn func()) {
	c := s.eng.Cfg.Costs
	s.Exec(c.DecisionBase+c.DecisionPer*float64(candidates), fn)
}

// ExecMsg runs fn after charging one protocol message processing cost.
func (s *Scheduler) ExecMsg(fn func()) {
	s.Exec(s.eng.Cfg.Costs.Message, fn)
}

// Dispatch sends the job to a local resource, optimistically bumping the
// believed load. The job-control overhead lands in H at the resource.
func (s *Scheduler) Dispatch(ctx *JobCtx, rid int) {
	if !s.disown(ctx) {
		// The job failed over to another cluster while this scheduler's
		// session still referenced it; the stale dispatch dissolves.
		s.eng.Metrics.StaleActions++
		return
	}
	ctx.Attempts++
	s.bumpView(rid)
	s.eng.sendJobToResource(s, ctx, rid)
}

// DispatchLeastLoaded charges a full-cluster decision scan and sends the
// job to the believed least loaded local resource.
func (s *Scheduler) DispatchLeastLoaded(ctx *JobCtx) {
	n := len(s.LocalResources())
	s.ExecDecision(n, func() {
		rid, _, ok := s.LeastLoadedLocal()
		if !ok {
			s.disown(ctx)
			s.eng.dropJob(ctx)
			return
		}
		s.Dispatch(ctx, rid)
	})
}

// SendPolicy sends a protocol message to another cluster's scheduler.
// The send consumes scheduler CPU (Message cost) before the message
// enters the network; the receive charges another Message cost before
// the policy sees it.
func (s *Scheduler) SendPolicy(to int, kind int, payload any) {
	s.ExecMsg(func() { s.eng.deliverPolicy(s, to, kind, payload) })
}

// TransferJob moves the job to a remote cluster's scheduler; it arrives
// as a policy OnJob call with Hops incremented.
func (s *Scheduler) TransferJob(ctx *JobCtx, to int) {
	s.ExecMsg(func() { s.eng.transferJob(s, ctx, to) })
}
