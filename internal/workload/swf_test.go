package workload

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSWF = `; Sample SWF header
; MaxJobs: 6
1 0 5 120 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1
2 10 0 900 1 -1 -1 1 1000 -1 1 3 1 -1 1 -1 -1 -1
3 20 0 50 1 -1 -1 1 40 -1 1 3 1 -1 1 -1 -1 -1
4 30 0 100 1 -1 -1 1 150 -1 5 3 1 -1 1 -1 -1 -1
5 40 0 -1 1 -1 -1 1 150 -1 1 3 1 -1 1 -1 -1 -1
6 50 0 100 1 -1 -1 1 150 -1 0 3 1 -1 1 -1 -1 -1
`

func TestReadSWF(t *testing.T) {
	jobs, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{Clusters: 2}, stream("swf"))
	if err != nil {
		t.Fatal(err)
	}
	// Job 4 cancelled, job 5 has no runtime, job 6 failed: 3 remain.
	if len(jobs) != 3 {
		t.Fatalf("imported %d jobs, want 3", len(jobs))
	}
	j := jobs[0]
	if j.Arrival != 0 || j.Runtime != 120 || j.Requested != 200 {
		t.Fatalf("job 0 fields: %+v", j)
	}
	if j.Class != Local {
		t.Fatal("120s job should be LOCAL under T_CPU=700")
	}
	if jobs[1].Class != Remote {
		t.Fatal("900s job should be REMOTE")
	}
	// Requested below runtime is clamped up.
	if jobs[2].Runtime != 50 || jobs[2].Requested != 50 {
		t.Fatalf("job 2 requested not clamped: %+v", jobs[2])
	}
	for i, j := range jobs {
		if j.Partition != 1 {
			t.Fatalf("partition forced to 1, got %d", j.Partition)
		}
		if j.Benefit < 2 || j.Benefit > 5 {
			t.Fatalf("benefit %v outside [2,5]", j.Benefit)
		}
		if j.Cluster != i%2 {
			t.Fatalf("cluster spread wrong: job %d in %d", i, j.Cluster)
		}
	}
}

func TestReadSWFIncludeFailed(t *testing.T) {
	jobs, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{IncludeFailed: true}, stream("swf2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("imported %d jobs with failed included, want 4", len(jobs))
	}
}

func TestReadSWFMaxJobs(t *testing.T) {
	jobs, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{MaxJobs: 2}, stream("swf3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("MaxJobs ignored: %d", len(jobs))
	}
}

func TestReadSWFErrors(t *testing.T) {
	if _, err := ReadSWF(strings.NewReader("1 2 3\n"), SWFOptions{}, stream("x")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadSWF(strings.NewReader("1 x 0 10 1 -1 -1 1 10 -1 1\n"), SWFOptions{}, stream("x")); err == nil {
		t.Error("bad number accepted")
	}
	if _, err := ReadSWF(strings.NewReader(""), SWFOptions{Clusters: -1}, stream("x")); err == nil {
		t.Error("negative clusters accepted")
	}
	if _, err := ReadSWF(strings.NewReader(""), SWFOptions{BenefitMin: 3, BenefitMax: 2}, stream("x")); err == nil {
		t.Error("inverted benefit range accepted")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.Horizon = 400
	orig, err := Generate(p, stream("swfgen"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSWF(&buf, SWFOptions{}, stream("swfrt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Arrival != orig[i].Arrival || got[i].Runtime != orig[i].Runtime {
			t.Fatalf("job %d timing changed: %+v vs %+v", i, got[i], orig[i])
		}
		if got[i].Requested < got[i].Runtime {
			t.Fatalf("job %d requested below runtime", i)
		}
	}
}

func TestReadSWFSkipsCommentsAndBlanks(t *testing.T) {
	in := "; comment\n\n  \n1 0 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	jobs, err := ReadSWF(strings.NewReader(in), SWFOptions{}, stream("swf4"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
}
