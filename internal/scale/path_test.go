package scale

import (
	"testing"

	"rmscale/internal/anneal"
)

// pathSystem is a closed-form system: throughput = nodes * rate * 0.8,
// efficiency healthy while nodes*rate capacity is not overrun.
func pathSystem(k int, vars []float64) (Observation, error) {
	nodes, rate := vars[0], vars[1]
	capacity := nodes * rate
	demand := 10.0 * float64(k)
	eff := 0.42
	if capacity < demand {
		// Overrun: efficiency collapses with the shortfall.
		eff = 0.42 * capacity / demand
	}
	return Observation{
		F:          capacity,
		Throughput: min(capacity, demand),
		Efficiency: eff,
	}, nil
}

func pathSpec() PathSpec {
	return PathSpec{
		Vars: []PathVar{
			{Name: "nodes", Min: 1, Max: 200, Integer: true, CostWeight: 1},
			{Name: "rate", Min: 1, Max: 8, CostWeight: 3},
		},
		Ks:   []int{1, 2, 4},
		Band: PaperBand(),
		Demand: func(k int, obs Observation) bool {
			return obs.Throughput >= 10*float64(k)-1e-9
		},
		Anneal: anneal.Options{Iters: 150, Restarts: 3, Seed: 9},
	}
}

func TestFindScalingPath(t *testing.T) {
	p, err := FindScalingPath(PathEvaluatorFunc(pathSystem), pathSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible() {
		t.Fatalf("feasible system reported unscalable: %+v", p.Points)
	}
	if len(p.Points) != 3 {
		t.Fatalf("points = %d", len(p.Points))
	}
	for i, pt := range p.Points {
		capacity := pt.Vars[0] * pt.Vars[1]
		if capacity < 10*float64(pt.K)-1e-9 {
			t.Fatalf("k=%d under-provisioned: capacity %v", pt.K, capacity)
		}
		// Costs must grow with demand along the path.
		if i > 0 && pt.Cost <= p.Points[i-1].Cost {
			t.Fatalf("cost did not grow along the path: %v", p.Points)
		}
	}
	// The searched cost should be near the analytic optimum: with
	// nodes costing 1 and rate costing 3, the cheapest way to buy
	// capacity C is max-rate nodes: cost ~ C/8 + 3*8... sweep says the
	// optimizer trades them; just require it beats naive max-nodes.
	naive := 10.0*4 + 3*1 // capacity via nodes only at rate 1
	if p.Points[2].Cost > naive*1.2 {
		t.Fatalf("k=4 cost %v far above naive %v", p.Points[2].Cost, naive)
	}
}

func TestFindScalingPathInfeasible(t *testing.T) {
	spec := pathSpec()
	// Cap the variables below the k=4 demand: no assignment works.
	spec.Vars[0].Max = 2
	spec.Vars[1].Max = 2
	p, err := FindScalingPath(PathEvaluatorFunc(pathSystem), spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Feasible() {
		t.Fatal("under-provisioned space reported feasible")
	}
}

func TestFindScalingPathValidation(t *testing.T) {
	good := pathSpec()
	if _, err := FindScalingPath(nil, good); err == nil {
		t.Error("nil evaluator accepted")
	}
	bad := pathSpec()
	bad.Vars = nil
	if _, err := FindScalingPath(PathEvaluatorFunc(pathSystem), bad); err == nil {
		t.Error("no variables accepted")
	}
	bad = pathSpec()
	bad.Vars[0].Max = 0
	if _, err := FindScalingPath(PathEvaluatorFunc(pathSystem), bad); err == nil {
		t.Error("inverted bounds accepted")
	}
	bad = pathSpec()
	bad.Vars[0].CostWeight = -1
	if _, err := FindScalingPath(PathEvaluatorFunc(pathSystem), bad); err == nil {
		t.Error("negative cost weight accepted")
	}
	bad = pathSpec()
	bad.Demand = nil
	if _, err := FindScalingPath(PathEvaluatorFunc(pathSystem), bad); err == nil {
		t.Error("nil demand accepted")
	}
	bad = pathSpec()
	bad.Ks = nil
	if _, err := FindScalingPath(PathEvaluatorFunc(pathSystem), bad); err == nil {
		t.Error("no scale factors accepted")
	}
}

func TestPathFeasibleEmpty(t *testing.T) {
	p := &Path{}
	if p.Feasible() {
		t.Fatal("empty path reported feasible")
	}
}
