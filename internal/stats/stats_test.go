package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 || Sum(xs) != 8 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	if got := Percentile([]float64{9}, 75); got != 9 {
		t.Errorf("P75 single = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept := LinearFit(x, y)
	if !almost(slope, 2, 1e-12) || !almost(intercept, 3, 1e-12) {
		t.Errorf("fit = (%v, %v), want (2, 3)", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, intercept := LinearFit([]float64{2, 2}, []float64{1, 5})
	if slope != 0 || intercept != 3 {
		t.Errorf("degenerate fit = (%v, %v), want (0, 3)", slope, intercept)
	}
	slope, intercept = LinearFit([]float64{1}, []float64{7})
	if slope != 0 || intercept != 7 {
		t.Errorf("single-point fit = (%v, %v)", slope, intercept)
	}
}

func TestSlopes(t *testing.T) {
	got := Slopes([]float64{1, 2, 4}, []float64{10, 20, 10})
	want := []float64{10, -5}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Slopes = %v, want %v", got, want)
	}
	if Slopes([]float64{1}, []float64{1}) != nil {
		t.Error("single point should give nil slopes")
	}
	if got := Slopes([]float64{1, 1}, []float64{3, 9}); got[0] != 0 {
		t.Error("zero dx should give slope 0")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{4, 8, 2})
	want := []float64{1, 2, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize = %v, want %v", got, want)
		}
	}
	in := []float64{0, 5}
	got = Normalize(in)
	if got[0] != 0 || got[1] != 5 {
		t.Errorf("Normalize with zero base = %v, want copy", got)
	}
	got[1] = 99
	if in[1] != 5 {
		t.Error("Normalize must not alias its input")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d", a.N())
	}
	if !almost(a.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Mean = %v, want %v", a.Mean(), Mean(xs))
	}
	if !almost(a.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Variance = %v, want %v", a.Variance(), Variance(xs))
	}
	if a.Min() != 1 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.Sum() != Sum(xs) {
		t.Errorf("Sum = %v", a.Sum())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.N() != 0 {
		t.Error("empty accumulator should be all zero")
	}
	if !math.IsInf(a.Min(), 1) || !math.IsInf(a.Max(), -1) {
		t.Error("empty accumulator Min/Max should be ±Inf")
	}
}

// Property: accumulator mean always lies within [min, max].
func TestAccumulatorMeanBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var a Accumulator
		for _, r := range raw {
			a.Add(float64(r))
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize(xs)[0] == 1 whenever xs[0] != 0.
func TestNormalizeFirstElementProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		if xs[0] == 0 {
			return true
		}
		return Normalize(xs)[0] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
