package grid

import (
	"fmt"

	"rmscale/internal/sim"
	"rmscale/internal/stats"
)

// Metrics accumulates the paper's accounting terms during a run and
// derives the summary the scalability analysis consumes.
type Metrics struct {
	// UsefulWork is F: summed runtime of jobs that completed within
	// their benefit bound U_b.
	UsefulWork float64
	// RMSOverhead is G: total scheduler + estimator busy time spent
	// scheduling, receiving and processing updates.
	RMSOverhead float64
	// RPOverhead is H: job-control and data-management overhead at the
	// resource pool.
	RPOverhead float64
	// WastedWork is the runtime of jobs that executed but missed their
	// deadline; tracked separately (the paper folds neither into F).
	WastedWork float64

	JobsArrived int
	// JobsAdmitted counts jobs that actually entered scheduling: arrived
	// jobs minus those still held on precedence constraints at cutoff.
	// The auditor's conservation law is completed + lost <= admitted <=
	// arrived at every checkpoint.
	JobsAdmitted  int
	JobsCompleted int
	JobsSucceeded int
	JobsLost      int // destroyed by resource crashes

	ResponseTimes stats.Accumulator // completion - arrival, all completed jobs
	WaitTimes     stats.Accumulator // start - arrival

	// Message accounting by category.
	UpdatesSent       int
	UpdatesSuppressed int
	UpdatesLost       int
	DigestsSent       int
	PolicyMsgs        int
	JobTransfers      int // REMOTE jobs moved between clusters
	// CrossClusterMsgs counts messages whose endpoints live in
	// different cluster partitions under the RunPar plan (messages
	// through the shared estimator layer count: estimators are global
	// entities, outside every partition). It is the runtime side of the
	// partition coupling census — diagnostic only, deliberately not
	// part of Summary, so tagging cannot disturb the goldens.
	CrossClusterMsgs int

	// Fault accounting; every field stays zero in a fault-free run.
	SchedulerCrashes  int
	EstimatorCrashes  int
	SchedulerDowntime float64 // summed scheduler repair windows
	EstimatorDowntime float64
	// MsgsLost counts protocol messages lost in transit (random loss,
	// link outage) or arriving at a crashed scheduler; MsgRetries the
	// retransmissions the timeout path issued; MsgsAbandoned the
	// messages that exhausted the retry budget.
	MsgsLost      int
	MsgRetries    int
	MsgsAbandoned int
	// Failovers counts jobs re-homed off a crashed scheduler to a live
	// peer; JobsParked the job deliveries that waited out a down
	// scheduler; StaleActions the dispatches/transfers dissolved because
	// a crash had already moved the job elsewhere.
	Failovers    int
	JobsParked   int
	StaleActions int
	// EstimatorFallbacks counts status updates routed directly to the
	// scheduler while the resource's estimator was down.
	EstimatorFallbacks int

	// SchedulerBusy[c] is the busy time of cluster c's scheduler, used
	// to locate bottlenecks. EstimatorBusy likewise.
	SchedulerBusy []float64
	EstimatorBusy []float64
	// MiddlewareBusy is the grid middleware queue's busy time (S-I
	// family only); its utilization is a scalability bottleneck
	// indicator.
	MiddlewareBusy float64
	// MaxSchedDelay is the worst backlog any scheduler's work queue
	// reached: the sharpest saturation signal, since averages dilute
	// transient overload over the drain window.
	MaxSchedDelay float64

	// AuditChecks counts invariant checkpoints an attached auditor ran;
	// AuditViolations holds its findings verbatim. Both stay zero/nil
	// without an auditor (see internal/audit).
	AuditChecks     int
	AuditViolations []string
}

// Summary condenses a run into the numbers the scalability metric and
// the figures need.
type Summary struct {
	F, G, H          float64
	Efficiency       float64
	Throughput       float64 // jobs completed per time unit
	MeanResponse     float64
	SuccessRate      float64 // succeeded / completed
	Jobs             int
	Wasted           float64
	MaxSchedulerUtil float64 // busiest RMS node busy fraction, saturation flag
	MaxSchedDelay    float64 // worst RMS work-queue backlog, saturation flag
	MiddlewareUtil   float64 // middleware queue busy fraction

	// Robustness accounting; all zero in a fault-free run.
	JobsLost  int     // destroyed by crashes or dropped after too many bounces
	Crashes   int     // scheduler + estimator crashes
	Downtime  float64 // summed RMS-node downtime
	MsgsLost  int     // protocol messages lost to faults
	Retries   int     // protocol retransmissions issued
	Failovers int     // jobs re-homed off a crashed scheduler

	// Runtime-audit accounting (all zero without an attached auditor).
	// Summary must stay comparable with ==, so it carries the violation
	// count and the first finding; the full list lives in
	// Metrics.AuditViolations.
	AuditChecks    int
	Violations     int
	FirstViolation string
}

// Summarize derives the summary over an observation window of the given
// length.
func (m *Metrics) Summarize(window sim.Time) Summary {
	s := Summary{
		F:      m.UsefulWork,
		G:      m.RMSOverhead,
		H:      m.RPOverhead,
		Jobs:   m.JobsArrived,
		Wasted: m.WastedWork,
	}
	total := s.F + s.G + s.H
	if total > 0 {
		s.Efficiency = s.F / total
	}
	if window > 0 {
		s.Throughput = float64(m.JobsCompleted) / window
	}
	s.MeanResponse = m.ResponseTimes.Mean()
	if m.JobsCompleted > 0 {
		s.SuccessRate = float64(m.JobsSucceeded) / float64(m.JobsCompleted)
	}
	if window > 0 {
		max := 0.0
		for _, b := range m.SchedulerBusy {
			if u := b / float64(window); u > max {
				max = u
			}
		}
		for _, b := range m.EstimatorBusy {
			if u := b / float64(window); u > max {
				max = u
			}
		}
		s.MaxSchedulerUtil = max
		s.MiddlewareUtil = m.MiddlewareBusy / float64(window)
	}
	s.MaxSchedDelay = m.MaxSchedDelay
	s.JobsLost = m.JobsLost
	s.Crashes = m.SchedulerCrashes + m.EstimatorCrashes
	s.Downtime = m.SchedulerDowntime + m.EstimatorDowntime
	s.MsgsLost = m.MsgsLost
	s.Retries = m.MsgRetries
	s.Failovers = m.Failovers
	s.AuditChecks = m.AuditChecks
	s.Violations = len(m.AuditViolations)
	if s.Violations > 0 {
		s.FirstViolation = m.AuditViolations[0]
	}
	return s
}

// String renders the summary compactly for logs and CLIs. The fault
// block only appears when something actually failed, so fault-free
// output is unchanged from before the fault layer existed.
func (s Summary) String() string {
	out := fmt.Sprintf(
		"F=%.0f G=%.0f H=%.0f E=%.3f thpt=%.4f resp=%.1f success=%.3f jobs=%d maxRMSutil=%.2f maxRMSdelay=%.1f mwUtil=%.2f",
		s.F, s.G, s.H, s.Efficiency, s.Throughput, s.MeanResponse, s.SuccessRate, s.Jobs,
		s.MaxSchedulerUtil, s.MaxSchedDelay, s.MiddlewareUtil)
	if s.JobsLost > 0 || s.Crashes > 0 || s.MsgsLost > 0 || s.Retries > 0 || s.Failovers > 0 {
		out += fmt.Sprintf(" | faults: jobsLost=%d crashes=%d downtime=%.0f msgsLost=%d retries=%d failovers=%d",
			s.JobsLost, s.Crashes, s.Downtime, s.MsgsLost, s.Retries, s.Failovers)
	}
	if s.Violations > 0 {
		out += fmt.Sprintf(" | AUDIT: %d violation(s), first: %s", s.Violations, s.FirstViolation)
	}
	return out
}

// chargeScheduler adds cost to G and busy wall time (cost divided by
// the node speed) to cluster c's scheduler.
func (m *Metrics) chargeScheduler(c int, cost, busy float64) {
	m.RMSOverhead += cost
	if c >= 0 && c < len(m.SchedulerBusy) {
		m.SchedulerBusy[c] += busy
	}
}

// chargeEstimator adds cost to G and busy wall time to estimator e.
func (m *Metrics) chargeEstimator(e int, cost, busy float64) {
	m.RMSOverhead += cost
	if e >= 0 && e < len(m.EstimatorBusy) {
		m.EstimatorBusy[e] += busy
	}
}
