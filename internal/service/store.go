package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	//lint:allow nokernelgoroutines the result store is shared by HTTP handler goroutines and daemon shards; a mutex over the memory tier is the service layer's concurrency, not the sim kernel's
	"sync"
	"time"

	"rmscale/internal/fsutil"
)

// Store is the shared result store: a content-addressed map from
// experiment ID to result payload, with a memory tier and an optional
// disk tier under dir/results. Because IDs are content addresses,
// a payload is immutable once written — Put never changes the bytes
// under an existing ID — so clients may cache fetched results forever
// and two daemons pointed at one directory serve identical bytes.
//
// Integrity and lifecycle, layered on since the first version:
//
//   - every payload carries a SHA-256 sidecar (<id>.json.sha256); disk
//     reads verify it and a mismatch quarantines the pair under
//     dir/results/quarantine instead of serving the bytes — the daemon
//     re-executes the spec on demand, which is safe precisely because
//     the payload is a pure function of the ID;
//   - disk IO errors degrade the store to memory-only instead of
//     failing requests: results stay servable for this incarnation,
//     durability is surfaced as a health condition, not an outage;
//   - optional GC (max results / max bytes / max age) evicts in
//     least-recently-used order. Eviction is safe against in-flight
//     fetches: a fetched slice stays valid (payloads are never
//     mutated), and an evicted entry simply re-executes on its next
//     submission.
type Store struct {
	// Configuration, immutable after NewStore: declared above the
	// mutex so the guarded-field discipline (locksafe) does not bind
	// lock-free readers like payloadPath and readDisk to it.
	dir           string // "" = memory only
	clock         Clock
	fs            fsutil.FS
	maxResults    int
	maxBytes      int64
	maxAge        time.Duration
	maxQuarantine int

	mu       sync.Mutex
	mem      map[string]*storeEntry
	bytes    int64 // memory-tier payload bytes
	seq      int64 // access counter driving LRU order
	evicted  int64
	corrupt  int64
	qseq     int64  // last quarantine sequence number issued
	qlen     int    // quarantined pairs currently on disk
	qevicted int64  // quarantined pairs evicted by the bound
	degraded string // non-empty: disk tier is offline (mem-only mode)
}

// storeEntry is one memory-tier payload with its LRU bookkeeping.
type storeEntry struct {
	b       []byte
	lastUse int64     // access sequence number
	at      time.Time // when the payload was stored or promoted
}

// StoreConfig parameterizes a Store beyond its directory.
type StoreConfig struct {
	// Dir persists results under Dir/results; empty is memory-only.
	Dir string
	// MaxResults bounds how many payloads are retained; <= 0 is
	// unlimited. Over the bound, least-recently-used entries are
	// evicted (memory and disk).
	MaxResults int
	// MaxBytes bounds the memory-tier payload bytes; <= 0 unlimited.
	MaxBytes int64
	// MaxAge evicts entries not stored/promoted within the window;
	// <= 0 unlimited.
	MaxAge time.Duration
	// MaxQuarantine bounds how many corrupt pairs the quarantine
	// directory retains; beyond it the oldest are deleted. <= 0 picks
	// the default (64) — the quarantine exists for forensics on recent
	// corruption and must not grow without limit on a flaky disk.
	MaxQuarantine int
	// Clock stamps entries for MaxAge; nil uses the wall clock.
	Clock Clock
	// FS is the filesystem seam; nil uses the real filesystem.
	FS fsutil.FS
}

// DefaultMaxQuarantine bounds the quarantine directory when
// StoreConfig.MaxQuarantine does not.
const DefaultMaxQuarantine = 64

// StoreStats is the store's accounting snapshot.
type StoreStats struct {
	Len               int
	Bytes             int64
	Evicted           int64
	Corrupt           int64
	QuarantineLen     int
	QuarantineEvicted int64
	Degraded          string
}

// NewStore returns a store persisting under cfg.Dir/results, or a
// purely in-memory store when cfg.Dir is empty.
func NewStore(cfg StoreConfig) (*Store, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	fs := cfg.FS
	if fs == nil {
		fs = fsutil.RealFS{}
	}
	maxQ := cfg.MaxQuarantine
	if maxQ <= 0 {
		maxQ = DefaultMaxQuarantine
	}
	dir := ""
	var qseq int64
	var qlen int
	if cfg.Dir != "" {
		dir = filepath.Join(cfg.Dir, "results")
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: result store dir: %w", err)
		}
		qseq, qlen = scanQuarantine(fs, filepath.Join(dir, "quarantine"))
	}
	return &Store{
		mem:           make(map[string]*storeEntry),
		clock:         clock,
		fs:            fs,
		dir:           dir,
		maxResults:    cfg.MaxResults,
		maxBytes:      cfg.MaxBytes,
		maxAge:        cfg.MaxAge,
		maxQuarantine: maxQ,
		qseq:          qseq,
		qlen:          qlen,
	}, nil
}

// scanQuarantine recovers the quarantine bookkeeping from disk: the
// highest sequence number ever issued (so restarts keep names
// monotonic and oldest-first eviction order intact) and how many
// quarantined pairs are present.
func scanQuarantine(fs fsutil.FS, qdir string) (qseq int64, qlen int) {
	names, err := fs.ReadDir(qdir)
	if err != nil {
		return 0, 0
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".sha256") {
			continue
		}
		qlen++
		var seq int64
		if _, err := fmt.Sscanf(n, "q%d-", &seq); err == nil && seq > qseq {
			qseq = seq
		}
	}
	return qseq, qlen
}

// payloadPath and sumPath locate an ID's disk pair.
func (s *Store) payloadPath(id string) string { return filepath.Join(s.dir, id+".json") }
func (s *Store) sumPath(id string) string     { return filepath.Join(s.dir, id+".json.sha256") }

// checksum renders the payload digest the sidecar carries.
func checksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Get returns the payload stored under id. Disk hits are verified
// against their checksum sidecar and promoted into the memory tier; a
// corrupt pair is quarantined and reported as a miss so the daemon
// re-executes instead of serving damaged bytes.
func (s *Store) Get(id string) ([]byte, bool) {
	s.mu.Lock()
	if e, ok := s.mem[id]; ok {
		s.seq++
		e.lastUse = s.seq
		b := e.b
		s.mu.Unlock()
		return b, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		return nil, false
	}
	b, st := s.readDisk(id)
	if !st.servable() {
		return nil, false
	}
	//lint:allow locksafe promotion GC unlinks at most a few evicted files; it must stay atomic with the LRU accounting it rewrites
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, hit := s.mem[id]; hit { // racing promotion: keep the first
		s.seq++
		e.lastUse = s.seq
		return e.b, true
	}
	s.seq++
	s.mem[id] = &storeEntry{b: b, lastUse: s.seq, at: s.clock.Now()}
	s.bytes += int64(len(b))
	s.gcLocked()
	return b, true
}

// diskState classifies what readDisk found for an ID.
type diskState int

const (
	diskMissing    diskState = iota // no payload on disk
	diskOK                          // payload verified against its sidecar
	diskBackfilled                  // legacy payload adopted, sidecar written
	diskCorrupt                     // checksum mismatch; pair quarantined
)

// servable reports whether the state carries valid payload bytes.
func (st diskState) servable() bool { return st == diskOK || st == diskBackfilled }

// readDisk loads and verifies the disk pair for id; corruption
// quarantines it. A payload without a sidecar (written by a pre-
// checksum store generation, or by a crash between payload and
// sidecar writes) is accepted and its sidecar backfilled.
func (s *Store) readDisk(id string) ([]byte, diskState) {
	b, err := s.fs.ReadFile(s.payloadPath(id))
	if err != nil {
		return nil, diskMissing
	}
	sum, err := s.fs.ReadFile(s.sumPath(id))
	if err != nil {
		// Legacy entry: adopt it and give it a sidecar.
		_ = s.fs.WriteFileAtomic(s.sumPath(id), []byte(checksum(b)+"\n"), 0o644)
		return b, diskBackfilled
	}
	if strings.TrimSpace(string(sum)) != checksum(b) {
		s.quarantine(id)
		s.mu.Lock()
		s.corrupt++
		s.mu.Unlock()
		return nil, diskCorrupt
	}
	return b, diskOK
}

// quarantine moves a corrupt disk pair aside so it cannot be served
// again but stays available for forensics. Quarantined names carry a
// monotonic sequence prefix ("q%08d-<name>") so lexicographic order
// is arrival order, which is what lets the bound evict oldest-first.
func (s *Store) quarantine(id string) {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := s.fs.MkdirAll(qdir, 0o755); err != nil {
		_ = s.fs.Remove(s.payloadPath(id))
		_ = s.fs.Remove(s.sumPath(id))
		return
	}
	s.mu.Lock()
	s.qseq++
	seq := s.qseq
	s.qlen++
	s.mu.Unlock()
	for _, name := range []string{id + ".json", id + ".json.sha256"} {
		dst := filepath.Join(qdir, fmt.Sprintf("q%08d-%s", seq, name))
		if err := s.fs.Rename(filepath.Join(s.dir, name), dst); err != nil {
			_ = s.fs.Remove(filepath.Join(s.dir, name))
		}
	}
	s.boundQuarantine()
}

// boundQuarantine deletes the oldest quarantined pairs beyond
// maxQuarantine and refreshes the quarantine accounting from the
// directory itself (the directory is the truth after crashes or
// concurrent quarantines).
func (s *Store) boundQuarantine() {
	qdir := filepath.Join(s.dir, "quarantine")
	names, err := s.fs.ReadDir(qdir)
	if err != nil {
		return
	}
	var payloads []string // sorted by ReadDir; prefix makes that arrival order
	for _, n := range names {
		if !strings.HasSuffix(n, ".sha256") {
			payloads = append(payloads, n)
		}
	}
	removed := 0
	for i := 0; i < len(payloads)-s.maxQuarantine; i++ {
		_ = s.fs.Remove(filepath.Join(qdir, payloads[i]))
		_ = s.fs.Remove(filepath.Join(qdir, payloads[i]+".sha256"))
		removed++
	}
	s.mu.Lock()
	s.qlen = len(payloads) - removed
	s.qevicted += int64(removed)
	s.mu.Unlock()
}

// Has reports whether a valid result is stored under id. Disk entries
// are fully verified — a corrupt entry answers false (and is
// quarantined), which is what makes restart resume re-execute damaged
// work instead of trusting its completion marker.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	_, ok := s.mem[id]
	s.mu.Unlock()
	if ok {
		return true
	}
	if s.dir == "" {
		return false
	}
	_, st := s.readDisk(id)
	return st.servable()
}

// Put stores the payload under id in memory and, when disk-backed and
// not degraded, atomically on disk with its checksum sidecar. A disk
// IO failure (disk full, permission loss, flaky device) does not fail
// the Put: the store drops to memory-only mode, remembers why, and the
// daemon surfaces the condition through /healthz and /v1/stats. The
// caller must not mutate b after the call.
func (s *Store) Put(id string, b []byte) {
	//lint:allow locksafe insertion GC unlinks at most a few evicted files; it must stay atomic with the LRU accounting it rewrites
	s.mu.Lock()
	if _, ok := s.mem[id]; !ok {
		s.seq++
		s.mem[id] = &storeEntry{b: b, lastUse: s.seq, at: s.clock.Now()}
		s.bytes += int64(len(b))
	}
	s.gcLocked()
	disk := s.dir != "" && s.degraded == ""
	s.mu.Unlock()
	if !disk {
		return
	}
	// Payload first, sidecar second: a crash between the two leaves a
	// payload without sidecar, which reads as a legacy entry and gets
	// its sidecar backfilled; the reverse order could pair a fresh
	// sidecar with stale bytes and read as corruption.
	err := s.fs.WriteFileAtomic(s.payloadPath(id), b, 0o644)
	if err == nil {
		err = s.fs.WriteFileAtomic(s.sumPath(id), []byte(checksum(b)+"\n"), 0o644)
	}
	if err != nil {
		s.mu.Lock()
		if s.degraded == "" {
			s.degraded = err.Error()
		}
		s.mu.Unlock()
	}
}

// Degraded reports whether the disk tier is offline and why.
func (s *Store) Degraded() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.degraded != ""
}

// gcLocked evicts least-recently-used entries until the store is back
// under its bounds. Callers hold s.mu. Eviction removes the memory
// entry and the disk pair: an evicted ID re-executes on its next
// submission, which content addressing makes byte-identical.
func (s *Store) gcLocked() {
	if s.maxResults <= 0 && s.maxBytes <= 0 && s.maxAge <= 0 {
		return
	}
	type cand struct {
		id      string
		lastUse int64
	}
	var now time.Time
	if s.maxAge > 0 {
		now = s.clock.Now()
		for id, e := range s.mem { //lint:orderindependent every expired entry is evicted regardless of visit order
			if now.Sub(e.at) > s.maxAge {
				s.evictLocked(id)
			}
		}
	}
	over := func() bool {
		return (s.maxResults > 0 && len(s.mem) > s.maxResults) ||
			(s.maxBytes > 0 && s.bytes > s.maxBytes)
	}
	if !over() {
		return
	}
	cands := make([]cand, 0, len(s.mem))
	for id, e := range s.mem { //lint:orderindependent candidates are re-sorted by LRU order below
		cands = append(cands, cand{id, e.lastUse})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lastUse < cands[j].lastUse })
	for _, c := range cands {
		if !over() {
			return
		}
		s.evictLocked(c.id)
	}
}

// evictLocked drops one entry from memory and disk. Callers hold s.mu.
func (s *Store) evictLocked(id string) {
	e, ok := s.mem[id]
	if !ok {
		return
	}
	delete(s.mem, id)
	s.bytes -= int64(len(e.b))
	s.evicted++
	if s.dir != "" {
		_ = s.fs.Remove(s.payloadPath(id))
		_ = s.fs.Remove(s.sumPath(id))
	}
}

// Len reports how many payloads the memory tier holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Stats snapshots the store's accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Len:               len(s.mem),
		Bytes:             s.bytes,
		Evicted:           s.evicted,
		Corrupt:           s.corrupt,
		QuarantineLen:     s.qlen,
		QuarantineEvicted: s.qevicted,
		Degraded:          s.degraded,
	}
}

// StoreAudit summarizes one startup integrity pass over the disk
// tier.
type StoreAudit struct {
	Verified     int `json:"verified"`      // payloads whose checksum matched (backfills included)
	Backfilled   int `json:"backfilled"`    // payloads that were missing a sidecar and got one
	Quarantined  int `json:"quarantined"`   // corrupt pairs moved to quarantine
	TempsCleaned int `json:"temps_cleaned"` // orphaned atomic-write temp files removed
}

// Audit walks the disk tier once, verifying every payload against its
// sidecar: corrupt pairs are quarantined immediately (instead of on
// first read), sidecar-less payloads are adopted and backfilled,
// orphaned atomic-write temp files (a crash between temp creation and
// rename) are deleted, and the quarantine bound is re-asserted in
// case a crash interrupted a previous eviction. It is idempotent: a
// second pass over the same disk finds nothing to repair. The daemon
// runs it at startup so post-crash healing happens — and is logged —
// before the first request arrives.
func (s *Store) Audit() StoreAudit {
	var a StoreAudit
	if s.dir == "" {
		return a
	}
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return a
	}
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, ".") && strings.HasSuffix(n, ".tmp"):
			if s.fs.Remove(filepath.Join(s.dir, n)) == nil {
				a.TempsCleaned++
			}
		case strings.HasSuffix(n, ".json"):
			id := strings.TrimSuffix(n, ".json")
			switch _, st := s.readDisk(id); st {
			case diskOK:
				a.Verified++
			case diskBackfilled:
				a.Verified++
				a.Backfilled++
			case diskCorrupt:
				a.Quarantined++
			case diskMissing:
				// Entry vanished between ReadDir and ReadFile; nothing
				// to account.
			}
		}
	}
	s.boundQuarantine()
	return a
}
