// Package workload generates the synthetic job streams the paper drives
// its grid simulations with. The model follows the paper's reduction of
// the Cirne-Berman supercomputer workload model: each job has an arrival
// instant, a partition size (fixed to 1 here, as in the paper), an
// execution time, a requested time that upper-bounds the execution time,
// and a cancellation probability (fixed to 0 here). Jobs are classified
// LOCAL when their execution time is at most T_CPU and REMOTE otherwise,
// and a job is successful when it completes within its user benefit
// bound U_b = benefit x runtime with benefit uniform in [2,5].
package workload

import (
	"fmt"
	"math"

	"rmscale/internal/sim"
)

// Class partitions jobs by placement constraint.
type Class uint8

const (
	// Local jobs must execute in (or near) their submission cluster.
	Local Class = iota
	// Remote jobs are eligible for execution at remote clusters.
	Remote
)

// String returns "LOCAL" or "REMOTE" as the paper spells them.
func (c Class) String() string {
	if c == Local {
		return "LOCAL"
	}
	return "REMOTE"
}

// Job is one unit of user work.
type Job struct {
	ID      int
	Arrival sim.Time
	// Runtime is the execution time at unit service rate, in time
	// units; it is the "useful work" content of the job.
	Runtime float64
	// Requested upper-bounds Runtime (the user's estimate).
	Requested float64
	// Benefit is the U_b factor in [2,5]; the job succeeds if it
	// completes by Arrival + Benefit*Runtime.
	Benefit float64
	// Partition is the number of processors; always 1 in this paper.
	Partition int
	// Cluster is the submission cluster.
	Cluster int
	Class   Class
	// Deps lists the IDs of jobs that must complete before this job
	// may be scheduled (precedence constraints; empty in the paper's
	// base model, populated by GenerateDAG).
	Deps []int
}

// Deadline returns the latest successful completion time,
// Arrival + Benefit*Runtime.
func (j *Job) Deadline() sim.Time { return j.Arrival + j.Benefit*j.Runtime }

// Equal reports whether two jobs are identical, including precedence
// constraints.
func (j *Job) Equal(o *Job) bool {
	if j == nil || o == nil {
		return j == o
	}
	if j.ID != o.ID || j.Arrival != o.Arrival || j.Runtime != o.Runtime ||
		j.Requested != o.Requested || j.Benefit != o.Benefit ||
		j.Partition != o.Partition || j.Cluster != o.Cluster || j.Class != o.Class ||
		len(j.Deps) != len(o.Deps) {
		return false
	}
	for i := range j.Deps {
		if j.Deps[i] != o.Deps[i] {
			return false
		}
	}
	return true
}

// Params configures the synthetic generator. The zero value is not
// usable; start from DefaultParams.
type Params struct {
	// ArrivalRate is the expected number of jobs per time unit across
	// the whole system (the paper's "workload" scaling variable).
	ArrivalRate float64
	// Horizon bounds arrival times; jobs arrive in [0, Horizon).
	Horizon sim.Time
	// RuntimeMin/RuntimeMax bound the log-uniform execution time.
	RuntimeMin, RuntimeMax float64
	// TCPU is the LOCAL/REMOTE classification threshold (700 in the
	// paper: runtime <= TCPU means LOCAL).
	TCPU float64
	// BenefitMin/BenefitMax bound the uniform benefit factor
	// ([2,5] in the paper).
	BenefitMin, BenefitMax float64
	// OverestimateMax bounds the requested-time factor: requested is
	// uniform in [runtime, OverestimateMax*runtime]. Supercomputer
	// users overestimate heavily; 3x is a conservative default.
	OverestimateMax float64
	// Clusters is the number of submission clusters; arrivals spread
	// uniformly across them.
	Clusters int
	// WeibullShape, when in (0,1), switches inter-arrival times from
	// exponential to Weibull with that shape (burstier, as observed in
	// production traces). Zero keeps Poisson arrivals.
	WeibullShape float64
	// DiurnalAmplitude, when in (0,1), modulates the arrival rate with
	// a daily cycle — lambda(t) = rate * (1 + A*sin(2*pi*t/period)) —
	// the strong day/night pattern the Cirne-Berman traces exhibit.
	// Zero keeps a stationary process.
	DiurnalAmplitude float64
	// DiurnalPeriod is the cycle length in time units; zero picks a
	// quarter of the horizon.
	DiurnalPeriod float64
	// CancelProb is the job cancellation probability; the paper fixes
	// it to zero, and the generator rejects anything else to make the
	// modelling assumption explicit.
	CancelProb float64
}

// DefaultParams returns the paper-faithful configuration: T_CPU = 700,
// benefit in [2,5], log-uniform runtimes spanning the LOCAL/REMOTE
// boundary, Poisson arrivals.
func DefaultParams() Params {
	return Params{
		ArrivalRate:     1.0,
		Horizon:         4000,
		RuntimeMin:      10,
		RuntimeMax:      3000,
		TCPU:            700,
		BenefitMin:      2,
		BenefitMax:      5,
		OverestimateMax: 3,
		Clusters:        1,
	}
}

// Validate reports the first configuration error.
func (p Params) Validate() error {
	switch {
	case p.ArrivalRate <= 0:
		return fmt.Errorf("workload: ArrivalRate must be positive, got %v", p.ArrivalRate)
	case p.Horizon <= 0:
		return fmt.Errorf("workload: Horizon must be positive, got %v", p.Horizon)
	case p.RuntimeMin <= 0 || p.RuntimeMax < p.RuntimeMin:
		return fmt.Errorf("workload: bad runtime range [%v,%v]", p.RuntimeMin, p.RuntimeMax)
	case p.TCPU <= 0:
		return fmt.Errorf("workload: TCPU must be positive, got %v", p.TCPU)
	case p.BenefitMin < 1 || p.BenefitMax < p.BenefitMin:
		return fmt.Errorf("workload: bad benefit range [%v,%v]", p.BenefitMin, p.BenefitMax)
	case p.OverestimateMax < 1:
		return fmt.Errorf("workload: OverestimateMax must be >= 1, got %v", p.OverestimateMax)
	case p.Clusters < 1:
		return fmt.Errorf("workload: Clusters must be >= 1, got %d", p.Clusters)
	case p.WeibullShape < 0 || p.WeibullShape > 1:
		return fmt.Errorf("workload: WeibullShape must be in [0,1], got %v", p.WeibullShape)
	case p.DiurnalAmplitude < 0 || p.DiurnalAmplitude >= 1:
		return fmt.Errorf("workload: DiurnalAmplitude must be in [0,1), got %v", p.DiurnalAmplitude)
	case p.DiurnalPeriod < 0:
		return fmt.Errorf("workload: negative DiurnalPeriod %v", p.DiurnalPeriod)
	case p.CancelProb != 0:
		return fmt.Errorf("workload: paper model fixes cancellation probability to 0, got %v", p.CancelProb)
	}
	return nil
}

// Scale returns a copy with the arrival rate multiplied by factor; the
// paper scales the workload in the same proportion as every scaling
// variable.
func (p Params) Scale(factor float64) Params {
	p.ArrivalRate *= factor
	return p
}

// Generate produces the job stream for the configured horizon, sorted by
// arrival time. It is deterministic given the stream.
func Generate(p Params, st *sim.Stream) ([]*Job, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// With a diurnal cycle the process is thinned: candidates arrive at
	// the peak rate and are accepted with probability lambda(t)/peak.
	peak := p.ArrivalRate * (1 + p.DiurnalAmplitude)
	period := p.DiurnalPeriod
	if period == 0 {
		period = p.Horizon / 4
	}
	accept := func(t sim.Time) bool {
		if p.DiurnalAmplitude == 0 {
			return true
		}
		rate := p.ArrivalRate * (1 + p.DiurnalAmplitude*math.Sin(2*math.Pi*float64(t)/period))
		return st.Bool(rate / peak)
	}
	meanInter := 1 / peak
	var jobs []*Job
	t := sim.Time(0)
	id := 0
	for {
		var gap float64
		if p.WeibullShape > 0 {
			// Match the mean of the exponential process:
			// E[Weibull(k, lambda)] = lambda*Gamma(1+1/k).
			scale := meanInter / gammaApprox(1+1/p.WeibullShape)
			gap = st.Weibull(p.WeibullShape, scale)
		} else {
			gap = st.Exp(meanInter)
		}
		t += gap
		if t >= p.Horizon {
			break
		}
		if !accept(t) {
			continue
		}
		runtime := st.LogUniform(p.RuntimeMin, p.RuntimeMax)
		class := Local
		if runtime > p.TCPU {
			class = Remote
		}
		jobs = append(jobs, &Job{
			ID:        id,
			Arrival:   t,
			Runtime:   runtime,
			Requested: runtime * st.Uniform(1, p.OverestimateMax),
			Benefit:   st.Uniform(p.BenefitMin, p.BenefitMax),
			Partition: 1,
			Cluster:   st.Intn(p.Clusters),
			Class:     class,
		})
		id++
	}
	return jobs, nil
}

// gammaApprox evaluates the Gamma function via the Lanczos
// approximation, sufficient for the Weibull mean normalization (x > 1).
func gammaApprox(x float64) float64 {
	// Lanczos coefficients (g=7, n=9).
	coeffs := [...]float64{
		0.99999999999980993, 676.5203681218851, -1259.1392167224028,
		771.32342877765313, -176.61502916214059, 12.507343278686905,
		-0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection not needed for our inputs, but keep a safe path.
		return math.Pi / (math.Sin(math.Pi*x) * gammaApprox(1-x))
	}
	x--
	a := coeffs[0]
	t := x + 7.5
	for i := 1; i < len(coeffs); i++ {
		a += coeffs[i] / (x + float64(i))
	}
	return math.Sqrt(2*math.Pi) * math.Pow(t, x+0.5) * math.Exp(-t) * a
}

// Total returns the summed runtime (useful-work content) of the jobs.
func Total(jobs []*Job) float64 {
	s := 0.0
	for _, j := range jobs {
		s += j.Runtime
	}
	return s
}

// Count returns how many jobs fall in each class.
func Count(jobs []*Job) (local, remote int) {
	for _, j := range jobs {
		if j.Class == Local {
			local++
		} else {
			remote++
		}
	}
	return local, remote
}
