package topology

import (
	"fmt"

	"rmscale/internal/sim"
)

// Role labels what grid element a topology node hosts, mirroring the
// paper's mapping of "routers, schedulers, and resources" onto Mercator
// extractions.
type Role uint8

const (
	RoleRouter Role = iota
	RoleScheduler
	RoleResource
	RoleEstimator
)

// String returns the lowercase role name.
func (r Role) String() string {
	switch r {
	case RoleRouter:
		return "router"
	case RoleScheduler:
		return "scheduler"
	case RoleResource:
		return "resource"
	case RoleEstimator:
		return "estimator"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// GridSpec describes the managed system to be mapped onto a graph: the
// set of resources is divided into non-overlapping clusters, each
// coordinated by one scheduler, plus an optional layer of status
// estimators (Case 3 of the paper).
type GridSpec struct {
	Clusters    int // number of non-overlapping clusters (schedulers)
	ClusterSize int // resources per cluster
	Estimators  int // status estimator nodes; 0 disables the layer
}

// Nodes returns how many grid (non-router) nodes the spec needs.
func (s GridSpec) Nodes() int {
	return s.Clusters + s.Clusters*s.ClusterSize + s.Estimators
}

// Validate checks the spec for structural sanity.
func (s GridSpec) Validate() error {
	if s.Clusters < 1 {
		return fmt.Errorf("topology: spec needs at least one cluster, got %d", s.Clusters)
	}
	if s.ClusterSize < 1 {
		return fmt.Errorf("topology: spec needs at least one resource per cluster, got %d", s.ClusterSize)
	}
	if s.Estimators < 0 {
		return fmt.Errorf("topology: negative estimator count %d", s.Estimators)
	}
	return nil
}

// Mapping records which graph node hosts which grid element.
type Mapping struct {
	Spec GridSpec
	// Roles[node] is the role hosted at that node.
	Roles []Role
	// SchedulerNode[c] is the graph node of cluster c's scheduler.
	SchedulerNode []int
	// ResourceNode[r] is the graph node of resource r; resources are
	// numbered densely across clusters.
	ResourceNode []int
	// ResourceCluster[r] is the cluster owning resource r.
	ResourceCluster []int
	// ClusterResources[c] lists the resource ids in cluster c.
	ClusterResources [][]int
	// EstimatorNode[e] is the graph node of estimator e (may be empty).
	EstimatorNode []int
}

// MapGrid assigns grid roles to graph nodes. Scheduler nodes are spread
// across the graph (chosen among the highest-degree nodes, like placing
// coordinators at well-connected routers); each cluster's resources are
// placed on the unoccupied nodes nearest its scheduler in BFS order, so
// clusters are topologically local as in the paper's grid model.
// Estimators take high-degree unoccupied nodes. Remaining nodes stay
// pure routers.
func MapGrid(g *Graph, spec GridSpec, st *sim.Stream) (*Mapping, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Nodes() > g.N {
		return nil, fmt.Errorf("topology: spec needs %d nodes but graph has %d", spec.Nodes(), g.N)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("topology: cannot map onto a disconnected graph")
	}

	m := &Mapping{
		Spec:             spec,
		Roles:            make([]Role, g.N),
		SchedulerNode:    make([]int, spec.Clusters),
		ClusterResources: make([][]int, spec.Clusters),
	}
	taken := make([]bool, g.N)

	// Order nodes by degree descending with a random tie-break so two
	// seeds give different but valid placements.
	order := st.Perm(g.N)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.Degree(order[j]) > g.Degree(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	// Schedulers: spread them out by skipping neighbours of already
	// chosen schedulers while possible.
	chosen := 0
	for pass := 0; pass < 2 && chosen < spec.Clusters; pass++ {
		for _, u := range order {
			if chosen == spec.Clusters {
				break
			}
			if taken[u] {
				continue
			}
			if pass == 0 {
				adjacent := false
				for _, e := range g.Adj[u] {
					if taken[e.To] && m.Roles[e.To] == RoleScheduler {
						adjacent = true
						break
					}
				}
				if adjacent {
					continue
				}
			}
			m.SchedulerNode[chosen] = u
			m.Roles[u] = RoleScheduler
			taken[u] = true
			chosen++
		}
	}
	if chosen < spec.Clusters {
		return nil, fmt.Errorf("topology: placed only %d of %d schedulers", chosen, spec.Clusters)
	}

	// Estimators next, on the best-connected free nodes.
	for e := 0; e < spec.Estimators; e++ {
		placed := false
		for _, u := range order {
			if !taken[u] {
				m.EstimatorNode = append(m.EstimatorNode, u)
				m.Roles[u] = RoleEstimator
				taken[u] = true
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("topology: no free node for estimator %d", e)
		}
	}

	// Resources: BFS from each scheduler, claiming the nearest free
	// nodes; round-robin across clusters keeps them balanced when
	// BFS frontiers collide.
	frontiers := make([][]int, spec.Clusters)
	cursor := make([]int, spec.Clusters)
	for c := 0; c < spec.Clusters; c++ {
		frontiers[c] = g.BFSOrder(m.SchedulerNode[c])
	}
	total := spec.Clusters * spec.ClusterSize
	rid := 0
	for placedAll := 0; placedAll < total; {
		progress := false
		for c := 0; c < spec.Clusters && placedAll < total; c++ {
			if len(m.ClusterResources[c]) == spec.ClusterSize {
				continue
			}
			for cursor[c] < len(frontiers[c]) {
				u := frontiers[c][cursor[c]]
				cursor[c]++
				if taken[u] {
					continue
				}
				taken[u] = true
				m.Roles[u] = RoleResource
				m.ResourceNode = append(m.ResourceNode, u)
				m.ResourceCluster = append(m.ResourceCluster, c)
				m.ClusterResources[c] = append(m.ClusterResources[c], rid)
				rid++
				placedAll++
				progress = true
				break
			}
		}
		if !progress {
			return nil, fmt.Errorf("topology: ran out of nodes placing resources (%d placed of %d)", rid, total)
		}
	}
	return m, nil
}

// Resources returns the total number of resources in the mapping.
func (m *Mapping) Resources() int { return len(m.ResourceNode) }

// Validate checks the structural invariants of a mapping: disjoint
// roles, complete clusters, and consistent cross-references. It is used
// by tests and by the engine before wiring a simulation.
func (m *Mapping) Validate(g *Graph) error {
	if len(m.Roles) != g.N {
		return fmt.Errorf("topology: mapping covers %d nodes, graph has %d", len(m.Roles), g.N)
	}
	if len(m.SchedulerNode) != m.Spec.Clusters {
		return fmt.Errorf("topology: %d scheduler nodes for %d clusters", len(m.SchedulerNode), m.Spec.Clusters)
	}
	if m.Resources() != m.Spec.Clusters*m.Spec.ClusterSize {
		return fmt.Errorf("topology: %d resources, want %d", m.Resources(), m.Spec.Clusters*m.Spec.ClusterSize)
	}
	if len(m.EstimatorNode) != m.Spec.Estimators {
		return fmt.Errorf("topology: %d estimators, want %d", len(m.EstimatorNode), m.Spec.Estimators)
	}
	seen := make(map[int]Role, g.N)
	claim := func(node int, role Role) error {
		if node < 0 || node >= g.N {
			return fmt.Errorf("topology: node %d out of range", node)
		}
		if prev, dup := seen[node]; dup {
			return fmt.Errorf("topology: node %d claimed as both %v and %v", node, prev, role)
		}
		if m.Roles[node] != role {
			return fmt.Errorf("topology: node %d role is %v, index says %v", node, m.Roles[node], role)
		}
		seen[node] = role
		return nil
	}
	for _, u := range m.SchedulerNode {
		if err := claim(u, RoleScheduler); err != nil {
			return err
		}
	}
	for _, u := range m.ResourceNode {
		if err := claim(u, RoleResource); err != nil {
			return err
		}
	}
	for _, u := range m.EstimatorNode {
		if err := claim(u, RoleEstimator); err != nil {
			return err
		}
	}
	for c, rs := range m.ClusterResources {
		if len(rs) != m.Spec.ClusterSize {
			return fmt.Errorf("topology: cluster %d has %d resources, want %d", c, len(rs), m.Spec.ClusterSize)
		}
		for _, r := range rs {
			if m.ResourceCluster[r] != c {
				return fmt.Errorf("topology: resource %d cross-reference mismatch", r)
			}
		}
	}
	return nil
}
