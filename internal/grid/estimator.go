package grid

import (
	"rmscale/internal/sim"
)

// statusItem is one buffered update inside an estimator.
type statusItem struct {
	rid  int
	load float64
	at   sim.Time
}

// Estimator is an RMS node that receives status updates from a
// partition of the resource pool and distributes them to the scheduling
// decision makers (the paper's Case 3 scaling variable). Resources are
// assigned round-robin, so every estimator typically covers every
// cluster; each digest interval it flushes one digest per covered
// cluster. Estimator CPU time counts into G like scheduler time.
type Estimator struct {
	id   int
	node int
	eng  *Engine

	busyUntil sim.Time
	// buffer[cluster] holds updates pending digestion for that
	// cluster's scheduler.
	buffer map[int][]statusItem

	// Fault state (see faults.go): a crash empties the buffer and the
	// epoch bump destroys queued CPU work.
	down  bool
	epoch int
}

// ID returns the estimator index.
func (e *Estimator) ID() int { return e.id }

// Node returns the estimator's topology node.
func (e *Estimator) Node() int { return e.node }

// exec serializes work through the estimator CPU, charging G. A dead
// estimator retires no work, and work queued before a crash dies with
// it (the epoch guard).
func (e *Estimator) exec(cost float64, fn func()) {
	if e.down {
		return
	}
	busy := cost / e.eng.Cfg.Costs.SchedulerSpeed
	e.eng.Metrics.chargeEstimator(e.id, cost, busy)
	now := e.eng.K.Now()
	start := e.busyUntil
	if start < now {
		start = now
	}
	finish := start + busy
	e.busyUntil = finish
	epoch := e.epoch
	e.eng.K.Schedule(finish, func() {
		if e.epoch != epoch {
			return
		}
		fn()
	})
}

// QueueDelay reports how far behind the estimator's CPU currently is.
func (e *Estimator) QueueDelay() sim.Time {
	d := e.busyUntil - e.eng.K.Now()
	if d < 0 {
		return 0
	}
	return d
}

// receive ingests one resource update.
func (e *Estimator) receive(rid int, load float64, at sim.Time) {
	e.exec(e.eng.Cfg.Costs.EstimatorPer, func() {
		cluster := e.eng.Map.ResourceCluster[rid]
		e.buffer[cluster] = append(e.buffer[cluster], statusItem{rid: rid, load: load, at: at})
	})
}

// flush distributes the buffered status to the scheduling decision
// makers: one digest, broadcast to every scheduler, per digest interval
// (the UpdateInterval enabler). This is the paper's estimator role —
// "receive the status updates from RP resources and distribute to the
// scheduling decision makers" — and it is why scaling up the estimator
// layer multiplies the digest traffic every scheduler must process.
func (e *Estimator) flush() {
	if e.down {
		return
	}
	var batch []statusItem
	//lint:orderindependent the digest is re-sorted by sortStatusItems below, so buffer iteration order never reaches the broadcast
	for cluster, items := range e.buffer {
		batch = append(batch, items...)
		delete(e.buffer, cluster)
	}
	// Deterministic order regardless of map iteration. An empty batch
	// is still broadcast: the digest doubles as the dissemination
	// heartbeat every decision maker consumes, so the layer's traffic
	// scales with the estimator count, not with the update volume.
	sortStatusItems(batch)
	e.exec(e.eng.Cfg.Costs.EstimatorPer*float64(len(batch)), func() {
		e.eng.broadcastDigest(e, batch)
	})
}

// sortStatusItems orders a digest by (resource id, time) so broadcast
// content is independent of map iteration order.
func sortStatusItems(items []statusItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && less(items[j], items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

func less(a, b statusItem) bool {
	if a.rid != b.rid {
		return a.rid < b.rid
	}
	return a.at < b.at
}

// startDigests arms the periodic digest flush with a phase offset.
func (e *Estimator) startDigests(interval float64, phase *sim.Stream) {
	offset := phase.Uniform(0, interval)
	e.eng.K.After(offset, func() {
		e.flush()
		sim.NewTicker(e.eng.K, interval, e.flush)
	})
}
