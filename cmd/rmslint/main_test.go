package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rmscale/internal/lint"
)

// TestRegistersAllNineAnalyzers pins the multichecker's roster: the
// suite the binary runs must contain exactly the six local
// determinism and model-coverage analyzers plus the three call-graph
// analyzers, in their documented order.
func TestRegistersAllNineAnalyzers(t *testing.T) {
	want := []string{
		"nowallclock", "noglobalrand", "mapiterorder", "nokernelgoroutines", "coorddiscipline",
		"rmsexhaustive", "detertaint", "hotalloc", "locksafe",
	}
	suite := lint.Suite(lint.DefaultConfig)
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestJSONReportShape pins the -json report schema the CI artifact
// consumers depend on: version field, findings array (never null),
// and anchor fields only when the anchor differs from the position.
func TestJSONReportShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint_report.json")
	in := []lint.Finding{{
		File: "a.go", Line: 3, Col: 2, Analyzer: "locksafe", Message: "held",
		AnchorFile: "a.go", AnchorLine: 1,
	}}
	if err := writeReport(path, in); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if r.Version != 1 || len(r.Findings) != 1 || r.Findings[0] != in[0] {
		t.Fatalf("report round-trip mismatch: %+v", r)
	}

	if err := writeReport(path, nil); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if !bytes.Contains(b, []byte(`"findings": []`)) {
		t.Fatalf("clean report must serialize findings as [], got:\n%s", b)
	}
}

// TestSelfClean runs the driver over this package: the lint gate the
// CI applies to the whole module must at minimum hold for the linter
// itself.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the dependency graph")
	}
	var buf bytes.Buffer
	n, err := lint.RunDir(".", []string{"."}, lint.DefaultConfig, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("rmslint is not self-clean:\n%s", buf.String())
	}
}
