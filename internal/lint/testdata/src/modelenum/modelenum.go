// Package modelenum is the fixture stand-in for rmscale/internal/rms:
// a seven-constant model enum the rmsexhaustive fixture switches
// over.
package modelenum

// ID mirrors the shape of rms.ID.
type ID int

const (
	Central ID = iota
	Lowest
	Reserve
	Auction
	SenderInit
	ReceiverInit
	Symmetric
)
