package chaos

import (
	"fmt"

	"rmscale/internal/rms"
	"rmscale/internal/sim"
)

// Generate derives the i-th random fault schedule of a sweep rooted at
// seed. Each schedule draws from its own named stream, so schedule i
// is identical no matter how many others are generated, and the seven
// RMS models are covered round-robin before any repeats.
func Generate(seed int64, i int) Schedule {
	st := sim.NewSource(seed).Stream(fmt.Sprintf("chaos:%d", i))
	names := rms.Names()
	s := Schedule{
		Name:        fmt.Sprintf("chaos-%d-%03d", seed, i),
		Model:       names[i%len(names)],
		Seed:        seed*1009 + int64(i),
		Clusters:    st.IntRange(2, 4),
		ClusterSize: st.IntRange(4, 8),
		Estimators:  st.IntRange(0, 2),
		Horizon:     800,
		Drain:       400,
		Util:        0.7,
	}
	// At most one scheduler crash per distinct cluster, so scripted
	// outage windows never overlap on a target.
	perm := st.Perm(s.Clusters)
	for j, n := 0, st.IntRange(0, 2); j < n; j++ {
		s.SchedCrashes = append(s.SchedCrashes, Crash{
			Target: perm[j],
			At:     st.Uniform(0, s.Horizon),
			Repair: st.Uniform(40, 160),
		})
	}
	if s.Estimators > 0 && st.Bool(0.5) {
		s.EstCrashes = append(s.EstCrashes, Crash{
			Target: st.Intn(s.Estimators),
			At:     st.Uniform(0, s.Horizon),
			Repair: st.Uniform(40, 160),
		})
	}
	for j, n := 0, st.IntRange(0, 2); j < n; j++ {
		s.LossWindows = append(s.LossWindows, Window{
			Start:    st.Uniform(0, s.Horizon),
			Duration: st.Uniform(20, 100),
		})
	}
	return s
}
