package chaos

import (
	"strings"
	"testing"
)

// TestChaosRun drives the full scenario — reference, exec faults,
// restart faults, disk faults — and requires a clean report: every
// scripted fault absorbed, every result byte-identical to the
// fault-free reference, the daemon alive throughout.
func TestChaosRun(t *testing.T) {
	rep, err := Run(Options{Dir: t.TempDir(), Specs: 10, Clients: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("chaos run failed:\n  %s", strings.Join(rep.Failures, "\n  "))
	}
	if rep.PanicsInjected == 0 || rep.HangsInjected == 0 || rep.ErrorsInjected == 0 {
		t.Fatalf("fault schedule degenerate: %+v — the run proved nothing", rep)
	}
	if rep.Disconnects == 0 {
		t.Fatalf("no client disconnects injected: %+v", rep)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("%d results differed from the reference", rep.Mismatched)
	}
	// Every spec verified at least twice: once under exec faults, once
	// after the restart; the disk-fault phase adds more.
	if rep.Verified < 2*rep.Specs {
		t.Fatalf("verified %d results for %d specs, want >= %d", rep.Verified, rep.Specs, 2*rep.Specs)
	}
	if rep.JournalDropped != 1 {
		t.Fatalf("journal_dropped = %d, want 1 (the torn record)", rep.JournalDropped)
	}
	if rep.CorruptResults < 1 {
		t.Fatalf("corrupt_results = %d, want >= 1 (the damaged payload)", rep.CorruptResults)
	}
	if rep.WriteFaults < 1 || !rep.StoreDegraded {
		t.Fatalf("disk-fault phase inert: faults=%d degraded=%v", rep.WriteFaults, rep.StoreDegraded)
	}
}

// TestChaosOptionsValidate: a run without a directory is refused.
func TestChaosOptionsValidate(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("Run accepted empty options")
	}
}
