// Package service is rmscaled, the long-lived experiment service: it
// wraps the repository's execution substrate — the runner's
// content-addressed caching and checkpoint journal, the audited
// simulation engines, the experiment drivers — behind a daemon that
// serves many concurrent clients.
//
// The contract is content addressing end to end. A client submits an
// ExperimentSpec; the daemon derives its deterministic content address
// (the experiment ID), and that ID is the whole coordination story:
//
//   - identical specs from any number of clients dedupe to one
//     execution, sharing one stored, byte-identical result;
//   - the result store is immutable and shareable — an ID's payload
//     never changes once written;
//   - a restart resumes from the submission journal: accepted-but-
//     unfinished experiments re-queue, finished ones are served from
//     the store.
//
// Production concerns are layered on top: a bounded job queue with
// admission control (saturation is refused, not buffered), per-client
// round-robin fairness, a configurable number of worker shards over
// the executor, graceful drain on SIGTERM with journal checkpointing,
// and structured request logging. The architectural precedent is
// Nimrod/G's persistent experiment service; the qualification story
// (thousands of objects per iteration, latency and dedup gates) lives
// in the loadgen subpackage and internal/perfbench.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	//lint:allow nokernelgoroutines the daemon's shard pool, state mutex and condition variable are the service layer's concurrency; simulations it runs stay single-threaded underneath
	"sync"

	"rmscale/internal/runner"
)

// journalFingerprint guards the daemon's journal format.
const journalFingerprint = "rmscaled/v1"

// expPrefix prefixes submission records in the journal.
const expPrefix = "exp/"

// State is an experiment's lifecycle position.
type State string

// Experiment states. Queued and Running are transient; Done and
// Failed are terminal.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Experiment is the daemon's record of one distinct submitted spec.
type Experiment struct {
	ID     string
	Spec   ExperimentSpec
	Client string // client that first submitted it
	State  State
	Err    string // non-empty iff State == StateFailed
}

// Status is the client-visible snapshot of an experiment.
type Status struct {
	ID    string         `json:"id"`
	State State          `json:"state"`
	Spec  ExperimentSpec `json:"spec"`
	Error string         `json:"error,omitempty"`
	// Dedup marks a submission that joined existing work (in-flight or
	// already stored) instead of queueing a new execution.
	Dedup bool `json:"dedup,omitempty"`
	// Progress carries the runner's runstate.json for a running
	// case/churn experiment, when available.
	Progress *runner.Snapshot `json:"progress,omitempty"`
}

// Stats is the daemon-wide accounting surface (the /v1/stats payload
// and the source of the load harness's gated metrics).
type Stats struct {
	Submitted     int64 `json:"submitted"`      // accepted submissions, dedup joins included
	Executions    int64 `json:"executions"`     // executions started (distinct work)
	Completed     int64 `json:"completed"`      // executions finished successfully
	Failed        int64 `json:"failed"`         // executions finished in error
	DedupInflight int64 `json:"dedup_inflight"` // submissions joined to queued/running work
	DedupStore    int64 `json:"dedup_store"`    // submissions answered from the result store
	Rejected      int64 `json:"rejected"`       // submissions refused with ErrSaturated
	Resumed       int64 `json:"resumed"`        // experiments re-queued from the journal at startup
	QueueDepth    int   `json:"queue_depth"`
	MaxQueueDepth int   `json:"max_queue_depth"`
	Running       int   `json:"running"`
	StoreLen      int   `json:"store_len"`
	Draining      bool  `json:"draining"`
}

// DedupHits is the total number of submissions that shared an existing
// execution or stored result.
func (s Stats) DedupHits() int64 { return s.DedupInflight + s.DedupStore }

// Config parameterizes a Daemon.
type Config struct {
	// Dir is the service directory: submission journal, result store
	// and per-experiment run directories live under it. Empty runs the
	// daemon ephemerally (memory only, no resume).
	Dir string
	// Shards is the number of worker shards executing experiments
	// concurrently; <= 0 picks 2.
	Shards int
	// QueueCap bounds the admission queue; <= 0 picks 256. A full
	// queue refuses new submissions with ErrSaturated (HTTP 429).
	QueueCap int
	// CaseWorkers sizes the runner pool inside one case/churn
	// execution; <= 0 picks 1 so shards do not oversubscribe each
	// other.
	CaseWorkers int
	// Log, when non-nil, receives one structured JSON line per daemon
	// event and HTTP request.
	Log io.Writer
	// Exec overrides the executor (tests); nil uses the production
	// Executor.
	Exec ExecFunc
	// Clock overrides the time source (tests); nil uses the wall
	// clock.
	Clock Clock
}

// Daemon is a running rmscaled instance.
type Daemon struct {
	cfg     Config
	store   *Store
	journal *runner.Journal // nil when cfg.Dir is empty
	exec    ExecFunc
	clock   Clock

	mu       sync.Mutex
	cond     *sync.Cond
	exps     map[string]*Experiment
	queue    *fairQueue
	stats    Stats
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// submitRecord is the journaled form of one accepted submission.
type submitRecord struct {
	Spec   ExperimentSpec `json:"spec"`
	Client string         `json:"client,omitempty"`
}

// New opens the service state under cfg.Dir (journal + result store),
// re-queues journaled experiments that have no stored result, and
// starts the worker shards.
func New(cfg Config) (*Daemon, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	store, err := NewStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:   cfg,
		store: store,
		exec:  cfg.Exec,
		clock: cfg.Clock,
		exps:  make(map[string]*Experiment),
		queue: newFairQueue(cfg.QueueCap),
	}
	if d.exec == nil {
		d.exec = Executor{CaseWorkers: cfg.CaseWorkers}.Run
	}
	if d.clock == nil {
		d.clock = wallClock
	}
	d.cond = sync.NewCond(&d.mu)
	if cfg.Dir != "" {
		j, _, err := runner.OpenJournal(cfg.Dir, journalFingerprint)
		if err != nil {
			return nil, err
		}
		d.journal = j
		if err := d.resume(); err != nil {
			j.Close()
			return nil, err
		}
	}
	d.logEvent("start", map[string]any{
		"dir": cfg.Dir, "shards": cfg.Shards, "queue_cap": cfg.QueueCap,
		"resumed": d.stats.Resumed,
	})
	d.wg.Add(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		//lint:allow nokernelgoroutines worker shards parallelize whole experiments, the same layering as internal/runner; each shard's simulation remains single-threaded
		go d.shard(i)
	}
	return d, nil
}

// resume replays the submission journal: every accepted experiment
// without a committed result re-enters the queue (bypassing admission
// control — it was admitted by the daemon incarnation that journaled
// it), and finished ones are registered as done so status and result
// queries keep answering across restarts.
func (d *Daemon) resume() error {
	return d.journal.Each(func(id string, data json.RawMessage) error {
		if len(id) <= len(expPrefix) || id[:len(expPrefix)] != expPrefix {
			return fmt.Errorf("service: journal holds foreign record %q", id)
		}
		eid := id[len(expPrefix):]
		var rec submitRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("service: journal record %s: %w", id, err)
		}
		if specID, err := rec.Spec.ID(); err != nil {
			return err
		} else if specID != eid {
			return fmt.Errorf("service: journal record %s does not address its own spec %s (hashes to %s)",
				id, rec.Spec, specID)
		}
		e := &Experiment{ID: eid, Spec: rec.Spec, Client: rec.Client}
		if d.store.Has(eid) {
			e.State = StateDone
			d.exps[eid] = e
			return nil
		}
		e.State = StateQueued
		d.exps[eid] = e
		if err := d.queue.push(rec.Client, e, true); err != nil {
			return err
		}
		d.stats.Resumed++
		d.logEvent("resume", map[string]any{"id": eid, "spec": rec.Spec.String()})
		return nil
	})
}

// Submit accepts one experiment submission from client. Identical
// specs dedupe: the returned status reports Dedup when the submission
// joined in-flight work or an already stored result. Saturation
// returns ErrSaturated; a draining daemon returns ErrDraining for new
// work (dedup reads still succeed).
func (d *Daemon) Submit(spec ExperimentSpec, client string) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	id, err := spec.ID()
	if err != nil {
		return Status{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.exps[id]; ok && e.State != StateFailed {
		d.stats.Submitted++
		if e.State == StateDone {
			d.stats.DedupStore++
		} else {
			d.stats.DedupInflight++
		}
		st := d.statusLocked(e)
		st.Dedup = true
		return st, nil
	}
	if d.store.Has(id) {
		// Stored by a previous daemon incarnation (or a sibling sharing
		// the directory) that we have no in-process record of.
		e := &Experiment{ID: id, Spec: spec, Client: client, State: StateDone}
		d.exps[id] = e
		d.stats.Submitted++
		d.stats.DedupStore++
		st := d.statusLocked(e)
		st.Dedup = true
		return st, nil
	}
	if d.draining || d.closed {
		return Status{}, ErrDraining
	}
	// Admission control: check capacity first so a refused submission
	// leaves no trace in the journal.
	if d.queue.depth() >= d.queue.cap {
		d.stats.Rejected++
		d.logEvent("reject", map[string]any{"id": id, "client": client, "queue_depth": d.queue.depth()})
		return Status{}, fmt.Errorf("%w: %d queued (capacity %d)", ErrSaturated, d.queue.depth(), d.queue.cap)
	}
	retry := false
	if e, ok := d.exps[id]; ok && e.State == StateFailed {
		// Resubmitting a failed spec retries it; the journal entry from
		// the first acceptance still stands.
		e.State = StateQueued
		e.Err = ""
		retry = true
		if err := d.queue.push(client, e, false); err != nil {
			e.State = StateFailed
			return Status{}, err
		}
		d.stats.Submitted++
		d.afterEnqueueLocked(e, client, retry)
		return d.statusLocked(e), nil
	}
	if d.journal != nil {
		if err := d.journal.Record(expPrefix+id, submitRecord{Spec: spec, Client: client}); err != nil {
			return Status{}, err
		}
	}
	e := &Experiment{ID: id, Spec: spec, Client: client, State: StateQueued}
	if err := d.queue.push(client, e, false); err != nil {
		// Unreachable after the capacity check above, but keep the
		// journal honest if it ever fires: the entry will simply resume
		// on restart.
		return Status{}, err
	}
	d.exps[id] = e
	d.stats.Submitted++
	d.afterEnqueueLocked(e, client, retry)
	return d.statusLocked(e), nil
}

// afterEnqueueLocked finishes bookkeeping common to fresh and retried
// enqueues. Callers hold d.mu.
func (d *Daemon) afterEnqueueLocked(e *Experiment, client string, retry bool) {
	if depth := d.queue.depth(); depth > d.stats.MaxQueueDepth {
		d.stats.MaxQueueDepth = depth
	}
	event := "submit"
	if retry {
		event = "retry"
	}
	d.logEvent(event, map[string]any{
		"id": e.ID, "client": client, "spec": e.Spec.String(), "queue_depth": d.queue.depth(),
	})
	d.cond.Broadcast()
}

// Status returns the experiment's current snapshot.
func (d *Daemon) Status(id string) (Status, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.exps[id]
	if !ok {
		return Status{}, false
	}
	return d.statusLocked(e), true
}

// statusLocked snapshots e; callers hold d.mu.
func (d *Daemon) statusLocked(e *Experiment) Status {
	st := Status{ID: e.ID, State: e.State, Spec: e.Spec, Error: e.Err}
	if e.State == StateRunning && d.cfg.Dir != "" {
		if b, err := os.ReadFile(filepath.Join(d.expDir(e.ID), "runstate.json")); err == nil {
			var snap runner.Snapshot
			if json.Unmarshal(b, &snap) == nil {
				st.Progress = &snap
			}
		}
	}
	return st
}

// Result returns the stored result payload for a done experiment.
func (d *Daemon) Result(id string) ([]byte, bool) {
	return d.store.Get(id)
}

// Await blocks until the experiment's state differs from last, is
// terminal, or the daemon shuts down, and returns the then-current
// snapshot. It reports false when the ID is unknown. Callers drive
// streaming with it: write each returned status and stop once it is
// terminal, or unchanged from last (which means the daemon closed and
// no further transition can come).
func (d *Daemon) Await(id string, last State) (Status, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		e, ok := d.exps[id]
		if !ok {
			return Status{}, false
		}
		if e.State != last || e.State.Terminal() || d.closed {
			return d.statusLocked(e), true
		}
		d.cond.Wait()
	}
}

// Stats snapshots the daemon-wide accounting.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.QueueDepth = d.queue.depth()
	s.StoreLen = d.store.Len()
	s.Draining = d.draining
	return s
}

// expDir is the experiment's private run directory (runner journal,
// disk cache, runstate.json for case/churn kinds).
func (d *Daemon) expDir(id string) string {
	if d.cfg.Dir == "" {
		return ""
	}
	return filepath.Join(d.cfg.Dir, "exps", id)
}

// nextQueued blocks until an experiment is available and marks it
// running, or returns nil when the daemon is draining or closed.
func (d *Daemon) nextQueued() *Experiment {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed || d.draining {
			return nil
		}
		if e, ok := d.queue.pop(); ok {
			e.State = StateRunning
			d.stats.Executions++
			d.stats.Running++
			d.cond.Broadcast()
			return e
		}
		d.cond.Wait()
	}
}

// shard is one worker loop: pop, execute, commit to the store, mark
// terminal. On drain it finishes its current experiment and exits;
// queued work stays journaled for the next incarnation.
func (d *Daemon) shard(i int) {
	defer d.wg.Done()
	for {
		e := d.nextQueued()
		if e == nil {
			return
		}
		d.logEvent("exec", map[string]any{"shard": i, "id": e.ID, "spec": e.Spec.String()})
		b, err := d.exec(context.Background(), e.Spec, d.expDir(e.ID))
		if err == nil {
			err = d.store.Put(e.ID, b)
		}
		d.mu.Lock()
		d.stats.Running--
		if err != nil {
			e.State = StateFailed
			e.Err = err.Error()
			d.stats.Failed++
			d.logEvent("fail", map[string]any{"shard": i, "id": e.ID, "error": err.Error()})
		} else {
			e.State = StateDone
			d.stats.Completed++
			d.logEvent("done", map[string]any{"shard": i, "id": e.ID, "bytes": len(b)})
		}
		d.cond.Broadcast()
		d.mu.Unlock()
	}
}

// Drain begins a graceful shutdown: new work is refused (dedup reads
// still answer), shards finish their current experiments and stop, and
// everything still queued stays checkpointed in the journal for the
// next start. Drain blocks until the shards have exited.
func (d *Daemon) Drain() {
	d.mu.Lock()
	already := d.draining
	d.draining = true
	d.cond.Broadcast()
	queued := d.queue.depth()
	d.mu.Unlock()
	if !already {
		d.logEvent("drain", map[string]any{"queued": queued})
	}
	d.wg.Wait()
}

// Close drains the daemon and releases the journal. Safe to call more
// than once.
func (d *Daemon) Close() error {
	d.Drain()
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	j := d.journal
	d.journal = nil
	d.mu.Unlock()
	d.logEvent("close", nil)
	if j != nil {
		return j.Close()
	}
	return nil
}

// logEvent writes one structured JSON log line. Field maps marshal
// with sorted keys, so log output is stable for tests.
func (d *Daemon) logEvent(event string, fields map[string]any) {
	if d.cfg.Log == nil {
		return
	}
	line := map[string]any{
		"ts":    d.clock().UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		"event": event,
	}
	for k, v := range fields { //lint:orderindependent both maps marshal below with sorted keys
		line[k] = v
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	fmt.Fprintf(d.cfg.Log, "%s\n", b)
}
