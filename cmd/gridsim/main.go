// Command gridsim runs a single grid simulation with one RMS model and
// prints the accounting summary — useful for exploring configurations
// before committing to a full scalability measurement.
//
// Usage:
//
//	gridsim [flags]
//
// Flags:
//
//	-model NAME      RMS model (default LOWEST); see -list
//	-list            list available models and exit
//	-clusters N      clusters (default 8)
//	-size N          resources per cluster (default 10)
//	-estimators N    status estimators (default 0)
//	-util F          target utilization (default 0.9)
//	-horizon F       arrival window in time units (default 4000)
//	-tau F           status update interval (default 40)
//	-lp N            neighbours probed (default 3)
//	-mu F            resource service rate (default 1)
//	-seed N          random seed (default 1)
//	-mtbf F          resource mean time between failures, 0=off
//	-repair F        resource repair time (default 200)
//	-loss F          update loss probability (default 0)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rmscale"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gridsim", flag.ContinueOnError)
	model := fs.String("model", "LOWEST", "RMS model name")
	list := fs.Bool("list", false, "list models and exit")
	clusters := fs.Int("clusters", 8, "number of clusters")
	size := fs.Int("size", 10, "resources per cluster")
	estimators := fs.Int("estimators", 0, "status estimators")
	util := fs.Float64("util", 0.9, "target utilization")
	horizon := fs.Float64("horizon", 4000, "arrival window")
	tau := fs.Float64("tau", 40, "status update interval")
	lp := fs.Int("lp", 3, "neighbour schedulers probed")
	mu := fs.Float64("mu", 1, "resource service rate")
	seed := fs.Int64("seed", 1, "random seed")
	mtbf := fs.Float64("mtbf", 0, "resource mean time between failures (0 disables)")
	repair := fs.Float64("repair", 200, "resource repair time")
	loss := fs.Float64("loss", 0, "update loss probability")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range rmscale.ModelNames() {
			fmt.Fprintln(out, n)
		}
		fmt.Fprintln(out, "HIERARCHY (extension)")
		return nil
	}

	p, err := rmscale.ModelByName(*model)
	if err != nil {
		return err
	}
	cfg := rmscale.DefaultConfig()
	cfg.Seed = *seed
	cfg.Spec = rmscale.GridSpec{Clusters: *clusters, ClusterSize: *size, Estimators: *estimators}
	cfg.Horizon = *horizon
	cfg.Drain = *horizon / 2
	cfg.ServiceRate = *mu
	cfg.Workload.Clusters = *clusters
	cfg.Workload.Horizon = *horizon
	cfg.Workload.ArrivalRate = *util * float64(*clusters**size) / 524.2
	cfg.Enablers.UpdateInterval = *tau
	cfg.Protocol.Lp = *lp
	cfg.Faults.ResourceMTBF = *mtbf
	cfg.Faults.RepairTime = *repair
	cfg.Faults.UpdateLossProb = *loss

	eng, err := rmscale.NewEngine(cfg, p)
	if err != nil {
		return err
	}
	sum := eng.Run()
	fmt.Fprintf(out, "model      %s\n", p.Name())
	fmt.Fprintf(out, "grid       %d clusters x %d resources, %d estimators\n",
		*clusters, *size, *estimators)
	fmt.Fprintf(out, "summary    %v\n", sum)
	m := eng.Metrics
	fmt.Fprintf(out, "messages   updates=%d suppressed=%d lost=%d digests=%d protocol=%d transfers=%d\n",
		m.UpdatesSent, m.UpdatesSuppressed, m.UpdatesLost, m.DigestsSent, m.PolicyMsgs, m.JobTransfers)
	fmt.Fprintf(out, "jobs       arrived=%d completed=%d succeeded=%d lost=%d unfinished=%d\n",
		m.JobsArrived, m.JobsCompleted, m.JobsSucceeded, m.JobsLost, eng.Unfinished())
	fmt.Fprintf(out, "waits      mean=%.1f max=%.1f  responses mean=%.1f\n",
		m.WaitTimes.Mean(), m.WaitTimes.Max(), m.ResponseTimes.Mean())
	return nil
}
