package grid_test

import (
	"testing"

	"rmscale/internal/grid"
	"rmscale/internal/rms"
)

// TestEfficiencyRespondsToUpdateInterval verifies the central calibration
// property the scalability procedure relies on: efficiency must sit in or
// above the paper's band when status information is fresh, and degrade
// below the band's floor as the update interval grows and the scheduler's
// view goes stale. Without this coupling the isoefficiency constraint
// could not bind and the tuner would be meaningless.
func TestEfficiencyRespondsToUpdateInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	cfg := grid.DefaultConfig()
	cfg.Workload.Horizon = 3000
	cfg.Horizon = 3000
	cfg.Drain = 3000

	var effs []float64
	for _, tau := range []float64{10, 40, 160, 640, 2500} {
		c := cfg
		c.Enablers.UpdateInterval = tau
		e, err := grid.New(c, rms.NewLowest())
		if err != nil {
			t.Fatal(err)
		}
		sum := e.Run()
		t.Logf("tau=%-6v %v", tau, sum)
		effs = append(effs, sum.Efficiency)
	}
	if effs[0] < 0.36 {
		t.Errorf("fresh information should keep efficiency near the band, got %v", effs[0])
	}
	if effs[len(effs)-1] > effs[0] {
		t.Errorf("stale information should not beat fresh: %v", effs)
	}
}

// TestEfficiencyBandReachable verifies every model can land in or above
// the band floor at the base configuration with default enablers.
func TestEfficiencyBandReachable(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	cfg := grid.DefaultConfig()
	cfg.Workload.Horizon = 3000
	cfg.Horizon = 3000
	cfg.Drain = 3000
	for _, p := range rms.All() {
		e, err := grid.New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		sum := e.Run()
		t.Logf("%-8s %v", p.Name(), sum)
		if sum.Efficiency < 0.3 {
			t.Errorf("%s: efficiency %v hopelessly below band", p.Name(), sum.Efficiency)
		}
		if sum.Efficiency > 0.46 {
			t.Errorf("%s: efficiency %v above the calibrated ceiling", p.Name(), sum.Efficiency)
		}
	}
}
