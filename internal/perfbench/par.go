package perfbench

import (
	"fmt"
	"sort"
	"time"

	"rmscale/internal/sim/par"
)

// parWorkers is the worker count the speedup gate measures at, matching
// the -par-workers setting the CI benchcheck exercises.
const parWorkers = 4

// parPairs is how many interleaved serial/parallel pairs the speedup
// measurement runs. Each pair yields one speedup ratio and the metric
// is the median: interleaving means background CPU noise hits both
// legs of a pair roughly equally, and the median rejects the pairs
// where it did not. On a small shared host this is far more stable
// than best-of-N on either leg alone.
const parPairs = 5

// parMetrics benchmarks the conservative parallel executor on its
// large-topology model (see par.LargeTopology) and reports:
//
//   - sim/par/events, /cross, /windows: exact-gated — the partitioned
//     model is deterministic in the spec alone, so any drift means the
//     executor or the bench model changed behaviour;
//   - sim/par/fingerprint48: the low 48 bits of the order-sensitive
//     event-stream digest, exact-gated (48 bits so the value is exactly
//     representable in the report's float64 metrics);
//   - sim/par/speedup_4w: min-gated median wall-clock speedup of 4
//     workers over serial, the executor's performance contract. The
//     attainable value is bounded by the host: on a machine whose two
//     hardware threads are SMT siblings of one physical core, every
//     CPU-bound workload tops out well short of 2x, so the committed
//     baseline records what this hardware honestly delivers rather
//     than an idealized core count;
//   - sim/par/serial_ns: ungated, for trend reading.
//
// The parallel result is also checked against the serial result on
// every pair — a divergence fails the whole harness rather than
// producing a report at all.
func parMetrics() ([]Metric, error) {
	spec := par.LargeTopology()
	ratios := make([]float64, 0, parPairs)
	serials := make([]time.Duration, 0, parPairs)
	var ref par.BenchResult
	for i := 0; i < parPairs; i++ {
		start := time.Now()
		serial := par.RunBench(spec, 1)
		serialD := time.Since(start)
		start = time.Now()
		parallel := par.RunBench(spec, parWorkers)
		parD := time.Since(start)
		if i == 0 {
			ref = serial
		}
		if serial != ref || parallel != ref {
			return nil, fmt.Errorf("perfbench: sim/par diverged on pair %d: serial %+v, parallel %+v, reference %+v",
				i, serial, parallel, ref)
		}
		serials = append(serials, serialD)
		if parD > 0 {
			ratios = append(ratios, float64(serialD)/float64(parD))
		}
	}
	if ref.Events == 0 || ref.Cross == 0 {
		return nil, fmt.Errorf("perfbench: degenerate sim/par bench run %+v", ref)
	}
	sort.Slice(serials, func(i, j int) bool { return serials[i] < serials[j] })
	out := []Metric{
		{Name: "sim/par/events", Value: float64(ref.Events), Unit: "events", Gate: GateExact},
		{Name: "sim/par/cross", Value: float64(ref.Cross), Unit: "msgs", Gate: GateExact},
		{Name: "sim/par/windows", Value: float64(ref.Windows), Unit: "windows", Gate: GateExact},
		{Name: "sim/par/fingerprint48", Value: float64(ref.Fingerprint & (1<<48 - 1)), Unit: "digest", Gate: GateExact},
		{Name: "sim/par/serial_ns", Value: float64(serials[len(serials)/2].Nanoseconds()), Unit: "ns", Gate: GateNone},
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		out = append(out, Metric{
			Name:  "sim/par/speedup_4w",
			Value: ratios[len(ratios)/2],
			Unit:  "x",
			Gate:  GateMin,
		})
	}
	return out, nil
}
