// Package fsutil holds the module's durable-write primitives: the
// atomic whole-file write (temp file + fsync + rename + parent-dir
// fsync) and the synced append that makes each record of an
// append-only log an atomic commit point. They were born in
// internal/runner for the checkpoint journal and disk cache; the
// rmscaled result store shares the exact same crash-consistency
// needs, so the helpers live here and both reuse them instead of
// duplicating temp-file logic.
//
// The package also defines the op-level filesystem seam (FS, File)
// the store and journals write through. Production code passes RealFS
// (or nil, which callers default to RealFS); the crash-consistency
// harness passes internal/fsutil/crashfs, which records every op and
// can materialize the disk as it would look after a crash at any
// point, and the chaos harness wraps RealFS with scripted faults.
// Because WriteAtomic and Append are composed from FS ops, every
// implementation — real or simulated — executes the exact same op
// sequence, so a durability bug in the sequence is visible to the
// crash harness, not just to production.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// File is one open file handle of an FS: the write-side operations
// the journal and store need. *os.File satisfies it.
type File interface {
	Write(b []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
	Name() string
}

// FS is the injectable op-level filesystem seam. The result store and
// journals perform every filesystem operation through an FS value
// instead of calling the os package directly, so fault-injection
// harnesses (internal/service/chaos) can script disk-full and
// flaky-write behaviour and the crash harness
// (internal/service/crash) can enumerate crash states — without
// touching a real filesystem knob.
//
// Durability contract implementations must model: File.Sync makes a
// file's current content survive a crash, but not its directory
// entry; Rename is atomic for readers yet the renamed entry is
// volatile until SyncDir on the parent; Remove is likewise volatile
// until SyncDir. MkdirAll is assumed durable immediately (directory
// creation is rare and always precedes the first write into it).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flag
	// subset the module uses (O_WRONLY|O_CREATE with O_APPEND or
	// O_TRUNC).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the current (buffered, not necessarily synced)
	// content of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the entry names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Chmod sets the file's permission bits.
	Chmod(name string, mode os.FileMode) error
	// SyncDir fsyncs the directory itself, committing entry
	// creations, renames and removals inside it.
	SyncDir(dir string) error
	// WriteFileAtomic is the atomic whole-file write (WriteAtomic
	// composed over this FS, unless the FS injects faults).
	WriteFileAtomic(path string, data []byte, perm os.FileMode) error
	// AppendSync is the synced append commit point.
	AppendSync(f File, b []byte) error
}

// RealFS is the production FS: the os package.
type RealFS struct{}

// OpenFile implements FS via os.OpenFile.
func (RealFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFile implements FS via os.ReadFile.
func (RealFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS via os.ReadDir (sorted by name).
func (RealFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

// MkdirAll implements FS via os.MkdirAll.
func (RealFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// Rename implements FS via os.Rename.
func (RealFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS via os.Remove.
func (RealFS) Remove(name string) error { return os.Remove(name) }

// Chmod implements FS via os.Chmod.
func (RealFS) Chmod(name string, mode os.FileMode) error { return os.Chmod(name, mode) }

// SyncDir opens the directory and fsyncs it, committing its entry
// table to stable storage.
func (RealFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFileAtomic implements FS with the shared atomic-write sequence.
func (RealFS) WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteAtomic(RealFS{}, path, data, perm)
}

// AppendSync implements FS with the shared append sequence.
func (RealFS) AppendSync(f File, b []byte) error { return Append(f, b) }

// WriteAtomic writes data to path through fsys so that readers never
// observe a partial file and the entry survives power loss: the bytes
// land in a temporary file in the same directory, are flushed to
// stable storage, are renamed over the destination, and the parent
// directory is then fsynced so the rename itself is durable — without
// that final step a "durably stored" file can vanish when the dir
// entry is lost with the page cache. An interrupted writer leaves
// either the old content or the new content, never a truncated mix,
// and the temp file is removed when any step before the rename fails.
//
// The temp name is a deterministic function of path (".<base>.tmp"),
// which keeps crash enumeration reproducible; callers serialize
// writes per destination path, as every user in this module already
// does.
func WriteAtomic(fsys FS, path string, data []byte, perm os.FileMode) error {
	fail := func(err error) error { return fmt.Errorf("fsutil: atomic write %s: %w", path, err) }
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, "."+filepath.Base(path)+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fail(err)
	}
	renamed := false
	defer func() {
		if !renamed {
			_ = fsys.Remove(tmp)
		}
	}()
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := fsys.Chmod(tmp, perm); err != nil {
		return fail(err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fail(err)
	}
	renamed = true
	if err := fsys.SyncDir(dir); err != nil {
		return fail(err)
	}
	return nil
}

// Append appends b to f with a single write followed by an fsync.
// Used on an append-only log it makes each record a durable commit
// point: a crash mid-append leaves at most one truncated final
// record, and everything written before the last successful Append
// survives.
func Append(f File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return fmt.Errorf("fsutil: append %s: %w", f.Name(), err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("fsutil: sync %s: %w", f.Name(), err)
	}
	return nil
}

// WriteFileAtomic is WriteAtomic over the real filesystem.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteAtomic(RealFS{}, path, data, perm)
}

// AppendSync is Append under its historical name.
func AppendSync(f File, b []byte) error { return Append(f, b) }
