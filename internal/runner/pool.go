package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Task is one schedulable unit of experiment work. Tasks must be safe
// to run concurrently with each other; the pool guarantees each task
// runs exactly once (or not at all after cancellation).
type Task struct {
	// ID names the task in progress output, e.g. "case1/CENTRAL".
	ID string
	// Run does the work. It should return promptly once ctx.Err() is
	// non-nil; a non-nil error cancels the whole pool.
	Run func(ctx *TaskCtx) error
}

// TaskCtx is the execution context handed to a running task. It embeds
// the pool's cancellation context and lets the task spawn subtasks onto
// its worker's local deque, where sibling workers can steal them.
type TaskCtx struct {
	context.Context
	w *worker
}

// Worker returns the index of the worker executing the task.
func (tc *TaskCtx) Worker() int { return tc.w.id }

// Spawn schedules a subtask. It is pushed onto the bottom of the
// current worker's deque: the spawning worker continues depth-first
// while idle workers steal from the top, which is the classic
// work-stealing discipline (local LIFO, steal FIFO).
func (tc *TaskCtx) Spawn(t Task) { tc.w.pool.spawn(tc.w, t) }

// worker is one executor with a private deque.
type worker struct {
	id    int
	pool  *Pool
	deque []Task // bottom = end of slice (local push/pop), top = index 0 (steal)
}

// Pool is a work-stealing task executor: each worker owns a deque,
// externally submitted tasks enter a shared injection queue, and idle
// workers steal the oldest task from the busiest sibling. A single
// mutex guards all queues — tasks here are whole simulation/tuning
// runs, hundreds of milliseconds each, so queue contention is nil and
// the simple locking keeps the scheduler race-free by construction.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*worker
	global  []Task // FIFO injection queue
	pending int    // submitted + spawned tasks not yet finished
	closed  bool   // Wait called; no further Submit allowed
	err     error  // first task error
	errs    []error // every task error, in completion order (keep-going mode)
	running map[int]string

	// keepGoing, when set, stops a task error from cancelling the pool:
	// the remaining tasks complete and Wait returns every error joined.
	// retries is how many times a failed task is immediately re-run
	// before its error counts.
	keepGoing bool
	retries   int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	observer PoolObserver
}

// PoolObserver receives worker lifecycle events (for progress
// reporting). Callbacks run on worker goroutines and must be fast.
type PoolObserver interface {
	TaskStart(worker int, id string)
	TaskDone(worker int, id string, err error)
}

// NewPool starts a pool with the given number of workers; n <= 0 picks
// GOMAXPROCS. The pool stops early when ctx is cancelled or a task
// fails.
func NewPool(ctx context.Context, n int, obs PoolObserver) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pctx, cancel := context.WithCancel(ctx)
	p := &Pool{
		ctx:      pctx,
		cancel:   cancel,
		running:  make(map[int]string),
		observer: obs,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, &worker{id: i, pool: p})
	}
	// Wake blocked workers when the parent context dies so they can
	// drain and exit.
	go func() {
		<-pctx.Done()
		p.cond.Broadcast()
	}()
	p.wg.Add(n)
	for _, w := range p.workers {
		go p.run(w)
	}
	return p
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// SetKeepGoing selects the pool's failure discipline. Fail-fast (the
// default) cancels everything on the first task error — right for
// short runs where any failure voids the result. Keep-going lets the
// remaining tasks complete and Wait returns every error joined — right
// for long sweeps where the completed points are journaled and one bad
// point must not kill a ten-hour run. Call before submitting work.
func (p *Pool) SetKeepGoing(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.keepGoing = on
}

// SetTaskRetries sets how many times a failed or panicking task is
// immediately re-run before its error counts (0, the default, means
// one attempt only). Retries apply per task, not per pool. Call before
// submitting work.
func (p *Pool) SetTaskRetries(n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retries = n
}

// Submit enqueues a task on the shared injection queue. It panics if
// called after Wait.
func (p *Pool) Submit(t Task) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		panic("runner: Submit after Wait")
	}
	p.pending++
	p.global = append(p.global, t)
	p.cond.Signal()
}

// spawn pushes a subtask onto w's deque.
func (p *Pool) spawn(w *worker, t Task) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending++
	w.deque = append(w.deque, t)
	p.cond.Signal()
}

// Wait closes submission and blocks until every task has finished (or
// the pool was cancelled and drained). Fail-fast it returns the first
// task error; keep-going it returns every task error joined; either
// way the context error on cancellation.
func (p *Pool) Wait() error {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	ctxErr := p.ctx.Err() // read before the release-cancel below
	p.cancel()            // release the context watcher
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		if p.keepGoing {
			return errors.Join(p.errs...)
		}
		return p.err
	}
	return ctxErr
}

// next blocks until a task is available for w and dequeues it. The
// second result is false when the pool is done (drained and closed, or
// cancelled).
func (p *Pool) next(w *worker) (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.ctx.Err() != nil {
			// Cancelled: discard all queued work so Wait can return.
			for _, ww := range p.workers {
				p.pending -= len(ww.deque)
				ww.deque = nil
			}
			p.pending -= len(p.global)
			p.global = nil
			return Task{}, false
		}
		// 1. Local deque, newest first (depth-first descent).
		if n := len(w.deque); n > 0 {
			t := w.deque[n-1]
			w.deque = w.deque[:n-1]
			return t, true
		}
		// 2. Shared injection queue, oldest first.
		if len(p.global) > 0 {
			t := p.global[0]
			p.global = p.global[1:]
			return t, true
		}
		// 3. Steal the oldest task from a sibling, scanning round-robin
		// from our right neighbour so thieves spread across victims.
		for i := 1; i < len(p.workers); i++ {
			v := p.workers[(w.id+i)%len(p.workers)]
			if len(v.deque) > 0 {
				t := v.deque[0]
				v.deque = v.deque[1:]
				return t, true
			}
		}
		if p.closed && p.pending == 0 {
			return Task{}, false
		}
		p.cond.Wait()
	}
}

// run is one worker's loop.
func (p *Pool) run(w *worker) {
	defer p.wg.Done()
	for {
		t, ok := p.next(w)
		if !ok {
			return
		}
		p.mu.Lock()
		p.running[w.id] = t.ID
		retries := p.retries
		p.mu.Unlock()
		if p.observer != nil {
			p.observer.TaskStart(w.id, t.ID)
		}
		err := p.runTask(w, t)
		for attempt := 0; err != nil && attempt < retries && p.ctx.Err() == nil; attempt++ {
			err = p.runTask(w, t)
		}
		if p.observer != nil {
			p.observer.TaskDone(w.id, t.ID, err)
		}
		p.mu.Lock()
		delete(p.running, w.id)
		if err != nil {
			if p.err == nil {
				p.err = err
			}
			p.errs = append(p.errs, err)
		}
		p.pending--
		if p.pending == 0 {
			p.cond.Broadcast()
		}
		keepGoing := p.keepGoing
		p.mu.Unlock()
		if err != nil && !keepGoing {
			p.cancel()
		}
	}
}

// runTask executes t, converting a panic into an error carrying the
// captured stack so one bad task cannot take down the whole process —
// and the failure is still debuggable after the run finishes.
func (p *Pool) runTask(w *worker, t Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: task %s panicked: %v\n%s", t.ID, r, debug.Stack())
		}
	}()
	return t.Run(&TaskCtx{Context: p.ctx, w: w})
}

// Running snapshots which task each worker is currently executing.
func (p *Pool) Running() map[int]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]string, len(p.running))
	for k, v := range p.running {
		out[k] = v
	}
	return out
}
