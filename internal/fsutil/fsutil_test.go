package fsutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "v1" {
		t.Fatalf("read %q, want %q", b, "v1")
	}
	// Overwrite replaces the whole content.
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if string(b) != "second" {
		t.Fatalf("read %q after overwrite, want %q", b, "second")
	}
	// No temp-file litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicPerm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked")
	if err := WriteFileAtomic(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o600 {
		t.Fatalf("perm %v, want 0600", got)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), nil, 0o644)
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

func TestAppendSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := AppendSync(f, []byte("a\n")); err != nil {
		t.Fatal(err)
	}
	if err := AppendSync(f, []byte("b\n")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "a\nb\n" {
		t.Fatalf("log content %q, want %q", b, "a\nb\n")
	}
}
