package workload

import (
	"fmt"

	"rmscale/internal/sim"
)

// The paper's future work item (b): "evaluating scenarios where jobs
// have data dependencies and precedence constraints among them". This
// file adds precedence constraints to the workload model: a job may
// depend on earlier jobs and becomes eligible for scheduling only when
// every dependency has completed. The grid engine enforces the
// constraint by holding dependent jobs until their parents finish.

// DAGParams extends the generator with precedence structure.
type DAGParams struct {
	Params
	// DepProb is the probability that a job depends on earlier jobs.
	DepProb float64
	// MaxDeps bounds the number of parents per job (1-3 typical).
	MaxDeps int
	// Window is how far back (in jobs) a parent may be drawn from;
	// dependencies on long-completed jobs are vacuous, so a small
	// window keeps the constraints meaningful.
	Window int
}

// DefaultDAGParams returns a moderately chained workload.
func DefaultDAGParams() DAGParams {
	return DAGParams{
		Params:  DefaultParams(),
		DepProb: 0.3,
		MaxDeps: 2,
		Window:  20,
	}
}

// Validate reports the first bad parameter.
func (p DAGParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	switch {
	case p.DepProb < 0 || p.DepProb > 1:
		return fmt.Errorf("workload: DepProb %v outside [0,1]", p.DepProb)
	case p.MaxDeps < 1:
		return fmt.Errorf("workload: MaxDeps must be >= 1, got %d", p.MaxDeps)
	case p.Window < 1:
		return fmt.Errorf("workload: Window must be >= 1, got %d", p.Window)
	}
	return nil
}

// GenerateDAG produces a job stream with precedence constraints: each
// job's Deps reference the IDs of strictly earlier jobs. The result is
// acyclic by construction.
func GenerateDAG(p DAGParams, st *sim.Stream) ([]*Job, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	jobs, err := Generate(p.Params, st)
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		if i == 0 || !st.Bool(p.DepProb) {
			continue
		}
		n := st.IntRange(1, p.MaxDeps)
		lo := i - p.Window
		if lo < 0 {
			lo = 0
		}
		seen := map[int]bool{}
		for d := 0; d < n; d++ {
			parent := jobs[st.IntRange(lo, i-1)].ID
			if !seen[parent] {
				seen[parent] = true
				j.Deps = append(j.Deps, parent)
			}
		}
	}
	return jobs, nil
}

// ValidateDAG checks that every dependency references an earlier job id
// present in the stream (acyclicity follows from "earlier").
func ValidateDAG(jobs []*Job) error {
	ids := make(map[int]int, len(jobs)) // id -> index
	for i, j := range jobs {
		ids[j.ID] = i
	}
	for i, j := range jobs {
		for _, d := range j.Deps {
			pi, ok := ids[d]
			if !ok {
				return fmt.Errorf("workload: job %d depends on unknown job %d", j.ID, d)
			}
			if pi >= i {
				return fmt.Errorf("workload: job %d depends on non-earlier job %d", j.ID, d)
			}
		}
	}
	return nil
}
