package experiments

import (
	"os"
	"testing"

	"rmscale/internal/grid"
	"rmscale/internal/rms"
)

// TestProbeCentralSaturation inspects the central scheduler's node
// utilization across Case 2 scale factors. Enabled via RMSCALE_PROBE_SAT.
func TestProbeCentralSaturation(t *testing.T) {
	if os.Getenv("RMSCALE_PROBE_SAT") == "" {
		t.Skip("set RMSCALE_PROBE_SAT=1 to run")
	}
	def := Case2(Full)
	for _, k := range []int{1, 3, 6} {
		cfg := def.config(Full, 1, k, []float64{40, 6, 1})
		p, _ := rms.ByName("CENTRAL")
		e, err := grid.New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		sum := e.Run()
		t.Logf("k=%d speed=%v %v", k, cfg.Costs.SchedulerSpeed, sum)
	}
}
