package grid

import (
	"rmscale/internal/sim"
)

// execJob is one job in flight at a resource.
type execJob struct {
	ctx   *JobCtx
	start sim.Time
}

// Resource is one managee node: a FCFS single server with a finite
// service rate. It reports its load to the RMS through periodic,
// change-suppressed status updates.
type Resource struct {
	id      int
	node    int // topology node
	cluster int
	eng     *Engine

	running *execJob
	queue   []*JobCtx
	down    bool

	// dirty is set whenever the load changed since the last sent
	// update; a clean resource suppresses its periodic update.
	dirty        bool
	lastSentLoad float64

	ticker *sim.Ticker
}

// Load is the paper's loading condition: jobs in service plus queued.
func (r *Resource) Load() float64 {
	n := len(r.queue)
	if r.running != nil {
		n++
	}
	return float64(n)
}

// ID returns the dense resource id.
func (r *Resource) ID() int { return r.id }

// Cluster returns the owning cluster.
func (r *Resource) Cluster() int { return r.cluster }

// Node returns the topology node hosting the resource.
func (r *Resource) Node() int { return r.node }

// Down reports whether the resource is crashed.
func (r *Resource) Down() bool { return r.down }

// enqueue accepts a dispatched job. Arrival at a crashed resource
// bounces the job back to its origin scheduler.
func (r *Resource) enqueue(ctx *JobCtx) {
	if r.down {
		r.eng.bounce(ctx)
		return
	}
	r.eng.Metrics.RPOverhead += r.eng.Cfg.Costs.JobControl
	r.dirty = true
	if r.running == nil {
		r.start(ctx)
		return
	}
	r.queue = append(r.queue, ctx)
}

// start begins executing ctx now; service time is runtime / mu.
func (r *Resource) start(ctx *JobCtx) {
	now := r.eng.K.Now()
	//lint:allow hotalloc one execution record per job start: a per-job cost the dispatch gate budgets
	r.running = &execJob{ctx: ctx, start: now}
	r.eng.Metrics.WaitTimes.Add(float64(now - ctx.Job.Arrival))
	service := ctx.Job.Runtime / r.eng.Cfg.ServiceRate
	//lint:allow hotalloc one completion closure per job execution: a per-job cost the dispatch gate budgets
	r.eng.K.After(service, func() { r.complete(ctx) })
}

// complete finishes the running job and records its outcome.
func (r *Resource) complete(ctx *JobCtx) {
	if r.down || r.running == nil || r.running.ctx != ctx {
		// The job was destroyed by a crash before completing.
		return
	}
	now := r.eng.K.Now()
	m := r.eng.Metrics
	m.JobsCompleted++
	m.ResponseTimes.Add(float64(now - ctx.Job.Arrival))
	if now <= ctx.Job.Deadline() {
		m.JobsSucceeded++
		m.UsefulWork += ctx.Job.Runtime
	} else {
		// Work the pool consumed without delivering user benefit is RP
		// overhead: the resource pool spent the cycles, the client got
		// nothing. This is the dominant component of H in a stressed
		// system and is what couples the efficiency band to the
		// quality (freshness) of the RMS's information.
		m.WastedWork += ctx.Job.Runtime
		m.RPOverhead += ctx.Job.Runtime
	}
	r.running = nil
	r.dirty = true
	r.eng.jobTerminated(ctx.Job.ID)
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.start(next)
	}
}

// startUpdates arms the periodic status updates with a phase offset so
// the whole pool does not synchronize its update bursts.
func (r *Resource) startUpdates(tau float64, phase *sim.Stream) {
	offset := phase.Uniform(0, tau)
	r.eng.K.After(offset, func() {
		r.tick()
		r.ticker = sim.NewTicker(r.eng.K, tau, r.tick)
	})
}

// tick sends one status update unless suppressed. The paper's update
// optimization: when the load did not change significantly since the
// previous update, the update is suppressed; all periodic schemes share
// this behaviour.
func (r *Resource) tick() {
	if r.down {
		return
	}
	load := r.Load()
	delta := r.eng.Cfg.Protocol.SuppressDelta
	// Delta 0 disables the update optimization entirely: every tick
	// sends, whether or not anything changed.
	changed := delta <= 0 || (r.dirty && abs(load-r.lastSentLoad) >= delta)
	// A freshly idle resource must still heal the scheduler's
	// optimistic view even when the delta threshold is large.
	if r.dirty && load == 0 && r.lastSentLoad != 0 {
		changed = true
	}
	if !changed {
		r.eng.Metrics.UpdatesSuppressed++
		return
	}
	r.dirty = false
	r.lastSentLoad = load
	r.eng.sendStatusUpdate(r, load)
}

// crash destroys the queue and takes the resource down; the engine
// schedules the repair.
func (r *Resource) crash() {
	if r.down {
		return
	}
	lost := len(r.queue)
	for _, ctx := range r.queue {
		r.eng.jobTerminated(ctx.Job.ID)
	}
	if r.running != nil {
		lost++
		r.eng.jobTerminated(r.running.ctx.Job.ID)
	}
	r.eng.Metrics.JobsLost += lost
	r.queue = nil
	r.running = nil
	r.down = true
	r.eng.K.After(r.eng.Cfg.Faults.RepairTime, r.repair)
}

// repair brings the resource back empty and dirty (so the next tick
// reports the fresh state).
func (r *Resource) repair() {
	r.down = false
	r.dirty = true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
