package workload

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rmscale/internal/sim"
)

// Trace bundles a generated job stream with the parameters that produced
// it, so experiments can be replayed bit-exactly from disk.
type Trace struct {
	Params Params `json:"params"`
	Jobs   []*Job `json:"jobs"`
}

// GenerateTrace generates jobs under p and wraps them in a Trace.
func GenerateTrace(p Params, st *sim.Stream) (*Trace, error) {
	jobs, err := Generate(p, st)
	if err != nil {
		return nil, err
	}
	return &Trace{Params: p, Jobs: jobs}, nil
}

// WriteJSON serializes the trace as JSON.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// ReadTraceJSON parses a JSON trace and validates its invariants.
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// WriteGob serializes the trace in the compact gob encoding, the format
// the benchmark harness caches traces in.
func (tr *Trace) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(tr)
}

// ReadTraceGob parses a gob trace and validates its invariants.
func ReadTraceGob(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := gob.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("workload: decode gob trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Validate checks trace invariants: sorted arrivals within the horizon,
// positive runtimes, requested >= runtime, consistent classification,
// benefit within bounds, and cluster ids in range.
func (tr *Trace) Validate() error {
	if err := tr.Params.Validate(); err != nil {
		return err
	}
	if !sort.SliceIsSorted(tr.Jobs, func(i, j int) bool {
		return tr.Jobs[i].Arrival < tr.Jobs[j].Arrival
	}) {
		return fmt.Errorf("workload: trace arrivals out of order")
	}
	for _, j := range tr.Jobs {
		switch {
		case j.Arrival < 0 || j.Arrival >= tr.Params.Horizon:
			return fmt.Errorf("workload: job %d arrival %v outside [0,%v)", j.ID, j.Arrival, tr.Params.Horizon)
		case j.Runtime < tr.Params.RuntimeMin || j.Runtime > tr.Params.RuntimeMax:
			return fmt.Errorf("workload: job %d runtime %v outside range", j.ID, j.Runtime)
		case j.Requested < j.Runtime:
			return fmt.Errorf("workload: job %d requested %v < runtime %v", j.ID, j.Requested, j.Runtime)
		case j.Benefit < tr.Params.BenefitMin || j.Benefit > tr.Params.BenefitMax:
			return fmt.Errorf("workload: job %d benefit %v outside range", j.ID, j.Benefit)
		case j.Cluster < 0 || j.Cluster >= tr.Params.Clusters:
			return fmt.Errorf("workload: job %d cluster %d outside [0,%d)", j.ID, j.Cluster, tr.Params.Clusters)
		case j.Partition != 1:
			return fmt.Errorf("workload: job %d partition %d, paper model uses 1", j.ID, j.Partition)
		case (j.Runtime <= tr.Params.TCPU) != (j.Class == Local):
			return fmt.Errorf("workload: job %d misclassified as %v with runtime %v", j.ID, j.Class, j.Runtime)
		}
	}
	return nil
}
