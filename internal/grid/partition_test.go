package grid

import (
	"strings"
	"testing"

	"rmscale/internal/topology"
)

func planFor(t *testing.T, cfg Config, p Policy) (*Engine, *Plan) {
	t.Helper()
	e, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.PlanPartitions()
	if err != nil {
		t.Fatal(err)
	}
	return e, plan
}

func TestPlanPartitionsIdentityMapAndLookahead(t *testing.T) {
	e, plan := planFor(t, testConfig(), &stubPolicy{})
	if len(plan.Partitions) != e.Clusters() {
		t.Fatalf("plan covers %d clusters, engine has %d", len(plan.Partitions), e.Clusters())
	}
	for c, p := range plan.Partitions {
		if p != c {
			t.Fatalf("cluster %d mapped to partition %d, want identity", c, p)
		}
	}
	if plan.Lookahead <= 0 {
		t.Fatalf("lookahead = %v on a %d-cluster grid, want positive", plan.Lookahead, e.Clusters())
	}
	if want := e.Clusters() * (e.Clusters() - 1); plan.CrossPairs != want {
		t.Fatalf("CrossPairs = %d, want %d", plan.CrossPairs, want)
	}
	// Lookahead must be a lower bound on every inter-scheduler delay.
	for a := 0; a < e.Clusters(); a++ {
		for b := 0; b < e.Clusters(); b++ {
			if a == b {
				continue
			}
			lat, _, _, err := e.Net.Between(e.Map.SchedulerNode[a], e.Map.SchedulerNode[b])
			if err != nil {
				t.Fatal(err)
			}
			if d := lat * e.Cfg.Enablers.LinkDelayScale; d < plan.Lookahead {
				t.Fatalf("schedulers %d->%d delay %v beats lookahead %v", a, b, d, plan.Lookahead)
			}
		}
	}
}

func TestPlanLookaheadScalesWithLinkDelay(t *testing.T) {
	cfg := testConfig()
	_, base := planFor(t, cfg, &stubPolicy{})
	cfg.Enablers.LinkDelayScale = 3
	_, scaled := planFor(t, cfg, &stubPolicy{})
	if scaled.Lookahead != 3*base.Lookahead {
		t.Fatalf("lookahead %v with LinkDelayScale 3, want %v", scaled.Lookahead, 3*base.Lookahead)
	}
}

// TestPlanCouplingCensus pins the census: the global-accumulator
// coupling is unconditional (it is why RunPar must stay serial), and
// the conditional entries track exactly the features that are armed.
func TestPlanCouplingCensus(t *testing.T) {
	has := func(plan *Plan, frag string) bool {
		for _, c := range plan.Couplings {
			if strings.Contains(c, frag) {
				return true
			}
		}
		return false
	}

	cfg := testConfig()
	_, plan := planFor(t, cfg, &stubPolicy{})
	if plan.Parallelizable() {
		t.Fatalf("a plan with global metric accumulators claimed to be parallelizable: %v", plan.Couplings)
	}
	if !has(plan, "global accumulators") {
		t.Fatalf("census misses the unconditional accumulator coupling: %v", plan.Couplings)
	}
	if has(plan, "estimator layer") || has(plan, "middleware") || has(plan, "fault stream") {
		t.Fatalf("census lists features this config does not arm: %v", plan.Couplings)
	}

	cfg = testConfig()
	cfg.Spec.Estimators = 2
	_, plan = planFor(t, cfg, &stubPolicy{})
	if !has(plan, "estimator layer") {
		t.Fatalf("estimator coupling missing: %v", plan.Couplings)
	}

	_, plan = planFor(t, testConfig(), &stubPolicy{middleware: true})
	if !has(plan, "middleware") {
		t.Fatalf("middleware coupling missing: %v", plan.Couplings)
	}

	cfg = testConfig()
	cfg.Faults.UpdateLossProb = 0.1
	_, plan = planFor(t, cfg, &stubPolicy{})
	if !has(plan, "fault stream") {
		t.Fatalf("fault-stream coupling missing: %v", plan.Couplings)
	}

	cfg = testConfig()
	cfg.Spec = topology.GridSpec{Clusters: 1, ClusterSize: 20}
	cfg.Workload.Clusters = 1
	_, plan = planFor(t, cfg, &stubPolicy{})
	if !has(plan, "single cluster") {
		t.Fatalf("single-cluster coupling missing: %v", plan.Couplings)
	}
	if plan.Lookahead != 0 {
		t.Fatalf("single-cluster lookahead = %v, want 0", plan.Lookahead)
	}
}

// TestRunParMatchesRunExactly is the engine-level equivalence contract:
// identical builds must produce identical summaries whatever the worker
// count, because RunPar degrades to the serial kernel while any
// coupling is present.
func TestRunParMatchesRunExactly(t *testing.T) {
	build := func() *Engine {
		e, err := New(testConfig(), &stubPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	serial := build().Run()
	for _, workers := range []int{0, 1, 2, 4, 8} {
		e := build()
		if got := e.RunPar(workers); got != serial {
			t.Fatalf("RunPar(%d) summary diverges from Run:\n got %+v\nwant %+v", workers, got, serial)
		}
		if workers > 1 && e.LastPlan == nil {
			t.Fatalf("RunPar(%d) did not retain its plan", workers)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("RunPar(-1) did not panic")
			}
		}()
		build().RunPar(-1)
	}()
}

func TestCrossClusterTagging(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	// The stub policy never transfers or messages, so only estimator
	// traffic could cross partitions — and there are no estimators.
	if e.Metrics.CrossClusterMsgs != 0 {
		t.Fatalf("stub policy run tagged %d cross-cluster messages, want 0", e.Metrics.CrossClusterMsgs)
	}

	cfg := testConfig()
	cfg.Spec.Estimators = 2
	e, err = New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if e.Metrics.CrossClusterMsgs == 0 {
		t.Fatalf("estimator-layer run tagged no cross-cluster messages")
	}
	if e.Metrics.CrossClusterMsgs > e.Metrics.UpdatesSent+e.Metrics.DigestsSent {
		t.Fatalf("CrossClusterMsgs %d exceeds update+digest volume %d",
			e.Metrics.CrossClusterMsgs, e.Metrics.UpdatesSent+e.Metrics.DigestsSent)
	}
}
