// FuzzWindowMerge drives the window partitioner differentially: the
// same randomized multi-shard model runs on the real executor (heap
// FELs, free lists, worker pool) and on refExec, a deliberately naive
// reimplementation of the conservative-window semantics built from
// sorted slices and a single loop. Any divergence in any shard's event
// stream — order, timing or payload — fails. The fuzz input chooses
// the shard count, lookahead, worker count and the whole event mix.

package par_test

import (
	"fmt"
	"sort"
	"testing"

	"rmscale/internal/sim"
	"rmscale/internal/sim/par"
)

// host abstracts the two executors so one model runs on both.
type host interface {
	// local schedules fn on shard s at absolute time at.
	local(s int, at sim.Time, fn func())
	// send delivers fn to shard dst at absolute time at (>= now+lookahead).
	send(src, dst int, at sim.Time, fn func())
	// now is shard s's clock.
	now(s int) sim.Time
}

type traceEntry struct {
	At  sim.Time
	Tag uint64
}

// model is the randomized workload: per-shard rng-driven events that
// note themselves into a trace and spawn local and cross-shard
// successors until the shard's budget runs out. All state is per
// shard, so the model is legal on concurrent windows.
type model struct {
	h      host
	n      int
	la     sim.Time
	rng    []uint64
	budget []int
	trace  [][]traceEntry
	global []traceEntry // appended only when the host is single-threaded
}

func fuzzMix(h uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ h>>31
}

func newModel(h host, n int, la sim.Time, seed uint64, budget int, trackGlobal bool) *model {
	m := &model{h: h, n: n, la: la}
	m.rng = make([]uint64, n)
	m.budget = make([]int, n)
	m.trace = make([][]traceEntry, n)
	if !trackGlobal {
		m.global = nil
	}
	for s := 0; s < n; s++ {
		m.rng[s] = fuzzMix(seed ^ uint64(s)*0x517cc1b727220a95)
		m.budget[s] = budget
	}
	return m
}

// fire is one model event on shard s.
func (m *model) fire(s int, tag uint64) {
	at := m.h.now(s)
	m.trace[s] = append(m.trace[s], traceEntry{At: at, Tag: tag})
	if m.global != nil {
		m.global = append(m.global, traceEntry{At: at, Tag: tag ^ uint64(s)<<56})
	}
	m.rng[s] = fuzzMix(m.rng[s] ^ tag)
	r := m.rng[s]
	if m.budget[s] <= 0 {
		return
	}
	m.budget[s]--
	if m.n > 1 && r%4 == 0 {
		dst := (s + 1 + int((r>>8)%uint64(m.n-1))) % m.n
		at := m.h.now(s) + m.la + sim.Time((r>>16)%8)/2
		tag2 := fuzzMix(r)
		m.h.send(s, dst, at, func() { m.fire(dst, tag2) })
		return
	}
	at2 := m.h.now(s) + sim.Time((r>>16)%8)/2
	tag2 := fuzzMix(r ^ 0xabcd)
	m.h.local(s, at2, func() { m.fire(s, tag2) })
	if r%3 == 0 {
		at3 := m.h.now(s) + 1 + sim.Time((r>>24)%4)
		tag3 := fuzzMix(r ^ 0x1234)
		m.h.local(s, at3, func() { m.fire(s, tag3) })
	}
}

func (m *model) seedEvents() {
	for s := 0; s < m.n; s++ {
		s := s
		tag := fuzzMix(m.rng[s] ^ 0xfeed)
		m.h.local(s, sim.Time(m.rng[s]%8)/2, func() { m.fire(s, tag) })
	}
}

// parHost adapts the real executor to the host interface.
type parHost struct{ x *par.Executor }

func (p parHost) local(s int, at sim.Time, fn func()) { p.x.Shard(s).K.Schedule(at, fn) }
func (p parHost) send(src, dst int, at sim.Time, fn func()) {
	p.x.Shard(src).Send(dst, at, fn)
}
func (p parHost) now(s int) sim.Time { return p.x.Shard(s).K.Now() }

// refExec is the naive reference: per-shard event lists kept sorted by
// (time, arrival sequence), a global in-flight message list, and the
// conservative window loop written in the most obvious way possible.
// It shares no code with package par or the sim kernel.
type refExec struct {
	la      sim.Time
	shards  []refShard
	pending []refMsg
}

type refShard struct {
	clock   sim.Time
	seq     uint64
	sendSeq uint64
	ev      []refEvent
}

type refEvent struct {
	at  sim.Time
	seq uint64
	fn  func()
}

type refMsg struct {
	at       sim.Time
	src, dst int
	seq      uint64
	fn       func()
}

func newRefExec(n int, la sim.Time) *refExec {
	return &refExec{la: la, shards: make([]refShard, n)}
}

func (r *refExec) local(s int, at sim.Time, fn func()) {
	sh := &r.shards[s]
	sh.ev = append(sh.ev, refEvent{at: at, seq: sh.seq, fn: fn})
	sh.seq++
}

func (r *refExec) send(src, dst int, at sim.Time, fn func()) {
	if src == dst {
		r.local(src, at, fn)
		return
	}
	sh := &r.shards[src]
	r.pending = append(r.pending, refMsg{at: at, src: src, dst: dst, seq: sh.sendSeq, fn: fn})
	sh.sendSeq++
}

func (r *refExec) now(s int) sim.Time { return r.shards[s].clock }

// nextTime is the earliest pending work anywhere.
func (r *refExec) nextTime() (sim.Time, bool) {
	var t sim.Time
	ok := false
	for i := range r.shards {
		for _, e := range r.shards[i].ev {
			if !ok || e.at < t {
				t, ok = e.at, true
			}
		}
	}
	for _, m := range r.pending {
		if !ok || m.at < t {
			t, ok = m.at, true
		}
	}
	return t, ok
}

func (r *refExec) runTo(until sim.Time) {
	for {
		next, ok := r.nextTime()
		if !ok || next > until {
			break
		}
		wEnd := next + r.la
		strict := true
		if wEnd > until {
			wEnd, strict = until, false
		}
		// Barrier: deliver due messages in (time, src, seq) order.
		var due, keep []refMsg
		for _, m := range r.pending {
			if m.at < wEnd || (!strict && m.at == wEnd) {
				due = append(due, m)
			} else {
				keep = append(keep, m)
			}
		}
		r.pending = keep
		sort.SliceStable(due, func(i, j int) bool {
			a, b := due[i], due[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		for _, m := range due {
			r.local(m.dst, m.at, m.fn)
		}
		// Window: each shard drains its own list up to the bound, in
		// (time, seq) order, shard by shard.
		for s := range r.shards {
			r.runShard(s, wEnd, strict)
		}
	}
	for s := range r.shards {
		if r.shards[s].clock < until {
			r.shards[s].clock = until
		}
	}
}

func (r *refExec) runShard(s int, limit sim.Time, strict bool) {
	sh := &r.shards[s]
	for {
		best := -1
		for i, e := range sh.ev {
			if e.at > limit || (strict && e.at == limit) {
				continue
			}
			if best < 0 || e.at < sh.ev[best].at ||
				(e.at == sh.ev[best].at && e.seq < sh.ev[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		e := sh.ev[best]
		sh.ev = append(sh.ev[:best], sh.ev[best+1:]...)
		sh.clock = e.at
		e.fn()
	}
}

const fuzzHorizon sim.Time = 400

// runWindowMerge executes one fuzz scenario on both implementations and
// reports any divergence.
func runWindowMerge(t *testing.T, data []byte) {
	t.Helper()
	if len(data) < 4 {
		return
	}
	n := 2 + int(data[0]%7)
	la := sim.Time(1+data[1]%8) / 2
	workers := 1 + int(data[2]%9)
	seed := uint64(data[3]) | uint64(len(data))<<8
	for i, b := range data {
		seed = fuzzMix(seed ^ uint64(b)<<(8*uint(i%8)))
	}
	const budget = 64

	ref := newRefExec(n, la)
	refM := newModel(ref, n, la, seed, budget, true)
	refM.global = []traceEntry{}
	refM.seedEvents()
	ref.runTo(fuzzHorizon)

	// Real executor, serial mode: the global merged order is observable
	// and must equal the reference's.
	xs := par.New(n, la, 1)
	serialM := newModel(parHost{xs}, n, la, seed, budget, true)
	serialM.global = []traceEntry{}
	serialM.seedEvents()
	xs.Run(fuzzHorizon)

	// Real executor, fuzzed worker count: per-shard streams only (the
	// global interleaving is intentionally unobservable when windows
	// run concurrently).
	xp := par.New(n, la, workers)
	parM := newModel(parHost{xp}, n, la, seed, budget, false)
	parM.seedEvents()
	xp.Run(fuzzHorizon)

	if got, want := fmt.Sprint(serialM.global), fmt.Sprint(refM.global); got != want {
		t.Fatalf("n=%d la=%v: merged event order diverged from the reference\n got %s\nwant %s", n, la, got, want)
	}
	for s := 0; s < n; s++ {
		if got, want := fmt.Sprint(serialM.trace[s]), fmt.Sprint(refM.trace[s]); got != want {
			t.Fatalf("n=%d la=%v shard %d: serial executor diverged from reference\n got %s\nwant %s", n, la, s, got, want)
		}
		if got, want := fmt.Sprint(parM.trace[s]), fmt.Sprint(refM.trace[s]); got != want {
			t.Fatalf("n=%d la=%v workers=%d shard %d: parallel executor diverged\n got %s\nwant %s", n, la, workers, s, got, want)
		}
	}
}

func FuzzWindowMerge(f *testing.F) {
	f.Add([]byte{2, 3, 1, 9})
	f.Add([]byte{7, 0, 3, 200, 14, 99, 3, 18, 11})
	f.Add([]byte{3, 7, 7, 42, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{8, 1, 8, 250, 0, 0, 0, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		runWindowMerge(t, data)
	})
}

// TestWindowMergeCorpus replays the seed corpus deterministically even
// when the suite runs without fuzzing.
func TestWindowMergeCorpus(t *testing.T) {
	corpus := [][]byte{
		{2, 3, 1, 9},
		{7, 0, 3, 200, 14, 99, 3, 18, 11},
		{3, 7, 7, 42, 1, 2, 3, 4, 5, 6, 7, 8},
		{8, 1, 8, 250, 0, 0, 0, 0, 128, 64, 32},
		{5, 2, 4, 77, 200, 100, 50, 25},
	}
	for i, data := range corpus {
		i := i
		data := data
		t.Run(fmt.Sprint(i), func(t *testing.T) { runWindowMerge(t, data) })
	}
}
