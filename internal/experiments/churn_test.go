package experiments

import (
	"strings"
	"testing"

	"rmscale/internal/grid"
)

func TestChurnFaultsValidates(t *testing.T) {
	fm := ChurnFaults()
	if err := fm.Validate(); err != nil {
		t.Fatalf("churn preset invalid: %v", err)
	}
	if !fm.Enabled() {
		t.Fatal("churn preset reports disabled")
	}
}

func TestRunChurnRejectsZeroFaultModel(t *testing.T) {
	if _, err := RunChurnSpec(1, grid.FaultModel{}, RunSpec{Fidelity: Smoke, Seed: 1}); err == nil {
		t.Fatal("zero fault model accepted: the degraded run would equal the baseline")
	}
}

// TestRunChurnSmoke runs the degraded-mode experiment for case 4 at
// smoke fidelity: both the fault-free and the degraded measurement
// must cover all seven models, the fault load must actually bite
// (nonzero crash/retry accounting somewhere in the degraded points),
// and the baseline must stay spotless.
func TestRunChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run is slow (two full case runs)")
	}
	r, err := RunChurnSpec(4, ChurnFaults(), RunSpec{Fidelity: Smoke, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r.Baseline, 7)
	checkResult(t, r.Degraded, 7)
	if r.Baseline.Variant != "" || r.Degraded.Variant != "churn" {
		t.Fatalf("variants mislabeled: %q / %q", r.Baseline.Variant, r.Degraded.Variant)
	}
	var crashes, retries float64
	for name, m := range r.Degraded.Measurements {
		for _, p := range m.Points {
			crashes += p.Obs.Crashes
			retries += p.Obs.Retries
		}
		t.Logf("%-8s degraded g(k)=%v", name, m.NormalizedG())
	}
	if crashes == 0 {
		t.Error("fault load armed but no degraded point recorded a crash")
	}
	if retries == 0 {
		t.Error("fault load armed but no degraded point recorded a retry")
	}
	for name, m := range r.Baseline.Measurements {
		for _, p := range m.Points {
			if p.Obs.Crashes != 0 || p.Obs.MsgsLost != 0 || p.Obs.JobsLost != 0 {
				t.Errorf("%s: fault accounting leaked into the fault-free baseline: %+v", name, p.Obs)
			}
		}
	}

	fig, err := r.PsiFigure()
	if err != nil {
		t.Fatal(err)
	}
	// 7 models x (fault-free + degraded) series.
	if len(fig.Series) != 14 {
		t.Fatalf("psi figure has %d series, want 14", len(fig.Series))
	}
	tbl, err := r.Table()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Baseline.Order {
		if !strings.Contains(tbl, name) {
			t.Errorf("churn table missing model %s:\n%s", name, tbl)
		}
	}
}
