package service

import (
	"errors"
	"fmt"
)

// ErrSaturated is returned by Submit when the job queue is at
// capacity. The HTTP layer maps it to 429 Too Many Requests with a
// Retry-After header: under overload the service sheds new work
// explicitly instead of queueing without bound.
var ErrSaturated = errors.New("service: job queue saturated")

// ErrDraining is returned by Submit once a graceful shutdown has
// begun; the HTTP layer maps it to 503 Service Unavailable.
var ErrDraining = errors.New("service: daemon is draining")

// ErrShedding is returned by Submit while the circuit breaker is open:
// consecutive executor failures crossed the threshold and the daemon
// sheds new work until the cooldown passes. The HTTP layer maps it to
// 503 Service Unavailable with a Retry-After covering the cooldown.
var ErrShedding = errors.New("service: circuit breaker open, shedding load")

// fairQueue is a bounded multi-client FIFO with round-robin dispatch:
// each client gets a private FIFO, and pop serves clients in rotation,
// so one client flooding the queue delays its own backlog, not
// everyone else's. It is not self-locking — the daemon's mutex guards
// every call — and it is deterministic: the dispatch order is a pure
// function of the push/pop call sequence.
type fairQueue struct {
	cap     int
	size    int
	pending map[string][]*Experiment // client -> FIFO
	ring    []string                 // clients with pending work, rotation order
	next    int                      // ring index served next
}

func newFairQueue(capacity int) *fairQueue {
	return &fairQueue{cap: capacity, pending: make(map[string][]*Experiment)}
}

// push enqueues e for the client. force bypasses the capacity check —
// used for journal-resumed work, which was admitted by a previous
// incarnation of the daemon and must not bounce off its own backlog.
func (q *fairQueue) push(client string, e *Experiment, force bool) error {
	if !force && q.size >= q.cap {
		return fmt.Errorf("%w: %d queued (capacity %d)", ErrSaturated, q.size, q.cap)
	}
	if len(q.pending[client]) == 0 {
		// Joining (or re-joining) clients enter the rotation just
		// before the currently served position, i.e. at the back of the
		// round-robin order.
		if q.next == 0 {
			q.ring = append(q.ring, client)
		} else {
			q.ring = append(q.ring[:q.next:q.next], append([]string{client}, q.ring[q.next:]...)...)
			q.next++
		}
	}
	q.pending[client] = append(q.pending[client], e)
	q.size++
	return nil
}

// pop dequeues the next experiment in round-robin client order, or
// reports false when the queue is empty.
func (q *fairQueue) pop() (*Experiment, bool) {
	if q.size == 0 {
		return nil, false
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	client := q.ring[q.next]
	fifo := q.pending[client]
	e := fifo[0]
	if len(fifo) == 1 {
		delete(q.pending, client)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// q.next now points at the following client already.
	} else {
		q.pending[client] = fifo[1:]
		q.next++
	}
	q.size--
	return e, true
}

// depth reports how many experiments are queued.
func (q *fairQueue) depth() int { return q.size }
