// Package runner is the experiment-execution subsystem: it owns how
// the (case, model, k) tuning jobs of the paper's evaluation actually
// run. It provides four cooperating pieces:
//
//   - a work-stealing worker pool (Pool) sharding jobs across
//     GOMAXPROCS workers — overridable with the CLI's -j — with
//     context cancellation;
//   - a content-addressed result cache (Cache) keyed by a canonical
//     hash of the inputs (grid config, RMS model, enabler vector,
//     seed, fidelity), with a memory tier and an optional disk tier,
//     so the annealing tuner's repeated and overlapping evaluations —
//     and whole re-runs — hit the cache instead of re-simulating;
//   - a checkpoint journal (Journal): completed work units are
//     committed atomically to an append-only log, and an interrupted
//     run restarted with the same parameters resumes from the log and
//     produces byte-identical final tables;
//   - a progress reporter (Reporter): jobs done/total, cache hit rate,
//     ETA and per-worker current job, printed under -v and written
//     machine-readably to runstate.json.
//
// The design follows the lineage the paper sits in: Nimrod/G treats a
// large parameter sweep as a persistent, schedulable experiment with
// per-job bookkeeping, and GridSim decouples a reusable execution
// layer from the model being simulated. Everything here is
// deterministic by construction: caching and parallelism only ever
// reorder or skip work whose outputs are pure functions of their
// hashed inputs, so same seed in, identical tables out.
package runner

import (
	"context"
	"fmt"
	"io"
)

// Options configures a Run.
type Options struct {
	// Workers is the worker-pool size; <= 0 picks GOMAXPROCS.
	Workers int
	// Dir is the run directory holding the checkpoint journal, the
	// disk cache tier, and runstate.json. Empty disables persistence:
	// the cache stays in memory and nothing is journaled.
	Dir string
	// Fingerprint identifies the run parameters (fidelity, seed, ...).
	// A journal written under a different fingerprint refuses to
	// resume.
	Fingerprint string
	// Log, when non-nil, receives human-readable progress lines.
	Log io.Writer
	// Context cancels the run early; nil means Background.
	Context context.Context
	// KeepGoing stops a task error from cancelling the run: the
	// remaining tasks complete (and journal, when Dir is set) and Wait
	// returns every error joined. Use for long sweeps where one bad
	// point must not void ten hours of completed work.
	KeepGoing bool
	// TaskRetries re-runs a failed or panicking task up to this many
	// extra times before its error counts.
	TaskRetries int
}

// Run bundles one experiment execution: pool, cache, journal and
// reporter wired together.
type Run struct {
	Pool    *Pool
	Cache   *Cache
	Journal *Journal // nil when Options.Dir is empty
	Report  *Reporter

	// Resumed reports whether a prior journal was found and loaded.
	Resumed bool
}

// Start assembles a Run. When opts.Dir names a directory containing a
// compatible journal, the run resumes from it.
func Start(opts Options) (*Run, error) {
	cache, err := NewCache(opts.Dir)
	if err != nil {
		return nil, err
	}
	r := &Run{Cache: cache}
	if opts.Dir != "" {
		j, resumed, err := OpenJournal(opts.Dir, opts.Fingerprint)
		if err != nil {
			return nil, err
		}
		r.Journal = j
		r.Resumed = resumed
	}
	r.Report = NewReporter(cache, opts.Dir, opts.Log)
	r.Pool = NewPool(opts.Context, opts.Workers, r.Report)
	r.Pool.SetKeepGoing(opts.KeepGoing)
	r.Pool.SetTaskRetries(opts.TaskRetries)
	return r, nil
}

// Wait blocks until every submitted task finished, finalizes the
// progress state, and closes the journal. It returns the first task
// error.
func (r *Run) Wait() error {
	err := r.Pool.Wait()
	r.Report.Finish()
	if r.Journal != nil {
		if cerr := r.Journal.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("runner: closing journal: %w", cerr)
		}
	}
	return err
}
