GO ?= go

.PHONY: check build vet lint test race bench chaos

# The gate CI runs: vet + determinism lint + full test suite + race +
# the fixed-seed chaos sweep.
check: vet lint test race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The custom determinism/model-coverage analyzers (see DESIGN.md,
# "Determinism invariants"). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/rmslint ./...

test: build
	$(GO) test ./...

# Race-check the whole module; -short keeps the smoke-fidelity
# experiment runs out of the race build, which would otherwise
# dominate the wall clock.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Fixed-seed chaos sweep: 32 random fault schedules across all RMS
# models under the runtime invariant auditor. Any violation is
# replayed, shrunk to a minimal reproducer and fails the target.
chaos: build
	$(GO) run ./cmd/rmscale -chaos 32 -seed 1
