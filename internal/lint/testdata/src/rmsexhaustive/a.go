// Package rmsexhaustive seeds model-coverage violations for the
// analyzer's analysistest case. Never built by the module.
package rmsexhaustive

import "modelenum"

func covered(id modelenum.ID) string {
	switch id {
	case modelenum.Central:
		return "central"
	case modelenum.Lowest, modelenum.Reserve, modelenum.Auction:
		return "pool"
	case modelenum.SenderInit, modelenum.ReceiverInit, modelenum.Symmetric:
		return "superscheduler"
	}
	return ""
}

func missingNoDefault(id modelenum.ID) string {
	switch id { // want "misses Symmetric; cover every model or add a panicking default"
	case modelenum.Central, modelenum.Lowest, modelenum.Reserve,
		modelenum.Auction, modelenum.SenderInit, modelenum.ReceiverInit:
		return "known"
	}
	return ""
}

func missingPanickingDefault(id modelenum.ID) string {
	switch id { // panicking default: accepted
	case modelenum.Central:
		return "central"
	default:
		panic("unknown model")
	}
}

func missingSoftDefault(id modelenum.ID) string {
	switch id { // want "misses Lowest, Reserve, Auction, SenderInit, ReceiverInit, Symmetric and its default does not panic"
	case modelenum.Central:
		return "central"
	default:
		return "other" // silently no-ops for new models
	}
}

func otherSwitchIgnored(n int) string {
	switch n { // not the model enum: ignored
	case 1:
		return "one"
	}
	return ""
}

func initedTagSwitch(ids []modelenum.ID) string {
	switch id := ids[0]; id { // want "misses Central"
	case modelenum.Lowest, modelenum.Reserve, modelenum.Auction,
		modelenum.SenderInit, modelenum.ReceiverInit, modelenum.Symmetric:
		return "non-central"
	}
	return ""
}
