package experiments

import (
	"fmt"

	"rmscale/internal/grid"
	"rmscale/internal/scale"
	"rmscale/internal/stats"
)

// This file is the degraded-mode ("scalability under churn")
// experiment: one of the paper's cases re-run under a fixed fault load
// — scheduler and estimator crash/repair cycles, protocol message loss
// and access-link outages — with the isoefficiency enablers re-tuned
// per model at every scale factor, exactly as the fault-free
// measurement does. Comparing the two tuned curves answers a question
// the paper leaves open: whether a model's scalability ranking
// survives when the RMS itself is allowed to fail.

// churnTargetResponse is the response time at which a response has
// lost half its value in the J&W productivity comparison: twice the
// mean job runtime, i.e. a job that waited as long as it ran.
const churnTargetResponse = 2 * meanRuntime

// ChurnFaults is the fixed fault load of the degraded-mode experiment.
// The magnitudes are chosen against the experiment horizons (3000-5000
// time units): every scheduler and estimator crashes a handful of
// times per run, a few percent of protocol messages are lost, and
// access links suffer occasional outage windows, with the
// timeout/retry path armed.
func ChurnFaults() grid.FaultModel {
	return grid.FaultModel{
		SchedulerMTBF: 1200, SchedulerRepair: 120,
		EstimatorMTBF: 1200, EstimatorRepair: 120,
		MsgLossProb:    0.02,
		LinkOutageMTBF: 2000, LinkOutageDuration: 50,
		RetryTimeout: 25, MaxRetries: 3,
	}
}

// degraded returns def re-run under the fault load fm. The variant tag
// keeps its journal IDs and cache scopes disjoint from the plain case.
func degraded(def caseDef, fm grid.FaultModel) caseDef {
	base := def.config
	def.variant = "churn"
	def.title += " under churn"
	def.config = func(fid Fidelity, seed int64, k int, x []float64) grid.Config {
		cfg := base(fid, seed, k, x)
		cfg.Faults = fm
		return cfg
	}
	return def
}

// ChurnResult pairs a case's fault-free and degraded measurements.
type ChurnResult struct {
	Case     int
	Title    string
	Fidelity Fidelity
	Faults   grid.FaultModel
	// Baseline is the fault-free case result; Degraded the same case
	// re-tuned under the fault load.
	Baseline *Result
	Degraded *Result
}

// RunChurnSpec runs the degraded-mode experiment for one case: the
// fault-free baseline and the degraded re-run share one work-stealing
// pool, so their 2 x 7 model jobs shard across the workers together.
func RunChurnSpec(id int, fm grid.FaultModel, spec RunSpec) (*ChurnResult, error) {
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	if !fm.Enabled() {
		return nil, fmt.Errorf("experiments: churn run needs a non-zero fault model")
	}
	def, err := caseByID(id, spec.Fidelity)
	if err != nil {
		return nil, err
	}
	results, err := runDefs([]caseDef{def, degraded(def, fm)}, spec)
	if err != nil {
		return nil, err
	}
	return &ChurnResult{
		Case:     def.id,
		Title:    fmt.Sprintf("Scalability under churn, case %d", def.id),
		Fidelity: spec.Fidelity,
		Faults:   fm,
		Baseline: results[0],
		Degraded: results[1],
	}, nil
}

// PsiFigure assembles the J&W productivity-scalability curves psi(k)
// of the fault-free and degraded runs side by side; the degraded
// series carry a "*" suffix. Psi folds throughput, response time and
// cost into one number, which makes it the right lens here: churn
// costs show up as lost throughput and retry-inflated response times
// even when the overhead curve G(k) moves little.
func (r *ChurnResult) PsiFigure() (*stats.SeriesSet, error) {
	ss := &stats.SeriesSet{
		Title:  r.Title + " (J&W psi)",
		XLabel: "k", YLabel: "psi(k) = P(k)/P(1)",
	}
	params := scale.JWParams{TargetResponse: churnTargetResponse}
	for _, name := range r.Baseline.Order {
		mb, ok := r.Baseline.Measurements[name]
		if !ok {
			continue
		}
		md, ok := r.Degraded.Measurements[name]
		if !ok {
			continue
		}
		jb, err := scale.JogalekarWoodside(mb, params)
		if err != nil {
			return nil, err
		}
		jd, err := scale.JogalekarWoodside(md, params)
		if err != nil {
			return nil, err
		}
		ss.Add(jb.JWSeries())
		deg := jd.JWSeries()
		deg.Name = name + "*"
		ss.Add(deg)
	}
	return ss, nil
}

// Table renders the churn comparison at the top scale factor: the
// normalized overhead growth g(k) and J&W psi(k) of the fault-free
// and degraded runs side by side, plus the degraded run's fault
// counters. A model whose psi* stays close to its psi is scalable
// under churn, not just in the fault-free lab.
func (r *ChurnResult) Table() (string, error) {
	out := r.Title + fmt.Sprintf(" (top scale factor, fidelity %s)\n", r.Fidelity)
	out += fmt.Sprintf("%-8s %8s %8s %8s %8s %8s %10s %8s\n",
		"model", "g(k)", "g*(k)", "psi(k)", "psi*(k)", "lost*", "failover*", "retry*")
	params := scale.JWParams{TargetResponse: churnTargetResponse}
	for _, name := range r.Baseline.Order {
		mb, ok := r.Baseline.Measurements[name]
		if !ok {
			continue
		}
		md, ok := r.Degraded.Measurements[name]
		if !ok {
			continue
		}
		jb, err := scale.JogalekarWoodside(mb, params)
		if err != nil {
			return "", err
		}
		jd, err := scale.JogalekarWoodside(md, params)
		if err != nil {
			return "", err
		}
		last := len(md.Points) - 1
		top := md.Points[last].Obs
		out += fmt.Sprintf("%-8s %8.2f %8.2f %8.2f %8.2f %8.1f %10.1f %8.1f\n",
			name,
			lastOf(mb.NormalizedG()), lastOf(md.NormalizedG()),
			lastOf(jb.Psi), lastOf(jd.Psi),
			top.JobsLost, top.Failovers, top.Retries)
	}
	return out, nil
}

// lastOf returns the final element, or NaN-free zero for empty input.
func lastOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
