package sim

// This file is the kernel's future event list: a 4-ary implicit
// min-heap of *Event ordered by (time, sequence), with lazy deletion of
// cancelled events and a free list that recycles Event structs.
//
// Why not container/heap: the interface-based heap routes every push
// and pop through heap.Interface method calls and `any` conversions on
// the hottest path of the whole reproduction (every figure re-runs the
// grid simulation hundreds of times inside the per-k tuner). The
// implicit 4-ary layout halves the tree depth of a binary heap, keeps
// the child scan inside one cache line, and compiles to direct slice
// indexing with no boxing.
//
// Fire-order invariance: (time, sequence) is a total order over events,
// so the pop sequence of any correct min-heap over the same event set
// is identical regardless of internal array layout. Replacing the
// binary heap, deleting lazily, and compacting are therefore all
// behaviour-invisible; the golden outputs and chaos fingerprints pin
// this.

// compactMin is the smallest number of lazily-deleted events that can
// trigger a compaction sweep; below it the dead weight is too small to
// be worth rebuilding the heap.
const compactMin = 64

// before orders events by (time, sequence) — the kernel's total order.
func (e *Event) before(o *Event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// fel is the future event list.
type fel struct {
	ev []*Event
	// dead counts cancelled events still buried in the heap. Cancel
	// marks and counts; pop and compact collect.
	dead int
}

// live returns the number of pending non-cancelled events.
func (f *fel) live() int { return len(f.ev) - f.dead }

// push inserts e, sifting it up to its (time, sequence) position.
func (f *fel) push(e *Event) {
	e.inFEL = true
	i := len(f.ev)
	f.ev = append(f.ev, e)
	for i > 0 {
		p := (i - 1) >> 2
		pe := f.ev[p]
		if !e.before(pe) {
			break
		}
		f.ev[i] = pe
		i = p
	}
	f.ev[i] = e
}

// pop removes and returns the earliest event. The caller must know the
// list is non-empty.
func (f *fel) pop() *Event {
	root := f.ev[0]
	root.inFEL = false
	n := len(f.ev) - 1
	last := f.ev[n]
	f.ev[n] = nil
	f.ev = f.ev[:n]
	if n > 0 {
		f.siftDown(last, 0)
	}
	return root
}

// siftDown places e at index i, walking it down past smaller children.
func (f *fel) siftDown(e *Event, i int) {
	n := len(f.ev)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m, me := c, f.ev[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if f.ev[j].before(me) {
				m, me = j, f.ev[j]
			}
		}
		if !me.before(e) {
			break
		}
		f.ev[i] = me
		i = m
	}
	f.ev[i] = e
}

// compact removes every cancelled event in one sweep and re-heapifies
// in place (Floyd's O(n) build). The live events re-form a heap with a
// different internal layout, but the pop order is fixed by the
// (time, sequence) total order, so fire order is unchanged.
func (k *Kernel) compact() {
	f := &k.fel
	live := f.ev[:0]
	for _, e := range f.ev {
		if e.canceled {
			e.inFEL = false
			k.recycle(e)
			continue
		}
		live = append(live, e)
	}
	for i := len(live); i < len(f.ev); i++ {
		f.ev[i] = nil
	}
	f.ev = live
	f.dead = 0
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		f.siftDown(f.ev[i], i)
	}
}

// maybeCompact sweeps once the cancelled events outnumber the live
// ones, bounding both the heap's dead weight and the amortized cost of
// cancellation at O(1) per event.
func (k *Kernel) maybeCompact() {
	if d := k.fel.dead; d >= compactMin && d > len(k.fel.ev)/2 {
		k.compact()
	}
}

// recycle returns a retired Event struct to the free list. The closure
// is dropped immediately so the free list never pins model state.
func (k *Kernel) recycle(e *Event) {
	e.fn = nil
	k.free = append(k.free, e)
}

// newEvent takes a struct off the free list (or allocates the list's
// very first events) and initializes it. In steady state — the regime
// every grid run reaches within one ticker period — Schedule performs
// zero heap allocations.
func (k *Kernel) newEvent(at Time, fn func()) *Event {
	var e *Event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		e.at = at
		e.seq = k.seq
		e.fn = fn
		e.canceled = false
	} else {
		//lint:allow hotalloc free-list cold start: each Event struct is allocated once here and recycled forever after
		e = &Event{at: at, seq: k.seq, fn: fn}
	}
	k.seq++
	return e
}
