package lint

import (
	"go/token"
	"go/types"
	"strings"

	"rmscale/internal/lint/analysis"
	"rmscale/internal/lint/callgraph"
)

// DeterTaint is the interprocedural companion to nowallclock and
// noglobalrand: those two flag direct wall-clock reads and global-RNG
// draws inside simulation-visible packages, but a helper package
// outside the SimVisible list can read time.Now and hand the result
// back across the boundary without either noticing. DeterTaint closes
// that hole on the call graph — a function is tainted when it calls a
// wall-clock or global-RNG source, or (transitively) any tainted
// module function, and every call from a simulation-visible package
// into a tainted function is reported with the witness chain down to
// the source.
//
// Suppression works at both ends of a chain:
//
//   - at the source: a //lint:allow on the line of the time/rand call
//     (for detertaint, or for nowallclock/noglobalrand — an exception
//     already justified for the direct analyzers cuts the transitive
//     taint too, so one annotation serves all three);
//   - at the entry point: a //lint:allow detertaint on the reported
//     call site in the simulation-visible package.
//
// Soundness limits (documented in DESIGN.md): calls through function
// values are not followed, standard-library bodies are opaque, and
// interface dispatch covers only implementations the module declares.
func DeterTaint() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "detertaint",
		Doc:  "flag sim-visible calls that transitively reach wall-clock or global-RNG sources through helper packages",
	}
	a.Run = func(p *analysis.Pass) error {
		g := passGraph(p)
		t := taintOf(g)
		for _, n := range g.Nodes() {
			if n.Pkg.Pkg != p.Pkg {
				continue
			}
			for _, call := range n.Calls {
				for _, target := range call.Targets {
					w, ok := t.tainted[target]
					if !ok {
						continue
					}
					p.Reportf(call.Pos,
						"call into %s reaches %s (%s); sim-visible code must not depend on wall-clock or global-RNG state, even transitively — cut the chain at the source or annotate this entry point",
						callgraph.FuncLabel(target.Fn), w.source(t), w.chain(t, target))
					break // one report per call site
				}
			}
		}
		return nil
	}
	return a
}

// taintWitness records how a node became tainted: via is the next hop
// toward the source (nil when the node calls the source directly).
type taintWitness struct {
	src string
	via *callgraph.Node
}

func (w *taintWitness) source(t *taintState) string {
	for w.via != nil {
		w = t.tainted[w.via]
	}
	return w.src
}

// chain renders "helper.Stamp -> helper.now -> time.Now" starting at
// the tainted node the entry point called.
func (w *taintWitness) chain(t *taintState, start *callgraph.Node) string {
	parts := []string{callgraph.FuncLabel(start.Fn)}
	for w.via != nil {
		parts = append(parts, callgraph.FuncLabel(w.via.Fn))
		w = t.tainted[w.via]
	}
	parts = append(parts, w.src)
	return strings.Join(parts, " -> ")
}

type taintState struct {
	tainted map[*callgraph.Node]*taintWitness
}

// taintOf computes (once per graph, memoized) the set of module
// functions from which a determinism-breaking source is reachable.
func taintOf(g *callgraph.Graph) *taintState {
	if t, ok := g.Memo["detertaint"].(*taintState); ok {
		return t
	}
	t := &taintState{tainted: map[*callgraph.Node]*taintWitness{}}
	g.Memo["detertaint"] = t

	// Source-side suppression: an annotated time/rand call line cuts
	// the taint before it enters the graph. Directives are parsed per
	// package through the same machinery ApplyDirectives uses, so the
	// multiline-span and standalone/trailing rules match exactly.
	cutNames := []string{"detertaint", "nowallclock", "noglobalrand"}
	known := map[string]bool{}
	for _, name := range cutNames {
		known[name] = true
	}
	sup := suppressions{}
	seen := map[*callgraph.Package]bool{}
	for _, n := range g.Nodes() {
		if seen[n.Pkg] {
			continue
		}
		seen[n.Pkg] = true
		s, _ := parseDirectives(g.Fset(), n.Pkg.Files, known)
		for k, v := range s {
			sup[k] = v
		}
	}
	cut := func(pos token.Pos) bool {
		for _, name := range cutNames {
			if sup.suppressed(g.Fset(), analysis.Diagnostic{Pos: pos, Analyzer: name}) {
				return true
			}
		}
		return false
	}

	// Seed: nodes that call a source directly on an unsuppressed line.
	for _, n := range g.Nodes() {
		for _, call := range n.Calls {
			src, ok := taintSource(call.Callee)
			if !ok || cut(call.Pos) {
				continue
			}
			if _, done := t.tainted[n]; !done {
				t.tainted[n] = &taintWitness{src: src}
			}
		}
	}

	// Propagate along reverse call edges to a fixpoint. The witness is
	// set exactly once per node, so chains are acyclic by construction.
	callers := map[*callgraph.Node][]*callgraph.Node{}
	for _, n := range g.Nodes() {
		for _, call := range n.Calls {
			for _, target := range call.Targets {
				callers[target] = append(callers[target], n)
			}
		}
	}
	work := make([]*callgraph.Node, 0, len(t.tainted))
	for _, n := range g.Nodes() {
		if _, ok := t.tainted[n]; ok {
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[n] {
			if _, done := t.tainted[caller]; done {
				continue
			}
			t.tainted[caller] = &taintWitness{src: t.tainted[n].src, via: n}
			work = append(work, caller)
		}
	}
	return t
}

// taintSource classifies a callee as a determinism-breaking source:
// the wall-clock reads nowallclock bans, or any package-level
// math/rand function (global draws and ad-hoc constructors alike —
// methods on an already-constructed *rand.Rand are named-stream draws
// and stay clean).
func taintSource(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockNames[fn.Name()] {
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		return "rand." + fn.Name(), true
	}
	return "", false
}
