// Package routing computes shortest-path routes over a topology graph,
// standing in for the OSPF-like routing the paper's simulator uses. Link
// cost is propagation latency, so the shortest path is the
// minimum-latency path — exactly what OSPF computes with
// latency-proportional interface costs.
package routing

import (
	"container/heap"
	"fmt"
	"math"

	"rmscale/internal/topology"
)

// Table holds the routing state for one source node: latency, hop count
// and next hop to every destination, plus the bottleneck (minimum)
// bandwidth along the chosen path, which the message fabric uses for
// transmission delay.
type Table struct {
	Source    int
	Latency   []float64
	Hops      []int
	NextHop   []int
	Bandwidth []float64 // bottleneck bandwidth along the path
}

// SPF runs Dijkstra's algorithm from src over g. Unreachable nodes get
// +Inf latency, hop count -1 and next hop -1.
func SPF(g *topology.Graph, src int) (*Table, error) {
	if src < 0 || src >= g.N {
		return nil, fmt.Errorf("routing: source %d out of range [0,%d)", src, g.N)
	}
	t := &Table{
		Source:    src,
		Latency:   make([]float64, g.N),
		Hops:      make([]int, g.N),
		NextHop:   make([]int, g.N),
		Bandwidth: make([]float64, g.N),
	}
	for i := range t.Latency {
		t.Latency[i] = math.Inf(1)
		t.Hops[i] = -1
		t.NextHop[i] = -1
	}
	t.Latency[src] = 0
	t.Hops[src] = 0
	t.NextHop[src] = src
	t.Bandwidth[src] = math.Inf(1)

	pq := &nodeQueue{{node: src, dist: 0}}
	done := make([]bool, g.N)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.Adj[u] {
			nd := t.Latency[u] + e.Latency
			if nd < t.Latency[e.To] {
				t.Latency[e.To] = nd
				t.Hops[e.To] = t.Hops[u] + 1
				bw := e.Bandwidth
				if t.Bandwidth[u] < bw {
					bw = t.Bandwidth[u]
				}
				t.Bandwidth[e.To] = bw
				if u == src {
					t.NextHop[e.To] = e.To
				} else {
					t.NextHop[e.To] = t.NextHop[u]
				}
				heap.Push(pq, nodeItem{node: e.To, dist: nd})
			}
		}
	}
	return t, nil
}

// Path reconstructs the node sequence from the table's source to dst by
// repeated next-hop lookups. Returns nil when dst is unreachable.
func (t *Table) Path(g *topology.Graph, dst int) []int {
	if dst < 0 || dst >= g.N || t.NextHop[dst] == -1 {
		return nil
	}
	// Walk from dst back using a forward SPF from each hop would be
	// O(n^2); instead walk forward from source following next hops.
	path := []int{t.Source}
	cur := t.Source
	for cur != dst {
		// Next hop toward dst from cur: recompute via the invariant
		// that the next hop from the source leads onto the shortest
		// path; for intermediate nodes we step greedily along edges
		// that keep us on a shortest path.
		advanced := false
		for _, e := range g.Adj[cur] {
			if math.Abs((t.Latency[cur]+e.Latency)-t.Latency[e.To]) < 1e-9 &&
				t.Hops[e.To] == t.Hops[cur]+1 && onPathTo(t, g, e.To, dst) {
				cur = e.To
				path = append(path, cur)
				advanced = true
				break
			}
		}
		if !advanced {
			return nil
		}
		if len(path) > g.N {
			return nil
		}
	}
	return path
}

// onPathTo reports whether some shortest path from the table's source to
// dst passes through via. It checks the subpath-optimality condition
// d(src,via) + d(via,dst) == d(src,dst) using a reverse SPF cache-free
// check: we only need d(via,dst), computed by a bounded BFS-like probe.
// For simplicity and because Path is a debugging/diagnostic helper (the
// simulator itself uses only Latency/Hops/Bandwidth), we run a local SPF.
func onPathTo(t *Table, g *topology.Graph, via, dst int) bool {
	rt, err := SPF(g, via)
	if err != nil {
		return false
	}
	return math.Abs(t.Latency[via]+rt.Latency[dst]-t.Latency[dst]) < 1e-9
}

// Matrix holds all-pairs routing results for the node subset the grid
// actually communicates between. Entry [i][j] describes the route from
// node ids[i] to node ids[j].
type Matrix struct {
	// Index maps graph node id -> row/column in the matrix.
	Index map[int]int
	// IDs lists graph node ids in matrix order.
	IDs       []int
	Latency   [][]float64
	Hops      [][]int
	Bandwidth [][]float64
}

// AllPairs computes routes between every pair of the given endpoint
// nodes (deduplicated). It runs one SPF per distinct endpoint, which for
// the grid's schedulers+resources+estimators is far cheaper than a full
// all-nodes product on large router graphs.
func AllPairs(g *topology.Graph, endpoints []int) (*Matrix, error) {
	m := &Matrix{Index: make(map[int]int)}
	for _, u := range endpoints {
		if u < 0 || u >= g.N {
			return nil, fmt.Errorf("routing: endpoint %d out of range", u)
		}
		if _, dup := m.Index[u]; !dup {
			m.Index[u] = len(m.IDs)
			m.IDs = append(m.IDs, u)
		}
	}
	n := len(m.IDs)
	m.Latency = make([][]float64, n)
	m.Hops = make([][]int, n)
	m.Bandwidth = make([][]float64, n)
	for i, u := range m.IDs {
		t, err := SPF(g, u)
		if err != nil {
			return nil, err
		}
		m.Latency[i] = make([]float64, n)
		m.Hops[i] = make([]int, n)
		m.Bandwidth[i] = make([]float64, n)
		for j, v := range m.IDs {
			m.Latency[i][j] = t.Latency[v]
			m.Hops[i][j] = t.Hops[v]
			m.Bandwidth[i][j] = t.Bandwidth[v]
		}
	}
	return m, nil
}

// Between returns latency, hops and bottleneck bandwidth from node u to
// node v. Both must have been endpoints passed to AllPairs.
func (m *Matrix) Between(u, v int) (latency float64, hops int, bandwidth float64, err error) {
	i, ok := m.Index[u]
	if !ok {
		//lint:allow hotalloc misrouted-endpoint error path; a correctly built topology never takes it
		return 0, 0, 0, fmt.Errorf("routing: node %d not an endpoint", u)
	}
	j, ok := m.Index[v]
	if !ok {
		//lint:allow hotalloc misrouted-endpoint error path; a correctly built topology never takes it
		return 0, 0, 0, fmt.Errorf("routing: node %d not an endpoint", v)
	}
	return m.Latency[i][j], m.Hops[i][j], m.Bandwidth[i][j], nil
}

// nodeItem / nodeQueue implement the Dijkstra priority queue.
type nodeItem struct {
	node int
	dist float64
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() (popped any) { // named result clarifies the contract
	old := *q
	n := len(old)
	popped = old[n-1]
	*q = old[:n-1]
	return popped
}
