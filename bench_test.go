// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each BenchmarkFigureN/BenchmarkTableN runs the
// code path that produces that artifact; the figure benches run the
// full measurement pipeline (simulation + isoefficiency tuning for all
// seven RMS models) at smoke fidelity so `go test -bench=.` completes
// in minutes. For publication-quality curves run:
//
//	go run ./cmd/rmscale -fidelity full all
//
// The reported custom metrics summarize the reproduced shape: the final
// (k=max) overhead of the centralized model versus the best distributed
// model, which is the headline comparison of each figure.
package rmscale_test

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"rmscale"
)

// benchSeed keeps every figure bench deterministic.
const benchSeed = 1

// reportShape attaches shape metrics to a figure bench: the final
// overhead of CENTRAL and of the best/worst distributed models.
func reportShape(b *testing.B, r *rmscale.CaseResult) {
	b.Helper()
	var central float64
	best, worst := 0.0, 0.0
	for name, m := range r.Measurements {
		g := m.GCurve()
		final := g[len(g)-1]
		if name == "CENTRAL" {
			central = final
			continue
		}
		if best == 0 || final < best {
			best = final
		}
		if final > worst {
			worst = final
		}
	}
	b.ReportMetric(central, "G_central_final")
	b.ReportMetric(best, "G_bestDistributed_final")
	b.ReportMetric(worst, "G_worstDistributed_final")
}

// BenchmarkFigure2 regenerates Figure 2: G(k) for all seven models as
// the resource pool scales by network size (Case 1, Table 2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := rmscale.RunCase1(rmscale.Smoke, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Figure().WriteTable(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportShape(b, r)
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: G(k) as the resource pool
// scales by service rate (Case 2, Table 3).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := rmscale.RunCase2(rmscale.Smoke, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Figure().WriteTable(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportShape(b, r)
		}
	}
}

// case3Result memoizes the Case 3 run shared by Figures 4, 6 and 7 so
// the three benches measure rendering against one computed result and
// the full pipeline is timed once, in BenchmarkFigure4.
var case3Result *rmscale.CaseResult

func runCase3(b *testing.B) *rmscale.CaseResult {
	b.Helper()
	if case3Result == nil {
		r, err := rmscale.RunCase3(rmscale.Smoke, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		case3Result = r
	}
	return case3Result
}

// BenchmarkFigure4 regenerates Figure 4: G(k) as the RMS scales by the
// number of status estimators (Case 3, Table 4).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		case3Result = nil
		r := runCase3(b)
		if err := r.Figure().WriteTable(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportShape(b, r)
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: G(k) as the RMS scales by L_p
// (Case 4, Table 5).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := rmscale.RunCase4(rmscale.Smoke, benchSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Figure().WriteTable(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportShape(b, r)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: throughput versus estimator
// scale for every model (the Case 3 result viewed by throughput).
func BenchmarkFigure6(b *testing.B) {
	r := runCase3(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.ThroughputFigure().WriteTable(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	ss := r.ThroughputFigure()
	if s := ss.Get("CENTRAL"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.Y[len(s.Y)-1], "central_thpt_final")
	}
}

// BenchmarkFigure7 regenerates Figure 7: average response time versus
// estimator scale (the Case 3 result viewed by response time).
func BenchmarkFigure7(b *testing.B) {
	r := runCase3(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.ResponseFigure().WriteTable(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	ss := r.ResponseFigure()
	if s := ss.Get("CENTRAL"); s != nil && len(s.Y) > 0 {
		b.ReportMetric(s.Y[len(s.Y)-1], "central_resp_final")
	}
}

// BenchmarkTable1 regenerates Table 1 (the common experiment
// constants).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := rmscale.PaperConstantsTable(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTables2to5 regenerates Tables 2-5 (the scaling variables and
// enablers of the four cases).
func BenchmarkTables2to5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := rmscale.ScalingTables(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerColdPath times a full Smoke case through the runner
// with nothing cached: every tuner evaluation simulates. This is the
// baseline the cache-hit bench is read against in the perf trajectory.
func BenchmarkRunnerColdPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rmscale.RunCaseSpec(4, rmscale.RunSpec{
			Fidelity: rmscale.Smoke, Seed: benchSeed, Workers: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerCacheHit times the same case against a warm
// content-addressed disk cache. The checkpoint journal is removed
// between iterations so the run re-tunes end to end and the measured
// speedup is the cache's alone, not journal adoption's.
func BenchmarkRunnerCacheHit(b *testing.B) {
	dir := b.TempDir()
	warm := func() {
		if _, err := rmscale.RunCaseSpec(4, rmscale.RunSpec{
			Fidelity: rmscale.Smoke, Seed: benchSeed, Workers: 4, Dir: dir,
		}); err != nil {
			b.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, "journal.jsonl")); err != nil {
			b.Fatal(err)
		}
	}
	warm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm()
	}
}

// BenchmarkSingleSimulation times one base-grid simulation of the
// default configuration under LOWEST — the unit of work every
// measurement point multiplies.
func BenchmarkSingleSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := rmscale.DefaultConfig()
		eng, err := rmscale.NewEngine(cfg, rmscale.NewLowest())
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

// BenchmarkSingleSimulationCentral times the centralized model on the
// same grid for comparison.
func BenchmarkSingleSimulationCentral(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := rmscale.DefaultConfig()
		eng, err := rmscale.NewEngine(cfg, rmscale.NewCentral())
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

// BenchmarkSubstrateBuild times the topology + routing build that the
// substrate cache amortizes across tuner evaluations.
func BenchmarkSubstrateBuild(b *testing.B) {
	b.ReportAllocs()
	cfg := rmscale.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := rmscale.BuildSubstrate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationWithSubstrateReuse shows the per-evaluation cost
// once the substrate is shared — the regime the annealing tuner runs in.
func BenchmarkSimulationWithSubstrateReuse(b *testing.B) {
	cfg := rmscale.DefaultConfig()
	sub, err := rmscale.BuildSubstrate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := rmscale.NewEngineWith(cfg, rmscale.NewLowest(), sub)
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

// BenchmarkAblationSuppression regenerates the update-suppression
// ablation (DESIGN.md: the "update optimization" shared by all periodic
// schemes).
func BenchmarkAblationSuppression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := rmscale.RunAblations(rmscale.Smoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("no ablations")
		}
	}
}
