package topology

import (
	"testing"
)

func TestTransitStubShape(t *testing.T) {
	p := DefaultTransitStubParams()
	g, err := TransitStub(p, DefaultLinkParams(), stream("ts"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != p.Nodes() {
		t.Fatalf("N = %d, want %d", g.N, p.Nodes())
	}
	if !g.Connected() {
		t.Fatal("transit-stub graph disconnected")
	}
	if g.Edges() < g.N-1 {
		t.Fatalf("too few edges: %d", g.Edges())
	}
}

func TestTransitStubNodesFormula(t *testing.T) {
	p := TransitStubParams{TransitDomains: 2, TransitSize: 3, StubsPerTransitNode: 2, StubSize: 4}
	// 6 transit + 6*2 stubs * 4 = 54.
	if p.Nodes() != 54 {
		t.Fatalf("Nodes() = %d, want 54", p.Nodes())
	}
}

func TestTransitStubSingleDomain(t *testing.T) {
	p := TransitStubParams{TransitDomains: 1, TransitSize: 1, StubsPerTransitNode: 1, StubSize: 3}
	g, err := TransitStub(p, DefaultLinkParams(), stream("ts1"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || !g.Connected() {
		t.Fatalf("tiny transit-stub wrong: N=%d connected=%v", g.N, g.Connected())
	}
}

func TestTransitStubNoStubs(t *testing.T) {
	p := TransitStubParams{TransitDomains: 2, TransitSize: 4}
	g, err := TransitStub(p, DefaultLinkParams(), stream("ts0"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 8 || !g.Connected() {
		t.Fatalf("core-only transit-stub wrong: N=%d", g.N)
	}
}

func TestTransitStubValidation(t *testing.T) {
	bad := []TransitStubParams{
		{TransitDomains: 0, TransitSize: 1, StubSize: 1},
		{TransitDomains: 1, TransitSize: 0, StubSize: 1},
		{TransitDomains: 1, TransitSize: 1, StubsPerTransitNode: -1, StubSize: 1},
		{TransitDomains: 1, TransitSize: 1, StubsPerTransitNode: 1, StubSize: 0},
		{TransitDomains: 1, TransitSize: 1, StubSize: -1},
		{TransitDomains: 1, TransitSize: 1, StubSize: 1, ExtraEdgeProb: 1.5},
	}
	for i, p := range bad {
		if _, err := TransitStub(p, DefaultLinkParams(), stream("x")); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestTransitStubMapsGrid(t *testing.T) {
	p := DefaultTransitStubParams()
	g, err := TransitStub(p, DefaultLinkParams(), stream("tsmap"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapGrid(g, GridSpec{Clusters: 6, ClusterSize: 10}, stream("tsm"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	p := DefaultTransitStubParams()
	a, err := TransitStub(p, DefaultLinkParams(), stream("det"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TransitStub(p, DefaultLinkParams(), stream("det"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges() != b.Edges() {
		t.Fatalf("same seed gave %d vs %d edges", a.Edges(), b.Edges())
	}
}
