// Package experiments reproduces the paper's evaluation: the four
// scaling cases of Tables 2-5 and the six result figures.
//
//	Case 1 (Table 2, Figure 2): scale the RP by network size.
//	Case 2 (Table 3, Figure 3): scale the RP by resource service rate.
//	Case 3 (Table 4, Figures 4, 6, 7): scale the RMS by status
//	        estimator count.
//	Case 4 (Table 5, Figure 5): scale the RMS by L_p, the number of
//	        neighbour schedulers probed.
//
// In every case the workload scales in the same proportion as the
// scaling variable, the efficiency band is the paper's [0.38, 0.42],
// and a simulated annealing search re-tunes the case's scaling enablers
// at each scale factor to minimize the RMS overhead G(k).
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"rmscale/internal/anneal"
	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/scale"
	"rmscale/internal/stats"
)

// Fidelity trades runtime for statistical quality.
type Fidelity int

const (
	// Smoke is for unit tests: tiny grid, three scale factors.
	Smoke Fidelity = iota
	// Quick produces recognizable curves in minutes on one core.
	Quick
	// Full is the paper-shaped configuration (1000-node cases).
	Full
)

// String names the fidelity level.
func (f Fidelity) String() string {
	switch f {
	case Smoke:
		return "smoke"
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("fidelity(%d)", int(f))
	}
}

// ParseFidelity converts a CLI string.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("experiments: unknown fidelity %q (want smoke, quick or full)", s)
}

// tuning returns the annealing budget per fidelity.
func (f Fidelity) tuning() anneal.Options {
	switch f {
	case Smoke:
		return anneal.Options{Iters: 5, Restarts: 1}
	case Quick:
		return anneal.Options{Iters: 16, Restarts: 1}
	default:
		return anneal.Options{Iters: 24, Restarts: 1}
	}
}

// replicas returns how many independent seeds each evaluation averages
// over; replication smooths the tuner's objective surface.
func (f Fidelity) replicas() int {
	switch f {
	case Smoke:
		return 1
	case Quick:
		return 2
	default:
		return 2
	}
}

// ks returns the scale factors per fidelity.
func (f Fidelity) ks() []int {
	if f == Smoke {
		return []int{1, 2, 3}
	}
	return []int{1, 2, 3, 4, 5, 6}
}

// Result is the outcome of one case for every model.
type Result struct {
	Case     int
	Title    string
	Fidelity Fidelity
	// Measurements maps model name to its tuned G(k) measurement.
	Measurements map[string]*scale.Measurement
	// Order lists model names in the paper's order.
	Order []string
}

// Figure assembles the case's raw overhead curves (the paper's
// "Variation in G(k)" figures).
func (r *Result) Figure() *stats.SeriesSet {
	ss := &stats.SeriesSet{Title: r.Title, XLabel: "k", YLabel: "G(k)"}
	for _, name := range r.Order {
		if m, ok := r.Measurements[name]; ok {
			ss.Add(m.Series())
		}
	}
	return ss
}

// NormalizedFigure assembles g(k) = G(k)/G(1) curves, which compare
// growth factors independent of each model's base overhead.
func (r *Result) NormalizedFigure() *stats.SeriesSet {
	ss := &stats.SeriesSet{
		Title:  r.Title + " (normalized)",
		XLabel: "k", YLabel: "g(k) = G(k)/G(1)",
	}
	for _, name := range r.Order {
		if m, ok := r.Measurements[name]; ok {
			ss.Add(m.NormalizedSeries())
		}
	}
	return ss
}

// ThroughputFigure assembles throughput curves (Figure 6 for Case 3).
func (r *Result) ThroughputFigure() *stats.SeriesSet {
	ss := &stats.SeriesSet{
		Title:  fmt.Sprintf("Throughput, case %d", r.Case),
		XLabel: "k", YLabel: "jobs completed per time unit",
	}
	for _, name := range r.Order {
		if m, ok := r.Measurements[name]; ok {
			ss.Add(stats.Series{Name: name, X: m.Ks(), Y: m.Throughputs()})
		}
	}
	return ss
}

// ResponseFigure assembles mean response time curves (Figure 7).
func (r *Result) ResponseFigure() *stats.SeriesSet {
	ss := &stats.SeriesSet{
		Title:  fmt.Sprintf("Average response time, case %d", r.Case),
		XLabel: "k", YLabel: "mean response time",
	}
	for _, name := range r.Order {
		if m, ok := r.Measurements[name]; ok {
			ss.Add(stats.Series{Name: name, X: m.Ks(), Y: m.ResponseTimes()})
		}
	}
	return ss
}

// caseDef describes one scaling case: how to build the grid config at a
// scale factor and which enablers the tuner may adjust (the case's
// Table).
type caseDef struct {
	id       int
	title    string
	enablers []scale.Enabler
	// config builds the grid configuration at scale k with the
	// enablers applied.
	config func(fid Fidelity, seed int64, k int, x []float64) grid.Config
}

// runCase measures every model over the case definition, fanning models
// out over a bounded worker pool.
func runCase(def caseDef, fid Fidelity, seed int64, progress func(string, scale.Point)) (*Result, error) {
	res := &Result{
		Case:         def.id,
		Title:        def.title,
		Fidelity:     fid,
		Measurements: make(map[string]*scale.Measurement),
		Order:        rms.Names(),
	}
	cache := grid.NewSubstrateCache()

	type item struct {
		name string
		m    *scale.Measurement
		err  error
	}
	models := rms.All()
	out := make(chan item, len(models))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(models) {
		workers = len(models)
	}
	work := make(chan grid.Policy)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				m, err := measureModel(def, fid, seed, p, cache, progress)
				out <- item{name: p.Name(), m: m, err: err}
			}
		}()
	}
	for _, p := range models {
		work <- p
	}
	close(work)
	wg.Wait()
	close(out)
	for it := range out {
		if it.err != nil {
			return nil, fmt.Errorf("experiments: case %d, model %s: %w", def.id, it.name, it.err)
		}
		res.Measurements[it.name] = it.m
	}
	return res, nil
}

// measureModel runs the scalability measurement procedure for a single
// model over the case definition.
func measureModel(def caseDef, fid Fidelity, seed int64, p grid.Policy,
	cache *grid.SubstrateCache, progress func(string, scale.Point)) (*scale.Measurement, error) {

	replicas := fid.replicas()
	ev := scale.EvaluatorFunc(func(k int, x []float64) (scale.Observation, error) {
		var acc scale.Observation
		for r := 0; r < replicas; r++ {
			cfg := def.config(fid, seed+int64(r)*101, k, x)
			// The substrate cache key uses the post-collapse spec, so
			// apply the engine's collapse rule before the lookup.
			lookup := cfg
			if p.Central() {
				lookup.Spec.ClusterSize = lookup.Spec.Clusters * lookup.Spec.ClusterSize
				lookup.Spec.Clusters = 1
				lookup.Workload.Clusters = 1
			}
			sub, err := cache.Get(lookup)
			if err != nil {
				return scale.Observation{}, err
			}
			fresh, err := rms.ByName(p.Name()) // engines are single-use; state must be fresh
			if err != nil {
				return scale.Observation{}, err
			}
			e, err := grid.NewWith(cfg, fresh, sub)
			if err != nil {
				return scale.Observation{}, err
			}
			sum := e.Run()
			if e.K.Overflowed {
				return scale.Observation{}, fmt.Errorf("event budget exceeded at k=%d", k)
			}
			acc.F += sum.F
			acc.G += sum.G
			acc.H += sum.H
			acc.Throughput += sum.Throughput
			acc.MeanResponse += sum.MeanResponse
			acc.SuccessRate += sum.SuccessRate
			// A node is saturated when its busy fraction pins at 1 or
			// its work queue built a backlog long enough to matter
			// against job deadlines (runtimes are hundreds of units).
			if sum.MaxSchedulerUtil > 0.98 || sum.MaxSchedDelay > 25 {
				acc.Saturated = true
			}
		}
		n := float64(replicas)
		acc.F /= n
		acc.G /= n
		acc.H /= n
		acc.Throughput /= n
		acc.MeanResponse /= n
		acc.SuccessRate /= n
		// Efficiency from the averaged accounting terms, not the
		// average of ratios.
		if total := acc.F + acc.G + acc.H; total > 0 {
			acc.Efficiency = acc.F / total
		}
		return acc, nil
	})

	opts := fid.tuning()
	opts.Seed = seed
	spec := scale.MeasureSpec{
		RMS:       p.Name(),
		Ks:        fid.ks(),
		Enablers:  def.enablers,
		Band:      scale.PaperBand(),
		Anneal:    opts,
		WarmStart: true,
	}
	if progress != nil {
		name := p.Name()
		spec.Progress = func(pt scale.Point) { progress(name, pt) }
	}
	return scale.Measure(ev, spec)
}
