package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"rmscale/internal/lint"
	"rmscale/internal/lint/analysis"
	"rmscale/internal/lint/linttest"
)

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock(), "nowallclock")
}

func TestNoGlobalRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoGlobalRand(), "noglobalrand")
}

func TestMapIterOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapIterOrder(), "mapiterorder")
}

func TestNoKernelGoroutines(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoKernelGoroutines(), "nokernelgoroutines")
}

func TestCoordDiscipline(t *testing.T) {
	linttest.Run(t, "testdata", lint.CoordDiscipline(), "coorddiscipline")
}

func TestRMSExhaustive(t *testing.T) {
	a := lint.RMSExhaustive(lint.EnumSpec{
		PkgPath:  "modelenum",
		TypeName: "ID",
		Constants: []string{
			"Central", "Lowest", "Reserve", "Auction",
			"SenderInit", "ReceiverInit", "Symmetric",
		},
	})
	linttest.Run(t, "testdata", a, "modelenum", "rmsexhaustive")
}

// TestDeterTaint checks the transitive wall-clock/global-RNG taint
// analyzer against a two-package fixture chain.
func TestDeterTaint(t *testing.T) {
	linttest.Run(t, "testdata", lint.DeterTaint(), "detertaint/helper", "detertaint")
}

// TestHotAlloc checks the //lint:hotpath allocation-budget analyzer,
// including a hot callee in a separate unmarked package.
func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotAlloc(), "hotalloc/dep", "hotalloc")
}

// TestLockSafe checks the service locking-discipline analyzer.
func TestLockSafe(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockSafe(), "locksafe")
}

// TestMalformedDirectives checks that broken //lint: markers are
// themselves reported: an unexplained or mistargeted exception must
// not silently suppress anything.
func TestMalformedDirectives(t *testing.T) {
	const src = `package p

func f() {
	//lint:allow nowallclock
	_ = 1
	//lint:allow bogusanalyzer because reasons
	_ = 2
	//lint:frobnicate whatever
	_ = 3
}

//lint:hotpath
func g() {}

//lint:coordinator
func h() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := lint.KnownAnalyzers(lint.DefaultConfig)
	out := lint.ApplyDirectives(fset, []*ast.File{f}, known, nil)
	if len(out) != 5 {
		t.Fatalf("got %d directive diagnostics, want 5: %+v", len(out), out)
	}
	for _, want := range []string{
		"needs a reason", "unknown analyzer bogusanalyzer",
		"unknown //lint: directive frobnicate", "directive for hotpath needs a reason",
		"directive for coordinator needs a reason",
	} {
		found := false
		for _, d := range out {
			if d.Analyzer == "lintdirective" && strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no lintdirective diagnostic mentions %q in %+v", want, out)
		}
	}
}

// TestSuppressionCoversBothAnchors checks that a loop-level
// //lint:orderindependent directive silences diagnostics reported
// inside the loop body (via the suppression anchor), which is how the
// production annotations in grid/estimator.go and runner/report.go
// work.
func TestSuppressionAnchor(t *testing.T) {
	fset := token.NewFileSet()
	const src = `package p

func f(m map[string]int, out func(string)) {
	//lint:orderindependent the sink deduplicates
	for k := range m {
		out(k)
	}
}
`
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := lint.KnownAnalyzers(lint.DefaultConfig)
	// A diagnostic inside the loop body (line 6), anchored on the loop
	// header (line 5), must be suppressed by the directive on line 4.
	bodyPos := posOnLine(fset, f, 6)
	loopPos := posOnLine(fset, f, 5)
	d := analysis.Diagnostic{Pos: bodyPos, SuppressPos: loopPos, Message: "calls out", Analyzer: "mapiterorder"}
	if out := lint.ApplyDirectives(fset, []*ast.File{f}, known, []analysis.Diagnostic{d}); len(out) != 0 {
		t.Fatalf("anchored diagnostic not suppressed: %+v", out)
	}
	// Without the anchor the body diagnostic survives.
	d.SuppressPos = token.NoPos
	if out := lint.ApplyDirectives(fset, []*ast.File{f}, known, []analysis.Diagnostic{d}); len(out) != 1 {
		t.Fatalf("unanchored diagnostic unexpectedly suppressed")
	}
}

// TestSuppressionStatementSpan pins the multi-line statement rule
// directly: a directive anchored on a wrapped statement's first line
// covers the statement's later lines, but a directive above a go/defer
// statement does not blanket the closure body it launches.
func TestSuppressionStatementSpan(t *testing.T) {
	fset := token.NewFileSet()
	const src = `package p

func f(g func(int, int) int, ch chan int) {
	//lint:allow nowallclock spans the wrapped call
	_ = g(
		1,
		2,
	)
	//lint:allow nokernelgoroutines the launch itself is sanctioned
	go func() {
		ch <- 1
	}()
}
`
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := lint.KnownAnalyzers(lint.DefaultConfig)

	// A diagnostic on the wrapped call's third line (7) is covered by
	// the directive anchored on the statement's first line (5).
	span := analysis.Diagnostic{Pos: posOnLine(fset, f, 7), Message: "wall clock", Analyzer: "nowallclock"}
	if out := lint.ApplyDirectives(fset, []*ast.File{f}, known, []analysis.Diagnostic{span}); len(out) != 0 {
		t.Fatalf("multi-line statement span not covered: %+v", out)
	}
	// The go statement's directive covers its own line (10) but must
	// not extend over the closure body (line 11).
	launch := analysis.Diagnostic{Pos: posOnLine(fset, f, 10), Message: "goroutine", Analyzer: "nokernelgoroutines"}
	inner := analysis.Diagnostic{Pos: posOnLine(fset, f, 11), Message: "channel send", Analyzer: "nokernelgoroutines"}
	out := lint.ApplyDirectives(fset, []*ast.File{f}, known, []analysis.Diagnostic{launch, inner})
	if len(out) != 1 || fset.Position(out[0].Pos).Line != 11 {
		t.Fatalf("go-statement directive must suppress the launch only, got: %+v", out)
	}
}

// posOnLine returns some token position on the given line.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	var found token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found != token.NoPos {
			return false
		}
		if fset.Position(n.Pos()).Line == line {
			found = n.Pos()
			return false
		}
		return true
	})
	return found
}
