package experiments

import (
	"fmt"
	"io"

	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/workload"
)

// CommonConstants reproduces Table 1: the list of common variables and
// values used for all experiments.
type CommonConstants struct {
	TCPU          float64
	ThresholdLoad float64
	BenefitMin    float64
	BenefitMax    float64
}

// PaperConstants returns the Table 1 values.
func PaperConstants() CommonConstants {
	w := workload.DefaultParams()
	p := grid.DefaultProtocol()
	return CommonConstants{
		TCPU:          w.TCPU,
		ThresholdLoad: p.ThresholdLoad,
		BenefitMin:    w.BenefitMin,
		BenefitMax:    w.BenefitMax,
	}
}

// WriteTable1 renders Table 1.
func (c CommonConstants) WriteTable1(w io.Writer) error {
	_, err := fmt.Fprintf(w, `Table 1: common variables used for all experiments
  T_CPU       %.0f time units   jobs with execution time <= T_CPU are LOCAL, else REMOTE
  T_l         %.1f              threshold load at a scheduler
  U_b(jobid)  k x run time      user benefit function, k uniform in [%.0f, %.0f]
`, c.TCPU, c.ThresholdLoad, c.BenefitMin, c.BenefitMax)
	return err
}

// WriteScalingTables renders Tables 2-5: the scaling variables and
// scaling enablers of each case.
func WriteScalingTables(w io.Writer) error {
	_, err := fmt.Fprint(w, `Table 2 (Case 1): scaling the RP by network size
  scaling variables: network size (nodes = sizeof[RMS] + sizeof[RP]); workload
  scaling enablers:  status update interval; neighborhood set size; network link delay

Table 3 (Case 2): scaling the RP by resource service rate
  scaling variables: resource service rate; workload
  scaling enablers:  status update interval; neighborhood set size; network link delay

Table 4 (Case 3): scaling the RMS by number of status estimators
  scaling variables: number of status estimators; workload
  scaling enablers:  status update interval; neighborhood set size; network link delay

Table 5 (Case 4): scaling the RMS by L_p
  scaling variables: L_p (neighbor schedulers contacted); workload
  scaling enablers:  status update interval; interval for resource volunteering; network link delay
`)
	return err
}

// WriteModelRoster renders the seven evaluated models with the
// paper's Section 3.3 one-line protocol descriptions. Iterating
// rms.IDs keeps the roster mechanically complete: the descriptions
// come from an enum switch the rmsexhaustive analyzer checks.
func WriteModelRoster(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Models (Section 3.3):"); err != nil {
		return err
	}
	for _, id := range rms.IDs() {
		if _, err := fmt.Fprintf(w, "  %-8s %s\n", id, id.Describe()); err != nil {
			return err
		}
	}
	return nil
}
