package fsutil

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "v1" {
		t.Fatalf("read %q, want %q", b, "v1")
	}
	// Overwrite replaces the whole content.
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if string(b) != "second" {
		t.Fatalf("read %q after overwrite, want %q", b, "second")
	}
	// No temp-file litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicPerm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked")
	if err := WriteFileAtomic(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o600 {
		t.Fatalf("perm %v, want 0600", got)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), nil, 0o644)
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

// TestWriteFileAtomicRenameFailureCleansTemp pins the satellite fix:
// when the final rename fails (here: the destination is a directory),
// the temp file must not be left littering the parent directory.
func TestWriteFileAtomicRenameFailureCleansTemp(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "occupied")
	if err := os.MkdirAll(filepath.Join(dest, "child"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(dest, []byte("x"), 0o644); err == nil {
		t.Fatal("rename onto a non-empty directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after rename failure", e.Name())
		}
	}
}

// traceFS records the op sequence WriteAtomic issues so the test can
// assert the durability-critical ordering without a real power cut.
type traceFS struct {
	RealFS
	ops []string
}

func (f *traceFS) Rename(oldpath, newpath string) error {
	f.ops = append(f.ops, "rename")
	return f.RealFS.Rename(oldpath, newpath)
}

func (f *traceFS) Remove(name string) error {
	f.ops = append(f.ops, "remove")
	return f.RealFS.Remove(name)
}

func (f *traceFS) SyncDir(dir string) error {
	f.ops = append(f.ops, "syncdir")
	return f.RealFS.SyncDir(dir)
}

// TestWriteAtomicSyncsParentDir pins the tentpole fix at the op
// level: the parent directory is fsynced after the rename, so the
// destination entry — not just its content — survives power loss.
func TestWriteAtomicSyncsParentDir(t *testing.T) {
	fs := &traceFS{}
	if err := WriteAtomic(fs, filepath.Join(t.TempDir(), "f"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if len(fs.ops) != 2 || fs.ops[0] != "rename" || fs.ops[1] != "syncdir" {
		t.Fatalf("op sequence %v, want [rename syncdir]", fs.ops)
	}
}

// errRenameFS fails every rename, for exercising the cleanup path
// through an arbitrary FS implementation.
type errRenameFS struct {
	RealFS
	removed []string
}

func (f *errRenameFS) Rename(string, string) error { return errors.New("injected rename failure") }
func (f *errRenameFS) Remove(name string) error {
	f.removed = append(f.removed, name)
	return f.RealFS.Remove(name)
}

func TestWriteAtomicRemovesTempOnInjectedRenameFailure(t *testing.T) {
	fs := &errRenameFS{}
	dir := t.TempDir()
	if err := WriteAtomic(fs, filepath.Join(dir, "f"), []byte("x"), 0o644); err == nil {
		t.Fatal("injected rename failure not surfaced")
	}
	want := filepath.Join(dir, ".f.tmp")
	if len(fs.removed) != 1 || fs.removed[0] != want {
		t.Fatalf("removed %v, want [%s]", fs.removed, want)
	}
}

func TestAppendSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := AppendSync(f, []byte("a\n")); err != nil {
		t.Fatal(err)
	}
	if err := AppendSync(f, []byte("b\n")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "a\nb\n" {
		t.Fatalf("log content %q, want %q", b, "a\nb\n")
	}
}

func TestRealFSReadDirSorted(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"b", "a", "c"} {
		if err := os.WriteFile(filepath.Join(dir, n), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names, err := RealFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("ReadDir %v, want sorted [a b c]", names)
	}
}
