package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rmscale/internal/lint/analysis"
	"rmscale/internal/lint/callgraph"
)

// LockSafe encodes the locking conventions internal/service
// established by hand in PRs 6-7, so the next contributor cannot
// silently break them:
//
//   - no blocking operation while a mutex is held: channel send,
//     receive or select, time.Sleep / Clock.Sleep, calls into IO
//     packages (os, net, ...), and calls to module functions that
//     transitively block (Await, journal appends, store disk reads) —
//     sync.Cond.Wait is exempt, because it releases the mutex;
//   - no call that re-locks a mutex the caller already holds
//     (self-deadlock through a helper);
//   - no plain return while a lock is held without a deferred unlock
//     (the unlock-then-return early-exit idiom stays clean);
//   - guarded-field discipline: struct fields declared below a mutex
//     field are guarded by it (sync-typed fields excepted — they
//     synchronize themselves); a method that touches one must hold
//     the mutex or carry the *Locked name suffix that marks
//     "caller holds the lock". Guarded-field diagnostics anchor on
//     the method declaration, so one annotation covers a
//     deliberately lock-free method (e.g. pre-concurrency setup).
//
// The held region is a source-interval approximation: a lock opens at
// its Lock call and closes at a same-block Unlock, at scope end for
// deferred unlocks, with branch-local `Unlock(); return` exits carved
// out as holes. Diagnostics inside a held region anchor on the Lock
// statement, so one annotated Lock justifies the region it opens.
func LockSafe() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "locksafe",
		Doc:  "flag mutexes held across blocking operations, lock-leaking returns, and unguarded access to mutex-guarded fields",
	}
	a.Run = func(p *analysis.Pass) error {
		g := passGraph(p)
		sums := lockSummariesOf(g)
		guards := guardedFieldsOf(p)
		for _, f := range p.Files {
			parents := buildParents(f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				node := funcNode(p, g, fd)
				ctx := &lockScopeCtx{p: p, g: g, sums: sums, parents: parents, node: node}
				ctx.guard = guards.methodGuard(p, fd)
				ctx.analyzeScope(fd.Body)
			}
		}
		return nil
	}
	return a
}

// ---- held-interval model ----

const (
	evLock = iota
	evUnlock
	evDeferUnlock
)

type lockEvent struct {
	pos  token.Pos
	kind int
	key  types.Object // mutex identity: field or variable object
	str  string       // rendered receiver, for messages
	stmt ast.Node     // the statement carrying the call
}

type posRange struct{ lo, hi token.Pos }

type lockInterval struct {
	key      types.Object
	str      string
	lockPos  token.Pos // anchor: the Lock statement
	lo, hi   token.Pos
	deferred bool
	holes    []posRange
}

func (iv *lockInterval) contains(pos token.Pos) bool {
	if pos <= iv.lo || pos >= iv.hi {
		return false
	}
	for _, h := range iv.holes {
		if pos > h.lo && pos < h.hi {
			return false
		}
	}
	return true
}

// lockScopeCtx analyzes one function scope (a FuncDecl body or one
// func literal — literals get their own scope, since they run at a
// different time than their creator).
type lockScopeCtx struct {
	p       *analysis.Pass
	g       *callgraph.Graph
	sums    *lockSummaries
	parents map[ast.Node]ast.Node
	node    *callgraph.Node // enclosing declaration's graph node
	guard   *methodGuard    // non-nil inside methods of a guarded struct
}

func (c *lockScopeCtx) analyzeScope(body *ast.BlockStmt) {
	events, lits := c.scanScope(body)
	ivs := buildIntervals(events, body.End(), c.parents)
	heldAt := func(pos token.Pos) *lockInterval {
		for _, iv := range ivs {
			if iv.contains(pos) {
				return iv
			}
		}
		return nil
	}
	c.checkScope(body, heldAt)
	for _, lit := range lits {
		sub := *c
		sub.analyzeScope(lit.Body)
	}
}

// scanScope collects lock events and nested func literals, without
// descending into the literals.
func (c *lockScopeCtx) scanScope(body *ast.BlockStmt) ([]lockEvent, []*ast.FuncLit) {
	var events []lockEvent
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && n != nil {
			lits = append(lits, lit)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := c.p.Info.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		kind := -1
		switch sel.Sel.Name {
		case "Lock", "RLock":
			kind = evLock
		case "Unlock", "RUnlock":
			kind = evUnlock
			if _, isDefer := c.parents[call].(*ast.DeferStmt); isDefer {
				kind = evDeferUnlock
			}
		}
		if kind < 0 {
			return true
		}
		key, str := c.mutexKey(sel.X)
		events = append(events, lockEvent{pos: call.Pos(), kind: kind, key: key, str: str, stmt: enclosingStmt(c.parents, call)})
		return true
	})
	return events, lits
}

// mutexKey resolves the locked expression to a stable identity: the
// struct field or variable object when the type checker knows it.
func (c *lockScopeCtx) mutexKey(x ast.Expr) (types.Object, string) {
	str := exprString(x)
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return c.p.Info.Uses[x], str
	case *ast.SelectorExpr:
		if sel, ok := c.p.Info.Selections[x]; ok {
			return sel.Obj(), str
		}
		return c.p.Info.Uses[x.Sel], str
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.mutexKey(x.X)
		}
	}
	return nil, str
}

// buildIntervals pairs lock events into held regions. An unlock in a
// block nested below the lock's block is a branch-local exit: it
// opens a hole to the end of its block instead of closing the region.
func buildIntervals(events []lockEvent, scopeEnd token.Pos, parents map[ast.Node]ast.Node) []*lockInterval {
	var ivs []*lockInterval
	used := map[int]bool{}
	for i, ev := range events {
		if ev.kind != evLock {
			continue
		}
		iv := &lockInterval{key: ev.key, str: ev.str, lockPos: ev.pos, lo: ev.pos, hi: scopeEnd}
		lockBlock := enclosingBlock(parents, ev.stmt)
		closed := false
		for j := i + 1; j < len(events) && !closed; j++ {
			u := events[j]
			if used[j] || !sameMutex(ev, u) {
				continue
			}
			switch u.kind {
			case evDeferUnlock:
				iv.deferred = true
				used[j] = true
				closed = true
			case evUnlock:
				used[j] = true
				if enclosingBlock(parents, u.stmt) == lockBlock {
					iv.hi = u.pos
					closed = true
				} else if b := enclosingBlock(parents, u.stmt); b != nil {
					iv.holes = append(iv.holes, posRange{lo: u.pos, hi: b.End()})
				}
			}
		}
		ivs = append(ivs, iv)
	}
	return ivs
}

func sameMutex(a, b lockEvent) bool {
	if a.key != nil && b.key != nil {
		return a.key == b.key
	}
	return a.str == b.str
}

func enclosingStmt(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for ; n != nil; n = parents[n] {
		if _, ok := n.(ast.Stmt); ok {
			return n
		}
	}
	return nil
}

func enclosingBlock(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for ; n != nil; n = parents[n] {
		if b, ok := n.(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// ---- checks inside one scope ----

func (c *lockScopeCtx) checkScope(body *ast.BlockStmt, heldAt func(token.Pos) *lockInterval) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // own scope
		case *ast.DeferStmt:
			return false // runs at return; deferred unlocks already modeled
		case *ast.SendStmt:
			if iv := heldAt(n.Pos()); iv != nil && !c.inSelectComm(n) {
				c.reportHeld(iv, n.Pos(), "channel send while %s is held", iv.str)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if iv := heldAt(n.Pos()); iv != nil && !c.inSelectComm(n) {
					c.reportHeld(iv, n.Pos(), "channel receive while %s is held", iv.str)
				}
			}
		case *ast.SelectStmt:
			if iv := heldAt(n.Pos()); iv != nil {
				c.reportHeld(iv, n.Pos(), "select while %s is held", iv.str)
			}
			return true
		case *ast.ReturnStmt:
			if iv := heldAt(n.Pos()); iv != nil && !iv.deferred {
				c.reportHeld(iv, n.Pos(), "return while %s is held and no unlock is deferred; a new early return here would leak the lock", iv.str)
			}
		case *ast.CallExpr:
			c.checkCallSite(n, heldAt)
		case *ast.SelectorExpr:
			c.checkGuardedAccess(n, heldAt)
			return true
		}
		return true
	})
}

func (c *lockScopeCtx) reportHeld(iv *lockInterval, pos token.Pos, format string, args ...any) {
	c.p.ReportfAnchored(iv.lockPos, pos, format, args...)
}

// inSelectComm reports whether n is (part of) a select case's comm
// statement — the select itself is already reported, so the send or
// receive inside the case header would be a duplicate.
func (c *lockScopeCtx) inSelectComm(n ast.Node) bool {
	child := n
	for cur := c.parents[child]; cur != nil; child, cur = cur, c.parents[cur] {
		if cc, ok := cur.(*ast.CommClause); ok {
			return cc.Comm == child
		}
	}
	return false
}

// checkCallSite flags blocking and re-locking calls inside a held
// region.
func (c *lockScopeCtx) checkCallSite(call *ast.CallExpr, heldAt func(token.Pos) *lockInterval) {
	iv := heldAt(call.Pos())
	if iv == nil {
		return
	}
	fn := calleeFunc(c.p, call)
	if reason, ok := directBlockReason(c.p, call, fn); ok {
		c.reportHeld(iv, call.Pos(), "%s while %s is held", reason, iv.str)
		return
	}
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		return // lock traffic itself, and Cond.Wait (which releases the mutex) — modeled, not flagged
	}
	// Module callees: use the graph edge at this position for targets.
	if c.node == nil {
		return
	}
	for _, edge := range c.node.Calls {
		if edge.Pos != call.Pos() {
			continue
		}
		for _, target := range edge.Targets {
			if why := c.sums.blocks(target); why != "" {
				c.reportHeld(iv, call.Pos(), "call to %s blocks (%s) while %s is held",
					callgraph.FuncLabel(target.Fn), why, iv.str)
				return
			}
			if iv.key != nil && c.sums.locks(target)[iv.key] {
				c.reportHeld(iv, call.Pos(), "call to %s locks %s again while it is already held (self-deadlock)",
					callgraph.FuncLabel(target.Fn), iv.str)
				return
			}
		}
		return
	}
}

// directBlockReason classifies a call as blocking by itself, without
// looking at module bodies.
func directBlockReason(p *analysis.Pass, call *ast.CallExpr, fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sync":
		if name == "Wait" && !condReceiver(fn) {
			return "sync.WaitGroup.Wait blocks", true
		}
		return "", false
	case "time":
		if name == "Sleep" {
			return "time.Sleep blocks", true
		}
		return "", false
	}
	if blockingPkgs[fn.Pkg().Path()] {
		return callgraph.FuncLabel(fn) + " performs IO", true
	}
	// Interface sleeps (Clock.Sleep) block whoever implements them.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && name == "Sleep" {
		if types.IsInterface(sig.Recv().Type()) {
			return callgraph.FuncLabel(fn) + " blocks", true
		}
	}
	return "", false
}

// blockingPkgs are the packages whose calls can park the goroutine on
// the outside world. fmt is deliberately absent: log writes to stderr
// are not worth an annotation per call site.
var blockingPkgs = map[string]bool{
	"os":       true,
	"os/exec":  true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
}

func condReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Cond"
}

// calleeFunc statically resolves the callee of a call expression.
func calleeFunc(p *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcNode resolves a declaration to its graph node.
func funcNode(p *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl) *callgraph.Node {
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	return g.Node(fn)
}

// ---- transitive blocking / locking summaries ----

type lockSummaries struct {
	g         *callgraph.Graph
	blockMemo map[*callgraph.Node]string
	lockMemo  map[*callgraph.Node]map[types.Object]bool
	visiting  map[*callgraph.Node]bool
}

func lockSummariesOf(g *callgraph.Graph) *lockSummaries {
	if s, ok := g.Memo["locksafe"].(*lockSummaries); ok {
		return s
	}
	s := &lockSummaries{
		g:         g,
		blockMemo: map[*callgraph.Node]string{},
		lockMemo:  map[*callgraph.Node]map[types.Object]bool{},
		visiting:  map[*callgraph.Node]bool{},
	}
	g.Memo["locksafe"] = s
	return s
}

// blocks returns a human-readable reason when calling n can block,
// or "" when it cannot (as far as the graph can see).
func (s *lockSummaries) blocks(n *callgraph.Node) string {
	if why, ok := s.blockMemo[n]; ok {
		return why
	}
	if s.visiting[n] {
		return "" // recursion: the cycle's entry point decides
	}
	s.visiting[n] = true
	why := s.blocksUncached(n)
	delete(s.visiting, n)
	s.blockMemo[n] = why
	return why
}

func (s *lockSummaries) blocksUncached(n *callgraph.Node) string {
	info := n.Pkg.Info
	why := ""
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if why != "" {
			return false
		}
		switch nd := nd.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			why = "channel operation"
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				why = "channel receive"
			}
		case *ast.CallExpr:
			if sel, ok := nd.Fun.(*ast.SelectorExpr); ok {
				if fn, _ := info.Uses[sel.Sel].(*types.Func); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					if fn.Name() == "Wait" {
						// Inside the body cond.Wait is sanctioned, but for a
						// caller holding another lock this function blocks.
						why = "waits on " + exprString(sel.X)
					}
					return true
				}
			}
			// p is only used for Info lookups in directBlockReason, so a
			// shim pass over this node's package is enough.
			shim := &analysis.Pass{Fset: s.g.Fset(), Info: info, Pkg: n.Pkg.Pkg}
			if r, ok := directBlockReason(shim, nd, calleeFunc(shim, nd)); ok {
				why = r
			}
		}
		return why == ""
	})
	if why != "" {
		return why
	}
	for _, call := range n.Calls {
		for _, target := range call.Targets {
			if sub := s.blocks(target); sub != "" {
				return "via " + callgraph.FuncLabel(target.Fn) + ": " + strings.TrimPrefix(sub, "via ")
			}
		}
	}
	return ""
}

// locks returns the set of mutex objects n (transitively) locks.
func (s *lockSummaries) locks(n *callgraph.Node) map[types.Object]bool {
	if m, ok := s.lockMemo[n]; ok {
		return m
	}
	if s.visiting[n] {
		return nil
	}
	s.visiting[n] = true
	m := map[types.Object]bool{}
	s.lockMemo[n] = m
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := info.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
			ctx := &lockScopeCtx{p: &analysis.Pass{Fset: s.g.Fset(), Info: info, Pkg: n.Pkg.Pkg}}
			if key, _ := ctx.mutexKey(sel.X); key != nil {
				m[key] = true
			}
		}
		return true
	})
	for _, call := range n.Calls {
		for _, target := range call.Targets {
			for k := range s.locks(target) {
				m[k] = true
			}
		}
	}
	delete(s.visiting, n)
	return m
}

// ---- guarded-field discipline ----

// guardedStructs maps a struct's mutex field object to the set of
// fields it guards.
type guardedStructs struct {
	// byType maps the struct's *types.Named to its guard description.
	byType map[*types.TypeName]*structGuard
}

type structGuard struct {
	mutex   types.Object          // the mutex field
	guarded map[types.Object]bool // fields declared below it
}

type methodGuard struct {
	sg      *structGuard
	recv    types.Object // the receiver variable
	declPos token.Pos    // anchor for diagnostics
	name    string
}

// guardedFieldsOf finds the package's structs that embed a mutex
// field and records which fields sit below it (sync-typed fields are
// self-synchronizing and stay unguarded).
func guardedFieldsOf(p *analysis.Pass) *guardedStructs {
	gs := &guardedStructs{byType: map[*types.TypeName]*structGuard{}}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				return true
			}
			var sg *structGuard
			for _, field := range st.Fields.List {
				ft := p.TypeOf(field.Type)
				if sg == nil {
					if isMutexType(ft) && len(field.Names) == 1 {
						sg = &structGuard{mutex: p.Info.Defs[field.Names[0]], guarded: map[types.Object]bool{}}
					}
					continue
				}
				if syncType(ft) {
					continue
				}
				for _, name := range field.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						sg.guarded[obj] = true
					}
				}
			}
			if sg != nil && len(sg.guarded) > 0 {
				gs.byType[tn] = sg
			}
			return true
		})
	}
	return gs
}

// methodGuard returns the guard context when fd is a method (without
// the *Locked suffix) on a guarded struct.
func (gs *guardedStructs) methodGuard(p *analysis.Pass, fd *ast.FuncDecl) *methodGuard {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	rt := p.TypeOf(fd.Recv.List[0].Type)
	if pt, ok := rt.(*types.Pointer); ok {
		rt = pt.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return nil
	}
	sg, ok := gs.byType[named.Obj()]
	if !ok {
		return nil
	}
	recv := p.Info.Defs[fd.Recv.List[0].Names[0]]
	if recv == nil {
		return nil
	}
	return &methodGuard{sg: sg, recv: recv, declPos: fd.Pos(), name: fd.Name.Name}
}

// checkGuardedAccess flags recv.field accesses to guarded fields made
// without holding the guard.
func (c *lockScopeCtx) checkGuardedAccess(sel *ast.SelectorExpr, heldAt func(token.Pos) *lockInterval) {
	mg := c.guard
	if mg == nil {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || c.p.Info.Uses[id] != mg.recv {
		return
	}
	selection, ok := c.p.Info.Selections[sel]
	if !ok || !mg.sg.guarded[selection.Obj()] {
		return
	}
	if iv := heldAt(sel.Pos()); iv != nil && (iv.key == nil || iv.key == mg.sg.mutex) {
		return
	}
	c.p.ReportfAnchored(mg.declPos, sel.Pos(),
		"%s is guarded by %s (declared below it) but %s accesses it without holding the lock; lock, rename the method *Locked, or annotate the declaration",
		exprString(sel), mg.sg.mutex.Name(), mg.name)
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// syncType reports types from package sync (or pointers to them):
// WaitGroup, Cond, Once and friends synchronize themselves.
func syncType(t types.Type) bool {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}
