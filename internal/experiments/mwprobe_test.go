package experiments

import (
	"os"
	"testing"

	"rmscale/internal/grid"
	"rmscale/internal/rms"
)

// TestProbeMiddleware inspects the S-I family's middleware load across
// Case 1 scale factors at Quick fidelity. Enabled via RMSCALE_PROBE_MW.
func TestProbeMiddleware(t *testing.T) {
	if os.Getenv("RMSCALE_PROBE_MW") == "" {
		t.Skip("set RMSCALE_PROBE_MW=1 to run")
	}
	def := Case1(Quick)
	for _, name := range []string{"S-I", "R-I", "Sy-I"} {
		for _, k := range []int{1, 3, 6} {
			cfg := def.config(Quick, 1, k, []float64{40, 6, 1})
			p, err := rms.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			e, err := grid.New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			sum := e.Run()
			t.Logf("%-5s k=%d %v transfers=%d", name, k, sum, e.Metrics.JobTransfers)
		}
	}
}
