// Command topogen generates a grid topology the way the simulator does
// — an Internet-like graph with grid roles mapped onto it — and dumps
// it for inspection.
//
// Usage:
//
//	topogen [flags]
//
// Flags:
//
//	-nodes N       topology size (default 200)
//	-gen NAME      powerlaw, waxman, cliques or transitstub (default powerlaw)
//	-m N           preferential-attachment edges (default 2)
//	-clusters N    clusters to map (default 8)
//	-size N        resources per cluster (default 10)
//	-estimators N  estimators to map (default 0)
//	-seed N        random seed (default 1)
//	-format NAME   summary or dot (default summary)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rmscale/internal/sim"
	"rmscale/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	nodes := fs.Int("nodes", 200, "topology size")
	gen := fs.String("gen", "powerlaw", "generator: powerlaw, waxman or cliques")
	m := fs.Int("m", 2, "preferential attachment edge count")
	clusters := fs.Int("clusters", 8, "clusters to map")
	size := fs.Int("size", 10, "resources per cluster")
	estimators := fs.Int("estimators", 0, "estimators to map")
	seed := fs.Int64("seed", 1, "random seed")
	format := fs.String("format", "summary", "summary or dot")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := sim.NewSource(*seed)
	lp := topology.DefaultLinkParams()
	var g *topology.Graph
	var err error
	switch *gen {
	case "powerlaw":
		g, err = topology.PowerLaw(*nodes, *m, lp, src.Stream("topo"))
	case "waxman":
		g, err = topology.Waxman(*nodes, 0.4, 0.2, lp, src.Stream("topo"))
	case "cliques":
		g, err = topology.RingOfCliques(*nodes/5, 5, lp, src.Stream("topo"))
	case "transitstub":
		g, err = topology.TransitStub(topology.DefaultTransitStubParams(), lp, src.Stream("topo"))
	default:
		return fmt.Errorf("unknown generator %q", *gen)
	}
	if err != nil {
		return err
	}
	spec := topology.GridSpec{Clusters: *clusters, ClusterSize: *size, Estimators: *estimators}
	mp, err := topology.MapGrid(g, spec, src.Stream("map"))
	if err != nil {
		return err
	}

	switch *format {
	case "summary":
		ds := g.DegreeDistribution()
		fmt.Fprintf(out, "nodes        %d\n", g.N)
		fmt.Fprintf(out, "edges        %d\n", g.Edges())
		fmt.Fprintf(out, "connected    %v\n", g.Connected())
		fmt.Fprintf(out, "degrees      min=%d max=%d mean=%.2f tail-ratio=%.2f\n",
			ds.Min, ds.Max, ds.Mean, ds.TailRatio)
		fmt.Fprintf(out, "schedulers   %v\n", mp.SchedulerNode)
		fmt.Fprintf(out, "estimators   %v\n", mp.EstimatorNode)
		for c, rs := range mp.ClusterResources {
			fmt.Fprintf(out, "cluster %-3d  %d resources\n", c, len(rs))
		}
		return nil
	case "dot":
		return writeDot(out, g, mp)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// writeDot emits a Graphviz rendering with roles coloured.
func writeDot(out io.Writer, g *topology.Graph, mp *topology.Mapping) error {
	fmt.Fprintln(out, "graph grid {")
	fmt.Fprintln(out, "  node [shape=point];")
	for u := 0; u < g.N; u++ {
		color := "gray"
		switch mp.Roles[u] {
		case topology.RoleScheduler:
			color = "red"
		case topology.RoleResource:
			color = "blue"
		case topology.RoleEstimator:
			color = "green"
		}
		fmt.Fprintf(out, "  n%d [color=%s];\n", u, color)
	}
	for u := 0; u < g.N; u++ {
		for _, e := range g.Adj[u] {
			if u < e.To {
				fmt.Fprintf(out, "  n%d -- n%d;\n", u, e.To)
			}
		}
	}
	_, err := fmt.Fprintln(out, "}")
	return err
}
