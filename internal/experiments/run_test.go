package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"rmscale/internal/scale"
)

// tableBytes renders the case's headline figure the way the CLI's
// table format does — the byte-identity oracle for the determinism and
// resume tests.
func tableBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Figure().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.NormalizedFigure().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterminismSerialParallelWarmCache is the regression test the
// runner's contract hangs on: a Smoke case run serially, run with four
// workers, and re-run against a warm content-addressed cache must
// produce byte-identical tables for the same seed.
func TestDeterminismSerialParallelWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	const seed = 7

	serial, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := tableBytes(t, serial)

	parallel, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: seed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := tableBytes(t, parallel); !bytes.Equal(got, want) {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}

	// Warm the disk cache, then delete the journal so the third run
	// re-tunes from scratch but against a fully warm cache — this
	// isolates the cache path from journal adoption.
	dir := t.TempDir()
	if _, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: seed, Workers: 4, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "journal.jsonl")); err != nil {
		t.Fatal(err)
	}
	warm, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: seed, Workers: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := tableBytes(t, warm); !bytes.Equal(got, want) {
		t.Fatalf("cache-warm output differs from serial:\n--- serial ---\n%s\n--- warm ---\n%s", want, got)
	}
}

// TestCheckpointResumeRoundtrip kills a run partway through via
// context cancellation, then resumes it from the journal and checks
// the final tables are identical to an uninterrupted run's.
func TestCheckpointResumeRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	const seed = 3

	uninterrupted, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	want := tableBytes(t, uninterrupted)

	// First attempt: cancel after a handful of points have been
	// journaled, mid-flight through the k-chains.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var points atomic.Int64
	_, err = RunCaseSpec(4, RunSpec{
		Fidelity: Smoke,
		Seed:     seed,
		Workers:  2,
		Dir:      dir,
		Context:  ctx,
		Progress: func(string, scale.Point) {
			if points.Add(1) == 4 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run failed with %v, want context.Canceled in the chain", err)
	}
	if points.Load() < 4 {
		t.Fatalf("cancelled too early: %d points", points.Load())
	}

	// The journal must hold the committed prefix.
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err != nil {
		t.Fatal(err)
	}

	// Resume with the same parameters.
	resumed, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: seed, Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := tableBytes(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// A second resume of the now-complete journal adopts everything.
	again, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: seed, Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := tableBytes(t, again); !bytes.Equal(got, want) {
		t.Fatal("fully-journaled rerun differs")
	}
}

// TestResumeRefusesDifferentParameters guards against replaying a
// checkpoint into the wrong run shape.
func TestResumeRefusesDifferentParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	dir := t.TempDir()
	if _, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: 1, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: 2, Dir: dir}); err == nil {
		t.Fatal("journal resumed under a different seed")
	}
}

// TestRunstateWritten checks the machine-readable progress file
// appears and accounts for the run.
func TestRunstateWritten(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	dir := t.TempDir()
	if _, err := RunCaseSpec(4, RunSpec{Fidelity: Smoke, Seed: 1, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "runstate.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"jobs_done", "cache_hit_rate", "points_done", "\"done\": true"} {
		if !bytes.Contains(b, []byte(want)) {
			t.Fatalf("runstate.json missing %q:\n%s", want, b)
		}
	}
}

// TestRunAllSharedPool runs two cases through one pool and checks both
// results land intact and in order.
func TestRunAllSharedPool(t *testing.T) {
	if testing.Short() {
		t.Skip("case run is slow")
	}
	rs, err := RunCasesSpec([]int{4, 3}, RunSpec{Fidelity: Smoke, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Case != 4 || rs[1].Case != 3 {
		t.Fatalf("results out of order: %v", []int{rs[0].Case, rs[1].Case})
	}
	for _, r := range rs {
		if len(r.Measurements) != len(r.Order) {
			t.Fatalf("case %d measured %d of %d models", r.Case, len(r.Measurements), len(r.Order))
		}
	}
}

func TestRunCaseSpecUnknownCase(t *testing.T) {
	if _, err := RunCaseSpec(9, RunSpec{Fidelity: Smoke, Seed: 1}); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestRunSpecValidation(t *testing.T) {
	if err := (RunSpec{Fidelity: Smoke}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// Every rejection names the offending value, so a bad spec can be
	// fixed from the error alone.
	err := (RunSpec{Fidelity: Fidelity(99)}).Validate()
	if err == nil {
		t.Fatal("unknown fidelity accepted")
	}
	if !strings.Contains(err.Error(), "99") {
		t.Fatalf("fidelity error %q does not name the offending value", err)
	}
	err = (RunSpec{Fidelity: Smoke, Workers: -1}).Validate()
	if err == nil {
		t.Fatal("negative Workers accepted")
	}
	if !strings.Contains(err.Error(), "-1") {
		t.Fatalf("workers error %q does not name the offending value", err)
	}
	err = (RunSpec{Fidelity: Smoke, Seed: -3}).Validate()
	if err == nil {
		t.Fatal("negative Seed accepted")
	}
	if !strings.Contains(err.Error(), "-3") {
		t.Fatalf("seed error %q does not name the offending value", err)
	}
	// The Run*Spec entry points must fail before touching any journal
	// or cache state.
	if _, err := RunCaseSpec(1, RunSpec{Fidelity: Fidelity(99), Seed: 1}); err == nil {
		t.Fatal("RunCaseSpec ran with an unknown fidelity")
	}
}

// TestRunSpecString pins the diagnostic rendering: identity fields
// only, matching what fingerprint() hashes.
func TestRunSpecString(t *testing.T) {
	s := RunSpec{Fidelity: Quick, Seed: 7, Workers: 4, Dir: "/tmp/x"}
	if got, want := s.String(), "runspec{fidelity=quick seed=7}"; got != want {
		t.Fatalf("String() = %q, want %q (identity fields only)", got, want)
	}
}

func TestRunCasesSpecRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := RunCasesSpec(nil, RunSpec{Fidelity: Smoke, Seed: 1}); err == nil {
		t.Fatal("empty case list accepted")
	}
	// Duplicate IDs would share journal point IDs and silently overwrite
	// each other's results.
	if _, err := RunCasesSpec([]int{1, 2, 1}, RunSpec{Fidelity: Smoke, Seed: 1}); err == nil {
		t.Fatal("duplicate case IDs accepted")
	}
}
