package grid

import (
	"sort"

	"rmscale/internal/routing"
	"rmscale/internal/sim"
)

// This file is the engine's fault-tolerance layer: scheduler and
// estimator crash/repair processes, access-link outages, protocol
// message loss with sender-side timeout/retry, and job failover off
// crashed schedulers. The whole layer is armed only when the config
// enables a protocol fault class (FaultModel.protocolFaults); with it
// disarmed, every hot path below collapses to the pre-fault code and a
// run is byte-identical to one produced before this file existed.

// faultState holds the armed protocol-fault machinery. Each fault
// process draws from its own dedicated named stream so enabling one
// class never perturbs another, nor the workload/topology streams.
type faultState struct {
	sched   *sim.Stream // scheduler crash gaps
	est     *sim.Stream // estimator crash gaps
	msg     *sim.Stream // per-message loss draws
	outages *routing.Outages

	// lossWindows holds scripted [start, end) intervals during which
	// every protocol message is lost, independent of the random loss
	// draw (see script.go). Empty outside chaos runs.
	lossWindows []lossWindow
	// scripted marks that explicit fault injections were registered, so
	// the auditor knows fault counters may legitimately be non-zero even
	// when the random FaultModel is all-zero.
	scripted bool
}

// lossWindow is one scripted total-loss interval.
type lossWindow struct{ start, end sim.Time }

// scriptedLoss reports whether a scripted loss window covers t.
func (fs *faultState) scriptedLoss(t sim.Time) bool {
	for _, w := range fs.lossWindows {
		if t >= w.start && t < w.end {
			return true
		}
	}
	return false
}

// setupFaults arms the protocol-fault machinery: dedicated streams plus
// a pre-planned access-link outage schedule over the scheduler and
// estimator endpoints.
func (e *Engine) setupFaults() error {
	fs := &faultState{
		sched: e.src.Stream("faults:sched"),
		est:   e.src.Stream("faults:est"),
		msg:   e.src.Stream("faults:msg"),
	}
	f := e.Cfg.Faults
	nodes := make([]int, 0, len(e.Schedulers)+len(e.Estimators))
	for _, s := range e.Schedulers {
		nodes = append(nodes, s.node)
	}
	for _, est := range e.Estimators {
		nodes = append(nodes, est.node)
	}
	out, err := routing.PlanOutages(nodes, f.LinkOutageMTBF, f.LinkOutageDuration,
		e.Cfg.Horizon+e.Cfg.Drain, e.src.Stream("faults:links"))
	if err != nil {
		return err
	}
	fs.outages = out
	e.fs = fs
	return nil
}

// armSchedulerCrash schedules s's next crash and, with it, the repair
// that re-arms the following one — the same cycle resources use.
func (e *Engine) armSchedulerCrash(s *Scheduler) {
	gap := e.fs.sched.Exp(e.Cfg.Faults.SchedulerMTBF)
	if gap <= 0 {
		return
	}
	e.K.After(gap, func() {
		e.crashScheduler(s, e.Cfg.Faults.SchedulerRepair)
		e.K.After(e.Cfg.Faults.SchedulerRepair, func() {
			e.repairScheduler(s)
			e.armSchedulerCrash(s)
		})
	})
}

// crashScheduler takes the scheduler down for the given repair
// duration: queued CPU work is destroyed (the epoch bump invalidates
// every closure its Exec chain holds) and the jobs it is responsible
// for fail over to a live peer. The repair duration is a parameter so
// scripted crashes (script.go) account their actual downtime.
func (e *Engine) crashScheduler(s *Scheduler, repair sim.Time) {
	if s.down {
		return
	}
	s.down = true
	s.epoch++
	e.Metrics.SchedulerCrashes++
	e.Metrics.SchedulerDowntime += repair
	if e.Tracer.On() {
		e.Tracer.Tracef("fault", "scheduler %d crashed", s.cluster)
	}
	e.rehomeOwned(s)
}

// repairScheduler brings the scheduler back and drains the jobs that
// were parked on it while it was down.
func (e *Engine) repairScheduler(s *Scheduler) {
	s.down = false
	if e.Tracer.On() {
		e.Tracer.Tracef("fault", "scheduler %d repaired", s.cluster)
	}
	parked := s.parked
	s.parked = nil
	for _, ctx := range parked {
		e.deliverToScheduler(s, ctx)
	}
}

// rehomeOwned fails the crashed scheduler's jobs over to the first live
// cluster in its peer list, in job-ID order for determinism. With no
// live peer (a central scheduler, or a neighborhood-wide blackout) the
// jobs park on the crashed scheduler until its repair — submissions
// outlive the manager, they do not vanish with it.
func (e *Engine) rehomeOwned(s *Scheduler) {
	if len(s.owned) == 0 {
		return
	}
	ids := make([]int, 0, len(s.owned))
	for id := range s.owned {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// Failover is detected by the submission client timing out, so the
	// re-homed job reaches its new cluster one retry timeout plus one
	// transfer delay after the crash.
	detect := e.Cfg.Faults.RetryTimeout
	for _, id := range ids {
		ctx := s.owned[id]
		delete(s.owned, id)
		dst := e.firstLivePeer(s)
		if dst == nil {
			s.parked = append(s.parked, ctx)
			e.Metrics.JobsParked++
			continue
		}
		e.Metrics.Failovers++
		// Failover forfeits routing freedom: the job places locally at
		// its new home instead of re-entering the transfer protocol.
		ctx.Hops++
		if e.Tracer.On() {
			e.Tracer.Tracef("fault", "job %d fails over: cluster %d -> %d", ctx.Job.ID, s.cluster, dst.cluster)
		}
		e.K.After(detect+e.delay(s.node, dst.node, e.Cfg.JobBytes), func() {
			e.deliverToScheduler(dst, ctx)
		})
	}
}

// firstLivePeer returns the first live scheduler in s's peer list.
func (e *Engine) firstLivePeer(s *Scheduler) *Scheduler {
	for _, p := range s.peers {
		if !e.Schedulers[p].down {
			return e.Schedulers[p]
		}
	}
	return nil
}

// deliverToScheduler hands a job envelope to a scheduler outside the
// normal transfer path (admission, bounce, failover, repair drain). A
// down scheduler parks the job until its repair.
func (e *Engine) deliverToScheduler(s *Scheduler, ctx *JobCtx) {
	if s.down {
		s.parked = append(s.parked, ctx)
		e.Metrics.JobsParked++
		return
	}
	s.own(ctx)
	e.policy.OnJob(s, ctx)
}

// armEstimatorCrash schedules est's next crash/repair cycle.
func (e *Engine) armEstimatorCrash(est *Estimator) {
	gap := e.fs.est.Exp(e.Cfg.Faults.EstimatorMTBF)
	if gap <= 0 {
		return
	}
	e.K.After(gap, func() {
		e.crashEstimator(est, e.Cfg.Faults.EstimatorRepair)
		e.K.After(e.Cfg.Faults.EstimatorRepair, func() {
			e.repairEstimator(est)
			e.armEstimatorCrash(est)
		})
	})
}

// crashEstimator takes the estimator down, destroying its buffered
// status and queued CPU work. Its resources fall back to direct
// scheduler updates until the repair (see sendStatusUpdate).
func (e *Engine) crashEstimator(est *Estimator, repair sim.Time) {
	if est.down {
		return
	}
	est.down = true
	est.epoch++
	for c := range est.buffer {
		est.buffer[c] = est.buffer[c][:0]
	}
	e.Metrics.EstimatorCrashes++
	e.Metrics.EstimatorDowntime += repair
	if e.Tracer.On() {
		e.Tracer.Tracef("fault", "estimator %d crashed", est.id)
	}
}

// repairEstimator brings the estimator back empty.
func (e *Engine) repairEstimator(est *Estimator) {
	est.down = false
	if e.Tracer.On() {
		e.Tracer.Tracef("fault", "estimator %d repaired", est.id)
	}
}

// protoSend carries one protocol payload under the armed fault model.
// The message can be lost in transit (random loss, or a severed access
// link at either end) or arrive at a dead scheduler; each loss is
// detected by a sender-side timeout and retransmitted with binary
// backoff until the retry budget runs out, at which point abandon (when
// non-nil) decides the payload's fate.
func (e *Engine) protoSend(fromNode int, dst *Scheduler, net sim.Time, attempt int, deliver, abandon func()) {
	f := e.Cfg.Faults
	lost := e.fs.outages.SeveredPath(fromNode, dst.node, e.K.Now())
	if !lost && e.fs.scriptedLoss(e.K.Now()) {
		lost = true
	}
	if !lost && f.MsgLossProb > 0 && e.fs.msg.Bool(f.MsgLossProb) {
		lost = true
	}
	if lost {
		e.Metrics.MsgsLost++
		e.retryOrAbandon(fromNode, dst, net, attempt, deliver, abandon)
		return
	}
	//lint:allow hotalloc the liveness-checking wrapper exists only with protocol faults armed; the churn gate budgets it
	wrapped := func() {
		if dst.down {
			e.Metrics.MsgsLost++
			e.retryOrAbandon(fromNode, dst, net, attempt, deliver, abandon)
			return
		}
		deliver()
	}
	if e.mw != nil {
		e.mw.enqueue(net, wrapped)
		return
	}
	e.K.After(net, wrapped)
}

// retryOrAbandon retransmits a lost message after RetryTimeout*2^attempt,
// or gives up once the budget is exhausted.
func (e *Engine) retryOrAbandon(fromNode int, dst *Scheduler, net sim.Time, attempt int, deliver, abandon func()) {
	if attempt >= e.Cfg.Faults.MaxRetries {
		e.Metrics.MsgsAbandoned++
		if abandon != nil {
			abandon()
		}
		return
	}
	e.Metrics.MsgRetries++
	backoff := e.Cfg.Faults.RetryTimeout * float64(uint(1)<<uint(attempt))
	//lint:allow hotalloc retry fires only after a lost message — fault path, not steady state
	e.K.After(backoff, func() {
		e.protoSend(fromNode, dst, net, attempt+1, deliver, abandon)
	})
}

// own records that the scheduler is currently responsible for the job:
// it holds it in a protocol session or its decision queue. Ownership is
// tracked only while protocol faults are armed; a crash re-homes every
// owned job.
func (s *Scheduler) own(ctx *JobCtx) {
	if s.eng.fs == nil {
		return
	}
	if s.owned == nil {
		//lint:allow hotalloc lazy one-time map init, first owned job per scheduler only
		s.owned = make(map[int]*JobCtx)
	}
	s.owned[ctx.Job.ID] = ctx
}

// disown releases responsibility for the job (it was dispatched,
// transferred away, or dropped). It reports false when the scheduler no
// longer holds the job — the signature of a stale protocol action from
// a session that a crash already disbanded. Fault-free it always
// succeeds.
func (s *Scheduler) disown(ctx *JobCtx) bool {
	if s.eng.fs == nil {
		return true
	}
	if cur, ok := s.owned[ctx.Job.ID]; ok && cur == ctx {
		delete(s.owned, ctx.Job.ID)
		return true
	}
	return false
}

// Down reports whether the scheduler is crashed.
func (s *Scheduler) Down() bool { return s.down }

// ParkedCount reports how many jobs are currently parked on the
// scheduler waiting out its downtime.
func (s *Scheduler) ParkedCount() int { return len(s.parked) }

// OwnedCount reports how many jobs the scheduler is currently
// responsible for (always 0 without armed protocol faults).
func (s *Scheduler) OwnedCount() int { return len(s.owned) }

// Down reports whether the estimator is crashed.
func (e *Estimator) Down() bool { return e.down }
