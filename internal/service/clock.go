package service

import "time"

// Clock is the daemon's injectable time source: now-reads for log
// timestamps and latency accounting, sleeps for supervised-retry
// backoff, and timer channels for execution deadlines and the circuit
// breaker's cooldown. Production uses the wall clock; tests inject a
// fake so backoff, deadlines and breaker transitions run instantly and
// deterministically. Nothing simulation-visible ever flows from it —
// sim results depend only on the spec — which is why the wall-clock
// reads below are sanctioned, annotated exceptions to the module's
// nowallclock rule.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers one value once d has
	// elapsed.
	//lint:allow nokernelgoroutines the deadline timer channel is service-layer plumbing; no simulation state crosses it
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock; its three methods are the only
// real wall-clock touch points in the service layer.
type realClock struct{}

func (realClock) Now() time.Time {
	//lint:allow nowallclock the daemon timestamps logs and measures request latency; simulation results never depend on wall time
	return time.Now()
}

func (realClock) Sleep(d time.Duration) {
	//lint:allow nowallclock supervised-retry backoff is real-time flow control in the daemon, outside any simulation
	time.Sleep(d)
}

//lint:allow nokernelgoroutines the deadline timer channel is service-layer plumbing; no simulation state crosses it
func (realClock) After(d time.Duration) <-chan time.Time {
	//lint:allow nowallclock execution deadlines arm real timers in the daemon; the simulations they bound stay on virtual time
	return time.After(d)
}
