// Package loadgen is the scale-qualifying load harness for rmscaled.
//
// One iteration submits Objects experiment submissions drawn from
// Distinct underlying specs through the full HTTP API with Clients
// concurrent clients, waits for every distinct experiment to finish
// (via the streaming endpoint — no polling sleep), fetches every
// result, and then audits the daemon's accounting:
//
//   - every distinct spec executed exactly once (dedup collapsed the
//     other Objects-Distinct submissions onto in-flight work or the
//     shared store);
//   - no execution failed;
//   - the result store holds exactly Distinct payloads.
//
// The audited counts are deterministic in the options, which is what
// lets internal/perfbench gate them exactly; the latency percentiles,
// throughput and queue-depth peaks it also reports are machine-load
// facts, recorded ungated for trend reading — the same split
// contiv/netplugin's policyScale and OSM's scale framework use.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	//lint:allow nokernelgoroutines the load generator's concurrent clients are the point of the harness; the simulations they trigger run single-threaded in the daemon
	"sync"
	"time"

	"rmscale/internal/rms"
	"rmscale/internal/service"
	"rmscale/internal/stats"
)

// now is the harness's one wall-clock read site: client-observed
// latency is wall time by definition.
func now() time.Time {
	//lint:allow nowallclock the load harness measures real client-observed latency; nothing simulation-visible flows from it
	return time.Now()
}

// backoff pauses a client that was refused with 429 before it retries.
func backoff(attempt int) {
	d := time.Duration(attempt) * time.Millisecond
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	//lint:allow nowallclock admission-control backoff is real-time flow control in the load client, outside any simulation
	time.Sleep(d)
}

// Options configures one load iteration.
type Options struct {
	// BaseURL targets a running rmscaled (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Objects is the total number of submissions; <= 0 picks 1000.
	Objects int
	// Distinct is the number of distinct specs the submissions are
	// drawn from; <= 0 picks Objects/8 (minimum 1). Must not exceed
	// Objects.
	Distinct int
	// Clients is the number of concurrent client workers; <= 0 picks 8.
	Clients int
	// Seed diversifies the distinct specs; same seed, same spec set.
	Seed int64
	// Horizon is the simulated duration of each "sim" object; <= 0
	// picks 250 (a few-millisecond simulation).
	Horizon float64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o *Options) defaults() error {
	if o.Objects <= 0 {
		o.Objects = 1000
	}
	if o.Distinct <= 0 {
		o.Distinct = o.Objects / 8
		if o.Distinct < 1 {
			o.Distinct = 1
		}
	}
	if o.Distinct > o.Objects {
		return fmt.Errorf("loadgen: Distinct %d exceeds Objects %d", o.Distinct, o.Objects)
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Horizon <= 0 {
		o.Horizon = 250
	}
	return nil
}

// Metrics is the outcome of one load iteration.
type Metrics struct {
	Objects  int `json:"objects"`
	Distinct int `json:"distinct"`
	Clients  int `json:"clients"`

	// Deterministic accounting (exact-gated in perfbench).
	Executions int64 `json:"executions"`
	DedupHits  int64 `json:"dedup_hits"`
	StoreLen   int   `json:"store_len"`

	// Client-side admission pressure: submissions that were refused
	// with 429 and retried until accepted.
	Retries429 int64 `json:"retries_429"`

	// Latency percentiles in milliseconds, per request type.
	SubmitP50Ms float64 `json:"submit_p50_ms"`
	SubmitP99Ms float64 `json:"submit_p99_ms"`
	StatusP50Ms float64 `json:"status_p50_ms"`
	StatusP99Ms float64 `json:"status_p99_ms"`
	FetchP50Ms  float64 `json:"fetch_p50_ms"`
	FetchP99Ms  float64 `json:"fetch_p99_ms"`

	// Throughput: completed objects per wall second.
	ObjectsPerSec float64 `json:"objects_per_sec"`
	WallSec       float64 `json:"wall_sec"`

	// Daemon-side peaks.
	MaxQueueDepth int `json:"max_queue_depth"`
}

// specAt derives the j-th distinct spec: models rotate through the
// paper's roster, seeds advance, the horizon keeps each simulation a
// few milliseconds.
func specAt(o Options, j int) service.ExperimentSpec {
	names := rms.Names()
	return service.ExperimentSpec{
		Kind:    service.KindSim,
		Model:   names[j%len(names)],
		Seed:    o.Seed + int64(j),
		Horizon: o.Horizon,
	}
}

// client is one load worker's HTTP state plus locally collected
// samples (merged after the join, so no lock contention during the
// run).
type client struct {
	id      string
	http    *http.Client
	base    string
	submit  []float64
	status  []float64
	fetch   []float64
	retries int64
}

func (c *client) get(path string, samples *[]float64) (int, []byte, error) {
	t0 := now()
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("X-Rmscale-Client", c.id)
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if samples != nil {
		*samples = append(*samples, float64(now().Sub(t0).Microseconds())/1000)
	}
	return resp.StatusCode, body, err
}

// submitOne POSTs the spec, retrying on 429 until accepted.
func (c *client) submitOne(spec service.ExperimentSpec) error {
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	for attempt := 1; ; attempt++ {
		t0 := now()
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/experiments", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Rmscale-Client", c.id)
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			c.submit = append(c.submit, float64(now().Sub(t0).Microseconds())/1000)
			return nil
		case http.StatusTooManyRequests:
			c.retries++
			backoff(attempt)
		default:
			return fmt.Errorf("loadgen: submit %s: HTTP %d: %s", spec, resp.StatusCode, body)
		}
	}
}

// awaitDone streams the experiment's status until it is terminal.
func (c *client) awaitDone(id string) error {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/experiments/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Rmscale-Client", c.id)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: stream %s: HTTP %d", id, resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var last service.Status
	for {
		if err := dec.Decode(&last); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("loadgen: stream %s: %w", id, err)
		}
		if last.State.Terminal() {
			break
		}
	}
	if last.State != service.StateDone {
		return fmt.Errorf("loadgen: experiment %s ended %s: %s", id, last.State, last.Error)
	}
	return nil
}

// Run drives one load iteration against the daemon at opts.BaseURL.
func Run(opts Options) (Metrics, error) {
	if err := opts.defaults(); err != nil {
		return Metrics{}, err
	}
	ids := make([]string, opts.Distinct)
	for j := range ids {
		id, err := specAt(opts, j).ID()
		if err != nil {
			return Metrics{}, err
		}
		ids[j] = id
	}

	clients := make([]*client, opts.Clients)
	for c := range clients {
		clients[c] = &client{
			id:   fmt.Sprintf("loadgen-%d", c),
			http: &http.Client{},
			base: opts.BaseURL,
		}
	}

	start := now()
	var wg sync.WaitGroup
	errs := make([]error, opts.Clients)
	for c := range clients {
		wg.Add(1)
		//lint:allow nokernelgoroutines one goroutine per concurrent load client is the harness's reason to exist
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			// Submission phase: worker c owns submissions i ≡ c (mod
			// Clients); submission i carries spec i mod Distinct, so
			// every spec is submitted ~Objects/Distinct times.
			for i := c; i < opts.Objects; i += opts.Clients {
				if err := cl.submitOne(specAt(opts, i%opts.Distinct)); err != nil {
					errs[c] = err
					return
				}
			}
			// Completion phase: worker c waits on distinct specs j ≡ c
			// (mod Clients) — one status poll for the latency sample,
			// then the stream until terminal, then the result fetch.
			for j := c; j < opts.Distinct; j += opts.Clients {
				code, _, err := cl.get("/v1/experiments/"+ids[j], &cl.status)
				if err != nil {
					errs[c] = err
					return
				}
				if code != http.StatusOK {
					errs[c] = fmt.Errorf("loadgen: status %s: HTTP %d", ids[j], code)
					return
				}
				if err := cl.awaitDone(ids[j]); err != nil {
					errs[c] = err
					return
				}
				code, body, err := cl.get("/v1/experiments/"+ids[j]+"/result", &cl.fetch)
				if err != nil {
					errs[c] = err
					return
				}
				if code != http.StatusOK || len(body) == 0 {
					errs[c] = fmt.Errorf("loadgen: result %s: HTTP %d (%d bytes)", ids[j], code, len(body))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := now().Sub(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return Metrics{}, err
		}
	}

	// Final accounting from the daemon, then the dedup audit.
	code, body, err := clients[0].get("/v1/stats", nil)
	if err != nil {
		return Metrics{}, err
	}
	if code != http.StatusOK {
		return Metrics{}, fmt.Errorf("loadgen: stats: HTTP %d", code)
	}
	var st service.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return Metrics{}, fmt.Errorf("loadgen: decoding stats: %w", err)
	}

	m := Metrics{
		Objects:       opts.Objects,
		Distinct:      opts.Distinct,
		Clients:       opts.Clients,
		Executions:    st.Executions,
		DedupHits:     st.DedupHits(),
		StoreLen:      st.StoreLen,
		WallSec:       wall,
		MaxQueueDepth: st.MaxQueueDepth,
	}
	if wall > 0 {
		m.ObjectsPerSec = float64(opts.Objects) / wall
	}
	var submit, status, fetch []float64
	for _, cl := range clients {
		submit = append(submit, cl.submit...)
		status = append(status, cl.status...)
		fetch = append(fetch, cl.fetch...)
		m.Retries429 += cl.retries
	}
	m.SubmitP50Ms, m.SubmitP99Ms = pctl(submit)
	m.StatusP50Ms, m.StatusP99Ms = pctl(status)
	m.FetchP50Ms, m.FetchP99Ms = pctl(fetch)

	// The audit: dedup must have collapsed every repeated submission.
	switch {
	case st.Failed != 0:
		return m, fmt.Errorf("loadgen: %d execution(s) failed", st.Failed)
	case m.Executions != int64(opts.Distinct):
		return m, fmt.Errorf("loadgen: %d executions for %d distinct specs — dedup broke (every distinct spec must execute exactly once)",
			m.Executions, opts.Distinct)
	case m.DedupHits != int64(opts.Objects-opts.Distinct):
		return m, fmt.Errorf("loadgen: %d dedup hits for %d submissions over %d specs, want %d",
			m.DedupHits, opts.Objects, opts.Distinct, opts.Objects-opts.Distinct)
	case m.StoreLen != opts.Distinct:
		return m, fmt.Errorf("loadgen: store holds %d results, want %d", m.StoreLen, opts.Distinct)
	}
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "loadgen: %d objects (%d distinct) in %.2fs: %.0f obj/s, submit p99 %.2fms, %d retries, queue peak %d\n",
			opts.Objects, opts.Distinct, wall, m.ObjectsPerSec, m.SubmitP99Ms, m.Retries429, m.MaxQueueDepth)
	}
	return m, nil
}

// pctl returns the p50 and p99 of the samples (0 when empty).
func pctl(xs []float64) (p50, p99 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	return stats.Percentile(xs, 50), stats.Percentile(xs, 99)
}

// RunInProcess starts a daemon with cfg, serves it on a loopback
// listener, runs one load iteration against it and tears everything
// down. It is what `rmscaled loadtest`, the perfbench service metrics
// and `make loadtest` share.
func RunInProcess(opts Options, cfg service.Config) (Metrics, error) {
	d, err := service.New(cfg)
	if err != nil {
		return Metrics{}, err
	}
	defer d.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Metrics{}, err
	}
	srv := &http.Server{Handler: service.NewServer(d).Handler()}
	//lint:allow nokernelgoroutines the HTTP server needs its own accept loop while the harness drives requests from this goroutine
	go srv.Serve(ln)
	defer srv.Close()
	opts.BaseURL = "http://" + ln.Addr().String()
	return Run(opts)
}
