package perfbench

import (
	"context"
	"fmt"
	"os"
	"testing"

	"rmscale/internal/service"
	"rmscale/internal/service/loadgen"
)

// Load-iteration shape for the service metrics: 1000 submitted
// experiment objects over 125 distinct specs from 8 concurrent
// clients, the qualifying scale of ISSUE's load harness. The dedup
// counts these produce are pure functions of the shape, which is what
// lets the harness gate them exactly.
const (
	loadObjects  = 1000
	loadDistinct = 125
	loadClients  = 8
	loadHorizon  = 250
)

// serviceMetrics runs one full load iteration against an in-process
// rmscaled (real executor, disk-backed store, real HTTP) and condenses
// it:
//
//   - the dedup accounting (executions, dedup hits, store size) is
//     deterministic in the iteration shape and exact-gated — a drift
//     means content addressing or admission bookkeeping broke;
//   - allocations on the hot dedup-hit path (submit + status + result
//     of an already-stored spec) are max-gated;
//   - latency percentiles, throughput and queue peaks are machine
//     facts, recorded ungated.
func serviceMetrics() ([]Metric, error) {
	dir, err := os.MkdirTemp("", "perfbench-service-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	m, err := loadgen.RunInProcess(loadgen.Options{
		Objects:  loadObjects,
		Distinct: loadDistinct,
		Clients:  loadClients,
		Seed:     benchSeed,
		Horizon:  loadHorizon,
	}, service.Config{Dir: dir, Shards: 2, QueueCap: 256})
	if err != nil {
		return nil, fmt.Errorf("perfbench: service load iteration: %w", err)
	}
	out := []Metric{
		{Name: "service/loadgen/objects", Value: float64(m.Objects), Unit: "objects", Gate: GateExact},
		{Name: "service/loadgen/executions", Value: float64(m.Executions), Unit: "execs", Gate: GateExact},
		{Name: "service/loadgen/dedup_hits", Value: float64(m.DedupHits), Unit: "hits", Gate: GateExact},
		{Name: "service/loadgen/store_len", Value: float64(m.StoreLen), Unit: "results", Gate: GateExact},
		{Name: "service/loadgen/objects_per_sec", Value: m.ObjectsPerSec, Unit: "objects/s", Gate: GateNone},
		{Name: "service/loadgen/wall_sec", Value: m.WallSec, Unit: "s", Gate: GateNone},
		{Name: "service/loadgen/submit_p50_ms", Value: m.SubmitP50Ms, Unit: "ms", Gate: GateNone},
		{Name: "service/loadgen/submit_p99_ms", Value: m.SubmitP99Ms, Unit: "ms", Gate: GateNone},
		{Name: "service/loadgen/status_p99_ms", Value: m.StatusP99Ms, Unit: "ms", Gate: GateNone},
		{Name: "service/loadgen/fetch_p99_ms", Value: m.FetchP99Ms, Unit: "ms", Gate: GateNone},
		{Name: "service/loadgen/max_queue_depth", Value: float64(m.MaxQueueDepth), Unit: "jobs", Gate: GateNone},
		{Name: "service/loadgen/retries_429", Value: float64(m.Retries429), Unit: "retries", Gate: GateNone},
	}
	alloc, err := dedupHitAllocs()
	if err != nil {
		return nil, err
	}
	out = append(out, Metric{
		Name: "service/dedup_hit/allocs", Value: alloc, Unit: "allocs", Gate: GateMax,
	})
	return out, nil
}

// dedupHitAllocs measures allocations on the daemon's dedup fast path:
// submitting an already-stored spec, polling its status and fetching
// its result — the request mix that dominates a saturated service. The
// HTTP layer is excluded (its allocations belong to net/http), so the
// number gates our bookkeeping, not the standard library's.
func dedupHitAllocs() (float64, error) {
	payload := []byte(`{"ok":true}`)
	d, err := service.New(service.Config{
		Shards: 1,
		Exec: func(context.Context, service.ExperimentSpec, string) ([]byte, error) {
			return payload, nil
		},
	})
	if err != nil {
		return 0, err
	}
	defer d.Close()
	spec := service.ExperimentSpec{Kind: service.KindSim, Model: "LOWEST", Seed: benchSeed}
	st, err := d.Submit(spec, "seed")
	if err != nil {
		return 0, err
	}
	for !st.State.Terminal() {
		next, ok := d.Await(st.ID, st.State)
		if !ok {
			return 0, fmt.Errorf("perfbench: seeded experiment vanished")
		}
		st = next
	}
	if st.State != service.StateDone {
		return 0, fmt.Errorf("perfbench: seeded experiment failed: %s", st.Error)
	}
	var submitErr error
	allocs := testing.AllocsPerRun(200, func() {
		s, err := d.Submit(spec, "probe")
		if err != nil || !s.Dedup {
			submitErr = fmt.Errorf("dedup submit: %+v, %v", s, err)
			return
		}
		if _, ok := d.Status(st.ID); !ok {
			submitErr = fmt.Errorf("status lost %s", st.ID)
			return
		}
		if _, ok := d.Result(st.ID); !ok {
			submitErr = fmt.Errorf("result lost %s", st.ID)
		}
	})
	if submitErr != nil {
		return 0, submitErr
	}
	return allocs, nil
}
