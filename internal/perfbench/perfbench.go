// Package perfbench is the repository's benchmark-regression harness.
//
// It runs the kernel micro-benchmarks, one smoke-fidelity grid
// simulation per RMS model, and one rmscaled load iteration (1000
// experiment objects over HTTP against an in-process daemon, see
// service.go), condenses them into a small set of named metrics
// (ns/event, allocs/event, events/sec, per-model engine throughput,
// service dedup counts and latency percentiles) and emits a
// machine-readable report (the committed BENCH_sim.json baseline).
// Compare gates a fresh report against the baseline:
//
//   - "exact" metrics (simulated event counts) are deterministic in the
//     seed and must not move at all — a drift means the optimisation
//     changed model behaviour, the same signal the golden files carry;
//   - "max" metrics (allocations per event/run) are deterministic for a
//     given Go version and may not regress beyond a small tolerance;
//   - "min" metrics (the sim/par parallel speedup, see par.go) may not
//     fall below the baseline beyond the same tolerance;
//   - ungated metrics (wall-clock times, derived rates) vary with the
//     machine and are recorded for trend reading only.
//
// The harness runs from `rmscale bench` (see cmd/rmscale) and from the
// `make bench` / `make benchcheck` targets.
package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"testing"
	"time"

	"rmscale"
	"rmscale/internal/sim"
)

// Gate classifies how Compare treats a metric.
const (
	// GateNone marks machine-dependent metrics: recorded, never gated.
	GateNone = "none"
	// GateMax marks metrics that must not exceed baseline*(1+tolerance).
	GateMax = "max"
	// GateMin marks metrics that must not fall below
	// baseline*(1-tolerance) — parallel speedups, where smaller is the
	// regression.
	GateMin = "min"
	// GateExact marks metrics that must match the baseline exactly.
	GateExact = "exact"
)

// Metric is one named measurement.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Gate  string  `json:"gate"`
}

// Report is one harness run, the unit both committed as the baseline
// and produced for comparison. Metrics are sorted by name so the JSON
// encoding is stable.
type Report struct {
	// Go records the toolchain that produced the report; allocation
	// counts are deterministic only within one Go version, so a gate
	// failure right after a toolchain bump usually means "refresh the
	// baseline", not "regression".
	Go      string   `json:"go"`
	Seed    int64    `json:"seed"`
	Metrics []Metric `json:"metrics"`
}

// benchSeed fixes every simulation the harness runs.
const benchSeed = 1

// Run executes the harness and returns the report.
func Run() (Report, error) {
	rep := Report{Go: runtime.Version(), Seed: benchSeed}
	rep.Metrics = append(rep.Metrics, kernelMetrics()...)
	for _, name := range rmscale.ModelNames() {
		ms, err := engineMetrics(name)
		if err != nil {
			return Report{}, err
		}
		rep.Metrics = append(rep.Metrics, ms...)
	}
	ms, err := serviceMetrics()
	if err != nil {
		return Report{}, err
	}
	rep.Metrics = append(rep.Metrics, ms...)
	pms, err := parMetrics()
	if err != nil {
		return Report{}, err
	}
	rep.Metrics = append(rep.Metrics, pms...)
	sort.Slice(rep.Metrics, func(i, j int) bool {
		return rep.Metrics[i].Name < rep.Metrics[j].Name
	})
	return rep, nil
}

// kernelMetrics runs the kernel micro-benchmarks through
// testing.Benchmark and condenses each into ns/event, allocs/event and
// events/sec.
func kernelMetrics() []Metric {
	var out []Metric
	add := func(prefix string, r testing.BenchmarkResult) {
		ns := float64(r.NsPerOp())
		out = append(out,
			Metric{Name: prefix + "/ns_per_event", Value: ns, Unit: "ns", Gate: GateNone},
			Metric{Name: prefix + "/allocs_per_event", Value: float64(r.AllocsPerOp()), Unit: "allocs", Gate: GateMax},
		)
		if ns > 0 {
			out = append(out, Metric{Name: prefix + "/events_per_sec", Value: 1e9 / ns, Unit: "events/s", Gate: GateNone})
		}
	}
	add("kernel/steady", testing.Benchmark(benchKernelSteady))
	add("kernel/cancel", testing.Benchmark(benchKernelCancel))
	add("kernel/ticker", testing.Benchmark(benchTickerCycle))
	return out
}

// benchKernelSteady measures the self-rescheduling steady state: a
// fixed population of events, each firing and rescheduling itself —
// the regime every grid run settles into, and the regime the kernel's
// free list plus implicit heap keep allocation-free.
func benchKernelSteady(b *testing.B) {
	k := sim.NewKernel()
	const fan = 512
	for i := 0; i < fan; i++ {
		var fn func()
		fn = func() { k.After(1, fn) }
		k.Schedule(sim.Time(i)/fan, fn)
	}
	for k.Processed() < 4*fan { // warm the free list
		k.Step()
	}
	b.ResetTimer()
	target := k.Processed() + uint64(b.N)
	for k.Processed() < target {
		k.Step()
	}
}

// benchKernelCancel adds the cancellation path: every firing event
// cancels a previously scheduled sibling and schedules a fresh one,
// exercising lazy deletion and struct recycling together.
func benchKernelCancel(b *testing.B) {
	k := sim.NewKernel()
	var pending *sim.Event
	var fn func()
	fn = func() {
		k.Cancel(pending)
		pending = k.After(2, func() {})
		k.After(1, fn)
	}
	k.After(1, fn)
	for k.Processed() < 64 {
		k.Step()
	}
	b.ResetTimer()
	target := k.Processed() + uint64(b.N)
	for k.Processed() < target {
		k.Step()
	}
}

// benchTickerCycle measures one ticker rearm cycle, the
// highest-frequency periodic load in a grid run.
func benchTickerCycle(b *testing.B) {
	k := sim.NewKernel()
	n := 0
	sim.NewTicker(k, 1, func() { n++ })
	for k.Processed() < 64 {
		k.Step()
	}
	b.ResetTimer()
	target := k.Processed() + uint64(b.N)
	for k.Processed() < target {
		k.Step()
	}
	if n == 0 {
		b.Fatal("ticker never fired")
	}
}

// engineMetrics runs one base-grid smoke simulation for the model and
// reports its event count (exact-gated: the simulation is deterministic
// in the seed), allocations per event (max-gated) and throughput.
func engineMetrics(model string) ([]Metric, error) {
	run := func() (uint64, error) {
		p, err := rmscale.ModelByName(model)
		if err != nil {
			return 0, err
		}
		cfg := rmscale.DefaultConfig()
		cfg.Seed = benchSeed
		eng, err := rmscale.NewEngine(cfg, p)
		if err != nil {
			return 0, err
		}
		eng.Run()
		return eng.K.Processed(), nil
	}
	start := time.Now()
	events, err := run()
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if events == 0 {
		return nil, fmt.Errorf("perfbench: model %s processed no events", model)
	}
	var runErr error
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := run(); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	prefix := "engine/" + model
	out := []Metric{
		{Name: prefix + "/events", Value: float64(events), Unit: "events", Gate: GateExact},
		{Name: prefix + "/allocs_per_event", Value: allocs / float64(events), Unit: "allocs", Gate: GateMax},
	}
	if s := elapsed.Seconds(); s > 0 {
		out = append(out, Metric{Name: prefix + "/events_per_sec", Value: float64(events) / s, Unit: "events/s", Gate: GateNone})
	}
	return out, nil
}

// WriteJSON encodes the report, indented, with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes a report written by WriteJSON.
func ReadReport(rd io.Reader) (Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return Report{}, fmt.Errorf("perfbench: decode report: %w", err)
	}
	return r, nil
}

// Compare gates cur against base with the given relative tolerance on
// max-gated metrics (e.g. 0.1 allows a 10% allocation regression before
// failing). It returns one human-readable violation per failed gate;
// an empty slice means the report is within budget. The gate of record
// is the baseline's: re-classifying a metric takes a baseline refresh.
func Compare(base, cur Report, tolerance float64) []string {
	curByName := make(map[string]Metric, len(cur.Metrics))
	for _, m := range cur.Metrics {
		curByName[m.Name] = m
	}
	var bad []string
	for _, b := range base.Metrics {
		if b.Gate == GateNone {
			continue
		}
		c, ok := curByName[b.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: gated metric missing from current report", b.Name))
			continue
		}
		switch b.Gate {
		case GateExact:
			if c.Value != b.Value {
				bad = append(bad, fmt.Sprintf("%s: %.6g, baseline %.6g (exact gate: the simulation changed behaviour)",
					b.Name, c.Value, b.Value))
			}
		case GateMax:
			if limit := b.Value * (1 + tolerance); c.Value > limit {
				bad = append(bad, fmt.Sprintf("%s: %.6g exceeds baseline %.6g by more than %.0f%%",
					b.Name, c.Value, b.Value, tolerance*100))
			}
		case GateMin:
			if limit := b.Value * (1 - tolerance); c.Value < limit {
				bad = append(bad, fmt.Sprintf("%s: %.6g falls below baseline %.6g by more than %.0f%%",
					b.Name, c.Value, b.Value, tolerance*100))
			}
		}
	}
	return bad
}
