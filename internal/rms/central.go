package rms

import (
	"rmscale/internal/grid"
	"rmscale/internal/workload"
)

const localClass = workload.Local

// Central is the paper's CENTRAL model: a single scheduler makes
// decisions for every resource in the system, receiving periodic
// (change-suppressed) updates from all of them. Every decision scans the
// full pool, which is what makes the model cheap at small scale and
// unscalable at large scale.
type Central struct{}

// NewCentral returns the CENTRAL model.
func NewCentral() *Central { return &Central{} }

// Name implements grid.Policy.
func (*Central) Name() string { return "CENTRAL" }

// Central implements grid.Policy: the engine collapses the cluster
// layout to one scheduler.
func (*Central) Central() bool { return true }

// UsesMiddleware implements grid.Policy.
func (*Central) UsesMiddleware() bool { return false }

// Attach implements grid.Policy.
func (*Central) Attach(*grid.Engine) {}

// OnJob schedules every job on the believed least loaded resource of
// the whole pool.
func (*Central) OnJob(s *grid.Scheduler, ctx *grid.JobCtx) {
	placeLocally(s, ctx)
}

// OnMessage implements grid.Policy; CENTRAL has no protocol messages.
func (*Central) OnMessage(*grid.Scheduler, *grid.Message) {}

// OnStatus implements grid.Policy.
func (*Central) OnStatus(*grid.Scheduler, []int) {}

// OnTick implements grid.Policy.
func (*Central) OnTick(*grid.Scheduler) {}
