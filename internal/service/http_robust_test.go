package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rmscale/internal/fsutil"
)

// flakyWriteFS fails durable file writes (the store's path) while
// letting journal appends and every other op through — a disk that
// corrupts new files but still appends.
type flakyWriteFS struct {
	fsutil.RealFS
	err error
}

func (f flakyWriteFS) WriteFileAtomic(string, []byte, os.FileMode) error { return f.err }

// appendFailFS fails journal appends while letting store writes
// through — durability lost mid-flight.
type appendFailFS struct {
	fsutil.RealFS
	err error
}

func (f appendFailFS) AppendSync(fsutil.File, []byte) error { return f.err }

// TestHTTPStreamClientDisconnectReleasesHandler pins the streaming
// leak fix: a client hanging up mid-stream must release its parked
// handler goroutine promptly, not strand it on the condition variable
// until the next unrelated state change.
func TestHTTPStreamClientDisconnectReleasesHandler(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		<-release
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defer close(release)
	srv := httptest.NewServer(NewServer(d).Handler())
	defer srv.Close()

	spec := ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}
	resp, body := postSpec(t, srv.URL, spec, "leakcheck")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st Status
	mustDecode(t, body, &st)

	baseline := runtime.NumGoroutine()
	const streams = 8
	tr := &http.Transport{}
	cl := &http.Client{Transport: tr}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/experiments/"+st.ID+"/stream", nil)
			if err != nil {
				return
			}
			resp, err := cl.Do(req)
			if err != nil {
				return
			}
			// Drain until the disconnect: the first status line arrives,
			// then the handler parks awaiting the next state change.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	// Let every stream deliver its first line and park.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() < baseline+streams {
		if time.Now().After(deadline) {
			t.Fatalf("streams never parked: baseline %d now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel() // every client hangs up mid-stream
	wg.Wait()
	tr.CloseIdleConnections()
	deadline = time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("stream handlers leaked after disconnect: baseline %d, still %d", baseline, n)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestHTTPBreakerSheds503 pins the breaker's client-visible shape:
// while open, submissions get 503 with a cooldown-sized Retry-After
// and /v1/healthz reports degraded.
func TestHTTPBreakerSheds503(t *testing.T) {
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		return nil, errors.New("backend down")
	}
	d, err := New(Config{Shards: 1, Exec: exec, BreakerThreshold: 1, BreakerCooldown: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(NewServer(d).Handler())
	defer srv.Close()

	resp, body := postSpec(t, srv.URL, ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st Status
	mustDecode(t, body, &st)
	waitTerminal(t, d, st.ID) // the failure trips the threshold-1 breaker

	resp, body = postSpec(t, srv.URL, ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 2}, "c")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit: HTTP %d: %s, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "circuit breaker") {
		t.Fatalf("shed body does not name the breaker: %s", body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After = %q, want 1..60 seconds", resp.Header.Get("Retry-After"))
	}

	resp, body = get(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var h Health
	mustDecode(t, body, &h)
	if h.Status != "degraded" || !h.BreakerOpen || h.RetryAfterSec < 1 {
		t.Fatalf("healthz = %+v, want degraded with breaker open", h)
	}
}

// TestHTTPHealthzDegradedStore: a store fallen back to memory-only
// keeps serving results and says so on /v1/healthz and /v1/stats.
func TestHTTPHealthzDegradedStore(t *testing.T) {
	d, err := New(Config{
		Dir: t.TempDir(), Shards: 1, Exec: fakeExec,
		FS: flakyWriteFS{err: errors.New("io error: device lost")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(NewServer(d).Handler())
	defer srv.Close()

	resp, body := postSpec(t, srv.URL, ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st Status
	mustDecode(t, body, &st)
	if fin := waitTerminal(t, d, st.ID); fin.State != StateDone {
		t.Fatalf("execution under failing disk ended %s (%s), want done from memory", fin.State, fin.Error)
	}

	// The result still serves (memory tier)...
	resp, body = get(t, srv.URL+"/v1/experiments/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("result under degraded store: HTTP %d (%d bytes)", resp.StatusCode, len(body))
	}
	// ...and the degradation is visible.
	resp, body = get(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var h Health
	mustDecode(t, body, &h)
	if h.Status != "degraded" || h.StoreDegraded == "" {
		t.Fatalf("healthz = %+v, want store degradation surfaced", h)
	}
	var stats Stats
	_, body = get(t, srv.URL+"/v1/stats")
	mustDecode(t, body, &stats)
	if stats.StoreDegraded == "" || !stats.Degraded {
		t.Fatalf("stats = %+v, want store degradation surfaced", stats)
	}
}

// TestHTTPJournalDegraded: a journal whose device dies mid-flight
// stops journaling but keeps accepting work, and says so.
func TestHTTPJournalDegraded(t *testing.T) {
	dir := t.TempDir()
	d1, err := New(Config{Dir: dir, Shards: 1, Exec: fakeExec})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with a journal that refuses appends: the header already
	// exists, so the failure first bites on the next submission.
	d2, err := New(Config{Dir: dir, Shards: 1, Exec: fakeExec, FS: appendFailFS{err: errors.New("journal device gone")}})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	st, err := d2.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if err != nil {
		t.Fatalf("submission refused under journal failure: %v", err)
	}
	if fin := waitTerminal(t, d2, st.ID); fin.State != StateDone {
		t.Fatalf("ended %s (%s), want done", fin.State, fin.Error)
	}
	h := d2.Health()
	if h.Status != "degraded" || h.JournalDegraded == "" {
		t.Fatalf("health = %+v, want journal degradation surfaced", h)
	}
}

// mustDecode unmarshals JSON or fails the test.
func mustDecode(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
}
