package experiments

import (
	"rmscale/internal/grid"
	"rmscale/internal/scale"
)

// meanRuntime is the analytic mean of the default log-uniform runtime
// distribution, used to convert target utilizations into arrival rates.
const meanRuntime = 524.2

// sizes returns the base grid dimensions per fidelity: clusters and
// cluster size for the growing Case 1 grid, and the fixed-size grid the
// other cases hold constant ("network size is 1000 nodes" in the
// paper's Full configuration).
func sizes(fid Fidelity) (c1Clusters, c1Size, fixClusters, fixSize int) {
	switch fid {
	case Smoke:
		return 4, 6, 8, 6
	case Quick:
		return 6, 8, 24, 10
	default:
		return 10, 10, 40, 10
	}
}

// horizon returns the arrival window and drain per fidelity.
func horizon(fid Fidelity) (h, drain float64) {
	switch fid {
	case Smoke:
		return 1200, 1800
	case Quick:
		return 2000, 2500
	default:
		return 2500, 2500
	}
}

// baseConfig assembles the shared skeleton. baseClusters is the
// cluster count of the base (k=1) deployment: the grid middleware the
// S-I family communicates through is a fixed infrastructure element
// provisioned for the base system ("a simple queue with infinite
// capacity and finite but small service time" in the paper), so its
// service time derives from the base size and does not improve as the
// system scales — which is precisely the kind of bottleneck the
// framework is designed to expose.
func baseConfig(fid Fidelity, seed int64, clusters, clusterSize, baseClusters int, util float64) grid.Config {
	cfg := grid.DefaultConfig()
	cfg.Seed = seed
	cfg.Spec.Clusters = clusters
	cfg.Spec.ClusterSize = clusterSize
	cfg.Spec.Estimators = 0
	h, drain := horizon(fid)
	cfg.Horizon = h
	cfg.Drain = drain
	cfg.Workload.Clusters = clusters
	cfg.Workload.Horizon = h
	resources := float64(clusters * clusterSize)
	cfg.Workload.ArrivalRate = util * resources / meanRuntime
	cfg.Protocol.MiddlewareTime = 6.0 / float64(baseClusters)
	// The full testbed provisions RMS nodes tightly enough that the
	// centralized scheduler saturates mid-range when the workload
	// scales against a fixed pool — the effect behind Figure 3's
	// CENTRAL crossover. Smaller fidelities keep generous headroom so
	// short runs stay comparable across models.
	if fid == Full {
		cfg.Costs.SchedulerSpeed = 1.4
	}
	return cfg
}

// applyCommonEnablers maps the tuned vector onto the config for the
// enabler set shared by Cases 1-3 (Table 2/3/4: status update interval,
// neighbourhood set size, network link delay).
func applyCommonEnablers(cfg *grid.Config, x []float64) {
	cfg.Enablers.UpdateInterval = x[0]
	cfg.Enablers.NeighborhoodSize = int(x[1])
	cfg.Enablers.LinkDelayScale = x[2]
}

// commonEnablers is the Table 2/3/4 tuning space.
func commonEnablers(maxNeighbors int) []scale.Enabler {
	if maxNeighbors < 4 {
		maxNeighbors = 4
	}
	return []scale.Enabler{
		{Name: "update-interval", Min: 5, Max: 600, Init: 40},
		{Name: "neighborhood-size", Min: 3, Max: float64(maxNeighbors), Integer: true, Init: 6},
		{Name: "link-delay-scale", Min: 0.25, Max: 4, Init: 1},
	}
}

// Case1 scales the RP by network size (Table 2, Figure 2): the number
// of clusters grows with k, the workload grows in proportion, and the
// RMS grows with the RP (one scheduler per new cluster).
func Case1(fid Fidelity) caseDef {
	c1c, c1s, _, _ := sizes(fid)
	return caseDef{
		id:       1,
		title:    "Figure 2: G(k) scaling the RP by number of nodes",
		enablers: commonEnablers(c1c*3 - 1),
		config: func(fid Fidelity, seed int64, k int, x []float64) grid.Config {
			cfg := baseConfig(fid, seed, c1c*k, c1s, c1c, 0.90)
			applyCommonEnablers(&cfg, x)
			return cfg
		},
	}
}

// Case2 scales the RP by resource service rate (Table 3, Figure 3):
// network size fixed, mu = k, workload grows in proportion so the
// utilization stays constant while everything happens k times faster.
func Case2(fid Fidelity) caseDef {
	_, _, fc, fs := sizes(fid)
	return caseDef{
		id:       2,
		title:    "Figure 3: G(k) scaling the RP by service rate",
		enablers: commonEnablers(fc - 1),
		config: func(fid Fidelity, seed int64, k int, x []float64) grid.Config {
			cfg := baseConfig(fid, seed, fc, fs, fc, 0.90)
			cfg.ServiceRate = float64(k)
			cfg.Workload.ArrivalRate *= float64(k)
			applyCommonEnablers(&cfg, x)
			return cfg
		},
	}
}

// Case3 scales the RMS by the number of status estimators (Table 4,
// Figures 4, 6 and 7): the RP is fixed, estimators grow with k, and the
// workload grows in proportion — so the base runs lightly loaded and
// the top factor approaches saturation, which is where the estimator
// layer's cost and the push models' trigger traffic bite.
func Case3(fid Fidelity) caseDef {
	_, _, fc, fs := sizes(fid)
	baseEst := fc / 5
	if baseEst < 1 {
		baseEst = 1
	}
	return caseDef{
		id:       3,
		title:    "Figure 4: G(k) scaling the RMS by number of estimators",
		enablers: commonEnablers(fc - 1),
		config: func(fid Fidelity, seed int64, k int, x []float64) grid.Config {
			cfg := baseConfig(fid, seed, fc, fs, fc, 0.15)
			cfg.Spec.Estimators = baseEst * k
			cfg.Workload.ArrivalRate *= float64(k)
			applyCommonEnablers(&cfg, x)
			return cfg
		},
	}
}

// Case4 scales the RMS by L_p, the number of neighbour schedulers being
// probed or polled (Table 5, Figure 5). The workload again grows in
// proportion. The tuned enablers follow Table 5: update interval,
// resource volunteering interval, link delay.
func Case4(fid Fidelity) caseDef {
	_, _, fc, fs := sizes(fid)
	baseLp := 2
	return caseDef{
		id:    4,
		title: "Figure 5: G(k) scaling the RMS by L_p",
		// The volunteering interval is bounded above at 200: pushing it
		// to infinity would turn the push models into do-nothing
		// schedulers, which is outside the tuning envelope the paper's
		// scaling enablers represent.
		enablers: []scale.Enabler{
			{Name: "update-interval", Min: 5, Max: 600, Init: 40},
			{Name: "volunteer-interval", Min: 20, Max: 200, Init: 80},
			{Name: "link-delay-scale", Min: 0.25, Max: 4, Init: 1},
		},
		config: func(fid Fidelity, seed int64, k int, x []float64) grid.Config {
			cfg := baseConfig(fid, seed, fc, fs, fc, 0.15)
			cfg.Protocol.Lp = baseLp * k
			cfg.Enablers.NeighborhoodSize = fc - 1
			cfg.Workload.ArrivalRate *= float64(k)
			cfg.Enablers.UpdateInterval = x[0]
			cfg.Enablers.VolunteerInterval = x[1]
			cfg.Enablers.LinkDelayScale = x[2]
			return cfg
		},
	}
}

// RunCase1 .. RunCase4 execute the cases at the given fidelity through
// the runner subsystem with default execution options (GOMAXPROCS
// workers, in-memory cache, no checkpointing). Progress, when non-nil,
// receives (model, point) as tuning lands. Use RunCaseSpec for worker
// count, disk caching, and checkpoint/resume control.

// RunCase1 measures Figure 2.
func RunCase1(fid Fidelity, seed int64, progress func(string, scale.Point)) (*Result, error) {
	return RunCaseSpec(1, RunSpec{Fidelity: fid, Seed: seed, Progress: progress})
}

// RunCase2 measures Figure 3.
func RunCase2(fid Fidelity, seed int64, progress func(string, scale.Point)) (*Result, error) {
	return RunCaseSpec(2, RunSpec{Fidelity: fid, Seed: seed, Progress: progress})
}

// RunCase3 measures Figures 4, 6 and 7.
func RunCase3(fid Fidelity, seed int64, progress func(string, scale.Point)) (*Result, error) {
	return RunCaseSpec(3, RunSpec{Fidelity: fid, Seed: seed, Progress: progress})
}

// RunCase4 measures Figure 5.
func RunCase4(fid Fidelity, seed int64, progress func(string, scale.Point)) (*Result, error) {
	return RunCaseSpec(4, RunSpec{Fidelity: fid, Seed: seed, Progress: progress})
}

// RunAll executes all four cases on one shared pool.
func RunAll(fid Fidelity, seed int64, progress func(string, scale.Point)) ([]*Result, error) {
	return RunAllSpec(RunSpec{Fidelity: fid, Seed: seed, Progress: progress})
}
