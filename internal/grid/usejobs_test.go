package grid

import (
	"testing"

	"rmscale/internal/workload"
)

func traceJobs(n int, clusters int) []*workload.Job {
	out := make([]*workload.Job, n)
	for i := range out {
		out[i] = &workload.Job{
			ID: i, Arrival: float64(i * 10), Runtime: 50, Requested: 60,
			Benefit: 4, Partition: 1, Cluster: i % clusters, Class: workload.Local,
		}
	}
	return out
}

func TestUseJobsReplacesWorkload(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := traceJobs(5, 4)
	if err := e.UseJobs(jobs); err != nil {
		t.Fatal(err)
	}
	sum := e.Run()
	if sum.Jobs != 5 {
		t.Fatalf("ran %d jobs, want 5", sum.Jobs)
	}
	if e.Metrics.JobsCompleted != 5 {
		t.Fatalf("completed %d", e.Metrics.JobsCompleted)
	}
}

func TestUseJobsValidation(t *testing.T) {
	mk := func() *Engine {
		e, err := New(testConfig(), &stubPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	jobs := traceJobs(3, 4)
	jobs[1] = nil
	if err := mk().UseJobs(jobs); err == nil {
		t.Error("nil job accepted")
	}
	jobs = traceJobs(3, 4)
	jobs[2].Arrival = 0
	if err := mk().UseJobs(jobs); err == nil {
		t.Error("out-of-order arrivals accepted")
	}
	jobs = traceJobs(3, 4)
	jobs[0].Cluster = 99
	if err := mk().UseJobs(jobs); err == nil {
		t.Error("bad cluster accepted on a multi-cluster engine")
	}
	jobs = traceJobs(3, 4)
	jobs[0].Cluster = -1
	if err := mk().UseJobs(jobs); err == nil {
		t.Error("negative cluster accepted")
	}
	jobs = traceJobs(3, 4)
	jobs[0].Runtime = 0
	if err := mk().UseJobs(jobs); err == nil {
		t.Error("zero runtime accepted")
	}
}

func TestUseJobsCentralRemap(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{central: true})
	if err != nil {
		t.Fatal(err)
	}
	jobs := traceJobs(6, 4) // clusters 0..3, engine has 1
	if err := e.UseJobs(jobs); err != nil {
		t.Fatal(err)
	}
	for _, j := range e.Jobs() {
		if j.Cluster != 0 {
			t.Fatalf("central remap failed: cluster %d", j.Cluster)
		}
	}
	// The caller's slice must be untouched.
	if jobs[1].Cluster != 1 {
		t.Fatal("UseJobs mutated the caller's jobs")
	}
}

func TestUseJobsAfterRunRejected(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.UseJobs(traceJobs(2, 4)); err == nil {
		t.Fatal("UseJobs accepted after Run")
	}
}
