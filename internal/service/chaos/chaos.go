// Package chaos is the service-level chaos harness for rmscaled: it
// drives a live daemon through scripted faults and asserts the
// self-healing contract the service advertises.
//
// Four phases, one report:
//
//  1. reference — a fault-free daemon executes every spec once; its
//     payloads are the byte-exact ground truth (content addressing
//     makes any later recomputation comparable).
//  2. exec faults — a daemon whose executor panics, hangs past its
//     deadline or fails transiently on scripted specs is driven over
//     the real HTTP surface by concurrent clients that also hang up
//     mid-stream on schedule. Every experiment must still finish and
//     fetch byte-identical to the reference; the daemon must stay
//     alive and healthy.
//  3. restart faults — the daemon's directory is damaged the way
//     crashes damage it (a stored payload corrupted under its
//     checksum, the journal tail torn mid-record) and a fresh daemon
//     reopens it. The valid prefix must resume, the corrupt result
//     must quarantine and re-execute, the torn submission must rerun
//     on resubmission — all byte-identical.
//  4. disk faults — a daemon over a flaky filesystem (every k-th
//     durable write fails) must degrade to memory-only operation,
//     keep completing and serving work, and surface the degradation
//     through its health endpoint rather than exiting.
//
// Any violated assertion lands in Report.Failures; Run never panics
// the harness on daemon misbehavior — CI wants the full list.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	//lint:allow nokernelgoroutines the harness coordinates concurrent chaos clients against the daemon; the simulations inside stay single-threaded
	"sync"
	"time"

	"rmscale/internal/fsutil"
	"rmscale/internal/rms"
	"rmscale/internal/service"
)

// Options configures one chaos run.
type Options struct {
	// Dir is the harness working directory (service dirs for the chaos
	// and degraded daemons live under it). Required.
	Dir string
	// Specs is the number of distinct experiment specs driven through
	// every phase; <= 0 picks 12.
	Specs int
	// Clients is the number of concurrent chaos clients; <= 0 picks 3.
	Clients int
	// Seed diversifies the spec set; same seed, same specs, same
	// fault schedule. 0 picks 1.
	Seed int64
	// Horizon is each sim spec's simulated duration; <= 0 picks 120
	// (a millisecond-scale simulation).
	Horizon float64
	// PanicEvery / HangEvery / FailEvery schedule executor faults: the
	// j-th spec's first execution attempt panics when j%PanicEvery ==
	// 1, hangs past its deadline when j%HangEvery == 2, fails with an
	// error when j%FailEvery == 0 (first match wins). <= 0 picks 5, 7
	// and 3.
	PanicEvery int
	HangEvery  int
	FailEvery  int
	// DisconnectEvery hangs up every k-th result stream after its
	// first status line; <= 0 picks 4.
	DisconnectEvery int
	// FlakyWriteEvery fails every k-th durable write in the disk-fault
	// phase; <= 0 picks 2.
	FlakyWriteEvery int
	// ExecTimeout is the chaos daemon's per-sim deadline (hung
	// executions are cancelled at it); <= 0 picks 300ms.
	ExecTimeout time.Duration
	// Log, when non-nil, receives phase progress lines.
	Log io.Writer
}

func (o *Options) defaults() error {
	if o.Dir == "" {
		return fmt.Errorf("chaos: Options.Dir is required")
	}
	if o.Specs <= 0 {
		o.Specs = 12
	}
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Horizon <= 0 {
		o.Horizon = 120
	}
	if o.PanicEvery <= 0 {
		o.PanicEvery = 5
	}
	if o.HangEvery <= 0 {
		o.HangEvery = 7
	}
	if o.FailEvery <= 0 {
		o.FailEvery = 3
	}
	if o.DisconnectEvery <= 0 {
		o.DisconnectEvery = 4
	}
	if o.FlakyWriteEvery <= 0 {
		o.FlakyWriteEvery = 2
	}
	if o.ExecTimeout <= 0 {
		o.ExecTimeout = 300 * time.Millisecond
	}
	return nil
}

// Report is the chaos run's outcome — the CI artifact.
type Report struct {
	Specs   int `json:"specs"`
	Clients int `json:"clients"`

	// Faults injected.
	PanicsInjected int `json:"panics_injected"`
	HangsInjected  int `json:"hangs_injected"`
	ErrorsInjected int `json:"errors_injected"`
	Disconnects    int `json:"disconnects"`
	WriteFaults    int `json:"write_faults"`

	// What the daemon reported absorbing.
	ExecPanics     int64 `json:"exec_panics"`
	ExecTimeouts   int64 `json:"exec_timeouts"`
	Retries        int64 `json:"retries"`
	JournalDropped int   `json:"journal_dropped"`
	CorruptResults int64 `json:"corrupt_results"`
	Resumed        int64 `json:"resumed"`
	StoreDegraded  bool  `json:"store_degraded"`

	// Verification.
	Verified   int      `json:"verified"` // results compared byte-exact against the reference
	Mismatched int      `json:"mismatched"`
	Failures   []string `json:"failures,omitempty"`
	OK         bool     `json:"ok"`
}

// faultKind schedules one spec's first-attempt executor fault.
type faultKind int

const (
	faultNone faultKind = iota
	faultPanic
	faultHang
	faultError
)

// specAt derives the j-th distinct spec, the same rotation the load
// harness uses: models cycle through the paper's roster, seeds
// advance.
func specAt(o Options, j int) service.ExperimentSpec {
	names := rms.Names()
	return service.ExperimentSpec{
		Kind:    service.KindSim,
		Model:   names[j%len(names)],
		Seed:    o.Seed + int64(j),
		Horizon: o.Horizon,
	}
}

// faultAt is the j-th spec's scheduled fault (first match wins).
func faultAt(o Options, j int) faultKind {
	switch {
	case j%o.PanicEvery == 1:
		return faultPanic
	case j%o.HangEvery == 2:
		return faultHang
	case j%o.FailEvery == 0:
		return faultError
	}
	return faultNone
}

// FaultFS is the injectable filesystem fault: every k-th durable file
// write fails; every other operation (journal appends included)
// passes through to the embedded real filesystem, so successful
// writes are real writes.
type FaultFS struct {
	fsutil.RealFS

	// Every fails each Every-th WriteFileAtomic; <= 0 never fails.
	Every int

	mu     sync.Mutex
	n      int
	faults int
}

// WriteFileAtomic counts the write and fails on schedule.
func (f *FaultFS) WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	f.mu.Lock()
	f.n++
	fail := f.Every > 0 && f.n%f.Every == 0
	if fail {
		f.faults++
	}
	n := f.n
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("chaos: injected write fault on durable write #%d (%s)", n, filepath.Base(path))
	}
	return fsutil.RealFS{}.WriteFileAtomic(path, data, perm)
}

// Faults reports how many writes were failed so far.
func (f *FaultFS) Faults() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// run carries one chaos run's state.
type run struct {
	opts  Options
	rep   Report
	specs []service.ExperimentSpec
	ids   []string
	ref   map[string][]byte // id -> fault-free payload
}

func (r *run) logf(format string, args ...any) {
	if r.opts.Log != nil {
		fmt.Fprintf(r.opts.Log, "chaos: "+format+"\n", args...)
	}
}

func (r *run) failf(format string, args ...any) {
	r.rep.Failures = append(r.rep.Failures, fmt.Sprintf(format, args...))
}

// verify compares a fetched payload against the reference.
func (r *run) verify(id string, b []byte, phase string) {
	r.rep.Verified++
	if !bytes.Equal(b, r.ref[id]) {
		r.rep.Mismatched++
		r.failf("%s: result %s differs from the fault-free reference (%d vs %d bytes)", phase, id, len(b), len(r.ref[id]))
	}
}

// Run executes the full chaos scenario and returns its report. The
// returned error covers harness-level problems (bad options, a daemon
// that cannot start at all); daemon misbehavior under fault lands in
// Report.Failures with OK=false.
func Run(opts Options) (Report, error) {
	if err := opts.defaults(); err != nil {
		return Report{}, err
	}
	r := &run{opts: opts, rep: Report{Specs: opts.Specs, Clients: opts.Clients}, ref: make(map[string][]byte)}
	r.specs = make([]service.ExperimentSpec, opts.Specs)
	r.ids = make([]string, opts.Specs)
	for j := range r.specs {
		r.specs[j] = specAt(opts, j)
		id, err := r.specs[j].ID()
		if err != nil {
			return r.rep, err
		}
		r.ids[j] = id
	}
	if err := r.reference(); err != nil {
		return r.rep, err
	}
	if err := r.execFaults(); err != nil {
		return r.rep, err
	}
	if err := r.restartFaults(); err != nil {
		return r.rep, err
	}
	if err := r.diskFaults(); err != nil {
		return r.rep, err
	}
	r.rep.OK = len(r.rep.Failures) == 0
	return r.rep, nil
}

// reference runs every spec fault-free and records the ground-truth
// payloads.
func (r *run) reference() error {
	d, err := service.New(service.Config{Shards: 2})
	if err != nil {
		return fmt.Errorf("chaos: reference daemon: %w", err)
	}
	defer d.Close()
	for j, spec := range r.specs {
		st, err := d.Submit(spec, "chaos-ref")
		if err != nil {
			return fmt.Errorf("chaos: reference submit %s: %w", spec, err)
		}
		fin := awaitTerminal(d, st.ID)
		if fin.State != service.StateDone {
			return fmt.Errorf("chaos: reference execution %s ended %s: %s", spec, fin.State, fin.Error)
		}
		b, ok := d.Result(st.ID)
		if !ok {
			return fmt.Errorf("chaos: reference result %s missing", st.ID)
		}
		r.ref[r.ids[j]] = append([]byte(nil), b...)
	}
	r.logf("reference: %d specs executed fault-free", len(r.specs))
	return nil
}

// awaitTerminal blocks until the experiment is terminal.
func awaitTerminal(d *service.Daemon, id string) service.Status {
	st, ok := d.Status(id)
	if !ok {
		return service.Status{}
	}
	for !st.State.Terminal() {
		next, ok := d.Await(id, st.State)
		if !ok || next.State == st.State {
			return st
		}
		st = next
	}
	return st
}

// execFaults drives the daemon through executor and client faults
// over the real HTTP surface.
func (r *run) execFaults() error {
	o := r.opts
	dir := filepath.Join(o.Dir, "service")
	faults := make(map[string]faultKind, len(r.ids))
	for j, id := range r.ids {
		k := faultAt(o, j)
		faults[id] = k
		switch k {
		case faultPanic:
			r.rep.PanicsInjected++
		case faultHang:
			r.rep.HangsInjected++
		case faultError:
			r.rep.ErrorsInjected++
		}
	}

	var mu sync.Mutex
	attempts := make(map[string]int, len(r.ids))
	real := service.Executor{}.Run
	exec := func(ctx context.Context, spec service.ExperimentSpec, dir string) ([]byte, error) {
		id, err := spec.ID()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		attempts[id]++
		first := attempts[id] == 1
		mu.Unlock()
		if first {
			switch faults[id] {
			case faultPanic:
				panic(fmt.Sprintf("chaos: scripted panic for %s", spec))
			case faultHang:
				<-ctx.Done() // ignore work, hold the slot until the deadline cancels us
				return nil, ctx.Err()
			case faultError:
				return nil, fmt.Errorf("chaos: scripted transient failure for %s", spec)
			}
		}
		return real(ctx, spec, dir)
	}

	d, err := service.New(service.Config{
		Dir: dir, Shards: 2, Exec: exec,
		MaxAttempts: 3, RetryBackoff: 2 * time.Millisecond,
		ExecTimeout: o.ExecTimeout, BreakerThreshold: 8, BreakerCooldown: 200 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("chaos: chaos daemon: %w", err)
	}
	alive := true
	defer func() {
		if alive {
			d.Close()
		}
	}()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewServer(d).Handler()}
	//lint:allow nokernelgoroutines the HTTP server needs its own accept loop while the chaos clients drive requests
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	var wg sync.WaitGroup
	errs := make([]error, o.Clients)
	disconnects := make([]int, o.Clients)
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		//lint:allow nokernelgoroutines one goroutine per concurrent chaos client is the harness's reason to exist
		go func(c int) {
			defer wg.Done()
			cl := &chaosClient{base: base, id: fmt.Sprintf("chaos-%d", c)}
			for j := c; j < len(r.specs); j += o.Clients {
				id := r.ids[j]
				if err := cl.submit(r.specs[j]); err != nil {
					errs[c] = err
					return
				}
				disconnect := j%o.DisconnectEvery == 0
				if disconnect {
					cl.abandonStream(id)
					disconnects[c]++
				}
				fin, err := cl.streamTerminal(id)
				if err != nil {
					errs[c] = err
					return
				}
				if fin.State != service.StateDone {
					errs[c] = fmt.Errorf("experiment %s ended %s under exec faults: %s", id, fin.State, fin.Error)
					return
				}
				b, err := cl.fetch(id)
				if err != nil {
					errs[c] = err
					return
				}
				r.verifyLocked(&mu, id, b, "exec-faults")
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			r.failf("exec-faults: client %d: %v", c, err)
		}
	}
	for _, n := range disconnects {
		r.rep.Disconnects += n
	}

	// The daemon is alive and honest about what it absorbed.
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		r.failf("exec-faults: daemon unreachable after faults: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			r.failf("exec-faults: healthz HTTP %d after faults", resp.StatusCode)
		}
	}
	s := d.Stats()
	r.rep.ExecPanics = s.ExecPanics
	r.rep.ExecTimeouts = s.ExecTimeouts
	r.rep.Retries = s.Retries
	if s.ExecPanics < int64(r.rep.PanicsInjected) {
		r.failf("exec-faults: daemon absorbed %d panics, %d injected", s.ExecPanics, r.rep.PanicsInjected)
	}
	if s.ExecTimeouts < int64(r.rep.HangsInjected) {
		r.failf("exec-faults: daemon absorbed %d timeouts, %d hangs injected", s.ExecTimeouts, r.rep.HangsInjected)
	}
	r.logf("exec-faults: %d specs, %d panics, %d hangs, %d errors, %d disconnects; retries=%d",
		len(r.specs), r.rep.PanicsInjected, r.rep.HangsInjected, r.rep.ErrorsInjected, r.rep.Disconnects, s.Retries)
	alive = false
	if err := d.Close(); err != nil {
		r.failf("exec-faults: close: %v", err)
	}
	return nil
}

// verifyLocked serializes verify calls from concurrent clients.
func (r *run) verifyLocked(mu *sync.Mutex, id string, b []byte, phase string) {
	mu.Lock()
	defer mu.Unlock()
	r.verify(id, b, phase)
}

// restartFaults damages the chaos daemon's directory the way crashes
// do, restarts over it and verifies full recovery.
func (r *run) restartFaults() error {
	dir := filepath.Join(r.opts.Dir, "service")
	jpath := filepath.Join(dir, "journal.jsonl")

	// Tear the journal's final record in half, remembering whose it
	// was so the harness can resubmit it.
	jb, err := os.ReadFile(jpath)
	if err != nil {
		return fmt.Errorf("chaos: reading journal: %w", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(jb, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	var lastRec struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(last, &lastRec); err != nil {
		return fmt.Errorf("chaos: parsing last journal record: %w", err)
	}
	tornID := lastRec.ID[len("exp/"):]
	if err := os.WriteFile(jpath, jb[:len(jb)-len(last)/2-1], 0o644); err != nil {
		return err
	}

	// Corrupt a different spec's stored payload under its checksum.
	corruptID := ""
	for _, id := range r.ids {
		if id != tornID {
			corruptID = id
			break
		}
	}
	ppath := filepath.Join(dir, "results", corruptID+".json")
	pb, err := os.ReadFile(ppath)
	if err != nil {
		return fmt.Errorf("chaos: reading payload to corrupt: %w", err)
	}
	if err := os.WriteFile(ppath, append([]byte("rot:"), pb...), 0o644); err != nil {
		return err
	}

	d, err := service.New(service.Config{Dir: dir, Shards: 2})
	if err != nil {
		r.failf("restart-faults: daemon refused to reopen the damaged directory: %v", err)
		return nil
	}
	defer d.Close()
	s := d.Stats()
	r.rep.JournalDropped = s.JournalDropped
	r.rep.Resumed = s.Resumed
	if s.JournalDropped != 1 {
		r.failf("restart-faults: journal_dropped = %d, want 1 (the torn record)", s.JournalDropped)
	}
	if s.Resumed < 1 {
		r.failf("restart-faults: resumed = %d, want >= 1 (the corrupted result re-queued)", s.Resumed)
	}

	// The torn submission is unknown; resubmitting reruns it.
	if _, ok := d.Status(tornID); ok {
		r.failf("restart-faults: torn journal record %s resurrected", tornID)
	}
	for j, id := range r.ids {
		if id == tornID {
			if _, err := d.Submit(r.specs[j], "chaos-restart"); err != nil {
				r.failf("restart-faults: resubmitting torn spec: %v", err)
			}
		}
	}
	// Every spec must come back done with reference-identical bytes;
	// the corrupted one via quarantine and re-execution.
	for _, id := range r.ids {
		fin := awaitTerminal(d, id)
		if fin.State != service.StateDone {
			r.failf("restart-faults: %s ended %q after restart: %s", id, fin.State, fin.Error)
			continue
		}
		b, ok := d.Result(id)
		if !ok {
			// A self-healing miss: the fetch re-queued it; wait again.
			awaitTerminal(d, id)
			b, ok = d.Result(id)
		}
		if !ok {
			r.failf("restart-faults: result %s unavailable after restart", id)
			continue
		}
		r.verify(id, b, "restart-faults")
	}
	s = d.Stats()
	r.rep.CorruptResults = s.CorruptResults
	if s.CorruptResults < 1 {
		r.failf("restart-faults: corrupt_results = %d, want >= 1 (the damaged payload)", s.CorruptResults)
	}
	r.logf("restart-faults: torn record %s rerun, corrupt result %s quarantined and re-executed", tornID[:8], corruptID[:8])
	return nil
}

// diskFaults runs a daemon over a flaky filesystem and verifies
// graceful degradation to memory-only operation.
func (r *run) diskFaults() error {
	dir := filepath.Join(r.opts.Dir, "degraded")
	fs := &FaultFS{Every: r.opts.FlakyWriteEvery}
	d, err := service.New(service.Config{Dir: dir, Shards: 1, FS: fs})
	if err != nil {
		return fmt.Errorf("chaos: degraded daemon: %w", err)
	}
	defer d.Close()
	n := len(r.specs)
	if n > 4 {
		n = 4
	}
	for j := 0; j < n; j++ {
		st, err := d.Submit(r.specs[j], "chaos-disk")
		if err != nil {
			r.failf("disk-faults: submit %s: %v", r.specs[j], err)
			continue
		}
		fin := awaitTerminal(d, st.ID)
		if fin.State != service.StateDone {
			r.failf("disk-faults: %s ended %s under flaky writes: %s", st.ID, fin.State, fin.Error)
			continue
		}
		b, ok := d.Result(st.ID)
		if !ok {
			r.failf("disk-faults: result %s unavailable under flaky writes", st.ID)
			continue
		}
		r.verify(st.ID, b, "disk-faults")
	}
	r.rep.WriteFaults = fs.Faults()
	h := d.Health()
	r.rep.StoreDegraded = h.StoreDegraded != ""
	if fs.Faults() > 0 && !r.rep.StoreDegraded {
		r.failf("disk-faults: %d writes failed but the store never reported degradation", fs.Faults())
	}
	if h.Status != "degraded" && fs.Faults() > 0 {
		r.failf("disk-faults: health %q with %d write faults, want degraded", h.Status, fs.Faults())
	}
	r.logf("disk-faults: %d specs served through %d injected write faults (degraded=%v)", n, fs.Faults(), r.rep.StoreDegraded)
	return nil
}

// chaosClient is one HTTP chaos client: it submits with 429/503
// backoff (honoring Retry-After), streams, disconnects on schedule
// and fetches results.
type chaosClient struct {
	base string
	id   string
}

// backoff sleeps the server's Retry-After hint, capped so chaos runs
// stay fast; the hint's presence, not its full length, is what the
// harness exercises.
func (c *chaosClient) backoff(retryAfter string, attempt int) {
	d := time.Duration(attempt) * 2 * time.Millisecond
	if sec, err := strconv.Atoi(retryAfter); err == nil && sec > 0 {
		d = time.Duration(sec) * time.Second
	}
	if d > 25*time.Millisecond {
		d = 25 * time.Millisecond
	}
	//lint:allow nowallclock client-side admission backoff is real-time flow control outside any simulation
	time.Sleep(d)
}

func (c *chaosClient) submit(spec service.ExperimentSpec) error {
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/experiments", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Rmscale-Client", c.id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if attempt > 400 {
				return fmt.Errorf("submit %s: still refused after %d attempts: %s", spec, attempt, body)
			}
			c.backoff(resp.Header.Get("Retry-After"), attempt)
		default:
			return fmt.Errorf("submit %s: HTTP %d: %s", spec, resp.StatusCode, body)
		}
	}
}

// abandonStream opens the status stream, reads one line and hangs up
// — the scripted client disconnect.
func (c *chaosClient) abandonStream(id string) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/experiments/"+id+"/stream", nil)
	if err != nil {
		return
	}
	req.Header.Set("X-Rmscale-Client", c.id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st service.Status
	_ = json.NewDecoder(resp.Body).Decode(&st) // one line, then hang up
}

// streamTerminal follows the stream until the experiment is terminal.
func (c *chaosClient) streamTerminal(id string) (service.Status, error) {
	var last service.Status
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(http.MethodGet, c.base+"/v1/experiments/"+id+"/stream", nil)
		if err != nil {
			return last, err
		}
		req.Header.Set("X-Rmscale-Client", c.id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return last, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return last, fmt.Errorf("stream %s: HTTP %d", id, resp.StatusCode)
		}
		dec := json.NewDecoder(resp.Body)
		for {
			if err := dec.Decode(&last); err != nil {
				break
			}
			if last.State.Terminal() {
				resp.Body.Close()
				return last, nil
			}
		}
		resp.Body.Close()
		// The daemon closed the stream without a terminal state (it was
		// draining or the connection dropped); re-stream.
		if attempt > 100 {
			return last, fmt.Errorf("stream %s: no terminal state after %d streams", id, attempt)
		}
		c.backoff("", attempt)
	}
}

func (c *chaosClient) fetch(id string) ([]byte, error) {
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(http.MethodGet, c.base+"/v1/experiments/"+id+"/result", nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-Rmscale-Client", c.id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return body, nil
		case http.StatusConflict:
			// Self-healing in flight: the result was missing and the
			// daemon re-queued the work; wait for it.
			if attempt > 400 {
				return nil, fmt.Errorf("fetch %s: still unfinished after %d attempts", id, attempt)
			}
			c.backoff("", attempt)
		default:
			return nil, fmt.Errorf("fetch %s: HTTP %d: %s", id, resp.StatusCode, body)
		}
	}
}
