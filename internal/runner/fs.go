package runner

import (
	"os"

	"rmscale/internal/fsutil"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file. It is internal/fsutil.WriteFileAtomic re-exported at
// the runner's historical call site: the journal, the disk cache and
// the progress reporter all commit through it, and the rmscaled result
// store shares the same primitive from fsutil directly.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return fsutil.WriteFileAtomic(path, data, perm)
}
