package grid

import (
	"strings"
	"testing"
)

func TestSummarizeEmptyRun(t *testing.T) {
	m := &Metrics{}
	s := m.Summarize(1000)
	if s.Efficiency != 0 || s.Throughput != 0 || s.SuccessRate != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	if s.MaxSchedulerUtil != 0 || s.MiddlewareUtil != 0 {
		t.Fatalf("empty utilizations not zero: %+v", s)
	}
}

func TestSummarizeZeroWindow(t *testing.T) {
	m := &Metrics{UsefulWork: 10, RMSOverhead: 5, JobsCompleted: 3, JobsSucceeded: 2}
	s := m.Summarize(0)
	if s.Throughput != 0 {
		t.Fatal("zero window should give zero throughput")
	}
	if s.Efficiency <= 0 {
		t.Fatal("efficiency should still derive from F/G/H")
	}
	if s.SuccessRate != 2.0/3 {
		t.Fatalf("success rate = %v", s.SuccessRate)
	}
}

func TestSummarizeDerivations(t *testing.T) {
	m := &Metrics{
		UsefulWork:    400,
		RMSOverhead:   100,
		RPOverhead:    500,
		JobsCompleted: 50,
		JobsSucceeded: 40,
		SchedulerBusy: []float64{10, 90},
		EstimatorBusy: []float64{20},
	}
	s := m.Summarize(1000)
	if s.Efficiency != 0.4 {
		t.Fatalf("E = %v, want 0.4", s.Efficiency)
	}
	if s.Throughput != 0.05 {
		t.Fatalf("throughput = %v", s.Throughput)
	}
	if s.SuccessRate != 0.8 {
		t.Fatalf("success = %v", s.SuccessRate)
	}
	if s.MaxSchedulerUtil != 0.09 {
		t.Fatalf("max util = %v, want 0.09 (busiest scheduler)", s.MaxSchedulerUtil)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{F: 1, G: 2, H: 3, Efficiency: 0.4, Jobs: 7}
	out := s.String()
	for _, want := range []string{"F=1", "G=2", "H=3", "E=0.400", "jobs=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary string missing %q: %s", want, out)
		}
	}
}

func TestChargeHelpersBoundsChecked(t *testing.T) {
	m := &Metrics{SchedulerBusy: make([]float64, 2), EstimatorBusy: make([]float64, 1)}
	// Out-of-range indices must not panic; G still accrues.
	m.chargeScheduler(-1, 5, 1)
	m.chargeScheduler(9, 5, 1)
	m.chargeEstimator(7, 5, 1)
	if m.RMSOverhead != 15 {
		t.Fatalf("G = %v, want 15", m.RMSOverhead)
	}
	m.chargeScheduler(1, 4, 2)
	if m.SchedulerBusy[1] != 2 {
		t.Fatalf("busy = %v", m.SchedulerBusy[1])
	}
}
