package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
)

// Server exposes a Daemon over HTTP/JSON.
//
// API surface (all payloads JSON):
//
//	POST /v1/experiments          submit an ExperimentSpec
//	                              202 accepted {Status}; 200 dedup-done
//	                              {Status}; 400 invalid spec; 429 queue
//	                              saturated (Retry-After); 503 draining
//	GET  /v1/experiments/{id}         poll status {Status}
//	GET  /v1/experiments/{id}/result  fetch the stored result payload
//	GET  /v1/experiments/{id}/stream  stream status snapshots, one JSON
//	                                  line per state change, until the
//	                                  experiment is terminal
//	GET  /v1/stats                daemon accounting {Stats}
//	GET  /v1/healthz              liveness probe
//
// Clients identify themselves with the X-Rmscale-Client header (falling
// back to the remote address); the identity feeds per-client fairness
// and the request log, never the experiment ID.
type Server struct {
	d *Daemon
}

// NewServer wraps the daemon. Request logging and timestamps reuse the
// daemon's Log writer and Clock.
func NewServer(d *Daemon) *Server { return &Server{d: d} }

// retryAfterSec is the backoff hint sent with 429 and 503 responses.
const retryAfterSec = 1

// Handler returns the service's HTTP handler with request logging
// wired around every route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/experiments/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/experiments/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Always 200 — a degraded daemon is alive; the body says what
		// it is operating without (breaker shedding, memory-only store,
		// lost journal durability).
		writeJSON(w, http.StatusOK, s.d.Health())
	})
	return s.logRequests(mux)
}

// clientID extracts the caller's identity for fairness accounting.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Rmscale-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec ExperimentSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := json.Unmarshal(body, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	st, err := s.d.Submit(spec, clientID(r))
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSec))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShedding):
		w.Header().Set("Retry-After", fmt.Sprint(s.d.retryAfterHint()))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSec))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case st.State == StateDone:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.d.Status(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown experiment " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if b, ok := s.d.Result(id); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
		return
	}
	st, ok := s.d.Status(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown experiment " + id})
		return
	}
	// Known but unfinished (or failed): tell the client where it is.
	writeJSON(w, http.StatusConflict, st)
}

// handleStream writes the experiment's status as a JSON line now and
// after every state change until the state is terminal. The wait is
// condition-variable driven — no polling interval — so transitions
// stream with no added latency; it is bounded by the request context,
// so a client hanging up mid-stream releases the handler goroutine
// immediately instead of parking it until the next state change.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.d.Status(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown experiment " + id})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		if err := enc.Encode(st); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State.Terminal() {
			return
		}
		next, ok := s.d.AwaitCtx(r.Context(), id, st.State)
		if !ok || next.State == st.State {
			return // cancelled, unknown, or daemon closed with no further transitions
		}
		st = next
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.d.Stats())
}

// statusRecorder captures the response code and size for the request
// log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush forwards streaming flushes through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests emits one structured JSON line per request through the
// daemon's event log.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.d.clock.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		s.d.logEvent("http", map[string]any{
			"method": r.Method,
			"path":   r.URL.Path,
			"status": rec.code,
			"bytes":  rec.bytes,
			"dur_ms": float64(s.d.clock.Now().Sub(start).Microseconds()) / 1000,
			"client": clientID(r),
		})
	})
}
