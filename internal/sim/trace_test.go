package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerRecords(t *testing.T) {
	k := NewKernel()
	tr := NewTracer(k, 0)
	k.Schedule(5, func() { tr.Trace("dispatch", "job 1") })
	k.Schedule(9, func() { tr.Tracef("complete", "job %d", 1) })
	k.Run(100)
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].At != 5 || ev[0].Kind != "dispatch" || ev[0].Detail != "job 1" {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if ev[1].Detail != "job 1" || ev[1].Kind != "complete" {
		t.Fatalf("event 1 = %+v", ev[1])
	}
	if tr.Count("dispatch") != 1 || tr.Count("missing") != 0 {
		t.Fatal("counts wrong")
	}
	kinds := tr.Kinds()
	if len(kinds) != 2 || kinds[0] != "complete" || kinds[1] != "dispatch" {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Trace("x", "y") // must not panic
	tr.Tracef("x", "%d", 1)
	if tr.Count("x") != 0 || tr.Events() != nil || tr.Kinds() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestTracerLimit(t *testing.T) {
	k := NewKernel()
	tr := NewTracer(k, 10)
	for i := 0; i < 100; i++ {
		tr.Trace("tick", "")
	}
	if got := len(tr.Events()); got > 10 {
		t.Fatalf("retained %d events over limit 10", got)
	}
	if tr.Count("tick") != 100 {
		t.Fatalf("count = %d, want 100 (counts survive eviction)", tr.Count("tick"))
	}
}

func TestTracerDump(t *testing.T) {
	k := NewKernel()
	tr := NewTracer(k, 0)
	tr.Trace("alpha", "one")
	tr.Trace("beta", "two")
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "two") {
		t.Fatalf("dump missing events:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatal("dump line count wrong")
	}
}
