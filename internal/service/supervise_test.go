package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually driven Clock: Sleep records the requested
// duration and advances virtual time instead of blocking, and After
// can be armed to fire immediately (deadline tests) or never (backoff
// tests). Safe for concurrent use.
type fakeClock struct {
	mu        sync.Mutex
	now       time.Time
	slept     []time.Duration
	fireAfter bool // After returns an already-fired channel
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	fire := c.fireAfter
	now := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if fire {
		ch <- now.Add(d)
	}
	return ch
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}

// TestExecPanicIsolation pins the first supervision discipline: an
// executor panic becomes a failed experiment carrying the panic and
// its stack, and the shard survives to execute the next submission.
func TestExecPanicIsolation(t *testing.T) {
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		if spec.Seed == 1 {
			panic("injected executor panic")
		}
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	st, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, d, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("panicking execution ended %s, want failed", fin.State)
	}
	if !strings.Contains(fin.Error, "injected executor panic") || !strings.Contains(fin.Error, "goroutine") {
		t.Fatalf("failure lacks panic message or stack: %q", fin.Error)
	}

	// The shard that absorbed the panic still drains the queue.
	st2, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 2}, "c")
	if err != nil {
		t.Fatal(err)
	}
	if fin2 := waitTerminal(t, d, st2.ID); fin2.State != StateDone {
		t.Fatalf("post-panic execution ended %s (%s), want done", fin2.State, fin2.Error)
	}
	if s := d.Stats(); s.ExecPanics != 1 {
		t.Fatalf("exec_panics = %d, want 1", s.ExecPanics)
	}
}

// TestExecRetryBackoff pins bounded retries: a transiently failing
// execution re-runs up to MaxAttempts with exponential, jittered
// backoff on the injected clock — and the backoff schedule is exactly
// retryDelay's deterministic output.
func TestExecRetryBackoff(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	attempts := 0
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n < 3 {
			return nil, fmt.Errorf("transient failure %d", n)
		}
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec, Clock: clk, MaxAttempts: 3, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	st, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, d, st.ID); fin.State != StateDone {
		t.Fatalf("ended %s (%s), want done after retries", fin.State, fin.Error)
	}
	if attempts != 3 {
		t.Fatalf("executor ran %d times, want 3", attempts)
	}
	slept := clk.sleeps()
	want := []time.Duration{
		retryDelay(st.ID, 1, 10*time.Millisecond),
		retryDelay(st.ID, 2, 10*time.Millisecond),
	}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want %v", slept, want)
	}
	// Exponential shape with bounded jitter: base doubles, jitter adds
	// at most half the base again.
	if slept[0] < 10*time.Millisecond || slept[0] > 15*time.Millisecond {
		t.Fatalf("first backoff %v outside [10ms,15ms]", slept[0])
	}
	if slept[1] < 20*time.Millisecond || slept[1] > 30*time.Millisecond {
		t.Fatalf("second backoff %v outside [20ms,30ms]", slept[1])
	}
	if s := d.Stats(); s.Retries != 2 || s.Completed != 1 || s.Failed != 0 {
		t.Fatalf("stats = retries %d completed %d failed %d, want 2/1/0", s.Retries, s.Completed, s.Failed)
	}
}

// TestExecRetriesExhausted: when every attempt fails, the last error
// is the experiment's final failure and the attempt budget is honored.
func TestExecRetriesExhausted(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	attempts := 0
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		return nil, fmt.Errorf("persistent failure %d", n)
	}
	d, err := New(Config{Shards: 1, Exec: exec, Clock: clk, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, d, st.ID)
	if fin.State != StateFailed || !strings.Contains(fin.Error, "persistent failure 3") {
		t.Fatalf("ended %s (%q), want failed with the last attempt's error", fin.State, fin.Error)
	}
	if attempts != 3 {
		t.Fatalf("executor ran %d times, want 3", attempts)
	}
}

// TestExecPanicRetried: panics count as failed attempts, so a spec
// that panics once and then behaves completes under MaxAttempts 2.
func TestExecPanicRetried(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	attempts := 0
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			panic("first attempt panics")
		}
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec, Clock: clk, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, d, st.ID); fin.State != StateDone {
		t.Fatalf("ended %s (%s), want done on the retry", fin.State, fin.Error)
	}
	if s := d.Stats(); s.ExecPanics != 1 || s.Retries != 1 {
		t.Fatalf("stats = panics %d retries %d, want 1/1", s.ExecPanics, s.Retries)
	}
}

// TestExecDeadline pins execution deadlines: a run that overruns its
// budget is cancelled and failed, and a hung executor that ignores
// cancellation is abandoned without wedging the shard.
func TestExecDeadline(t *testing.T) {
	clk := newFakeClock()
	clk.fireAfter = true // every deadline fires immediately
	hung := make(chan struct{})
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		if spec.Seed == 1 {
			<-hung // ignores ctx entirely: a truly hung executor
			return nil, errors.New("woke up late")
		}
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec, Clock: clk, ExecTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defer close(hung)

	st, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, d, st.ID)
	if fin.State != StateFailed || !strings.Contains(fin.Error, "execution deadline") {
		t.Fatalf("ended %s (%q), want deadline failure", fin.State, fin.Error)
	}
	// The shard abandoned the hung goroutine and keeps serving. A spec
	// that finishes promptly still beats its (immediately firing) fake
	// deadline only if the executor wins the select — avoid the race by
	// disabling deadlines for the second half.
	if s := d.Stats(); s.ExecTimeouts != 1 {
		t.Fatalf("exec_timeouts = %d, want 1", s.ExecTimeouts)
	}
}

// TestExecTimeoutScaling: case/churn specs get eight times the sim
// budget, and a zero config disables deadlines entirely.
func TestExecTimeoutScaling(t *testing.T) {
	d := &Daemon{cfg: Config{ExecTimeout: time.Second}}
	if got := d.execTimeout(ExperimentSpec{Kind: KindSim}); got != time.Second {
		t.Fatalf("sim timeout = %v, want 1s", got)
	}
	if got := d.execTimeout(ExperimentSpec{Kind: KindCase}); got != 8*time.Second {
		t.Fatalf("case timeout = %v, want 8s", got)
	}
	if got := d.execTimeout(ExperimentSpec{Kind: KindChurn}); got != 8*time.Second {
		t.Fatalf("churn timeout = %v, want 8s", got)
	}
	d.cfg.ExecTimeout = 0
	if got := d.execTimeout(ExperimentSpec{Kind: KindSim}); got != 0 {
		t.Fatalf("disabled timeout = %v, want 0", got)
	}
}

// TestRetryDelayDeterministic pins the backoff function itself: same
// inputs, same delay; exponential growth; capped with bounded jitter.
func TestRetryDelayDeterministic(t *testing.T) {
	base := 100 * time.Millisecond
	if a, b := retryDelay("id", 1, base), retryDelay("id", 1, base); a != b {
		t.Fatalf("same inputs gave %v and %v", a, b)
	}
	if a, b := retryDelay("id-a", 1, base), retryDelay("id-b", 1, base); a == b {
		t.Logf("distinct ids happened to share jitter (%v) — allowed, just unlikely", a)
	}
	for attempt := 1; attempt <= 12; attempt++ {
		d := retryDelay("id", attempt, base)
		if d < base {
			t.Fatalf("attempt %d delay %v below base", attempt, d)
		}
		if d > maxRetryBackoff+maxRetryBackoff/2 {
			t.Fatalf("attempt %d delay %v above cap+jitter", attempt, d)
		}
	}
}

// TestBreakerShedsAndRecovers pins the circuit breaker end to end:
// consecutive failures open it, open means Submit sheds with
// ErrShedding and a cooldown-sized Retry-After, and after the cooldown
// a half-open probe's success closes it again.
func TestBreakerShedsAndRecovers(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	failing := true
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		mu.Lock()
		f := failing
		mu.Unlock()
		if f {
			return nil, errors.New("backend down")
		}
		return fakeExec(ctx, spec, dir)
	}
	d, err := New(Config{Shards: 1, Exec: exec, Clock: clk, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for seed := int64(1); seed <= 2; seed++ {
		st, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: seed}, "c")
		if err != nil {
			t.Fatal(err)
		}
		if fin := waitTerminal(t, d, st.ID); fin.State != StateFailed {
			t.Fatalf("seed %d ended %s, want failed", seed, fin.State)
		}
	}

	// Two consecutive failures at threshold 2: the breaker is open.
	_, err = d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 3}, "c")
	if !errors.Is(err, ErrShedding) {
		t.Fatalf("submit under open breaker: %v, want ErrShedding", err)
	}
	s := d.Stats()
	if !s.BreakerOpen || s.BreakerTrips != 1 || s.Shed != 1 || !s.Degraded {
		t.Fatalf("stats = open %v trips %d shed %d degraded %v, want true/1/1/true", s.BreakerOpen, s.BreakerTrips, s.Shed, s.Degraded)
	}
	h := d.Health()
	if h.Status != "degraded" || !h.BreakerOpen || h.RetryAfterSec < 1 || h.RetryAfterSec > 10 {
		t.Fatalf("health = %+v, want degraded with 1..10s retry hint", h)
	}

	// Dedup reads still answer while shedding: resubmitting a known
	// failed spec is a retry, which the breaker also refuses — but a
	// status query works.
	if _, ok := d.Status("nope"); ok {
		t.Fatal("unknown id answered")
	}

	// Cooldown passes: half-open admits one probe, and its success
	// closes the breaker.
	mu.Lock()
	failing = false
	mu.Unlock()
	clk.advance(11 * time.Second)
	st, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 3}, "c")
	if err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if fin := waitTerminal(t, d, st.ID); fin.State != StateDone {
		t.Fatalf("probe ended %s, want done", fin.State)
	}
	s = d.Stats()
	if s.BreakerOpen || s.Degraded {
		t.Fatalf("breaker still open after successful probe: %+v", s)
	}
	if h := d.Health(); h.Status != "ok" {
		t.Fatalf("health = %+v, want ok", h)
	}
}

// TestBreakerHalfOpenFailureRearms: a failing half-open probe re-arms
// the cooldown instead of closing the breaker.
func TestBreakerHalfOpenFailureRearms(t *testing.T) {
	clk := newFakeClock()
	exec := func(ctx context.Context, spec ExperimentSpec, dir string) ([]byte, error) {
		return nil, errors.New("still down")
	}
	d, err := New(Config{Shards: 1, Exec: exec, Clock: clk, BreakerThreshold: 1, BreakerCooldown: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	st, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 1}, "c")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d, st.ID)
	if _, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 2}, "c"); !errors.Is(err, ErrShedding) {
		t.Fatalf("want shed, got %v", err)
	}
	clk.advance(11 * time.Second)
	st, err = d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 2}, "c")
	if err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	waitTerminal(t, d, st.ID)
	// The probe failed: the breaker is open again with a fresh cooldown.
	if _, err := d.Submit(ExperimentSpec{Kind: KindSim, Model: "LOWEST", Seed: 3}, "c"); !errors.Is(err, ErrShedding) {
		t.Fatalf("want shed after failed probe, got %v", err)
	}
	if s := d.Stats(); s.BreakerTrips != 2 {
		t.Fatalf("breaker_trips = %d, want 2", s.BreakerTrips)
	}
}
