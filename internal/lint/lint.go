// Package lint is rmslint: a suite of analyzers that mechanically
// enforce the determinism and model-coverage invariants the
// reproduction's byte-identical results depend on. The isoefficiency
// numbers and the fault goldens are only meaningful because no
// wall-clock reads, global RNG draws, map-iteration order or stray
// goroutines can leak into the event-level grid model; before this
// package those invariants lived in comments and were caught — after
// the fact — by golden files. Now they fail the build.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"

	"rmscale/internal/lint/analysis"
	"rmscale/internal/lint/load"
)

// Suite returns the five analyzers in their fixed reporting order.
func Suite(cfg Config) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoWallClock(),
		NoGlobalRand(),
		MapIterOrder(),
		NoKernelGoroutines(),
		RMSExhaustive(EnumSpec{
			PkgPath:   cfg.EnumPkg,
			TypeName:  cfg.EnumType,
			Constants: cfg.EnumConstants,
		}),
	}
}

// packagesFor returns the config entry list governing one analyzer.
func (cfg Config) packagesFor(name string) []string {
	switch name {
	case "nowallclock", "noglobalrand":
		return cfg.SimVisible
	case "mapiterorder":
		return cfg.MapOrder
	case "nokernelgoroutines":
		return cfg.Kernel
	case "rmsexhaustive":
		return cfg.Exhaustive
	default:
		panic("lint: unknown analyzer " + name)
	}
}

// KnownAnalyzers is the set of names //lint: directives may target.
func KnownAnalyzers(cfg Config) map[string]bool {
	known := map[string]bool{}
	for _, a := range Suite(cfg) {
		known[a.Name] = true
	}
	return known
}

// RunDir loads the packages matched by patterns in the module rooted
// at dir, applies the suite per the config, and writes diagnostics to
// w in go vet's file:line:col format. It returns the number of
// diagnostics written.
func RunDir(dir string, patterns []string, cfg Config, w io.Writer) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := load.Module(fset, dir, patterns...)
	if err != nil {
		return 0, err
	}
	suite := Suite(cfg)
	known := KnownAnalyzers(cfg)
	total := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range suite {
			if !appliesTo(cfg.packagesFor(a.Name), pkg.Path) {
				continue
			}
			pass := &analysis.Pass{Analyzer: a, Fset: fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
			if err := a.Run(pass); err != nil {
				return total, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		if len(diags) == 0 {
			continue
		}
		kept := ApplyDirectives(fset, pkg.Files, known, diags)
		for _, line := range analysis.Format(fset, kept) {
			fmt.Fprintln(w, line)
		}
		total += len(kept)
	}
	return total, nil
}

// ApplyDirectives filters diagnostics through the files' //lint:
// markers and appends diagnostics for malformed markers. Shared by
// the CLI driver and the analysistest harness so fixtures exercise
// the same suppression path production uses.
func ApplyDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, diags []analysis.Diagnostic) []analysis.Diagnostic {
	sup, bad := parseDirectives(fset, files, known)
	kept := make([]analysis.Diagnostic, 0, len(diags)+len(bad))
	for _, d := range diags {
		if !sup.suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	return append(kept, bad...)
}
