// Package rms implements the seven resource management system models the
// paper evaluates — CENTRAL, LOWEST, RESERVE, AUCTION, S-I, R-I and
// Sy-I — as grid.Policy implementations, re-built on this repository's
// grid model the same way the paper re-implemented them on its own grid
// model.
//
// Protocol taxonomy (the paper's Section 3.3):
//
//   - CENTRAL: one scheduler decides for the whole pool.
//   - LOWEST:  poll-on-arrival load balancing (Zhou's trace study).
//   - RESERVE: underloaded clusters register reservations ahead of time.
//   - AUCTION: underloaded clusters auction capacity; loaded bid.
//   - S-I:     sender-initiated superscheduler over grid middleware.
//   - R-I:     receiver-initiated volunteering over grid middleware.
//   - Sy-I:    symmetric combination of S-I and R-I.
package rms

import (
	"fmt"

	"rmscale/internal/grid"
)

// All returns fresh instances of every model, in the paper's order.
func All() []grid.Policy {
	ids := IDs()
	out := make([]grid.Policy, len(ids))
	for i, id := range ids {
		out[i] = New(id)
	}
	return out
}

// Names lists the model names in the paper's order.
func Names() []string {
	models := All()
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name()
	}
	return out
}

// Extensions returns the models this repository adds beyond the
// paper's seven (currently the hierarchical RMS).
func Extensions() []grid.Policy {
	return []grid.Policy{NewHierarchy()}
}

// ByName returns a fresh instance of the named model, searching the
// paper's roster first and then the extensions.
func ByName(name string) (grid.Policy, error) {
	if id, ok := ParseID(name); ok {
		return New(id), nil
	}
	for _, m := range Extensions() {
		if m.Name() == name {
			return m, nil
		}
	}
	known := Names()
	for _, m := range Extensions() {
		known = append(known, m.Name())
	}
	return nil, fmt.Errorf("rms: unknown model %q (have %v)", name, known)
}

// placeLocally is the shared terminal action: charge a full-cluster
// decision scan and dispatch to the believed least loaded local
// resource. All models use it for LOCAL jobs, for transferred arrivals
// (Hops > 0), and for bounced dispatches.
func placeLocally(s *grid.Scheduler, ctx *grid.JobCtx) {
	s.DispatchLeastLoaded(ctx)
}

// mustPlaceLocally reports whether the job has no routing freedom left:
// LOCAL class, already transferred, or re-entering after a bounce.
func mustPlaceLocally(s *grid.Scheduler, ctx *grid.JobCtx) bool {
	if ctx.Hops > 0 || ctx.Attempts > 0 {
		return true
	}
	if ctx.Job.Class == localClass {
		return true
	}
	return len(s.Peers()) == 0
}
