// Package par executes a partitioned discrete-event simulation on a
// bounded worker pool, conservatively: partitions (shards) only
// interact through timestamped messages that are delayed by at least
// the executor's lookahead, so every event window of lookahead length
// is free of cross-shard causality and its shards can run
// concurrently.
//
// The algorithm is the classic conservative time-window scheme (the
// decomposition GridSim and Parsec-style simulators use): each round
// the coordinator computes the earliest pending work across all shards
// and in-flight messages, opens the window [next, next+lookahead),
// delivers every due message in canonical (time, source, sequence)
// order, and lets the worker pool drain each shard's kernel up to the
// window bound. A message sent at time t arrives no earlier than
// t+lookahead, which is at or beyond the window bound — so nothing a
// shard does inside a window can affect another shard inside the same
// window.
//
// Determinism is by construction, not by luck: shards share no state
// inside a window, each shard's kernel is the deterministic serial
// kernel of package sim, and everything order-sensitive — window
// bounds, message delivery, outbox collection — happens single-
// threaded at the barrier in an order derived only from simulated
// time, shard IDs and per-shard sequence numbers. The worker count
// never enters any of those decisions, so results are byte-identical
// across 1, 2, 4 or 64 workers; equiv_test.go and FuzzWindowMerge pin
// this against an independent serial reference.
package par

import (
	"fmt"
	"sort"

	"rmscale/internal/sim"
)

// message is one cross-shard event in flight: a callback to run on the
// destination shard's kernel at an absolute simulated time. src and
// seq identify the send uniquely and deterministically, which is what
// makes the barrier's delivery order canonical.
type message struct {
	at       sim.Time
	src, dst int
	seq      uint64
	fn       func()
}

// Shard is one partition of the model: a private serial kernel plus an
// outbox of cross-shard sends. All model state a shard's events touch
// must belong to that shard alone — the executor enforces the timing
// side of that contract (no sub-lookahead sends) and the race detector
// enforces the memory side in tests.
type Shard struct {
	id      int
	K       *sim.Kernel
	x       *Executor
	sendSeq uint64
	outbox  []message
}

// ID returns the shard's index within its executor.
func (s *Shard) ID() int { return s.id }

// Send schedules fn on shard dst at absolute simulated time at. A send
// to the shard itself is an ordinary local schedule. A cross-shard
// send must be delayed by at least the executor's lookahead — that
// delay is the entire safety argument of the window scheme, so an
// earlier timestamp panics rather than silently corrupting the run.
// Cross-shard sends are buffered in the sending shard's outbox and
// delivered at the next barrier; the destination kernel is never
// touched from inside a window.
func (s *Shard) Send(dst int, at sim.Time, fn func()) {
	if dst < 0 || dst >= len(s.x.shards) {
		panic(fmt.Sprintf("par: send to shard %d of %d", dst, len(s.x.shards)))
	}
	if fn == nil {
		panic("par: send nil func")
	}
	if dst == s.id {
		s.K.Schedule(at, fn)
		return
	}
	if min := s.K.Now() + s.x.lookahead; at < min {
		panic(fmt.Sprintf(
			"par: unsafe send from shard %d to %d: at %v is before now %v + lookahead %v",
			s.id, dst, at, s.K.Now(), s.x.lookahead))
	}
	s.outbox = append(s.outbox, message{at: at, src: s.id, dst: dst, seq: s.sendSeq, fn: fn})
	s.sendSeq++
}

// Stats summarizes one executor run for tests, benches and logs.
type Stats struct {
	// Windows counts barrier rounds executed.
	Windows int
	// Delivered counts cross-shard messages delivered at barriers.
	Delivered int
	// MaxPending is the high-water mark of undelivered cross-shard
	// messages at any barrier.
	MaxPending int
}

// Executor coordinates a fixed set of shards through conservative
// lookahead windows. Construct with New, populate the shards' kernels,
// then Run.
type Executor struct {
	shards    []*Shard
	lookahead sim.Time
	workers   int
	pending   []message // undelivered cross-shard messages
	stats     Stats
}

// New builds an executor with n empty shards. lookahead must be
// positive: a zero lookahead admits same-time cross-shard causality,
// which no window can make safe. workers <= 0 falls back to 1 (fully
// serial execution on the calling goroutine — the reference mode the
// equivalence suite compares against).
func New(n int, lookahead sim.Time, workers int) *Executor {
	if n < 1 {
		panic(fmt.Sprintf("par: %d shards", n))
	}
	if !(lookahead > 0) {
		panic(fmt.Sprintf("par: lookahead %v must be positive", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	x := &Executor{lookahead: lookahead, workers: workers}
	for i := 0; i < n; i++ {
		x.shards = append(x.shards, &Shard{id: i, K: sim.NewKernel(), x: x})
	}
	return x
}

// Shards returns the shard count.
func (x *Executor) Shards() int { return len(x.shards) }

// Shard returns shard i.
func (x *Executor) Shard(i int) *Shard { return x.shards[i] }

// Lookahead returns the configured lookahead.
func (x *Executor) Lookahead() sim.Time { return x.lookahead }

// Workers returns the configured worker-pool size.
func (x *Executor) Workers() int { return x.workers }

// Stats returns the accumulated run statistics.
func (x *Executor) Stats() Stats { return x.stats }

// Run executes every shard's events with at <= until, window by
// window, and returns the total number of events executed. Like the
// serial kernel's Run, it leaves every shard's clock at the horizon so
// rate-style metrics are computed over the full window. Messages
// timestamped beyond the horizon stay pending for a later Run call.
func (x *Executor) Run(until sim.Time) uint64 {
	var before uint64
	for _, s := range x.shards {
		before += s.K.Processed()
	}
	for {
		next, ok := x.nextTime()
		if !ok || next > until {
			break
		}
		wEnd := next + x.lookahead
		strict := true
		if wEnd > until {
			// Final stretch: the lookahead window covers the whole
			// remaining horizon, so run inclusively to it — exactly the
			// bound the serial kernel's Run(until) uses.
			wEnd = until
			strict = false
		}
		x.deliver(wEnd, strict)
		x.runWindow(wEnd, strict)
		for _, s := range x.shards {
			// Outboxes are collected in shard order: together with the
			// per-shard sequence numbers this makes the pending set's
			// canonical delivery order independent of worker scheduling.
			x.pending = append(x.pending, s.outbox...)
			s.outbox = s.outbox[:0]
		}
		if len(x.pending) > x.stats.MaxPending {
			x.stats.MaxPending = len(x.pending)
		}
		x.stats.Windows++
	}
	var total uint64
	for _, s := range x.shards {
		if s.K.Now() < until {
			s.K.AdvanceTo(until)
		}
		total += s.K.Processed()
	}
	return total - before
}

// nextTime returns the earliest pending simulated work across every
// shard's kernel and every undelivered message.
func (x *Executor) nextTime() (sim.Time, bool) {
	var next sim.Time
	ok := false
	for _, s := range x.shards {
		if t, live := s.K.NextTime(); live && (!ok || t < next) {
			next, ok = t, true
		}
	}
	for i := range x.pending {
		if t := x.pending[i].at; !ok || t < next {
			next, ok = t, true
		}
	}
	return next, ok
}

// deliver schedules every pending message due inside the window
// (at < limit, or at <= limit for the final inclusive window) onto its
// destination kernel, in canonical (time, source, sequence) order.
// Delivery happens at the barrier, single-threaded: scheduling
// consumes destination sequence numbers, so its order must be a pure
// function of the messages themselves.
func (x *Executor) deliver(limit sim.Time, strict bool) {
	due := x.pending[:0:0]
	keep := x.pending[:0]
	for _, m := range x.pending {
		if m.at < limit || (!strict && m.at == limit) {
			due = append(due, m)
		} else {
			keep = append(keep, m)
		}
	}
	x.pending = keep
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i], due[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, m := range due {
		x.shards[m.dst].K.Schedule(m.at, m.fn)
	}
	x.stats.Delivered += len(due)
}

// runShardCaught drains one shard's kernel up to the window bound and
// returns the panic value of a failing model callback (or the kernel's
// own refusal to progress) instead of unwinding, so the coordinator can
// report failures identically whether the window ran inline or on a
// worker goroutine. It touches only the shard's own kernel and outbox.
func (x *Executor) runShardCaught(s *Shard, limit sim.Time, strict bool) (failure any) {
	defer func() {
		if r := recover(); r != nil {
			failure = r
		}
	}()
	if strict {
		s.K.RunBefore(limit)
	} else {
		s.K.Run(limit)
	}
	if err := s.K.Err(); err != nil {
		return err
	}
	return nil
}
