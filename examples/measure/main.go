// Measure demonstrates the paper's core contribution end to end: the
// isoefficiency scalability measurement of one RMS. It scales a grid by
// network size, lets the simulated annealing tuner re-tune the scaling
// enablers at each factor so efficiency stays in the band, and reports
// the minimal-overhead curve G(k), its slopes, and the isoefficiency
// condition check.
//
//	go run ./examples/measure
package main

import (
	"fmt"
	"log"

	"rmscale"
)

func main() {
	const (
		baseClusters = 6
		clusterSize  = 8
		utilization  = 0.9
	)

	cache := rmscale.NewSubstrateCache()
	model := rmscale.NewLowest()

	// The evaluator builds and runs the grid at scale factor k with
	// the tuner's enabler vector applied: x[0] is the status update
	// interval, x[1] the neighbourhood size, x[2] the link delay
	// scale (the paper's Table 2 enabler set).
	ev := rmscale.EvaluatorFunc(func(k int, x []float64) (rmscale.Observation, error) {
		cfg := rmscale.DefaultConfig()
		cfg.Spec = rmscale.GridSpec{Clusters: baseClusters * k, ClusterSize: clusterSize}
		cfg.Workload.Clusters = cfg.Spec.Clusters
		cfg.Workload.ArrivalRate = utilization * float64(cfg.Spec.Clusters*clusterSize) / 524.2
		cfg.Workload.Horizon = 2000
		cfg.Horizon = 2000
		cfg.Drain = 2500
		cfg.Enablers.UpdateInterval = x[0]
		cfg.Enablers.NeighborhoodSize = int(x[1])
		cfg.Enablers.LinkDelayScale = x[2]

		sub, err := cache.Get(cfg)
		if err != nil {
			return rmscale.Observation{}, err
		}
		fresh, err := rmscale.ModelByName(model.Name())
		if err != nil {
			return rmscale.Observation{}, err
		}
		eng, err := rmscale.NewEngineWith(cfg, fresh, sub)
		if err != nil {
			return rmscale.Observation{}, err
		}
		s := eng.Run()
		return rmscale.Observation{
			F: s.F, G: s.G, H: s.H,
			Efficiency:   s.Efficiency,
			Throughput:   s.Throughput,
			MeanResponse: s.MeanResponse,
			SuccessRate:  s.SuccessRate,
		}, nil
	})

	spec := rmscale.MeasureSpec{
		RMS: model.Name(),
		Ks:  []int{1, 2, 3, 4},
		Enablers: []rmscale.Enabler{
			{Name: "update-interval", Min: 5, Max: 600, Init: 40},
			{Name: "neighborhood-size", Min: 3, Max: 17, Integer: true, Init: 6},
			{Name: "link-delay-scale", Min: 0.25, Max: 4, Init: 1},
		},
		Band:      rmscale.PaperBand(),
		WarmStart: true,
	}
	spec.Anneal.Iters = 12
	spec.Anneal.Seed = 7

	fmt.Printf("measuring %s, holding E in [%.2f, %.2f]...\n\n",
		model.Name(), spec.Band.Lo, spec.Band.Hi)
	m, err := rmscale.Measure(ev, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("k   G(k)      g(k)   efficiency  tuned update-interval")
	gs := m.NormalizedG()
	for i, p := range m.Points {
		fmt.Printf("%-3d %-9.1f %-6.2f %-11.3f %.1f\n",
			p.K, p.G, gs[i], p.Obs.Efficiency, p.Enablers[0])
	}
	fmt.Printf("\nslopes of G(k): %.3v\n", m.Slopes())

	if at, err := rmscale.ConditionReport(m); err == nil {
		if at < 0 {
			fmt.Println("isoefficiency condition f(k) > c*g(k): holds at every measured scale")
		} else {
			fmt.Printf("isoefficiency condition first fails at k=%d\n", at)
		}
	}
}
