// This file is the package's single concurrency site: the audited
// window barrier. Everything else in package par — and everything in
// every other simulation-visible package — is held to the
// deterministic-kernel discipline (no goroutines, no channels, no
// sync). rmslint's coorddiscipline analyzer enforces that split: the
// package is a registered coordinator, concurrency constructs are
// legal only inside functions that carry a //lint:coordinator mark,
// and every mark must state why the barrier makes them safe.

package par

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rmscale/internal/sim"
)

// runWindow executes one safe window on every shard. With one worker
// (or one shard) it runs inline on the calling goroutine, touching no
// concurrency machinery at all — that is the serial reference mode.
//
// In parallel mode, shards are claimed off an atomic counter by a
// fixed pool of goroutines that all rejoin before this function
// returns. Which worker runs which shard is scheduler-dependent and
// deliberately irrelevant: a shard's window touches only that shard's
// kernel and outbox, and every cross-shard effect is deferred to the
// single-threaded barrier in (time, source, sequence) order. Panics
// inside shard callbacks are caught per shard and re-raised by the
// coordinator for the lowest shard index, so even failure is
// deterministic.
//
//lint:coordinator conservative window barrier: shards share no state inside a window, workers rejoin before any cross-shard delivery, and no ordering decision depends on worker scheduling
func (x *Executor) runWindow(limit sim.Time, strict bool) {
	if x.workers == 1 || len(x.shards) == 1 {
		for i, s := range x.shards {
			if p := x.runShardCaught(s, limit, strict); p != nil {
				panic(fmt.Sprintf("par: window [,%v) shard %d: %v", limit, i, p))
			}
		}
		return
	}
	workers := x.workers
	if workers > len(x.shards) {
		workers = len(x.shards)
	}
	var next atomic.Int64
	panics := make([]any, len(x.shards))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(x.shards) {
					return
				}
				panics[i] = x.runShardCaught(x.shards[i], limit, strict)
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: window [,%v) shard %d: %v", limit, i, p))
		}
	}
}
