package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"rmscale/internal/lint/analysis"
	"rmscale/internal/lint/callgraph"
)

// HotAlloc statically pins the allocation budgets BENCH_sim.json
// guards dynamically. A function marked with a
//
//	//lint:hotpath <reason>
//
// doc-comment directive — the fel.go kernel ops, the Ticker, the
// engine's per-event message fabric, the service dedup fast path — is
// a hot root; the analyzer flags heap-allocation constructs in the
// root and in every callee reachable through statically resolved
// (concrete, single-target) calls:
//
//   - make, new, map and slice composite literals, &T{} literals;
//   - append that grows a different slice than it reads (the
//     self-append `s = append(s, x)` scratch idiom is allowed);
//   - func literals (closure allocation) — except immediately invoked
//     ones, which do not escape;
//   - variadic calls that materialize an argument slice, unless the
//     call sits under the documented `if t.On() { ... }` tracer guard;
//   - interface boxing: concrete arguments to interface parameters,
//     conversions to interface types, panic with a concrete value;
//   - string <-> []byte / []rune conversions, which copy.
//
// Interface dispatch is deliberately not expanded here (unlike
// detertaint): marking one engine call hot must not conscript all
// seven RMS policy implementations into the zero-alloc regime — the
// bench gates still cover dynamic targets. A construct that is
// deliberate (a one-time cold-start allocation, an amortized growth)
// carries //lint:allow hotalloc <reason> at the site.
func HotAlloc() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "hotalloc",
		Doc:  "flag heap-allocation constructs in //lint:hotpath functions and their statically resolved callees",
	}
	a.Run = func(p *analysis.Pass) error {
		g := passGraph(p)
		hot := hotOf(g)
		for _, n := range g.Nodes() {
			if n.Pkg.Pkg != p.Pkg {
				continue
			}
			root, ok := hot.root[n]
			if !ok {
				continue
			}
			checkHotBody(p, n, root)
		}
		return nil
	}
	return a
}

// hotState maps each hot node to the marked root that made it hot.
type hotState struct {
	root map[*callgraph.Node]*callgraph.Node
}

// hotOf computes (once per graph, memoized) the hot set: nodes whose
// doc comment carries //lint:hotpath, plus everything reachable from
// them through concrete single-target calls.
func hotOf(g *callgraph.Graph) *hotState {
	if h, ok := g.Memo["hotalloc"].(*hotState); ok {
		return h
	}
	h := &hotState{root: map[*callgraph.Node]*callgraph.Node{}}
	g.Memo["hotalloc"] = h
	var work []*callgraph.Node
	for _, n := range g.Nodes() {
		if hotpathMarked(n.Decl) {
			h.root[n] = n
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, call := range n.Calls {
			if call.Interface || len(call.Targets) != 1 {
				continue
			}
			t := call.Targets[0]
			if _, done := h.root[t]; done {
				continue
			}
			h.root[t] = h.root[n]
			work = append(work, t)
		}
	}
	return h
}

// hotpathMarked reports whether the declaration's doc comment carries
// a //lint:hotpath directive. Reason validation happens in
// parseDirectives, on the production suppression path.
func hotpathMarked(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if verb, _, _ := cutDirective(c.Text); verb == "hotpath" {
			return true
		}
	}
	return false
}

// checkHotBody flags allocation constructs in one hot function.
func checkHotBody(p *analysis.Pass, n *callgraph.Node, root *callgraph.Node) {
	where := "in //lint:hotpath function " + callgraph.FuncLabel(n.Fn)
	if root != n {
		where = "on the hot path rooted at //lint:hotpath " + callgraph.FuncLabel(root.Fn) +
			" (via " + callgraph.FuncLabel(n.Fn) + ")"
	}
	parents := buildParents(n.File)
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			checkHotCall(p, nd, parents, where)
		case *ast.CompositeLit:
			t := p.TypeOf(nd)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(nd.Pos(), "map literal allocates %s", where)
			case *types.Slice:
				p.Reportf(nd.Pos(), "slice literal allocates a backing array %s", where)
			}
		case *ast.UnaryExpr:
			if nd.Op == token.AND {
				if _, ok := nd.X.(*ast.CompositeLit); ok {
					p.Reportf(nd.Pos(), "&composite literal escapes to the heap %s", where)
				}
			}
		case *ast.FuncLit:
			if call, ok := parents[nd].(*ast.CallExpr); !ok || call.Fun != ast.Expr(nd) {
				p.Reportf(nd.Pos(), "func literal allocates a closure %s", where)
			}
		}
		return true
	})
}

// checkHotCall flags the allocating call shapes: builtins, variadic
// materialization, interface boxing, copying conversions.
func checkHotCall(p *analysis.Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node, where string) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		checkHotConversion(p, call, tv.Type, where)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := p.Info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				p.Reportf(call.Pos(), "make allocates %s", where)
			case "new":
				p.Reportf(call.Pos(), "new allocates %s", where)
			case "append":
				if !selfAppend(call, parents) {
					p.Reportf(call.Pos(), "append grows a new backing array %s (self-append scratch reuse is exempt)", where)
				}
			case "panic":
				if len(call.Args) == 1 && boxes(p, call.Args[0]) {
					p.Reportf(call.Pos(), "panic boxes its argument into an interface %s", where)
				}
			}
			return
		}
	}
	sigT := p.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		if !onGuarded(p, call, parents) {
			p.Reportf(call.Pos(), "variadic call %s materializes an argument slice %s (guard with the On() idiom or annotate)",
				exprString(call.Fun), where)
		}
		return // per-arg boxing inside the variadic slot folds into this report
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		pt := sig.Params().At(i).Type()
		if types.IsInterface(pt) && boxes(p, arg) {
			p.Reportf(arg.Pos(), "argument boxes %s into interface %s %s", exprString(arg), pt.String(), where)
		}
	}
}

// checkHotConversion flags conversions that copy or box.
func checkHotConversion(p *analysis.Pass, call *ast.CallExpr, to types.Type, where string) {
	if len(call.Args) != 1 {
		return
	}
	from := p.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if types.IsInterface(to) {
		if boxes(p, call.Args[0]) {
			p.Reportf(call.Pos(), "conversion boxes %s into interface %s %s", exprString(call.Args[0]), to.String(), where)
		}
		return
	}
	if copiesOnConvert(from, to) || copiesOnConvert(to, from) {
		p.Reportf(call.Pos(), "conversion to %s copies its operand %s", to.String(), where)
	}
}

// copiesOnConvert reports string -> []byte / []rune shapes.
func copiesOnConvert(from, to types.Type) bool {
	fb, ok := from.Underlying().(*types.Basic)
	if !ok || fb.Info()&types.IsString == 0 {
		return false
	}
	ts, ok := to.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	eb, ok := ts.Elem().Underlying().(*types.Basic)
	return ok && (eb.Kind() == types.Byte || eb.Kind() == types.Rune || eb.Kind() == types.Uint8 || eb.Kind() == types.Int32)
}

// boxes reports whether passing e to an interface slot allocates: a
// concrete, non-nil, non-interface value does.
func boxes(p *analysis.Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	if tv.Type == nil || types.IsInterface(tv.Type) {
		return false
	}
	return true
}

// selfAppend reports the `s = append(s, ...)` scratch idiom: the
// destination and the first argument render to the same expression.
func selfAppend(call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	as, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, rhs := range as.Rhs {
		if rhs == ast.Expr(call) && i < len(as.Lhs) {
			return exprString(as.Lhs[i]) == exprString(call.Args[0])
		}
	}
	return false
}

// onGuarded reports whether the call sits under an `if x.On() { ... }`
// guard inside the same function — the documented tracer idiom: the
// variadic slice is only materialized when tracing is enabled, which
// never happens on a measured run.
func onGuarded(p *analysis.Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	for n := ast.Node(call); n != nil; n = parents[n] {
		if ifs, ok := n.(*ast.IfStmt); ok && condCallsOn(ifs.Cond) {
			return true
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

func condCallsOn(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "On" {
				found = true
			}
		}
		return !found
	})
	return found
}
