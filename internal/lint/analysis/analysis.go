// Package analysis is a deliberately small, dependency-free stand-in
// for golang.org/x/tools/go/analysis: enough surface for rmslint's
// analyzers to be written in the upstream style (an Analyzer value
// whose Run inspects a typed Pass and reports Diagnostics) without
// pulling x/tools into the module. If the module ever vendors
// x/tools, the analyzers port mechanically: the field names and the
// Pass shape match the upstream API on purpose.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker. Name doubles as the
// identifier used by //lint:allow directives and by the package
// allow/deny configuration.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is one (analyzer, package) unit of work. All fields are
// read-only for the analyzer; diagnostics flow out through Report.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Shared carries run-wide state the driver computed once for the
	// whole module — rmslint stores the call graph here so the
	// interprocedural analyzers share one resolution pass instead of
	// rebuilding it per (analyzer, package). Mirrors the role of
	// upstream's ResultOf, collapsed to a single slot.
	Shared any

	diags []Diagnostic
}

// Diagnostic is one reported violation. SuppressPos, when set, is the
// position a //lint: directive must cover to silence the diagnostic —
// analyzers that report inside a construct (a loop body) anchor
// suppression on the construct itself, so one annotated loop header
// covers its body.
type Diagnostic struct {
	Pos         token.Pos
	SuppressPos token.Pos
	Message     string
	Analyzer    string
}

// Position resolves the diagnostic position against a file set.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// String renders the diagnostic in go vet's position format:
// file:line:col: message (analyzer).
func (d Diagnostic) format(fset *token.FileSet) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s (%s)", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ReportfAnchored records a diagnostic at pos whose suppression
// directive may sit at anchor instead (e.g. on the loop header the
// violation lives inside).
func (p *Pass) ReportfAnchored(anchor, pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:         pos,
		SuppressPos: anchor,
		Message:     fmt.Sprintf(format, args...),
		Analyzer:    p.Analyzer.Name,
	})
}

// TypeOf returns the type of e, or nil when the checker could not
// resolve it.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// PkgNameOf resolves an identifier to the imported package it names,
// or nil when the identifier is not a package qualifier.
func (p *Pass) PkgNameOf(id *ast.Ident) *types.PkgName {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// SelectorOf decomposes e into (package path, selected name) when e is
// a selector on an imported package qualifier, e.g. time.Now ->
// ("time", "Now"). The bool reports whether e had that shape.
func (p *Pass) SelectorOf(e ast.Expr) (path, name string, ok bool) {
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn := p.PkgNameOf(id)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// Diagnostics returns the diagnostics the pass collected, in source
// order.
func (p *Pass) Diagnostics() []Diagnostic {
	out := append([]Diagnostic(nil), p.diags...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Format renders diagnostics one per line in vet's position format.
func Format(fset *token.FileSet, diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.format(fset)
	}
	return out
}
