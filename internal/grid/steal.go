package grid

// StealQueuedJob removes the most recently queued (not yet running) job
// from the most backlogged resource of the cluster and returns its
// envelope, or nil when nothing is waiting. It models the scheduler's
// virtual wait queue in the superscheduler and auction models: the
// scheduler knows what it dispatched, so reclaiming a waiting job is a
// bookkeeping operation; the subsequent transfer still pays full message
// costs and delays.
func (e *Engine) StealQueuedJob(cluster int) *JobCtx {
	var victim *Resource
	most := 0
	for _, rid := range e.Map.ClusterResources[cluster] {
		r := e.Resources[rid]
		if !r.down && len(r.queue) > most {
			victim, most = r, len(r.queue)
		}
	}
	if victim == nil {
		return nil
	}
	ctx := victim.queue[len(victim.queue)-1]
	victim.queue = victim.queue[:len(victim.queue)-1]
	victim.dirty = true
	// The stolen job is the scheduler's responsibility again until it
	// is re-dispatched or transferred (no-op without faults armed).
	e.Schedulers[cluster].own(ctx)
	// The scheduler's optimistic view of this resource is now one too
	// high; the next status update heals it.
	return ctx
}

// QueuedJobs reports how many dispatched jobs are waiting (not running)
// in the cluster — the occupancy of the virtual wait queue.
func (e *Engine) QueuedJobs(cluster int) int {
	n := 0
	for _, rid := range e.Map.ClusterResources[cluster] {
		n += len(e.Resources[rid].queue)
	}
	return n
}
