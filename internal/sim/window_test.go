package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRunBeforeExcludesHorizon(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{1, 3, 5, 5.5} {
		at := at
		k.Schedule(at, func() { got = append(got, at) })
	}
	n := k.RunBefore(5)
	if n != 2 {
		t.Fatalf("RunBefore(5) executed %d events, want 2", n)
	}
	if !reflect.DeepEqual(got, []Time{1, 3}) {
		t.Fatalf("RunBefore(5) executed %v, want [1 3]", got)
	}
	if k.Now() != 3 {
		t.Fatalf("clock at %v after RunBefore(5), want 3 (never the horizon)", k.Now())
	}
	// The excluded events are intact and run on the next call.
	if n := k.RunBefore(6); n != 2 {
		t.Fatalf("second RunBefore(6) executed %d events, want 2", n)
	}
	if !reflect.DeepEqual(got, []Time{1, 3, 5, 5.5}) {
		t.Fatalf("after both windows got %v", got)
	}
}

// TestWindowedRunMatchesSerialRun is the kernel-level equivalence
// property behind the parallel executor: slicing a run into strict
// windows plus a final inclusive Run executes exactly the events, in
// exactly the order, of one serial Run.
func TestWindowedRunMatchesSerialRun(t *testing.T) {
	prop := func(seed int64, windowsRaw uint8) bool {
		build := func(k *Kernel, log *[]Time) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				at := Time(rng.Intn(64)) / 2
				k.Schedule(at, func() { *log = append(*log, at) })
			}
		}
		var serialLog []Time
		serial := NewKernel()
		build(serial, &serialLog)
		nSerial := serial.Run(30)

		var winLog []Time
		win := NewKernel()
		build(win, &winLog)
		var nWin uint64
		step := Time(1 + windowsRaw%9)
		var h Time
		for h = step; h < 30; h += step {
			nWin += win.RunBefore(h)
		}
		nWin += win.Run(30)

		if nSerial != nWin {
			t.Fatalf("seed %d step %v: serial ran %d events, windowed %d", seed, step, nSerial, nWin)
		}
		if !reflect.DeepEqual(serialLog, winLog) {
			t.Fatalf("seed %d step %v: orders diverge", seed, step)
		}
		if serial.Now() != win.Now() {
			t.Fatalf("seed %d step %v: clocks diverge: %v vs %v", seed, step, serial.Now(), win.Now())
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNextTimeReportsEarliestLiveEvent(t *testing.T) {
	k := NewKernel()
	if _, ok := k.NextTime(); ok {
		t.Fatalf("NextTime reported an event on an empty kernel")
	}
	e1 := k.Schedule(2, func() {})
	k.Schedule(5, func() {})
	if at, ok := k.NextTime(); !ok || at != 2 {
		t.Fatalf("NextTime = (%v, %v), want (2, true)", at, ok)
	}
	// Cancelling the head must make NextTime collect it and report the
	// next live event, exactly as the dispatch loop would.
	k.Cancel(e1)
	if at, ok := k.NextTime(); !ok || at != 5 {
		t.Fatalf("NextTime after cancel = (%v, %v), want (5, true)", at, ok)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d after head collection, want 1", k.Pending())
	}
}

func TestNextTimeIsBehaviourInvisible(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{4, 1, 3} {
		at := at
		k.Schedule(at, func() { got = append(got, at) })
	}
	k.NextTime()
	k.Run(10)
	if !reflect.DeepEqual(got, []Time{1, 3, 4}) {
		t.Fatalf("order after NextTime peek: %v", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	k := NewKernel()
	k.AdvanceTo(7)
	if k.Now() != 7 {
		t.Fatalf("Now = %v after AdvanceTo(7)", k.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("AdvanceTo backwards did not panic")
			}
		}()
		k.AdvanceTo(6)
	}()
	k.Schedule(10, func() {})
	// Advancing exactly to a pending event's time is legal; past it is not.
	k.AdvanceTo(10)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("AdvanceTo past a pending event did not panic")
			}
		}()
		k.AdvanceTo(11)
	}()
}

func TestAdvanceToIgnoresCancelledEvents(t *testing.T) {
	k := NewKernel()
	e := k.Schedule(3, func() {})
	k.Cancel(e)
	k.AdvanceTo(8)
	if k.Now() != 8 {
		t.Fatalf("Now = %v, want 8", k.Now())
	}
}
