package rms

import (
	"testing"

	"rmscale/internal/grid"
)

// smallConfig returns a quick configuration exercising every code path.
func smallConfig() grid.Config {
	cfg := grid.DefaultConfig()
	cfg.Spec.Clusters = 6
	cfg.Spec.ClusterSize = 8
	cfg.Workload.Clusters = 6
	cfg.Workload.ArrivalRate = 0.0824 // ~0.9 utilization on 48 resources
	cfg.Workload.Horizon = 2500
	cfg.Horizon = 2500
	cfg.Drain = 2500
	return cfg
}

func runModel(t *testing.T, p grid.Policy, cfg grid.Config) grid.Summary {
	t.Helper()
	e, err := grid.New(cfg, p)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	sum := e.Run()
	if e.K.Overflowed {
		t.Fatalf("%s: event budget overflow", p.Name())
	}
	return sum
}

// TestAllModelsSmoke runs every model end-to-end and checks the
// conservation invariants of the accounting.
func TestAllModelsSmoke(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			cfg := smallConfig()
			e, err := grid.New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			sum := e.Run()
			m := e.Metrics
			t.Logf("%s: %v transfers=%d polls=%d updates=%d suppressed=%d unfinished=%d",
				p.Name(), sum, m.JobTransfers, m.PolicyMsgs, m.UpdatesSent, m.UpdatesSuppressed, e.Unfinished())

			if m.JobsArrived == 0 {
				t.Fatal("no jobs arrived")
			}
			if m.JobsCompleted == 0 {
				t.Fatal("no jobs completed")
			}
			if m.JobsCompleted+m.JobsLost+e.Unfinished() != m.JobsArrived {
				t.Fatalf("job conservation violated: %d completed + %d lost + %d unfinished != %d arrived",
					m.JobsCompleted, m.JobsLost, e.Unfinished(), m.JobsArrived)
			}
			if m.JobsSucceeded > m.JobsCompleted {
				t.Fatal("more successes than completions")
			}
			if sum.F < 0 || sum.G < 0 || sum.H < 0 {
				t.Fatalf("negative accounting: %+v", sum)
			}
			if sum.G == 0 {
				t.Fatal("RMS overhead is zero; scheduling must cost something")
			}
			if sum.Efficiency <= 0 || sum.Efficiency >= 1 {
				t.Fatalf("efficiency %v outside (0,1)", sum.Efficiency)
			}
			// The vast majority of jobs must finish in a drained run.
			if frac := float64(m.JobsCompleted) / float64(m.JobsArrived); frac < 0.9 {
				t.Fatalf("only %.2f of jobs completed", frac)
			}
			if m.UpdatesSent == 0 {
				t.Fatal("no status updates sent")
			}
			if m.UpdatesSuppressed == 0 {
				t.Fatal("update suppression never triggered")
			}
		})
	}
}

// TestDistributedModelsTransferLoad checks that every non-central model
// actually moves REMOTE jobs between clusters.
func TestDistributedModelsTransferLoad(t *testing.T) {
	for _, p := range All() {
		p := p
		if p.Central() {
			continue
		}
		t.Run(p.Name(), func(t *testing.T) {
			cfg := smallConfig()
			e, err := grid.New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			e.Run()
			if e.Metrics.JobTransfers == 0 {
				t.Fatalf("%s never transferred a job", p.Name())
			}
			if e.Metrics.PolicyMsgs == 0 {
				t.Fatalf("%s never exchanged protocol messages", p.Name())
			}
		})
	}
}

// TestDeterminism: same seed, same policy type, identical summaries.
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"CENTRAL", "LOWEST", "AUCTION", "Sy-I"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig()
			p1, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p2, _ := ByName(name)
			a := runModel(t, p1, cfg)
			b := runModel(t, p2, cfg)
			if a != b {
				t.Fatalf("same seed diverged:\n a=%v\n b=%v", a, b)
			}
		})
	}
}

// TestSeedSensitivity: different seeds give different summaries.
func TestSeedSensitivity(t *testing.T) {
	cfg := smallConfig()
	a := runModel(t, NewLowest(), cfg)
	cfg.Seed = 999
	b := runModel(t, NewLowest(), cfg)
	if a == b {
		t.Fatal("different seeds produced identical summaries")
	}
}
