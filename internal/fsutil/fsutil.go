// Package fsutil holds the module's durable-write primitives: the
// atomic whole-file write (temp file + fsync + rename) and the synced
// append that makes each record of an append-only log an atomic commit
// point. They were born in internal/runner for the checkpoint journal
// and disk cache; the rmscaled result store shares the exact same
// crash-consistency needs, so the helpers live here and both reuse
// them instead of duplicating temp-file logic.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes land in a temporary file in the same
// directory, are flushed to stable storage, and are then renamed over
// the destination. An interrupted writer leaves either the old content
// or the new content, never a truncated mix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsutil: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("fsutil: atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fsutil: atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fsutil: atomic write %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		return fmt.Errorf("fsutil: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("fsutil: atomic write %s: %w", path, err)
	}
	return nil
}

// AppendSync appends b to f with a single write followed by an fsync.
// Used on an append-only log it makes each record a durable commit
// point: a crash mid-append leaves at most one truncated final record,
// and everything written before the last successful AppendSync
// survives.
func AppendSync(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return fmt.Errorf("fsutil: append %s: %w", f.Name(), err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("fsutil: sync %s: %w", f.Name(), err)
	}
	return nil
}

// FS is the injectable seam over the durable-write primitives. The
// result store and journals write through an FS value instead of
// calling the package functions directly, so fault-injection harnesses
// (internal/service/chaos) can script disk-full and flaky-write
// behaviour without touching a real filesystem knob. Production code
// passes RealFS (or nil, which callers default to RealFS).
type FS interface {
	// WriteFileAtomic is the atomic whole-file write.
	WriteFileAtomic(path string, data []byte, perm os.FileMode) error
	// AppendSync is the synced append commit point.
	AppendSync(f *os.File, b []byte) error
}

// RealFS is the production FS: the package's own primitives.
type RealFS struct{}

// WriteFileAtomic implements FS with the package primitive.
func (RealFS) WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomic(path, data, perm)
}

// AppendSync implements FS with the package primitive.
func (RealFS) AppendSync(f *os.File, b []byte) error { return AppendSync(f, b) }
