package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestReporterSnapshotAndRunstate(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	r := NewReporter(cache, dir, &log)
	r.AddTotal(2)
	r.TaskStart(0, "case1/CENTRAL")

	s := r.Snapshot()
	if s.JobsTotal != 2 || s.JobsDone != 0 {
		t.Fatalf("snapshot %+v", s)
	}
	if len(s.Workers) != 1 || s.Workers[0].Job != "case1/CENTRAL" {
		t.Fatalf("worker status missing: %+v", s.Workers)
	}

	r.TaskDone(0, "case1/CENTRAL", nil)
	r.PointDone()
	r.Finish()

	b, err := os.ReadFile(filepath.Join(dir, runstateName))
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.JobsDone != 1 || got.Points != 1 || !got.Done {
		t.Fatalf("runstate %+v", got)
	}
	if log.Len() == 0 {
		t.Fatal("no progress lines logged")
	}
}

func TestReporterETA(t *testing.T) {
	r := NewReporter(nil, "", nil)
	r.AddTotal(4)
	r.TaskStart(0, "a")
	r.TaskDone(0, "a", nil)
	s := r.Snapshot()
	if s.ETASec < 0 {
		t.Fatalf("no ETA once a job completed: %+v", s)
	}
}

// TestRunEndToEnd drives the Run façade: submit tasks through the pool,
// record to the journal, and confirm the final runstate lands.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	run, err := Start(Options{Workers: 2, Dir: dir, Fingerprint: "fp", Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if run.Resumed {
		t.Fatal("fresh run reported resumed")
	}
	run.Report.AddTotal(3)
	for i := 0; i < 3; i++ {
		i := i
		run.Pool.Submit(Task{ID: "job", Run: func(tc *TaskCtx) error {
			return run.Journal.Record(pointName(i+1), fakePoint{K: i + 1})
		}})
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}

	run2, err := Start(Options{Workers: 1, Dir: dir, Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if !run2.Resumed {
		t.Fatal("second run did not resume")
	}
	if run2.Journal.Len() != 3 {
		t.Fatalf("journal lost records: %d", run2.Journal.Len())
	}
	if err := run2.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, runstateName)); err != nil {
		t.Fatal(err)
	}
}
