package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool(context.Background(), 4, nil)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(Task{ID: fmt.Sprintf("t%d", i), Run: func(tc *TaskCtx) error {
			ran.Add(1)
			return nil
		}})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", ran.Load())
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(context.Background(), 0, nil)
	if p.Workers() < 1 {
		t.Fatalf("pool has %d workers", p.Workers())
	}
	p.Submit(Task{ID: "noop", Run: func(tc *TaskCtx) error { return nil }})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolStealsSpawnedWork submits one parent that spawns many slow
// subtasks onto its own deque and checks that siblings steal them: the
// subtasks must run on more than one worker.
func TestPoolStealsSpawnedWork(t *testing.T) {
	p := NewPool(context.Background(), 4, nil)
	var mu sync.Mutex
	workers := make(map[int]int)
	p.Submit(Task{ID: "parent", Run: func(tc *TaskCtx) error {
		for i := 0; i < 32; i++ {
			tc.Spawn(Task{ID: fmt.Sprintf("child%d", i), Run: func(tc *TaskCtx) error {
				mu.Lock()
				workers[tc.Worker()]++
				mu.Unlock()
				time.Sleep(2 * time.Millisecond) // long enough for thieves to wake
				return nil
			}})
		}
		return nil
	}})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range workers {
		total += n
	}
	if total != 32 {
		t.Fatalf("ran %d of 32 spawned tasks", total)
	}
	if len(workers) < 2 {
		t.Fatalf("all spawned tasks ran on one worker; stealing never happened: %v", workers)
	}
}

func TestPoolFirstErrorCancelsRest(t *testing.T) {
	p := NewPool(context.Background(), 2, nil)
	boom := errors.New("boom")
	var after atomic.Int64
	p.Submit(Task{ID: "bad", Run: func(tc *TaskCtx) error { return boom }})
	for i := 0; i < 50; i++ {
		p.Submit(Task{ID: fmt.Sprintf("later%d", i), Run: func(tc *TaskCtx) error {
			if tc.Err() != nil {
				return tc.Err()
			}
			after.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		}})
	}
	err := p.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait returned %v, want the task error", err)
	}
	if after.Load() == 50 {
		t.Fatal("error did not cancel any queued work")
	}
}

func TestPoolContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, 2, nil)
	started := make(chan struct{})
	var once sync.Once
	for i := 0; i < 20; i++ {
		p.Submit(Task{ID: fmt.Sprintf("t%d", i), Run: func(tc *TaskCtx) error {
			once.Do(func() { close(started) })
			<-tc.Done()
			return tc.Err()
		}})
	}
	<-started
	cancel()
	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
}

func TestPoolRecoversPanics(t *testing.T) {
	p := NewPool(context.Background(), 2, nil)
	p.Submit(Task{ID: "panics", Run: func(tc *TaskCtx) error { panic("kaboom") }})
	err := p.Wait()
	if err == nil {
		t.Fatal("panic was swallowed")
	}
}

// TestPoolPanicCarriesStack: the converted panic error must identify
// the task and carry the goroutine stack, so a failure in hour ten of
// a sweep is still debuggable from the error alone.
func TestPoolPanicCarriesStack(t *testing.T) {
	p := NewPool(context.Background(), 2, nil)
	p.SetKeepGoing(true)
	p.Submit(Task{ID: "exploder", Run: func(tc *TaskCtx) error { panic("kaboom") }})
	err := p.Wait()
	if err == nil {
		t.Fatal("panic was swallowed")
	}
	for _, want := range []string{"exploder", "kaboom", "goroutine", "pool_test.go"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("panic error lacks %q:\n%v", want, err)
		}
	}
}

// TestPoolKeepGoingCompletesRest: in keep-going mode a panicking task
// surfaces as that task's error while every other task still runs to
// completion, and Wait joins all the errors.
func TestPoolKeepGoingCompletesRest(t *testing.T) {
	p := NewPool(context.Background(), 2, nil)
	p.SetKeepGoing(true)
	boom := errors.New("boom")
	var ran atomic.Int64
	p.Submit(Task{ID: "panics", Run: func(tc *TaskCtx) error { panic("kaboom") }})
	p.Submit(Task{ID: "fails", Run: func(tc *TaskCtx) error { return boom }})
	for i := 0; i < 50; i++ {
		p.Submit(Task{ID: fmt.Sprintf("ok%d", i), Run: func(tc *TaskCtx) error {
			if tc.Err() != nil {
				return tc.Err()
			}
			ran.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		}})
	}
	err := p.Wait()
	if err == nil {
		t.Fatal("task errors were swallowed")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("joined error lost the plain task error: %v", err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("joined error lost the panic: %v", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("only %d of 50 healthy tasks completed after the failures", ran.Load())
	}
}

// TestPoolTaskRetries: a task that fails transiently must be re-run up
// to the retry budget and succeed without surfacing an error; one that
// always fails surfaces its error after exhausting the budget.
func TestPoolTaskRetries(t *testing.T) {
	p := NewPool(context.Background(), 2, nil)
	p.SetTaskRetries(2)
	var flaky, stubborn atomic.Int64
	p.Submit(Task{ID: "flaky", Run: func(tc *TaskCtx) error {
		if flaky.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}})
	if err := p.Wait(); err != nil {
		t.Fatalf("flaky task failed despite retry budget: %v", err)
	}
	if flaky.Load() != 3 {
		t.Fatalf("flaky task ran %d times, want 3", flaky.Load())
	}

	p = NewPool(context.Background(), 2, nil)
	p.SetTaskRetries(2)
	p.SetKeepGoing(true)
	p.Submit(Task{ID: "stubborn", Run: func(tc *TaskCtx) error {
		stubborn.Add(1)
		return errors.New("permanent")
	}})
	if err := p.Wait(); err == nil {
		t.Fatal("permanently failing task reported success")
	}
	if stubborn.Load() != 3 {
		t.Fatalf("stubborn task ran %d times, want 3 (1 + 2 retries)", stubborn.Load())
	}
}

type recordingObserver struct {
	mu      sync.Mutex
	started []string
	done    []string
}

func (o *recordingObserver) TaskStart(w int, id string) {
	o.mu.Lock()
	o.started = append(o.started, id)
	o.mu.Unlock()
}

func (o *recordingObserver) TaskDone(w int, id string, err error) {
	o.mu.Lock()
	o.done = append(o.done, id)
	o.mu.Unlock()
}

func TestPoolObserverSeesLifecycle(t *testing.T) {
	obs := &recordingObserver{}
	p := NewPool(context.Background(), 2, obs)
	for i := 0; i < 5; i++ {
		p.Submit(Task{ID: fmt.Sprintf("t%d", i), Run: func(tc *TaskCtx) error { return nil }})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(obs.started) != 5 || len(obs.done) != 5 {
		t.Fatalf("observer saw %d starts, %d dones, want 5/5", len(obs.started), len(obs.done))
	}
}
