package anneal

import (
	"math"
	"testing"
)

func sphere(x []float64) Result {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return Result{Cost: s, Feasible: true}
}

func TestMinimizeSphere(t *testing.T) {
	dims := []Dim{
		{Name: "x", Min: -10, Max: 10},
		{Name: "y", Min: -10, Max: 10},
	}
	out, err := Minimize(dims, nil, sphere, Options{Iters: 300, Restarts: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Cost > 0.5 {
		t.Fatalf("sphere minimum not found: x=%v cost=%v", out.X, out.Result.Cost)
	}
	if !out.Result.Feasible {
		t.Fatal("sphere result marked infeasible")
	}
}

func TestMinimizeRespectsBounds(t *testing.T) {
	dims := []Dim{{Name: "x", Min: 3, Max: 7}}
	// Minimum of (x-0)^2 over [3,7] is at the boundary x=3.
	out, err := Minimize(dims, nil, sphere, Options{Iters: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.X[0] < 3 || out.X[0] > 7 {
		t.Fatalf("out of bounds: %v", out.X)
	}
	if math.Abs(out.X[0]-3) > 0.2 {
		t.Fatalf("boundary minimum missed: %v", out.X)
	}
}

func TestMinimizeIntegerDims(t *testing.T) {
	dims := []Dim{{Name: "n", Min: 1, Max: 20, Integer: true}}
	obj := func(x []float64) Result {
		d := x[0] - 13
		return Result{Cost: d * d, Feasible: true}
	}
	out, err := Minimize(dims, nil, obj, Options{Iters: 200, Restarts: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.X[0] != math.Trunc(out.X[0]) {
		t.Fatalf("integer dimension returned non-integer %v", out.X[0])
	}
	if out.X[0] != 13 {
		t.Fatalf("integer optimum missed: %v", out.X[0])
	}
}

func TestMinimizePrefersFeasible(t *testing.T) {
	// Cheap region is infeasible; the feasible region costs more.
	dims := []Dim{{Name: "x", Min: 0, Max: 10}}
	obj := func(x []float64) Result {
		if x[0] < 5 {
			return Result{Cost: x[0], Penalty: 100 * (5 - x[0]), Feasible: false}
		}
		return Result{Cost: x[0], Feasible: true}
	}
	out, err := Minimize(dims, nil, obj, Options{Iters: 250, Restarts: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Feasible {
		t.Fatalf("feasible optimum exists but search returned infeasible x=%v", out.X)
	}
	if math.Abs(out.X[0]-5) > 0.3 {
		t.Fatalf("constrained optimum should sit at the boundary 5, got %v", out.X[0])
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	dims := []Dim{{Name: "x", Min: -5, Max: 5}, {Name: "y", Min: -5, Max: 5}}
	a, err := Minimize(dims, nil, sphere, Options{Iters: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimize(dims, nil, sphere, Options{Iters: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Cost != b.Result.Cost || a.X[0] != b.X[0] || a.X[1] != b.X[1] {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestMinimizeUsesStartPoint(t *testing.T) {
	dims := []Dim{{Name: "x", Min: -100, Max: 100}}
	evals := 0
	obj := func(x []float64) Result {
		evals++
		d := x[0] - 42
		return Result{Cost: d * d, Feasible: true}
	}
	out, err := Minimize(dims, []float64{42}, obj, Options{Iters: 30, Restarts: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.X[0]-42) > 2 {
		t.Fatalf("drifted away from perfect start: %v", out.X[0])
	}
}

func TestMinimizeCache(t *testing.T) {
	dims := []Dim{{Name: "n", Min: 0, Max: 3, Integer: true}}
	evals := 0
	obj := func(x []float64) Result {
		evals++
		return Result{Cost: x[0], Feasible: true}
	}
	out, err := Minimize(dims, nil, obj, Options{Iters: 200, Restarts: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Only 4 distinct points exist; the cache must absorb the rest.
	if evals > 4 {
		t.Fatalf("cache ineffective: %d evaluations for 4 distinct points", evals)
	}
	if out.Evals != evals {
		t.Fatalf("Evals miscounted: %d vs %d", out.Evals, evals)
	}
	if out.CacheHit == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestMinimizeErrors(t *testing.T) {
	if _, err := Minimize(nil, nil, sphere, Options{}); err == nil {
		t.Error("no dimensions accepted")
	}
	if _, err := Minimize([]Dim{{Min: 2, Max: 1}}, nil, sphere, Options{}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := Minimize([]Dim{{Min: 0, Max: 1}}, nil, nil, Options{}); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Iters <= 0 || o.Restarts <= 0 || o.T0 <= 0 || o.Step <= 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		t.Fatalf("cooling out of range: %v", o.Cooling)
	}
}

func TestBetterOrdering(t *testing.T) {
	feasible := Result{Cost: 10, Feasible: true}
	cheapInfeasible := Result{Cost: 1, Feasible: false}
	if !better(feasible, cheapInfeasible) {
		t.Error("feasible must beat cheaper infeasible")
	}
	if better(cheapInfeasible, feasible) {
		t.Error("infeasible must not beat feasible")
	}
	a := Result{Cost: 1, Penalty: 5, Feasible: true}
	b := Result{Cost: 4, Penalty: 0, Feasible: true}
	if better(a, b) {
		t.Error("energy must include penalty")
	}
}

// sharedCache is a test EvalCache recording traffic.
type sharedCache struct {
	m    map[string]Result
	hits int
	puts int
}

func (c *sharedCache) Get(key string) (Result, bool) {
	r, ok := c.m[key]
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *sharedCache) Put(key string, r Result) { c.m[key] = r; c.puts++ }

// TestEvalCacheHook checks that a caller-supplied cache replaces the
// private memo: a second search over a warm cache performs zero fresh
// evaluations yet lands on the identical outcome.
func TestEvalCacheHook(t *testing.T) {
	dims := []Dim{{Name: "x", Min: -4, Max: 4}}
	obj := func(x []float64) Result {
		v := (x[0] - 1) * (x[0] - 1)
		return Result{Cost: v, Feasible: true}
	}
	o := Options{Iters: 25, Restarts: 2, Seed: 11}

	cache := &sharedCache{m: make(map[string]Result)}
	o.Cache = cache
	first, err := Minimize(dims, nil, obj, o)
	if err != nil {
		t.Fatal(err)
	}
	if cache.puts == 0 {
		t.Fatal("cache saw no evaluations")
	}
	if first.Evals == 0 {
		t.Fatal("first search reported zero evaluations")
	}

	second, err := Minimize(dims, nil, obj, o)
	if err != nil {
		t.Fatal(err)
	}
	if second.Evals != 0 {
		t.Fatalf("warm search re-evaluated %d points", second.Evals)
	}
	if second.CacheHit == 0 {
		t.Fatal("warm search reported no cache hits")
	}
	if second.X[0] != first.X[0] || second.Result.Cost != first.Result.Cost {
		t.Fatalf("warm search diverged: %v vs %v", second, first)
	}
}

func TestPointKeyQuantizes(t *testing.T) {
	a := PointKey([]float64{1.000001, 2})
	b := PointKey([]float64{1.0000012, 2})
	if a != b {
		t.Fatalf("keys differ below quantization: %q vs %q", a, b)
	}
	c := PointKey([]float64{1.1, 2})
	if a == c {
		t.Fatal("distinct points share a key")
	}
}
