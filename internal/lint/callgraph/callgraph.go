// Package callgraph builds a static call graph over the module's
// type-checked packages, shared by rmslint's interprocedural
// analyzers (detertaint, hotalloc, locksafe). The graph is built once
// per lint run from the packages the loader already type-checked —
// no second parse, no second type check — and cached on the pass, so
// adding an analyzer costs one traversal, not one reload.
//
// Resolution is CHA-style (class-hierarchy analysis):
//
//   - direct calls (pkg.F, method calls on a concrete receiver) get
//     exactly one target when the body lives in the module;
//   - interface method calls expand to every module-declared concrete
//     type whose method set satisfies the interface — sound over the
//     module's own types, deliberately blind to implementations the
//     module never compiles;
//   - calls through function values (fields, parameters, locals) are
//     recorded with no callee: the dynamic edge is a documented
//     soundness limit, backstopped at runtime by the bench gates and
//     the determinism goldens.
//
// Function literals are attributed to the enclosing declaration: a
// closure's calls are the closure creator's calls, which matches how
// both taint (the closure observes the source) and hot-path cost (the
// closure runs when its creator's path runs) propagate in practice.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Package is the per-package view the builder consumes: the same
// fields internal/lint/load produces, duplicated here so the graph
// does not depend on the loader.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Node is one function or method declared in the module, with every
// call site in its body (function literals included).
type Node struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	File  *ast.File
	Pkg   *Package
	Calls []Call
}

// Call is one call site. Callee is the statically resolved callee
// object — possibly a standard-library function with no module body —
// and nil for calls through function values. Targets are the module
// bodies the call can reach: one for a direct call, the CHA expansion
// for an interface method call, none when the callee lives outside
// the module.
type Call struct {
	Pos       token.Pos
	Callee    *types.Func
	Targets   []*Node
	Interface bool // resolved by method-set expansion, not statically
	InLit     bool // sits inside a func literal of the node
}

// Graph is the module call graph plus scratch space for analyzer
// summaries derived from it.
type Graph struct {
	fset  *token.FileSet
	nodes map[*types.Func]*Node
	order []*Node

	concrete []types.Type // named non-interface types, for CHA
	chaCache map[string][]*Node

	// Memo holds per-graph summaries analyzers derive once and reuse
	// across per-package passes (taint sets, hot sets, blocking
	// summaries), keyed by analyzer name.
	Memo map[string]any
}

// Build constructs the graph over pkgs. Deterministic: nodes are in
// declaration order, CHA targets in package-then-name order.
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{
		fset:     fset,
		nodes:    map[*types.Func]*Node{},
		chaCache: map[string][]*Node{},
		Memo:     map[string]any{},
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, File: f, Pkg: p}
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 || types.IsInterface(named) {
				continue
			}
			g.concrete = append(g.concrete, named)
		}
	}
	for _, n := range g.order {
		g.resolveCalls(n)
	}
	return g
}

// Fset returns the file set the graph's positions resolve against.
func (g *Graph) Fset() *token.FileSet { return g.fset }

// Node returns the graph node for fn, or nil when fn has no module
// body (standard library, interface method, external).
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes returns every module function in declaration order.
func (g *Graph) Nodes() []*Node { return g.order }

// resolveCalls walks n's body recording one Call per call expression,
// tracking func-literal depth so closures are attributed to n.
func (g *Graph) resolveCalls(n *Node) {
	info := n.Pkg.Info
	depth := 0
	var stack []ast.Node
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if nd == nil {
			if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok {
				depth--
			}
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, nd)
		if _, ok := nd.(*ast.FuncLit); ok {
			depth++
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		if c := g.resolveCall(info, call); c != nil {
			c.InLit = depth > 0
			n.Calls = append(n.Calls, *c)
		}
		return true
	})
}

// resolveCall classifies one call expression. A nil result means the
// expression contributes no edge (builtins, immediately invoked
// literals whose body is walked in place).
func (g *Graph) resolveCall(info *types.Info, call *ast.CallExpr) *Call {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return g.concreteCall(call, obj)
		case *types.Builtin, *types.TypeName:
			return nil
		}
		return &Call{Pos: call.Pos()} // function value
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return &Call{Pos: call.Pos()} // func-typed field
			}
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				recv := sel.Recv()
				if types.IsInterface(recv) {
					iface, _ := recv.Underlying().(*types.Interface)
					return &Call{Pos: call.Pos(), Callee: m, Interface: true, Targets: g.cha(recv, iface, m)}
				}
				return g.concreteCall(call, m)
			}
			return &Call{Pos: call.Pos()}
		}
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return g.concreteCall(call, obj) // qualified pkg.F
		}
		return &Call{Pos: call.Pos()}
	case *ast.FuncLit:
		return nil // immediately invoked; body walked in place
	}
	return &Call{Pos: call.Pos()}
}

func (g *Graph) concreteCall(call *ast.CallExpr, fn *types.Func) *Call {
	c := &Call{Pos: call.Pos(), Callee: fn}
	if n := g.nodes[fn]; n != nil {
		c.Targets = []*Node{n}
	}
	return c
}

// cha expands an interface method call to the module's concrete types
// implementing the interface, memoized per (interface, method).
func (g *Graph) cha(recv types.Type, iface *types.Interface, m *types.Func) []*Node {
	if iface == nil || iface.NumMethods() == 0 {
		return nil // interface{} dispatch resolves to nothing statically
	}
	key := types.TypeString(recv, nil) + "\x00" + m.Id()
	if ts, ok := g.chaCache[key]; ok {
		return ts
	}
	var out []*Node
	for _, t := range g.concrete {
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		ms := types.NewMethodSet(pt)
		for i := 0; i < ms.Len(); i++ {
			f, ok := ms.At(i).Obj().(*types.Func)
			if !ok || f.Id() != m.Id() {
				continue
			}
			if n := g.nodes[f]; n != nil {
				out = append(out, n)
			}
		}
	}
	g.chaCache[key] = out
	return out
}

// FuncLabel renders fn for diagnostics: "sim.Kernel.Schedule",
// "time.Now", "service.Daemon.Submit".
func FuncLabel(fn *types.Func) string {
	if fn == nil {
		return "func value"
	}
	prefix := ""
	if fn.Pkg() != nil {
		prefix = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return prefix + named.Obj().Name() + "." + fn.Name()
		}
	}
	return prefix + fn.Name()
}
