GO ?= go

.PHONY: check build vet lint depscheck test race bench benchcheck gobench chaos chaos-service crashtest loadtest

# The gate CI runs: vet + stdlib-only dependency check + determinism
# lint + full test suite + race + the fixed-seed chaos sweep + the
# service chaos harness + the crash-consistency enumeration + the
# rmscaled load smoke.
check: vet depscheck lint test race chaos chaos-service crashtest loadtest

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The custom determinism/model-coverage analyzers (see DESIGN.md,
# "Determinism invariants"). One process runs all nine: the full-
# source typecheck and the call graph are built once and shared, so
# adding an analyzer costs its traversal, not another load. Exits
# non-zero on any finding; the JSON report is the CI artifact.
lint:
	$(GO) run ./cmd/rmslint -json lint_report.json ./...

# The module must keep building from the Go standard library alone (a
# stated constraint of the reproduction — see ROADMAP.md): fail if any
# transitive dependency resolves outside the stdlib and the module
# itself.
depscheck:
	@out=$$($(GO) list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' ./... | grep -v '^rmscale' | grep -v '^$$' || true); \
	if [ -n "$$out" ]; then echo "depscheck: non-stdlib dependencies:"; echo "$$out"; exit 1; fi
	@echo "depscheck: standard library only"

test: build
	$(GO) test ./...

# Race-check the whole module; -short keeps the smoke-fidelity
# experiment runs out of the race build, which would otherwise
# dominate the wall clock. The service layer (worker shards, condition
# variables, store GC, supervision) and the parallel executor plus the
# grid engine that drives it (worker-pool windows, partition plans)
# additionally run their full suites under the detector — they are the
# module's most concurrent code.
race:
	$(GO) test -race -short ./...
	$(GO) test -race -count=1 ./internal/service/...
	$(GO) test -race -count=1 ./internal/sim/par/... ./internal/grid/...

# Refresh the committed benchmark baseline: run the regression harness
# (internal/perfbench) and overwrite BENCH_sim.json with its report.
# Run this after a deliberate performance change (or a Go toolchain
# bump) and commit the result.
bench: build
	$(GO) run ./cmd/rmscale bench > BENCH_sim.json
	@echo "BENCH_sim.json refreshed"

# Gate the current tree against the committed baseline: simulated event
# counts must match exactly, allocation metrics may not regress beyond
# the tolerance. The fresh report lands in bench_current.json (the CI
# artifact) whether the gate passes or not.
benchcheck: build
	$(GO) run ./cmd/rmscale -check BENCH_sim.json bench > bench_current.json

# Raw go test benchmarks (kernel micro-benches and the full figure
# pipeline) with allocation stats, for interactive profiling.
gobench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/sim .

# Fixed-seed chaos sweep: 32 random fault schedules across all RMS
# models under the runtime invariant auditor. Any violation is
# replayed, shrunk to a minimal reproducer and fails the target.
chaos: build
	$(GO) run ./cmd/rmscale -chaos 32 -seed 1

# Service chaos harness: scripted executor panics/hangs/failures,
# client disconnects, store corruption, journal tears and flaky disk
# writes against live rmscaled daemons; every result must come back
# byte-identical to a fault-free reference. The report is the CI
# artifact; any violated assertion exits non-zero.
chaos-service: build
	$(GO) run ./cmd/rmscaled chaos -specs 12 -clients 3 -v -report chaos_report.json

# Crash-consistency enumeration: canonical journal/store workloads run
# on a simulated filesystem, a power cut is enumerated at every
# filesystem op (plus torn/garbled tails of the final append), and the
# persistence layer restarts on each materialized disk image. Recovery
# must always succeed, never serve wrong bytes, and never lose an
# acknowledged durable result. The report is the CI artifact; any
# violated invariant exits non-zero.
crashtest: build
	$(GO) run ./cmd/rmscaled crashtest -v -report crashtest_report.json

# rmscaled load smoke: one scaled-down load iteration through the full
# HTTP service (submit / stream / fetch, dedup audited, exit non-zero
# on any accounting drift). The full 1000-object iteration runs inside
# `make bench`/`make benchcheck` via the perfbench service metrics.
loadtest: build
	$(GO) run ./cmd/rmscaled loadtest -objects 200 -distinct 25 -clients 4 -v > loadtest_report.json
