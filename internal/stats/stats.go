// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, percentiles, linear regression for
// slope estimates, and an online accumulator for streaming measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance, or 0 when fewer than two
// samples are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It panics on an empty input or an
// out-of-range p, both of which indicate harness bugs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile p=%v out of [0,100]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// LinearFit returns the least-squares slope and intercept of y against x.
// It requires len(x) == len(y) >= 2 and at least two distinct x values;
// degenerate inputs return (0, mean(y)).
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return 0, Mean(y)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// Slopes returns the per-segment slope between consecutive points of a
// curve: out[i] = (y[i+1]-y[i]) / (x[i+1]-x[i]). This is the paper's
// scalability measure, "the slope of G(k)". Segments with zero x step get
// slope 0.
func Slopes(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("stats: Slopes length mismatch")
	}
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	for i := 0; i+1 < len(x); i++ {
		dx := x[i+1] - x[i]
		if dx != 0 {
			out[i] = (y[i+1] - y[i]) / dx
		}
	}
	return out
}

// Normalize divides every element by the first element, producing the
// paper's normalized curves f(k), g(k), h(k). A zero first element yields
// a copy of the input (nothing sensible to normalize by).
func Normalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	if len(xs) == 0 || xs[0] == 0 {
		return out
	}
	for i := range out {
		out[i] /= xs[0]
	}
	return out
}

// Accumulator collects streaming observations with O(1) memory.
// The zero value is ready to use.
type Accumulator struct {
	n        int
	sum, ssq float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	a.sum += x
	a.ssq += x * x
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Sum returns the running total.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the running mean, or 0 when empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Variance returns the unbiased running variance, or 0 for n < 2.
// Negative rounding artifacts are clamped to 0.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := (a.ssq - float64(a.n)*m*m) / float64(a.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the running standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation, or +Inf when empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.Inf(1)
	}
	return a.min
}

// Max returns the largest observation, or -Inf when empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.Inf(-1)
	}
	return a.max
}
