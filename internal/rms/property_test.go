package rms

import (
	"testing"
	"testing/quick"

	"rmscale/internal/grid"
)

// TestJobConservationProperty fuzzes grid shapes, loads and fault
// settings across every model and checks the accounting invariants the
// whole framework rests on: jobs are conserved, efficiencies stay in
// (0,1), and F/G/H stay non-negative.
func TestJobConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property fuzz is slow")
	}
	models := All()
	models = append(models, NewHierarchy())
	i := 0
	f := func(cl, sz, utilRaw, seed uint8, faults bool) bool {
		i++
		p := models[i%len(models)]
		cfg := grid.DefaultConfig()
		cfg.Seed = int64(seed) + 1
		cfg.Spec.Clusters = 2 + int(cl%5)
		cfg.Spec.ClusterSize = 2 + int(sz%6)
		cfg.Workload.Clusters = cfg.Spec.Clusters
		util := 0.3 + float64(utilRaw%60)/100 // 0.3 .. 0.89
		resources := float64(cfg.Spec.Clusters * cfg.Spec.ClusterSize)
		cfg.Workload.ArrivalRate = util * resources / 524.2
		cfg.Workload.Horizon = 800
		cfg.Horizon = 800
		cfg.Drain = 1500
		if faults {
			cfg.Faults.ResourceMTBF = 1500
			cfg.Faults.RepairTime = 150
			cfg.Faults.UpdateLossProb = 0.1
		}
		fresh, err := ByName(p.Name())
		if err != nil {
			fresh = NewHierarchy() // HIERARCHY is not in the roster
		}
		e, err := grid.New(cfg, fresh)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		sum := e.Run()
		m := e.Metrics
		if m.JobsCompleted+m.JobsLost+e.Unfinished() != m.JobsArrived {
			t.Logf("%s: conservation broken: %d+%d+%d != %d", fresh.Name(),
				m.JobsCompleted, m.JobsLost, e.Unfinished(), m.JobsArrived)
			return false
		}
		if sum.F < 0 || sum.G < 0 || sum.H < 0 {
			t.Logf("%s: negative accounting %+v", fresh.Name(), sum)
			return false
		}
		if m.JobsArrived > 0 && (sum.Efficiency < 0 || sum.Efficiency >= 1) {
			t.Logf("%s: efficiency %v out of range", fresh.Name(), sum.Efficiency)
			return false
		}
		if m.JobsSucceeded > m.JobsCompleted {
			t.Logf("%s: more successes than completions", fresh.Name())
			return false
		}
		if e.K.Overflowed {
			t.Logf("%s: event overflow", fresh.Name())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Fatal(err)
	}
}
