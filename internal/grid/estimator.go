package grid

import (
	"rmscale/internal/sim"
)

// statusItem is one buffered update inside an estimator.
type statusItem struct {
	rid  int
	load float64
	at   sim.Time
}

// Estimator is an RMS node that receives status updates from a
// partition of the resource pool and distributes them to the scheduling
// decision makers (the paper's Case 3 scaling variable). Resources are
// assigned round-robin, so every estimator typically covers every
// cluster; each digest interval it flushes one digest per covered
// cluster. Estimator CPU time counts into G like scheduler time.
type Estimator struct {
	id   int
	node int
	eng  *Engine

	busyUntil sim.Time
	// buffer[cluster] holds updates pending digestion for that
	// cluster's scheduler. The slices are retained and reused across
	// digest cycles, so a steady-state flush allocates only the digest
	// snapshot it broadcasts.
	buffer [][]statusItem

	// Fault state (see faults.go): a crash empties the buffer and the
	// epoch bump destroys queued CPU work.
	down  bool
	epoch int
}

// ID returns the estimator index.
func (e *Estimator) ID() int { return e.id }

// Node returns the estimator's topology node.
func (e *Estimator) Node() int { return e.node }

// exec serializes work through the estimator CPU, charging G. A dead
// estimator retires no work, and work queued before a crash dies with
// it (the epoch guard).
func (e *Estimator) exec(cost float64, fn func()) {
	if e.down {
		return
	}
	busy := cost / e.eng.Cfg.Costs.SchedulerSpeed
	e.eng.Metrics.chargeEstimator(e.id, cost, busy)
	now := e.eng.K.Now()
	start := e.busyUntil
	if start < now {
		start = now
	}
	finish := start + busy
	e.busyUntil = finish
	epoch := e.epoch
	//lint:allow hotalloc the queued work item with its epoch guard is the estimator CPU's budgeted allocation (engine allocs_per_event gate)
	e.eng.K.Schedule(finish, func() {
		if e.epoch != epoch {
			return
		}
		fn()
	})
}

// QueueDelay reports how far behind the estimator's CPU currently is.
func (e *Estimator) QueueDelay() sim.Time {
	d := e.busyUntil - e.eng.K.Now()
	if d < 0 {
		return 0
	}
	return d
}

// receive ingests one resource update.
func (e *Estimator) receive(rid int, load float64, at sim.Time) {
	//lint:allow hotalloc the ingest work closure is the update's budgeted allocation on the estimator hop (engine allocs_per_event gate)
	e.exec(e.eng.Cfg.Costs.EstimatorPer, func() {
		cluster := e.eng.Map.ResourceCluster[rid]
		e.buffer[cluster] = append(e.buffer[cluster], statusItem{rid: rid, load: load, at: at})
	})
}

// digest is one estimator flush, partitioned by destination cluster:
// parts[offs[c]:offs[c+1]] are cluster c's items sorted by (rid, time),
// and rids mirrors parts entry-for-entry so a delivery can hand the
// policy its OnStatus id list without building one. The whole digest is
// one immutable snapshot shared by every scheduler's delivery closure;
// receivers read it, never mutate it.
type digest struct {
	parts []statusItem
	offs  []int
	rids  []int
}

// total returns the number of status items across all clusters.
func (d digest) total() int { return len(d.parts) }

// cluster returns cluster c's partition and the matching resource ids.
func (d digest) cluster(c int) ([]statusItem, []int) {
	lo, hi := d.offs[c], d.offs[c+1]
	return d.parts[lo:hi], d.rids[lo:hi]
}

// flush distributes the buffered status to the scheduling decision
// makers: one digest, broadcast to every scheduler, per digest interval
// (the UpdateInterval enabler). This is the paper's estimator role —
// "receive the status updates from RP resources and distribute to the
// scheduling decision makers" — and it is why scaling up the estimator
// layer multiplies the digest traffic every scheduler must process.
//
// The buffered items are snapshotted into one freshly allocated backing
// array per flush (cluster by cluster, each partition sorted). Fresh,
// not scratch: the broadcast and the per-scheduler deliveries run at
// later simulated times, and under estimator saturation a delivery
// closure can outlive the next flush, so reusing a buffer here would
// corrupt an in-flight digest. Per-cluster sorting yields exactly the
// items a global (rid, time) sort would hand each cluster, because a
// resource id maps to a single cluster.
func (e *Estimator) flush() {
	if e.down {
		return
	}
	total := 0
	for _, items := range e.buffer {
		total += len(items)
	}
	parts := make([]statusItem, 0, total)
	offs := make([]int, 0, len(e.buffer)+1)
	for c := range e.buffer {
		sortStatusItems(e.buffer[c])
		offs = append(offs, len(parts))
		parts = append(parts, e.buffer[c]...)
		e.buffer[c] = e.buffer[c][:0]
	}
	offs = append(offs, len(parts))
	rids := make([]int, len(parts))
	for i := range parts {
		rids[i] = parts[i].rid
	}
	// An empty digest is still broadcast: it doubles as the
	// dissemination heartbeat every decision maker consumes, so the
	// layer's traffic scales with the estimator count, not with the
	// update volume.
	e.exec(e.eng.Cfg.Costs.EstimatorPer*float64(total), func() {
		e.eng.broadcastDigest(e, digest{parts: parts, offs: offs, rids: rids})
	})
}

// sortStatusItems orders a digest partition by (resource id, time) so
// broadcast content is independent of buffering order.
func sortStatusItems(items []statusItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && less(items[j], items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

func less(a, b statusItem) bool {
	if a.rid != b.rid {
		return a.rid < b.rid
	}
	return a.at < b.at
}

// startDigests arms the periodic digest flush with a phase offset.
func (e *Estimator) startDigests(interval float64, phase *sim.Stream) {
	offset := phase.Uniform(0, interval)
	e.eng.K.After(offset, func() {
		e.flush()
		sim.NewTicker(e.eng.K, interval, e.flush)
	})
}
