// Stress coverage for the worker pool: tiny lookahead windows force a
// barrier roughly every event, and a worker count far above the host's
// core count forces constant goroutine churn — the configuration most
// likely to expose ordering or memory races. These tests are the main
// subjects of `make race`.

package par_test

import (
	"fmt"
	"testing"

	"rmscale/internal/sim"
	"rmscale/internal/sim/par"
)

// stressTrace runs a chatty rng-driven model (the fuzz model with a
// generous budget) at the given worker count and returns the per-shard
// traces, stringified.
func stressTrace(n int, la sim.Time, workers int, seed uint64, budget int, horizon sim.Time) []string {
	x := par.New(n, la, workers)
	m := newModel(parHost{x}, n, la, seed, budget, false)
	m.seedEvents()
	x.Run(horizon)
	out := make([]string, n)
	for s := 0; s < n; s++ {
		out[s] = fmt.Sprint(m.trace[s])
	}
	return out
}

// TestStressSmallWindowsManyWorkers drives 8 shards through windows of
// half a time unit with 16 workers — more workers than shards, more
// shards than cores — and requires byte-identical traces against the
// serial run.
func TestStressSmallWindowsManyWorkers(t *testing.T) {
	const (
		n       = 8
		la      = sim.Time(0.5)
		budget  = 400
		horizon = sim.Time(2000)
	)
	for _, seed := range []uint64{1, 99, 0xdecafbad} {
		want := stressTrace(n, la, 1, seed, budget, horizon)
		for _, workers := range []int{3, 16} {
			got := stressTrace(n, la, workers, seed, budget, horizon)
			for s := range got {
				if got[s] != want[s] {
					t.Fatalf("seed %d workers %d shard %d diverged from serial", seed, workers, s)
				}
			}
		}
	}
}

// TestStressTickersAcrossShards runs a free-list-heavy model: every
// shard owns tickers that rearm each period (constant event recycling)
// and forwards a counter to its neighbor every few ticks. Divergence in
// the final counters or tick counts across worker counts would mean the
// barrier visible-state contract broke under handle reuse.
func TestStressTickersAcrossShards(t *testing.T) {
	const (
		n       = 6
		la      = sim.Time(1)
		horizon = sim.Time(500)
	)
	type result struct {
		Ticks    []int
		Received []int
		Events   uint64
	}
	run := func(workers int) result {
		x := par.New(n, la, workers)
		r := result{Ticks: make([]int, n), Received: make([]int, n)}
		for s := 0; s < n; s++ {
			s := s
			sh := x.Shard(s)
			// Two tickers per shard with coprime-ish periods so rearms
			// interleave and the kernel free list stays busy.
			for ti, period := range []sim.Time{1.5 + sim.Time(s)/4, 2.25 + sim.Time(s)/8} {
				ti := ti
				sim.NewTicker(sh.K, period, func() {
					r.Ticks[s]++
					if r.Ticks[s]%5 == ti {
						dst := (s + 1) % n
						sh.Send(dst, sh.K.Now()+la, func() { r.Received[dst]++ })
					}
				})
			}
		}
		r.Events = x.Run(horizon)
		return r
	}
	want := run(1)
	if want.Events == 0 {
		t.Fatal("degenerate serial run")
	}
	for _, workers := range []int{2, 16} {
		got := run(workers)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}
