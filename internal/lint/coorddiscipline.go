package lint

import (
	"go/ast"
	"strconv"

	"rmscale/internal/lint/analysis"
)

// CoordDiscipline polices the packages that sit between the
// single-threaded kernel and the fully concurrent service layer: the
// parallel-execution coordinators (internal/sim/par). Kernel packages
// ban concurrency outright (nokernelgoroutines); coordinator packages
// are allowed exactly the audited concurrency sites and nothing else.
// A function whose doc comment carries a
//
//	//lint:coordinator <reason>
//
// directive is such a site — the reason must state the barrier
// argument that keeps the concurrency invisible to simulation results.
// Everywhere else in a coordinator package, go statements, channels,
// selects and sync/sync-atomic imports are flagged exactly as in the
// kernel, so ad-hoc goroutines can't creep in beside the sanctioned
// coordinator.
func CoordDiscipline() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "coorddiscipline",
		Doc:  "restrict concurrency in coordinator packages to functions marked //lint:coordinator",
	}
	a.Run = func(p *analysis.Pass) error {
		for _, f := range p.Files {
			marked := coordinatorFuncs(f)
			if len(marked) == 0 {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "sync" || path == "sync/atomic" {
						p.Reportf(imp.Pos(),
							"coordinator package file imports %q but marks no //lint:coordinator function; concurrency here must live in an audited coordinator", path)
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if marked[fd] {
					continue
				}
				where := " outside a //lint:coordinator function; the audited coordinator owns all concurrency in this package"
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						p.Reportf(n.Pos(), "go statement%s", where)
					case *ast.SelectStmt:
						p.Reportf(n.Pos(), "select statement%s", where)
					case *ast.SendStmt:
						p.Reportf(n.Pos(), "channel send%s", where)
					case *ast.ChanType:
						p.Reportf(n.Pos(), "channel type%s", where)
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

// coordinatorFuncs collects the file's //lint:coordinator-marked
// function declarations. Like hotpath, the mark is read off the doc
// comment; the mandatory reason is enforced by parseDirectives on the
// production path.
func coordinatorFuncs(f *ast.File) map[*ast.FuncDecl]bool {
	out := map[*ast.FuncDecl]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if verb, _, _ := cutDirective(c.Text); verb == "coordinator" {
				out[fd] = true
			}
		}
	}
	return out
}
