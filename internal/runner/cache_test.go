package runner

import (
	"os"
	"path/filepath"
	"testing"
)

type keyCfg struct {
	Name string
	N    int
	F    float64
}

func TestKeyOfDeterministic(t *testing.T) {
	a, err := KeyOf("v1", keyCfg{Name: "x", N: 3, F: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KeyOf("v1", keyCfg{Name: "x", N: 3, F: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical inputs hash to different keys")
	}
	c, _ := KeyOf("v1", keyCfg{Name: "x", N: 4, F: 0.25})
	if a == c {
		t.Fatal("different inputs collide")
	}
	d, _ := KeyOf("v2", keyCfg{Name: "x", N: 3, F: 0.25})
	if a == d {
		t.Fatal("version strings do not separate cache generations")
	}
}

func TestCacheMemoryTier(t *testing.T) {
	c, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	k, _ := KeyOf("t", 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	if err := c.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(k)
	if !ok || string(v) != "payload" {
		t.Fatalf("got %q, %v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	if r := c.HitRate(); r != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", r)
	}
}

func TestCacheDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := KeyOf("t", "persist")
	if err := c1.Put(k, []byte("durable")); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory is a cold memory tier but a
	// warm disk tier.
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c2.Get(k)
	if !ok || string(v) != "durable" {
		t.Fatalf("disk tier miss: %q, %v", v, ok)
	}
	if c2.Len() != 1 {
		t.Fatalf("disk hit not promoted to memory: len=%d", c2.Len())
	}
}

func TestCacheDiskFilesAreContentAddressed(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := KeyOf("t", "addr")
	if err := c.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cache", k.String())); err != nil {
		t.Fatalf("cache file not at content address: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "two" {
		t.Fatalf("got %q, %v", b, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}
