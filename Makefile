GO ?= go

.PHONY: check build vet test race bench

# The gate CI runs: vet + full test suite + race on the concurrent packages.
check: vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The runner's pool/cache/journal and the experiment driver are the
# concurrent surface; keep them race-clean.
race:
	$(GO) test -race ./internal/runner/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
