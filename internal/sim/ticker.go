package sim

// Ticker fires a callback at a fixed simulated period until stopped or
// until the kernel runs out of horizon. It is the building block for
// periodic status updates, volunteering intervals, and estimator digest
// cycles.
type Ticker struct {
	k      *Kernel
	period Time
	fn     func()
	tick   func() // single reusable rearm closure; see NewTicker
	ev     *Event
	done   bool
}

// NewTicker schedules fn every period time units, first firing one period
// from now. A non-positive period returns a stopped ticker (the process
// is disabled), which lets callers treat "interval = 0" as "off".
//
// The rearm closure is built once here: with the kernel's event free
// list warm, every subsequent tick reschedules with zero heap
// allocations — tickers are the highest-frequency periodic load in a
// grid run (every resource, estimator and scheduler carries one).
//
//lint:hotpath kernel/ticker gates the steady tick-rearm cycle at zero allocations per event
func NewTicker(k *Kernel, period Time, fn func()) *Ticker {
	//lint:allow hotalloc one-time construction: the ticker struct is allocated once per periodic process
	t := &Ticker{k: k, period: period, fn: fn}
	//lint:allow hotalloc the single reusable rearm closure; paying for it once here is what makes every later tick allocation-free
	t.tick = func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done { // fn may have stopped us
			t.arm()
		} else {
			// The firing event retires when this callback returns; drop
			// the handle so a later Stop cannot cancel its recycled
			// successor.
			t.ev = nil
		}
	}
	if period <= 0 {
		t.done = true
		return t
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.k.After(t.period, t.tick)
}

// Stop cancels the ticker. It is safe to call repeatedly and from within
// the tick callback.
func (t *Ticker) Stop() {
	t.done = true
	if t.ev != nil {
		t.k.Cancel(t.ev)
		// The cancelled event's struct will be recycled; a retained
		// handle must not outlive it (see Event's lifetime note).
		t.ev = nil
	}
}

// Stopped reports whether the ticker has been stopped or was created
// disabled.
func (t *Ticker) Stopped() bool { return t.done }

// Period returns the configured period.
func (t *Ticker) Period() Time { return t.period }

// Reset stops the ticker and restarts it with a new period, firing one
// new period from now. A non-positive period leaves it stopped.
func (t *Ticker) Reset(period Time) {
	t.Stop()
	t.period = period
	if period > 0 {
		t.done = false
		t.arm()
	}
}
