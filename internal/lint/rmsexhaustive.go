package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"rmscale/internal/lint/analysis"
)

// EnumSpec names an enum type and the constants every switch over it
// must cover.
type EnumSpec struct {
	PkgPath   string   // e.g. "rmscale/internal/rms"
	TypeName  string   // e.g. "ID"
	Constants []string // constant identifiers declared in PkgPath
}

// RMSExhaustive checks that every switch over the RMS-model enum
// either covers all seven paper models or carries a default that
// panics. Without this, adding a model compiles everywhere and then
// silently no-ops in whichever dispatch, failover or rendering switch
// forgot it — the worst possible failure mode for a scalability
// comparison that claims to cover the full roster.
func RMSExhaustive(spec EnumSpec) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "rmsexhaustive",
		Doc:  "switches over the RMS-model enum must cover every model or panic in default",
	}
	a.Run = func(p *analysis.Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				t := p.TypeOf(sw.Tag)
				if t == nil || !isEnumType(t, spec) {
					return true
				}
				checkEnumSwitch(p, sw, spec)
				return true
			})
		}
		return nil
	}
	return a
}

func isEnumType(t types.Type, spec EnumSpec) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == spec.TypeName &&
		obj.Pkg() != nil && obj.Pkg().Path() == spec.PkgPath
}

func checkEnumSwitch(p *analysis.Pass, sw *ast.SwitchStmt, spec EnumSpec) {
	covered := map[string]bool{}
	hasDefault := false
	defaultPanics := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultPanics = bodyPanics(cc.Body)
			continue
		}
		for _, e := range cc.List {
			if name, ok := constName(p, e, spec); ok {
				covered[name] = true
			}
		}
	}
	var missing []string
	for _, c := range spec.Constants {
		if !covered[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return
	}
	if hasDefault && defaultPanics {
		return
	}
	if hasDefault {
		p.Reportf(sw.Pos(),
			"switch over %s.%s misses %s and its default does not panic; cover every model or make the default panic",
			spec.PkgPath, spec.TypeName, strings.Join(missing, ", "))
		return
	}
	p.Reportf(sw.Pos(),
		"switch over %s.%s misses %s; cover every model or add a panicking default",
		spec.PkgPath, spec.TypeName, strings.Join(missing, ", "))
}

// constName resolves a case expression to a constant of the enum's
// package, returning its identifier name.
func constName(p *analysis.Pass, e ast.Expr, spec EnumSpec) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj := p.Info.Uses[id]
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != spec.PkgPath {
		return "", false
	}
	return c.Name(), true
}

// bodyPanics reports whether the clause body contains a top-level
// panic call (possibly behind trivial statements), which is what
// makes a non-exhaustive switch fail loudly instead of no-opping.
func bodyPanics(body []ast.Stmt) bool {
	for _, stmt := range body {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}
