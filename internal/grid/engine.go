package grid

import (
	"fmt"

	"rmscale/internal/routing"
	"rmscale/internal/sim"
	"rmscale/internal/topology"
	"rmscale/internal/workload"
)

const (
	defaultMaxEvents = 50_000_000
	// defaultStallEvents trips the kernel's no-progress watchdog after
	// this many consecutive events at one timestamp. No legitimate
	// configuration concentrates a million events on a single instant
	// (whole runs process a few million over thousands of time units),
	// so tripping it always indicates a zero-delay event cycle.
	defaultStallEvents = 1_000_000
	maxJobAttempts     = 4
	maxJobHops         = 3
)

// Engine wires topology, routing, workload, entities and a Policy into
// one runnable simulation.
type Engine struct {
	Cfg     Config
	K       *sim.Kernel
	Graph   *topology.Graph
	Map     *topology.Mapping
	Net     *routing.Matrix
	Metrics *Metrics

	Resources  []*Resource
	Schedulers []*Scheduler
	Estimators []*Estimator

	// Tracer, when set before Run, records engine events (arrivals,
	// dispatches, transfers, updates) for debugging and tests. Nil is
	// free.
	Tracer *sim.Tracer

	// AuditHook, when set before Run, fires once after the event loop
	// finishes and before the summary is derived. internal/audit claims
	// it for the final drain-time invariant check; it is a generic hook
	// so grid never imports the auditor.
	AuditHook func()

	// LastPlan is the partition plan RunPar computed for this engine,
	// for inspection by tests and reports. Nil until RunPar runs with
	// more than one worker.
	LastPlan *Plan

	policy Policy
	jobs   []*workload.Job
	src    *sim.Source
	faults *sim.Stream
	fs     *faultState // nil unless protocol faults are armed
	mw     *middleware
	depsT  *depTracker

	// localIdx maps a resource id to its index within its cluster's
	// resource list — the slot the owning scheduler's dense view array
	// uses for it (see Scheduler.views).
	localIdx []int

	unfinished int // jobs dropped or stranded
}

// New builds an engine for the config and policy. The build is
// deterministic in cfg.Seed. A central policy collapses the cluster
// layout to a single scheduler coordinating the whole pool, keeping the
// total resource count identical.
func New(cfg Config, p Policy) (*Engine, error) {
	return NewWith(cfg, p, nil)
}

// NewWith is New with an optional pre-built substrate (topology,
// mapping, routing); tuners evaluating many enabler settings at one
// scale factor share a substrate to avoid rebuilding routing tables.
// Passing nil builds a fresh substrate. The substrate must match the
// structural part of the config after the central-policy collapse.
func NewWith(cfg Config, p Policy, sub *Substrate) (*Engine, error) {
	if p == nil {
		return nil, fmt.Errorf("grid: nil policy")
	}
	if p.Central() {
		cfg.Spec = topology.GridSpec{
			Clusters:    1,
			ClusterSize: cfg.Spec.Clusters * cfg.Spec.ClusterSize,
			Estimators:  cfg.Spec.Estimators,
		}
		cfg.Workload.Clusters = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		Cfg:     cfg,
		K:       sim.NewKernel(),
		Metrics: &Metrics{},
		policy:  p,
		src:     sim.NewSource(cfg.Seed),
	}
	e.K.MaxEvents = cfg.MaxEvents
	if e.K.MaxEvents == 0 {
		e.K.MaxEvents = defaultMaxEvents
	}
	e.K.StallEvents = cfg.StallEvents
	if e.K.StallEvents == 0 {
		e.K.StallEvents = defaultStallEvents
	}

	if sub == nil {
		var err error
		sub, err = BuildSubstrate(cfg)
		if err != nil {
			return nil, err
		}
	} else if !sub.Matches(cfg) {
		return nil, fmt.Errorf("grid: substrate does not match config")
	}
	e.Graph = sub.Graph
	mp := sub.Map
	e.Map = mp
	e.Net = sub.Net

	// Entities.
	e.localIdx = make([]int, mp.Resources())
	for _, rs := range mp.ClusterResources {
		for i, rid := range rs {
			e.localIdx[rid] = i
		}
	}
	e.Metrics.SchedulerBusy = make([]float64, cfg.Spec.Clusters)
	e.Metrics.EstimatorBusy = make([]float64, cfg.Spec.Estimators)
	for c := 0; c < cfg.Spec.Clusters; c++ {
		s := &Scheduler{
			cluster: c,
			node:    mp.SchedulerNode[c],
			eng:     e,
			views:   make([]resourceView, len(mp.ClusterResources[c])),
			rand:    e.src.Stream(fmt.Sprintf("sched:%d", c)),
		}
		s.peers = buildPeers(c, cfg.Spec.Clusters, cfg.Enablers.NeighborhoodSize, s.rand)
		s.permScratch = make([]int, len(s.peers))
		s.peerScratch = make([]int, len(s.peers))
		e.Schedulers = append(e.Schedulers, s)
	}
	for r := 0; r < mp.Resources(); r++ {
		e.Resources = append(e.Resources, &Resource{
			id:      r,
			node:    mp.ResourceNode[r],
			cluster: mp.ResourceCluster[r],
			eng:     e,
		})
	}
	for i := 0; i < cfg.Spec.Estimators; i++ {
		e.Estimators = append(e.Estimators, &Estimator{
			id:     i,
			node:   mp.EstimatorNode[i],
			eng:    e,
			buffer: make([][]statusItem, cfg.Spec.Clusters),
		})
	}
	if p.UsesMiddleware() {
		e.mw = &middleware{eng: e}
	}
	e.faults = e.src.Stream("faults")
	if cfg.Faults.protocolFaults() {
		if err := e.setupFaults(); err != nil {
			return nil, err
		}
	}

	// Workload.
	jobs, err := workload.Generate(cfg.Workload, e.src.Stream("workload"))
	if err != nil {
		return nil, err
	}
	e.jobs = jobs

	p.Attach(e)
	return e, nil
}

// buildPeers samples a neighborhood of remote clusters.
func buildPeers(self, clusters, size int, st *sim.Stream) []int {
	others := make([]int, 0, clusters-1)
	for c := 0; c < clusters; c++ {
		if c != self {
			others = append(others, c)
		}
	}
	if size >= len(others) {
		return others
	}
	idx := st.Sample(len(others), size)
	out := make([]int, size)
	for i, j := range idx {
		out[i] = others[j]
	}
	return out
}

// Clusters returns the number of scheduler clusters.
func (e *Engine) Clusters() int { return len(e.Schedulers) }

// Policy returns the attached policy.
func (e *Engine) Policy() Policy { return e.policy }

// Scheduler returns cluster c's scheduler.
func (e *Engine) Scheduler(c int) *Scheduler { return e.Schedulers[c] }

// Jobs returns the generated workload (read-only by convention).
func (e *Engine) Jobs() []*workload.Job { return e.jobs }

// UseJobs replaces the generated workload with an explicit job list —
// e.g. one imported from a Standard Workload Format trace — before Run.
// Jobs must be sorted by arrival and reference valid clusters.
func (e *Engine) UseJobs(jobs []*workload.Job) error {
	if e.K.Processed() != 0 {
		return fmt.Errorf("grid: UseJobs after the simulation started")
	}
	own := make([]*workload.Job, len(jobs))
	last := sim.Time(0)
	for i, j := range jobs {
		if j == nil {
			return fmt.Errorf("grid: nil job at %d", i)
		}
		if j.Arrival < last {
			return fmt.Errorf("grid: job %d arrives out of order", j.ID)
		}
		last = j.Arrival
		if j.Runtime <= 0 {
			return fmt.Errorf("grid: job %d has non-positive runtime", j.ID)
		}
		if j.Cluster < 0 {
			return fmt.Errorf("grid: job %d targets negative cluster", j.ID)
		}
		own[i] = j
		if j.Cluster >= e.Clusters() {
			// A central engine has one cluster: every submission goes
			// to the single scheduler, so remap on a private copy.
			if e.Clusters() != 1 {
				return fmt.Errorf("grid: job %d targets cluster %d of %d", j.ID, j.Cluster, e.Clusters())
			}
			cp := *j
			cp.Cluster = 0
			own[i] = &cp
		}
	}
	e.jobs = own
	return nil
}

// Unfinished returns jobs that were dropped or never completed.
func (e *Engine) Unfinished() int { return e.unfinished }

// Run executes the simulation to its horizon (arrivals) plus drain and
// returns the summary. Run may be called once per engine.
func (e *Engine) Run() Summary {
	e.Metrics.JobsArrived = len(e.jobs)

	// Status update tickers.
	phase := e.src.Stream("phase")
	for _, r := range e.Resources {
		r.startUpdates(e.Cfg.Enablers.UpdateInterval, phase)
	}
	for _, est := range e.Estimators {
		est.startDigests(e.Cfg.Protocol.EstimatorInterval, phase)
	}
	// Volunteering ticks. A crashed scheduler skips its tick; the
	// ticker itself survives the outage.
	for _, s := range e.Schedulers {
		s := s
		tick := func() {
			if s.down {
				return
			}
			e.policy.OnTick(s)
		}
		offset := phase.Uniform(0, e.Cfg.Enablers.VolunteerInterval)
		e.K.After(offset, func() {
			tick()
			sim.NewTicker(e.K, e.Cfg.Enablers.VolunteerInterval, tick)
		})
	}
	// Failure injection.
	if e.Cfg.Faults.ResourceMTBF > 0 {
		for _, r := range e.Resources {
			e.scheduleCrash(r)
		}
	}
	if e.fs != nil {
		if e.Cfg.Faults.SchedulerMTBF > 0 {
			for _, s := range e.Schedulers {
				e.armSchedulerCrash(s)
			}
		}
		if e.Cfg.Faults.EstimatorMTBF > 0 {
			for _, est := range e.Estimators {
				e.armEstimatorCrash(est)
			}
		}
	}
	// Job arrivals: precedence-constrained workloads go through the
	// dependency tracker; plain workloads arrive directly.
	hasDeps := false
	for _, j := range e.jobs {
		if len(j.Deps) > 0 {
			hasDeps = true
			break
		}
	}
	if hasDeps {
		e.startWithDeps()
	} else {
		for _, j := range e.jobs {
			j := j
			e.K.Schedule(j.Arrival, func() { e.admitJob(j) })
		}
	}

	window := e.Cfg.Horizon + e.Cfg.Drain
	e.K.Run(window)
	e.unfinished += e.Metrics.JobsArrived - e.Metrics.JobsCompleted - e.Metrics.JobsLost
	if e.AuditHook != nil {
		e.AuditHook()
	}
	return e.Metrics.Summarize(window)
}

// scheduleCrash arms the next crash of r.
func (e *Engine) scheduleCrash(r *Resource) {
	gap := e.faults.Exp(e.Cfg.Faults.ResourceMTBF)
	if gap <= 0 {
		return
	}
	e.K.After(gap, func() {
		r.crash()
		e.K.After(e.Cfg.Faults.RepairTime, func() { e.scheduleCrash(r) })
	})
}

// delay computes the end-to-end network delay between two topology
// nodes for a message of the given size: routed path latency scaled by
// the LinkDelayScale enabler plus the transmission time over the
// bottleneck link.
func (e *Engine) delay(from, to int, size float64) sim.Time {
	if from == to {
		return 0
	}
	lat, _, bw, err := e.Net.Between(from, to)
	if err != nil {
		//lint:allow hotalloc panic path: fires once on a wiring bug, never in a measured run
		panic(fmt.Sprintf("grid: unrouted endpoints %d->%d: %v", from, to, err))
	}
	d := lat*e.Cfg.Enablers.LinkDelayScale + size/bw
	if d < 0 {
		d = 0
	}
	return d
}

// sendStatusUpdate routes one resource status update to its estimator
// (when the estimator layer exists) or directly to its scheduler.
//
//lint:hotpath status updates dominate engine event volume; engine/*/allocs_per_event budgets this fabric at ~2 allocations
func (e *Engine) sendStatusUpdate(r *Resource, load float64) {
	if e.Cfg.Faults.UpdateLossProb > 0 && e.faults.Bool(e.Cfg.Faults.UpdateLossProb) {
		e.Metrics.UpdatesLost++
		return
	}
	e.Metrics.UpdatesSent++
	if e.Tracer.On() {
		e.Tracer.Tracef("update", "resource %d load %.0f", r.id, load)
	}
	at := e.K.Now()
	if len(e.Estimators) > 0 {
		est := e.Estimators[r.id%len(e.Estimators)]
		if e.Clusters() > 1 {
			// The estimator layer is partition-external: every update
			// into it crosses the cluster-partition boundary.
			e.Metrics.CrossClusterMsgs++
		}
		if e.fs == nil || !est.down {
			//lint:allow hotalloc the in-flight delivery closure is the update's budgeted allocation (engine allocs_per_event gate)
			e.K.After(e.delay(r.node, est.node, e.Cfg.UpdateBytes), func() {
				est.receive(r.id, load, at)
			})
			return
		}
		// Estimator death falls back to a direct scheduler update.
		e.Metrics.EstimatorFallbacks++
	}
	s := e.Schedulers[r.cluster]
	if e.fs != nil && s.down {
		e.Metrics.UpdatesLost++
		return
	}
	//lint:allow hotalloc the in-flight delivery closure is the update's first budgeted allocation (engine allocs_per_event gate)
	e.K.After(e.delay(r.node, s.node, e.Cfg.UpdateBytes), func() {
		c := e.Cfg.Costs
		//lint:allow hotalloc the queued work item is the update's second budgeted allocation (engine allocs_per_event gate)
		s.Exec(c.UpdateBatchBase+c.UpdatePer, func() {
			s.mergeView(r.id, load, at)
			// oneRid is per-scheduler scratch; Exec retires work FCFS on
			// one CPU, so the slot is free again by the time the policy
			// returns and it never escapes the call.
			s.oneRid[0] = r.id
			e.policy.OnStatus(s, s.oneRid[:])
		})
	})
}

// broadcastDigest distributes an estimator digest to every scheduler.
// Each scheduler pays the batch base cost plus a per-entry cost for the
// entries belonging to its own cluster, then sees a policy OnStatus —
// push models pay their trigger check per digest received, which is
// what couples their overhead to the estimator count.
//
//lint:hotpath digest fan-out runs once per estimator period per scheduler; engine/*/allocs_per_event budgets it
func (e *Engine) broadcastDigest(est *Estimator, d digest) {
	for _, s := range e.Schedulers {
		if e.fs != nil && s.down {
			e.Metrics.UpdatesLost++
			continue
		}
		if e.Cfg.Faults.UpdateLossProb > 0 && e.faults.Bool(e.Cfg.Faults.UpdateLossProb) {
			e.Metrics.UpdatesLost++
			continue
		}
		e.Metrics.DigestsSent++
		if e.Clusters() > 1 {
			e.Metrics.CrossClusterMsgs++
		}
		s := s
		// The digest is pre-partitioned by cluster (see Estimator.flush),
		// so a delivery slices its receiver's share out of the shared
		// snapshot instead of filtering and copying the whole batch.
		own, rids := d.cluster(s.cluster)
		//lint:allow hotalloc one delivery closure per receiving scheduler per digest period; the digest gate budgets it
		e.K.After(e.delay(est.node, s.node, e.Cfg.UpdateBytes*float64(d.total())), func() {
			c := e.Cfg.Costs
			//lint:allow hotalloc the queued batch-merge work item; the digest gate budgets it
			s.Exec(c.UpdateBatchBase+c.UpdatePer*float64(len(own)), func() {
				for i := range own {
					s.mergeView(own[i].rid, own[i].load, own[i].at)
				}
				e.policy.OnStatus(s, rids)
			})
		})
	}
}

// deliverPolicy carries a protocol message between schedulers, via the
// middleware queue when the policy uses one. The receiver pays a
// Message cost before the policy handler runs. With protocol faults
// armed the message rides the timeout/retry path; one that exhausts its
// budget is simply gone — the session it belonged to stalls, exactly
// the degradation the churn experiment measures.
//
//lint:hotpath every protocol message of every RMS model rides this path; engine/*/allocs_per_event budgets it
func (e *Engine) deliverPolicy(from *Scheduler, to int, kind int, payload any) {
	if to < 0 || to >= len(e.Schedulers) {
		//lint:allow hotalloc panic path: fires once on a policy bug, never in a measured run
		panic(fmt.Sprintf("grid: policy message to invalid cluster %d", to))
	}
	e.Metrics.PolicyMsgs++
	if from.cluster != to {
		e.Metrics.CrossClusterMsgs++
	}
	dst := e.Schedulers[to]
	//lint:allow hotalloc the Message IS the protocol message; one per send is the model's own unit of work
	m := &Message{Kind: kind, From: from.cluster, To: to, Payload: payload}
	net := e.delay(from.node, dst.node, e.Cfg.MsgBytes)
	//lint:allow hotalloc the in-flight delivery closure is the message's first budgeted allocation (engine allocs_per_event gate)
	deliver := func() {
		//lint:allow hotalloc the queued handler work item is the message's second budgeted allocation (engine allocs_per_event gate)
		dst.ExecMsg(func() { e.policy.OnMessage(dst, m) })
	}
	if e.fs != nil {
		e.protoSend(from.node, dst, net, 0, deliver, nil)
		return
	}
	if e.mw != nil {
		e.mw.enqueue(net, deliver)
		return
	}
	e.K.After(net, deliver)
}

// transferJob moves a job envelope to another cluster's scheduler; it
// re-enters the policy as OnJob with Hops incremented. Under faults the
// transfer retries like any protocol message, and one that exhausts its
// budget bounces back to the sender — a job envelope is never lost to
// the network.
//
//lint:hotpath job transfers scale with inter-cluster traffic; engine/*/allocs_per_event budgets them
func (e *Engine) transferJob(from *Scheduler, ctx *JobCtx, to int) {
	if !from.disown(ctx) {
		// A crash moved this job to another home while the sending
		// session was still in flight; the stale transfer dissolves.
		e.Metrics.StaleActions++
		return
	}
	if ctx.Hops >= maxJobHops {
		e.dropJob(ctx)
		return
	}
	e.Metrics.JobTransfers++
	if from.cluster != to {
		e.Metrics.CrossClusterMsgs++
	}
	ctx.Hops++
	if e.Tracer.On() {
		e.Tracer.Tracef("transfer", "job %d: cluster %d -> %d", ctx.Job.ID, from.cluster, to)
	}
	dst := e.Schedulers[to]
	net := e.delay(from.node, dst.node, e.Cfg.JobBytes)
	if e.fs != nil {
		//lint:allow hotalloc the in-flight transfer closure is the envelope's budgeted allocation (engine allocs_per_event gate)
		deliver := func() {
			dst.own(ctx)
			//lint:allow hotalloc the queued handler work item; the transfer gate budgets it
			dst.ExecMsg(func() { e.policy.OnJob(dst, ctx) })
		}
		//lint:allow hotalloc abandon fires only after the retry budget is exhausted — fault path, not steady state
		abandon := func() { e.deliverToScheduler(from, ctx) }
		e.protoSend(from.node, dst, net, 0, deliver, abandon)
		return
	}
	//lint:allow hotalloc the in-flight transfer closure is the envelope's budgeted allocation (engine allocs_per_event gate)
	deliver := func() {
		//lint:allow hotalloc the queued handler work item; the transfer gate budgets it
		dst.ExecMsg(func() { e.policy.OnJob(dst, ctx) })
	}
	if e.mw != nil {
		e.mw.enqueue(net, deliver)
		return
	}
	e.K.After(net, deliver)
}

// sendJobToResource carries a dispatched job to its resource.
//
//lint:hotpath every dispatched job crosses this hop; engine/*/allocs_per_event budgets it
func (e *Engine) sendJobToResource(s *Scheduler, ctx *JobCtx, rid int) {
	r := e.Resources[rid]
	if e.Tracer.On() {
		e.Tracer.Tracef("dispatch", "job %d -> resource %d", ctx.Job.ID, rid)
	}
	//lint:allow hotalloc the in-flight dispatch closure is the hop's budgeted allocation (engine allocs_per_event gate)
	e.K.After(e.delay(s.node, r.node, e.Cfg.JobBytes), func() {
		r.enqueue(ctx)
	})
}

// bounce returns a job whose resource was down to its current cluster's
// scheduler for re-decision, or drops it after too many attempts.
//
//lint:hotpath re-decisions run at event rate under faults; engine/*/allocs_per_event budgets them
func (e *Engine) bounce(ctx *JobCtx) {
	if ctx.Attempts >= maxJobAttempts {
		e.dropJob(ctx)
		return
	}
	s := e.Schedulers[ctx.Origin]
	if e.fs != nil {
		e.deliverToScheduler(s, ctx)
		return
	}
	e.policy.OnJob(s, ctx)
}

// dropJob gives up on a job; it counts as lost. Dependents are
// released — a constraint on a lost job can never be satisfied.
//
//lint:hotpath terminal job accounting runs at event rate; engine/*/allocs_per_event budgets it
func (e *Engine) dropJob(ctx *JobCtx) {
	e.Metrics.JobsLost++
	e.jobTerminated(ctx.Job.ID)
}

// middleware is the grid middleware of the S-I family: a single FIFO
// queue with infinite capacity and a small, finite service time that
// every inter-scheduler message passes through.
type middleware struct {
	eng       *Engine
	busyUntil sim.Time
}

// enqueue routes a message through the middleware: network delay to the
// middleware, FIFO service, then delivery.
//
//lint:hotpath the S-I family funnels every message through this queue; engine/S-I/allocs_per_event budgets it
func (mw *middleware) enqueue(netDelay sim.Time, deliver func()) {
	k := mw.eng.K
	arrive := k.Now() + netDelay/2
	//lint:allow hotalloc the middleware arrival closure; the S-I family's allocs_per_event gate budgets the extra hop
	k.Schedule(arrive, func() {
		start := mw.busyUntil
		if start < k.Now() {
			start = k.Now()
		}
		finish := start + mw.eng.Cfg.Protocol.MiddlewareTime
		mw.busyUntil = finish
		mw.eng.Metrics.MiddlewareBusy += mw.eng.Cfg.Protocol.MiddlewareTime
		//lint:allow hotalloc the middleware service-completion closure; the S-I family's allocs_per_event gate budgets it
		k.Schedule(finish, func() {
			k.After(netDelay/2, deliver)
		})
	})
}
