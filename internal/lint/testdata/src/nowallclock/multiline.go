// Regression fixture for the multi-line statement span: a directive
// anchored on a statement's first line must cover the whole wrapped
// statement, not just the line it starts on.
package nowallclock

import "time"

func consume(a int, t time.Time) int { return a }

func suppressedSpan() int {
	//lint:allow nowallclock fixture: sanctioned read on a wrapped line
	return consume(
		1,
		time.Now(),
	)
}

func unsuppressedSpan() int {
	return consume(
		2,
		time.Now(), // want "time.Now reads the wall clock"
	)
}
