package experiments

import (
	"fmt"

	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/scale"
	"rmscale/internal/stats"
)

// AblationRow is one variant of an ablation study: the design choice
// toggled and the resulting accounting.
type AblationRow struct {
	Variant    string
	G          float64
	Efficiency float64
	Success    float64
	Updates    int
	Suppressed int
	Digests    int
	Evals      int // tuner evaluations, when the ablation tunes
}

// AblationResult is a small comparison table.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// WriteTable renders the ablation as an aligned table.
func (a *AblationResult) Table() string {
	out := a.Title + "\n"
	out += fmt.Sprintf("%-26s %10s %8s %8s %9s %10s %8s %6s\n",
		"variant", "G", "E", "success", "updates", "suppressed", "digests", "evals")
	for _, r := range a.Rows {
		out += fmt.Sprintf("%-26s %10.1f %8.3f %8.3f %9d %10d %8d %6d\n",
			r.Variant, r.G, r.Efficiency, r.Success, r.Updates, r.Suppressed, r.Digests, r.Evals)
	}
	return out
}

// ablationConfig is the shared scenario: the stressed base grid under
// LOWEST, where the update path dominates the tunable overhead.
func ablationConfig(fid Fidelity, seed int64) grid.Config {
	cfg := grid.DefaultConfig()
	cfg.Seed = seed
	h, drain := horizon(fid)
	cfg.Horizon = h
	cfg.Drain = drain
	cfg.Workload.Horizon = h
	return cfg
}

// runAblationVariant executes one simulation and extracts a row.
func runAblationVariant(name string, cfg grid.Config, model string) (AblationRow, error) {
	p, err := rms.ByName(model)
	if err != nil {
		return AblationRow{}, err
	}
	e, err := grid.New(cfg, p)
	if err != nil {
		return AblationRow{}, err
	}
	sum := e.Run()
	return AblationRow{
		Variant:    name,
		G:          sum.G,
		Efficiency: sum.Efficiency,
		Success:    sum.SuccessRate,
		Updates:    e.Metrics.UpdatesSent,
		Suppressed: e.Metrics.UpdatesSuppressed,
		Digests:    e.Metrics.DigestsSent,
	}, nil
}

// AblateSuppression compares the paper's change-suppressed periodic
// updates against always-send updates (SuppressDelta = 0 disables
// suppression for any load change; a huge delta suppresses everything
// but freshly idle resources).
func AblateSuppression(fid Fidelity, seed int64) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: status update suppression (LOWEST, base grid)"}
	variants := []struct {
		name  string
		delta float64
	}{
		{"suppression (paper, 0.5)", 0.5},
		{"no suppression (0)", 0},
		{"aggressive (4.0)", 4.0},
	}
	for _, v := range variants {
		cfg := ablationConfig(fid, seed)
		cfg.Protocol.SuppressDelta = v.delta
		row, err := runAblationVariant(v.name, cfg, "LOWEST")
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblateEstimators compares direct resource-to-scheduler updates
// against the estimator dissemination layer at increasing layer sizes.
func AblateEstimators(fid Fidelity, seed int64) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: estimator dissemination layer (LOWEST, base grid)"}
	for _, n := range []int{0, 2, 8, 16} {
		cfg := ablationConfig(fid, seed)
		cfg.Spec.Estimators = n
		name := "direct updates"
		if n > 0 {
			name = fmt.Sprintf("%d estimators", n)
		}
		row, err := runAblationVariant(name, cfg, "LOWEST")
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblateMiddleware compares the S-I model with its grid middleware
// provisioned generously, tightly, and catastrophically.
func AblateMiddleware(fid Fidelity, seed int64) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: grid middleware service time (S-I, base grid)"}
	for _, v := range []struct {
		name string
		t    float64
	}{
		{"fast middleware (0.1)", 0.1},
		{"paper default (0.5)", 0.5},
		{"slow middleware (5.0)", 5.0},
	} {
		cfg := ablationConfig(fid, seed)
		cfg.Protocol.MiddlewareTime = v.t
		row, err := runAblationVariant(v.name, cfg, "S-I")
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblateTuner compares the paper's simulated annealing against an
// equal-budget grid search on one measurement point: same model, same
// scale, same isoefficiency band.
func AblateTuner(fid Fidelity, seed int64) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: simulated annealing vs grid search (LOWEST, k=2)"}
	def := Case1(fid)
	cache := grid.NewSubstrateCache()

	for _, tuner := range []scale.Tuner{scale.TunerAnneal, scale.TunerGrid} {
		p, err := rms.ByName("LOWEST")
		if err != nil {
			return nil, err
		}
		ev := scale.EvaluatorFunc(func(k int, x []float64) (scale.Observation, error) {
			cfg := def.config(fid, seed, k, x)
			sub, err := cache.Get(cfg)
			if err != nil {
				return scale.Observation{}, err
			}
			fresh, _ := rms.ByName(p.Name())
			e, err := grid.NewWith(cfg, fresh, sub)
			if err != nil {
				return scale.Observation{}, err
			}
			sum := e.Run()
			return scale.Observation{
				F: sum.F, G: sum.G, H: sum.H,
				Efficiency:  sum.Efficiency,
				SuccessRate: sum.SuccessRate,
			}, nil
		})
		opts := fid.tuning()
		opts.Seed = seed
		m, err := scale.Measure(ev, scale.MeasureSpec{
			RMS:      "LOWEST",
			Ks:       []int{2},
			Enablers: def.enablers,
			Band:     scale.PaperBand(),
			Anneal:   opts,
			Tuner:    tuner,
		})
		if err != nil {
			return nil, err
		}
		pt := m.Points[0]
		res.Rows = append(res.Rows, AblationRow{
			Variant:    tuner.String(),
			G:          pt.G,
			Efficiency: pt.Obs.Efficiency,
			Success:    pt.Obs.SuccessRate,
			Evals:      pt.Evals,
		})
	}
	return res, nil
}

// AblateFaults exercises the failure-injection path: the same grid with
// healthy resources, crashing resources, and lossy update delivery.
func AblateFaults(fid Fidelity, seed int64) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: fault injection (LOWEST, base grid)"}
	for _, v := range []struct {
		name string
		mut  func(*grid.Config)
	}{
		{"healthy", func(*grid.Config) {}},
		{"crashes (MTBF 2000)", func(c *grid.Config) {
			c.Faults.ResourceMTBF = 2000
			c.Faults.RepairTime = 200
		}},
		{"update loss 20%", func(c *grid.Config) { c.Faults.UpdateLossProb = 0.2 }},
	} {
		cfg := ablationConfig(fid, seed)
		v.mut(&cfg)
		row, err := runAblationVariant(v.name, cfg, "LOWEST")
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AllAblations runs every ablation study.
func AllAblations(fid Fidelity, seed int64) ([]*AblationResult, error) {
	runs := []func(Fidelity, int64) (*AblationResult, error){
		AblateSuppression, AblateEstimators, AblateMiddleware, AblateTuner, AblateFaults,
	}
	var out []*AblationResult
	for _, run := range runs {
		r, err := run(fid, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MeasureRPOverhead implements the paper's future-work item (c):
// measuring scalability from the RP overhead H(k) instead of the RMS
// overhead G(k). It reuses a case measurement and reports the
// normalized h(k) curves with their slopes.
func MeasureRPOverhead(r *Result) *stats.SeriesSet {
	ss := &stats.SeriesSet{
		Title:  fmt.Sprintf("h(k) = H(k)/H(1), case %d (future-work extension)", r.Case),
		XLabel: "k", YLabel: "h(k)",
	}
	for _, name := range r.Order {
		m, ok := r.Measurements[name]
		if !ok {
			continue
		}
		ss.Add(stats.Series{Name: name, X: m.Ks(), Y: m.NormalizedH()})
	}
	return ss
}
