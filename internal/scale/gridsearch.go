package scale

import (
	"fmt"
	"math"

	"rmscale/internal/anneal"
)

// Tuner selects the optimizer used by the measurement procedure. The
// paper uses simulated annealing; the grid-search alternative exists as
// an ablation baseline to show the annealer reaches comparable minima
// with far fewer evaluations.
type Tuner int

const (
	// TunerAnneal is the paper's simulated annealing search.
	TunerAnneal Tuner = iota
	// TunerGrid is an exhaustive coordinate grid search.
	TunerGrid
)

// String names the tuner.
func (t Tuner) String() string {
	switch t {
	case TunerAnneal:
		return "anneal"
	case TunerGrid:
		return "grid"
	default:
		return fmt.Sprintf("tuner(%d)", int(t))
	}
}

// gridSearch evaluates a full factorial grid of points per dimension
// and returns the best (feasibility first, then energy), mirroring the
// annealer's ordering. pointsPerDim is clamped to [2, 7] to keep the
// factorial bounded.
func gridSearch(dims []anneal.Dim, obj anneal.Objective, pointsPerDim int) (anneal.Outcome, error) {
	if len(dims) == 0 {
		return anneal.Outcome{}, fmt.Errorf("scale: grid search needs dimensions")
	}
	if pointsPerDim < 2 {
		pointsPerDim = 2
	}
	if pointsPerDim > 7 {
		pointsPerDim = 7
	}
	levels := make([][]float64, len(dims))
	for i, d := range dims {
		if d.Max <= d.Min {
			levels[i] = []float64{d.Min}
			continue
		}
		n := pointsPerDim
		vals := make([]float64, 0, n)
		seen := map[float64]bool{}
		for j := 0; j < n; j++ {
			v := d.Min + (d.Max-d.Min)*float64(j)/float64(n-1)
			if d.Integer {
				v = math.Round(v)
			}
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		levels[i] = vals
	}

	var out anneal.Outcome
	var best []float64
	var bestR anneal.Result
	have := false

	idx := make([]int, len(dims))
	for {
		x := make([]float64, len(dims))
		for i := range dims {
			x[i] = levels[i][idx[i]]
		}
		r := obj(x)
		out.Evals++
		if !have || betterResult(r, bestR) {
			best, bestR, have = x, r, true
		}
		// Odometer increment.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(levels[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	out.X = best
	out.Result = bestR
	return out, nil
}

// betterResult mirrors the annealer's ordering: feasible beats
// infeasible, then lower energy.
func betterResult(a, b anneal.Result) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.Cost+a.Penalty < b.Cost+b.Penalty
}
