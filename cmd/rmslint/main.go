// Command rmslint runs the module's determinism and model-coverage
// analyzers (internal/lint) over the packages matched by its
// arguments, defaulting to ./... — a multichecker in the style of
// golang.org/x/tools/go/analysis/multichecker, built on the standard
// library only.
//
// Usage:
//
//	rmslint [packages]
//
// Diagnostics print one per line in go vet's file:line:col format.
// The exit status is 1 when any diagnostic is reported, 2 on driver
// errors. The //lint:allow and //lint:orderindependent directives
// suppress single findings; see DESIGN.md "Determinism invariants".
package main

import (
	"fmt"
	"os"

	"rmscale/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmslint:", err)
		os.Exit(2)
	}
	n, err := lint.RunDir(dir, patterns, lint.DefaultConfig, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmslint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "rmslint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
