package lint

// Config is the single data-driven description of where each
// invariant applies. Everything the suite knows about the module —
// which packages are simulation-visible, which form the deterministic
// kernel, what the RMS-model enum is called and which constants it
// must always cover — lives here, so extending the module means
// editing one literal, and the config meta-test keeps the lists
// honest against the packages that actually exist.
type Config struct {
	// SimVisible lists the packages whose behaviour is visible inside
	// a simulation run: virtual time only (nowallclock) and named RNG
	// streams only (noglobalrand). Wall-clock reads or global RNG
	// draws here would break byte-identical reproducibility.
	SimVisible []string

	// Kernel lists the deterministic-kernel packages where goroutines,
	// channels and sync primitives are banned (nokernelgoroutines):
	// concurrency belongs to internal/runner, which parallelizes whole
	// single-threaded simulations.
	Kernel []string

	// MapOrder lists the packages checked for order-dependent map
	// iteration (mapiterorder). "rmscale/..." style entries apply the
	// analyzer to a whole subtree.
	MapOrder []string

	// Exhaustive lists the packages whose switches over the RMS-model
	// enum must cover every model (rmsexhaustive).
	Exhaustive []string

	// EnumPkg, EnumType and EnumConstants describe the RMS-model enum:
	// switches over EnumPkg.EnumType must either cover every constant
	// named in EnumConstants or carry a panicking default.
	EnumPkg       string
	EnumType      string
	EnumConstants []string
}

// DefaultConfig is the module's invariant map.
var DefaultConfig = Config{
	SimVisible: []string{
		"rmscale/internal/sim",
		"rmscale/internal/grid",
		"rmscale/internal/rms",
		"rmscale/internal/routing",
		"rmscale/internal/scale",
		"rmscale/internal/anneal",
		"rmscale/internal/workload",
		"rmscale/internal/topology",
		"rmscale/internal/experiments",
		"rmscale/internal/stats",
		"rmscale/internal/audit",
		"rmscale/internal/audit/chaos",
		// The daemon and its load harness never let wall time or global
		// RNG leak into simulation results; their few legitimate
		// real-time reads (request timestamps, latency measurement,
		// admission backoff) carry //lint:allow annotations at the site.
		"rmscale/internal/service",
		"rmscale/internal/service/loadgen",
		"rmscale/internal/service/chaos",
	},
	Kernel: []string{
		"rmscale/internal/sim",
		"rmscale/internal/grid",
		"rmscale/internal/rms",
		"rmscale/internal/routing",
		"rmscale/internal/scale",
		"rmscale/internal/anneal",
		"rmscale/internal/workload",
		"rmscale/internal/topology",
		"rmscale/internal/stats",
		// The auditor rides inside the simulation, so it is held to the
		// kernel's no-concurrency discipline; the chaos harness above it
		// drives the runner pool and is only simulation-visible.
		"rmscale/internal/audit",
		// The service daemon is concurrent by design — worker shards,
		// HTTP handlers, a load generator — but every simulation it
		// executes stays single-threaded underneath. Listing it here
		// forces each concurrency site to justify itself with an
		// annotation instead of letting sync primitives creep in
		// unreviewed.
		"rmscale/internal/service",
		"rmscale/internal/service/loadgen",
		"rmscale/internal/service/chaos",
	},
	// Map-iteration order can leak into any rendered table, figure,
	// JSON file or checkpoint, so the whole module is covered.
	MapOrder:   []string{"rmscale/..."},
	Exhaustive: []string{"rmscale/..."},

	EnumPkg:  "rmscale/internal/rms",
	EnumType: "ID",
	EnumConstants: []string{
		"IDCentral", "IDLowest", "IDReserve", "IDAuction",
		"IDSenderInit", "IDReceiverInit", "IDSymmetric",
	},
}

// appliesTo reports whether an entry list covers the package path.
// An entry "m/..." covers m and everything below it.
func appliesTo(entries []string, pkgPath string) bool {
	for _, e := range entries {
		if e == pkgPath {
			return true
		}
		if root, ok := cutDots(e); ok {
			if pkgPath == root || len(pkgPath) > len(root) && pkgPath[:len(root)+1] == root+"/" {
				return true
			}
		}
	}
	return false
}

func cutDots(e string) (string, bool) {
	const suffix = "/..."
	if len(e) > len(suffix) && e[len(e)-len(suffix):] == suffix {
		return e[:len(e)-len(suffix)], true
	}
	return "", false
}
