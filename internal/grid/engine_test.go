package grid

import (
	"testing"

	"rmscale/internal/topology"
	"rmscale/internal/workload"
)

// stubPolicy is a minimal policy: everything local, hooks counted.
type stubPolicy struct {
	central    bool
	middleware bool
	onJob      int
	onStatus   int
	onTick     int
	onMessage  int
}

func (p *stubPolicy) Name() string         { return "STUB" }
func (p *stubPolicy) Central() bool        { return p.central }
func (p *stubPolicy) UsesMiddleware() bool { return p.middleware }
func (p *stubPolicy) Attach(*Engine)       {}

func (p *stubPolicy) OnJob(s *Scheduler, ctx *JobCtx) {
	p.onJob++
	s.DispatchLeastLoaded(ctx)
}
func (p *stubPolicy) OnMessage(*Scheduler, *Message) { p.onMessage++ }
func (p *stubPolicy) OnStatus(*Scheduler, []int)     { p.onStatus++ }
func (p *stubPolicy) OnTick(*Scheduler)              { p.onTick++ }

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Spec = topology.GridSpec{Clusters: 4, ClusterSize: 5}
	cfg.Workload.Clusters = 4
	cfg.Workload.ArrivalRate = 0.9 * 20 / 524.2
	cfg.Workload.Horizon = 1500
	cfg.Horizon = 1500
	cfg.Drain = 2000
	return cfg
}

func TestEngineRejectsNilPolicy(t *testing.T) {
	if _, err := New(testConfig(), nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.ServiceRate = 0
	if _, err := New(cfg, &stubPolicy{}); err == nil {
		t.Fatal("zero service rate accepted")
	}
	cfg = testConfig()
	cfg.Workload.Clusters = 99
	if _, err := New(cfg, &stubPolicy{}); err == nil {
		t.Fatal("workload/grid cluster mismatch accepted")
	}
	cfg = testConfig()
	cfg.TopoNodes = 3 // below spec minimum
	if _, err := New(cfg, &stubPolicy{}); err == nil {
		t.Fatal("undersized topology accepted")
	}
}

func TestCentralCollapse(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{central: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.Clusters() != 1 {
		t.Fatalf("central collapse left %d clusters", e.Clusters())
	}
	if got := len(e.Resources); got != 20 {
		t.Fatalf("central collapse changed resource count: %d", got)
	}
	if e.Cfg.Workload.Clusters != 1 {
		t.Fatal("workload clusters not collapsed")
	}
}

func TestEngineHooksFire(t *testing.T) {
	p := &stubPolicy{}
	e, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if p.onJob == 0 || p.onStatus == 0 || p.onTick == 0 {
		t.Fatalf("hooks did not fire: job=%d status=%d tick=%d", p.onJob, p.onStatus, p.onTick)
	}
	if p.onJob < len(e.Jobs()) {
		t.Fatalf("OnJob fired %d times for %d jobs", p.onJob, len(e.Jobs()))
	}
}

func TestResourceFCFS(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Resources[0]
	mk := func(id int, runtime float64) *JobCtx {
		return &JobCtx{Job: &workload.Job{ID: id, Runtime: runtime, Benefit: 5, Partition: 1}}
	}
	r.enqueue(mk(1, 100))
	r.enqueue(mk(2, 50))
	r.enqueue(mk(3, 10))
	if r.Load() != 3 {
		t.Fatalf("load = %v, want 3", r.Load())
	}
	e.K.Run(99)
	if e.Metrics.JobsCompleted != 0 {
		t.Fatal("job finished early")
	}
	e.K.Run(100.5)
	if e.Metrics.JobsCompleted != 1 {
		t.Fatalf("first job should finish at 100, completed=%d", e.Metrics.JobsCompleted)
	}
	e.K.Run(151)
	if e.Metrics.JobsCompleted != 2 {
		t.Fatal("second job should finish at 150")
	}
	e.K.Run(161)
	if e.Metrics.JobsCompleted != 3 {
		t.Fatal("third job should finish at 160")
	}
	if r.Load() != 0 {
		t.Fatalf("drained resource load = %v", r.Load())
	}
}

func TestResourceServiceRateScalesExecution(t *testing.T) {
	cfg := testConfig()
	cfg.ServiceRate = 4
	e, err := New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Resources[0]
	r.enqueue(&JobCtx{Job: &workload.Job{ID: 1, Runtime: 100, Benefit: 5, Partition: 1}})
	e.K.Run(24.9)
	if e.Metrics.JobsCompleted != 0 {
		t.Fatal("job finished before runtime/mu")
	}
	e.K.Run(25.1)
	if e.Metrics.JobsCompleted != 1 {
		t.Fatal("job should finish at runtime/mu = 25")
	}
}

func TestDeadlineAccounting(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Resources[0]
	// Benefit 2, runtime 100: deadline = arrival + 200. Queue two so
	// the second finishes at 200 (just in time) and a third at 300
	// (late).
	mk := func(id int) *JobCtx {
		return &JobCtx{Job: &workload.Job{ID: id, Runtime: 100, Benefit: 2, Partition: 1}}
	}
	r.enqueue(mk(1))
	r.enqueue(mk(2))
	r.enqueue(mk(3))
	e.K.Run(400)
	m := e.Metrics
	if m.JobsCompleted != 3 {
		t.Fatalf("completed %d", m.JobsCompleted)
	}
	if m.JobsSucceeded != 2 {
		t.Fatalf("succeeded %d, want 2 (third job misses its deadline)", m.JobsSucceeded)
	}
	if m.UsefulWork != 200 {
		t.Fatalf("F = %v, want 200", m.UsefulWork)
	}
	if m.WastedWork != 100 {
		t.Fatalf("wasted = %v, want 100", m.WastedWork)
	}
	// Wasted work counts into H on top of per-job control cost.
	wantH := 100 + 3*e.Cfg.Costs.JobControl
	if m.RPOverhead != wantH {
		t.Fatalf("H = %v, want %v", m.RPOverhead, wantH)
	}
}

func TestUpdateSuppression(t *testing.T) {
	p := &stubPolicy{}
	e, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	m := e.Metrics
	if m.UpdatesSent == 0 || m.UpdatesSuppressed == 0 {
		t.Fatalf("updates=%d suppressed=%d; both must occur", m.UpdatesSent, m.UpdatesSuppressed)
	}
	// Idle resources dominate tick counts, so suppression should win.
	if m.UpdatesSuppressed < m.UpdatesSent {
		t.Fatalf("suppression (%d) should exceed sends (%d) at this load",
			m.UpdatesSuppressed, m.UpdatesSent)
	}
}

func TestSchedulerExecSerializes(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Schedulers[0]
	var done []float64
	s.Exec(4, func() { done = append(done, e.K.Now()) }) // 4 cost at speed 4 = 1 time
	s.Exec(8, func() { done = append(done, e.K.Now()) })
	e.K.Run(100)
	speed := e.Cfg.Costs.SchedulerSpeed
	if len(done) != 2 {
		t.Fatalf("exec callbacks: %d", len(done))
	}
	if done[0] != 4/speed {
		t.Fatalf("first op finished at %v, want %v", done[0], 4/speed)
	}
	if done[1] != 12/speed {
		t.Fatalf("second op must queue behind the first: %v, want %v", done[1], 12/speed)
	}
	if e.Metrics.RMSOverhead != 12 {
		t.Fatalf("G = %v, want 12", e.Metrics.RMSOverhead)
	}
	if s.QueueDelay() != 0 {
		t.Fatalf("queue delay after drain = %v", s.QueueDelay())
	}
}

func TestSchedulerExecPanicsOnNegativeCost(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost accepted")
		}
	}()
	e.Schedulers[0].Exec(-1, func() {})
}

func TestViewMergeAndBump(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Schedulers[0]
	rid := s.LocalResources()[0]
	if l, _ := s.View(rid); l != 0 {
		t.Fatalf("initial view %v", l)
	}
	s.mergeView(rid, 3, 10)
	if l, at := s.View(rid); l != 3 || at != 10 {
		t.Fatalf("view after merge: %v at %v", l, at)
	}
	// Stale merges are ignored.
	s.mergeView(rid, 9, 5)
	if l, _ := s.View(rid); l != 3 {
		t.Fatalf("stale merge applied: %v", l)
	}
	s.bumpView(rid)
	if l, _ := s.View(rid); l != 4 {
		t.Fatalf("bump failed: %v", l)
	}
}

func TestLeastLoadedAndAggregates(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Schedulers[0]
	rs := s.LocalResources()
	for i, rid := range rs {
		s.mergeView(rid, float64(i+1), 1)
	}
	rid, load, ok := s.LeastLoadedLocal()
	if !ok || rid != rs[0] || load != 1 {
		t.Fatalf("least loaded = %d/%v/%v", rid, load, ok)
	}
	wantAvg := (1.0 + 2 + 3 + 4 + 5) / 5
	if got := s.AvgLocalLoad(); got != wantAvg {
		t.Fatalf("avg = %v, want %v", got, wantAvg)
	}
	if got := s.MaxLocalLoad(); got != 5 {
		t.Fatalf("max = %v", got)
	}
	if got := s.Utilization(); got != 1 {
		t.Fatalf("utilization = %v, want 1 (all loaded)", got)
	}
}

func TestRandomPeers(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Schedulers[0]
	peers := s.RandomPeers(2)
	if len(peers) != 2 {
		t.Fatalf("RandomPeers(2) = %v", peers)
	}
	for _, p := range peers {
		if p == s.Cluster() {
			t.Fatal("peer includes self")
		}
	}
	all := s.RandomPeers(99)
	if len(all) != len(s.Peers()) {
		t.Fatalf("oversized request should return whole neighborhood: %v", all)
	}
}

func TestNeighborhoodSizeBoundsPeers(t *testing.T) {
	cfg := testConfig()
	cfg.Enablers.NeighborhoodSize = 2
	e, err := New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range e.Schedulers {
		if len(s.Peers()) != 2 {
			t.Fatalf("neighborhood size ignored: %d peers", len(s.Peers()))
		}
	}
}

func TestStealQueuedJob(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.StealQueuedJob(0); got != nil {
		t.Fatal("steal from empty cluster returned a job")
	}
	r := e.Resources[e.Map.ClusterResources[0][0]]
	mk := func(id int) *JobCtx {
		return &JobCtx{Job: &workload.Job{ID: id, Runtime: 100, Benefit: 5, Partition: 1}}
	}
	r.enqueue(mk(1)) // running
	r.enqueue(mk(2)) // queued
	r.enqueue(mk(3)) // queued, most recent
	got := e.StealQueuedJob(0)
	if got == nil || got.Job.ID != 3 {
		t.Fatalf("steal returned %+v, want job 3", got)
	}
	if e.QueuedJobs(0) != 1 {
		t.Fatalf("queued after steal = %d, want 1", e.QueuedJobs(0))
	}
	// The running job must not be stealable.
	e.StealQueuedJob(0)
	if e.StealQueuedJob(0) != nil {
		t.Fatal("stole the running job")
	}
}

func TestFailureInjection(t *testing.T) {
	cfg := testConfig()
	cfg.Faults.ResourceMTBF = 300
	cfg.Faults.RepairTime = 100
	p := &stubPolicy{}
	e, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	m := e.Metrics
	if m.JobsCompleted+m.JobsLost+e.Unfinished() != m.JobsArrived {
		t.Fatalf("conservation broken under failures: %d+%d+%d != %d",
			m.JobsCompleted, m.JobsLost, e.Unfinished(), m.JobsArrived)
	}
	if m.JobsLost == 0 {
		t.Fatal("aggressive MTBF produced no losses")
	}
}

func TestUpdateLoss(t *testing.T) {
	cfg := testConfig()
	cfg.Faults.UpdateLossProb = 0.5
	e, err := New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if e.Metrics.UpdatesLost == 0 {
		t.Fatal("50% loss dropped nothing")
	}
	frac := float64(e.Metrics.UpdatesLost) /
		float64(e.Metrics.UpdatesLost+e.Metrics.UpdatesSent)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("loss fraction %v far from 0.5", frac)
	}
}

func TestEstimatorLayerCarriesUpdates(t *testing.T) {
	cfg := testConfig()
	cfg.Spec.Estimators = 3
	p := &stubPolicy{}
	e, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Estimators) != 3 {
		t.Fatalf("estimators = %d", len(e.Estimators))
	}
	e.Run()
	if e.Metrics.DigestsSent == 0 {
		t.Fatal("estimator layer sent no digests")
	}
	// Digest broadcast: every digest goes to every scheduler.
	if e.Metrics.DigestsSent%e.Clusters() != 0 {
		t.Fatalf("digests (%d) not a multiple of schedulers (%d)",
			e.Metrics.DigestsSent, e.Clusters())
	}
	if p.onStatus == 0 {
		t.Fatal("digests never reached the policy")
	}
}

func TestDelayModel(t *testing.T) {
	cfg := testConfig()
	e, err := New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	a := e.Map.SchedulerNode[0]
	b := e.Map.SchedulerNode[1]
	if e.delay(a, a, 10) != 0 {
		t.Fatal("self delay must be 0")
	}
	d1 := e.delay(a, b, 1)
	if d1 <= 0 {
		t.Fatalf("delay = %v", d1)
	}
	// Bigger payloads take longer (bandwidth term).
	if d2 := e.delay(a, b, 1000); d2 <= d1 {
		t.Fatalf("payload size ignored: %v <= %v", d2, d1)
	}
	// The link delay scale enabler multiplies latency.
	e2cfg := cfg
	e2cfg.Enablers.LinkDelayScale = 3
	e2, err := New(e2cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if d3 := e2.delay(a, b, 1); d3 <= d1 {
		t.Fatalf("link delay scale ignored: %v <= %v", d3, d1)
	}
}

func TestMiddlewareQueueing(t *testing.T) {
	cfg := testConfig()
	p := &stubPolicy{middleware: true}
	e, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if e.mw == nil {
		t.Fatal("middleware not created")
	}
	// Two messages back to back: the second is delayed by service.
	var arrivals []float64
	e.mw.enqueue(0, func() { arrivals = append(arrivals, e.K.Now()) })
	e.mw.enqueue(0, func() { arrivals = append(arrivals, e.K.Now()) })
	e.K.Run(100)
	if len(arrivals) != 2 {
		t.Fatalf("deliveries = %d", len(arrivals))
	}
	st := cfg.Protocol.MiddlewareTime
	if arrivals[0] != st || arrivals[1] != 2*st {
		t.Fatalf("middleware did not serialize: %v (service %v)", arrivals, st)
	}
	if e.Metrics.MiddlewareBusy != 2*st {
		t.Fatalf("middleware busy = %v", e.Metrics.MiddlewareBusy)
	}
}

func TestSubstrateReuse(t *testing.T) {
	cfg := testConfig()
	sub, err := BuildSubstrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := NewWith(cfg, &stubPolicy{}, sub)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewWith(cfg, &stubPolicy{}, sub)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Graph != e2.Graph {
		t.Fatal("substrate not shared")
	}
	a := e1.Run()
	b := e2.Run()
	if a != b {
		t.Fatalf("shared substrate broke determinism: %v vs %v", a, b)
	}
	// A mismatched substrate must be rejected.
	other := cfg
	other.Spec.Clusters = 5
	other.Workload.Clusters = 5
	if _, err := NewWith(other, &stubPolicy{}, sub); err == nil {
		t.Fatal("mismatched substrate accepted")
	}
}

func TestSubstrateCache(t *testing.T) {
	cache := NewSubstrateCache()
	cfg := testConfig()
	s1, err := cache.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cache.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("cache missed on identical config")
	}
	cfg.Seed = 99
	s3, err := cache.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("cache returned wrong substrate for different seed")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache size = %d", cache.Len())
	}
}

func TestMeanServiceTime(t *testing.T) {
	cfg := testConfig()
	e, err := New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	mst := e.MeanServiceTime()
	if mst < 500 || mst > 550 {
		t.Fatalf("mean service time = %v, want ~524", mst)
	}
	cfg.ServiceRate = 2
	e2, err := New(cfg, &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.MeanServiceTime(); got != mst/2 {
		t.Fatalf("service rate not applied: %v", got)
	}
	if e.ERT(100) != 100 || e2.ERT(100) != 50 {
		t.Fatal("ERT wrong")
	}
}

func TestBounceGivesUpEventually(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &JobCtx{
		Job:      &workload.Job{ID: 1, Runtime: 10, Benefit: 5, Partition: 1},
		Attempts: maxJobAttempts,
	}
	e.bounce(ctx)
	if e.Metrics.JobsLost != 1 {
		t.Fatal("exhausted bounce did not drop the job")
	}
}

func TestTransferHopLimit(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &JobCtx{
		Job:  &workload.Job{ID: 1, Runtime: 10, Benefit: 5, Partition: 1},
		Hops: maxJobHops,
	}
	e.transferJob(e.Schedulers[0], ctx, 1)
	if e.Metrics.JobsLost != 1 {
		t.Fatal("hop-limited transfer not dropped")
	}
	if e.Metrics.JobTransfers != 0 {
		t.Fatal("dropped transfer still counted")
	}
}
