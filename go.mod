module rmscale

go 1.22
