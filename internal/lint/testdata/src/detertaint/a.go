// Package detertaint stands in for a simulation-visible package that
// reaches determinism-breaking sources only through other packages
// and other functions — the exact hole the direct per-line analyzers
// cannot see. Never built by the module.
package detertaint

import (
	"math/rand"

	"detertaint/helper"
)

// Entry reaches the wall clock two packages away; the witness chain
// names every hop down to the source.
func Entry() int64 {
	return helper.Stamp() // want "reaches time\\.Now \\(helper\\.Stamp -> helper\\.now -> time\\.Now\\)"
}

// EntryAllowed suppresses at the tainted entry point instead of at
// the source: the helper stays tainted for everyone else.
func EntryAllowed() int64 {
	//lint:allow detertaint fixture: feeds a log line, not simulation state
	return helper.Stamp()
}

// Clean calls the source-side-annotated helper: the chain was cut
// where the annotation lives, so nothing propagates here.
func Clean() int64 {
	return helper.Sanctioned()
}

// Rand reaches the global RNG through a local hop.
func Rand() int {
	return draw() // want "reaches rand\\.Intn"
}

func draw() int {
	return pick() // want "reaches rand\\.Intn"
}

func pick() int {
	return rand.Intn(10)
}

// ticker's one implementation is tainted, so interface dispatch is
// reported too (CHA over the module's concrete types).
type ticker interface{ Tick() int64 }

type wall struct{}

func (wall) Tick() int64 {
	return helper.Stamp() // want "reaches time\\.Now"
}

// Dispatch cannot name wall statically; the call graph can.
func Dispatch(t ticker) int64 {
	return t.Tick() // want "reaches time\\.Now"
}
