// Package anneal implements the simulated annealing search the paper
// uses to tune the RMS's scaling enablers: a bounded-dimension
// minimizer with geometric cooling, random restarts, and an evaluation
// cache, following the classical formulation of van Laarhoven and the
// practice notes of Ingber that the paper cites.
package anneal

import (
	"fmt"
	"math"

	"rmscale/internal/sim"
)

// Dim bounds one search dimension. Integer dimensions are snapped to
// whole numbers.
type Dim struct {
	Name     string
	Min, Max float64
	Integer  bool
}

// clamp forces v into the dimension's range (and grid, for integers).
func (d Dim) clamp(v float64) float64 {
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	if d.Integer {
		v = math.Round(v)
		if v < d.Min {
			v = math.Ceil(d.Min)
		}
		if v > d.Max {
			v = math.Floor(d.Max)
		}
	}
	return v
}

// Objective evaluates a candidate point. Cost is minimized; Penalty is
// added on top of cost and should be positive for constraint violations
// (e.g. efficiency outside the isoefficiency band) and zero inside the
// feasible region. Feasible marks points satisfying every constraint.
type Objective func(x []float64) Result

// Result is one evaluation.
type Result struct {
	Cost     float64
	Penalty  float64
	Feasible bool
	// Aux carries evaluator-specific payload (e.g. the full simulation
	// summary) back to the caller alongside the best point.
	Aux any
}

// total is the annealing energy.
func (r Result) total() float64 { return r.Cost + r.Penalty }

// EvalCache memoizes objective evaluations across searches. Minimize
// consults it (keyed by PointKey) before calling the objective and
// stores every fresh evaluation back. Implementations must return
// results exactly as stored — the measurement framework relies on a
// cache hit being indistinguishable from re-evaluating — and must be
// safe for use from the single goroutine running Minimize. The zero
// behaviour (nil Cache) is a private per-call map.
type EvalCache interface {
	Get(key string) (Result, bool)
	Put(key string, r Result)
}

// mapCache is the default per-call memo.
type mapCache map[string]Result

func (m mapCache) Get(key string) (Result, bool) { r, ok := m[key]; return r, ok }
func (m mapCache) Put(key string, r Result)      { m[key] = r }

// Options tunes the search.
type Options struct {
	// Iters is the number of annealing steps per restart.
	Iters int
	// Restarts is how many independent chains to run (>= 1).
	Restarts int
	// T0 is the initial temperature as a fraction of the first
	// energy's magnitude; 0 picks 0.3.
	T0 float64
	// Cooling is the geometric cooling factor per step; 0 picks a
	// schedule that reaches ~1% of T0 by the last iteration.
	Cooling float64
	// Step is the initial neighbour step size as a fraction of each
	// dimension's range; 0 picks 0.25. The step shrinks with the
	// temperature.
	Step float64
	// Seed feeds the deterministic random streams.
	Seed int64
	// Cache, when non-nil, supplies the evaluation memo — e.g. a
	// persistent content-addressed store shared across runs — in place
	// of the private per-call map.
	Cache EvalCache
}

func (o Options) withDefaults() Options {
	if o.Iters <= 0 {
		o.Iters = 60
	}
	if o.Restarts <= 0 {
		o.Restarts = 2
	}
	if o.T0 <= 0 {
		o.T0 = 0.3
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = math.Pow(0.01, 1/float64(max(o.Iters-1, 1)))
	}
	if o.Step <= 0 {
		o.Step = 0.25
	}
	return o
}

// Outcome reports the best point found.
type Outcome struct {
	X        []float64
	Result   Result
	Evals    int
	CacheHit int
}

// Minimize runs the annealing search from the given start point (which
// may be nil to start at the centre of the box). It is deterministic in
// Options.Seed.
func Minimize(dims []Dim, start []float64, obj Objective, o Options) (Outcome, error) {
	if len(dims) == 0 {
		return Outcome{}, fmt.Errorf("anneal: no dimensions")
	}
	for _, d := range dims {
		if d.Max < d.Min {
			return Outcome{}, fmt.Errorf("anneal: dimension %q has Max < Min", d.Name)
		}
	}
	if obj == nil {
		return Outcome{}, fmt.Errorf("anneal: nil objective")
	}
	o = o.withDefaults()

	src := sim.NewSource(o.Seed)
	cache := o.Cache
	if cache == nil {
		cache = make(mapCache)
	}
	out := Outcome{}
	evaluate := func(x []float64) Result {
		key := PointKey(x)
		if r, ok := cache.Get(key); ok {
			out.CacheHit++
			return r
		}
		r := obj(x)
		cache.Put(key, r)
		out.Evals++
		return r
	}

	var best []float64
	var bestR Result
	haveBest := false

	for restart := 0; restart < o.Restarts; restart++ {
		st := src.Stream(fmt.Sprintf("chain:%d", restart))
		cur := make([]float64, len(dims))
		switch {
		case restart == 0 && start != nil:
			copy(cur, start)
		default:
			for i, d := range dims {
				cur[i] = st.Uniform(d.Min, d.Max)
			}
		}
		for i, d := range dims {
			cur[i] = d.clamp(cur[i])
		}
		curR := evaluate(cur)
		if !haveBest || better(curR, bestR) {
			best, bestR, haveBest = append([]float64(nil), cur...), curR, true
		}

		temp := o.T0 * (math.Abs(curR.total()) + 1)
		step := o.Step
		for it := 0; it < o.Iters; it++ {
			cand := neighbour(dims, cur, step, st)
			candR := evaluate(cand)
			d := candR.total() - curR.total()
			if d <= 0 || st.Float64() < math.Exp(-d/math.Max(temp, 1e-12)) {
				cur, curR = cand, candR
			}
			if better(candR, bestR) {
				best, bestR = append([]float64(nil), cand...), candR
			}
			temp *= o.Cooling
			step = o.Step * (0.15 + 0.85*math.Pow(o.Cooling, float64(it)))
		}
	}
	out.X = best
	out.Result = bestR
	return out, nil
}

// better orders results: feasible beats infeasible; within the same
// feasibility class, lower energy wins.
func better(a, b Result) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.total() < b.total()
}

// neighbour perturbs one or two random dimensions by a temperature-
// scaled step.
func neighbour(dims []Dim, cur []float64, step float64, st *sim.Stream) []float64 {
	out := append([]float64(nil), cur...)
	n := 1
	if len(dims) > 1 && st.Bool(0.35) {
		n = 2
	}
	for _, i := range st.Sample(len(dims), n) {
		d := dims[i]
		span := d.Max - d.Min
		if span == 0 {
			continue
		}
		delta := st.Normal(0, step*span)
		if d.Integer && math.Abs(delta) < 1 {
			if delta >= 0 {
				delta = 1
			} else {
				delta = -1
			}
		}
		out[i] = d.clamp(out[i] + delta)
	}
	return out
}

// PointKey builds the evaluation-cache key for a candidate point, with
// enough precision to distinguish meaningfully different points.
func PointKey(x []float64) string {
	b := make([]byte, 0, len(x)*12)
	for _, v := range x {
		b = appendFloat(b, v)
	}
	return string(b)
}

func appendFloat(b []byte, v float64) []byte {
	// Quantize to 5 significant decimals; enabler landscapes are far
	// smoother than that.
	q := math.Round(v*1e5) / 1e5
	return append(b, fmt.Sprintf("%g|", q)...)
}
