// The differential equivalence suite: the tentpole's acceptance
// contract is that in-run parallelism changes nothing observable, and
// this file pins that from four angles — the par-native bench model
// across worker counts, every RMS model's engine summary and audit
// fingerprint across fault modes, the chaos corpus' replay reports,
// and a full experiment case's golden CSV figures.

package par_test

import (
	"bytes"
	"fmt"
	"testing"

	"rmscale"
	"rmscale/internal/audit"
	"rmscale/internal/audit/chaos"
	"rmscale/internal/grid"
	"rmscale/internal/rms"
	"rmscale/internal/sim/par"
	"rmscale/internal/topology"
)

var workerCounts = []int{2, 4, 8}

// TestBenchEquivalenceAcrossWorkers pins the conservative executor
// itself: the partitioned bench model's result — event count, message
// count, window count and the order-sensitive digest of every shard's
// event stream — is byte-identical at every worker count.
func TestBenchEquivalenceAcrossWorkers(t *testing.T) {
	specs := []par.BenchSpec{
		{Clusters: 2, Resources: 3, Update: 1, Volunteer: 5, Latency: 2, Work: 4, Horizon: 60, Seed: 7},
		{Clusters: 5, Resources: 8, Update: 2, Volunteer: 3, Latency: 1, Work: 8, Horizon: 90, Seed: 3},
	}
	if !testing.Short() {
		spec := par.LargeTopology()
		spec.Horizon = 40 // full shape, reduced horizon: this is a correctness pin, not the timing bench
		specs = append(specs, spec)
	}
	for si, spec := range specs {
		serial := par.RunBench(spec, 1)
		if serial.Events == 0 || serial.Cross == 0 {
			t.Fatalf("spec %d: degenerate serial run %+v", si, serial)
		}
		for _, w := range workerCounts {
			if got := par.RunBench(spec, w); got != serial {
				t.Errorf("spec %d: %d workers diverged:\n got %+v\nwant %+v", si, w, got, serial)
			}
		}
	}
}

// modelConfig is a small four-cluster grid with every model-visible
// feature armed (estimator layer included) at roughly the calibrated
// utilization, sized so the whole model × fault-mode × worker-count
// matrix stays in test-suite budget.
func modelConfig(faulted bool) grid.Config {
	cfg := grid.DefaultConfig()
	cfg.Spec = topology.GridSpec{Clusters: 4, ClusterSize: 5, Estimators: 2}
	cfg.Workload.Clusters = 4
	cfg.Workload.ArrivalRate = 0.9 * 20 / 524.2
	cfg.Workload.Horizon = 1000
	cfg.Horizon = 1000
	cfg.Drain = 1200
	if faulted {
		cfg.Faults = rmscale.ChurnFaults()
		cfg.Faults.ResourceMTBF = 1500
		cfg.Faults.RepairTime = 150
		cfg.Faults.UpdateLossProb = 0.02
	}
	return cfg
}

// runModel builds a fresh audited engine for the model and returns its
// summary and audit fingerprint after RunPar(workers).
func runModel(t *testing.T, name string, faulted bool, workers int) (grid.Summary, string) {
	t.Helper()
	p, err := rms.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	e, err := grid.New(modelConfig(faulted), p)
	if err != nil {
		t.Fatal(err)
	}
	if faulted {
		if err := e.ArmFaults(); err != nil {
			t.Fatal(err)
		}
	}
	a, err := audit.Attach(e, audit.Config{Mode: audit.Record})
	if err != nil {
		t.Fatal(err)
	}
	sum := e.RunPar(workers)
	if err := a.Err(); err != nil {
		t.Fatalf("%s (faulted=%v, workers=%d): audit: %v", name, faulted, workers, err)
	}
	return sum, a.Fingerprint()
}

// TestEngineEquivalenceAllModels runs every RMS model fault-free and
// under the churn fault load, serially and at 2/4/8 workers, and
// requires byte-identical summaries and audit fingerprints.
func TestEngineEquivalenceAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("full model × fault × workers matrix is slow")
	}
	for _, name := range rms.Names() {
		for _, faulted := range []bool{false, true} {
			mode := "fault-free"
			if faulted {
				mode = "churn"
			}
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				wantSum, wantFP := runModel(t, name, faulted, 1)
				for _, w := range workerCounts {
					gotSum, gotFP := runModel(t, name, faulted, w)
					if gotSum != wantSum {
						t.Fatalf("workers=%d summary diverged:\n got %+v\nwant %+v", w, gotSum, wantSum)
					}
					if gotFP != wantFP {
						t.Fatalf("workers=%d audit fingerprint %s, want %s", w, gotFP, wantFP)
					}
				}
			})
		}
	}
}

// TestChaosCorpusEquivalence replays one generated chaos schedule per
// RMS model (the generator covers models round-robin) at every worker
// count and requires the full report — summary, violation list, check
// count and fingerprint — to be identical to the serial replay.
func TestChaosCorpusEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos corpus replay matrix is slow")
	}
	for i := range rms.Names() {
		s := chaos.Generate(1, i)
		t.Run(s.Name+"/"+s.Model, func(t *testing.T) {
			want, err := chaos.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				got, err := chaos.RunWorkers(s, w)
				if err != nil {
					t.Fatal(err)
				}
				if got.Summary != want.Summary {
					t.Fatalf("workers=%d chaos summary diverged:\n got %+v\nwant %+v", w, got.Summary, want.Summary)
				}
				if got.Fingerprint != want.Fingerprint || got.Checks != want.Checks ||
					fmt.Sprint(got.Violations) != fmt.Sprint(want.Violations) {
					t.Fatalf("workers=%d chaos report diverged:\n got %+v\nwant %+v", w, got, want)
				}
			}
		})
	}
}

// TestGoldenCSVEquivalence renders a full smoke experiment case to its
// CSV figure twice — serial and with -par-workers 4 — and requires the
// bytes to be identical. This is the end-to-end leg: workload
// generation, tuning, journaling and figure rendering all sit between
// RunPar and the output.
func TestGoldenCSVEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full case run is slow")
	}
	render := func(parWorkers int) []byte {
		t.Helper()
		r, err := rmscale.RunCaseSpec(1, rmscale.RunSpec{
			Fidelity:   rmscale.Smoke,
			Seed:       1,
			ParWorkers: parWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Figure().WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(0)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("golden CSV diverged between serial and -par-workers 4:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}
