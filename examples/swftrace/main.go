// Swftrace drives the grid simulator with a Standard Workload Format
// trace instead of the synthetic generator — the route to replaying
// real supercomputer logs from the Parallel Workloads Archive through
// the paper's grid model. The example writes a small synthetic trace in
// SWF, reads it back (exactly what you would do with a downloaded
// archive file), and runs two RMS models over the identical job stream.
//
//	go run ./examples/swftrace
package main

import (
	"bytes"
	"fmt"
	"log"

	"rmscale"
)

func main() {
	// 1. Produce an SWF file. In real use this is a downloaded trace;
	// here we synthesize one so the example is self-contained.
	params := rmscale.DefaultConfig().Workload
	params.Clusters = 1 // SWF has no cluster notion; spread on import
	jobs, err := rmscale.GenerateWorkload(params, 42)
	if err != nil {
		log.Fatal(err)
	}
	var swf bytes.Buffer
	if err := rmscale.WriteSWF(&swf, jobs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d jobs, %d bytes of SWF\n\n", len(jobs), swf.Len())

	// 2. Import it, spreading submissions over the grid's clusters.
	cfg := rmscale.DefaultConfig()
	imported, err := rmscale.ReadSWF(bytes.NewReader(swf.Bytes()),
		rmscale.SWFOptions{Clusters: cfg.Spec.Clusters}, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay the identical stream through two models.
	for _, p := range []rmscale.Policy{rmscale.NewLowest(), rmscale.NewCentral()} {
		eng, err := rmscale.NewEngine(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.UseJobs(imported); err != nil {
			log.Fatal(err)
		}
		sum := eng.Run()
		fmt.Printf("%-8s E=%.3f G=%.0f success=%.3f response=%.1f\n",
			p.Name(), sum.Efficiency, sum.G, sum.SuccessRate, sum.MeanResponse)
	}
}
