// Package mapiterorder seeds order-dependent map loops for the
// analyzer's analysistest case. Never built by the module.
package mapiterorder

import (
	"fmt"
	"sort"
)

func appendUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want "appends to ks in iteration order"
	}
	return ks
}

func appendThenSort(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // sorted below: accepted
	}
	sort.Strings(ks)
	return ks
}

func callsOut(m map[string]int, out func(string)) {
	for k := range m {
		out(k) // want "calls out"
	}
}

func printsOut(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "calls fmt.Println"
	}
}

func annotated(m map[string]int, out func(string)) {
	//lint:orderindependent fixture: the sink is an order-insensitive set recorder
	for k := range m {
		out(k)
	}
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "accumulates into sum"
	}
	return sum
}

func intAccumAllowed(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v // commutative integer accumulation: accepted
		n++
	}
	return n
}

func floatIncDec(m map[string]float64) float64 {
	var n float64
	for range m {
		n++ // want "iteration order leaks"
	}
	return n
}

func mapWriteAllowed(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k // key-addressed: accepted
	}
	return inv
}

func maxTrackingAllowed(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v // plain assignment (max tracking): accepted
		}
	}
	return best
}

func returnDependent(m map[string]int) string {
	for k := range m {
		return k // want "returns an iteration-dependent value"
	}
	return ""
}

func clearAllowed(m map[string]int) {
	for k := range m {
		delete(m, k) // builtin on the same map: accepted
	}
}

func conversionAllowed(m map[int]int) int64 {
	var last int64
	for k := range m {
		last = int64(k) // conversion, plain assignment: accepted
	}
	return last
}
