// Package coorddiscipline seeds coordinator-package violations for the
// analyzer's analysistest case. Never built by the module.
package coorddiscipline

import "sync"

// runWindow is the sanctioned concurrency site: everything inside is
// legal, including goroutines and the WaitGroup barrier.
//
//lint:coordinator workers rejoin before any cross-shard state moves
func runWindow(shards []func()) {
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s()
		}()
	}
	wg.Wait()
}

// sneaky is an unmarked function in the same file: its concurrency is
// exactly the ad-hoc kind the discipline exists to stop.
func sneaky(fn func()) {
	go fn() // want "go statement outside a //lint:coordinator function"
	ch := make(chan int) // want "channel type outside a //lint:coordinator function"
	ch <- 1              // want "channel send outside a //lint:coordinator function"
	select {             // want "select statement outside a //lint:coordinator function"
	default:
	}
}
