package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rmscale/internal/fsutil"
)

// failFS is an fsutil.FS whose durable writes always fail — the
// smallest disk-fault injection.
type failFS struct {
	fsutil.RealFS
	err error
}

func (f failFS) WriteFileAtomic(string, []byte, os.FileMode) error { return f.err }
func (f failFS) AppendSync(fsutil.File, []byte) error              { return f.err }

func mustNewStore(t *testing.T, cfg StoreConfig) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreChecksumQuarantine pins the integrity contract: a disk
// payload whose bytes no longer match their sidecar is quarantined and
// reported as a miss, never served.
func TestStoreChecksumQuarantine(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNewStore(t, StoreConfig{Dir: dir})
	payload := []byte(`{"summary":1}` + "\n")
	s1.Put("aaa", payload)

	// Flip the on-disk bytes behind the store's back, then read through
	// a fresh store (empty memory tier) as a restart would.
	if err := os.WriteFile(filepath.Join(dir, "results", "aaa.json"), []byte(`{"summary":2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustNewStore(t, StoreConfig{Dir: dir})
	if _, ok := s2.Get("aaa"); ok {
		t.Fatal("corrupt payload served")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Corrupt)
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "results", "quarantine", "q*-aaa.json"))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("corrupt payload not quarantined: %v (%v)", quarantined, err)
	}
	if st := s2.Stats(); st.QuarantineLen != 1 {
		t.Fatalf("quarantine len = %d, want 1", st.QuarantineLen)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "aaa.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt payload still in place")
	}
	// Has agrees with Get, so restart resume re-executes.
	if s2.Has("aaa") {
		t.Fatal("Has accepted a quarantined entry")
	}
}

// TestStoreLegacyBackfill: a payload written before the checksum era
// (no sidecar) is accepted and its sidecar backfilled on first read.
func TestStoreLegacyBackfill(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"legacy":true}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, "results", "bbb.json"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustNewStore(t, StoreConfig{Dir: dir})
	b, ok := s.Get("bbb")
	if !ok || string(b) != string(payload) {
		t.Fatalf("legacy entry not served: ok=%v b=%q", ok, b)
	}
	sum, err := os.ReadFile(filepath.Join(dir, "results", "bbb.json.sha256"))
	if err != nil {
		t.Fatalf("sidecar not backfilled: %v", err)
	}
	if string(sum) != checksum(payload)+"\n" {
		t.Fatalf("backfilled sidecar %q, want %q", sum, checksum(payload))
	}
}

// TestStoreLRUEviction pins size-bounded GC: over MaxResults, the
// least recently used entry is evicted from memory and disk.
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := mustNewStore(t, StoreConfig{Dir: dir, MaxResults: 2})
	s.Put("a", []byte("payload-a"))
	s.Put("b", []byte("payload-b"))
	if _, ok := s.Get("a"); !ok { // touch a: b becomes the LRU entry
		t.Fatal("a missing before eviction")
	}
	s.Put("c", []byte("payload-c"))

	if st := s.Stats(); st.Len != 2 || st.Evicted != 1 {
		t.Fatalf("stats = len %d evicted %d, want 2/1", st.Len, st.Evicted)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b still served")
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "b.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("evicted entry b still on disk")
	}
	for _, id := range []string{"a", "c"} {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("survivor %s missing", id)
		}
	}
}

// TestStoreMaxBytes: the byte bound evicts in LRU order too, and the
// accounting tracks the memory tier exactly.
func TestStoreMaxBytes(t *testing.T) {
	s := mustNewStore(t, StoreConfig{MaxBytes: 20})
	s.Put("a", make([]byte, 10))
	s.Put("b", make([]byte, 10))
	if st := s.Stats(); st.Bytes != 20 || st.Len != 2 {
		t.Fatalf("stats = bytes %d len %d, want 20/2", st.Bytes, st.Len)
	}
	s.Put("c", make([]byte, 10))
	st := s.Stats()
	if st.Bytes > 20 || st.Evicted != 1 {
		t.Fatalf("stats = bytes %d evicted %d, want <=20 bytes after 1 eviction", st.Bytes, st.Evicted)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("LRU entry a survived the byte bound")
	}
}

// TestStoreMaxAge: entries older than MaxAge on the injected clock are
// evicted at the next GC opportunity.
func TestStoreMaxAge(t *testing.T) {
	clk := newFakeClock()
	s := mustNewStore(t, StoreConfig{MaxAge: time.Hour, Clock: clk})
	s.Put("old", []byte("x"))
	clk.advance(2 * time.Hour)
	s.Put("new", []byte("y")) // Put runs GC
	if _, ok := s.Get("old"); ok {
		t.Fatal("expired entry still served")
	}
	if _, ok := s.Get("new"); !ok {
		t.Fatal("fresh entry missing")
	}
	if st := s.Stats(); st.Evicted != 1 || st.Len != 1 {
		t.Fatalf("stats = evicted %d len %d, want 1/1", st.Evicted, st.Len)
	}
}

// TestStoreEvictionSafeForInflightFetches: a slice fetched before an
// eviction stays valid and unchanged — payloads are never mutated or
// recycled.
func TestStoreEvictionSafeForInflightFetches(t *testing.T) {
	s := mustNewStore(t, StoreConfig{MaxResults: 1})
	s.Put("a", []byte("held-bytes"))
	held, ok := s.Get("a")
	if !ok {
		t.Fatal("a missing")
	}
	s.Put("b", []byte("evicts-a"))
	if _, ok := s.Get("a"); ok {
		t.Fatal("a not evicted")
	}
	if string(held) != "held-bytes" {
		t.Fatalf("in-flight fetch corrupted by eviction: %q", held)
	}
}

// TestStoreDegradedMemOnly pins graceful degradation: a failing disk
// never fails a Put — the store keeps serving from memory and reports
// why durability is gone.
func TestStoreDegradedMemOnly(t *testing.T) {
	dir := t.TempDir()
	s := mustNewStore(t, StoreConfig{Dir: dir, FS: failFS{err: errors.New("disk full")}})
	s.Put("a", []byte("mem-only"))
	b, ok := s.Get("a")
	if !ok || string(b) != "mem-only" {
		t.Fatalf("memory tier lost the payload: ok=%v b=%q", ok, b)
	}
	why, degraded := s.Degraded()
	if !degraded || why != "disk full" {
		t.Fatalf("degraded = %v %q, want true \"disk full\"", degraded, why)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "a.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("payload reached disk despite the failing FS")
	}
	if st := s.Stats(); st.Degraded == "" {
		t.Fatal("stats does not surface degradation")
	}
}

// corruptOnDisk flips the payload bytes for id behind the store's
// back, so the next verified read quarantines the pair.
func corruptOnDisk(t *testing.T, dir, id string) {
	t.Helper()
	path := filepath.Join(dir, "results", id+".json")
	if err := os.WriteFile(path, []byte(`{"tampered":true}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreQuarantineBound pins the satellite: the quarantine
// directory is capped, the oldest pairs are evicted first, and the
// accounting is visible in Stats.
func TestStoreQuarantineBound(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNewStore(t, StoreConfig{Dir: dir})
	ids := []string{"qa", "qb", "qc", "qd"}
	for _, id := range ids {
		s1.Put(id, []byte("payload-"+id))
	}
	for _, id := range ids {
		corruptOnDisk(t, dir, id)
	}
	// A fresh store (empty memory tier) quarantines each on read, in
	// order; the cap of 2 must keep only the two newest.
	s2 := mustNewStore(t, StoreConfig{Dir: dir, MaxQuarantine: 2})
	for _, id := range ids {
		if _, ok := s2.Get(id); ok {
			t.Fatalf("corrupt payload %s served", id)
		}
	}
	st := s2.Stats()
	if st.QuarantineLen != 2 || st.QuarantineEvicted != 2 || st.Corrupt != 4 {
		t.Fatalf("stats = %+v, want qlen=2 qevicted=2 corrupt=4", st)
	}
	// Oldest-first: qa and qb are gone, qc and qd retained.
	for i, id := range ids {
		matches, _ := filepath.Glob(filepath.Join(dir, "results", "quarantine", "q*-"+id+".json"))
		if wantKept := i >= 2; (len(matches) == 1) != wantKept {
			t.Fatalf("quarantine retention for %s: matches=%v, want kept=%v", id, matches, wantKept)
		}
	}
	// A restart recovers the bookkeeping (and keeps names monotonic).
	s3 := mustNewStore(t, StoreConfig{Dir: dir, MaxQuarantine: 2})
	if st := s3.Stats(); st.QuarantineLen != 2 {
		t.Fatalf("restart lost quarantine accounting: %+v", st)
	}
}

// TestStoreAudit pins the startup integrity pass: it verifies intact
// entries, quarantines corrupt ones, backfills missing sidecars,
// sweeps orphaned atomic-write temps, and is idempotent.
func TestStoreAudit(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNewStore(t, StoreConfig{Dir: dir})
	s1.Put("good", []byte("fine"))
	s1.Put("bad", []byte("will rot"))
	s1.Put("legacy", []byte("no sidecar"))
	corruptOnDisk(t, dir, "bad")
	if err := os.Remove(filepath.Join(dir, "results", "legacy.json.sha256")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "results", ".orphan.json.tmp"), []byte("partial"), 0o600); err != nil {
		t.Fatal(err)
	}

	s2 := mustNewStore(t, StoreConfig{Dir: dir})
	a := s2.Audit()
	if a.Verified != 2 || a.Backfilled != 1 || a.Quarantined != 1 || a.TempsCleaned != 1 {
		t.Fatalf("audit = %+v, want verified=2 backfilled=1 quarantined=1 temps=1", a)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", ".orphan.json.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphaned temp survived the audit")
	}
	if b, ok := s2.Get("legacy"); !ok || string(b) != "no sidecar" {
		t.Fatalf("backfilled legacy entry unusable: ok=%v b=%q", ok, b)
	}
	if _, ok := s2.Get("bad"); ok {
		t.Fatal("corrupt entry served after audit")
	}
	// Idempotent: a second pass finds a healed disk.
	a2 := s2.Audit()
	if a2.Verified != 2 || a2.Backfilled != 0 || a2.Quarantined != 0 || a2.TempsCleaned != 0 {
		t.Fatalf("second audit = %+v, want verified=2 and nothing repaired", a2)
	}
}
