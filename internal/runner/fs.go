package runner

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes land in a temporary file in the same
// directory, are flushed to stable storage, and are then renamed over
// the destination. An interrupted writer leaves either the old content
// or the new content, never a truncated mix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("runner: atomic write %s: %w", path, err)
	}
	return nil
}
