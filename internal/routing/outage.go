package routing

import (
	"fmt"
	"sort"
)

// This file models access-link outages: windows during which a grid
// endpoint's attachment to the network is severed, so every message to
// or from it is lost. Outage windows are pre-generated per endpoint
// from an injected random source before the simulation starts, which
// keeps the schedule deterministic and independent of the order other
// simulation components draw random numbers.

// ExpSource is the random source an outage plan draws from. It is
// satisfied by sim.Stream without routing importing the sim package.
type ExpSource interface {
	// Exp returns an exponential variate with the given mean.
	Exp(mean float64) float64
}

// window is one [start, end) outage interval.
type window struct {
	start, end float64
}

// Outages is a deterministic per-endpoint outage schedule.
type Outages struct {
	// windows[node] holds that endpoint's outage intervals sorted by
	// start time; nodes without entries never fail.
	windows map[int][]window
	count   int
}

// PlanOutages samples outage windows for every endpoint over [0,
// horizon): each endpoint alternates an up interval drawn Exp(mtbf)
// with a down interval of the fixed duration. A non-positive mtbf or
// duration yields an empty (fault-free) plan.
func PlanOutages(endpoints []int, mtbf, duration, horizon float64, src ExpSource) (*Outages, error) {
	o := &Outages{windows: make(map[int][]window)}
	if mtbf <= 0 || duration <= 0 || horizon <= 0 {
		return o, nil
	}
	if src == nil {
		return nil, fmt.Errorf("routing: outage plan needs a random source")
	}
	// Deterministic node order: the draw sequence must not depend on
	// the caller's slice order quirks, so sort a private copy.
	nodes := append([]int(nil), endpoints...)
	sort.Ints(nodes)
	seen := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		if seen[n] {
			continue
		}
		seen[n] = true
		t := src.Exp(mtbf)
		for t < horizon {
			o.windows[n] = append(o.windows[n], window{start: t, end: t + duration})
			o.count++
			t += duration + src.Exp(mtbf)
		}
	}
	return o, nil
}

// Windows reports the total number of planned outage windows.
func (o *Outages) Windows() int {
	if o == nil {
		return 0
	}
	return o.count
}

// Severed reports whether the endpoint's access link is down at time t.
func (o *Outages) Severed(node int, t float64) bool {
	if o == nil {
		return false
	}
	ws := o.windows[node]
	// Binary search for the first window ending after t.
	//lint:allow hotalloc the Search predicate closes over a local slice and t only; sort.Search does not retain it, so it stays off the heap
	i := sort.Search(len(ws), func(i int) bool { return ws[i].end > t })
	return i < len(ws) && ws[i].start <= t
}

// SeveredPath reports whether a message between the two endpoints at
// time t is lost to an outage: either end being severed cuts the path.
func (o *Outages) SeveredPath(from, to int, t float64) bool {
	return o.Severed(from, t) || o.Severed(to, t)
}
