package service

import (
	"fmt"
	"math"
	"strings"

	"rmscale/internal/experiments"
	"rmscale/internal/rms"
	"rmscale/internal/runner"
)

// specVersion guards the content-address format: any change to the
// spec struct or to what an execution means must bump it, so results
// from incompatible generations can never collide in the store.
const specVersion = "rmscaled-spec/v1"

// Spec kinds.
const (
	// KindSim runs one grid simulation (model, seed, optional horizon)
	// and stores its Summary. It is the cheap, thousand-at-a-time
	// object of the load harness.
	KindSim = "sim"
	// KindCase runs one of the paper's four experiment cases through
	// the measurement procedure (the full tuned G(k) curve per model).
	KindCase = "case"
	// KindChurn runs a case fault-free and again under the fixed churn
	// fault load (the degraded-mode experiment).
	KindChurn = "churn"
)

// ExperimentSpec is the unit of work a client submits to rmscaled. It
// is pure data: every field is part of the canonical content address,
// so two clients submitting byte-equal specs share one execution and
// one stored result. Fields that do not apply to a kind must stay at
// their zero value — a stray field would silently split the address of
// otherwise identical work, so Validate rejects it.
type ExperimentSpec struct {
	// Kind selects what an execution does: "sim", "case" or "churn".
	Kind string `json:"kind"`
	// Seed is the master random seed (all kinds).
	Seed int64 `json:"seed"`

	// Model names the RMS model of a "sim" run (e.g. "LOWEST").
	Model string `json:"model,omitempty"`
	// Horizon, when positive, overrides the simulated duration of a
	// "sim" run; 0 means the default grid horizon.
	Horizon float64 `json:"horizon,omitempty"`

	// Case is the experiment case (1-4) of a "case" or "churn" run.
	Case int `json:"case,omitempty"`
	// Fidelity is the runtime budget of a "case" or "churn" run:
	// "smoke", "quick" or "full".
	Fidelity string `json:"fidelity,omitempty"`
}

// Validate reports the first invalid field. Every message carries the
// offending value, so a rejected submission can be fixed from the
// error alone.
func (s ExperimentSpec) Validate() error {
	switch s.Kind {
	case KindSim:
		if _, err := rms.ByName(s.Model); err != nil {
			return fmt.Errorf("service: sim spec model %q: want one of %s",
				s.Model, strings.Join(rms.Names(), ", "))
		}
		if math.IsNaN(s.Horizon) || math.IsInf(s.Horizon, 0) || s.Horizon < 0 {
			return fmt.Errorf("service: sim spec horizon %v: must be finite and >= 0", s.Horizon)
		}
		if s.Case != 0 {
			return fmt.Errorf("service: sim spec sets case=%d; case applies to kind %q or %q only",
				s.Case, KindCase, KindChurn)
		}
		if s.Fidelity != "" {
			return fmt.Errorf("service: sim spec sets fidelity=%q; fidelity applies to kind %q or %q only",
				s.Fidelity, KindCase, KindChurn)
		}
	case KindCase, KindChurn:
		if s.Case < 1 || s.Case > 4 {
			return fmt.Errorf("service: %s spec case %d: want 1..4", s.Kind, s.Case)
		}
		if _, err := experiments.ParseFidelity(s.Fidelity); err != nil {
			return fmt.Errorf("service: %s spec fidelity %q: want smoke, quick or full", s.Kind, s.Fidelity)
		}
		if s.Model != "" {
			return fmt.Errorf("service: %s spec sets model=%q; model applies to kind %q only",
				s.Kind, s.Model, KindSim)
		}
		if s.Horizon != 0 {
			return fmt.Errorf("service: %s spec sets horizon=%v; horizon applies to kind %q only",
				s.Kind, s.Horizon, KindSim)
		}
	default:
		return fmt.Errorf("service: unknown spec kind %q: want %q, %q or %q",
			s.Kind, KindSim, KindCase, KindChurn)
	}
	return nil
}

// String renders the spec canonically, one field per token in
// declaration order — the human-readable twin of the content address,
// for log lines and hash-mismatch diagnostics.
func (s ExperimentSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec{kind=%s seed=%d", s.Kind, s.Seed)
	if s.Model != "" {
		fmt.Fprintf(&b, " model=%s", s.Model)
	}
	if s.Horizon != 0 {
		fmt.Fprintf(&b, " horizon=%g", s.Horizon)
	}
	if s.Case != 0 {
		fmt.Fprintf(&b, " case=%d", s.Case)
	}
	if s.Fidelity != "" {
		fmt.Fprintf(&b, " fidelity=%s", s.Fidelity)
	}
	b.WriteString("}")
	return b.String()
}

// ID derives the spec's deterministic content address: the SHA-256 of
// the canonical encoding of (specVersion, spec), rendered as lowercase
// hex. Identical specs always map to the same experiment ID, which is
// what makes submission idempotent and results shareable across
// clients.
func (s ExperimentSpec) ID() (string, error) {
	k, err := runner.KeyOf(specVersion, s)
	if err != nil {
		return "", fmt.Errorf("service: addressing %s: %w", s, err)
	}
	return k.String(), nil
}
