// Package nowallclock seeds wall-clock violations for the analyzer's
// analysistest case. Never built by the module.
package nowallclock

import "time"

func violations() {
	_ = time.Now()                       // want "time.Now reads the wall clock"
	time.Sleep(time.Second)              // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{})          // want "time.Since reads the wall clock"
	_ = time.NewTimer(time.Second)       // want "time.NewTimer reads the wall clock"
	_ = time.NewTicker(time.Millisecond) // want "time.NewTicker reads the wall clock"
	_ = time.After(time.Second)          // want "time.After reads the wall clock"
	f := time.Now // want "time.Now reads the wall clock"
	_ = f
}

func allowed() time.Duration {
	var d time.Duration = 3 * time.Second // duration arithmetic is pure
	var t time.Time                       // the type itself is fine
	_ = t
	_ = time.Unix(0, 0) // constructing a fixed instant is pure
	return d
}

func annotated() {
	//lint:allow nowallclock fixture exercising the escape hatch
	_ = time.Now()
	_ = time.Now() //lint:allow nowallclock trailing directive form
}
