package grid

import (
	"testing"
)

// chattyPolicy forwards every job's arrival as a protocol message to
// the next cluster, so loss windows have traffic to act on.
type chattyPolicy struct{ stubPolicy }

func (p *chattyPolicy) Name() string { return "CHATTY" }

func (p *chattyPolicy) OnJob(s *Scheduler, ctx *JobCtx) {
	s.SendPolicy((s.Cluster()+1)%4, 1, nil)
	s.DispatchLeastLoaded(ctx)
}

func TestScriptedSchedulerCrash(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ArmFaults(); err != nil {
		t.Fatal(err)
	}
	if err := e.InjectSchedulerCrash(1, 100, 200); err != nil {
		t.Fatal(err)
	}
	if !e.HasFaultScript() {
		t.Fatal("injection did not mark the engine as scripted")
	}
	var downAt150, upAt400 bool
	e.K.Schedule(150, func() { downAt150 = e.Schedulers[1].Down() })
	e.K.Schedule(400, func() { upAt400 = !e.Schedulers[1].Down() })
	e.Run()
	if !downAt150 {
		t.Fatal("scheduler 1 not down inside its scripted outage")
	}
	if !upAt400 {
		t.Fatal("scheduler 1 not repaired after its scripted outage")
	}
	if e.Metrics.SchedulerCrashes != 1 {
		t.Fatalf("SchedulerCrashes = %d, want 1", e.Metrics.SchedulerCrashes)
	}
	if e.Metrics.SchedulerDowntime != 200 {
		t.Fatalf("SchedulerDowntime = %v, want 200", e.Metrics.SchedulerDowntime)
	}
}

func TestScriptedLossWindow(t *testing.T) {
	cfg := testConfig()
	cfg.Faults.RetryTimeout = 25
	cfg.Faults.MaxRetries = 3
	e, err := New(cfg, &chattyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ArmFaults(); err != nil {
		t.Fatal(err)
	}
	if err := e.InjectLossWindow(0, cfg.Horizon+cfg.Drain-1); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// Every protocol send inside the window is lost; each loss must be
	// either retried or abandoned, never silently dropped.
	if e.Metrics.MsgsLost == 0 {
		t.Fatal("full-length loss window lost no messages")
	}
	if e.Metrics.MsgsLost != e.Metrics.MsgRetries+e.Metrics.MsgsAbandoned {
		t.Fatalf("lost %d != retries %d + abandoned %d",
			e.Metrics.MsgsLost, e.Metrics.MsgRetries, e.Metrics.MsgsAbandoned)
	}
}

func TestScriptValidation(t *testing.T) {
	e, err := New(testConfig(), &stubPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InjectSchedulerCrash(0, 10, 10); err == nil {
		t.Fatal("injection before ArmFaults accepted")
	}
	if err := e.ArmFaults(); err != nil {
		t.Fatal(err)
	}
	if err := e.ArmFaults(); err != nil {
		t.Fatalf("ArmFaults is documented idempotent, got %v", err)
	}
	if err := e.InjectSchedulerCrash(99, 10, 10); err == nil {
		t.Fatal("out-of-range cluster accepted")
	}
	if err := e.InjectSchedulerCrash(0, -5, 10); err == nil {
		t.Fatal("negative crash time accepted")
	}
	if err := e.InjectSchedulerCrash(0, 10, 0); err == nil {
		t.Fatal("zero repair time accepted")
	}
	if err := e.InjectEstimatorCrash(0, 10, 10); err == nil {
		t.Fatal("estimator crash accepted on a grid with no estimators")
	}
	if err := e.InjectLossWindow(10, -1); err == nil {
		t.Fatal("negative loss duration accepted")
	}
	e.Run()
	if err := e.InjectSchedulerCrash(0, 10, 10); err == nil {
		t.Fatal("injection after the run started accepted")
	}
}

func TestScriptedRunsStayDeterministic(t *testing.T) {
	run := func() Summary {
		e, err := New(testConfig(), &stubPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ArmFaults(); err != nil {
			t.Fatal(err)
		}
		if err := e.InjectSchedulerCrash(2, 300, 150); err != nil {
			t.Fatal(err)
		}
		if err := e.InjectLossWindow(500, 80); err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical scripted runs diverged:\n%v\n%v", a, b)
	}
}
