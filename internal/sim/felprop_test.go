package sim

import (
	"fmt"
	"testing"
)

// Differential test of the future event list: the kernel (implicit
// 4-ary heap, lazy deletion, free-list recycling) is driven alongside a
// trivially correct reference model — a flat slice popped by linear
// scan for the minimum (time, insertion order) — through long seeded
// sequences of Schedule/Cancel/Reschedule/Step. Any divergence in fire
// order, fire count or pending count fails. The sequence deliberately
// produces timestamp ties (seq tie-breaking), cancellations of the
// event the reference says fires next (cancel-at-head), and
// cancel-then-reschedule churn deep enough to cross the lazy-deletion
// compaction threshold.

// felRec mirrors one scheduled event in the reference model. Records
// are appended in schedule order, which is also sequence order, so the
// first record with the minimum time among live records is exactly the
// kernel's (time, seq) minimum.
type felRec struct {
	ev       *Event
	at       Time
	canceled bool
	fired    bool
}

// refNext returns the index of the record the reference model says
// fires next, or -1 when none are live.
func refNext(all []*felRec) int {
	best := -1
	for i, r := range all {
		if r.fired || r.canceled {
			continue
		}
		if best == -1 || r.at < all[best].at {
			best = i
		}
	}
	return best
}

func refLive(all []*felRec) int {
	n := 0
	for _, r := range all {
		if !r.fired && !r.canceled {
			n++
		}
	}
	return n
}

func TestFELDifferentialAgainstSortedSlice(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 17, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFELDifferential(t, seed)
		})
	}
}

func runFELDifferential(t *testing.T, seed int64) {
	rng := NewSource(seed).Stream("felprop")
	k := NewKernel()
	var all []*felRec
	lastFired := -1
	schedule := func(at Time) {
		r := &felRec{at: at}
		id := len(all)
		r.ev = k.Schedule(at, func() {
			r.fired = true
			lastFired = id
		})
		all = append(all, r)
	}
	step := func() {
		want := refNext(all)
		if !k.Step() {
			if want != -1 {
				t.Fatalf("kernel empty but reference expects event %d at t=%v", want, all[want].at)
			}
			return
		}
		if lastFired != want {
			t.Fatalf("fired event %d (t=%v), reference expects %d (t=%v)",
				lastFired, all[lastFired].at, want, all[want].at)
		}
	}
	cancel := func(i int) {
		r := all[i]
		if r.fired || r.canceled {
			return // the handle's lifetime is over; cancelling would be a model bug
		}
		r.canceled = true
		k.Cancel(r.ev)
	}

	const ops = 6000
	for op := 0; op < ops; op++ {
		switch x := rng.Float64(); {
		case x < 0.40:
			// Schedule; one third of the time at an existing pending
			// timestamp to force (time, seq) tie-breaking.
			at := k.Now() + rng.Float64()*10
			if len(all) > 0 && rng.Float64() < 0.33 {
				if r := all[rng.Intn(len(all))]; !r.fired && !r.canceled && r.at >= k.Now() {
					at = r.at
				}
			}
			schedule(at)
		case x < 0.58 && len(all) > 0:
			// Cancel: half the time a uniformly random handle, half the
			// time exactly the event due to fire next.
			i := rng.Intn(len(all))
			if rng.Float64() < 0.5 {
				if head := refNext(all); head != -1 {
					i = head
				}
			}
			cancel(i)
		case x < 0.68 && len(all) > 0:
			// Reschedule: cancel a live event and schedule a replacement
			// at a fresh future time.
			i := rng.Intn(len(all))
			if !all[i].fired && !all[i].canceled {
				cancel(i)
				schedule(k.Now() + rng.Float64()*10)
			}
		default:
			step()
		}
		if got, want := k.Pending(), refLive(all); got != want {
			t.Fatalf("op %d: Pending() = %d, reference has %d live events", op, got, want)
		}
	}
	// Drain: the remaining fire order must match the reference exactly.
	for refLive(all) > 0 {
		step()
	}
	if k.Step() {
		t.Fatal("kernel fired an event the reference does not have")
	}
	if err := k.Err(); err != nil {
		t.Fatalf("kernel unhealthy after drain: %v", err)
	}
}
